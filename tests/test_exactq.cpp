/// Unit tests for the exact rational abscissa type QY.

#include <gtest/gtest.h>

#include <random>

#include "geometry/exactq.hpp"
#include "test_util.hpp"

namespace thsr {
namespace {

TEST(ExactQ, IntegerBasics) {
  EXPECT_EQ(cmp(QY::of(3), QY::of(3)), 0);
  EXPECT_LT(cmp(QY::of(2), QY::of(3)), 0);
  EXPECT_GT(cmp(QY::of(4), QY::of(3)), 0);
  EXPECT_EQ(cmp(QY::of(-5), i64{-5}), 0);
  EXPECT_TRUE(QY::of(7).is_integer());
  EXPECT_DOUBLE_EQ(QY::of(7).approx(), 7.0);
}

TEST(ExactQ, SignNormalization) {
  const QY a(1, 2), b(-1, -2);
  EXPECT_EQ(cmp(a, b), 0);
  EXPECT_GT(b.q, 0);
  const QY c(-1, 2), d(1, -2);
  EXPECT_EQ(cmp(c, d), 0);
  EXPECT_LT(c, a);
}

TEST(ExactQ, UnreducedEquality) {
  EXPECT_EQ(QY(2, 4), QY(1, 2));
  EXPECT_EQ(QY(6, 4), QY(3, 2));
  EXPECT_NE(QY(6, 4), QY(3, 4));
  EXPECT_FALSE(QY(1, 2).is_integer());
  EXPECT_TRUE(QY(4, 2).is_integer());
}

TEST(ExactQ, OrderingMatchesRational) {
  auto g = test::rng(42);
  std::uniform_int_distribution<i64> num(-1'000'000, 1'000'000);
  std::uniform_int_distribution<i64> den(1, 1'000'000);
  for (int i = 0; i < 10'000; ++i) {
    const i64 p1 = num(g), q1 = den(g), p2 = num(g), q2 = den(g);
    const QY a(p1, q1), b(p2, q2);
    const long double va = static_cast<long double>(p1) / q1;
    const long double vb = static_cast<long double>(p2) / q2;
    // long double has 64-bit mantissa: exact discrimination may fail only on
    // ties, which cross-multiplication decides exactly.
    if (va != vb) {
      EXPECT_EQ(cmp(a, b), va < vb ? -1 : 1) << p1 << "/" << q1 << " vs " << p2 << "/" << q2;
    } else {
      EXPECT_EQ(cmp(a, b), (p1 * q2 > p2 * q1) - (p1 * q2 < p2 * q1));
    }
  }
}

TEST(ExactQ, MinMax) {
  const QY a(1, 3), b(1, 2);
  EXPECT_EQ(qmin(a, b), a);
  EXPECT_EQ(qmax(a, b), b);
  EXPECT_EQ(qmin(b, a), a);
}

TEST(ExactQ, LargeMagnitudeComparisons) {
  // Near the documented bounds: |p| ~ 2^67, q ~ 2^45.
  const i128 big_p = (i128{1} << 67) - 3;
  const i128 big_q = (i128{1} << 45) - 1;
  const QY a(big_p, big_q), b(big_p - 1, big_q);
  EXPECT_GT(a, b);
  EXPECT_EQ(cmp(a, a), 0);
  const QY c(-big_p, big_q);
  EXPECT_LT(c, b);
}

TEST(ExactQ, ToString) {
  EXPECT_EQ(to_string(QY::of(42)), "42");
  EXPECT_EQ(to_string(QY::of(-7)), "-7");
  EXPECT_EQ(to_string(QY(1, 3)), "1/3");
  EXPECT_EQ(to_string(QY(-1, 3)), "-1/3");
  EXPECT_EQ(to_string(QY(4, 2)), "2");
}

TEST(ExactQ, ApproxAccuracy) {
  const QY v(1, 3);
  EXPECT_NEAR(v.approx(), 1.0 / 3.0, 1e-15);
  const QY w(-10, 4);
  EXPECT_DOUBLE_EQ(w.approx(), -2.5);
}

}  // namespace
}  // namespace thsr
