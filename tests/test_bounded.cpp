/// Resolution-bounded solve contract (core/bounded.hpp, DESIGN.md
/// section 1.12). The load-bearing property is differential: at matching
/// resolution the raster of a bounded solve is **bitwise** equal — ids,
/// depth, coverage, and the exact crossings/hit_samples counters — to the
/// raster of the exact solve AND to the brute-force ray-cast oracle, for
/// every algorithm, backend, and thread count; meanwhile k_pieces /
/// treap_nodes / envelope-piece work strictly drop on sub-pixel-dense
/// scenes. Degenerate budgets bracket the mode: a budget finer than every
/// staircase step prunes nothing (bit-identical map *and* counters), a
/// budget of very few columns still reproduces its raster bitwise. The
/// BoundedPrune predicate itself is property-tested against the raster's
/// exact sample lattice.

#include <gtest/gtest.h>

#include <random>
#include <string>

#include "core/engine.hpp"
#include "core/hsr.hpp"
#include "raster/oracle.hpp"
#include "raster/raster.hpp"
#include "terrain/generators.hpp"
#include "test_util.hpp"

namespace thsr {
namespace {

using raster::ImageRaster;
using raster::RasterOptions;

void expect_images_equal(const ImageRaster& a, const ImageRaster& b, const std::string& what) {
  ASSERT_EQ(a.width, b.width) << what;
  ASSERT_EQ(a.height, b.height) << what;
  EXPECT_EQ(a.ids, b.ids) << what << ": id maps differ";
  EXPECT_EQ(a.depth, b.depth) << what << ": depth maps differ";
  EXPECT_EQ(a.coverage, b.coverage) << what << ": coverage maps differ";
  EXPECT_EQ(a.hit_samples, b.hit_samples) << what << ": hit_samples differ";
}

HsrOptions bounded_opt(const Terrain& t, const RasterOptions& ropt, Algorithm a) {
  HsrOptions opt;
  opt.algorithm = a;
  opt.pixel_budget = raster::pixel_budget(t, ropt);
  return opt;
}

// ------------------------------------------------------------------ predicate

// sample_free must agree with a brute-force scan of the raster's exact
// sample ordinates, for random rational intervals built from random segment
// crossings (the same breakpoint population the solver prunes).
TEST(BoundedPrune, SampleFreeMatchesBruteForceLattice) {
  auto g = test::rng(2026);
  const auto segs = test::random_segments(77, 60, /*range=*/500);
  std::uniform_int_distribution<std::size_t> pick(0, segs.size() - 1);
  std::uniform_int_distribution<int> res(1, 64);
  const raster::ImageWindow win{-501, 500, 0, 1};  // odd y extent, like default_window
  for (int iter = 0; iter < 4000; ++iter) {
    const u32 n = static_cast<u32>(res(g));
    const BoundedPrune prune(PixelBudget{win.y_lo, win.y_hi, n});
    // Interval endpoints: crossings of random segment pairs (exact QY), or
    // integers; degenerate [y, y] intervals included.
    const auto breakpoint = [&]() {
      for (int tries = 0; tries < 8; ++tries) {
        const Seg2 &a = segs[pick(g)], &b = segs[pick(g)];
        if (auto cr = line_crossing(a, b)) return *cr;
      }
      return QY::of(std::uniform_int_distribution<i64>(-500, 500)(g));
    };
    QY y0 = breakpoint(), y1 = breakpoint();
    if (cmp(y1, y0) < 0) std::swap(y0, y1);
    bool has_sample = false;
    for (u32 i = 0; i < n && !has_sample; ++i) {
      const QY s = raster::sample_y(win, n, 1, i);
      has_sample = cmp(y0, s) <= 0 && cmp(s, y1) <= 0;
    }
    EXPECT_EQ(prune.sample_free(y0, y1), !has_sample)
        << "n=" << n << " [" << to_string(y0) << ", " << to_string(y1) << "]";
  }
}

// Every sample ordinate is inside its own degenerate interval; the open gap
// between adjacent samples is sample-free; [s_i, s_{i+1}] is not.
TEST(BoundedPrune, LatticeBoundaryCases) {
  const raster::ImageWindow win{-7, 10, 0, 1};
  for (const u32 n : {1u, 2u, 3u, 32u, 4096u}) {
    const BoundedPrune prune(PixelBudget{win.y_lo, win.y_hi, n});
    for (u32 i = 0; i < n; i += (n > 64 ? 97 : 1)) {
      const QY s = raster::sample_y(win, n, 1, i);
      EXPECT_FALSE(prune.sample_free(s, s)) << "n=" << n << " i=" << i;
      if (i + 1 < n) {
        const QY t = raster::sample_y(win, n, 1, i + 1);
        EXPECT_FALSE(prune.sample_free(s, t));
        // Strictly inside the gap: midpoint of (s, t) with exact arithmetic.
        const QY mid{s.p * t.q + t.p * s.q, 2 * s.q * t.q};
        EXPECT_TRUE(prune.sample_free(mid, mid));
      }
    }
    // Entirely left / right of the lattice.
    EXPECT_TRUE(prune.sample_free(QY::of(-1000), QY::of(win.y_lo)));
    EXPECT_TRUE(prune.sample_free(QY::of(win.y_hi), QY::of(1000)));
    // Spanning the whole window contains every sample.
    EXPECT_FALSE(prune.sample_free(QY::of(win.y_lo), QY::of(win.y_hi)));
  }
}

TEST(BoundedPruneDeathTest, RejectsInvalidBudgets) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(BoundedPrune(PixelBudget{5, 5, 8}), "y_lo < b.y_hi");
  EXPECT_DEATH(BoundedPrune(PixelBudget{0, 1, 0}), "y_samples");
  EXPECT_DEATH(BoundedPrune(PixelBudget{0, 1, kMaxBudgetSamples + 1}), "y_samples");
  EXPECT_DEATH(BoundedPrune(PixelBudget{-(i64{1} << 40), 1, 8}), "kMaxCoord");
}

// ------------------------------------------------------- raster identity

/// Solve exact + bounded with `alg`, rasterize both at `ropt`, and demand
/// bitwise identity; returns (exact stats, bounded stats) for counter
/// assertions. Also checks the oracle when `against_oracle`.
std::pair<HsrStats, HsrStats> expect_bounded_raster_identical(const Terrain& t,
                                                              const RasterOptions& ropt,
                                                              Algorithm alg, bool against_oracle,
                                                              const std::string& label) {
  const HsrResult exact = hidden_surface_removal(t, HsrOptions{.algorithm = alg});
  const HsrResult bounded = hidden_surface_removal(t, bounded_opt(t, ropt, alg));
  const ImageRaster img_exact = raster::rasterize(t, exact.map, ropt);
  const ImageRaster img_bounded = raster::rasterize(t, bounded.map, ropt);
  expect_images_equal(img_bounded, img_exact, label + " (bounded vs exact)");
  EXPECT_EQ(img_bounded.crossings, img_exact.crossings) << label;
  if (against_oracle) {
    const ImageRaster ref = raster::raycast_reference(t, ropt);
    expect_images_equal(img_bounded, ref, label + " (bounded vs oracle)");
  }
  return {exact.stats, bounded.stats};
}

constexpr Algorithm kAllAlgorithms[] = {Algorithm::Reference, Algorithm::Sequential,
                                        Algorithm::Parallel};

TEST(Bounded, RasterIdentityAcrossFamiliesAndResolutions) {
  for (const Family f : kAllFamilies) {
    const Terrain t = test::make_family_terrain(f, 12, /*seed=*/3, /*shear=*/true,
                                                /*jitter=*/true);
    for (const auto& [w, h, s] : {std::tuple<u32, u32, u32>{24, 18, 1},
                                  std::tuple<u32, u32, u32>{64, 48, 1},
                                  std::tuple<u32, u32, u32>{32, 24, 2}}) {
      const RasterOptions ropt{.width = w, .height = h, .supersample = s};
      for (const Algorithm alg : kAllAlgorithms) {
        // Oracle (brute force) only on the cheapest resolution per family.
        expect_bounded_raster_identical(
            t, ropt, alg, /*against_oracle=*/w == 24,
            std::string(family_name(f)) + "/" + algorithm_name(alg) + "/w" + std::to_string(w) +
                "s" + std::to_string(s));
      }
    }
  }
}

TEST(Bounded, CountersDropOnDenseStaircase) {
  const Terrain t = test::dense_staircase(40, /*seed=*/5);
  const RasterOptions ropt{.width = 32, .height = 24};
  for (const Algorithm alg : {Algorithm::Sequential, Algorithm::Parallel}) {
    const auto [exact, bounded] = expect_bounded_raster_identical(
        t, ropt, alg, /*against_oracle=*/false,
        std::string("dense/") + algorithm_name(alg));
    // Strict decrease, not just <=: the family is built so most pieces are
    // sub-pixel at this width.
    EXPECT_LT(bounded.k_pieces, exact.k_pieces) << algorithm_name(alg);
    EXPECT_LT(bounded.treap_nodes, exact.treap_nodes) << algorithm_name(alg);
    if (alg == Algorithm::Parallel) {
      EXPECT_LT(bounded.work[Op::EnvPiece], exact.work[Op::EnvPiece]);
      EXPECT_LT(bounded.phase1_pieces, exact.phase1_pieces);
    }
  }
  // Reference has no treap; its k_pieces still drops.
  const auto [exact_r, bounded_r] = expect_bounded_raster_identical(
      t, ropt, Algorithm::Reference, /*against_oracle=*/false, "dense/reference");
  EXPECT_LT(bounded_r.k_pieces, exact_r.k_pieces);
}

TEST(Bounded, RandomizedGridsBackendsAndThreads) {
  auto g = test::rng(99);
  std::uniform_int_distribution<u32> grid(8, 20);
  std::uniform_int_distribution<u64> seed(1, 1u << 20);
  std::uniform_int_distribution<int> fam(0, 5);
  for (int iter = 0; iter < 4; ++iter) {
    const Family f = kAllFamilies[fam(g)];
    const Terrain t = test::make_family_terrain(f, grid(g), seed(g));
    const RasterOptions ropt{.width = 40, .height = 30, .supersample = iter % 2 ? 2u : 1u};
    const HsrResult exact = hidden_surface_removal(t);
    const ImageRaster img_exact = raster::rasterize(t, exact.map, ropt);
    // The bounded map and counters must keep the backend/p determinism
    // contract: identical map bits and work counters for a fixed algorithm.
    const HsrResult canon = hidden_surface_removal(t, bounded_opt(t, ropt, Algorithm::Parallel));
    const ImageRaster img_canon = raster::rasterize(t, canon.map, ropt);
    expect_images_equal(img_canon, img_exact, "canon vs exact");
    for (const par::Backend b : par::available_backends()) {
      for (const int p : {1, 3}) {
        HsrOptions opt = bounded_opt(t, ropt, Algorithm::Parallel);
        opt.backend = b;
        opt.threads = p;
        const HsrResult r = hidden_surface_removal(t, opt);
        const std::string label =
            std::string(par::backend_name(b)) + "/p" + std::to_string(p);
        EXPECT_FALSE(canon.map.first_difference(r.map).has_value()) << label;
        EXPECT_TRUE(canon.stats.work == r.stats.work) << label;
        EXPECT_EQ(canon.stats.treap_nodes, r.stats.treap_nodes) << label;
        EXPECT_EQ(canon.stats.k_pieces, r.stats.k_pieces) << label;
      }
    }
  }
}

// ------------------------------------------------------------- degenerates

// Budget finer than any staircase step: nothing is sample-free at solver
// scale, so the bounded solve must be bit-identical to the exact solve —
// map AND counters.
TEST(Bounded, FinestBudgetIsExactIncludingCounters) {
  // Every breakpoint gap of this terrain is far wider than the 4096-sample
  // spacing, so no interval anywhere in the pipeline is sample-free.
  const Terrain t = test::make_family_terrain(Family::Fbm, 6, /*seed=*/7);
  for (const Algorithm alg : kAllAlgorithms) {
    const HsrResult exact = hidden_surface_removal(t, HsrOptions{.algorithm = alg});
    HsrOptions opt;
    opt.algorithm = alg;
    opt.pixel_budget = raster::pixel_budget(t, RasterOptions{.width = 4096, .height = 4});
    const HsrResult bounded = hidden_surface_removal(t, opt);
    EXPECT_FALSE(exact.map.first_difference(bounded.map).has_value()) << algorithm_name(alg);
    EXPECT_EQ(exact.stats.k_pieces, bounded.stats.k_pieces) << algorithm_name(alg);
    EXPECT_EQ(exact.stats.treap_nodes, bounded.stats.treap_nodes) << algorithm_name(alg);
    EXPECT_TRUE(exact.stats.work == bounded.stats.work) << algorithm_name(alg);
  }
}

// Budget coarser than one triangle: a handful of columns across a dense
// terrain. Almost everything prunes, yet the tiny raster is still bitwise
// equal to the exact pipeline's and the oracle's.
TEST(Bounded, CoarserThanTriangleBudget) {
  const Terrain t = test::dense_staircase(24, /*seed=*/2);
  const RasterOptions ropt{.width = 3, .height = 2};
  for (const Algorithm alg : kAllAlgorithms) {
    const auto [exact, bounded] = expect_bounded_raster_identical(
        t, ropt, alg, /*against_oracle=*/true, std::string("w3/") + algorithm_name(alg));
    EXPECT_LT(bounded.k_pieces, exact.k_pieces) << algorithm_name(alg);
  }
}

// A bounded solve through the session engine (warm workspaces, batches)
// behaves like the one-shot shim.
TEST(Bounded, EngineWarmSolveAndBatch) {
  const Terrain t = test::dense_staircase(24, /*seed=*/8);
  const RasterOptions ropt{.width = 32, .height = 24};
  HsrEngine engine;
  engine.prepare(t);
  const HsrOptions opt = bounded_opt(t, ropt, Algorithm::Parallel);
  const HsrResult cold = engine.solve(opt);
  const HsrResult warm = engine.solve(opt);
  EXPECT_FALSE(cold.map.first_difference(warm.map).has_value());
  EXPECT_TRUE(cold.stats.work == warm.stats.work);
  const HsrOptions batch_opts[] = {opt, HsrOptions{.algorithm = Algorithm::Parallel}, opt};
  const auto results = engine.solve_batch(batch_opts);
  EXPECT_FALSE(cold.map.first_difference(results[0].map).has_value());
  EXPECT_FALSE(cold.map.first_difference(results[2].map).has_value());
  const ImageRaster a = raster::rasterize(t, results[0].map, ropt);
  const ImageRaster b = raster::rasterize(t, results[1].map, ropt);
  expect_images_equal(a, b, "batch bounded vs batch exact");
}

}  // namespace
}  // namespace thsr
