/// Sharding contract (src/shard/, DESIGN.md section 1.7): the stitched
/// ShardedEngine map is piece-for-piece identical to the monolithic solve
/// after both are coalesced at the slab cut lines — for every generator
/// family x S in {1, 2, 7, 16}, all three algorithms, both phase-2
/// oracles, and every available backend; sharded counted work stays within
/// the plan's duplication bound; and the decomposition invariants (cut
/// coverage, edge maps, sliver ownership) hold on degenerate inputs:
/// slivers exactly on slab lines, empty slabs, more slabs than lattice
/// lines. Plus the ESRI ASCII-grid loader: parse errors, NODATA holes,
/// quantization, and save/load round-trips.

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "core/engine.hpp"
#include "shard/shard.hpp"
#include "shard/sharded_engine.hpp"
#include "terrain/asc_io.hpp"
#include "terrain/generators.hpp"
#include "test_util.hpp"

namespace thsr {
namespace {

/// Stitched-vs-monolithic equality modulo coalescing at the cut lines (the
/// acceptance contract; first_difference is exact on piece intervals and
/// sliver verdicts including blocking provenance).
void expect_matches_monolithic(const Terrain& t, shard::ShardedEngine& engine,
                               const HsrOptions& opt, const std::string& label) {
  const HsrResult sharded = engine.solve(opt);
  const HsrResult mono = hidden_surface_removal(t, opt);
  const VisibilityMap canon = shard::coalesce_at_cuts(mono.map, engine.plan().cuts);
  const auto diff = canon.first_difference(sharded.map);
  EXPECT_FALSE(diff.has_value()) << label << ": stitched map differs at edge " << *diff;
  // first_difference skips per-piece endpoint provenance, so check the
  // stitch's edge-id translation directly: every piece endpoint must carry
  // the same kind and the same *source* profile-edge id as the monolithic
  // solve (the profile around any in-window point is identical in the
  // slab subproblem, so classifications agree; a dropped or wrong-table
  // remap would surface here as a slab-local id).
  if (!diff.has_value()) {
    for (u32 e = 0; e < canon.edge_slots(); ++e) {
      const auto want = canon.pieces(e), got = sharded.map.pieces(e);
      ASSERT_EQ(want.size(), got.size()) << label;
      for (std::size_t i = 0; i < want.size(); ++i) {
        EXPECT_TRUE(want[i].k0 == got[i].k0 && want[i].other0 == got[i].other0 &&
                    want[i].k1 == got[i].k1 && want[i].other1 == got[i].other1)
            << label << ": provenance differs at edge " << e << " piece " << i;
      }
    }
  }
  EXPECT_EQ(sharded.stats.k_pieces, canon.k_pieces()) << label;
  EXPECT_EQ(sharded.stats.n_edges, mono.stats.n_edges) << label;
  EXPECT_EQ(sharded.stats.n_slivers, mono.stats.n_slivers) << label;
  // Work accounting: the sharded total is the sum of per-slab solves (each
  // including its slab's preparation) and must stay within the plan's edge
  // duplication bound of the monolithic work — the same gate bench_ci
  // enforces on the g48 workloads, here at tiny test grids.
  const double bound = engine.plan().duplication_factor() * shard::kShardWorkSlack;
  EXPECT_LE(static_cast<double>(sharded.stats.work.total()),
            bound * static_cast<double>(mono.stats.work.total()))
      << label << ": sharded work exceeds the duplication bound";
}

TEST(Shard, DecomposePlanInvariants) {
  const Terrain t = test::make_family_terrain(Family::Fbm, 12);
  for (const u32 S : {1u, 2u, 7u, 16u}) {
    const shard::ShardPlan plan = shard::decompose(t, S);
    ASSERT_EQ(plan.cuts.size(), S + 1u);
    ASSERT_EQ(plan.slabs.size(), S);
    EXPECT_EQ(plan.cuts.front(), t.min_y());
    EXPECT_EQ(plan.cuts.back(), t.max_y());
    for (u32 i = 0; i < S; ++i) {
      EXPECT_LE(plan.cuts[i], plan.cuts[i + 1]);
      const shard::SlabTerrain& slab = plan.slabs[i];
      EXPECT_EQ(slab.y_lo, plan.cuts[i]);
      EXPECT_EQ(slab.y_hi, plan.cuts[i + 1]);
      ASSERT_EQ(slab.global_edge.size(), slab.terrain.edge_count());
      for (u32 le = 0; le < slab.terrain.edge_count(); ++le) {
        // The edge map preserves geometry: slab edge == source edge.
        const Edge& l = slab.terrain.edges()[le];
        const Edge& g = t.edges()[slab.global_edge[le]];
        EXPECT_EQ(slab.terrain.vertex(l.a), t.vertex(g.a));
        EXPECT_EQ(slab.terrain.vertex(l.b), t.vertex(g.b));
      }
      // Every slab triangle's y-span meets the closed window …
      for (const Triangle& tr : slab.terrain.triangles()) {
        const i64 ya = slab.terrain.vertex(tr.a).y, yb = slab.terrain.vertex(tr.b).y,
                  yc = slab.terrain.vertex(tr.c).y;
        EXPECT_GE(std::max({ya, yb, yc}), slab.y_lo);
        EXPECT_LE(std::min({ya, yb, yc}), slab.y_hi);
      }
      // … and, completeness: every source edge whose y-span meets the
      // window is present in the slab (it can occlude or be visible there).
      std::vector<char> in_slab(t.edge_count(), 0);
      for (const u32 ge : slab.global_edge) in_slab[ge] = 1;
      for (u32 e = 0; e < t.edge_count(); ++e) {
        const Edge& ed = t.edges()[e];
        const i64 lo = std::min(t.vertex(ed.a).y, t.vertex(ed.b).y);
        const i64 hi = std::max(t.vertex(ed.a).y, t.vertex(ed.b).y);
        if (hi >= slab.y_lo && lo <= slab.y_hi) {
          EXPECT_TRUE(in_slab[e]) << "S=" << S << " slab " << i << " misses edge " << e;
        }
      }
    }
    EXPECT_GE(plan.duplication_factor(), 1.0);
    // S=1 is the degenerate plan: one slab covering everything, no
    // replication.
    if (S == 1) {
      EXPECT_EQ(plan.slab_edges_total, t.edge_count());
    }
  }
}

TEST(Shard, StitchMatchesMonolithicAcrossFamiliesAndSlabCounts) {
  for (const Family f : kAllFamilies) {
    const Terrain t = test::make_family_terrain(f, 12);
    for (const u32 S : {1u, 2u, 7u, 16u}) {
      shard::ShardedEngine engine;
      engine.prepare(t, S);
      expect_matches_monolithic(t, engine, {.algorithm = Algorithm::Parallel},
                                std::string(family_name(f)) + "/S=" + std::to_string(S));
    }
  }
}

TEST(Shard, StitchMatchesMonolithicAcrossAlgorithmsAndOracles) {
  const Terrain t = test::make_family_terrain(Family::Fbm, 14, 3);
  shard::ShardedEngine engine;
  engine.prepare(t, 7);
  for (const HsrOptions opt : {HsrOptions{.algorithm = Algorithm::Reference},
                               HsrOptions{.algorithm = Algorithm::Sequential},
                               HsrOptions{.algorithm = Algorithm::Parallel},
                               HsrOptions{.algorithm = Algorithm::Parallel,
                                          .phase2_oracle = Phase2Oracle::MaterializedScan}}) {
    expect_matches_monolithic(t, engine, opt, std::string("fbm/") + algorithm_name(opt.algorithm));
  }
}

TEST(Shard, StitchMatchesMonolithicAcrossBackends) {
  const Terrain t = test::make_family_terrain(Family::TerraceBack, 12);
  shard::ShardedEngine engine;
  engine.prepare(t, 4);
  for (const par::Backend b : par::available_backends()) {
    const HsrOptions opt{.algorithm = Algorithm::Parallel, .threads = 2, .backend = b};
    expect_matches_monolithic(t, engine, opt,
                              std::string("backend ") + par::backend_name(b));
  }
}

TEST(Shard, RepeatedSolvesAreWarmAndIdentical) {
  const Terrain t = test::make_family_terrain(Family::Valley, 12);
  shard::ShardedEngine engine;
  engine.prepare(t, 4);
  const HsrOptions opt{.algorithm = Algorithm::Parallel};
  const HsrResult a = engine.solve(opt);
  const HsrResult b = engine.solve(opt);  // warm per-slab engines
  EXPECT_FALSE(a.map.first_difference(b.map).has_value());
  EXPECT_EQ(a.stats.work, b.stats.work);
}

// Unsheared lattices put every cross-row edge at dy == 0 (slivers), and the
// uniform cuts land exactly on lattice ordinates — so slab lines run
// through sliver edges and shared vertices: the boundary-ownership path.
TEST(Shard, SliverEdgesExactlyOnSlabLines) {
  const Terrain t = test::make_family_terrain(Family::Skyline, 12, 5, /*shear=*/false);
  ASSERT_TRUE([&] {
    for (u32 e = 0; e < t.edge_count(); ++e) {
      if (t.is_sliver(e)) return true;
    }
    return false;
  }()) << "unsheared grid should contain sliver edges";
  // Cuts at multiples of the lattice spacing: slab lines hit sliver rows.
  for (const u32 S : {2u, 7u, 11u}) {
    shard::ShardedEngine engine;
    engine.prepare(t, S);
    bool boundary_sliver = false;
    for (u32 e = 0; e < t.edge_count() && !boundary_sliver; ++e) {
      if (!t.is_sliver(e)) continue;
      const i64 y = t.sliver(e).y;
      for (const i64 c : engine.plan().cuts) boundary_sliver |= (y == c);
    }
    EXPECT_TRUE(boundary_sliver) << "S=" << S << ": no sliver landed on a cut (test too weak)";
    expect_matches_monolithic(t, engine, {.algorithm = Algorithm::Parallel},
                              "skyline-unsheared/S=" + std::to_string(S));
    expect_matches_monolithic(t, engine, {.algorithm = Algorithm::Reference},
                              "skyline-unsheared-ref/S=" + std::to_string(S));
  }
}

TEST(Shard, JitteredIrregularTin) {
  const Terrain t = test::make_family_terrain(Family::Fbm, 12, 9, /*shear=*/true, /*jitter=*/true);
  shard::ShardedEngine engine;
  engine.prepare(t, 7);
  expect_matches_monolithic(t, engine, {.algorithm = Algorithm::Parallel}, "fbm-jitter/S=7");
}

// Two y-separated patches leave interior slabs with no triangles at all.
TEST(Shard, EmptySlabsFromYGap) {
  const Terrain base = test::make_family_terrain(Family::Spikes, 6);
  std::vector<Vertex3> verts(base.vertices().begin(), base.vertices().end());
  std::vector<Triangle> tris(base.triangles().begin(), base.triangles().end());
  const i64 shift_y = 4 * (base.max_y() - base.min_y());
  const i64 shift_x = 2 * 8 * 6;  // keep ground positions distinct
  const auto n0 = static_cast<u32>(verts.size());
  for (u32 i = 0; i < n0; ++i) {
    Vertex3 v = verts[i];
    v.x += shift_x;
    v.y += shift_y;
    verts.push_back(v);
  }
  for (u32 i = 0; i < base.triangle_count(); ++i) {
    const Triangle& tr = tris[i];
    tris.push_back({tr.a + n0, tr.b + n0, tr.c + n0});
  }
  const Terrain t = Terrain::from_triangles(std::move(verts), std::move(tris));

  shard::ShardedEngine engine;
  engine.prepare(t, 16);
  bool has_empty = false;
  for (const shard::SlabTerrain& slab : engine.plan().slabs) {
    has_empty |= slab.terrain.triangle_count() == 0;
  }
  EXPECT_TRUE(has_empty) << "the y-gap should leave at least one slab empty";
  expect_matches_monolithic(t, engine, {.algorithm = Algorithm::Parallel}, "y-gap/S=16");
}

// More slabs than distinct lattice ordinates: repeated cuts, degenerate
// zero-width windows.
TEST(Shard, MoreSlabsThanLatticeLines) {
  const Terrain t = test::make_family_terrain(Family::Fbm, 3);
  ASSERT_LT(t.max_y() - t.min_y(), 10'000);
  shard::ShardedEngine engine;
  engine.prepare(t, 16);
  expect_matches_monolithic(t, engine, {.algorithm = Algorithm::Parallel}, "tiny/S=16");

  shard::ShardedEngine wide;
  wide.prepare(t, 1);
  expect_matches_monolithic(t, wide, {.algorithm = Algorithm::Sequential}, "tiny/S=1");
}

TEST(Shard, CoalesceAtCutsMergesOnlyCutJunctions) {
  VisibilityMap m(2);
  // Edge 0: two pieces split at the cut 10 — must merge.
  m.add_piece(0, {QY::of(0), QY::of(10), EndpointKind::SegmentEnd, EndpointKind::Break, kNoEdge,
                  kNoEdge});
  m.add_piece(0, {QY::of(10), QY::of(20), EndpointKind::Break, EndpointKind::Crossing, kNoEdge,
                  7});
  // Edge 1: abutting at a non-cut ordinate — must stay split.
  m.add_piece(1, {QY::of(0), QY::of(5), EndpointKind::SegmentEnd, EndpointKind::Break, kNoEdge,
                  kNoEdge});
  m.add_piece(1, {QY::of(5), QY::of(9), EndpointKind::Break, EndpointKind::SegmentEnd, kNoEdge,
                  kNoEdge});
  const i64 cuts[] = {0, 10, 20};
  const VisibilityMap out = shard::coalesce_at_cuts(m, cuts);
  ASSERT_EQ(out.pieces(0).size(), 1u);
  EXPECT_EQ(out.pieces(0)[0].y0, QY::of(0));
  EXPECT_EQ(out.pieces(0)[0].y1, QY::of(20));
  EXPECT_EQ(out.pieces(0)[0].k1, EndpointKind::Crossing);
  EXPECT_EQ(out.pieces(0)[0].other1, 7u);
  EXPECT_EQ(out.pieces(1).size(), 2u);
}

TEST(Shard, SolveRequiresPrepare) {
  shard::ShardedEngine engine;
  EXPECT_FALSE(engine.prepared());
  EXPECT_DEATH((void)engine.solve(), "prepared");
}

// ---------------------------------------------------------------------------
// asc_io: the ESRI ASCII-grid ingestion path.

const char kSmallAsc[] =
    "ncols 4\n"
    "nrows 3\n"
    "xllcorner 100.0\n"
    "yllcorner 200.0\n"
    "cellsize 30.0\n"
    "NODATA_value -9999\n"
    "1 2 3 4\n"
    "5 6 7 8\n"
    "9 10 11 12\n";

TEST(AscIo, ParsesHeaderAndValues) {
  std::istringstream is(kSmallAsc);
  const AscGrid g = load_asc_grid(is);
  EXPECT_EQ(g.ncols, 4u);
  EXPECT_EQ(g.nrows, 3u);
  EXPECT_EQ(g.xll, 100.0);
  EXPECT_EQ(g.yll, 200.0);
  EXPECT_EQ(g.cellsize, 30.0);
  ASSERT_TRUE(g.nodata.has_value());
  EXPECT_EQ(*g.nodata, -9999.0);
  ASSERT_EQ(g.values.size(), 12u);
  EXPECT_EQ(g.at(0, 0), 1.0);   // row 0 = north
  EXPECT_EQ(g.at(2, 3), 12.0);
  EXPECT_FALSE(g.is_nodata(1, 1));
}

TEST(AscIo, RoundTripsThroughSave) {
  std::istringstream is(kSmallAsc);
  AscGrid g = load_asc_grid(is);
  g.values[5] = -9999;  // engage the nodata path too
  std::ostringstream os;
  save_asc_grid(g, os);
  std::istringstream back(os.str());
  const AscGrid h = load_asc_grid(back);
  EXPECT_EQ(h.ncols, g.ncols);
  EXPECT_EQ(h.nrows, g.nrows);
  EXPECT_EQ(h.xll, g.xll);
  EXPECT_EQ(h.yll, g.yll);
  EXPECT_EQ(h.cellsize, g.cellsize);
  EXPECT_EQ(h.nodata, g.nodata);
  EXPECT_EQ(h.values, g.values);
  EXPECT_TRUE(h.is_nodata(1, 1));
}

TEST(AscIo, ParseErrors) {
  const auto expect_throw = [](const std::string& text, const char* label) {
    std::istringstream is(text);
    EXPECT_THROW((void)load_asc_grid(is), std::runtime_error) << label;
  };
  expect_throw("nrows 2\nxllcorner 0\nyllcorner 0\ncellsize 1\n1 2\n3 4\n", "missing ncols");
  expect_throw("ncols 2\nnrows 2\nxllcorner 0\nyllcorner 0\n1 2\n3 4\n", "missing cellsize");
  expect_throw("ncols 2\nnrows 2\nncols 2\nxllcorner 0\nyllcorner 0\ncellsize 1\n1 2\n3 4\n",
               "duplicate key");
  expect_throw("ncols 2\nnrows 2\nxllcorner 0\nyllcorner 0\ncellsize 0\n1 2\n3 4\n",
               "non-positive cellsize");
  expect_throw("ncols 2\nnrows 2\nxllcorner 0\nyllcorner 0\ncellsize 1\n1 2\n3\n", "short data");
  expect_throw("ncols 2\nnrows 2\nxllcorner 0\nyllcorner 0\ncellsize 1\n1 2\n3 oops\n",
               "non-numeric data");
  expect_throw("ncols x\nnrows 2\nxllcorner 0\nyllcorner 0\ncellsize 1\n1 2\n3 4\n",
               "non-numeric header");
  expect_throw("frobnicate 3\nncols 2\nnrows 2\nxllcorner 0\nyllcorner 0\ncellsize 1\n1 2\n3 4\n",
               "unknown key");
  expect_throw("ncols 2\nnrows 2\nxllcorner 0\nyllcenter 0\ncellsize 1\n1 2\n3 4\n",
               "mixed corner/center origin keys");
  // A hostile header must fail as a parse error before the sample buffer
  // is allocated, not as bad_alloc.
  expect_throw("ncols 1000000000\nnrows 1000000000\nxllcorner 0\nyllcorner 0\ncellsize 1\n",
               "samples over the loader cap");
}

TEST(AscIo, CellCenteredRoundTrip) {
  std::istringstream is(
      "ncols 2\nnrows 2\nxllcenter 15.0\nyllcenter 25.0\ncellsize 30\n1 2\n3 4\n");
  const AscGrid g = load_asc_grid(is);
  EXPECT_TRUE(g.cell_centered);
  std::ostringstream os;
  save_asc_grid(g, os);
  EXPECT_NE(os.str().find("xllcenter"), std::string::npos);
  EXPECT_NE(os.str().find("yllcenter"), std::string::npos);
  std::istringstream back(os.str());
  EXPECT_TRUE(load_asc_grid(back).cell_centered);
}

TEST(AscIo, TerrainQuantizationAndShear) {
  std::istringstream is(kSmallAsc);
  const AscGrid g = load_asc_grid(is);
  const Terrain t = terrain_from_asc(g, {.z_scale = 2.0});
  EXPECT_EQ(t.vertex_count(), 12u);
  EXPECT_EQ(t.triangle_count(), 12u);  // (nrows-1)*(ncols-1) cells, 2 triangles each
  // normalize_z subtracts the min (1.0); z = round((v - 1) * 2).
  i64 zmin = t.vertex(0).z, zmax = zmin;
  for (u32 i = 0; i < t.vertex_count(); ++i) {
    zmin = std::min(zmin, t.vertex(i).z);
    zmax = std::max(zmax, t.vertex(i).z);
  }
  EXPECT_EQ(zmin, 0);
  EXPECT_EQ(zmax, 22);  // (12 - 1) * 2
  // Sheared lattice: no sliver edges, ready for all three algorithms.
  for (u32 e = 0; e < t.edge_count(); ++e) EXPECT_FALSE(t.is_sliver(e));
  EXPECT_TRUE(t.projections_planar());
}

TEST(AscIo, NodataCellsBecomeHoles) {
  std::istringstream is(kSmallAsc);
  AscGrid g = load_asc_grid(is);
  const Terrain full = terrain_from_asc(g);
  g.values[g.ncols + 1] = *g.nodata;  // knock out interior sample (1,1)
  const Terrain holey = terrain_from_asc(g);
  // (1,1) corners 4 of the 6 cells; the 2 surviving cells keep 6 vertices
  // (orphaned corners are dropped with their cells).
  EXPECT_EQ(holey.triangle_count(), 4u);
  EXPECT_EQ(holey.vertex_count(), 6u);
  // The holey terrain still solves, and all three algorithms agree on it.
  const HsrResult p = hidden_surface_removal(holey, {.algorithm = Algorithm::Parallel});
  const HsrResult r = hidden_surface_removal(holey, {.algorithm = Algorithm::Reference});
  EXPECT_FALSE(p.map.first_difference(r.map).has_value());
  EXPECT_GT(p.stats.k_pieces, 0u);
}

TEST(AscIo, AllNodataFails) {
  std::istringstream is(
      "ncols 2\nnrows 2\nxllcorner 0\nyllcorner 0\ncellsize 1\nNODATA_value -1\n-1 -1\n-1 -1\n");
  const AscGrid g = load_asc_grid(is);
  EXPECT_THROW((void)terrain_from_asc(g), std::runtime_error);
}

TEST(AscIo, OutOfRangeHeightFails) {
  std::istringstream is(kSmallAsc);
  const AscGrid g = load_asc_grid(is);
  EXPECT_THROW((void)terrain_from_asc(g, {.z_scale = 1e9}), std::runtime_error);
}

TEST(AscIo, StrideDownsamplesLargeGrids) {
  AscGrid g;
  g.ncols = 2 * kMaxAscGrid;  // auto stride must kick in
  g.nrows = 5;
  g.cellsize = 1.0;
  g.values.assign(static_cast<std::size_t>(g.ncols) * g.nrows, 0.0);
  for (u32 r = 0; r < g.nrows; ++r) {
    for (u32 c = 0; c < g.ncols; ++c) g.values[static_cast<std::size_t>(r) * g.ncols + c] = r + c;
  }
  const Terrain t = terrain_from_asc(g);
  EXPECT_LE(t.vertex_count(), static_cast<std::size_t>(kMaxAscGrid) * g.nrows);
  EXPECT_GT(t.triangle_count(), 0u);
  // Explicit coarser stride (applies to both axes; must leave >= 2 rows).
  const Terrain coarse = terrain_from_asc(g, {.stride = 4});
  EXPECT_LT(coarse.vertex_count(), t.vertex_count());
  // A stride wiping out an axis is a loader error, not a crash.
  EXPECT_THROW((void)terrain_from_asc(g, {.stride = 100}), std::runtime_error);
}

TEST(AscIo, LoadedDemSolvesAndShards) {
  // A deterministic synthetic "DEM": save a wavy grid to .asc text, load it
  // back, and run the sharded vs monolithic contract on the result.
  AscGrid g;
  g.ncols = 24;
  g.nrows = 20;
  g.cellsize = 10.0;
  g.nodata = -9999.0;
  g.values.resize(static_cast<std::size_t>(g.ncols) * g.nrows);
  for (u32 r = 0; r < g.nrows; ++r) {
    for (u32 c = 0; c < g.ncols; ++c) {
      const double v = 40.0 * std::sin(0.4 * r) * std::cos(0.3 * c) + 3.0 * r;
      g.values[static_cast<std::size_t>(r) * g.ncols + c] = (r == 7 && c == 9) ? -9999.0 : v;
    }
  }
  std::ostringstream os;
  save_asc_grid(g, os);
  std::istringstream is(os.str());
  const Terrain t = load_asc(is, {.z_scale = 1.0});
  EXPECT_GT(t.edge_count(), 100u);

  shard::ShardedEngine engine;
  engine.prepare(t, 7);
  const HsrResult sharded = engine.solve({.algorithm = Algorithm::Parallel});
  const HsrResult mono = hidden_surface_removal(t, {.algorithm = Algorithm::Parallel});
  const VisibilityMap canon = shard::coalesce_at_cuts(mono.map, engine.plan().cuts);
  EXPECT_FALSE(canon.first_difference(sharded.map).has_value());
}

}  // namespace
}  // namespace thsr
