/// Degeneracy suite: hand-built terrains exercising exact ties, plateaus,
/// sliver edges, fully-hidden geometry, and minimal inputs. Every case pins
/// the shared convention (ties -> hidden; slivers vs the non-sliver profile)
/// by asserting all three algorithms agree and by direct expectations.

#include <gtest/gtest.h>

#include "core/hsr.hpp"
#include "terrain/generators.hpp"
#include "test_util.hpp"

namespace thsr {
namespace {

void expect_all_agree(const Terrain& t) {
  const auto ref = hidden_surface_removal(t, {.algorithm = Algorithm::Reference});
  const auto seq = hidden_surface_removal(t, {.algorithm = Algorithm::Sequential});
  const auto par = hidden_surface_removal(t, {.algorithm = Algorithm::Parallel});
  const auto d1 = ref.map.first_difference(seq.map);
  ASSERT_FALSE(d1.has_value()) << "ref vs seq differ at edge " << *d1;
  const auto d2 = ref.map.first_difference(par.map);
  ASSERT_FALSE(d2.has_value()) << "ref vs par differ at edge " << *d2;
}

TEST(Degenerate, SingleTriangleFullyVisible) {
  // Chosen so the back edge rises strictly above the front edges' envelope
  // (a tilted triangle can legitimately self-occlude; this one does not).
  std::vector<Vertex3> v{{0, 0, 5}, {4, 3, 1}, {1, 7, 9}};
  const Terrain t = Terrain::from_triangles(v, {{0, 1, 2}});
  expect_all_agree(t);
  const auto r = hidden_surface_removal(t, {.algorithm = Algorithm::Parallel});
  for (u32 e = 0; e < t.edge_count(); ++e) {
    ASSERT_EQ(r.map.pieces(e).size(), 1u) << "edge " << e;
    const Seg2 s = t.image_segment(e);
    EXPECT_EQ(r.map.pieces(e)[0].y0, QY::of(s.u0));
    EXPECT_EQ(r.map.pieces(e)[0].y1, QY::of(s.u1));
  }
  EXPECT_EQ(r.stats.k_pieces, 3u);
}

TEST(Degenerate, BackTriangleFullyHiddenByFrontWall) {
  // Front wall (large x) strictly taller than the back triangle everywhere.
  std::vector<Vertex3> v{
      {100, 0, 50}, {104, 10, 50}, {103, 5, 60},  // front tall triangle
      {0, 2, 3},    {4, 8, 4},     {1, 5, 1},     // back low triangle
  };
  const Terrain t = Terrain::from_triangles(v, {{0, 1, 2}, {3, 4, 5}});
  expect_all_agree(t);
  const auto r = hidden_surface_removal(t, {.algorithm = Algorithm::Parallel});
  // Identify edges of the back triangle by vertex ids >= 3.
  for (u32 e = 0; e < t.edge_count(); ++e) {
    const Edge& ed = t.edges()[e];
    if (ed.a >= 3) {
      EXPECT_TRUE(r.map.pieces(e).empty()) << "back edge " << e << " should be hidden";
    } else if (ed.b == 2) {
      // The wall's apex edges face the viewer; its base edge legitimately
      // hides behind them (self-occlusion), so only these two are asserted.
      EXPECT_FALSE(r.map.pieces(e).empty()) << "apex edge " << e << " should be visible";
    }
  }
}

TEST(Degenerate, ExactTieIsHidden) {
  // Two triangles, the back one touching the front one's silhouette from
  // below with exactly equal heights over an interval (collinear overlap).
  std::vector<Vertex3> v{
      {100, 0, 10}, {104, 8, 10}, {103, 4, 20},  // front: base edge at z=10 over y in [0,8]
      {0, 0, 10},   {4, 8, 10},   {3, 4, 0},     // back: top edge identical in image plane
  };
  const Terrain t = Terrain::from_triangles(v, {{0, 1, 2}, {3, 4, 5}});
  expect_all_agree(t);
  const auto r = hidden_surface_removal(t, {.algorithm = Algorithm::Parallel});
  for (u32 e = 0; e < t.edge_count(); ++e) {
    const Edge& ed = t.edges()[e];
    if (ed.a == 3 && ed.b == 4) {  // the tied back edge
      EXPECT_TRUE(r.map.pieces(e).empty()) << "tied edge must lose to the front";
    }
  }
}

TEST(Degenerate, FlatPlateauUnsheared) {
  GenOptions opt;
  opt.family = Family::Skyline;
  opt.grid = 8;
  opt.seed = 1;
  opt.shear = false;
  opt.amplitude = 1;  // nearly flat: maximal tie density
  const Terrain t = make_terrain(opt);
  expect_all_agree(t);
}

TEST(Degenerate, SliverVisibilityAgainstProfile) {
  // One sliver edge (dy = 0) behind a front wall that partially covers it.
  // Back triangle has a tall x-parallel edge; front wall at z = 5.
  std::vector<Vertex3> v{
      {0, 0, 0},    {8, 0, 12},  {4, 6, 0},     // back triangle, edge 0-1 is a sliver
      {100, -4, 5}, {104, 4, 5}, {102, -1, 5},  // front plateau wall at z=5 (covers y=0)
  };
  const Terrain t = Terrain::from_triangles(v, {{0, 1, 2}, {3, 4, 5}});
  expect_all_agree(t);
  const auto r = hidden_surface_removal(t, {.algorithm = Algorithm::Parallel});
  for (u32 e = 0; e < t.edge_count(); ++e) {
    if (!t.is_sliver(e)) continue;
    const auto& sv = r.map.sliver(e);
    ASSERT_TRUE(sv.has_value());
    // Sliver tops out at z=12 > wall z=5: visible above the wall.
    EXPECT_TRUE(sv->visible);
  }
}

TEST(Degenerate, SliverFullyBlocked) {
  std::vector<Vertex3> v{
      {0, 0, 0},    {8, 0, 4},   {4, 6, 0},      // back triangle, sliver tops at z=4
      {100, -4, 9}, {104, 4, 9}, {102, -1, 20},  // front wall bottom edge z=9 over y in [-4,4]
  };
  const Terrain t = Terrain::from_triangles(v, {{0, 1, 2}, {3, 4, 5}});
  expect_all_agree(t);
  const auto r = hidden_surface_removal(t, {.algorithm = Algorithm::Parallel});
  for (u32 e = 0; e < t.edge_count(); ++e) {
    if (!t.is_sliver(e)) continue;
    ASSERT_TRUE(r.map.sliver(e).has_value());
    EXPECT_FALSE(r.map.sliver(e)->visible);
  }
}

TEST(Degenerate, TinyGrids) {
  for (const u32 g : {2u, 3u, 4u}) {
    for (const bool shear : {true, false}) {
      GenOptions opt;
      opt.family = Family::Fbm;
      opt.grid = g;
      opt.shear = shear;
      expect_all_agree(make_terrain(opt));
    }
  }
}

TEST(Degenerate, SharedVertexFanOrdering) {
  // Many triangles fanning around one vertex: dense shared endpoints in both
  // sweeps (depth order + envelopes).
  std::vector<Vertex3> v{{50, 0, 30}};
  std::vector<Triangle> tris;
  const int spokes = 8;
  for (int i = 0; i <= spokes; ++i) {
    v.push_back({i * 10, 20 + i, (i * 7) % 23});
  }
  for (int i = 1; i < spokes; ++i) {
    tris.push_back({0, static_cast<u32>(i), static_cast<u32>(i + 1)});
  }
  const Terrain t = Terrain::from_triangles(v, tris);
  ASSERT_TRUE(t.projections_planar());
  expect_all_agree(t);
}

TEST(Degenerate, SkylinePlateausAllGrids) {
  for (const u64 seed : {1ull, 2ull, 3ull}) {
    GenOptions opt;
    opt.family = Family::Skyline;
    opt.grid = 10;
    opt.seed = seed;
    opt.shear = (seed % 2) == 0;
    expect_all_agree(make_terrain(opt));
  }
}

}  // namespace
}  // namespace thsr
