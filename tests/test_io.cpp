/// IO smoke tests: SVG rendering and the bench table builder.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/hsr.hpp"
#include "envelope/build.hpp"
#include "io/csv.hpp"
#include "io/svg.hpp"
#include "terrain/generators.hpp"
#include "test_util.hpp"

namespace thsr {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream is(path);
  std::stringstream ss;
  ss << is.rdbuf();
  return ss.str();
}

TEST(Svg, VisibilityRenderContainsVisiblePieces) {
  GenOptions opt;
  opt.grid = 10;
  const Terrain t = make_terrain(opt);
  const auto r = hidden_surface_removal(t);
  const std::string path = ::testing::TempDir() + "/thsr_vis.svg";
  render_visibility_svg(t, r.map, path);
  const std::string svg = slurp(path);
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  EXPECT_NE(svg.find("#0b6623"), std::string::npos);  // visible strokes present
  std::remove(path.c_str());
}

TEST(Svg, EnvelopeRender) {
  GenOptions opt;
  opt.grid = 8;
  const Terrain t = make_terrain(opt);
  std::vector<u32> ids;
  std::vector<Seg2> segs(t.edge_count(), Seg2{0, 0, 1, 0});
  for (u32 e = 0; e < t.edge_count(); ++e) {
    if (!t.is_sliver(e)) {
      segs[e] = t.image_segment(e);
      ids.push_back(e);
    }
  }
  const Envelope env = envelope_of(ids, segs);
  const std::string path = ::testing::TempDir() + "/thsr_env.svg";
  render_envelope_svg(t, env, segs, path);
  EXPECT_NE(slurp(path).find("#c1121f"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Table, MarkdownFormatting) {
  Table t({"n", "time_ms", "note"});
  t.row({"10", Table::num(1.5), "a"});
  t.row({"2000", Table::num(12.25), "bb"});
  std::ostringstream os;
  t.print_markdown(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("| n    | time_ms | note |"), std::string::npos);
  EXPECT_NE(s.find("| 2000 | 12.250  | bb   |"), std::string::npos);
  EXPECT_NE(s.find("|------|"), std::string::npos);
}

TEST(Table, NumHelpers) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(static_cast<long long>(-42)), "-42");
  EXPECT_EQ(Table::num(static_cast<unsigned long long>(7)), "7");
}

}  // namespace
}  // namespace thsr
