/// IO tests: the PGM/PPM image writers (round-trip + malformed input),
/// the `.asc` grid writer round-trip, SVG rendering, and the bench table
/// builder (Markdown + CSV).

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <random>
#include <sstream>

#include "core/hsr.hpp"
#include "envelope/build.hpp"
#include "io/csv.hpp"
#include "io/image.hpp"
#include "io/svg.hpp"
#include "terrain/asc_io.hpp"
#include "terrain/generators.hpp"
#include "test_util.hpp"

namespace thsr {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream is(path);
  std::stringstream ss;
  ss << is.rdbuf();
  return ss.str();
}

TEST(Svg, VisibilityRenderContainsVisiblePieces) {
  GenOptions opt;
  opt.grid = 10;
  const Terrain t = make_terrain(opt);
  const auto r = hidden_surface_removal(t);
  const std::string path = ::testing::TempDir() + "/thsr_vis.svg";
  render_visibility_svg(t, r.map, path);
  const std::string svg = slurp(path);
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  EXPECT_NE(svg.find("#0b6623"), std::string::npos);  // visible strokes present
  std::remove(path.c_str());
}

TEST(Svg, EnvelopeRender) {
  GenOptions opt;
  opt.grid = 8;
  const Terrain t = make_terrain(opt);
  std::vector<u32> ids;
  std::vector<Seg2> segs(t.edge_count(), Seg2{0, 0, 1, 0});
  for (u32 e = 0; e < t.edge_count(); ++e) {
    if (!t.is_sliver(e)) {
      segs[e] = t.image_segment(e);
      ids.push_back(e);
    }
  }
  const Envelope env = envelope_of(ids, segs);
  const std::string path = ::testing::TempDir() + "/thsr_env.svg";
  render_envelope_svg(t, env, segs, path);
  EXPECT_NE(slurp(path).find("#c1121f"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Table, MarkdownFormatting) {
  Table t({"n", "time_ms", "note"});
  t.row({"10", Table::num(1.5), "a"});
  t.row({"2000", Table::num(12.25), "bb"});
  std::ostringstream os;
  t.print_markdown(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("| n    | time_ms | note |"), std::string::npos);
  EXPECT_NE(s.find("| 2000 | 12.250  | bb   |"), std::string::npos);
  EXPECT_NE(s.find("|------|"), std::string::npos);
}

TEST(Table, NumHelpers) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(static_cast<long long>(-42)), "-42");
  EXPECT_EQ(Table::num(static_cast<unsigned long long>(7)), "7");
}

TEST(Table, CsvWriterHonorsEnvironment) {
  Table t({"a", "b"});
  t.row({"1", "x"});
  t.row({"2", "y"});
  const std::string dir = ::testing::TempDir();
  const std::string cwd_guard = dir + "/thsr_csv_test";
  ASSERT_EQ(setenv("THSR_BENCH_CSV", "0", 1), 0);
  t.maybe_write_csv(cwd_guard + "_off");
  EXPECT_FALSE(std::ifstream(cwd_guard + "_off.csv").good());
  ASSERT_EQ(setenv("THSR_BENCH_CSV", "1", 1), 0);
  t.maybe_write_csv(cwd_guard);
  std::ifstream is(cwd_guard + ".csv");
  ASSERT_TRUE(is.good());
  std::string line;
  std::getline(is, line);
  EXPECT_EQ(line, "a,b");
  std::getline(is, line);
  EXPECT_EQ(line, "1,x");
  ASSERT_EQ(unsetenv("THSR_BENCH_CSV"), 0);
  std::remove((cwd_guard + ".csv").c_str());
}

// ---------------------------------------------------------------------------
// PGM / PPM writers (io/image.hpp)
// ---------------------------------------------------------------------------

io::GrayImage random_gray(u64 seed, u32 w, u32 h, std::uint16_t maxval) {
  auto g = test::rng(seed);
  std::uniform_int_distribution<int> px(0, maxval);
  io::GrayImage img;
  img.width = w;
  img.height = h;
  img.maxval = maxval;
  img.pixels.resize(std::size_t{w} * h);
  for (auto& p : img.pixels) p = static_cast<std::uint16_t>(px(g));
  return img;
}

TEST(Pgm, RoundTripEightBit) {
  const io::GrayImage img = random_gray(11, 23, 17, 255);
  std::stringstream ss;
  io::write_pgm(img, ss);
  const io::GrayImage back = io::read_pgm(ss);
  EXPECT_EQ(back.width, img.width);
  EXPECT_EQ(back.height, img.height);
  EXPECT_EQ(back.maxval, img.maxval);
  EXPECT_EQ(back.pixels, img.pixels);
}

TEST(Pgm, RoundTripSixteenBit) {
  const io::GrayImage img = random_gray(12, 9, 31, 65535);
  std::stringstream ss;
  io::write_pgm(img, ss);
  const io::GrayImage back = io::read_pgm(ss);
  EXPECT_EQ(back.maxval, 65535);
  EXPECT_EQ(back.pixels, img.pixels);
}

TEST(Pgm, RoundTripThroughFile) {
  const io::GrayImage img = random_gray(13, 8, 6, 1000);
  const std::string path = ::testing::TempDir() + "/thsr_io.pgm";
  io::write_pgm(img, path);
  const io::GrayImage back = io::read_pgm(path);
  EXPECT_EQ(back.pixels, img.pixels);
  std::remove(path.c_str());
}

TEST(Pgm, ReaderAcceptsHeaderComments) {
  std::stringstream ss("P5\n# a comment\n2 1\n# more\n255\n\x01\x02");
  const io::GrayImage img = io::read_pgm(ss);
  EXPECT_EQ(img.width, 2u);
  EXPECT_EQ(img.pixels, (std::vector<std::uint16_t>{1, 2}));
}

TEST(Pgm, MalformedInputsThrow) {
  const auto rejects = [](const std::string& data) {
    std::stringstream ss(data);
    EXPECT_THROW((void)io::read_pgm(ss), std::runtime_error) << "accepted: " << data;
  };
  rejects("P6\n2 2\n255\nxxxx");          // wrong magic for PGM
  rejects("junk");                        // no magic at all
  rejects("P5\n0 2\n255\n");              // zero dimension
  rejects("P5\n2 2\n0\n\0\0\0\0");        // maxval 0
  rejects("P5\n2 2\n70000\n");            // maxval over 65535
  rejects("P5\n2 2\n255\n\x01\x02");      // truncated pixel data
  rejects("P5\nx 2\n255\n");              // non-numeric dimension
  rejects("P5\n999999999 999999999\n255\n");  // hostile dimensions
  EXPECT_THROW((void)io::read_pgm(std::string("/nonexistent/thsr.pgm")), std::runtime_error);
}

TEST(Pgm, WriterRejectsInvalidImages) {
  std::stringstream ss;
  io::GrayImage empty;
  EXPECT_THROW(io::write_pgm(empty, ss), std::runtime_error);
  io::GrayImage mismatched{2, 2, 255, {1, 2, 3}};  // 3 pixels for a 2x2 image
  EXPECT_THROW(io::write_pgm(mismatched, ss), std::runtime_error);
  io::GrayImage overflow{1, 1, 10, {11}};  // sample above maxval
  EXPECT_THROW(io::write_pgm(overflow, ss), std::runtime_error);
}

TEST(Ppm, RoundTrip) {
  auto g = test::rng(21);
  std::uniform_int_distribution<int> px(0, 255);
  io::RgbImage img;
  img.width = 19;
  img.height = 13;
  img.rgb.resize(std::size_t{img.width} * img.height * 3);
  for (auto& b : img.rgb) b = static_cast<unsigned char>(px(g));
  std::stringstream ss;
  io::write_ppm(img, ss);
  const io::RgbImage back = io::read_ppm(ss);
  EXPECT_EQ(back.width, img.width);
  EXPECT_EQ(back.height, img.height);
  EXPECT_EQ(back.rgb, img.rgb);
}

TEST(Ppm, MalformedInputsThrow) {
  const auto rejects = [](const std::string& data) {
    std::stringstream ss(data);
    EXPECT_THROW((void)io::read_ppm(ss), std::runtime_error) << "accepted: " << data;
  };
  rejects("P5\n1 1\n255\nx");        // PGM magic on the PPM reader
  rejects("P6\n1 1\n65535\n");       // 16-bit PPM unsupported
  rejects("P6\n1 1\n255\nxx");       // truncated (needs 3 bytes)
  rejects("P6\n1\n255\nxxx");        // missing height
}

// ---------------------------------------------------------------------------
// .asc writer round-trip (the third raster output container)
// ---------------------------------------------------------------------------

TEST(AscWriter, RoundTripsBitExactly) {
  AscGrid g;
  g.ncols = 5;
  g.nrows = 3;
  g.xll = 1234.5;
  g.yll = -42.25;
  g.cellsize = 2.5;
  g.nodata = -9999.0;
  g.cell_centered = true;
  g.values = {0.5, 1.25, -9999.0, 3.0,  4.0,  5.5, 6.0, 7.75,
              8.0, 9.0,  10.125,  11.0, 12.0, 13.5, 14.0};
  std::stringstream ss;
  save_asc_grid(g, ss);
  const AscGrid back = load_asc_grid(ss);
  EXPECT_EQ(back.ncols, g.ncols);
  EXPECT_EQ(back.nrows, g.nrows);
  EXPECT_EQ(back.xll, g.xll);
  EXPECT_EQ(back.yll, g.yll);
  EXPECT_EQ(back.cellsize, g.cellsize);
  EXPECT_EQ(back.cell_centered, g.cell_centered);
  ASSERT_TRUE(back.nodata.has_value());
  EXPECT_EQ(*back.nodata, *g.nodata);
  EXPECT_EQ(back.values, g.values);
}

TEST(AscWriter, MalformedInputsThrow) {
  const auto rejects = [](const std::string& data) {
    std::stringstream ss(data);
    EXPECT_THROW((void)load_asc_grid(ss), std::runtime_error) << "accepted: " << data;
  };
  rejects("nrows 2\ncellsize 1\nxllcorner 0\nyllcorner 0\n1 2\n3 4\n");  // missing ncols
  rejects("ncols 2\nnrows 2\nxllcorner 0\nyllcorner 0\n1 2 3 4\n");      // missing cellsize
  rejects("ncols 2\nncols 2\nnrows 2\nxllcorner 0\nyllcorner 0\ncellsize 1\n1 2 3 4\n");
  rejects("ncols 2\nnrows 2\nxllcorner 0\nyllcenter 0\ncellsize 1\n1 2 3 4\n");  // mixed origin
  rejects("ncols 2\nnrows 2\nxllcorner 0\nyllcorner 0\ncellsize 1\n1 2 3\n");    // short data
  rejects("ncols 2\nnrows 2\nxllcorner 0\nyllcorner 0\ncellsize 1\n1 2 3 oops\n");
  rejects("ncols 2\nnrows 2\nxllcorner 0\nyllcorner 0\ncellsize -1\n1 2 3 4\n");
}

// ---------------------------------------------------------------------------
// terrain_from_asc limits: the kMaxAscGrid auto-stride budget and NODATA
// degeneracies
// ---------------------------------------------------------------------------

/// ncols x nrows grid of gently varying NODATA-free heights.
AscGrid synthetic_grid(u32 ncols, u32 nrows) {
  AscGrid g;
  g.ncols = ncols;
  g.nrows = nrows;
  g.cellsize = 1.0;
  g.values.reserve(static_cast<std::size_t>(ncols) * nrows);
  for (u32 r = 0; r < nrows; ++r) {
    for (u32 c = 0; c < ncols; ++c) g.values.push_back(static_cast<double>((r + c) % 7));
  }
  return g;
}

u32 auto_stride_of(u32 ncols, u32 nrows) {
  AscMapping m;
  (void)terrain_from_asc(synthetic_grid(ncols, nrows), {}, &m);
  return m.stride;
}

TEST(AscTerrain, AutoStrideBudgetBoundary) {
  // stride = smallest s with (max(ncols,nrows)-1)/s + 1 <= kMaxAscGrid, so
  // the budget boundary sits exactly at kMaxAscGrid source columns:
  //   180 -> 1 (180 samples, at budget)   181 -> 2 (91 samples)
  //   360 -> 2 (180 samples, at budget)   361 -> 3 (121 samples)
  EXPECT_EQ(auto_stride_of(kMaxAscGrid, 2), 1u);
  EXPECT_EQ(auto_stride_of(kMaxAscGrid + 1, 3), 2u);
  EXPECT_EQ(auto_stride_of(2 * kMaxAscGrid, 4), 2u);
  EXPECT_EQ(auto_stride_of(2 * kMaxAscGrid + 1, 4), 3u);

  // Sampled extents and georeferencing follow the chosen stride.
  AscMapping m;
  (void)terrain_from_asc(synthetic_grid(kMaxAscGrid + 1, 3), {}, &m);
  EXPECT_EQ(m.cols, (kMaxAscGrid + 1 - 1) / 2 + 1);
  EXPECT_EQ(m.rows, 2u);
  EXPECT_EQ(m.cellsize, 2.0);
}

TEST(AscTerrain, ExplicitStrideOverBudgetThrows) {
  // An explicit stride is honored, not clamped: leaving the sampled grid
  // over the kMaxAscGrid budget (or under 2 rows/cols) must throw, never
  // silently resample.
  EXPECT_THROW((void)terrain_from_asc(synthetic_grid(kMaxAscGrid + 1, 3), {.stride = 1}),
               std::runtime_error);
  EXPECT_THROW((void)terrain_from_asc(synthetic_grid(8, 2), {.stride = 2}),
               std::runtime_error);  // 2 rows stride to 1
}

TEST(AscTerrain, NodataOnlyGridThrows) {
  AscGrid g = synthetic_grid(4, 4);
  g.nodata = -9999.0;
  for (double& v : g.values) v = -9999.0;
  EXPECT_THROW((void)terrain_from_asc(g), std::runtime_error);

  // A single data cell short of a full 2x2 block is still untriangulable.
  AscGrid holes = synthetic_grid(4, 4);
  holes.nodata = -9999.0;
  for (u32 r = 0; r < 4; ++r) {
    for (u32 c = 0; c < 4; ++c) {
      if ((r + c) % 2 == 0) holes.values[static_cast<std::size_t>(r) * 4 + c] = -9999.0;
    }
  }
  EXPECT_THROW((void)terrain_from_asc(holes), std::runtime_error);
}

// ---------------------------------------------------------------------------
// AscRowReader: streaming row reads, windowed loads, adversarial payloads
// (the feed for the out-of-core pipeline, src/stream/)
// ---------------------------------------------------------------------------

/// A small grid with distinct values everywhere (detects any misaligned
/// windowed read immediately).
AscGrid distinct_grid(u32 ncols, u32 nrows) {
  AscGrid g;
  g.ncols = ncols;
  g.nrows = nrows;
  g.cellsize = 1.0;
  g.values.resize(static_cast<std::size_t>(ncols) * nrows);
  for (std::size_t i = 0; i < g.values.size(); ++i) {
    g.values[i] = static_cast<double>(i) + 0.25;
  }
  return g;
}

std::string asc_text(const AscGrid& g) {
  std::stringstream ss;
  save_asc_grid(g, ss);
  return ss.str();
}

TEST(AscReader, WindowedReadsMatchWholeFileLoad) {
  const AscGrid g = distinct_grid(6, 5);
  std::stringstream ss(asc_text(g));
  AscRowReader rd(ss);
  EXPECT_EQ(rd.header().ncols, g.ncols);
  EXPECT_EQ(rd.header().nrows, g.nrows);
  EXPECT_EQ(rd.header().cellsize, g.cellsize);

  const auto row_slice = [&](u32 lo, u32 hi) {
    return std::vector<double>(g.values.begin() + static_cast<std::ptrdiff_t>(lo) * g.ncols,
                               g.values.begin() + static_cast<std::ptrdiff_t>(hi) * g.ncols);
  };
  std::vector<double> buf(static_cast<std::size_t>(g.nrows) * g.ncols);

  auto mid = std::span(buf).first(std::size_t{2} * g.ncols);
  rd.read_rows(1, 3, mid);  // forward with a validated skip over row 0
  EXPECT_EQ(std::vector<double>(mid.begin(), mid.end()), row_slice(1, 3));

  rd.read_rows(0, 2, mid);  // backward via recorded offsets
  EXPECT_EQ(std::vector<double>(mid.begin(), mid.end()), row_slice(0, 2));

  auto last = std::span(buf).first(g.ncols);
  rd.read_rows(4, 5, last);  // forward with a gap
  EXPECT_EQ(std::vector<double>(last.begin(), last.end()), row_slice(4, 5));

  rd.reset();  // a fresh pass reproduces the whole payload
  EXPECT_EQ(rd.next_row(), 0u);
  rd.read_rows(0, g.nrows, buf);
  EXPECT_EQ(buf, g.values);

  EXPECT_THROW(rd.read_rows(2, g.nrows + 1, buf), std::runtime_error);  // out of range
}

TEST(AscReader, WindowedFileLoadMatchesWholeFile) {
  AscGrid g = distinct_grid(5, 6);
  g.nodata = -9999.0;
  g.yll = 100.0;
  g.cellsize = 2.0;
  const std::string path = ::testing::TempDir() + "/thsr_window.asc";
  save_asc_grid(g, path);

  const AscGrid whole = load_asc_grid(path);
  const AscGrid win = load_asc_window(path, 1, 4);
  EXPECT_EQ(win.ncols, g.ncols);
  EXPECT_EQ(win.nrows, 3u);
  // Window georeferencing: yll moves north past the dropped southern rows.
  EXPECT_EQ(win.yll, g.yll + (g.nrows - 4) * g.cellsize);
  ASSERT_TRUE(win.nodata.has_value());
  const std::vector<double> want(whole.values.begin() + 1 * g.ncols,
                                 whole.values.begin() + 4 * g.ncols);
  EXPECT_EQ(win.values, want);

  EXPECT_THROW((void)load_asc_window(path, 3, 3), std::runtime_error);  // empty window
  EXPECT_THROW((void)load_asc_window(path, 2, 7), std::runtime_error);  // past the end
  std::remove(path.c_str());
}

TEST(AscReader, MmapAndStreamPathsAgree) {
  const AscGrid g = distinct_grid(7, 4);
  const std::string path = ::testing::TempDir() + "/thsr_mmap.asc";
  save_asc_grid(g, path);
  std::vector<double> mapped_vals(g.values.size()), stream_vals(g.values.size());
  {
    AscRowReader rd(path, /*prefer_mmap=*/true);
#if defined(__unix__) || defined(__APPLE__)
    EXPECT_TRUE(rd.mapped());
#endif
    rd.read_rows(0, g.nrows, mapped_vals);
  }
  {
    AscRowReader rd(path, /*prefer_mmap=*/false);
    EXPECT_FALSE(rd.mapped());
    rd.read_rows(0, g.nrows, stream_vals);
  }
  EXPECT_EQ(mapped_vals, g.values);
  EXPECT_EQ(stream_vals, g.values);
  std::remove(path.c_str());
}

TEST(AscReader, AdversarialPayloadsThrowNeverCrash) {
  // Parse the declared shape to the end; malformed payloads must fault as
  // exceptions at the offending row (exercised under the ASan preset).
  const auto rejects_at_read = [](const std::string& data) {
    std::stringstream ss(data);
    EXPECT_THROW(
        {
          AscRowReader rd(ss);
          std::vector<double> row(rd.header().ncols);
          for (u32 r = 0; r < rd.header().nrows; ++r) rd.read_row(row);
        },
        std::runtime_error)
        << "accepted: " << data;
  };
  const std::string hdr = "ncols 3\nnrows 3\nxllcorner 0\nyllcorner 0\ncellsize 1\n";
  rejects_at_read(hdr + "1 2 3\n4 5\n");           // mid-row EOF (payload truncated)
  rejects_at_read(hdr + "1 2 3\n");                // whole rows missing (dims oversized)
  rejects_at_read(hdr + "1 2 3\n4 x 6\n7 8 9\n");  // non-numeric sample
  rejects_at_read("ncols 3\nxllcorner 0\nyllcorner 0\ncellsize 1\n1 2 3\n");  // no nrows

  {  // hostile per-row width is rejected before any allocation
    std::stringstream ss("ncols 200000000\nnrows 2\nxllcorner 0\nyllcorner 0\ncellsize 1\n");
    EXPECT_THROW(AscRowReader rd(ss), std::runtime_error);
  }
  {  // reading past the declared last row
    std::stringstream ss(hdr + "1 2 3\n4 5 6\n7 8 9\n");
    AscRowReader rd(ss);
    std::vector<double> all(9);
    rd.read_rows(0, 3, all);
    std::vector<double> row(3);
    EXPECT_THROW(rd.read_row(row), std::runtime_error);
  }
}

TEST(AscReader, CrlfParsesIdenticallyToLf) {
  const AscGrid g = distinct_grid(4, 3);
  const std::string lf = asc_text(g);
  std::string crlf, mixed;
  for (std::size_t i = 0; i < lf.size(); ++i) {
    if (lf[i] == '\n') {
      crlf += "\r\n";
      mixed += (i % 2 == 0) ? "\r\n" : "\n";  // alternating line endings
    } else {
      crlf += lf[i];
      mixed += lf[i];
    }
  }
  for (const std::string& text : {crlf, mixed}) {
    std::stringstream ss(text);
    AscRowReader rd(ss);
    std::vector<double> vals(g.values.size());
    rd.read_rows(0, g.nrows, vals);
    EXPECT_EQ(vals, g.values);
  }
}

TEST(AscReader, NodataOnlyWindowLoadsButDoesNotTriangulate) {
  AscGrid g = distinct_grid(4, 6);
  g.nodata = -9999.0;
  for (u32 r = 2; r < 4; ++r) {
    for (u32 c = 0; c < g.ncols; ++c) {
      g.values[static_cast<std::size_t>(r) * g.ncols + c] = *g.nodata;
    }
  }
  const std::string path = ::testing::TempDir() + "/thsr_nodata_window.asc";
  save_asc_grid(g, path);
  const AscGrid win = load_asc_window(path, 2, 4);  // the all-NODATA band
  EXPECT_EQ(win.nrows, 2u);
  for (const double v : win.values) EXPECT_EQ(v, *g.nodata);
  // Loading is fine; building terrain from a dataless window is the error.
  EXPECT_THROW((void)terrain_from_asc(win), std::runtime_error);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace thsr
