/// bench::diff_rows contract (bench/flat_json.hpp): two-artifact timing
/// comparisons are keyed by case *name*, never by position — reordered
/// artifact text, interleaved names, and partially disjoint case sets must
/// all pair up correctly — and significance requires the delta to clear
/// the IQR noise floor of both runs.

#include <gtest/gtest.h>

#include <string>

#include "flat_json.hpp"

namespace thsr::bench {
namespace {

CaseMap parse_or_die(const std::string& text) {
  auto cases = FlatU64Parser(text).parse();
  EXPECT_TRUE(cases.has_value()) << text;
  return cases.value_or(CaseMap{});
}

const DiffRow* find_row(const std::vector<DiffRow>& rows, const std::string& name) {
  for (const DiffRow& r : rows) {
    if (r.name == name) return &r;
  }
  return nullptr;
}

TEST(BenchDiff, PairsByNameNotByPosition) {
  // The same three cases in opposite textual order: every row must still
  // compare a case against its own namesake.
  const CaseMap oldc = parse_or_die(R"({"cases": {
    "alpha": {"median_ns": 100, "iqr_ns": 1},
    "beta":  {"median_ns": 200, "iqr_ns": 1},
    "gamma": {"median_ns": 300, "iqr_ns": 1}}})");
  const CaseMap newc = parse_or_die(R"({"cases": {
    "gamma": {"median_ns": 300, "iqr_ns": 1},
    "beta":  {"median_ns": 400, "iqr_ns": 1},
    "alpha": {"median_ns": 100, "iqr_ns": 1}}})");
  const auto rows = diff_rows(oldc, newc);
  ASSERT_EQ(rows.size(), std::size_t{3});
  for (const DiffRow& r : rows) {
    EXPECT_EQ(r.presence, DiffRow::Presence::Both) << r.name;
    EXPECT_TRUE(r.comparable) << r.name;
  }
  // Only beta changed; a positional pairing would report alpha/gamma deltas.
  EXPECT_DOUBLE_EQ(find_row(rows, "alpha")->delta_pct, 0.0);
  EXPECT_DOUBLE_EQ(find_row(rows, "gamma")->delta_pct, 0.0);
  const DiffRow* beta = find_row(rows, "beta");
  EXPECT_DOUBLE_EQ(beta->delta_pct, 100.0);
  EXPECT_TRUE(beta->significant);
}

TEST(BenchDiff, DisjointAndOverlappingSetsGetPresenceRows) {
  const CaseMap oldc = parse_or_die(R"({"cases": {
    "removed": {"median_ns": 50, "iqr_ns": 1},
    "shared":  {"median_ns": 80, "iqr_ns": 1}}})");
  const CaseMap newc = parse_or_die(R"({"cases": {
    "added":  {"median_ns": 70, "iqr_ns": 1},
    "shared": {"median_ns": 80, "iqr_ns": 1}}})");
  const auto rows = diff_rows(oldc, newc);
  ASSERT_EQ(rows.size(), std::size_t{3});
  EXPECT_EQ(find_row(rows, "added")->presence, DiffRow::Presence::OnlyNew);
  EXPECT_EQ(find_row(rows, "added")->new_median_ns, u64{70});
  EXPECT_EQ(find_row(rows, "removed")->presence, DiffRow::Presence::OnlyOld);
  EXPECT_EQ(find_row(rows, "removed")->old_median_ns, u64{50});
  EXPECT_EQ(find_row(rows, "shared")->presence, DiffRow::Presence::Both);
}

TEST(BenchDiff, FullyDisjointSetsProduceNoComparison) {
  const CaseMap oldc = parse_or_die(R"({"cases": {"a": {"median_ns": 1}}})");
  const CaseMap newc = parse_or_die(R"({"cases": {"b": {"median_ns": 2}}})");
  const auto rows = diff_rows(oldc, newc);
  ASSERT_EQ(rows.size(), std::size_t{2});
  for (const DiffRow& r : rows) {
    EXPECT_NE(r.presence, DiffRow::Presence::Both) << r.name;
    EXPECT_FALSE(r.comparable) << r.name;
  }
}

TEST(BenchDiff, SignificanceRequiresClearingBothIqrs) {
  // Delta of 10ns: old IQR 3 (cleared), new IQR 15 (not cleared) => noise.
  const CaseMap oldc = parse_or_die(R"({"cases": {
    "noisy": {"median_ns": 100, "iqr_ns": 3},
    "clean": {"median_ns": 100, "iqr_ns": 3}}})");
  const CaseMap newc = parse_or_die(R"({"cases": {
    "noisy": {"median_ns": 110, "iqr_ns": 15},
    "clean": {"median_ns": 110, "iqr_ns": 4}}})");
  const auto rows = diff_rows(oldc, newc);
  EXPECT_FALSE(find_row(rows, "noisy")->significant);
  EXPECT_TRUE(find_row(rows, "clean")->significant);
}

TEST(BenchDiff, MissingMedianIsNotComparable) {
  const CaseMap oldc = parse_or_die(R"({"cases": {"a": {"reps": 3}}})");
  const CaseMap newc = parse_or_die(R"({"cases": {"a": {"median_ns": 5}}})");
  const auto rows = diff_rows(oldc, newc);
  ASSERT_EQ(rows.size(), std::size_t{1});
  EXPECT_EQ(rows[0].presence, DiffRow::Presence::Both);
  EXPECT_FALSE(rows[0].comparable);
  EXPECT_FALSE(rows[0].significant);
}

TEST(BenchDiff, EmptyArtifactsYieldNoRows) {
  EXPECT_TRUE(diff_rows({}, {}).empty());
}

}  // namespace
}  // namespace thsr::bench
