/// Property tests for the out-of-core streaming pipeline (src/stream/):
/// the streamed image must be **bitwise identical** to the monolithic
/// solve-and-rasterize of the same grid under the same window — across
/// seeds, terrain families, slab budgets, resident budgets, supersample
/// factors, and backends — and the emitted bands must tile the image with
/// no gap or overlap. Counters (solve work, crossings, hit samples) must
/// not depend on the resident budget or backend at all.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <vector>

#include "core/engine.hpp"
#include "core/hsr.hpp"
#include "io/image.hpp"
#include "parallel/backend.hpp"
#include "raster/raster.hpp"
#include "shard/sharded_engine.hpp"
#include "stream/dem_lattice.hpp"
#include "stream/sinks.hpp"
#include "stream/stream.hpp"
#include "terrain/asc_io.hpp"
#include "test_util.hpp"

namespace thsr {
namespace {

/// The monolithic reference: full-grid terrain on the streaming lattice,
/// one solve, one rasterization under the explicitly given window.
raster::ImageRaster reference_image(const AscGrid& g, const raster::ImageWindow& win, u32 width,
                                    u32 height, u32 supersample) {
  const Terrain t = stream::terrain_from_rows(g.ncols, g.nrows, g.values, g.nodata);
  const HsrResult r = hidden_surface_removal(t);
  raster::RasterOptions ropt;
  ropt.width = width;
  ropt.height = height;
  ropt.supersample = supersample;
  ropt.window = win;
  return raster::rasterize(t, r.map, ropt);
}

void expect_images_identical(const raster::ImageRaster& a, const raster::ImageRaster& b) {
  ASSERT_EQ(a.width, b.width);
  ASSERT_EQ(a.height, b.height);
  EXPECT_EQ(a.ids, b.ids);
  EXPECT_EQ(a.depth, b.depth);        // float vectors: bitwise-equal values
  EXPECT_EQ(a.coverage, b.coverage);
  EXPECT_EQ(a.crossings, b.crossings);
  EXPECT_EQ(a.hit_samples, b.hit_samples);
  EXPECT_EQ(a.samples, b.samples);
}

void expect_bands_tile(const std::vector<std::pair<u32, u32>>& bands, u32 width) {
  ASSERT_FALSE(bands.empty());
  EXPECT_EQ(bands.front().first, 0u);
  EXPECT_EQ(bands.back().second, width);
  for (std::size_t i = 0; i < bands.size(); ++i) {
    EXPECT_LT(bands[i].first, bands[i].second);
    if (i + 1 < bands.size()) EXPECT_EQ(bands[i].second, bands[i + 1].first);
  }
}

stream::StreamStats stream_grid(const AscGrid& g, const stream::StreamOptions& opt,
                                stream::MemoryBandSink& sink) {
  stream::GridRowSource src(g);
  return stream::stream_solve(src, opt, sink);
}

// ---------------------------------------------------------------------------
// The tentpole property: streamed == monolithic, across everything
// ---------------------------------------------------------------------------

TEST(Stream, MatchesMonolithicAcrossSeedsFamiliesAndBudgets) {
  const u32 W = 40, H = 30;
  for (const u64 seed : {u64{1}, u64{7}}) {
    for (const test::GridFamily fam : test::kAllGridFamilies) {
      const AscGrid g = test::make_asc_grid(20, 17, fam, seed);
      // slab_rows=3 over 16 cell rows -> S = 6 slabs.
      const u32 S = 6;
      std::optional<raster::ImageRaster> ref;
      std::optional<Counters> work;
      for (const u32 budget : {1u, 2u, S / 2, S, S + 3}) {
        stream::StreamOptions opt;
        opt.slab_rows = 3;
        opt.resident_slabs = budget;
        opt.width = W;
        opt.height = H;
        stream::MemoryBandSink sink(W, H, 1);
        const stream::StreamStats st = stream_grid(g, opt, sink);
        EXPECT_EQ(st.slabs, S);
        expect_bands_tile(sink.bands(), W);
        if (!ref) {
          ref = reference_image(g, st.window, W, H, 1);
          work = st.work;
        } else {
          // Counters are budget-invariant, bit for bit.
          EXPECT_TRUE(st.work == *work) << "family " << static_cast<int>(fam) << " budget "
                                        << budget;
        }
        expect_images_identical(sink.image(), *ref);
      }
    }
  }
}

TEST(Stream, MatchesMonolithicAcrossBackends) {
  const u32 W = 32, H = 24;
  const AscGrid g = test::make_asc_grid(16, 13, test::GridFamily::Smooth, 3);
  std::optional<raster::ImageRaster> ref;
  std::optional<Counters> work;
  for (const par::Backend b : par::available_backends()) {
    stream::StreamOptions opt;
    opt.slab_rows = 4;
    opt.resident_slabs = 2;
    opt.width = W;
    opt.height = H;
    opt.solve.backend = b;
    opt.solve.threads = b == par::Backend::Serial ? 1 : 2;
    stream::MemoryBandSink sink(W, H, 1);
    const stream::StreamStats st = stream_grid(g, opt, sink);
    if (!ref) {
      ref = reference_image(g, st.window, W, H, 1);
      work = st.work;
    }
    EXPECT_TRUE(st.work == *work) << "backend " << static_cast<int>(b);
    expect_images_identical(sink.image(), *ref);
  }
}

TEST(Stream, SupersampledBandBoundariesSplitPixelsCorrectly) {
  // supersample 3 with narrow slabs: band boundaries routinely land inside
  // a pixel column, exercising the sub-column carry.
  const u32 W = 25, H = 18, sup = 3;
  const AscGrid g = test::make_asc_grid(14, 15, test::GridFamily::Smooth, 11);
  std::optional<raster::ImageRaster> ref;
  for (const u32 budget : {1u, 3u, 7u}) {
    stream::StreamOptions opt;
    opt.slab_rows = 2;  // S = 7
    opt.resident_slabs = budget;
    opt.width = W;
    opt.height = H;
    opt.supersample = sup;
    stream::MemoryBandSink sink(W, H, sup);
    const stream::StreamStats st = stream_grid(g, opt, sink);
    expect_bands_tile(sink.bands(), W);
    if (!ref) ref = reference_image(g, st.window, W, H, sup);
    expect_images_identical(sink.image(), *ref);
  }
}

TEST(Stream, MatchesRasterizeSharded) {
  // Satellite fidelity check against the in-core sharded path itself.
  const u32 W = 36, H = 28;
  const AscGrid g = test::make_asc_grid(18, 13, test::GridFamily::Smooth, 5);
  stream::StreamOptions opt;
  opt.slab_rows = 4;
  opt.width = W;
  opt.height = H;
  stream::MemoryBandSink sink(W, H, 1);
  const stream::StreamStats st = stream_grid(g, opt, sink);

  const Terrain t = stream::terrain_from_rows(g.ncols, g.nrows, g.values, g.nodata);
  shard::ShardedEngine se;
  se.prepare(t, 4);
  const auto slab_results = se.solve_slabs();
  std::vector<const VisibilityMap*> maps;
  for (const auto& r : slab_results) maps.push_back(r ? &r->map : nullptr);
  raster::RasterOptions ropt;
  ropt.width = W;
  ropt.height = H;
  ropt.window = st.window;
  const raster::ImageRaster sharded = raster::rasterize_sharded(se.plan(), maps, ropt);
  expect_images_identical(sink.image(), sharded);
}

// ---------------------------------------------------------------------------
// Budget edges (the kMaxRasterAxis pattern): 0 rejected, 1 works, >= S
// degenerates to the in-core shape bit-identically
// ---------------------------------------------------------------------------

TEST(StreamDeath, ResidentBudgetZeroRejected) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const AscGrid g = test::make_asc_grid(8, 7, test::GridFamily::Flat, 1);
  stream::StreamOptions opt;
  opt.resident_slabs = 0;
  stream::MemoryBandSink sink(opt.width, opt.height, 1);
  stream::GridRowSource src(g);
  EXPECT_DEATH((void)stream::stream_solve(src, opt, sink), "resident_slabs");
}

TEST(Stream, ResidentBytesBudgetEnforced) {
  const AscGrid g = test::make_asc_grid(16, 13, test::GridFamily::Smooth, 2);
  stream::StreamOptions opt;
  opt.slab_rows = 4;
  opt.width = 32;
  opt.height = 24;

  opt.resident_bytes_budget = 1024;  // absurdly small: must throw, not crash
  {
    stream::MemoryBandSink sink(opt.width, opt.height, 1);
    stream::GridRowSource src(g);
    EXPECT_THROW((void)stream::stream_solve(src, opt, sink), std::runtime_error);
  }

  opt.resident_bytes_budget = 0;  // measure the actual peak...
  u64 peak = 0;
  {
    stream::MemoryBandSink sink(opt.width, opt.height, 1);
    const stream::StreamStats st = stream_grid(g, opt, sink);
    peak = st.peak_resident_bytes;
    EXPECT_GT(peak, 0u);
  }
  opt.resident_bytes_budget = peak;  // ...which must then pass as a budget
  {
    stream::MemoryBandSink sink(opt.width, opt.height, 1);
    const stream::StreamStats st = stream_grid(g, opt, sink);
    EXPECT_LE(st.peak_resident_bytes, peak);
  }
}

TEST(Stream, SlabWindowOverCoordinateBudgetThrows) {
  // A grid wide enough that max_window_rows is 2: slab_rows = 2 makes the
  // very first slab window span 3 grid rows, which blows the rebased
  // coordinate budget and must be rejected (before any solve work), never
  // silently truncated.
  AscGrid g;
  g.ncols = 100000;
  g.nrows = 5;
  g.cellsize = 1.0;
  g.values.assign(std::size_t{g.nrows} * g.ncols, 1.0);
  ASSERT_EQ(stream::max_window_rows(g.ncols), 2u);
  stream::StreamOptions opt;
  opt.slab_rows = 2;
  stream::MemoryBandSink sink(opt.width, opt.height, 1);
  stream::GridRowSource src(g);
  EXPECT_THROW((void)stream::stream_solve(src, opt, sink), std::runtime_error);
}

TEST(Stream, NodataOnlyGridStreamsToBackground) {
  AscGrid g = test::make_asc_grid(8, 7, test::GridFamily::Flat, 1);
  for (double& v : g.values) v = *g.nodata;
  stream::StreamOptions opt;
  opt.slab_rows = 2;
  opt.width = 16;
  opt.height = 12;
  stream::MemoryBandSink sink(opt.width, opt.height, 1);
  const stream::StreamStats st = stream_grid(g, opt, sink);
  EXPECT_EQ(st.triangles, 0u);
  EXPECT_EQ(st.hit_samples, 0u);
  expect_bands_tile(sink.bands(), opt.width);
  for (const u32 id : sink.image().ids) EXPECT_EQ(id, raster::kNoTriangle);
  // The in-core loader rejects the same grid outright.
  EXPECT_THROW((void)stream::terrain_from_rows(g.ncols, g.nrows, g.values, g.nodata),
               std::runtime_error);
}

// ---------------------------------------------------------------------------
// Out-of-core scale: >= 100x the resident window, end to end
// ---------------------------------------------------------------------------

TEST(Stream, HundredTimesResidentCapacityStreamsAndMatches) {
  // 2001 x 8 grid, slab windows of at most 10 rows: the grid is ~200x the
  // resident window. Small enough in absolute terms that the monolithic
  // path still fits for the bitwise comparison.
  const u32 W = 32, H = 24;
  AscGrid g;
  g.ncols = 8;
  g.nrows = 2001;
  g.cellsize = 1.0;
  g.values.resize(std::size_t{g.nrows} * g.ncols);
  for (u32 r = 0; r < g.nrows; ++r) {
    for (u32 c = 0; c < g.ncols; ++c) {
      g.values[std::size_t{r} * g.ncols + c] =
          static_cast<double>((r * 7 + c * 5) % 23) + (r % 31 == 0 ? 40.0 : 0.0);
    }
  }
  stream::StreamOptions opt;
  opt.slab_rows = 8;  // S = 250
  opt.width = W;
  opt.height = H;
  opt.resident_bytes_budget = 16u << 20;
  stream::MemoryBandSink sink(W, H, 1);
  const stream::StreamStats st = stream_grid(g, opt, sink);
  EXPECT_EQ(st.slabs, 250u);
  EXPECT_LE(st.peak_resident_bytes, opt.resident_bytes_budget);
  expect_bands_tile(sink.bands(), W);
  expect_images_identical(sink.image(), reference_image(g, st.window, W, H, 1));
}

// ---------------------------------------------------------------------------
// File-backed source: identical to the in-memory source, mapped or not
// ---------------------------------------------------------------------------

TEST(Stream, AscFileSourceMatchesGridSource) {
  const AscGrid g = test::make_asc_grid(14, 11, test::GridFamily::Holes, 9);
  const std::string path = ::testing::TempDir() + "/thsr_stream_src.asc";
  save_asc_grid(g, path);

  stream::StreamOptions opt;
  opt.slab_rows = 3;
  opt.width = 28;
  opt.height = 20;
  stream::MemoryBandSink want(opt.width, opt.height, 1);
  (void)stream_grid(g, opt, want);

  for (const bool mmap : {true, false}) {
    stream::AscFileRowSource src(path, mmap);
    stream::MemoryBandSink got(opt.width, opt.height, 1);
    (void)stream::stream_solve(src, opt, got);
    expect_images_identical(got.image(), want.image());
  }
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Disk sinks uphold the tiling contract
// ---------------------------------------------------------------------------

TEST(Stream, PgmCoverageSinkRoundTrips) {
  const AscGrid g = test::make_asc_grid(12, 11, test::GridFamily::Smooth, 4);
  const std::string path = ::testing::TempDir() + "/thsr_stream_cov.pgm";
  stream::StreamOptions opt;
  opt.slab_rows = 3;
  opt.width = 24;
  opt.height = 16;

  stream::MemoryBandSink mem(opt.width, opt.height, 1);
  (void)stream_grid(g, opt, mem);

  stream::PgmCoverageBandSink pgm(path, opt.width, opt.height);
  {
    stream::GridRowSource src(g);
    (void)stream::stream_solve(src, opt, pgm);
  }
  pgm.finish();
  const io::GrayImage img = io::read_pgm(path);
  ASSERT_EQ(img.width, opt.width);
  ASSERT_EQ(img.height, opt.height);
  for (u32 r = 0; r < img.height; ++r) {
    for (u32 c = 0; c < img.width; ++c) {
      const auto want = static_cast<std::uint16_t>(
          std::llround(static_cast<double>(mem.image().coverage_at(r, c)) * 65535.0));
      EXPECT_EQ(img.at(r, c), want);
    }
  }
  std::remove(path.c_str());
}

TEST(Stream, AscTileSinkTilesTheImage) {
  const AscGrid g = test::make_asc_grid(12, 9, test::GridFamily::Smooth, 6);
  const std::string prefix = ::testing::TempDir() + "/thsr_stream_tile";
  stream::StreamOptions opt;
  opt.slab_rows = 2;
  opt.width = 20;
  opt.height = 14;
  stream::AscTileBandSink sink(prefix, opt.width, opt.height);
  {
    stream::GridRowSource src(g);
    (void)stream::stream_solve(src, opt, sink);
  }
  sink.finish();  // throws on any gap or overlap
  u64 cols_covered = 0;
  for (const std::string& p : sink.paths()) {
    const AscGrid tile = load_asc_grid(p);
    EXPECT_EQ(tile.nrows, opt.height);
    cols_covered += tile.ncols;
    std::remove(p.c_str());
  }
  EXPECT_EQ(cols_covered, opt.width);
}

}  // namespace
}  // namespace thsr
