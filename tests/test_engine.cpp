/// Session-engine contract (src/core/engine.hpp): a warm HsrEngine solve is
/// bit-identical — visibility map and work counters — to a fresh one-shot
/// hidden_surface_removal() with the same options, across all algorithms,
/// both phase-2 oracles, and every available backend; solve_batch matches a
/// sequential loop; prepare() on a second terrain fully evicts the first;
/// and warm solves recycle arena blocks instead of allocating.

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/engine.hpp"
#include "terrain/generators.hpp"
#include "test_util.hpp"

namespace thsr {
namespace {

Terrain make(Family f, u32 grid, u64 seed = 1) {
  GenOptions opt;
  opt.family = f;
  opt.grid = grid;
  opt.seed = seed;
  return make_terrain(opt);
}

// Map + stats equality at the bit-identical level the engine guarantees.
void expect_identical(const HsrResult& got, const HsrResult& want, const std::string& label) {
  const auto diff = want.map.first_difference(got.map);
  EXPECT_FALSE(diff.has_value()) << label << ": maps differ at edge " << *diff;
  EXPECT_EQ(got.stats.work, want.stats.work) << label << ": work counters differ";
  EXPECT_EQ(got.stats.k_pieces, want.stats.k_pieces) << label;
  EXPECT_EQ(got.stats.k_crossings, want.stats.k_crossings) << label;
  EXPECT_EQ(got.stats.treap_nodes, want.stats.treap_nodes) << label;
  EXPECT_EQ(got.stats.phase1_pieces, want.stats.phase1_pieces) << label;
  EXPECT_EQ(got.stats.n_edges, want.stats.n_edges) << label;
  EXPECT_EQ(got.stats.n_slivers, want.stats.n_slivers) << label;
  EXPECT_EQ(got.stats.depth_constraints, want.stats.depth_constraints) << label;
  ASSERT_EQ(got.stats.layers.size(), want.stats.layers.size()) << label;
  for (std::size_t l = 0; l < want.stats.layers.size(); ++l) {
    const LayerStats &g = got.stats.layers[l], &w = want.stats.layers[l];
    EXPECT_EQ(g.nodes, w.nodes) << label << " layer " << l;
    EXPECT_EQ(g.pieces_consumed, w.pieces_consumed) << label << " layer " << l;
    EXPECT_EQ(g.events, w.events) << label << " layer " << l;
    EXPECT_EQ(g.splices, w.splices) << label << " layer " << l;
    EXPECT_EQ(g.treap_nodes, w.treap_nodes) << label << " layer " << l;
    EXPECT_EQ(g.profile_pieces, w.profile_pieces) << label << " layer " << l;
  }
}

std::vector<HsrOptions> mixed_options() {
  return {
      {.algorithm = Algorithm::Parallel},
      {.algorithm = Algorithm::Sequential},
      {.algorithm = Algorithm::Reference},
      {.algorithm = Algorithm::Parallel, .phase2_oracle = Phase2Oracle::MaterializedScan},
      // Layer stats must stay per-item exact even when batch items run
      // concurrently (thread-local counter attribution).
      {.algorithm = Algorithm::Parallel, .collect_layer_stats = true},
      {.algorithm = Algorithm::Parallel},  // repeat: second warm run of the same config
  };
}

TEST(Engine, WarmSolvesMatchOneShotAcrossAlgorithmsAndOracles) {
  const Terrain t = make(Family::Fbm, 16);
  HsrEngine engine;
  engine.prepare(t);
  for (const HsrOptions& opt : mixed_options()) {
    const HsrResult fresh = hidden_surface_removal(t, opt);
    const HsrResult warm = engine.solve(opt);
    expect_identical(warm, fresh, std::string("algorithm ") + algorithm_name(opt.algorithm));
  }
}

TEST(Engine, WarmSolvesMatchOneShotAcrossBackends) {
  const Terrain t = make(Family::TerraceBack, 12);
  HsrEngine engine;
  engine.prepare(t);
  for (const par::Backend b : par::available_backends()) {
    HsrOptions opt{.algorithm = Algorithm::Parallel, .threads = 2, .backend = b};
    const HsrResult fresh = hidden_surface_removal(t, opt);
    const HsrResult warm = engine.solve(opt);
    expect_identical(warm, fresh, std::string("backend ") + par::backend_name(b));
  }
}

TEST(Engine, SolveBatchMatchesSequentialLoop) {
  const Terrain t = make(Family::Fbm, 14, 2);
  const std::vector<HsrOptions> opts = mixed_options();

  HsrEngine loop_engine;
  loop_engine.prepare(t);
  std::vector<HsrResult> loop;
  loop.reserve(opts.size());
  for (const HsrOptions& o : opts) loop.push_back(loop_engine.solve(o));

  HsrEngine batch_engine;
  batch_engine.prepare(t);
  const std::vector<HsrResult> batch = batch_engine.solve_batch(opts);

  ASSERT_EQ(batch.size(), opts.size());
  for (std::size_t i = 0; i < opts.size(); ++i) {
    expect_identical(batch[i], loop[i], "batch item " + std::to_string(i));
  }
}

TEST(Engine, SecondPrepareFullyEvictsFirstTerrain) {
  const Terrain t1 = make(Family::Fbm, 14, 1);
  const Terrain t2 = make(Family::Valley, 10, 7);
  HsrEngine engine;
  engine.prepare(t1);
  (void)engine.solve({.algorithm = Algorithm::Parallel});
  engine.prepare(t2);
  EXPECT_EQ(engine.terrain(), &t2);
  for (const Algorithm a : {Algorithm::Parallel, Algorithm::Sequential, Algorithm::Reference}) {
    const HsrOptions opt{.algorithm = a};
    expect_identical(engine.solve(opt), hidden_surface_removal(t2, opt),
                     std::string("post-evict ") + algorithm_name(a));
  }
}

TEST(Engine, WarmSolveAllocatesNoNewArenaBlocks) {
  const Terrain t = make(Family::Fbm, 20);
  HsrEngine engine;
  engine.prepare(t);
  for (const Algorithm a : {Algorithm::Parallel, Algorithm::Sequential}) {
    // threads=1: block counts — unlike work counters — depend on which
    // workers happen to allocate, so only serial runs repeat exactly.
    const HsrOptions opt{.algorithm = a, .threads = 1};
    (void)engine.solve(opt);  // cold: sizes the arena
    const u64 blocks = engine.arena_blocks();
    const u64 nodes_before = engine.arena_nodes();
    (void)engine.solve(opt);  // warm: must refill retained blocks only
    EXPECT_EQ(engine.arena_blocks(), blocks)
        << algorithm_name(a) << ": warm solve allocated new arena blocks";
    EXPECT_GT(engine.arena_nodes(), nodes_before);  // it did rebuild the treap
  }
}

TEST(Engine, RecycledResultStorageYieldsIdenticalNextSolve) {
  const Terrain t = make(Family::Spikes, 14);
  const HsrOptions opt{.algorithm = Algorithm::Parallel};
  const HsrResult fresh = hidden_surface_removal(t, opt);
  HsrEngine engine;
  engine.prepare(t);
  HsrResult first = engine.solve(opt);
  expect_identical(first, fresh, "pre-recycle");
  engine.recycle(std::move(first));
  expect_identical(engine.solve(opt), fresh, "post-recycle");
}

TEST(Engine, SolveRequiresPrepare) {
  HsrEngine engine;
  EXPECT_FALSE(engine.prepared());
  EXPECT_EQ(engine.terrain(), nullptr);
  EXPECT_DEATH((void)engine.solve(), "prepared");
}

TEST(ScopedConfig, RestoresThreadsAndBackendOnUnwind) {
  const int threads0 = par::max_threads();
  const par::Backend backend0 = par::backend();
  try {
    const par::ScopedConfig cfg(threads0 + 3, par::Backend::Pool);
    EXPECT_TRUE(cfg.backend_applied());
    EXPECT_EQ(par::max_threads(), threads0 + 3);
    EXPECT_EQ(par::backend(), par::Backend::Pool);
    throw std::runtime_error("mid-solve failure");
  } catch (const std::runtime_error&) {
  }
  EXPECT_EQ(par::max_threads(), threads0);
  EXPECT_EQ(par::backend(), backend0);
}

TEST(ScopedConfig, SnapshotsConfiguredThreadsNotSerialRegionMask) {
  const int threads0 = par::max_threads();
  {
    const par::SerialRegion serial;
    ASSERT_EQ(par::max_threads(), 1);
    // Must capture the *configured* count, not the masked 1 — otherwise the
    // restore below would pin the global worker count to 1.
    const par::ScopedConfig cfg(4, std::nullopt);
  }
  EXPECT_EQ(par::max_threads(), threads0);
}

TEST(SerialRegion, ForcesInlineExecutionOnThisThread) {
  EXPECT_FALSE(par::serial_forced());
  {
    const par::SerialRegion serial;
    EXPECT_TRUE(par::serial_forced());
    EXPECT_EQ(par::max_threads(), 1);
    {
      const par::SerialRegion nested;
      EXPECT_TRUE(par::serial_forced());
    }
    EXPECT_TRUE(par::serial_forced());
  }
  EXPECT_FALSE(par::serial_forced());
}

}  // namespace
}  // namespace thsr
