/// Property tests for the arena-indexed persistent treap (DESIGN.md
/// section 1.9). Three families of guarantees, each checked by explicit
/// traversal rather than through ptreap::validate (which would share bugs
/// with the code under test):
///
///  1. Structural invariants after random splice sequences — BST order on
///     start keys, strict heap order under the full priority comparator,
///     exact subtree counts, contiguous full coverage, and z-boxes that
///     contain every descendant's range.
///  2. Version isolation — a snapshot of any published version is
///     bit-identical (keys, edges, priorities, counts) after arbitrarily
///     many later updates branched off any version.
///  3. Layout equivalence — a pointer-based shim replicating the treap
///     algorithm over heap nodes (the pre-flattening representation)
///     produces the same tree node-for-node, preorder, as the arena-indexed
///     implementation on identical operation sequences. This pins that the
///     flattening was purely representational: the shim deliberately
///     duplicates the content-hash and tie-break constants, so any drift in
///     shape, priorities, or counts fails here before it can silently
///     change maps or work counters.

#include <gtest/gtest.h>

#include <memory>
#include <random>
#include <vector>

#include "persist/ptreap.hpp"
#include "test_util.hpp"

namespace thsr {
namespace {

// --- replicated shape constants -------------------------------------------
// Mirrors of ptreap.cpp's internal hash/comparator. Duplicated on purpose:
// the arena layout's claim is that shape is a pure function of the piece
// set under exactly these constants, so the test must not link against the
// originals.

u64 mix(u64 x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

u64 content_prio(const PieceData& p) noexcept {
  return mix(mix(static_cast<u64>(p.edge)) ^ mix(static_cast<u64>(p.y0.p)) ^
             mix(static_cast<u64>(p.y0.q) * 0x517cc1b727220a95ull));
}

bool prio_less(u64 pa, const PieceData& a, u64 pb, const PieceData& b) noexcept {
  if (pa != pb) return pa < pb;
  if (a.edge != b.edge) return a.edge < b.edge;
  return cmp(a.y0, b.y0) < 0;
}

// --- pointer-layout shim ---------------------------------------------------
// The pre-flattening representation: heap nodes addressed by pointer, same
// algorithm (path-copying make/join/split_at/replace_range) transcribed
// 1:1. No z-boxes — those are float caches derived per node, covered by the
// invariant test instead.

struct ShimNode {
  PieceData piece;
  u64 prio{0};
  const ShimNode* l{nullptr};
  const ShimNode* r{nullptr};
  u32 count{1};
};

class Shim {
 public:
  const ShimNode* make(const ShimNode* l, const ShimNode* r, const PieceData& p) {
    nodes_.push_back(std::make_unique<ShimNode>());
    ShimNode& n = *nodes_.back();
    n.piece = p;
    n.prio = content_prio(p);
    n.l = l;
    n.r = r;
    n.count = 1 + (l ? l->count : 0) + (r ? r->count : 0);
    return &n;
  }

  const ShimNode* leaf(const PieceData& p) { return make(nullptr, nullptr, p); }

  const ShimNode* join(const ShimNode* x, const ShimNode* y) {
    if (!x) return y;
    if (!y) return x;
    if (prio_less(y->prio, y->piece, x->prio, x->piece)) {
      return make(x->l, join(x->r, y), x->piece);
    }
    return make(join(x, y->l), y->r, y->piece);
  }

  void split_key(const ShimNode* t, const QY& y, const ShimNode*& l, const ShimNode*& r) {
    if (!t) {
      l = r = nullptr;
      return;
    }
    if (cmp(t->piece.y0, y) < 0) {
      const ShimNode* rl = nullptr;
      split_key(t->r, y, rl, r);
      l = make(t->l, rl, t->piece);
    } else {
      const ShimNode* lr = nullptr;
      split_key(t->l, y, l, lr);
      r = make(lr, t->r, t->piece);
    }
  }

  PieceData remove_last(const ShimNode* t, const ShimNode*& rest) {
    if (!t->r) {
      rest = t->l;
      return t->piece;
    }
    const ShimNode* rr = nullptr;
    const PieceData p = remove_last(t->r, rr);
    rest = make(t->l, rr, t->piece);
    return p;
  }

  void split_at(const ShimNode* t, const QY& y, const ShimNode*& l, const ShimNode*& r) {
    split_key(t, y, l, r);
    if (!l) return;
    const ShimNode* m = l;
    while (m->r) m = m->r;
    if (cmp(m->piece.y1, y) <= 0) return;
    const ShimNode* rest = nullptr;
    const PieceData p = remove_last(l, rest);
    l = rest;
    if (cmp(p.y0, y) < 0) l = join(l, leaf(PieceData{p.y0, y, p.edge}));
    if (cmp(y, p.y1) < 0) r = join(leaf(PieceData{y, p.y1, p.edge}), r);
  }

  const ShimNode* make_floor() {
    return leaf(PieceData{QY::of(-kMaxCoord), QY::of(kMaxCoord), kFloorEdge});
  }

  const ShimNode* replace_range(const ShimNode* t, const QY& lo, const QY& hi,
                                std::span<const PieceData> run) {
    const ShimNode *left = nullptr, *mid = nullptr, *dropped = nullptr, *right = nullptr;
    split_at(t, lo, left, mid);
    split_at(mid, hi, dropped, right);
    (void)dropped;
    const ShimNode* run_t = nullptr;
    for (const PieceData& p : run) run_t = join(run_t, leaf(p));
    return join(join(left, run_t), right);
  }

 private:
  std::vector<std::unique_ptr<ShimNode>> nodes_;
};

// --- shared random-splice generator ---------------------------------------

struct Splice {
  QY lo, hi;
  std::vector<PieceData> run;
};

/// Deterministic splice sequence: exact-rational intervals with small
/// denominators, 1-4 contiguous run pieces each (the same distribution
/// tests/test_treap.cpp uses for its model check).
std::vector<Splice> random_splices(u64 seed, int steps, int max_edge) {
  auto g = test::rng(seed);
  std::uniform_int_distribution<i64> coord(-900, 900);
  std::uniform_int_distribution<int> den(1, 7), nrun(1, 4), edge(0, max_edge);
  std::vector<Splice> out;
  for (int step = 0; step < steps; ++step) {
    const int d1 = den(g), d2 = den(g);
    QY lo(coord(g) * d1 + den(g) - 1, d1);
    QY hi(coord(g) * d2 + den(g) - 1, d2);
    if (!(lo < hi)) std::swap(lo, hi);
    if (!(lo < hi)) continue;
    const int k = nrun(g);
    std::vector<QY> cuts{lo};
    for (int i = 1; i < k; ++i) {
      const QY c(lo.p * (k - i) * hi.q + hi.p * i * lo.q, i128{k} * lo.q * hi.q);
      if (cuts.back() < c && c < hi) cuts.push_back(c);
    }
    cuts.push_back(hi);
    Splice s{lo, hi, {}};
    for (std::size_t i = 0; i + 1 < cuts.size(); ++i) {
      s.run.push_back({cuts[i], cuts[i + 1], static_cast<u32>(edge(g))});
    }
    out.push_back(std::move(s));
  }
  return out;
}

std::vector<Seg2> wide_segments(u64 seed, std::size_t n) {
  auto g = test::rng(seed);
  std::uniform_int_distribution<i64> v(-500, 500);
  std::vector<Seg2> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(Seg2{-1000, v(g), 1000, v(g)});
  return out;
}

// --- 1. structural invariants ---------------------------------------------

struct Traversal {
  std::vector<const PNode*> inorder;
  u64 nodes{0};
};

void walk(ptreap::Ref t, Traversal& tr) {
  if (!t) return;
  ++tr.nodes;
  const PNode& n = *t;

  // Heap order under the *full* comparator: a child is strictly less than
  // its parent (the total order has no ties across distinct keys).
  for (const ptreap::Ref c : {t.left(), t.right()}) {
    if (c) {
      EXPECT_TRUE(prio_less(c->prio, c->piece, n.prio, n.piece))
          << "child priority not below parent";
    }
  }

  // Priorities really are the content hash (shape determinism).
  EXPECT_EQ(n.prio, content_prio(n.piece));

  // Exact subtree count.
  const u32 lc = t.left() ? t.left()->count : 0;
  const u32 rc = t.right() ? t.right()->count : 0;
  EXPECT_EQ(n.count, 1 + lc + rc);

  // z-box containment: the node's cached range covers both children's.
  for (const ptreap::Ref c : {t.left(), t.right()}) {
    if (c) {
      EXPECT_LE(n.zlo, c->zlo);
      EXPECT_GE(n.zhi, c->zhi);
    }
  }

  walk(t.left(), tr);
  tr.inorder.push_back(&n);
  walk(t.right(), tr);
}

class PTreapPropertyP : public ::testing::TestWithParam<u64> {};

TEST_P(PTreapPropertyP, InvariantsHoldAfterEverySplice) {
  const u64 seed = GetParam();
  PArena arena;
  const auto segs = wide_segments(seed * 5 + 3, 16);
  ptreap::Ref t = ptreap::make_floor(arena);
  for (const Splice& s : random_splices(seed, 40, 15)) {
    t = ptreap::replace_range(arena, t, s.lo, s.hi, s.run, segs);

    Traversal tr;
    walk(t, tr);
    EXPECT_EQ(tr.nodes, ptreap::count(t));

    // BST order on start keys + contiguous full coverage of the y-range.
    ASSERT_FALSE(tr.inorder.empty());
    EXPECT_EQ(cmp(tr.inorder.front()->piece.y0, QY::of(-kMaxCoord)), 0);
    EXPECT_EQ(cmp(tr.inorder.back()->piece.y1, QY::of(kMaxCoord)), 0);
    for (std::size_t i = 0; i + 1 < tr.inorder.size(); ++i) {
      const PNode& a = *tr.inorder[i];
      const PNode& b = *tr.inorder[i + 1];
      EXPECT_LT(cmp(a.piece.y0, b.piece.y0), 0) << "keys out of order at " << i;
      EXPECT_EQ(cmp(a.piece.y1, b.piece.y0), 0) << "coverage gap at " << i;
    }
    for (const PNode* n : tr.inorder) EXPECT_LT(cmp(n->piece.y0, n->piece.y1), 0);
  }
}

// --- 2. version isolation ---------------------------------------------------

struct Snapshot {
  std::vector<PieceData> pieces;
  std::vector<u64> prios;
  u32 root_count{0};
};

Snapshot snapshot(ptreap::Ref t) {
  Snapshot s;
  ptreap::collect(t, s.pieces);
  Traversal tr;
  walk(t, tr);
  for (const PNode* n : tr.inorder) s.prios.push_back(n->prio);
  s.root_count = ptreap::count(t);
  return s;
}

void expect_snapshot_equal(const Snapshot& a, const Snapshot& b) {
  ASSERT_EQ(a.pieces.size(), b.pieces.size());
  ASSERT_EQ(a.prios.size(), b.prios.size());
  EXPECT_EQ(a.root_count, b.root_count);
  for (std::size_t i = 0; i < a.pieces.size(); ++i) {
    EXPECT_EQ(cmp(a.pieces[i].y0, b.pieces[i].y0), 0);
    EXPECT_EQ(cmp(a.pieces[i].y1, b.pieces[i].y1), 0);
    EXPECT_EQ(a.pieces[i].edge, b.pieces[i].edge);
    EXPECT_EQ(a.prios[i], b.prios[i]);
  }
}

TEST_P(PTreapPropertyP, PublishedVersionsAreImmutable) {
  const u64 seed = GetParam();
  auto g = test::rng(seed ^ 0xabcdef);
  PArena arena;
  const auto segs = wide_segments(seed * 7 + 1, 16);

  std::vector<ptreap::Ref> versions{ptreap::make_floor(arena)};
  std::vector<Snapshot> snaps{snapshot(versions[0])};

  // Branch each update off a random prior version (persistence DAG, not a
  // chain), then re-verify every snapshot ever taken.
  for (const Splice& s : random_splices(seed ^ 0x5eed, 30, 15)) {
    const std::size_t base =
        std::uniform_int_distribution<std::size_t>(0, versions.size() - 1)(g);
    versions.push_back(ptreap::replace_range(arena, versions[base], s.lo, s.hi, s.run, segs));
    snaps.push_back(snapshot(versions.back()));
    for (std::size_t v = 0; v < versions.size(); ++v) {
      expect_snapshot_equal(snapshot(versions[v]), snaps[v]);
    }
  }
}

// --- 3. pointer-layout equivalence ------------------------------------------

void expect_same_tree(ptreap::Ref t, const ShimNode* s) {
  ASSERT_EQ(bool(t), s != nullptr);
  if (!t) return;
  EXPECT_EQ(cmp(t->piece.y0, s->piece.y0), 0);
  EXPECT_EQ(cmp(t->piece.y1, s->piece.y1), 0);
  EXPECT_EQ(t->piece.edge, s->piece.edge);
  EXPECT_EQ(t->prio, s->prio);
  EXPECT_EQ(t->count, s->count);
  expect_same_tree(t.left(), s->l);
  expect_same_tree(t.right(), s->r);
}

TEST_P(PTreapPropertyP, ArenaLayoutMatchesPointerShimNodeForNode) {
  const u64 seed = GetParam();
  PArena arena;
  Shim shim;
  const auto segs = wide_segments(seed * 11 + 5, 16);

  ptreap::Ref t = ptreap::make_floor(arena);
  const ShimNode* s = shim.make_floor();
  expect_same_tree(t, s);

  for (const Splice& sp : random_splices(seed ^ 0x1a9e, 40, 15)) {
    t = ptreap::replace_range(arena, t, sp.lo, sp.hi, sp.run, segs);
    s = shim.replace_range(s, sp.lo, sp.hi, sp.run);
    expect_same_tree(t, s);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PTreapPropertyP, ::testing::Values(1, 2, 3, 4, 5),
                         [](const auto& info) { return "seed" + std::to_string(info.param); });

// --- arena determinism -------------------------------------------------------

TEST(PTreapProperty, ResetRebuildAssignsIdenticalIndices) {
  // Serial rebuilds after reset() replay the same alloc order into the same
  // retained blocks, so even the *indices* — not just the shapes — repeat.
  // This is the determinism HsrEngine warm solves lean on.
  PArena arena;
  const auto segs = wide_segments(21, 16);
  const auto splices = random_splices(42, 30, 15);

  const auto build = [&] {
    ptreap::Ref t = ptreap::make_floor(arena);
    for (const Splice& s : splices) t = ptreap::replace_range(arena, t, s.lo, s.hi, s.run, segs);
    return t;
  };
  const auto indices = [](ptreap::Ref t) {
    std::vector<u32> out;
    const std::function<void(ptreap::Ref)> rec = [&](ptreap::Ref n) {
      if (!n) return;
      out.push_back(n.index());
      rec(n.left());
      rec(n.right());
    };
    rec(t);
    return out;
  };

  const std::vector<u32> cold = indices(build());
  const u64 blocks = arena.allocated();
  arena.reset();
  const std::vector<u32> warm = indices(build());
  EXPECT_EQ(cold, warm);
  EXPECT_EQ(arena.allocated(), blocks);  // zero new heap blocks
}

}  // namespace
}  // namespace thsr
