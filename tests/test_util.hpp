#pragma once
/// Shared helpers for the thsr test suite: deterministic RNG, random segment
/// soups, brute-force reference computations.

#include <random>
#include <vector>

#include "envelope/envelope.hpp"
#include "geometry/predicates.hpp"
#include "support/random_segments.hpp"
#include "support/terrain_families.hpp"

namespace thsr::test {

/// Shared terrain/DEM families (support/terrain_families.hpp), re-exported
/// so suites keep the short `test::` spelling.
using support::dense_staircase;
using support::GridFamily;
using support::kAllGridFamilies;
using support::make_asc_grid;
using support::make_family_terrain;

/// Deterministic RNG (never std::random_device in tests).
inline std::mt19937_64 rng(u64 seed) { return std::mt19937_64{seed}; }

/// Random non-vertical segments with integer coordinates in [-range, range]
/// (the shared generator, support/random_segments.hpp).
inline std::vector<Seg2> random_segments(u64 seed, std::size_t n, i64 range = 1000) {
  return support::random_segments(seed, n, range);
}

inline std::vector<u32> iota_ids(std::size_t n) {
  std::vector<u32> ids(n);
  for (u32 i = 0; i < n; ++i) ids[i] = i;
  return ids;
}

/// Brute-force winner at (y, side): the live segment with maximal value,
/// earlier id winning ties (the front-wins convention, ids = depth order).
inline std::optional<u32> brute_top(std::span<const Seg2> segs, std::span<const u32> ids,
                                    const QY& y, Side side) {
  std::optional<u32> best;
  for (const u32 id : ids) {
    const Seg2& s = segs[id];
    const bool live = side == Side::After ? (cmp(y, s.u0) >= 0 && cmp(y, s.u1) < 0)
                                          : (cmp(y, s.u0) > 0 && cmp(y, s.u1) <= 0);
    if (!live) continue;
    if (!best) {
      best = id;
      continue;
    }
    const int c = cmp_value_near(s, segs[*best], y, side);
    if (c > 0) best = id;  // ties keep the earlier id: ids scanned in order
  }
  return best;
}

/// Check env == pointwise max of segs[ids] at all breakpoints (both sides)
/// and at every integer abscissa in [lo, hi].
inline void expect_envelope_exact(const Envelope& env, std::span<const Seg2> segs,
                                  std::span<const u32> ids, i64 lo, i64 hi);

}  // namespace thsr::test

// gtest-dependent part.
#include <gtest/gtest.h>

namespace thsr::test {

inline void expect_envelope_exact(const Envelope& env, std::span<const Seg2> segs,
                                  std::span<const u32> ids, i64 lo, i64 hi) {
  env.validate(segs);
  const auto check_at = [&](const QY& y, Side side) {
    const auto expect = brute_top(segs, ids, y, side);
    const auto got = env.edge_at(y, side);
    if (expect.has_value() != got.has_value()) {
      FAIL() << "envelope coverage mismatch at y=" << to_string(y)
             << " side=" << (side == Side::After ? "after" : "before");
    }
    if (expect && got && *expect != *got) {
      // Distinct edges are fine iff values AND slopes tie exactly never —
      // the brute picks the earliest id; envelopes must match that winner
      // unless the two segments are collinear over the interval.
      EXPECT_TRUE(same_line(segs[*expect], segs[*got]))
          << "winner mismatch at y=" << to_string(y) << ": expect edge " << *expect << " got "
          << *got;
      EXPECT_EQ(cmp_value_near(segs[*expect], segs[*got], y, side), 0);
    }
  };
  for (const EnvPiece& p : env.pieces()) {
    check_at(p.y0, Side::After);
    check_at(p.y1, Side::Before);
  }
  for (i64 y = lo; y <= hi; ++y) {
    check_at(QY::of(y), Side::After);
    check_at(QY::of(y), Side::Before);
  }
}

}  // namespace thsr::test
