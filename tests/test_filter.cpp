/// Floating-point filter tests (geometry/filter.hpp): the filtered public
/// predicates must agree bit-for-bit with the exact `__int128` evaluations on
/// contract-boundary coordinates (|coord| = kMaxCoord) and on adversarial
/// last-bit inputs — and those inputs must actually exercise the exact
/// fallback path, which the Op::FilterExact telemetry proves.

#include <gtest/gtest.h>

#include <random>

#include "geometry/predicates.hpp"
#include "parallel/work_depth.hpp"
#include "test_util.hpp"

namespace thsr {
namespace {

/// Telemetry delta of the calling thread around `fn` (zero-filled when the
/// filter is disabled, since nothing is counted then).
template <class Fn>
Counters telemetry_of(Fn&& fn) {
  const Counters before = work::local_snapshot();
  fn();
  Counters d = work::local_snapshot();
  d -= before;
  return d;
}

TEST(Filter, AgreesWithExactOnRandomSoupAtFullRange) {
  // Coordinates up to the kMaxCoord contract edge: the magnitudes the
  // DESIGN.md section 5 error bounds were derived for.
  auto segs = test::random_segments(21, 160, kMaxCoord);
  auto g = test::rng(22);
  std::uniform_int_distribution<std::size_t> pick(0, segs.size() - 1);
  std::uniform_int_distribution<i64> ys(-kMaxCoord, kMaxCoord);
  for (int i = 0; i < 30'000; ++i) {
    const Seg2 &a = segs[pick(g)], &b = segs[pick(g)];
    const QY y = QY::of(ys(g));
    EXPECT_EQ(cmp_value_at(a, b, y), exact::cmp_value_at(a, b, y));
    EXPECT_EQ(cmp_slope(a, b), exact::cmp_slope(a, b));
    EXPECT_EQ(same_line(a, b), exact::same_line(a, b));
  }
}

TEST(Filter, AgreesWithExactAtCrossingAbscissae) {
  // Rational abscissae with worst-case numerators: crossings of full-range
  // lines. Comparisons at (and adjacent to) such points are where the
  // filter's rounding is most stressed.
  auto segs = test::random_segments(23, 80, kMaxCoord);
  int at_crossing = 0;
  for (std::size_t i = 0; i + 3 < segs.size(); i += 2) {
    const auto y = line_crossing(segs[i], segs[i + 1]);
    if (!y) continue;
    ++at_crossing;
    // Exact tie at the crossing itself.
    EXPECT_EQ(cmp_value_at(segs[i], segs[i + 1], *y), 0);
    // Third-party comparisons at the crossing.
    const Seg2 &c = segs[i + 2], &d = segs[i + 3];
    EXPECT_EQ(cmp_value_at(c, d, *y), exact::cmp_value_at(c, d, *y));
    EXPECT_EQ(filt::cmp(*y, *y), 0);
  }
  EXPECT_GT(at_crossing, 20);
}

TEST(Filter, BoundaryCoordinatesAtContractEdge) {
  constexpr i64 M = kMaxCoord;
  // Extreme slopes and offsets right at the coordinate contract.
  const Seg2 steep{-M, -M, M, M};           // slope 1, full diagonal
  const Seg2 steep2{-M, M, M, -M};          // slope -1
  const Seg2 flat{-M, M - 1, M, M - 1};     // slope 0 at the top edge
  const Seg2 near_diag{-M, -M + 1, M, M};   // last-unit offset from `steep`
  for (const Seg2* a : {&steep, &steep2, &flat, &near_diag}) {
    for (const Seg2* b : {&steep, &steep2, &flat, &near_diag}) {
      EXPECT_EQ(cmp_slope(*a, *b), exact::cmp_slope(*a, *b));
      EXPECT_EQ(same_line(*a, *b), exact::same_line(*a, *b));
      for (const i64 y : {-M, -M + 1, i64{0}, M - 1, M}) {
        const QY yq = QY::of(y);
        EXPECT_EQ(cmp_value_at(*a, *b, yq), exact::cmp_value_at(*a, *b, yq));
        EXPECT_EQ(cmp_value_vs_int(*a, yq, M), exact::cmp_value_vs_int(*a, yq, M));
        EXPECT_EQ(cmp_value_vs_int(*a, yq, -M), exact::cmp_value_vs_int(*a, yq, -M));
      }
    }
  }
  // steep vs near_diag cross once; the crossing must satisfy both lines.
  const auto y = line_crossing(steep, near_diag);
  ASSERT_TRUE(y.has_value());
  EXPECT_EQ(cmp_value_at(steep, near_diag, *y), 0);
}

TEST(Filter, AdversarialLastBitCmpFallsBackAndIsExact) {
  // p/q pairs whose cross products differ in the last representable unit:
  // |x - y| = 2^45 against magnitudes near 2^107 — far below the filter's
  // error bound, so the double evaluation cannot certify the sign.
  const QY a{(i128{1} << 62) + 1, i128{1} << 45};
  const QY b{i128{1} << 62, i128{1} << 45};
  const Counters d = telemetry_of([&] {
    EXPECT_EQ(filt::cmp(a, b), 1);
    EXPECT_EQ(filt::cmp(b, a), -1);
  });
  if (filt::enabled()) {
    EXPECT_EQ(d[Op::FilterExact], 2u);
    EXPECT_EQ(d[Op::FilterFast], 0u);
  } else {
    EXPECT_EQ(d[Op::FilterExact], 0u);
    EXPECT_EQ(d[Op::FilterFast], 0u);
  }
}

TEST(Filter, ExactValueTieFallsBack) {
  // At the crossing of two lines the value difference is exactly zero; zero
  // never clears a positive error bound, so this must take the exact path.
  const Seg2 a{-kMaxCoord, -kMaxCoord, kMaxCoord, kMaxCoord};
  const Seg2 b{-kMaxCoord, kMaxCoord, kMaxCoord, -kMaxCoord};
  const auto y = line_crossing(a, b);
  ASSERT_TRUE(y.has_value());
  const Counters d = telemetry_of([&] { EXPECT_EQ(cmp_value_at(a, b, *y), 0); });
  if (filt::enabled()) {
    EXPECT_EQ(d[Op::FilterExact], 1u);
  }
}

TEST(Filter, CrossingOnWindowBoundaryFallsBackToExactReject) {
  // Crossing exactly at the window's lo endpoint: the open-interval test is
  // a tie the double filter cannot certify, and the exact path must reject.
  const Seg2 a{0, 0, 10, 10};
  const Seg2 b{0, 10, 10, 0};  // crossing at y = 5
  const QY lo = QY::of(5), hi = QY::of(10);
  const Counters d =
      telemetry_of([&] { EXPECT_FALSE(crossing_in(a, b, lo, hi).has_value()); });
  if (filt::enabled()) {
    EXPECT_EQ(d[Op::FilterExact], 1u);
  }
  // Strictly-inside crossings are certified without exact interval checks.
  const Counters d2 = telemetry_of(
      [&] { EXPECT_TRUE(crossing_in(a, b, QY::of(0), QY::of(10)).has_value()); });
  if (filt::enabled()) {
    EXPECT_EQ(d2[Op::FilterExact], 0u);
    EXPECT_GE(d2[Op::FilterFast], 1u);
  }
}

TEST(Filter, SlopeCompareNeverFallsBack) {
  // A*B products are integers below 2^44: exact in double, so cmp_slope is
  // decided by the filter on every input, including contract-edge slopes.
  auto segs = test::random_segments(29, 60, kMaxCoord);
  const Counters d = telemetry_of([&] {
    for (std::size_t i = 0; i + 1 < segs.size(); ++i) {
      EXPECT_EQ(cmp_slope(segs[i], segs[i + 1]), exact::cmp_slope(segs[i], segs[i + 1]));
    }
  });
  if (filt::enabled()) {
    EXPECT_EQ(d[Op::FilterExact], 0u);
  }
}

TEST(Filter, FastPathCountsTelemetry) {
  const Seg2 a{0, 0, 10, 10};
  const Seg2 c{0, 7, 10, 7};
  const Counters d = telemetry_of([&] { EXPECT_LT(cmp_value_at(a, c, QY::of(1)), 0); });
  if (filt::enabled()) {
    EXPECT_EQ(d[Op::FilterFast], 1u);
    EXPECT_EQ(d[Op::FilterExact], 0u);
  } else {
    EXPECT_EQ(d[Op::FilterFast], 0u);
  }
}

}  // namespace
}  // namespace thsr
