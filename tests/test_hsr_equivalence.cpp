/// Integration: the three HSR algorithms (independent reference scan,
/// Reif–Sen sequential, Gupta–Sen parallel) must produce *exactly* the same
/// visibility map — exact rational equality, no tolerances — across the
/// full family x grid x seed x shear matrix, plus family-shape assertions
/// (output size extremes) and structural output invariants.

#include <gtest/gtest.h>

#include "core/hsr.hpp"
#include "terrain/generators.hpp"
#include "test_util.hpp"

namespace thsr {
namespace {

struct Case {
  Family family;
  u32 grid;
  u64 seed;
  bool shear;
  bool jitter{false};
};

std::string case_name(const Case& c) {
  return std::string(family_name(c.family)) + "_g" + std::to_string(c.grid) + "_s" +
         std::to_string(c.seed) + (c.shear ? "_shear" : "_grid") + (c.jitter ? "_jit" : "");
}

class EquivalenceP : public ::testing::TestWithParam<Case> {};

TEST_P(EquivalenceP, AllAlgorithmsAgreeExactly) {
  GenOptions opt;
  opt.family = GetParam().family;
  opt.grid = GetParam().grid;
  opt.seed = GetParam().seed;
  opt.shear = GetParam().shear;
  opt.jitter = GetParam().jitter;
  const Terrain t = make_terrain(opt);

  const auto ref = hidden_surface_removal(t, {.algorithm = Algorithm::Reference});
  const auto seq = hidden_surface_removal(t, {.algorithm = Algorithm::Sequential});
  const auto par = hidden_surface_removal(t, {.algorithm = Algorithm::Parallel});
  const auto scan = hidden_surface_removal(
      t, {.algorithm = Algorithm::Parallel, .phase2_oracle = Phase2Oracle::MaterializedScan});

  const auto d1 = ref.map.first_difference(seq.map);
  EXPECT_FALSE(d1.has_value()) << "reference vs sequential differ at edge " << *d1;
  const auto d2 = ref.map.first_difference(par.map);
  EXPECT_FALSE(d2.has_value()) << "reference vs parallel differ at edge " << *d2;
  const auto d3 = ref.map.first_difference(scan.map);
  EXPECT_FALSE(d3.has_value()) << "reference vs parallel/scan-oracle differ at edge " << *d3;

  EXPECT_EQ(ref.stats.k_pieces, par.stats.k_pieces);
  EXPECT_EQ(ref.stats.k_pieces, seq.stats.k_pieces);

  // Structural invariants of any valid map.
  for (u32 e = 0; e < t.edge_count(); ++e) {
    if (t.is_sliver(e)) {
      EXPECT_TRUE(par.map.sliver(e).has_value());
      EXPECT_TRUE(par.map.pieces(e).empty());
      continue;
    }
    const Seg2 s = t.image_segment(e);
    const auto pieces = par.map.pieces(e);
    for (std::size_t i = 0; i < pieces.size(); ++i) {
      EXPECT_LT(cmp(pieces[i].y0, pieces[i].y1), 0);
      EXPECT_GE(cmp(pieces[i].y0, QY::of(s.u0)), 0);
      EXPECT_LE(cmp(pieces[i].y1, QY::of(s.u1)), 0);
      if (i > 0) {
        EXPECT_LE(cmp(pieces[i - 1].y1, pieces[i].y0), 0);
      }
    }
  }

  // The front-most edge of the depth order is always entirely visible;
  // verified indirectly: at least one edge is fully visible end to end.
  bool some_fully_visible = false;
  for (u32 e = 0; e < t.edge_count() && !some_fully_visible; ++e) {
    if (t.is_sliver(e)) continue;
    const Seg2 s = t.image_segment(e);
    const auto pieces = par.map.pieces(e);
    some_fully_visible = pieces.size() == 1 && cmp(pieces[0].y0, QY::of(s.u0)) == 0 &&
                         cmp(pieces[0].y1, QY::of(s.u1)) == 0;
  }
  EXPECT_TRUE(some_fully_visible);
}

std::vector<Case> all_cases() {
  std::vector<Case> cases;
  for (const Family f : kAllFamilies) {
    for (const u32 g : {6u, 10u, 16u}) {
      for (const u64 s : {1ull, 2ull}) {
        cases.push_back({f, g, s, true});
      }
      cases.push_back({f, g, 3ull, false});        // unsheared: sliver-heavy path
      cases.push_back({f, g, 4ull, true, true});   // jittered irregular TIN
      cases.push_back({f, g, 5ull, false, true});  // jittered + slivers
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Matrix, EquivalenceP, ::testing::ValuesIn(all_cases()),
                         [](const auto& info) { return case_name(info.param); });

TEST(OutputSize, RidgeFrontHidesInterior) {
  GenOptions opt;
  opt.family = Family::RidgeFront;
  opt.grid = 20;
  const Terrain t = make_terrain(opt);
  const auto r = hidden_surface_removal(t, {.algorithm = Algorithm::Parallel});
  // The wall hides nearly everything: k well below n.
  EXPECT_LT(r.stats.k_pieces, r.stats.n_edges / 2);
}

TEST(OutputSize, TerraceBackShowsEverything) {
  GenOptions opt;
  opt.family = Family::TerraceBack;
  opt.grid = 20;
  const Terrain t = make_terrain(opt);
  const auto r = hidden_surface_removal(t, {.algorithm = Algorithm::Parallel});
  // Amphitheatre: visible pieces at least ~ number of edges.
  EXPECT_GT(r.stats.k_pieces, r.stats.n_edges * 9 / 10);
}

TEST(OutputSize, SpikeDensityGrowsOutput) {
  GenOptions lo, hi;
  lo.family = hi.family = Family::Spikes;
  lo.grid = hi.grid = 20;
  lo.spike_density = 0.01;
  hi.spike_density = 0.3;
  const auto rl = hidden_surface_removal(make_terrain(lo), {.algorithm = Algorithm::Parallel});
  const auto rh = hidden_surface_removal(make_terrain(hi), {.algorithm = Algorithm::Parallel});
  EXPECT_GT(rh.stats.k_crossings, rl.stats.k_crossings);
}

TEST(Stats, PopulatedByParallelRun) {
  GenOptions opt;
  opt.grid = 12;
  const Terrain t = make_terrain(opt);
  const auto r = hidden_surface_removal(
      t, {.algorithm = Algorithm::Parallel, .collect_layer_stats = true});
  EXPECT_EQ(r.stats.n_edges, t.edge_count());
  EXPECT_GT(r.stats.k_pieces, 0u);
  EXPECT_GT(r.stats.phase1_pieces, 0u);
  EXPECT_GT(r.stats.treap_nodes, 0u);
  EXPECT_GT(r.stats.depth_constraints, 0u);
  EXPECT_FALSE(r.stats.layers.empty());
  u64 consumed = 0;
  for (const auto& l : r.stats.layers) consumed += l.pieces_consumed;
  EXPECT_GT(consumed, 0u);
  EXPECT_GT(r.stats.work[Op::OracleQuery], 0u);
}

}  // namespace
}  // namespace thsr
