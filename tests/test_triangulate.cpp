/// Face triangulation tests: convex fans, monotone polygons, polygonal
/// terrain assembly.

#include <gtest/gtest.h>

#include "terrain/triangulate.hpp"
#include "test_util.hpp"

namespace thsr {
namespace {

// Ground-plane orientation area*2 of a triangle (in (y,x)).
i128 tri_area2(const Vertex3& a, const Vertex3& b, const Vertex3& c) {
  return i128{b.y - a.y} * (c.x - a.x) - i128{b.x - a.x} * (c.y - a.y);
}

i128 polygon_area2(std::span<const u32> face, std::span<const Vertex3> verts) {
  i128 area = 0;
  for (std::size_t i = 1; i + 1 < face.size(); ++i) {
    area += tri_area2(verts[face[0]], verts[face[i]], verts[face[i + 1]]);
  }
  return area;
}

void expect_covers(std::span<const Triangle> tris, std::span<const u32> face,
                   std::span<const Vertex3> verts) {
  ASSERT_EQ(tris.size(), face.size() - 2);
  i128 total = 0;
  for (const Triangle& t : tris) {
    const i128 a = tri_area2(verts[t.a], verts[t.b], verts[t.c]);
    EXPECT_NE(a, 0) << "degenerate triangle emitted";
    total += a;
  }
  EXPECT_EQ(total, polygon_area2(face, verts));
}

TEST(Triangulate, ConvexFan) {
  std::vector<Vertex3> v{{0, 0, 0}, {4, 0, 0}, {6, 4, 0}, {4, 8, 0}, {0, 8, 0}, {-2, 4, 0}};
  std::vector<u32> face{0, 1, 2, 3, 4, 5};
  // Orient CCW in ground plane (y,x): check and flip if needed.
  if (polygon_area2(face, v) < 0) std::reverse(face.begin(), face.end());
  EXPECT_TRUE(face_convex_ground(face, v));
  const auto tris = triangulate_convex(face);
  expect_covers(tris, face, v);
}

TEST(Triangulate, MonotoneNonConvex) {
  // y-monotone polygon with a reflex vertex (in ground plane y,x).
  std::vector<Vertex3> v{{0, 0, 0}, {6, 2, 0}, {1, 4, 0}, {5, 7, 0}, {-3, 5, 0}, {-4, 2, 0}};
  std::vector<u32> face{0, 1, 2, 3, 4, 5};
  if (polygon_area2(face, v) < 0) std::reverse(face.begin(), face.end());
  EXPECT_FALSE(face_convex_ground(face, v));
  const auto tris = triangulate_monotone(face, v);
  expect_covers(tris, face, v);
}

TEST(Triangulate, MonotoneTriangleIsIdentity) {
  std::vector<Vertex3> v{{0, 0, 0}, {4, 1, 0}, {1, 4, 0}};
  std::vector<u32> face{0, 1, 2};
  const auto tris = triangulate_monotone(face, v);
  ASSERT_EQ(tris.size(), 1u);
}

TEST(Triangulate, RejectsNonMonotone) {
  // A zig-zag polygon that is not y-monotone.
  std::vector<Vertex3> v{{0, 0, 0}, {8, 2, 0}, {2, 1, 0}, {7, 6, 0}, {-2, 4, 0}};
  std::vector<u32> face{0, 1, 2, 3, 4};
  if (polygon_area2(face, v) < 0) std::reverse(face.begin(), face.end());
  EXPECT_THROW(triangulate_monotone(face, v), std::invalid_argument);
}

TEST(Triangulate, PolygonalTerrainAssembly) {
  // A 2x1 strip of convex quad faces with heights.
  std::vector<Vertex3> v{{0, 0, 1}, {4, 0, 2}, {8, 1, 3}, {0, 4, 4}, {4, 5, 5}, {8, 4, 6}};
  std::vector<std::vector<u32>> faces{{0, 1, 4, 3}, {1, 2, 5, 4}};
  for (auto& f : faces) {
    if (polygon_area2(f, v) < 0) std::reverse(f.begin(), f.end());
  }
  const Terrain t = triangulate_polygonal(v, faces);
  EXPECT_EQ(t.triangle_count(), 4u);
  EXPECT_TRUE(t.projections_planar());
}

}  // namespace
}  // namespace thsr
