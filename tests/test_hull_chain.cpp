/// Convex chain (hull) tests: construction vs brute force, merge, and the
/// unimodal extreme searches the ACG pruning relies on.

#include <gtest/gtest.h>

#include <random>

#include "geometry/lower_hull.hpp"
#include "test_util.hpp"

namespace thsr {
namespace {

std::vector<HullPoint> random_points(u64 seed, std::size_t n) {
  auto g = test::rng(seed);
  std::uniform_real_distribution<double> uv(-100, 100);
  std::vector<HullPoint> pts(n);
  double u = -100;
  for (auto& p : pts) {
    u += std::abs(uv(g)) / 50 + 0.01;  // strictly increasing u
    p = {u, uv(g)};
  }
  return pts;
}

double brute_max_excess(const std::vector<HullPoint>& pts, double slope, double icept) {
  double best = -1e300;
  for (const auto& p : pts) best = std::max(best, p.v - (slope * p.u + icept));
  return best;
}

double brute_min_excess(const std::vector<HullPoint>& pts, double slope, double icept) {
  double best = 1e300;
  for (const auto& p : pts) best = std::min(best, p.v - (slope * p.u + icept));
  return best;
}

TEST(HullChain, UpperHullIsConcaveAndCoversExtremes) {
  for (u64 seed : {1u, 2u, 3u, 4u}) {
    const auto pts = random_points(seed, 200);
    const auto hull = build_upper_hull(pts);
    ASSERT_GE(hull.size(), 2u);
    // Concavity: consecutive slopes non-increasing.
    for (std::size_t i = 2; i < hull.size(); ++i) {
      const double s1 = (hull[i - 1].v - hull[i - 2].v) / (hull[i - 1].u - hull[i - 2].u);
      const double s2 = (hull[i].v - hull[i - 1].v) / (hull[i].u - hull[i - 1].u);
      EXPECT_LE(s2, s1 + 1e-9);
    }
    // Every input point lies on or below the chain.
    for (const auto& p : pts) {
      for (std::size_t i = 1; i < hull.size(); ++i) {
        if (hull[i - 1].u <= p.u && p.u <= hull[i].u) {
          const double t = (p.u - hull[i - 1].u) / (hull[i].u - hull[i - 1].u);
          EXPECT_LE(p.v, hull[i - 1].v + t * (hull[i].v - hull[i - 1].v) + 1e-9);
        }
      }
    }
  }
}

TEST(HullChain, ExtremeSearchMatchesBruteForce) {
  for (u64 seed : {10u, 11u, 12u}) {
    const auto pts = random_points(seed, 500);
    const auto upper = build_upper_hull(pts);
    const auto lower = build_lower_hull(pts);
    auto g = test::rng(seed * 7);
    std::uniform_real_distribution<double> d(-3, 3);
    for (int i = 0; i < 200; ++i) {
      const double slope = d(g), icept = 20 * d(g);
      EXPECT_NEAR(max_excess_above(upper, slope, icept), brute_max_excess(pts, slope, icept),
                  1e-6);
      EXPECT_NEAR(min_excess_below(lower, slope, icept), brute_min_excess(pts, slope, icept),
                  1e-6);
    }
  }
}

TEST(HullChain, MergePreservesHull) {
  const auto a = random_points(21, 100);
  auto b = random_points(22, 100);
  const double shift = a.back().u - b.front().u + 1.0;
  for (auto& p : b) p.u += shift;  // disjoint, ordered u-ranges
  std::vector<HullPoint> all = a;
  all.insert(all.end(), b.begin(), b.end());

  const auto merged = merge_upper_hulls(build_upper_hull(a), build_upper_hull(b));
  const auto direct = build_upper_hull(all);
  ASSERT_EQ(merged.size(), direct.size());
  for (std::size_t i = 0; i < merged.size(); ++i) {
    EXPECT_DOUBLE_EQ(merged[i].u, direct[i].u);
    EXPECT_DOUBLE_EQ(merged[i].v, direct[i].v);
  }

  const auto merged_lo = merge_lower_hulls(build_lower_hull(a), build_lower_hull(b));
  const auto direct_lo = build_lower_hull(all);
  ASSERT_EQ(merged_lo.size(), direct_lo.size());
}

TEST(HullChain, MaybeTestsAreConservative) {
  const auto pts = random_points(33, 300);
  const auto upper = build_upper_hull(pts);
  const auto lower = build_lower_hull(pts);
  auto g = test::rng(99);
  std::uniform_real_distribution<double> d(-2, 2);
  for (int i = 0; i < 300; ++i) {
    const double slope = d(g), icept = 50 * d(g);
    const bool has_above = brute_max_excess(pts, slope, icept) > 0;
    const bool has_below = brute_min_excess(pts, slope, icept) < 0;
    if (has_above) {
      EXPECT_TRUE(maybe_point_above(upper, slope, icept, 0.25));
    }
    if (has_below) {
      EXPECT_TRUE(maybe_point_below(lower, slope, icept, 0.25));
    }
  }
}

TEST(HullChain, DegenerateSizes) {
  const std::vector<HullPoint> one{{0, 1}};
  EXPECT_EQ(build_upper_hull(one).size(), 1u);
  EXPECT_DOUBLE_EQ(max_excess_above(build_upper_hull(one), 0, 0), 1.0);
  const std::vector<HullPoint> two{{0, 1}, {1, 5}};
  EXPECT_EQ(build_upper_hull(two).size(), 2u);
  const std::vector<HullPoint> collinear{{0, 0}, {1, 1}, {2, 2}, {3, 3}};
  EXPECT_LE(build_upper_hull(collinear).size(), 4u);
  EXPECT_NEAR(max_excess_above(build_upper_hull(collinear), 1, 0), 0.0, 1e-12);
}

}  // namespace
}  // namespace thsr
