/// VisibilityMap unit tests and output-structure properties, including the
/// occlusion-monotonicity property (raising a front wall can only shrink
/// the visible set behind it).

#include <gtest/gtest.h>

#include "core/hsr.hpp"
#include "terrain/generators.hpp"
#include "test_util.hpp"

namespace thsr {
namespace {

TEST(VisibilityMap, CountersAndLength) {
  VisibilityMap m(3);
  m.add_piece(0, {QY::of(0), QY::of(4), EndpointKind::SegmentEnd, EndpointKind::Crossing,
                  kNoEdge, 7});
  m.add_piece(0, {QY::of(6), QY::of(9), EndpointKind::Crossing, EndpointKind::SegmentEnd, 7,
                  kNoEdge});
  m.add_piece(2, {QY::of(1), QY::of(2), EndpointKind::Break, EndpointKind::Break, 1, 1});
  m.set_sliver(1, {true, kNoEdge, kNoEdge});
  EXPECT_EQ(m.k_pieces(), 4u);
  EXPECT_EQ(m.k_crossings(), 2u);
  EXPECT_DOUBLE_EQ(m.visible_length(), 4 + 3 + 1);
}

TEST(VisibilityMap, FirstDifferenceDetectsMismatch) {
  VisibilityMap a(2), b(2);
  a.add_piece(1, {QY::of(0), QY::of(4), {}, {}, kNoEdge, kNoEdge});
  b.add_piece(1, {QY::of(0), QY::of(5), {}, {}, kNoEdge, kNoEdge});
  EXPECT_EQ(a.first_difference(b), std::optional<u32>(1));
  VisibilityMap c(2);
  c.add_piece(1, {QY::of(0), QY::of(4), {}, {}, kNoEdge, kNoEdge});
  EXPECT_EQ(a.first_difference(c), std::nullopt);
  // Sliver mismatch.
  VisibilityMap d(2), e(2);
  d.add_piece(1, {QY::of(0), QY::of(4), {}, {}, kNoEdge, kNoEdge});
  e.add_piece(1, {QY::of(0), QY::of(4), {}, {}, kNoEdge, kNoEdge});
  d.set_sliver(0, {true, kNoEdge, kNoEdge});
  e.set_sliver(0, {false, kNoEdge, kNoEdge});
  EXPECT_EQ(d.first_difference(e), std::optional<u32>(0));
}

// Occlusion monotonicity: make the front ridge taller; back edges can only
// lose visibility (compare per-edge total visible length).
TEST(Visibility, FrontWallMonotonicity) {
  GenOptions low, high;
  low.family = high.family = Family::RidgeFront;
  low.grid = high.grid = 14;
  low.seed = high.seed = 4;
  low.amplitude = 40;
  high.amplitude = 160;  // same interior noise scale shape, taller wall
  // The interiors differ in noise amplitude too, so build the comparison
  // terrain manually: take `low` and raise only the front two rows.
  const Terrain tl = make_terrain(low);
  std::vector<Vertex3> raised(tl.vertices().begin(), tl.vertices().end());
  i64 max_x = 0;
  for (const auto& v : raised) max_x = std::max(max_x, v.x);
  for (auto& v : raised) {
    if (v.x >= max_x - 4) v.z += 300;
  }
  const Terrain th = Terrain::from_triangles(
      std::move(raised), {tl.triangles().begin(), tl.triangles().end()});

  const auto rl = hidden_surface_removal(tl, {.algorithm = Algorithm::Parallel});
  const auto rh = hidden_surface_removal(th, {.algorithm = Algorithm::Parallel});

  // Per-edge visible length for edges untouched by the raise (strictly
  // behind the wall) must not grow.
  for (u32 e = 0; e < tl.edge_count(); ++e) {
    const Edge& ed = tl.edges()[e];
    if (tl.vertex(ed.a).x >= max_x - 8 || tl.vertex(ed.b).x >= max_x - 8) continue;
    double len_l = 0, len_h = 0;
    for (const auto& p : rl.map.pieces(e)) len_l += p.y1.approx() - p.y0.approx();
    for (const auto& p : rh.map.pieces(e)) len_h += p.y1.approx() - p.y0.approx();
    EXPECT_LE(len_h, len_l + 1e-9) << "edge " << e << " gained visibility behind a taller wall";
  }
}

TEST(Visibility, SmallestTerrain) {
  // Single triangle, tilted so nothing self-occludes (see test_degenerate).
  std::vector<Vertex3> v{{0, 0, 5}, {4, 3, 1}, {1, 7, 9}};
  const Terrain t = Terrain::from_triangles(v, {{0, 1, 2}});
  const auto r = hidden_surface_removal(t);
  EXPECT_EQ(r.stats.n_edges, 3u);
  EXPECT_EQ(r.stats.k_pieces, 3u);
  EXPECT_EQ(r.stats.k_crossings, 0u);

  // And one that does self-occlude: the far edge hides behind the surface.
  std::vector<Vertex3> w{{0, 0, 5}, {4, 3, 9}, {1, 7, 2}};
  const auto r2 = hidden_surface_removal(Terrain::from_triangles(w, {{0, 1, 2}}));
  EXPECT_EQ(r2.stats.k_pieces, 2u);
}

TEST(Visibility, CrossingEndpointsAreConsistent) {
  GenOptions opt;
  opt.family = Family::Spikes;
  opt.grid = 14;
  opt.spike_density = 0.2;
  const Terrain t = make_terrain(opt);
  const auto r = hidden_surface_removal(t, {.algorithm = Algorithm::Parallel});
  // Every Crossing endpoint names a real profile edge (never kNoEdge).
  for (u32 e = 0; e < t.edge_count(); ++e) {
    for (const auto& p : r.map.pieces(e)) {
      if (p.k0 == EndpointKind::Crossing) {
        EXPECT_NE(p.other0, kNoEdge);
      }
      if (p.k1 == EndpointKind::Crossing) {
        EXPECT_NE(p.other1, kNoEdge);
      }
      if (p.k0 == EndpointKind::SegmentEnd) {
        EXPECT_EQ(p.other0, kNoEdge);
      }
      if (p.k1 == EndpointKind::SegmentEnd) {
        EXPECT_EQ(p.other1, kNoEdge);
      }
    }
  }
  EXPECT_GT(r.stats.k_crossings, 0u);
}

}  // namespace
}  // namespace thsr
