/// Terrain model and generator tests: structural validity, determinism,
/// family shape properties, and OBJ round-trips.

#include <gtest/gtest.h>

#include <sstream>

#include "terrain/generators.hpp"
#include "terrain/obj_io.hpp"
#include "test_util.hpp"

namespace thsr {
namespace {

TEST(Terrain, FromTrianglesBuildsUniqueEdges) {
  // Two triangles sharing an edge: 5 unique edges.
  std::vector<Vertex3> v{{0, 0, 1}, {4, 0, 2}, {0, 4, 3}, {4, 4, 4}};
  std::vector<Triangle> tr{{0, 1, 2}, {1, 3, 2}};
  const Terrain t = Terrain::from_triangles(v, tr);
  EXPECT_EQ(t.vertex_count(), 4u);
  EXPECT_EQ(t.triangle_count(), 2u);
  EXPECT_EQ(t.edge_count(), 5u);
  EXPECT_TRUE(t.projections_planar());
}

TEST(Terrain, RejectsDuplicateGroundPositions) {
  std::vector<Vertex3> v{{0, 0, 1}, {4, 0, 2}, {0, 4, 3}, {0, 0, 9}};
  std::vector<Triangle> tr{{0, 1, 2}, {3, 1, 2}};
  EXPECT_THROW(Terrain::from_triangles(v, tr), std::invalid_argument);
}

TEST(Terrain, RejectsOutOfRangeCoordinates) {
  std::vector<Vertex3> v{{0, 0, kMaxCoord + 1}, {4, 0, 2}, {0, 4, 3}};
  std::vector<Triangle> tr{{0, 1, 2}};
  EXPECT_THROW(Terrain::from_triangles(v, tr), std::invalid_argument);
}

TEST(Terrain, ImageAndGroundSegments) {
  std::vector<Vertex3> v{{0, 0, 1}, {4, 8, 2}, {0, 4, 3}};
  std::vector<Triangle> tr{{0, 1, 2}};
  const Terrain t = Terrain::from_triangles(v, tr);
  for (u32 e = 0; e < t.edge_count(); ++e) {
    ASSERT_FALSE(t.is_sliver(e));
    const Seg2 img = t.image_segment(e), gnd = t.ground_segment(e);
    EXPECT_LT(img.u0, img.u1);
    EXPECT_EQ(img.u0, gnd.u0);  // both parameterized by y
    EXPECT_EQ(img.u1, gnd.u1);
  }
}

TEST(Terrain, SliverDetection) {
  std::vector<Vertex3> v{{0, 0, 1}, {4, 0, 5}, {0, 4, 3}};  // edge 0-1 has dy=0
  std::vector<Triangle> tr{{0, 1, 2}};
  const Terrain t = Terrain::from_triangles(v, tr);
  int slivers = 0;
  for (u32 e = 0; e < t.edge_count(); ++e) {
    if (t.is_sliver(e)) {
      ++slivers;
      const SliverInfo s = t.sliver(e);
      EXPECT_EQ(s.y, 0);
      EXPECT_EQ(s.x_lo, 0);
      EXPECT_EQ(s.x_hi, 4);
      EXPECT_EQ(s.z_lo, 1);
      EXPECT_EQ(s.z_hi, 5);
    }
  }
  EXPECT_EQ(slivers, 1);
}

class GeneratorP : public ::testing::TestWithParam<Family> {};

TEST_P(GeneratorP, ProducesValidShearedTerrain) {
  GenOptions opt;
  opt.family = GetParam();
  opt.grid = 12;
  opt.seed = 3;
  const Terrain t = make_terrain(opt);
  EXPECT_EQ(t.vertex_count(), 144u);
  EXPECT_EQ(t.triangle_count(), 2u * 11 * 11);
  EXPECT_TRUE(t.projections_planar());
  for (u32 e = 0; e < t.edge_count(); ++e) {
    EXPECT_FALSE(t.is_sliver(e)) << "sheared lattice must have no sliver edges";
  }
}

TEST_P(GeneratorP, UnshearedGridHasSlivers) {
  GenOptions opt;
  opt.family = GetParam();
  opt.grid = 8;
  opt.shear = false;
  const Terrain t = make_terrain(opt);
  u64 slivers = 0;
  for (u32 e = 0; e < t.edge_count(); ++e) slivers += t.is_sliver(e);
  EXPECT_EQ(slivers, 8u * 7u);  // one x-row edge per cell-row and column line
  EXPECT_TRUE(t.projections_planar());
}

TEST_P(GeneratorP, DeterministicInSeed) {
  GenOptions opt;
  opt.family = GetParam();
  opt.grid = 10;
  opt.seed = 42;
  const Terrain a = make_terrain(opt), b = make_terrain(opt);
  ASSERT_EQ(a.vertex_count(), b.vertex_count());
  for (u32 i = 0; i < a.vertex_count(); ++i) EXPECT_EQ(a.vertex(i), b.vertex(i));
  opt.seed = 43;
  const Terrain c = make_terrain(opt);
  if (GetParam() != Family::TerraceBack) {  // terrace is nearly seed-free by design
    bool differs = false;
    for (u32 i = 0; i < a.vertex_count() && !differs; ++i) differs = !(a.vertex(i) == c.vertex(i));
    EXPECT_TRUE(differs);
  }
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, GeneratorP, ::testing::ValuesIn(kAllFamilies),
                         [](const auto& info) { return family_name(info.param); });

TEST(Generators, FamilyNamesRoundTrip) {
  for (Family f : kAllFamilies) EXPECT_EQ(family_from_name(family_name(f)), f);
  EXPECT_THROW(family_from_name("nope"), std::invalid_argument);
}

TEST(ObjIo, RoundTrip) {
  GenOptions opt;
  opt.family = Family::Fbm;
  opt.grid = 6;
  const Terrain t = make_terrain(opt);
  std::stringstream ss;
  save_obj(t, ss);
  const Terrain u = load_obj(ss);
  ASSERT_EQ(u.vertex_count(), t.vertex_count());
  ASSERT_EQ(u.triangle_count(), t.triangle_count());
  ASSERT_EQ(u.edge_count(), t.edge_count());
  for (u32 i = 0; i < t.vertex_count(); ++i) EXPECT_EQ(u.vertex(i), t.vertex(i));
}

TEST(ObjIo, QuantizesWithScale) {
  std::stringstream ss;
  ss << "v 0.1 0.2 0.3\nv 1.0 0 0\nv 0 1.0 0.5\nf 1 2 3\n";
  const Terrain t = load_obj(ss, 10.0);
  EXPECT_EQ(t.vertex(0).x, 1);
  EXPECT_EQ(t.vertex(0).y, 2);
  EXPECT_EQ(t.vertex(0).z, 3);
}

TEST(Terrain, JitteredTerrainsStayValid) {
  for (const bool shear : {true, false}) {
    for (const u64 seed : {1ull, 2ull, 3ull}) {
      GenOptions opt;
      opt.family = Family::Fbm;
      opt.grid = 10;
      opt.seed = seed;
      opt.shear = shear;
      opt.jitter = true;
      const Terrain t = make_terrain(opt);  // from_triangles validates z=f(x,y) + orientations
      EXPECT_TRUE(t.projections_planar()) << "shear=" << shear << " seed=" << seed;
      const Terrain again = make_terrain(opt);
      for (u32 i = 0; i < t.vertex_count(); ++i) EXPECT_EQ(t.vertex(i), again.vertex(i));
    }
  }
}

TEST(Terrain, JitterActuallyPerturbs) {
  GenOptions opt;
  opt.grid = 10;
  const Terrain plain = make_terrain(opt);
  opt.jitter = true;
  const Terrain jit = make_terrain(opt);
  bool moved = false;
  for (u32 i = 0; i < plain.vertex_count() && !moved; ++i) {
    moved = !(plain.vertex(i) == jit.vertex(i));
  }
  EXPECT_TRUE(moved);
}

TEST(Terrain, RotateGroundPreservesStructure) {
  GenOptions opt;
  opt.family = Family::Fbm;
  opt.grid = 8;
  const Terrain t = make_terrain(opt);
  const Terrain r = t.rotate_ground(3, 4);  // exact 53.13-degree azimuth
  EXPECT_EQ(r.vertex_count(), t.vertex_count());
  EXPECT_EQ(r.triangle_count(), t.triangle_count());
  EXPECT_EQ(r.edge_count(), t.edge_count());
  EXPECT_TRUE(r.projections_planar());
  for (u32 i = 0; i < t.vertex_count(); ++i) {
    EXPECT_EQ(r.vertex(i).z, t.vertex(i).z);  // heights untouched
    const Vertex3 &o = t.vertex(i), &n = r.vertex(i);
    EXPECT_EQ(n.x, 3 * o.x - 4 * o.y);
    EXPECT_EQ(n.y, 4 * o.x + 3 * o.y);
  }
}

TEST(Terrain, RotateGroundIdentity) {
  GenOptions opt;
  opt.grid = 5;
  const Terrain t = make_terrain(opt);
  const Terrain r = t.rotate_ground(1, 0);
  for (u32 i = 0; i < t.vertex_count(); ++i) EXPECT_EQ(r.vertex(i), t.vertex(i));
}

TEST(Terrain, RotateGroundBoundsChecked) {
  GenOptions opt;
  opt.grid = 64;
  const Terrain t = make_terrain(opt);
  EXPECT_THROW(t.rotate_ground(4000, 3000), std::invalid_argument);
}

TEST(ObjIo, RejectsQuads) {
  std::stringstream ss;
  ss << "v 0 0 0\nv 1 0 0\nv 1 1 0\nv 0 1 0\nf 1 2 3 4\n";
  EXPECT_THROW(load_obj(ss), std::runtime_error);
}

}  // namespace
}  // namespace thsr
