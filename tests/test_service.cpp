/// Serving-layer contract (src/service/, DESIGN.md section 1.10): viewpoint
/// canonicalization and the width-budget gate; the exact transform preserving
/// topology and edge ids; parameterized solves bit-identical — maps and work
/// counters — to direct solves of the pre-transformed terrain across
/// algorithms, backends, and thread counts; the engine cache's LRU order,
/// byte budget, and hit-path identity (including under concurrent acquires:
/// the tsan preset runs this file); the scoped prepare paths; and the query
/// server's submit/drain/error/drop behavior.

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/engine.hpp"
#include "raster/raster.hpp"
#include "service/query_server.hpp"
#include "terrain/generators.hpp"
#include "test_util.hpp"

namespace thsr {
namespace {

using service::EngineCache;
using service::PreparedView;
using service::Query;
using service::QueryReply;
using service::QueryServer;
using service::QueryStatus;
using service::ServerOptions;
using service::Viewpoint;

Terrain make(Family f, u32 grid, u64 seed = 1) {
  GenOptions opt;
  opt.family = f;
  opt.grid = grid;
  opt.seed = seed;
  return make_terrain(opt);
}

std::shared_ptr<const Terrain> make_shared_terrain(Family f, u32 grid, u64 seed = 1) {
  return std::make_shared<const Terrain>(make(f, grid, seed));
}

// Map + stats equality at the bit-identical level the serving layer
// guarantees (same contract as tests/test_engine.cpp).
void expect_identical(const HsrResult& got, const HsrResult& want, const std::string& label) {
  const auto diff = want.map.first_difference(got.map);
  EXPECT_FALSE(diff.has_value()) << label << ": maps differ at edge " << *diff;
  EXPECT_EQ(got.stats.work, want.stats.work) << label << ": work counters differ";
  EXPECT_EQ(got.stats.k_pieces, want.stats.k_pieces) << label;
  EXPECT_EQ(got.stats.k_crossings, want.stats.k_crossings) << label;
  EXPECT_EQ(got.stats.treap_nodes, want.stats.treap_nodes) << label;
  EXPECT_EQ(got.stats.n_edges, want.stats.n_edges) << label;
  EXPECT_EQ(got.stats.n_slivers, want.stats.n_slivers) << label;
  EXPECT_EQ(got.stats.depth_constraints, want.stats.depth_constraints) << label;
}

// Admissible, non-trivial viewpoints exercising every rung of the reuse
// ladder: pure shears (ground-preserving), pure rotations, and both.
std::vector<Viewpoint> probe_viewpoints() {
  return {
      Viewpoint{},                                                       // canonical frame
      Viewpoint{.elev_num = 1, .elev_den = 3},                           // shear only
      Viewpoint{.elev_num = -2, .elev_den = 5},                          // shear below horizon
      Viewpoint{.dir_x = 0, .dir_y = 1},                                 // quarter turn
      Viewpoint{.dir_x = 3, .dir_y = 4},                                 // Pythagorean azimuth
      Viewpoint{.dir_x = -1, .dir_y = 2, .elev_num = 1, .elev_den = 4},  // general
  };
}

TEST(Viewpoint, CanonicalReducesDirectionAndSlope) {
  const Viewpoint c = service::canonical({.dir_x = 6, .dir_y = -4, .elev_num = 10, .elev_den = -4});
  EXPECT_EQ(c.dir_x, 3);
  EXPECT_EQ(c.dir_y, -2);
  EXPECT_EQ(c.elev_num, -5);
  EXPECT_EQ(c.elev_den, 2);
  // Zero slope pins to 0/1 regardless of the input denominator.
  const Viewpoint z = service::canonical({.dir_x = -2, .dir_y = 0, .elev_num = 0, .elev_den = 9});
  EXPECT_EQ(z.dir_x, -1);
  EXPECT_EQ(z.elev_den, 1);
  // Canonical inputs are fixed points.
  EXPECT_EQ(service::canonical(c), c);
}

TEST(Viewpoint, CanonicalThrowsOnDegenerateInputs) {
  EXPECT_THROW((void)service::canonical({.dir_x = 0, .dir_y = 0}), std::invalid_argument);
  EXPECT_THROW((void)service::canonical({.dir_x = 1, .dir_y = 0, .elev_den = 0}),
               std::invalid_argument);
}

TEST(Viewpoint, FramePredicatesIgnoreScaling) {
  EXPECT_TRUE(service::is_canonical_frame({.dir_x = 7, .dir_y = 0, .elev_num = 0, .elev_den = 5}));
  EXPECT_FALSE(service::is_canonical_frame({.dir_x = 1, .dir_y = 0, .elev_num = 1, .elev_den = 5}));
  EXPECT_TRUE(service::ground_preserving({.dir_x = 3, .dir_y = 0, .elev_num = 2, .elev_den = 6}));
  EXPECT_FALSE(service::ground_preserving({.dir_x = 1, .dir_y = 1}));
}

TEST(Viewpoint, AdmissibilityMatchesTheWidthBound) {
  // R = 7, slope 1/1: bound = max(7M, (1 + 7)M) = 8M.
  const Viewpoint vp{.dir_x = 3, .dir_y = -4, .elev_num = 1, .elev_den = 1};
  EXPECT_EQ(service::transformed_magnitude_bound(vp, 100), u64{800});
  EXPECT_TRUE(service::admissible(vp, kMaxCoord / 8));
  EXPECT_FALSE(service::admissible(vp, kMaxCoord / 8 + 1));
  // A huge direction is inadmissible for any nonzero terrain...
  EXPECT_FALSE(service::admissible({.dir_x = kMaxCoord, .dir_y = 1}, 2));
  // ...and anything goes on the all-zero terrain.
  EXPECT_TRUE(service::admissible({.dir_x = kMaxCoord, .dir_y = 1}, 0));
}

TEST(Viewpoint, TransformPreservesTopologyAndEdgeIds) {
  const Terrain t = make(Family::Fbm, 10);
  const Terrain img = service::transform_terrain(t, {.dir_x = 3, .dir_y = 4, .elev_num = 1,
                                                     .elev_den = 3});
  ASSERT_EQ(img.vertex_count(), t.vertex_count());
  ASSERT_EQ(img.triangle_count(), t.triangle_count());
  ASSERT_EQ(img.edge_count(), t.edge_count());
  for (std::size_t e = 0; e < t.edge_count(); ++e) {
    EXPECT_EQ(img.edges()[e], t.edges()[e]);
  }
  // Spot-check the map on vertex 0: x' = 3x + 4y, y' = 3y - 4x, z' = 3z - x'.
  const Vertex3 v = t.vertices()[0];
  const Vertex3 w = img.vertices()[0];
  EXPECT_EQ(w.x, 3 * v.x + 4 * v.y);
  EXPECT_EQ(w.y, 3 * v.y - 4 * v.x);
  EXPECT_EQ(w.z, 3 * v.z - (3 * v.x + 4 * v.y));
}

TEST(Viewpoint, ScaledViewpointsProduceBitIdenticalTerrains) {
  const Terrain t = make(Family::Valley, 8);
  const Terrain a = service::transform_terrain(t, {.dir_x = 1, .dir_y = 1, .elev_num = 1,
                                                   .elev_den = 2});
  const Terrain b = service::transform_terrain(t, {.dir_x = 5, .dir_y = 5, .elev_num = -3,
                                                   .elev_den = -6});
  ASSERT_EQ(a.vertex_count(), b.vertex_count());
  for (std::size_t i = 0; i < a.vertex_count(); ++i) {
    EXPECT_EQ(a.vertices()[i], b.vertices()[i]);
  }
}

TEST(Viewpoint, IdentityTransformIsAPlainCopy) {
  const Terrain t = make(Family::Spikes, 8);
  const Terrain img = service::transform_terrain(t, {.dir_x = 4, .dir_y = 0});
  ASSERT_EQ(img.vertex_count(), t.vertex_count());
  for (std::size_t i = 0; i < t.vertex_count(); ++i) {
    EXPECT_EQ(img.vertices()[i], t.vertices()[i]);
  }
}

// The acceptance bar of this layer: a parameterized solve through the cache
// is bitwise identical to a direct solve of the pre-transformed terrain, for
// every probe viewpoint, across algorithms.
TEST(Service, ParameterizedSolveMatchesDirectSolveAcrossAlgorithms) {
  const auto t = make_shared_terrain(Family::Fbm, 12);
  EngineCache cache;
  cache.add_terrain(1, t);
  for (const Viewpoint& vp : probe_viewpoints()) {
    ASSERT_TRUE(service::admissible(vp, t->max_abs_coord()));
    const Terrain direct_terrain = service::transform_terrain(*t, vp);
    const auto view = cache.acquire(1, vp);
    for (const Algorithm a : {Algorithm::Parallel, Algorithm::Sequential, Algorithm::Reference}) {
      const HsrOptions opt{.algorithm = a};
      const HsrResult direct = hidden_surface_removal(direct_terrain, opt);
      expect_identical(view->solve_scoped(opt), direct,
                       std::string(algorithm_name(a)) + " dir=(" + std::to_string(vp.dir_x) + "," +
                           std::to_string(vp.dir_y) + ") elev=" + std::to_string(vp.elev_num) +
                           "/" + std::to_string(vp.elev_den));
    }
  }
}

TEST(Service, ParameterizedSolveMatchesDirectSolveAcrossBackendsAndThreads) {
  const auto t = make_shared_terrain(Family::TerraceBack, 10);
  const Viewpoint vp{.dir_x = 2, .dir_y = -1, .elev_num = 1, .elev_den = 2};
  const Terrain direct_terrain = service::transform_terrain(*t, vp);
  EngineCache cache;
  cache.add_terrain(1, t);
  const auto view = cache.acquire(1, vp);
  for (const par::Backend b : par::available_backends()) {
    for (const int threads : {1, 3}) {
      const HsrOptions opt{.algorithm = Algorithm::Parallel, .threads = threads, .backend = b};
      expect_identical(view->engine().solve(opt), hidden_surface_removal(direct_terrain, opt),
                       std::string(par::backend_name(b)) + " threads=" + std::to_string(threads));
    }
  }
}

TEST(Service, GroundPreservingMissTransfersTheDepthOrder) {
  const auto t = make_shared_terrain(Family::Fbm, 10, 3);
  const Viewpoint shear{.elev_num = 1, .elev_den = 4};
  const Terrain direct_terrain = service::transform_terrain(*t, shear);

  EngineCache cache;
  cache.add_terrain(1, t);
  (void)cache.acquire(1, Viewpoint{});  // resident canonical-frame base
  const auto view = cache.acquire(1, shear);
  EXPECT_TRUE(view->reused_base_order());
  EXPECT_EQ(cache.stats().order_transfers, u64{1});

  // Transfer is a wall-clock optimization only: identical map AND counters.
  const HsrOptions opt{.algorithm = Algorithm::Parallel};
  expect_identical(view->solve_scoped(opt), hidden_surface_removal(direct_terrain, opt),
                   "order transfer");

  // Without the resident base the same miss takes the full-prepare rung and
  // still produces the identical solve.
  EngineCache cold;
  cold.add_terrain(1, t);
  const auto cold_view = cold.acquire(1, shear);
  EXPECT_FALSE(cold_view->reused_base_order());
  expect_identical(cold_view->solve_scoped(opt), hidden_surface_removal(direct_terrain, opt),
                   "full prepare");
}

TEST(EngineScoped, PrepareScopedMatchesPrepare) {
  const Terrain t = make(Family::Valley, 10);
  HsrEngine plain;
  plain.prepare(t);
  HsrEngine scoped;
  scoped.prepare_scoped(t);
  for (const Algorithm a : {Algorithm::Parallel, Algorithm::Sequential}) {
    const HsrOptions opt{.algorithm = a};
    expect_identical(scoped.solve(opt), plain.solve(opt), algorithm_name(a));
  }
}

TEST(EngineScoped, PrepareWithOrderOfRejectsMismatchedTerrains) {
  const Terrain t = make(Family::Fbm, 8);
  // Same topology but a rotated ground projection: the depth order is not
  // transferable and the guard must say so.
  const Terrain rotated = service::transform_terrain(t, {.dir_x = 0, .dir_y = 1});
  HsrEngine base;
  base.prepare(t);
  HsrEngine derived;
  EXPECT_THROW(derived.prepare_with_order_of(rotated, base), std::invalid_argument);
  // Different vertex count: rejected before any per-vertex comparison.
  const Terrain smaller = make(Family::Fbm, 6);
  EXPECT_THROW(derived.prepare_with_order_of(smaller, base), std::invalid_argument);
  // The pure z-shear image is transferable — the accept path still works.
  const Terrain sheared = service::transform_terrain(t, {.elev_num = 1, .elev_den = 2});
  derived.prepare_with_order_of(sheared, base);
  EXPECT_TRUE(derived.prepared());
}

TEST(EngineCacheTest, HitsMissesAndLruOrder) {
  const auto t = make_shared_terrain(Family::Fbm, 8);
  EngineCache cache;
  cache.add_terrain(1, t);
  const Viewpoint a{};
  const Viewpoint b{.elev_num = 1, .elev_den = 2};
  const Viewpoint c{.dir_x = 0, .dir_y = 1};

  (void)cache.acquire(1, a);
  (void)cache.acquire(1, b);
  (void)cache.acquire(1, c);
  EXPECT_EQ(cache.stats().misses, u64{3});
  EXPECT_EQ(cache.stats().hits, u64{0});

  bool hit = false;
  (void)cache.acquire(1, a, &hit);  // touch a => MRU order c-then-a flips
  EXPECT_TRUE(hit);
  EXPECT_EQ(cache.stats().hits, u64{1});

  const auto resident = cache.resident();
  ASSERT_EQ(resident.size(), std::size_t{3});
  EXPECT_EQ(resident[0].second, service::canonical(a));
  EXPECT_EQ(resident[1].second, service::canonical(c));
  EXPECT_EQ(resident[2].second, service::canonical(b));

  // Scaled viewpoints share the canonical key: no fourth entry.
  (void)cache.acquire(1, Viewpoint{.dir_x = 9, .dir_y = 0, .elev_num = 0, .elev_den = 4}, &hit);
  EXPECT_TRUE(hit);
  EXPECT_EQ(cache.stats().resident_entries, u64{3});
}

TEST(EngineCacheTest, ByteBudgetEvictsLeastRecentlyUsed) {
  const auto t = make_shared_terrain(Family::Fbm, 10);
  // Size the budget from a real entry so exactly ~2 of 3 fit.
  EngineCache probe;
  probe.add_terrain(1, t);
  const u64 one = probe.acquire(1, Viewpoint{})->footprint_bytes();
  ASSERT_GT(one, u64{0});

  EngineCache cache({.byte_budget = 2 * one + one / 2});
  cache.add_terrain(1, t);
  (void)cache.acquire(1, Viewpoint{});
  (void)cache.acquire(1, Viewpoint{.elev_num = 1, .elev_den = 2});
  (void)cache.acquire(1, Viewpoint{.dir_x = 0, .dir_y = 1});
  const EngineCache::Stats s = cache.stats();
  EXPECT_GT(s.evictions, u64{0});
  EXPECT_LT(s.resident_entries, u64{3});
  // The canonical frame was the LRU entry: re-acquiring it is a miss.
  bool hit = true;
  (void)cache.acquire(1, Viewpoint{}, &hit);
  EXPECT_FALSE(hit);
}

TEST(EngineCacheTest, EntryLargerThanBudgetStillServes) {
  const auto t = make_shared_terrain(Family::Fbm, 8);
  EngineCache cache({.byte_budget = 1});  // nothing fits
  cache.add_terrain(1, t);
  const auto view = cache.acquire(1, Viewpoint{});
  ASSERT_NE(view, nullptr);
  (void)view->solve_scoped({.algorithm = Algorithm::Sequential});
  // The entry being acquired is never evicted by its own acquire.
  EXPECT_EQ(cache.stats().resident_entries, u64{1});
}

TEST(EngineCacheTest, EvictedEntryLeaseStaysUsable) {
  const auto t = make_shared_terrain(Family::Fbm, 8);
  EngineCache cache({.byte_budget = 1});
  cache.add_terrain(1, t);
  const auto old = cache.acquire(1, Viewpoint{});
  (void)cache.acquire(1, Viewpoint{.elev_num = 1, .elev_den = 3});  // evicts the first
  EXPECT_GE(cache.stats().evictions, u64{1});
  const HsrResult direct = hidden_surface_removal(*t, {.algorithm = Algorithm::Sequential});
  expect_identical(old->solve_scoped({.algorithm = Algorithm::Sequential}), direct,
                   "evicted lease");
}

TEST(EngineCacheTest, CacheHitSolveIsBitIdenticalToColdSolve) {
  const auto t = make_shared_terrain(Family::Spikes, 10);
  const Viewpoint vp{.dir_x = 1, .dir_y = 2};
  EngineCache cache;
  cache.add_terrain(1, t);
  const HsrOptions opt{.algorithm = Algorithm::Parallel};
  const HsrResult cold = cache.acquire(1, vp)->solve_scoped(opt);
  bool hit = false;
  const HsrResult warm = cache.acquire(1, vp, &hit)->solve_scoped(opt);
  EXPECT_TRUE(hit);
  expect_identical(warm, cold, "hit vs cold");
}

TEST(EngineCacheTest, RejectsUnknownIdsAndInadmissibleViewpoints) {
  const auto t = make_shared_terrain(Family::Fbm, 8);
  EngineCache cache;
  EXPECT_FALSE(cache.has_terrain(1));
  EXPECT_THROW((void)cache.acquire(1, Viewpoint{}), std::invalid_argument);
  cache.add_terrain(1, t);
  EXPECT_TRUE(cache.has_terrain(1));
  EXPECT_THROW((void)cache.acquire(1, Viewpoint{.dir_x = kMaxCoord, .dir_y = 1}),
               std::invalid_argument);
  // A failed build is forgotten, not poisoned: good acquires still work.
  EXPECT_NE(cache.acquire(1, Viewpoint{}), nullptr);
}

// The tsan target of this file: concurrent acquires across hot and cold
// keys must build each entry once, keep counters consistent, and produce
// bit-identical solves from every thread.
TEST(EngineCacheTest, ConcurrentAcquiresAreConsistent) {
  const auto t = make_shared_terrain(Family::Fbm, 8);
  // Roomy budget: arena blocks are MB-scale, and an eviction would rebuild
  // an entry and legitimately inflate the miss count asserted below.
  EngineCache cache({.byte_budget = u64{1} << 30});
  cache.add_terrain(1, t);
  const std::vector<Viewpoint> vps = {
      Viewpoint{},
      Viewpoint{.elev_num = 1, .elev_den = 2},
      Viewpoint{.dir_x = 0, .dir_y = 1},
      Viewpoint{.dir_x = 1, .dir_y = 1},
  };
  const HsrOptions opt{.algorithm = Algorithm::Sequential};
  std::vector<HsrResult> direct;
  direct.reserve(vps.size());
  for (const Viewpoint& vp : vps) {
    direct.push_back(hidden_surface_removal(service::transform_terrain(*t, vp), opt));
  }

  constexpr int kThreads = 8;
  constexpr int kRounds = 6;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (int w = 0; w < kThreads; ++w) {
    pool.emplace_back([&, w] {
      for (int r = 0; r < kRounds; ++r) {
        const std::size_t i = static_cast<std::size_t>(w + r) % vps.size();
        const auto view = cache.acquire(1, vps[i]);
        const HsrResult got = view->solve_scoped(opt);
        if (direct[i].map.first_difference(got.map).has_value() ||
            !(got.stats.work == direct[i].stats.work)) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& th : pool) th.join();
  EXPECT_EQ(mismatches.load(), 0);
  const EngineCache::Stats s = cache.stats();
  EXPECT_EQ(s.hits + s.misses, u64{kThreads * kRounds});
  // Every key was built at most once per residency span; with a roomy
  // budget that means exactly vps.size() misses.
  EXPECT_EQ(s.evictions, u64{0});
  EXPECT_EQ(s.misses, vps.size());
}

TEST(QueryServerTest, ServesQueriesBitIdenticalToDirectSolves) {
  const auto t = make_shared_terrain(Family::Fbm, 10);
  QueryServer server({.workers = 3});
  server.add_terrain(7, t);

  const std::vector<Viewpoint> vps = probe_viewpoints();
  std::vector<std::optional<QueryReply>> replies(2 * vps.size());
  std::mutex mu;
  for (std::size_t q = 0; q < replies.size(); ++q) {
    const bool ok = server.submit(
        Query{.terrain_id = 7, .viewpoint = vps[q % vps.size()], .tag = q},
        [&replies, &mu, q](QueryReply&& r) {
          const std::lock_guard<std::mutex> lk(mu);
          replies[q] = std::move(r);
        });
    EXPECT_TRUE(ok);
  }
  server.drain();

  for (std::size_t q = 0; q < replies.size(); ++q) {
    ASSERT_TRUE(replies[q].has_value()) << "query " << q << " never completed";
    const QueryReply& r = *replies[q];
    EXPECT_EQ(r.tag, q);
    ASSERT_EQ(r.status, QueryStatus::Ok) << r.error;
    ASSERT_TRUE(r.result.has_value());
    EXPECT_GT(r.latency_ns, u64{0});
    EXPECT_GE(r.latency_ns, r.solve_ns);
    const Terrain direct_terrain = service::transform_terrain(*t, vps[q % vps.size()]);
    expect_identical(*r.result, hidden_surface_removal(direct_terrain, HsrOptions{}),
                     "query " + std::to_string(q));
  }
  const QueryServer::Stats s = server.stats();
  EXPECT_EQ(s.submitted, replies.size());
  EXPECT_EQ(s.completed, replies.size());
  EXPECT_EQ(s.dropped, u64{0});
  EXPECT_EQ(s.errors, u64{0});
  EXPECT_GT(server.cache_stats().hits, u64{0});  // repeated viewpoints hit
}

// Resolution-bounded queries (DESIGN.md section 1.12) flow through the
// server via Query::solve.pixel_budget. Preparation is budget-independent,
// so one cache entry serves exact and bounded queries alike, and at the
// budget's matching resolution the bounded reply rasterizes bitwise
// identically to the exact reply.
TEST(QueryServerTest, BoundedQueriesShareTheCacheAndMatchExactRasters) {
  const auto t = make_shared_terrain(Family::TerraceBack, 10);
  QueryServer server({.workers = 1});  // serialize: exactly one miss, one hit
  server.add_terrain(3, t);
  const Viewpoint vp{.dir_x = 2, .dir_y = 1};
  // Clients rasterize replies against the *view* terrain, so the budget is
  // derived from its window.
  const Terrain view = service::transform_terrain(*t, vp);
  const raster::RasterOptions ropt{.width = 24, .height = 16};
  HsrOptions bounded_opt;
  bounded_opt.pixel_budget = raster::pixel_budget(view, ropt);

  std::optional<QueryReply> exact, bounded;
  std::mutex mu;
  ASSERT_TRUE(server.submit(Query{.terrain_id = 3, .viewpoint = vp, .tag = 0},
                            [&](QueryReply&& r) {
                              const std::lock_guard<std::mutex> lk(mu);
                              exact = std::move(r);
                            }));
  ASSERT_TRUE(server.submit(
      Query{.terrain_id = 3, .viewpoint = vp, .solve = bounded_opt, .tag = 1},
      [&](QueryReply&& r) {
        const std::lock_guard<std::mutex> lk(mu);
        bounded = std::move(r);
      }));
  server.drain();

  ASSERT_TRUE(exact.has_value() && bounded.has_value());
  ASSERT_EQ(exact->status, QueryStatus::Ok) << exact->error;
  ASSERT_EQ(bounded->status, QueryStatus::Ok) << bounded->error;
  const raster::ImageRaster img_e = raster::rasterize(view, exact->result->map, ropt);
  const raster::ImageRaster img_b = raster::rasterize(view, bounded->result->map, ropt);
  EXPECT_EQ(img_b.ids, img_e.ids);
  EXPECT_EQ(img_b.depth, img_e.depth);
  EXPECT_EQ(img_b.coverage, img_e.coverage);
  EXPECT_EQ(img_b.crossings, img_e.crossings);
  EXPECT_EQ(img_b.hit_samples, img_e.hit_samples);
  // The bounded solve never materializes more than the exact one.
  EXPECT_LE(bounded->result->stats.k_pieces, exact->result->stats.k_pieces);
  EXPECT_LE(bounded->result->stats.treap_nodes, exact->result->stats.treap_nodes);
  // Both budgets were served by the same prepared engine: the second query
  // hit the (terrain, viewpoint) entry the first one built.
  EXPECT_EQ(server.cache_stats().misses, u64{1});
  EXPECT_GE(server.cache_stats().hits, u64{1});
}

TEST(QueryServerTest, BadQueriesYieldErrorRepliesNotCrashes) {
  const auto t = make_shared_terrain(Family::Fbm, 8);
  QueryServer server({.workers = 1});
  server.add_terrain(1, t);

  std::vector<QueryReply> replies;
  std::mutex mu;
  const auto collect = [&](QueryReply&& r) {
    const std::lock_guard<std::mutex> lk(mu);
    replies.push_back(std::move(r));
  };
  // Unregistered terrain, inadmissible viewpoint, per-query thread override.
  ASSERT_TRUE(server.submit(Query{.terrain_id = 99, .tag = 0}, collect));
  ASSERT_TRUE(server.submit(
      Query{.terrain_id = 1, .viewpoint = {.dir_x = kMaxCoord, .dir_y = 1}, .tag = 1}, collect));
  ASSERT_TRUE(server.submit(
      Query{.terrain_id = 1, .solve = {.threads = 4}, .tag = 2}, collect));
  // And a good one after the bad ones: the worker survived.
  ASSERT_TRUE(server.submit(Query{.terrain_id = 1, .tag = 3}, collect));
  server.drain();

  ASSERT_EQ(replies.size(), std::size_t{4});
  for (const QueryReply& r : replies) {
    if (r.tag == 3) {
      EXPECT_EQ(r.status, QueryStatus::Ok) << r.error;
      EXPECT_TRUE(r.result.has_value());
    } else {
      EXPECT_EQ(r.status, QueryStatus::Error) << "tag " << r.tag;
      EXPECT_FALSE(r.error.empty());
      EXPECT_FALSE(r.result.has_value());
    }
  }
  const QueryServer::Stats s = server.stats();
  EXPECT_EQ(s.completed, u64{4});
  EXPECT_EQ(s.errors, u64{3});
}

TEST(QueryServerTest, NonBlockingSubmitDropsWhenFull) {
  const auto t = make_shared_terrain(Family::Fbm, 8);
  QueryServer server({.workers = 1, .queue_capacity = 1, .block_when_full = false});
  server.add_terrain(1, t);

  // Occupy the lone worker: its callback blocks until we release it, while
  // the queue behind it fills.
  std::promise<void> release;
  std::shared_future<void> released(release.get_future());
  std::promise<void> entered;
  ASSERT_TRUE(server.submit(Query{.terrain_id = 1, .tag = 0}, [&](QueryReply&&) {
    entered.set_value();
    released.wait();
  }));
  entered.get_future().wait();

  std::atomic<int> completed{0};
  const auto count = [&](QueryReply&&) { completed.fetch_add(1); };
  ASSERT_TRUE(server.submit(Query{.terrain_id = 1, .tag = 1}, count));   // fills the queue
  EXPECT_FALSE(server.submit(Query{.terrain_id = 1, .tag = 2}, count));  // dropped
  release.set_value();
  server.drain();

  const QueryServer::Stats s = server.stats();
  EXPECT_EQ(s.submitted, u64{2});
  EXPECT_EQ(s.dropped, u64{1});
  EXPECT_EQ(s.completed, u64{2});
  EXPECT_EQ(completed.load(), 1);
}

TEST(QueryServerTest, StopIsIdempotentAndRefusesNewWork) {
  const auto t = make_shared_terrain(Family::Fbm, 8);
  QueryServer server({.workers = 2});
  server.add_terrain(1, t);
  std::atomic<int> completed{0};
  ASSERT_TRUE(server.submit(Query{.terrain_id = 1}, [&](QueryReply&&) { completed.fetch_add(1); }));
  server.stop();
  server.stop();  // idempotent
  EXPECT_EQ(completed.load(), 1);  // accepted work finishes before stop returns
  EXPECT_FALSE(server.submit(Query{.terrain_id = 1}, [](QueryReply&&) {}));
  EXPECT_EQ(server.stats().dropped, u64{1});
}

}  // namespace
}  // namespace thsr
