/// Determinism: the parallel algorithm's output and persistent-structure
/// shape must be independent of the worker count and of scheduling (content
/// -hashed treap priorities + immutable versions guarantee it).

#include <gtest/gtest.h>

#include "core/hsr.hpp"
#include "parallel/backend.hpp"
#include "terrain/generators.hpp"
#include "test_util.hpp"

namespace thsr {
namespace {

class DeterminismP : public ::testing::TestWithParam<Family> {};

TEST_P(DeterminismP, MapIndependentOfThreadCount) {
  GenOptions opt;
  opt.family = GetParam();
  opt.grid = 18;
  opt.seed = 9;
  const Terrain t = make_terrain(opt);

  const auto p1 = hidden_surface_removal(t, {.algorithm = Algorithm::Parallel, .threads = 1});
  const auto p2 = hidden_surface_removal(t, {.algorithm = Algorithm::Parallel, .threads = 2});
  const auto p4 = hidden_surface_removal(t, {.algorithm = Algorithm::Parallel, .threads = 4});

  EXPECT_FALSE(p1.map.first_difference(p2.map).has_value());
  EXPECT_FALSE(p1.map.first_difference(p4.map).has_value());
  EXPECT_EQ(p1.stats.k_pieces, p2.stats.k_pieces);
  EXPECT_EQ(p1.stats.k_crossings, p4.stats.k_crossings);
  // Structure size is also schedule-independent (content-hashed shapes).
  EXPECT_EQ(p1.stats.treap_nodes, p2.stats.treap_nodes);
  EXPECT_EQ(p1.stats.phase1_pieces, p2.stats.phase1_pieces);
  // Counted work is *exactly* schedule-independent: every grain/strip
  // decision is pinned to constants (kEnvMergeStrips), so the same
  // operations run at every p — only their placement changes. The perf
  // CI baselines (bench/baselines/) depend on this being exact.
  EXPECT_EQ(p1.stats.work.v, p2.stats.work.v);
  EXPECT_EQ(p1.stats.work.v, p4.stats.work.v);
}

TEST_P(DeterminismP, MapAndWorkIndependentOfBackend) {
  GenOptions opt;
  opt.family = GetParam();
  opt.grid = 18;
  opt.seed = 9;
  const Terrain t = make_terrain(opt);

  const auto base =
      hidden_surface_removal(t, {.algorithm = Algorithm::Parallel, .threads = 3,
                                 .backend = par::Backend::Serial});
  for (const par::Backend b : par::available_backends()) {
    const auto r = hidden_surface_removal(
        t, {.algorithm = Algorithm::Parallel, .threads = 3, .backend = b});
    EXPECT_FALSE(base.map.first_difference(r.map).has_value()) << par::backend_name(b);
    EXPECT_EQ(base.stats.treap_nodes, r.stats.treap_nodes) << par::backend_name(b);
    EXPECT_EQ(base.stats.phase1_pieces, r.stats.phase1_pieces) << par::backend_name(b);
    EXPECT_EQ(base.stats.work.v, r.stats.work.v) << par::backend_name(b);
  }
}

TEST_P(DeterminismP, RepeatedRunsBitEqual) {
  GenOptions opt;
  opt.family = GetParam();
  opt.grid = 14;
  opt.seed = 5;
  const Terrain t = make_terrain(opt);
  const auto a = hidden_surface_removal(t, {.algorithm = Algorithm::Parallel, .threads = 2});
  const auto b = hidden_surface_removal(t, {.algorithm = Algorithm::Parallel, .threads = 2});
  EXPECT_FALSE(a.map.first_difference(b.map).has_value());
  EXPECT_EQ(a.stats.treap_nodes, b.stats.treap_nodes);
}

INSTANTIATE_TEST_SUITE_P(Families, DeterminismP,
                         ::testing::Values(Family::Fbm, Family::Spikes, Family::Skyline),
                         [](const auto& info) { return family_name(info.param); });

TEST(Determinism, SequentialUnaffectedByThreadSetting) {
  GenOptions opt;
  opt.grid = 12;
  const Terrain t = make_terrain(opt);
  const auto a = hidden_surface_removal(t, {.algorithm = Algorithm::Sequential, .threads = 1});
  const auto b = hidden_surface_removal(t, {.algorithm = Algorithm::Sequential, .threads = 4});
  EXPECT_FALSE(a.map.first_difference(b.map).has_value());
}

}  // namespace
}  // namespace thsr
