/// Raster subsystem tests (src/raster/): scan-converter vs the brute-force
/// ray-cast oracle across families, resolutions, and supersampling;
/// bit-identity across backends and thread counts; sharded-vs-monolithic
/// raster equality without a stitch; NODATA propagation and degenerate
/// slivers; the georeferenced viewshed grid.

#include <gtest/gtest.h>

#include <sstream>

#include "core/engine.hpp"
#include "core/hsr.hpp"
#include "raster/oracle.hpp"
#include "raster/raster.hpp"
#include "raster/viewshed.hpp"
#include "shard/sharded_engine.hpp"
#include "terrain/asc_io.hpp"
#include "terrain/generators.hpp"
#include "test_util.hpp"

namespace thsr {
namespace {

using raster::ImageRaster;
using raster::RasterOptions;

Terrain gen(Family f, u32 grid, bool shear = true) {
  GenOptions opt;
  opt.family = f;
  opt.grid = grid;
  opt.seed = 7;
  opt.shear = shear;
  return make_terrain(opt);
}

void expect_images_equal(const ImageRaster& a, const ImageRaster& b, const char* what) {
  ASSERT_EQ(a.width, b.width) << what;
  ASSERT_EQ(a.height, b.height) << what;
  EXPECT_EQ(a.ids, b.ids) << what << ": id maps differ";
  EXPECT_EQ(a.depth, b.depth) << what << ": depth maps differ";
  EXPECT_EQ(a.coverage, b.coverage) << what << ": coverage maps differ";
  EXPECT_EQ(a.hit_samples, b.hit_samples) << what;
}

/// The scan-converted image must match the ray-cast oracle bitwise
/// (sampling, attribution, and depth evaluation are shared helpers).
void expect_matches_oracle(const Terrain& t, const RasterOptions& opt, const char* what) {
  const HsrResult r = hidden_surface_removal(t);
  const ImageRaster img = raster::rasterize(t, r.map, opt);
  const ImageRaster ref = raster::raycast_reference(t, opt);
  expect_images_equal(img, ref, what);
  EXPECT_EQ(img.samples, u64{opt.width} * opt.supersample * opt.height * opt.supersample);
}

TEST(Raster, MatchesOracleAcrossFamilies) {
  for (const Family f : kAllFamilies) {
    expect_matches_oracle(gen(f, 10), {.width = 64, .height = 48}, family_name(f));
  }
}

TEST(Raster, MatchesOracleAcrossResolutions) {
  const Terrain t = gen(Family::Fbm, 12);
  for (const u32 w : {16u, 63u, 128u}) {
    const u32 h = (w * 3) / 4;
    expect_matches_oracle(t, {.width = w, .height = h},
                          ("resolution " + std::to_string(w)).c_str());
  }
}

TEST(Raster, MatchesOracleSupersampled) {
  const Terrain t = gen(Family::RidgeFront, 10);
  expect_matches_oracle(t, {.width = 40, .height = 30, .supersample = 2}, "s=2");
  expect_matches_oracle(t, {.width = 24, .height = 20, .supersample = 3}, "s=3");
}

TEST(Raster, MatchesOracleWithSliverEdges) {
  // shear=false: axis-aligned lattice whose cross-rows are degenerate
  // sliver edges. Both sides ignore zero-width walls; the odd-extent
  // default window keeps every sample column off the integer lattice.
  expect_matches_oracle(gen(Family::Fbm, 9, /*shear=*/false), {.width = 48, .height = 36},
                        "slivers");
}

TEST(Raster, MatchesOracleOnAscTerrainWithNodata) {
  AscGrid g;
  g.ncols = 14;
  g.nrows = 12;
  g.cellsize = 10.0;
  g.nodata = -9999.0;
  g.values.resize(std::size_t{g.ncols} * g.nrows);
  for (u32 r = 0; r < g.nrows; ++r) {
    for (u32 c = 0; c < g.ncols; ++c) {
      double v = 10.0 * ((r * 13 + c * 7) % 9) + 2.0 * r;
      if (r >= 4 && r <= 6 && c >= 8 && c <= 10) v = *g.nodata;  // a hole
      g.values[std::size_t{r} * g.ncols + c] = v;
    }
  }
  const Terrain t = terrain_from_asc(g);
  expect_matches_oracle(t, {.width = 56, .height = 42}, "asc+nodata");
}

TEST(Raster, BitIdenticalAcrossBackendsAndThreads) {
  const Terrain t = gen(Family::Fbm, 14);
  const HsrResult r = hidden_surface_removal(t);
  const RasterOptions base{.width = 96, .height = 64, .supersample = 2};
  const ImageRaster reference = raster::rasterize(t, r.map, base);
  for (const par::Backend b : par::available_backends()) {
    for (const int p : {1, 2, 8}) {
      RasterOptions opt = base;
      opt.threads = p;
      opt.backend = b;
      const ImageRaster img = raster::rasterize(t, r.map, opt);
      expect_images_equal(img, reference,
                          (std::string(par::backend_name(b)) + "/p" + std::to_string(p)).c_str());
      EXPECT_EQ(img.crossings, reference.crossings);
    }
  }
}

// kMaxRasterAxis caps width*supersample and height*supersample so depth
// comparisons stay inside i128 (raster.hpp). The cap is a THSR_CHECK on
// the public entry points — regression-test both the rejection (abort)
// and that the exact boundary value is still accepted.
TEST(RasterLimitsDeathTest, RejectsAxisBeyondCap) {
  // threadsafe: the solve above may have spawned pool workers, and a plain
  // fork with live threads is what the "fast" style warns about.
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const Terrain t = gen(Family::Fbm, 8);
  const HsrResult r = hidden_surface_removal(t);
  EXPECT_DEATH(
      (void)raster::rasterize(t, r.map, {.width = raster::kMaxRasterAxis + 1, .height = 4}),
      "kMaxRasterAxis");
  EXPECT_DEATH(
      (void)raster::rasterize(t, r.map, {.width = 4, .height = raster::kMaxRasterAxis + 1}),
      "kMaxRasterAxis");
  // The product with supersampling is what the cap bounds, not width alone.
  EXPECT_DEATH((void)raster::rasterize(t, r.map,
                                       {.width = raster::kMaxRasterAxis / 2 + 1,
                                        .height = 4,
                                        .supersample = 2}),
               "kMaxRasterAxis");
  // The ray-cast oracle enforces the same contract.
  EXPECT_DEATH(
      (void)raster::raycast_reference(t, {.width = raster::kMaxRasterAxis + 1, .height = 4}),
      "kMaxRasterAxis");
}

// Oracle hardening: zero resolutions, u32-wrapping supersample products,
// and degenerate explicit windows must all abort — on the oracle, the
// scan-converter, and the budget derivation alike, since a permissive
// oracle would silently weaken every differential test built on it.
TEST(RasterLimitsDeathTest, RejectsDegenerateResolutionsAndWindows) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const Terrain t = gen(Family::Fbm, 8);
  const HsrResult r = hidden_surface_removal(t);
  EXPECT_DEATH((void)raster::raycast_reference(t, {.width = 0, .height = 4}), "width >= 1");
  EXPECT_DEATH((void)raster::raycast_reference(t, {.width = 4, .height = 0}), "height >= 1");
  EXPECT_DEATH((void)raster::raycast_reference(t, {.width = 4, .height = 4, .supersample = 0}),
               "supersample >= 1");
  EXPECT_DEATH((void)raster::rasterize(t, r.map, {.width = 4, .height = 4, .supersample = 0}),
               "supersample >= 1");
  // Supersampling-overflow regression: width * supersample wraps to 0 in
  // u32 arithmetic, which a 32-bit product would wave through the cap.
  // The checks multiply in u64 and must still abort.
  EXPECT_DEATH(
      (void)raster::raycast_reference(t, {.width = 1u << 31, .height = 4, .supersample = 2}),
      "kMaxRasterAxis");
  EXPECT_DEATH(
      (void)raster::rasterize(t, r.map, {.width = 4, .height = 1u << 31, .supersample = 2}),
      "kMaxRasterAxis");
  EXPECT_DEATH(
      (void)raster::pixel_budget(t, {.width = 1u << 31, .height = 4, .supersample = 2}),
      "kMaxRasterAxis");
  // Degenerate explicit windows (empty y extent, inverted z extent).
  RasterOptions degenerate{.width = 4, .height = 4};
  degenerate.window = raster::ImageWindow{5, 5, 0, 1};
  EXPECT_DEATH((void)raster::raycast_reference(t, degenerate), "y_lo < win.y_hi");
  EXPECT_DEATH((void)raster::pixel_budget(t, degenerate), "y_lo < win.y_hi");
  degenerate.window = raster::ImageWindow{0, 1, 3, -3};
  EXPECT_DEATH((void)raster::rasterize(t, r.map, degenerate), "z_lo < win.z_hi");
}

TEST(RasterLimits, AcceptsAxisAtCapExactly) {
  const Terrain t = gen(Family::Fbm, 8);
  const HsrResult r = hidden_surface_removal(t);
  const ImageRaster img =
      raster::rasterize(t, r.map, {.width = raster::kMaxRasterAxis, .height = 2});
  EXPECT_EQ(img.width, raster::kMaxRasterAxis);
  EXPECT_EQ(img.samples, u64{raster::kMaxRasterAxis} * 2);
  const ImageRaster ss = raster::rasterize(
      t, r.map, {.width = raster::kMaxRasterAxis / 2, .height = 2, .supersample = 2});
  EXPECT_EQ(ss.samples, u64{raster::kMaxRasterAxis} * 2 * 2);
  // The budget derivation accepts the same boundary (kMaxBudgetSamples is
  // static_asserted equal to kMaxRasterAxis).
  const PixelBudget pb =
      raster::pixel_budget(t, {.width = raster::kMaxRasterAxis / 2, .height = 2, .supersample = 2});
  EXPECT_EQ(pb.y_samples, raster::kMaxRasterAxis);
}

TEST(Raster, ShardedEqualsMonolithic) {
  for (const Family f : {Family::Fbm, Family::TerraceBack}) {
    const Terrain t = gen(f, 14);
    HsrEngine mono;
    mono.prepare(t);
    const HsrResult r = mono.solve();
    const RasterOptions opt{.width = 80, .height = 60, .supersample = 2};
    const ImageRaster whole = raster::rasterize(t, r.map, opt);
    for (const u32 S : {2u, 5u}) {
      shard::ShardedEngine eng;
      eng.prepare(t, S);
      const auto per = eng.solve_slabs();
      std::vector<const VisibilityMap*> maps(per.size(), nullptr);
      for (std::size_t s = 0; s < per.size(); ++s) {
        if (per[s]) maps[s] = &per[s]->map;
      }
      const ImageRaster banded = raster::rasterize_sharded(eng.plan(), maps, opt);
      expect_images_equal(banded, whole,
                          (std::string(family_name(f)) + "/S" + std::to_string(S)).c_str());
      EXPECT_EQ(banded.crossings, whole.crossings);
    }
  }
}

TEST(Raster, ExplicitWindowAndBackground) {
  const Terrain t = gen(Family::Fbm, 10);
  const HsrResult r = hidden_surface_removal(t);
  // A window reaching above the terrain: the top rows must be pure
  // background, and hit pixels must carry triangle ids in range.
  raster::ImageWindow w = raster::default_window(t);
  w.z_hi += (w.z_hi - w.z_lo) * 2;  // even padding keeps the extent odd
  const ImageRaster img =
      raster::rasterize(t, r.map, {.width = 40, .height = 60, .window = w});
  for (u32 c = 0; c < img.width; ++c) {
    EXPECT_EQ(img.id_at(0, c), raster::kNoTriangle);
    EXPECT_EQ(img.coverage_at(0, c), 0.0f);
  }
  u64 hits = 0;
  for (u32 r2 = 0; r2 < img.height; ++r2) {
    for (u32 c = 0; c < img.width; ++c) {
      const u32 id = img.id_at(r2, c);
      if (id != raster::kNoTriangle) {
        EXPECT_LT(id, t.triangle_count());
        EXPECT_GT(img.coverage_at(r2, c), 0.0f);
        ++hits;
      }
    }
  }
  EXPECT_GT(hits, 0u);
  EXPECT_EQ(img.hit_samples, hits);  // s=1: one sample per pixel
}

TEST(Raster, DefaultWindowHasOddExtents) {
  const Terrain t = gen(Family::Valley, 9);
  const raster::ImageWindow w = raster::default_window(t);
  EXPECT_EQ((w.y_hi - w.y_lo) % 2, 1);
  EXPECT_EQ((w.z_hi - w.z_lo) % 2, 1);
  const HsrResult r = hidden_surface_removal(t);
  const ImageRaster img = raster::rasterize(t, r.map);
  EXPECT_EQ(img.window.y_lo, w.y_lo);
  EXPECT_EQ(img.window.z_hi, w.z_hi);
}

TEST(Raster, SupersamplingProducesFractionalCoverage) {
  const Terrain t = gen(Family::Spikes, 10);
  const HsrResult r = hidden_surface_removal(t);
  const ImageRaster img =
      raster::rasterize(t, r.map, {.width = 48, .height = 36, .supersample = 4});
  bool fractional = false;
  for (const float c : img.coverage) {
    EXPECT_GE(c, 0.0f);
    EXPECT_LE(c, 1.0f);
    fractional = fractional || (c > 0.0f && c < 1.0f);
  }
  // Silhouette/T-vertex boundary pixels must show partial coverage.
  EXPECT_TRUE(fractional);
}

TEST(Raster, DepthGrowsTowardTheViewerDownEachColumn) {
  // Depth is the x of the visible point and the viewer sits at x = +inf:
  // the visible x at height z (max x whose profile reaches z) is
  // non-increasing in z, so walking *down* an image column (z falling)
  // depth must never decrease — nearer surface always shows lower.
  const Terrain t = gen(Family::TerraceBack, 10);
  const HsrResult r = hidden_surface_removal(t);
  const ImageRaster img = raster::rasterize(t, r.map, {.width = 48, .height = 64});
  for (u32 c = 0; c < img.width; ++c) {
    float prev = -std::numeric_limits<float>::infinity();  // top of the image: farthest
    for (u32 row = 0; row < img.height; ++row) {           // downward: z falls
      if (img.id_at(row, c) == raster::kNoTriangle) continue;
      EXPECT_GE(img.depth_at(row, c), prev - 1e-4f) << "column " << c << " row " << row;
      prev = img.depth_at(row, c);
    }
  }
}

// ---------------------------------------------------------------------------
// Viewshed grids
// ---------------------------------------------------------------------------

AscGrid demo_grid(bool with_hole) {
  AscGrid g;
  g.ncols = 16;
  g.nrows = 12;
  g.xll = 1000.0;
  g.yll = 2000.0;
  g.cellsize = 25.0;
  g.nodata = -9999.0;
  g.values.resize(std::size_t{g.ncols} * g.nrows);
  for (u32 r = 0; r < g.nrows; ++r) {
    for (u32 c = 0; c < g.ncols; ++c) {
      double v = 5.0 * ((2 * r + 3 * c) % 7) + 1.5 * (g.nrows - r);
      if (with_hole && r >= 5 && r <= 7 && c >= 3 && c <= 5) v = *g.nodata;
      g.values[std::size_t{r} * g.ncols + c] = v;
    }
  }
  return g;
}

TEST(Viewshed, NodataPropagatesAndGeoreferencingMatches) {
  const AscGrid g = demo_grid(/*with_hole=*/true);
  AscMapping reg;
  const Terrain t = terrain_from_asc(g, {}, &reg);
  ASSERT_EQ(reg.stride, 1u);
  ASSERT_EQ(reg.rows, g.nrows);
  ASSERT_EQ(reg.cols, g.ncols);
  const HsrResult r = hidden_surface_removal(t);
  const AscGrid vs = raster::viewshed_grid(t, r.map, reg, {.nodata = -1.0});
  EXPECT_EQ(vs.ncols, g.ncols);
  EXPECT_EQ(vs.nrows, g.nrows);
  EXPECT_EQ(vs.xll, g.xll);
  EXPECT_EQ(vs.yll, g.yll);
  EXPECT_EQ(vs.cellsize, g.cellsize);
  ASSERT_TRUE(vs.nodata.has_value());
  EXPECT_EQ(*vs.nodata, -1.0);
  for (u32 r2 = 0; r2 < g.nrows; ++r2) {
    for (u32 c = 0; c < g.ncols; ++c) {
      const double v = vs.at(r2, c);
      if (g.is_nodata(r2, c)) {
        EXPECT_EQ(v, -1.0) << "hole sample (" << r2 << "," << c << ")";
      } else {
        EXPECT_GE(v, 0.0);
        EXPECT_LE(v, 1.0);
      }
    }
  }
  // The northernmost data row faces the viewer unobstructed: fully visible.
  for (u32 c = 0; c + 1 < g.ncols; ++c) EXPECT_GT(vs.at(0, c), 0.0);
}

TEST(Viewshed, BooleanGridIsThresholdOfFractional) {
  const AscGrid g = demo_grid(/*with_hole=*/false);
  AscMapping reg;
  const Terrain t = terrain_from_asc(g, {}, &reg);
  const HsrResult r = hidden_surface_removal(t);
  const AscGrid frac = raster::viewshed_grid(t, r.map, reg);
  const AscGrid boolean = raster::viewshed_grid(t, r.map, reg, {.boolean_grid = true});
  for (std::size_t i = 0; i < frac.values.size(); ++i) {
    EXPECT_EQ(boolean.values[i], frac.values[i] > 0.0 ? 1.0 : 0.0) << "sample " << i;
  }
}

TEST(Viewshed, ShardedBooleanGridMatchesMonolithic) {
  const AscGrid g = demo_grid(/*with_hole=*/true);
  AscMapping reg;
  const Terrain t = terrain_from_asc(g, {}, &reg);
  HsrEngine mono;
  mono.prepare(t);
  const HsrResult r = mono.solve();
  const AscGrid whole_b = raster::viewshed_grid(t, r.map, reg, {.boolean_grid = true});
  const AscGrid whole_f = raster::viewshed_grid(t, r.map, reg);
  shard::ShardedEngine eng;
  eng.prepare(t, 4);
  const HsrResult sharded = eng.solve();
  const AscGrid band_b = raster::viewshed_grid(t, sharded.map, reg, {.boolean_grid = true});
  const AscGrid band_f = raster::viewshed_grid(t, sharded.map, reg);
  EXPECT_EQ(band_b.values, whole_b.values);  // boolean: exact
  ASSERT_EQ(band_f.values.size(), whole_f.values.size());
  for (std::size_t i = 0; i < band_f.values.size(); ++i) {
    // Fractional: identical up to double accumulation over piece splits
    // at the slab cut lines.
    EXPECT_NEAR(band_f.values[i], whole_f.values[i], 1e-9) << "sample " << i;
  }
}

TEST(Viewshed, StridedMappingKeepsRegistration) {
  AscGrid g = demo_grid(/*with_hole=*/false);
  AscMapping reg;
  const Terrain t = terrain_from_asc(g, {.stride = 2}, &reg);
  EXPECT_EQ(reg.stride, 2u);
  EXPECT_EQ(reg.rows, (g.nrows - 1) / 2 + 1);
  EXPECT_EQ(reg.cols, (g.ncols - 1) / 2 + 1);
  EXPECT_EQ(reg.cellsize, g.cellsize * 2);
  // South edge shifts north by the source rows the stride drops.
  const double dropped = static_cast<double>(g.nrows - 1 - (reg.rows - 1) * 2);
  EXPECT_EQ(reg.yll, g.yll + dropped * g.cellsize);
  const HsrResult r = hidden_surface_removal(t);
  const AscGrid vs = raster::viewshed_grid(t, r.map, reg);
  EXPECT_EQ(vs.nrows, reg.rows);
  EXPECT_EQ(vs.ncols, reg.cols);
  // Strided grids hold the round-trip contract: the viewshed is loadable
  // as an .asc and comes back bit-identical.
  std::stringstream ss;
  save_asc_grid(vs, ss);
  const AscGrid back = load_asc_grid(ss);
  EXPECT_EQ(back.values, vs.values);
  EXPECT_EQ(back.cellsize, vs.cellsize);
}

}  // namespace
}  // namespace thsr
