/// Depth-order tests: the sweep + toposort front-to-back order must be a
/// linear extension of the occlusion partial order (validated exhaustively
/// against the O(n^2) pairwise checker) on every family, sheared and not.

#include <gtest/gtest.h>

#include "separator/depth_order.hpp"
#include "separator/separator_tree.hpp"
#include "terrain/generators.hpp"
#include "test_util.hpp"

namespace thsr {
namespace {

struct OrderCase {
  Family family;
  bool shear;
  u64 seed;
};

class OrderP : public ::testing::TestWithParam<OrderCase> {};

TEST_P(OrderP, IsValidLinearExtension) {
  GenOptions opt;
  opt.family = GetParam().family;
  opt.grid = 10;
  opt.seed = GetParam().seed;
  opt.shear = GetParam().shear;
  const Terrain t = make_terrain(opt);
  const DepthOrder d = compute_depth_order(t);
  ASSERT_EQ(d.order.size(), t.edge_count());
  // Permutation check.
  std::vector<bool> seen(t.edge_count(), false);
  for (u32 e : d.order) {
    ASSERT_LT(e, t.edge_count());
    ASSERT_FALSE(seen[e]);
    seen[e] = true;
  }
  // rank is the inverse permutation.
  for (u32 r = 0; r < d.order.size(); ++r) EXPECT_EQ(d.rank[d.order[r]], r);
  EXPECT_TRUE(validate_depth_order(t, d.order));
  EXPECT_GT(d.constraints, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Families, OrderP,
    ::testing::Values(OrderCase{Family::Fbm, true, 1}, OrderCase{Family::Fbm, false, 1},
                      OrderCase{Family::RidgeFront, true, 2},
                      OrderCase{Family::RidgeFront, false, 2},
                      OrderCase{Family::TerraceBack, true, 3},
                      OrderCase{Family::Spikes, true, 4}, OrderCase{Family::Spikes, false, 4},
                      OrderCase{Family::Valley, true, 5}, OrderCase{Family::Skyline, true, 6},
                      OrderCase{Family::Skyline, false, 6}),
    [](const auto& info) {
      return std::string(family_name(info.param.family)) +
             (info.param.shear ? "_shear" : "_grid") + "_s" + std::to_string(info.param.seed);
    });

TEST(Order, DeterministicAcrossRuns) {
  GenOptions opt;
  opt.family = Family::Fbm;
  opt.grid = 14;
  const Terrain t = make_terrain(opt);
  const DepthOrder a = compute_depth_order(t), b = compute_depth_order(t);
  EXPECT_EQ(a.order, b.order);
}

TEST(Order, FrontRowComesEarly) {
  // In terrace_back the front (large-x) rows strictly dominate those behind;
  // the front boundary column edges must all precede the back boundary ones.
  GenOptions opt;
  opt.family = Family::TerraceBack;
  opt.grid = 8;
  const Terrain t = make_terrain(opt);
  const DepthOrder d = compute_depth_order(t);
  u64 front_sum = 0, front_n = 0, back_sum = 0, back_n = 0;
  for (u32 e = 0; e < t.edge_count(); ++e) {
    const Edge& ed = t.edges()[e];
    const i64 x1 = t.vertex(ed.a).x, x2 = t.vertex(ed.b).x;
    if (std::min(x1, x2) >= 8 * 6) {
      front_sum += d.rank[e];
      ++front_n;
    } else if (std::max(x1, x2) <= 8) {
      back_sum += d.rank[e];
      ++back_n;
    }
  }
  ASSERT_GT(front_n, 0u);
  ASSERT_GT(back_n, 0u);
  EXPECT_LT(front_sum / front_n, back_sum / back_n);
}

TEST(SeparatorTree, StructureInvariants) {
  for (const u32 n : {1u, 2u, 3u, 7u, 8u, 100u, 1023u}) {
    const SeparatorTree t(n);
    EXPECT_EQ(t.node(t.root()).lo, 0u);
    EXPECT_EQ(t.node(t.root()).hi, n);
    // Every layer partitions a prefix of the ranges; leaves cover [0, n).
    u64 leaves = 0;
    for (u32 v = 0; v < t.size(); ++v) {
      const PctNode& nd = t.node(v);
      if (nd.leaf()) {
        ++leaves;
        EXPECT_EQ(nd.hi - nd.lo, 1u);
      } else {
        const PctNode &l = t.node(nd.left), &r = t.node(nd.right);
        EXPECT_EQ(l.lo, nd.lo);
        EXPECT_EQ(l.hi, r.lo);
        EXPECT_EQ(r.hi, nd.hi);
      }
    }
    EXPECT_EQ(leaves, n);
    EXPECT_EQ(t.size(), 2 * n - 1);
    EXPECT_LE(t.levels(), 2 + static_cast<u32>(std::ceil(std::log2(std::max(2u, n)))));
  }
}

}  // namespace
}  // namespace thsr
