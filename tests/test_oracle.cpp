/// Oracle tests: walk_transitions (the pruned persistent-profile descent)
/// against an independent linear-scan reference over the materialized piece
/// list, across random profiles and query segments.

#include <gtest/gtest.h>

#include <random>

#include "cg/profile_query.hpp"
#include "envelope/build.hpp"
#include "test_util.hpp"

namespace thsr {
namespace {

// Build a persistent profile = envelope of segs[ids] over the floor.
ptreap::Ref profile_of(PArena& arena, const Envelope& env, std::span<const Seg2> segs) {
  ptreap::Ref t = ptreap::make_floor(arena);
  for (const EnvPiece& p : env.pieces()) {
    const PieceData run{p.y0, p.y1, p.edge};
    t = ptreap::replace_range(arena, t, p.y0, p.y1, std::span(&run, 1), segs);
  }
  return t;
}

// Independent reference: same event semantics, plain linear scan.
int naive_transitions(ptreap::Ref t, const Seg2& s, const QY& from, const QY& to,
                      std::span<const Seg2> segs, std::vector<TransitionEvent>& out) {
  std::vector<PieceData> pieces;
  ptreap::collect(t, pieces);
  int state = 0;
  bool first = true;
  int initial = 0;
  for (const PieceData& p : pieces) {
    const QY lo = qmax(from, p.y0), hi = qmin(to, p.y1);
    if (!(lo < hi)) continue;
    const Seg2& q = resolve_seg(segs, p.edge);
    const int entry = cmp_value_near(s, q, lo, Side::After) > 0 ? +1 : -1;
    if (first) {
      initial = state = entry;
      first = false;
    } else if (entry != state) {
      out.push_back({lo, entry, p.edge, EventKind::Break});
      state = entry;
    }
    if (auto cr = crossing_in(s, q, lo, hi)) {
      state = -state;
      out.push_back({*cr, state, p.edge, EventKind::Cross});
    }
  }
  THSR_CHECK(!first);
  return initial;
}

void expect_same_events(const std::vector<TransitionEvent>& a,
                        const std::vector<TransitionEvent>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(cmp(a[i].y, b[i].y), 0) << "event " << i;
    EXPECT_EQ(a[i].new_state, b[i].new_state) << "event " << i;
    EXPECT_EQ(a[i].profile_edge, b[i].profile_edge) << "event " << i;
    EXPECT_EQ(static_cast<int>(a[i].kind), static_cast<int>(b[i].kind)) << "event " << i;
  }
}

class OracleP : public ::testing::TestWithParam<std::tuple<u64, std::size_t>> {};

TEST_P(OracleP, WalkMatchesNaive) {
  const auto [seed, n] = GetParam();
  const auto segs = test::random_segments(seed, n, 800);
  const auto ids = test::iota_ids(n);
  const Envelope env = envelope_of(ids, segs);
  PArena arena;
  ptreap::Ref prof = profile_of(arena, env, segs);

  const auto queries = test::random_segments(seed * 31 + 7, 200, 800);
  for (const Seg2& s : queries) {
    const QY a = QY::of(s.u0), b = QY::of(s.u1);
    std::vector<TransitionEvent> got, expect;
    const int gi = walk_transitions(prof, s, a, b, segs, got);
    const int ei = naive_transitions(prof, s, a, b, segs, expect);
    EXPECT_EQ(gi, ei);
    expect_same_events(got, expect);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, OracleP,
                         ::testing::Combine(::testing::Values(1u, 2u, 3u, 4u),
                                            ::testing::Values(5u, 40u, 300u)),
                         [](const auto& info) {
                           return "s" + std::to_string(std::get<0>(info.param)) + "_n" +
                                  std::to_string(std::get<1>(info.param));
                         });

TEST_P(OracleP, LibraryScanMatchesNaive) {
  const auto [seed, n] = GetParam();
  const auto segs = test::random_segments(seed + 1000, n, 800);
  const auto ids = test::iota_ids(n);
  const Envelope env = envelope_of(ids, segs);
  PArena arena;
  ptreap::Ref prof = profile_of(arena, env, segs);
  std::vector<PieceData> flat;
  ptreap::collect(prof, flat);

  const auto queries = test::random_segments(seed * 37 + 11, 120, 800);
  for (const Seg2& s : queries) {
    const QY a = QY::of(s.u0), b = QY::of(s.u1);
    std::vector<TransitionEvent> got, expect;
    const int gi = walk_transitions_scan(flat, s, a, b, segs, got);
    const int ei = naive_transitions(prof, s, a, b, segs, expect);
    EXPECT_EQ(gi, ei);
    expect_same_events(got, expect);
  }
}

// Integration invariant: splicing every segment's strictly-above runs into
// the profile, in any front-to-back order, reproduces exactly the global
// upper envelope (what phase 2's prefix versions converge to).
TEST(Oracle, IncrementalProfileEqualsGlobalEnvelope) {
  for (const u64 seed : {3ull, 4ull, 5ull}) {
    const auto segs = test::random_segments(seed, 120, 600);
    const auto ids = test::iota_ids(segs.size());
    PArena arena;
    ptreap::Ref prof = ptreap::make_floor(arena);
    std::vector<TransitionEvent> ev;
    for (const u32 e : ids) {
      const Seg2& s = segs[e];
      const QY a = QY::of(s.u0), b = QY::of(s.u1);
      ev.clear();
      int state = walk_transitions(prof, s, a, b, segs, ev);
      QY run0 = a;
      const auto splice = [&](const QY& from, const QY& to) {
        const PieceData piece{from, to, e};
        prof = ptreap::replace_range(arena, prof, from, to, std::span(&piece, 1), segs);
      };
      for (const TransitionEvent& t : ev) {
        if (t.new_state == +1) {
          run0 = t.y;
        } else if (state == +1) {
          splice(run0, t.y);
        }
        state = t.new_state;
      }
      if (state == +1) splice(run0, b);
    }
    const Envelope incremental = ptreap::materialize(prof);
    const Envelope direct = envelope_of(ids, segs);
    ASSERT_EQ(incremental.size(), direct.size()) << "seed " << seed;
    for (std::size_t i = 0; i < direct.size(); ++i) {
      EXPECT_EQ(incremental.piece(i).edge, direct.piece(i).edge) << i;
      EXPECT_EQ(cmp(incremental.piece(i).y0, direct.piece(i).y0), 0) << i;
      EXPECT_EQ(cmp(incremental.piece(i).y1, direct.piece(i).y1), 0) << i;
    }
  }
}

TEST(Oracle, StateAfterAgainstFloorIsAbove) {
  PArena arena;
  std::vector<Seg2> segs{{-10, 5, 10, 5}};
  ptreap::Ref floor = ptreap::make_floor(arena);
  EXPECT_EQ(state_after(floor, segs[0], QY::of(-10), segs), +1);
}

TEST(Oracle, EventsOnKnownProfile) {
  // Profile: one tent over the floor; query passes through both slopes.
  std::vector<Seg2> segs{{-10, 0, 0, 20}, {0, 20, 10, 0}, {-12, 8, 12, 8}};
  PArena arena;
  const Envelope env = envelope_of(std::array<u32, 2>{0, 1}, segs);
  ptreap::Ref prof = profile_of(arena, env, segs);

  std::vector<TransitionEvent> ev;
  const int init = walk_transitions(prof, segs[2], QY::of(-12), QY::of(12), segs, ev);
  EXPECT_EQ(init, +1);  // starts on floor left of the tent: above
  ASSERT_EQ(ev.size(), 2u);
  EXPECT_EQ(ev[0].new_state, -1);  // dips under the rising slope at y=-6 (z=8)
  EXPECT_EQ(cmp(ev[0].y, QY::of(-6)), 0);
  EXPECT_EQ(ev[0].kind, EventKind::Cross);
  EXPECT_EQ(ev[0].profile_edge, 0u);
  EXPECT_EQ(ev[1].new_state, +1);  // re-emerges on the falling slope at y=6
  EXPECT_EQ(cmp(ev[1].y, QY::of(6)), 0);
  EXPECT_EQ(ev[1].profile_edge, 1u);
}

TEST(Oracle, BreakEventAtProfileDiscontinuity) {
  // Profile piece ends mid-air (drop to floor): state flips via Break.
  std::vector<Seg2> segs{{-10, 30, 0, 30}, {-12, 10, 12, 10}};
  PArena arena;
  const Envelope env = envelope_of(std::array<u32, 1>{0}, segs);
  ptreap::Ref prof = profile_of(arena, env, segs);
  std::vector<TransitionEvent> ev;
  const int init = walk_transitions(prof, segs[1], QY::of(-12), QY::of(12), segs, ev);
  // Walk starts at -12 on the floor: above; enters plateau at -10: below;
  // exits at 0 back onto floor: above.
  EXPECT_EQ(init, +1);
  ASSERT_GE(ev.size(), 1u);
  bool saw_drop = false;
  for (const auto& e : ev) {
    if (e.kind == EventKind::Break && e.new_state == +1 && cmp(e.y, QY::of(0)) == 0) {
      saw_drop = true;
      EXPECT_EQ(e.profile_edge, kFloorEdge);
    }
  }
  EXPECT_TRUE(saw_drop);
}

TEST(Oracle, StrictlyAboveAtPointQueries) {
  std::vector<Seg2> segs{{-10, 0, 0, 20}, {0, 20, 10, 0}};
  PArena arena;
  const Envelope env = envelope_of(std::array<u32, 2>{0, 1}, segs);
  ptreap::Ref prof = profile_of(arena, env, segs);
  EXPECT_TRUE(strictly_above_at(prof, QY::of(0), 21, segs));
  EXPECT_FALSE(strictly_above_at(prof, QY::of(0), 20, segs));  // tie = not above
  EXPECT_FALSE(strictly_above_at(prof, QY::of(0), 19, segs));
  EXPECT_TRUE(strictly_above_at(prof, QY::of(-5), 11, segs));
  EXPECT_FALSE(strictly_above_at(prof, QY::of(-5), 10, segs));
}

}  // namespace
}  // namespace thsr
