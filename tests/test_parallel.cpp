/// Parallel primitive tests: scan / merge / sort vs serial references across
/// thread counts, work counters, and the task allocator.

#include <gtest/gtest.h>

#include <numeric>
#include <random>

#include "parallel/backend.hpp"
#include "parallel/merge_sort.hpp"
#include "parallel/scan.hpp"
#include "parallel/task_allocator.hpp"
#include "parallel/work_depth.hpp"
#include "test_util.hpp"

namespace thsr {
namespace {

class ParallelP : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override {
    prev_ = par::max_threads();
    par::set_threads(GetParam());
  }
  void TearDown() override { par::set_threads(prev_); }
  int prev_{1};
};

TEST_P(ParallelP, ParallelForCoversAllIndices) {
  const i64 n = 100'000;
  std::vector<std::atomic<int>> hits(n);
  par::parallel_for(n, [&](i64 i) { hits[static_cast<std::size_t>(i)].fetch_add(1); });
  for (i64 i = 0; i < n; ++i) ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(), 1);
}

TEST_P(ParallelP, ExclusiveScanMatchesSerial) {
  auto g = test::rng(5);
  std::uniform_int_distribution<u64> d(0, 1000);
  for (const std::size_t n : {0ul, 1ul, 7ul, 4096ul, 100'001ul}) {
    std::vector<u64> xs(n);
    for (auto& x : xs) x = d(g);
    const auto scan = par::exclusive_scan(xs);
    ASSERT_EQ(scan.size(), n + 1);
    u64 acc = 0;
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(scan[i], acc);
      acc += xs[i];
    }
    EXPECT_EQ(scan[n], acc);
  }
}

TEST_P(ParallelP, InclusiveScanGenericOp) {
  std::vector<u64> xs(50'000, 1);
  const auto inc =
      par::inclusive_scan<u64>(xs, u64{0}, [](u64 a, u64 b) { return a + b; });
  for (std::size_t i = 0; i < xs.size(); ++i) ASSERT_EQ(inc[i], i + 1);
}

TEST_P(ParallelP, MergeMatchesStdMerge) {
  auto g = test::rng(17);
  std::uniform_int_distribution<int> d(-1'000'000, 1'000'000);
  for (const std::size_t na : {0ul, 5ul, 1000ul, 30'000ul}) {
    for (const std::size_t nb : {0ul, 17ul, 20'000ul}) {
      std::vector<int> a(na), b(nb);
      for (auto& x : a) x = d(g);
      for (auto& x : b) x = d(g);
      std::sort(a.begin(), a.end());
      std::sort(b.begin(), b.end());
      std::vector<int> expect(na + nb), got(na + nb);
      std::merge(a.begin(), a.end(), b.begin(), b.end(), expect.begin());
      par::parallel_merge<int>(a, b, got, std::less<int>{}, /*grain=*/64);
      EXPECT_EQ(got, expect);
    }
  }
}

TEST_P(ParallelP, SortMatchesStdSort) {
  auto g = test::rng(23);
  std::uniform_int_distribution<long> d(-1'000'000'000L, 1'000'000'000L);
  for (const std::size_t n : {0ul, 1ul, 2ul, 999ul, 65'536ul, 200'000ul}) {
    std::vector<long> xs(n);
    for (auto& x : xs) x = d(g);
    auto expect = xs;
    std::sort(expect.begin(), expect.end());
    par::parallel_sort<long>(xs, std::less<long>{}, /*grain=*/256);
    EXPECT_EQ(xs, expect);
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, ParallelP, ::testing::Values(1, 2, 4),
                         [](const auto& info) { return "p" + std::to_string(info.param); });

TEST(WorkDepth, CountersAccumulateAcrossThreads) {
  work::reset();
  par::parallel_for(10'000, [&](i64) { work::count(Op::ExactCmp); }, 16);
  const Counters c = work::snapshot();
  EXPECT_EQ(c[Op::ExactCmp], 10'000u);
  work::reset();
  EXPECT_EQ(work::snapshot()[Op::ExactCmp], 0u);
}

TEST(WorkDepth, ScopeDeltas) {
  work::reset();
  work::count(Op::Crossing, 5);
  const work::Scope scope;
  work::count(Op::Crossing, 7);
  EXPECT_EQ(scope.delta()[Op::Crossing], 7u);
}

TEST(TaskAllocator, RunsAllSchedulesAndReportsSaneNumbers) {
  std::vector<u32> costs(500, 2000);
  for (std::size_t i = 0; i < costs.size(); i += 7) costs[i] = 20'000;  // skew
  for (const auto sched : {par::Schedule::StaticBlock, par::Schedule::Dynamic,
                           par::Schedule::Guided, par::Schedule::StaticCyclic}) {
    const auto rep = par::run_synthetic_tasks(costs, 2, sched);
    EXPECT_EQ(rep.tasks, costs.size());
    EXPECT_GT(rep.serial_s, 0.0);
    EXPECT_GT(rep.wall_s, 0.0);
    EXPECT_LE(rep.wall_s, rep.serial_s * 1.5 + 0.05) << par::schedule_name(sched);
  }
}

TEST(Backend, ForkJoinRunsBothBranches) {
  int a = 0, b = 0;
  par::run_root_task([&] {
    par::fork_join([&] { a = 1; }, [&] { b = 2; });
  });
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, 2);
}

TEST(Backend, ThreadControl) {
  const int prev = par::max_threads();
  par::set_threads(3);
  EXPECT_EQ(par::max_threads(), 3);
  par::set_threads(prev);
}

}  // namespace
}  // namespace thsr
