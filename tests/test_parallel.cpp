/// Parallel primitive tests: scan / merge / sort vs serial references across
/// every available backend and thread count, work counters, the native
/// work-stealing pool (nesting, strict-serial mode, oversubscription), and
/// the task allocator.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <random>
#include <thread>

#include "parallel/backend.hpp"
#include "parallel/merge_sort.hpp"
#include "parallel/pool.hpp"
#include "parallel/scan.hpp"
#include "parallel/task_allocator.hpp"
#include "parallel/work_depth.hpp"
#include "test_util.hpp"

namespace thsr {
namespace {

/// Fixture selecting a (backend, thread count) pair for the test body and
/// restoring the previous configuration afterwards.
class ParallelP : public ::testing::TestWithParam<std::tuple<par::Backend, int>> {
 protected:
  void SetUp() override {
    prev_threads_ = par::max_threads();
    prev_backend_ = par::backend();
    ASSERT_TRUE(par::set_backend(std::get<0>(GetParam())));
    par::set_threads(std::get<1>(GetParam()));
  }
  void TearDown() override {
    par::set_threads(prev_threads_);
    par::set_backend(prev_backend_);
  }
  int prev_threads_{1};
  par::Backend prev_backend_{par::Backend::Serial};
};

TEST_P(ParallelP, ParallelForCoversAllIndices) {
  const i64 n = 100'000;
  std::vector<std::atomic<int>> hits(n);
  par::parallel_for(n, [&](i64 i) { hits[static_cast<std::size_t>(i)].fetch_add(1); });
  for (i64 i = 0; i < n; ++i) ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(), 1);
}

TEST_P(ParallelP, ExclusiveScanMatchesSerial) {
  auto g = test::rng(5);
  std::uniform_int_distribution<u64> d(0, 1000);
  for (const std::size_t n : {0ul, 1ul, 7ul, 4096ul, 100'001ul}) {
    std::vector<u64> xs(n);
    for (auto& x : xs) x = d(g);
    const auto scan = par::exclusive_scan(xs);
    ASSERT_EQ(scan.size(), n + 1);
    u64 acc = 0;
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(scan[i], acc);
      acc += xs[i];
    }
    EXPECT_EQ(scan[n], acc);
  }
}

TEST_P(ParallelP, InclusiveScanGenericOp) {
  std::vector<u64> xs(50'000, 1);
  const auto inc =
      par::inclusive_scan<u64>(xs, u64{0}, [](u64 a, u64 b) { return a + b; });
  for (std::size_t i = 0; i < xs.size(); ++i) ASSERT_EQ(inc[i], i + 1);
}

TEST_P(ParallelP, MergeMatchesStdMerge) {
  auto g = test::rng(17);
  std::uniform_int_distribution<int> d(-1'000'000, 1'000'000);
  for (const std::size_t na : {0ul, 5ul, 1000ul, 30'000ul}) {
    for (const std::size_t nb : {0ul, 17ul, 20'000ul}) {
      std::vector<int> a(na), b(nb);
      for (auto& x : a) x = d(g);
      for (auto& x : b) x = d(g);
      std::sort(a.begin(), a.end());
      std::sort(b.begin(), b.end());
      std::vector<int> expect(na + nb), got(na + nb);
      std::merge(a.begin(), a.end(), b.begin(), b.end(), expect.begin());
      par::parallel_merge<int>(a, b, got, std::less<int>{}, /*grain=*/64);
      EXPECT_EQ(got, expect);
    }
  }
}

TEST_P(ParallelP, SortMatchesStdSort) {
  auto g = test::rng(23);
  std::uniform_int_distribution<long> d(-1'000'000'000L, 1'000'000'000L);
  for (const std::size_t n : {0ul, 1ul, 2ul, 999ul, 65'536ul, 200'000ul}) {
    std::vector<long> xs(n);
    for (auto& x : xs) x = d(g);
    auto expect = xs;
    std::sort(expect.begin(), expect.end());
    par::parallel_sort<long>(xs, std::less<long>{}, /*grain=*/256);
    EXPECT_EQ(xs, expect);
  }
}

TEST_P(ParallelP, NestedForkJoinInsideParallelFor) {
  // Every iteration forks a private two-branch task pair: the pool must
  // support fork_join from inside a parallel_for region (and OpenMP maps it
  // onto tasks of the surrounding team).
  const i64 n = 2'000;
  std::atomic<i64> left{0}, right{0};
  par::parallel_for(
      n,
      [&](i64) {
        par::fork_join([&] { left.fetch_add(1, std::memory_order_relaxed); },
                       [&] { right.fetch_add(1, std::memory_order_relaxed); });
      },
      /*grain=*/64);
  EXPECT_EQ(left.load(), n);
  EXPECT_EQ(right.load(), n);
}

TEST_P(ParallelP, DeepForkJoinRecursion) {
  // Binary task recursion to depth ~2^12 leaves: exercises deque growth and
  // the help-while-joining path.
  struct Rec {
    static i64 count(i64 lo, i64 hi) {
      if (hi - lo <= 1) return 1;
      const i64 mid = lo + (hi - lo) / 2;
      i64 a = 0, b = 0;
      par::fork_join([&] { a = count(lo, mid); }, [&] { b = count(mid, hi); });
      return a + b;
    }
  };
  i64 total = 0;
  par::run_root_task([&] { total = Rec::count(0, 4096); });
  EXPECT_EQ(total, 4096);
}

TEST_P(ParallelP, FanItemsRunsEveryItemOnce) {
  for (const std::size_t n : {0ul, 1ul, 2ul, 7ul, 64ul}) {
    std::vector<std::atomic<int>> hits(n);
    par::fan_items(n, [&](std::size_t i) { hits[i].fetch_add(1, std::memory_order_relaxed); });
    for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(hits[i].load(), 1) << "n=" << n << " i=" << i;
  }
}

TEST_P(ParallelP, FanItemsDegradesInsideParallelRegions) {
  // Batch dispatch from inside an existing region must fall back to the
  // sequential loop instead of opening a nested root region.
  std::atomic<i64> total{0};
  par::run_root_task([&] {
    par::fan_items(16, [&](std::size_t) { total.fetch_add(1, std::memory_order_relaxed); });
  });
  EXPECT_EQ(total.load(), 16);
}

INSTANTIATE_TEST_SUITE_P(
    Backends, ParallelP,
    ::testing::Combine(::testing::ValuesIn(par::available_backends()), ::testing::Values(1, 2, 4)),
    [](const auto& info) {
      return std::string(par::backend_name(std::get<0>(info.param))) + "_p" +
             std::to_string(std::get<1>(info.param));
    });

TEST(WorkDepth, CountersAccumulateAcrossThreads) {
  work::reset();
  par::parallel_for(10'000, [&](i64) { work::count(Op::ExactCmp); }, 16);
  const Counters c = work::snapshot();
  EXPECT_EQ(c[Op::ExactCmp], 10'000u);
  work::reset();
  EXPECT_EQ(work::snapshot()[Op::ExactCmp], 0u);
}

TEST(WorkDepth, CountersSeePoolWorkerThreads) {
  // Pool workers register their thread-local buckets lazily on first
  // count(); snapshot() must see work done on them.
  const par::Backend prev = par::backend();
  const int prev_p = par::max_threads();
  ASSERT_TRUE(par::set_backend(par::Backend::Pool));
  par::set_threads(4);
  work::reset();
  par::parallel_for(50'000, [&](i64) { work::count(Op::OracleStep); }, 16);
  EXPECT_EQ(work::snapshot()[Op::OracleStep], 50'000u);
  par::set_threads(prev_p);
  par::set_backend(prev);
}

TEST(WorkDepth, ScopeDeltas) {
  work::reset();
  work::count(Op::Crossing, 5);
  const work::Scope scope;
  work::count(Op::Crossing, 7);
  EXPECT_EQ(scope.delta()[Op::Crossing], 7u);
}

TEST(TaskAllocator, RunsAllSchedulesAndReportsSaneNumbers) {
  std::vector<u32> costs(500, 2000);
  for (std::size_t i = 0; i < costs.size(); i += 7) costs[i] = 20'000;  // skew
  for (const auto sched : {par::Schedule::StaticBlock, par::Schedule::Dynamic,
                           par::Schedule::Guided, par::Schedule::StaticCyclic}) {
    const auto rep = par::run_synthetic_tasks(costs, 2, sched);
    EXPECT_EQ(rep.tasks, costs.size());
    EXPECT_GT(rep.serial_s, 0.0);
    EXPECT_GT(rep.wall_s, 0.0);
    // Deterministic completion condition, not a wall-clock ratio: under
    // TSan or on an oversubscribed host the parallel pass can legitimately
    // run slower than serial, but every task must still execute exactly
    // once regardless of schedule or backend.
    EXPECT_EQ(rep.executed, rep.tasks) << par::schedule_name(sched);
    EXPECT_EQ(rep.overhead_s, rep.wall_s - rep.ideal_s);
  }
}

TEST(Backend, ForkJoinRunsBothBranches) {
  int a = 0, b = 0;
  par::run_root_task([&] {
    par::fork_join([&] { a = 1; }, [&] { b = 2; });
  });
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, 2);
}

TEST(Backend, ThreadControl) {
  const int prev = par::max_threads();
  par::set_threads(3);
  EXPECT_EQ(par::max_threads(), 3);
  par::set_threads(prev);
}

TEST(Backend, NamesParseAndAvailability) {
  using par::Backend;
  EXPECT_STREQ(par::backend_name(Backend::Serial), "serial");
  EXPECT_STREQ(par::backend_name(Backend::OpenMP), "openmp");
  EXPECT_STREQ(par::backend_name(Backend::Pool), "pool");
  EXPECT_EQ(par::parse_backend("serial"), Backend::Serial);
  EXPECT_EQ(par::parse_backend("openmp"), Backend::OpenMP);
  EXPECT_EQ(par::parse_backend("pool"), Backend::Pool);
  EXPECT_EQ(par::parse_backend("POOL"), std::nullopt);
  EXPECT_EQ(par::parse_backend(""), std::nullopt);
  EXPECT_TRUE(par::backend_available(Backend::Serial));
  EXPECT_TRUE(par::backend_available(Backend::Pool));
#ifndef THSR_HAVE_OPENMP
  EXPECT_FALSE(par::backend_available(Backend::OpenMP));
  EXPECT_FALSE(par::set_backend(Backend::OpenMP));  // refused, nothing changes
#endif
  const Backend prev = par::backend();
  for (const par::Backend b : par::available_backends()) {
    ASSERT_TRUE(par::set_backend(b));
    EXPECT_EQ(par::backend(), b);
  }
  par::set_backend(prev);
}

TEST(Backend, SetThreadsOneIsStrictlySerial) {
  // The contract `set_threads(1) == serial execution on the calling thread`
  // must hold on every backend: no region is opened, no worker touched.
  const par::Backend prev = par::backend();
  const int prev_p = par::max_threads();
  const auto self = std::this_thread::get_id();
  for (const par::Backend b : par::available_backends()) {
    ASSERT_TRUE(par::set_backend(b));
    par::set_threads(1);
    int on_other_thread = 0;
    par::parallel_for(10'000, [&](i64) {
      if (std::this_thread::get_id() != self || par::in_parallel()) ++on_other_thread;
    });
    par::run_root_task([&] {
      par::fork_join([&] { if (std::this_thread::get_id() != self) ++on_other_thread; },
                     [&] { if (std::this_thread::get_id() != self) ++on_other_thread; });
    });
    EXPECT_EQ(on_other_thread, 0) << par::backend_name(b);
  }
  par::set_threads(prev_p);
  par::set_backend(prev);
}

TEST(Pool, OversubscriptionBeyondHardwareConcurrency) {
  const par::Backend prev = par::backend();
  const int prev_p = par::max_threads();
  ASSERT_TRUE(par::set_backend(par::Backend::Pool));
  const int hw = static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
  par::set_threads(4 * hw);
  auto g = test::rng(41);
  std::uniform_int_distribution<int> d(-1'000'000, 1'000'000);
  std::vector<int> xs(150'000);
  for (auto& x : xs) x = d(g);
  auto expect = xs;
  std::sort(expect.begin(), expect.end());
  par::parallel_sort<int>(xs, std::less<int>{}, /*grain=*/512);
  EXPECT_EQ(xs, expect);
  std::atomic<i64> sum{0};
  par::parallel_for(100'000, [&](i64 i) { sum.fetch_add(i, std::memory_order_relaxed); }, 64);
  EXPECT_EQ(sum.load(), i64{100'000} * 99'999 / 2);
  par::set_threads(prev_p);
  par::set_backend(prev);
}

TEST(Pool, WorkerIdentityInsideRegions) {
  const par::Backend prev = par::backend();
  const int prev_p = par::max_threads();
  ASSERT_TRUE(par::set_backend(par::Backend::Pool));
  par::set_threads(4);
  EXPECT_FALSE(par::in_parallel());
  std::atomic<int> bad{0};
  par::run_root_task([&] {
    if (!par::in_parallel()) bad.fetch_add(1);
    const int w = par::worker_index();
    if (w < 0 || w >= par::max_threads()) bad.fetch_add(1);
  });
  EXPECT_FALSE(par::in_parallel());
  EXPECT_EQ(bad.load(), 0);
  par::set_threads(prev_p);
  par::set_backend(prev);
}

TEST(Pool, RepeatedResizeIsSafe) {
  const par::Backend prev = par::backend();
  const int prev_p = par::max_threads();
  ASSERT_TRUE(par::set_backend(par::Backend::Pool));
  for (const int p : {2, 4, 1, 3, 2}) {
    par::set_threads(p);
    std::atomic<i64> n{0};
    par::parallel_for(10'000, [&](i64) { n.fetch_add(1, std::memory_order_relaxed); }, 32);
    EXPECT_EQ(n.load(), 10'000);
  }
  par::set_threads(prev_p);
  par::set_backend(prev);
}

}  // namespace
}  // namespace thsr
