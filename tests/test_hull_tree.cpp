/// Static ACG (hull tree) tests: first/last crossing against brute force,
/// and equivalence of the two all-crossings strategies (paper Lemma 3.2).

#include <gtest/gtest.h>

#include "cg/all_crossings.hpp"
#include "envelope/build.hpp"
#include "test_util.hpp"

namespace thsr {
namespace {

std::vector<QY> brute_crossings(const Envelope& env, std::span<const Seg2> segs, const Seg2& s,
                                const QY& from, const QY& to) {
  std::vector<QY> out;
  for (const EnvPiece& p : env.pieces()) {
    const QY lo = qmax(from, p.y0), hi = qmin(to, p.y1);
    if (!(lo < hi)) continue;
    if (auto cr = crossing_in(s, segs[p.edge], lo, hi)) out.push_back(*cr);
  }
  std::sort(out.begin(), out.end());
  return out;
}

class HullTreeP : public ::testing::TestWithParam<std::tuple<u64, std::size_t>> {};

TEST_P(HullTreeP, FirstAndLastCrossingMatchBrute) {
  const auto [seed, n] = GetParam();
  const auto segs = test::random_segments(seed, n, 700);
  const auto ids = test::iota_ids(n);
  const Envelope env = envelope_of(ids, segs);
  const HullTree tree(env, segs);

  const auto queries = test::random_segments(seed * 13 + 5, 150, 700);
  for (const Seg2& s : queries) {
    const QY a = QY::of(s.u0), b = QY::of(s.u1);
    const auto brute = brute_crossings(env, segs, s, a, b);
    const auto first = tree.first_crossing(s, a, b);
    const auto last = tree.last_crossing(s, a, b);
    ASSERT_EQ(first.has_value(), !brute.empty());
    ASSERT_EQ(last.has_value(), !brute.empty());
    if (!brute.empty()) {
      EXPECT_EQ(cmp(first->y, brute.front()), 0);
      EXPECT_EQ(cmp(last->y, brute.back()), 0);
    }
  }
}

TEST_P(HullTreeP, AllCrossingsWalkEqualsSplit) {
  const auto [seed, n] = GetParam();
  const auto segs = test::random_segments(seed + 100, n, 700);
  const auto ids = test::iota_ids(n);
  const Envelope env = envelope_of(ids, segs);
  const HullTree tree(env, segs);

  const auto queries = test::random_segments(seed * 17 + 3, 60, 700);
  for (const Seg2& s : queries) {
    const QY a = QY::of(s.u0), b = QY::of(s.u1);
    const auto walk = all_crossings_walk(tree, s, a, b);
    const auto split = all_crossings_split(tree, env, s, a, b, /*parallel=*/false);
    const auto split_par = all_crossings_split(tree, env, s, a, b, /*parallel=*/true);
    const auto brute = brute_crossings(env, segs, s, a, b);
    ASSERT_EQ(walk.size(), brute.size());
    ASSERT_EQ(split.size(), brute.size());
    ASSERT_EQ(split_par.size(), brute.size());
    for (std::size_t i = 0; i < brute.size(); ++i) {
      EXPECT_EQ(cmp(walk[i].y, brute[i]), 0);
      EXPECT_EQ(cmp(split[i].y, brute[i]), 0);
      EXPECT_EQ(cmp(split_par[i].y, brute[i]), 0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, HullTreeP,
                         ::testing::Combine(::testing::Values(1u, 2u, 3u),
                                            ::testing::Values(8u, 64u, 400u)),
                         [](const auto& info) {
                           return "s" + std::to_string(std::get<0>(info.param)) + "_n" +
                                  std::to_string(std::get<1>(info.param));
                         });

TEST(HullTree, EmptyEnvelope) {
  const Envelope env;
  std::vector<Seg2> segs;
  const HullTree tree(env, segs);
  const Seg2 s{0, 0, 10, 10};
  EXPECT_FALSE(tree.first_crossing(s, QY::of(0), QY::of(10)).has_value());
}

TEST(HullTree, QueryCostIsLogarithmicOnSeparableInputs) {
  // A convex-ish envelope: chain pruning should keep visits near O(log^2 m).
  std::vector<Seg2> segs;
  const int m = 2048;
  for (int i = 0; i < m; ++i) {
    const i64 y0 = 4 * i, y1 = 4 * i + 4;
    const i64 z0 = -(y0 - 2 * m) * (y0 - 2 * m) / 256, z1 = -(y1 - 2 * m) * (y1 - 2 * m) / 256;
    segs.push_back(Seg2{y0, z0 + 4000, y1, z1 + 4000});
  }
  const Envelope env = envelope_of(test::iota_ids(segs.size()), segs);
  const HullTree tree(env, segs);
  tree.reset_stats();
  const Seg2 q{0, 3000, 4 * m, 5000};
  (void)tree.first_crossing(q, QY::of(0), QY::of(4 * m));
  EXPECT_LT(tree.nodes_visited(), 30 * 12u * 12u);  // generous polylog ceiling
}

}  // namespace
}  // namespace thsr
