/// Differential fuzz harness: randomized terrain / viewpoint / algorithm /
/// oracle / backend tuples, cross-checked pairwise across independent solve
/// paths — engine vs one-shot shim, sharded vs monolithic, streamed vs
/// monolithic, bounded vs exact raster. Every iteration derives its own
/// seed and logs it; on a mismatch the failure message carries exact
/// reproduction instructions.
///
/// Tiers: the default run is the quick tier (a few iterations per pair,
/// ctest-friendly). Set THSR_FUZZ_ITERS=<n> for the long tier — the nightly
/// CI job runs hundreds of iterations and uploads failing seeds as
/// artifacts. Set THSR_FUZZ_SEED=<s> to reproduce a logged failure: the
/// seed fully determines the tuple (terrain family, grid, heights,
/// viewpoint, algorithm, oracle, backend, resolution).

#include <gtest/gtest.h>

#include <cstdlib>
#include <random>
#include <sstream>
#include <string>

#include "core/engine.hpp"
#include "core/hsr.hpp"
#include "raster/oracle.hpp"
#include "raster/raster.hpp"
#include "service/engine_cache.hpp"
#include "service/viewpoint.hpp"
#include "shard/sharded_engine.hpp"
#include "stream/dem_lattice.hpp"
#include "stream/sinks.hpp"
#include "stream/stream.hpp"
#include "terrain/generators.hpp"
#include "test_util.hpp"

namespace thsr {
namespace {

u64 env_u64(const char* name, u64 fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::strtoull(v, nullptr, 10);
}

/// Quick tier: 4 iterations per pair. THSR_FUZZ_ITERS overrides (nightly).
u64 fuzz_iters() { return env_u64("THSR_FUZZ_ITERS", 4); }
u64 fuzz_seed() { return env_u64("THSR_FUZZ_SEED", 0x5eed2026); }

/// Per-iteration seed: splitmix64 step of (base, iter) — logged on failure.
u64 iter_seed(u64 base, u64 iter) {
  u64 z = base + 0x9e3779b97f4a7c15ull * (iter + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::string repro(const char* test, u64 seed) {
  std::ostringstream os;
  os << "reproduce with: THSR_FUZZ_SEED=" << seed << " THSR_FUZZ_ITERS=1 "
     << "./tests/test_differential --gtest_filter=Differential." << test;
  return os.str();
}

/// The randomized tuple drawn by every check (fields used as applicable).
struct Tuple {
  Family family;
  u32 grid;
  u64 terrain_seed;
  bool jitter;
  Algorithm algorithm;
  Phase2Oracle oracle;
  par::Backend backend;
  int threads;
  u32 width, height, supersample;
  service::Viewpoint viewpoint;
};

Tuple draw(u64 seed) {
  std::mt19937_64 g{seed};
  const auto backends = par::available_backends();
  Tuple t;
  t.family = kAllFamilies[g() % 6];
  t.grid = 6 + static_cast<u32>(g() % 12);
  t.terrain_seed = g();
  t.jitter = (g() & 1) != 0;
  t.algorithm = static_cast<Algorithm>(g() % 3);
  t.oracle = (g() & 1) != 0 ? Phase2Oracle::Persistent : Phase2Oracle::MaterializedScan;
  t.backend = backends[g() % backends.size()];
  t.threads = 1 + static_cast<int>(g() % 4);
  t.width = 8 + static_cast<u32>(g() % 56);
  t.height = 8 + static_cast<u32>(g() % 40);
  t.supersample = 1 + static_cast<u32>(g() % 2);
  t.viewpoint = service::Viewpoint{.dir_x = 1 + static_cast<i64>(g() % 4),
                                   .dir_y = static_cast<i64>(g() % 5) - 2,
                                   .elev_num = static_cast<i64>(g() % 3) - 1,
                                   .elev_den = 1 + static_cast<i64>(g() % 3)};
  return t;
}

std::string tuple_str(const Tuple& t) {
  std::ostringstream os;
  os << family_name(t.family) << " g" << t.grid << " seed" << t.terrain_seed
     << (t.jitter ? " jitter" : "") << " " << algorithm_name(t.algorithm) << " "
     << (t.oracle == Phase2Oracle::Persistent ? "persistent" : "matscan") << " "
     << par::backend_name(t.backend) << "/p" << t.threads << " " << t.width << "x" << t.height
     << "s" << t.supersample;
  return os.str();
}

HsrOptions solve_opt(const Tuple& t, bool with_executor) {
  HsrOptions opt;
  opt.algorithm = t.algorithm;
  opt.phase2_oracle = t.oracle;
  if (with_executor) {
    opt.backend = t.backend;
    opt.threads = t.threads;
  }
  return opt;
}

void expect_images_identical(const raster::ImageRaster& a, const raster::ImageRaster& b,
                             const std::string& why) {
  ASSERT_EQ(a.width, b.width) << why;
  ASSERT_EQ(a.height, b.height) << why;
  EXPECT_EQ(a.ids, b.ids) << why;
  EXPECT_EQ(a.depth, b.depth) << why;
  EXPECT_EQ(a.coverage, b.coverage) << why;
  EXPECT_EQ(a.hit_samples, b.hit_samples) << why;
}

// ---------------------------------------------------------------- pairs

// Session engine (prepared once, warm re-solve, viewpoint transform via the
// service cache) vs the one-shot shim: identical maps and work counters.
TEST(Differential, EngineVsShim) {
  for (u64 i = 0; i < fuzz_iters(); ++i) {
    const u64 seed = iter_seed(fuzz_seed(), i);
    const Tuple tu = draw(seed);
    SCOPED_TRACE(repro("EngineVsShim", seed) + "\n  tuple: " + tuple_str(tu));
    const Terrain t = test::make_family_terrain(tu.family, tu.grid, tu.terrain_seed,
                                                /*shear=*/true, tu.jitter);
    const HsrResult shim = hidden_surface_removal(t, solve_opt(tu, /*with_executor=*/true));
    HsrEngine engine;
    engine.prepare(t);
    (void)engine.solve(solve_opt(tu, true));  // cold solve warms the arena
    const HsrResult warm = engine.solve(solve_opt(tu, true));
    EXPECT_FALSE(shim.map.first_difference(warm.map).has_value());
    EXPECT_TRUE(shim.stats.work == warm.stats.work);
    EXPECT_EQ(shim.stats.k_pieces, warm.stats.k_pieces);
    EXPECT_EQ(shim.stats.treap_nodes, warm.stats.treap_nodes);
    // Viewpoint leg: the cache-prepared view solves bit-identically to a
    // direct solve of its own view terrain.
    service::EngineCache cache;
    cache.add_terrain(1, std::make_shared<Terrain>(t));
    auto lease = cache.acquire(1, tu.viewpoint);
    const HsrResult served = lease->solve_scoped(solve_opt(tu, /*with_executor=*/false));
    const HsrResult direct =
        hidden_surface_removal(lease->view_terrain(), solve_opt(tu, false));
    EXPECT_FALSE(served.map.first_difference(direct.map).has_value());
    EXPECT_TRUE(served.stats.work == direct.stats.work);
  }
}

// Sharded decomposition vs the monolithic solve, modulo coalescing at the
// cut lines (the stitch contract).
TEST(Differential, ShardedVsMono) {
  for (u64 i = 0; i < fuzz_iters(); ++i) {
    const u64 seed = iter_seed(fuzz_seed(), i);
    const Tuple tu = draw(seed);
    SCOPED_TRACE(repro("ShardedVsMono", seed) + "\n  tuple: " + tuple_str(tu));
    const Terrain t = test::make_family_terrain(tu.family, tu.grid, tu.terrain_seed,
                                                /*shear=*/true, tu.jitter);
    shard::ShardedEngine engine;
    engine.prepare(t, 2 + static_cast<u32>(seed % 5));
    const HsrResult sharded = engine.solve(solve_opt(tu, /*with_executor=*/true));
    const HsrResult mono = hidden_surface_removal(t, solve_opt(tu, true));
    const VisibilityMap canon = shard::coalesce_at_cuts(mono.map, engine.plan().cuts);
    const auto diff = canon.first_difference(sharded.map);
    EXPECT_FALSE(diff.has_value()) << "stitched map differs at edge " << *diff;
  }
}

// Out-of-core streaming pipeline vs the monolithic solve+rasterize of the
// same DEM under the same window: bitwise image identity for random
// resident budgets.
TEST(Differential, StreamedVsMono) {
  for (u64 i = 0; i < fuzz_iters(); ++i) {
    const u64 seed = iter_seed(fuzz_seed(), i);
    const Tuple tu = draw(seed);
    SCOPED_TRACE(repro("StreamedVsMono", seed) + "\n  tuple: " + tuple_str(tu));
    const auto fam = test::kAllGridFamilies[seed % 4];
    const AscGrid g = test::make_asc_grid(10 + static_cast<u32>(seed % 12),
                                          9 + static_cast<u32>((seed >> 8) % 10), fam, seed);
    stream::GridRowSource src(g);
    stream::StreamOptions sopt;
    sopt.width = tu.width;
    sopt.height = tu.height;
    sopt.supersample = tu.supersample;
    sopt.resident_slabs = 1 + static_cast<u32>((seed >> 16) % 3);
    sopt.solve = solve_opt(tu, /*with_executor=*/false);
    stream::MemoryBandSink sink(sopt.width, sopt.height, sopt.supersample);
    const stream::StreamStats st = stream::stream_solve(src, sopt, sink);

    const Terrain mono = stream::terrain_from_rows(g.ncols, g.nrows, g.values, g.nodata);
    const HsrResult r = hidden_surface_removal(mono, solve_opt(tu, false));
    raster::RasterOptions ropt;
    ropt.width = sopt.width;
    ropt.height = sopt.height;
    ropt.supersample = sopt.supersample;
    ropt.window = st.window;
    expect_images_identical(sink.image(), raster::rasterize(mono, r.map, ropt),
                            "streamed image != monolithic image");
  }
}

// Bounded solve vs exact solve vs brute-force oracle: bitwise raster
// identity at the budget's matching resolution, for random tuples.
TEST(Differential, BoundedVsExact) {
  for (u64 i = 0; i < fuzz_iters(); ++i) {
    const u64 seed = iter_seed(fuzz_seed(), i);
    const Tuple tu = draw(seed);
    SCOPED_TRACE(repro("BoundedVsExact", seed) + "\n  tuple: " + tuple_str(tu));
    const Terrain t = test::make_family_terrain(tu.family, tu.grid, tu.terrain_seed,
                                                /*shear=*/true, tu.jitter);
    const raster::RasterOptions ropt{
        .width = tu.width, .height = tu.height, .supersample = tu.supersample};
    HsrOptions bopt = solve_opt(tu, /*with_executor=*/true);
    bopt.pixel_budget = raster::pixel_budget(t, ropt);
    const HsrResult bounded = hidden_surface_removal(t, bopt);
    const HsrResult exact = hidden_surface_removal(t, solve_opt(tu, true));
    const raster::ImageRaster img_b = raster::rasterize(t, bounded.map, ropt);
    const raster::ImageRaster img_e = raster::rasterize(t, exact.map, ropt);
    expect_images_identical(img_b, img_e, "bounded raster != exact raster");
    EXPECT_EQ(img_b.crossings, img_e.crossings);
    if (tu.grid <= 10) {  // brute-force oracle on the small grids only
      expect_images_identical(img_b, raster::raycast_reference(t, ropt),
                              "bounded raster != oracle raster");
    }
  }
}

}  // namespace
}  // namespace thsr
