/// Persistent treap tests: randomized op sequences against a flat model,
/// with *all* historical versions re-verified after every update (the
/// persistence contract), plus shape determinism and structural invariants.

#include <gtest/gtest.h>

#include <random>

#include "persist/ptreap.hpp"
#include "test_util.hpp"

namespace thsr {
namespace {

// Wide segments so any piece within [-1000, 1000] is valid for any edge id.
std::vector<Seg2> wide_segments(u64 seed, std::size_t n) {
  auto g = test::rng(seed);
  std::uniform_int_distribution<i64> v(-500, 500);
  std::vector<Seg2> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(Seg2{-1000, v(g), 1000, v(g)});
  return out;
}

using Model = std::vector<PieceData>;

Model model_floor() {
  return {PieceData{QY::of(-kMaxCoord), QY::of(kMaxCoord), kFloorEdge}};
}

Model model_replace(const Model& m, const QY& lo, const QY& hi, std::span<const PieceData> run) {
  Model out;
  for (const PieceData& p : m) {
    if (cmp(p.y1, lo) <= 0) {
      out.push_back(p);
    } else if (cmp(p.y0, lo) < 0) {
      out.push_back({p.y0, lo, p.edge});
    }
  }
  out.insert(out.end(), run.begin(), run.end());
  for (const PieceData& p : m) {
    if (cmp(p.y0, hi) >= 0) {
      out.push_back(p);
    } else if (cmp(p.y1, hi) > 0) {
      out.push_back({hi, p.y1, p.edge});
    }
  }
  return out;
}

void expect_equal(ptreap::Ref t, const Model& m, std::span<const Seg2> segs) {
  std::vector<PieceData> got;
  ptreap::collect(t, got);
  ASSERT_EQ(got.size(), m.size());
  for (std::size_t i = 0; i < m.size(); ++i) {
    EXPECT_EQ(cmp(got[i].y0, m[i].y0), 0) << "piece " << i;
    EXPECT_EQ(cmp(got[i].y1, m[i].y1), 0) << "piece " << i;
    EXPECT_EQ(got[i].edge, m[i].edge) << "piece " << i;
  }
  ptreap::validate(t, segs);
}

TEST(PTreap, FloorAndBasicSplice) {
  PArena arena;
  const auto segs = wide_segments(1, 4);
  ptreap::Ref t = ptreap::make_floor(arena);
  EXPECT_EQ(ptreap::count(t), 1u);
  const PieceData run[] = {PieceData{QY::of(0), QY::of(10), 2}};
  ptreap::Ref t2 = ptreap::replace_range(arena, t, QY::of(0), QY::of(10), run, segs);
  EXPECT_EQ(ptreap::count(t2), 3u);  // floor-left, piece, floor-right
  EXPECT_EQ(ptreap::count(t), 1u);   // old version untouched
  const PieceData* p = ptreap::piece_at(t2, QY::of(5), Side::After);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->edge, 2u);
  EXPECT_EQ(ptreap::piece_at(t2, QY::of(-5), Side::After)->edge, kFloorEdge);
  EXPECT_EQ(ptreap::piece_at(t, QY::of(5), Side::After)->edge, kFloorEdge);
}

TEST(PTreap, PieceAtSides) {
  PArena arena;
  const auto segs = wide_segments(2, 4);
  ptreap::Ref t = ptreap::make_floor(arena);
  const PieceData run[] = {PieceData{QY::of(0), QY::of(5), 1},
                           PieceData{QY::of(5), QY::of(10), 2}};
  t = ptreap::replace_range(arena, t, QY::of(0), QY::of(10), run, segs);
  EXPECT_EQ(ptreap::piece_at(t, QY::of(5), Side::Before)->edge, 1u);
  EXPECT_EQ(ptreap::piece_at(t, QY::of(5), Side::After)->edge, 2u);
  EXPECT_EQ(ptreap::piece_at(t, QY::of(0), Side::Before)->edge, kFloorEdge);
  EXPECT_EQ(ptreap::piece_at(t, QY::of(0), Side::After)->edge, 1u);
  EXPECT_EQ(ptreap::piece_at(t, QY(7, 2), Side::After)->edge, 1u);  // 3.5
}

class PTreapRandomP : public ::testing::TestWithParam<u64> {};

TEST_P(PTreapRandomP, RandomizedOpsPreserveAllVersions) {
  const u64 seed = GetParam();
  auto g = test::rng(seed);
  PArena arena;
  const auto segs = wide_segments(seed * 3 + 1, 16);
  std::uniform_int_distribution<i64> coord(-900, 900);
  std::uniform_int_distribution<int> den(1, 7), nrun(1, 4), edge(0, 15);

  std::vector<std::pair<ptreap::Ref, Model>> versions;
  versions.emplace_back(ptreap::make_floor(arena), model_floor());

  for (int step = 0; step < 60; ++step) {
    // Random exact-rational interval [lo, hi] inside the coverage.
    const int d1 = den(g), d2 = den(g);
    QY lo(coord(g) * d1 + den(g) - 1, d1);
    QY hi(coord(g) * d2 + den(g) - 1, d2);
    if (!(lo < hi)) std::swap(lo, hi);
    if (!(lo < hi)) continue;
    // Run: 1..4 contiguous pieces covering [lo, hi] split at interpolated
    // integer-ish points.
    const int k = nrun(g);
    std::vector<QY> cuts{lo};
    for (int i = 1; i < k; ++i) {
      // lo + i*(hi-lo)/k as an exact rational with small denominator:
      const QY c(lo.p * (k - i) * hi.q + hi.p * i * lo.q, i128{k} * lo.q * hi.q);
      if (cuts.back() < c && c < hi) cuts.push_back(c);
    }
    cuts.push_back(hi);
    std::vector<PieceData> run;
    for (std::size_t i = 0; i + 1 < cuts.size(); ++i) {
      run.push_back({cuts[i], cuts[i + 1], static_cast<u32>(edge(g))});
    }
    const auto& [base_ref, base_model] = versions[std::uniform_int_distribution<std::size_t>(
        0, versions.size() - 1)(g)];
    ptreap::Ref next = ptreap::replace_range(arena, base_ref, lo, hi, run, segs);
    versions.emplace_back(next, model_replace(base_model, lo, hi, run));

    // Persistence: every version, including old ones, still matches.
    for (const auto& [ref, model] : versions) expect_equal(ref, model, segs);
  }
  EXPECT_GT(arena.node_count(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PTreapRandomP, ::testing::Values(1, 2, 3, 4, 5, 6),
                         [](const auto& info) { return "seed" + std::to_string(info.param); });

TEST(PTreap, ShapeIsHistoryIndependent) {
  // Same final piece set reached by different splice orders => same shape
  // (content-hash priorities). Compare by preorder traversal of pieces.
  PArena arena;
  const auto segs = wide_segments(9, 8);
  const PieceData a{QY::of(0), QY::of(10), 1};
  const PieceData b{QY::of(20), QY::of(30), 2};
  ptreap::Ref t1 = ptreap::make_floor(arena);
  t1 = ptreap::replace_range(arena, t1, a.y0, a.y1, std::span(&a, 1), segs);
  t1 = ptreap::replace_range(arena, t1, b.y0, b.y1, std::span(&b, 1), segs);
  ptreap::Ref t2 = ptreap::make_floor(arena);
  t2 = ptreap::replace_range(arena, t2, b.y0, b.y1, std::span(&b, 1), segs);
  t2 = ptreap::replace_range(arena, t2, a.y0, a.y1, std::span(&a, 1), segs);

  const std::function<void(ptreap::Ref, std::vector<std::pair<u32, QY>>&)> preorder =
      [&](ptreap::Ref t, std::vector<std::pair<u32, QY>>& out) {
        if (!t) return;
        out.emplace_back(t->piece.edge, t->piece.y0);
        preorder(t.left(), out);
        preorder(t.right(), out);
      };
  std::vector<std::pair<u32, QY>> p1, p2;
  preorder(t1, p1);
  preorder(t2, p2);
  ASSERT_EQ(p1.size(), p2.size());
  for (std::size_t i = 0; i < p1.size(); ++i) {
    EXPECT_EQ(p1[i].first, p2[i].first);
    EXPECT_EQ(cmp(p1[i].second, p2[i].second), 0);
  }
}

TEST(PTreap, MaterializeDropsFloorAndCoalesces) {
  PArena arena;
  const auto segs = wide_segments(11, 4);
  ptreap::Ref t = ptreap::make_floor(arena);
  const PieceData r1[] = {PieceData{QY::of(0), QY::of(5), 1}};
  const PieceData r2[] = {PieceData{QY::of(5), QY::of(9), 1}};
  t = ptreap::replace_range(arena, t, QY::of(0), QY::of(5), r1, segs);
  t = ptreap::replace_range(arena, t, QY::of(5), QY::of(9), r2, segs);
  const Envelope e = ptreap::materialize(t);
  ASSERT_EQ(e.size(), 1u);  // coalesced
  EXPECT_EQ(e.piece(0).y0, QY::of(0));
  EXPECT_EQ(e.piece(0).y1, QY::of(9));
  EXPECT_EQ(e.piece(0).edge, 1u);
}

TEST(PTreap, ArenaResetRecyclesBlocksAcrossRebuilds) {
  PArena arena;
  const auto segs = wide_segments(17, 4);
  const auto build = [&] {
    ptreap::Ref t = ptreap::make_floor(arena);
    for (int i = 0; i < 512; ++i) {
      const PieceData p{QY::of(-900 + 3 * i), QY::of(-900 + 3 * i + 2), static_cast<u32>(i % 4)};
      t = ptreap::replace_range(arena, t, p.y0, p.y1, std::span(&p, 1), segs);
    }
    return t;
  };

  const ptreap::Ref cold = build();
  ptreap::validate(cold, segs);
  const u64 blocks = arena.allocated();
  const u64 nodes = arena.node_count();
  EXPECT_GT(blocks, 0u);

  // Reset, then rebuild the identical treap: the same node demand must be
  // served entirely from retained blocks — zero new heap blocks.
  arena.reset();
  const ptreap::Ref warm = build();
  ptreap::validate(warm, segs);
  EXPECT_EQ(arena.allocated(), blocks);
  EXPECT_EQ(arena.node_count(), nodes * 2);  // node_count accumulates across resets

  std::vector<PieceData> pieces;
  ptreap::collect(warm, pieces);
  EXPECT_EQ(pieces.size(), 512u * 2 + 1);
}

TEST(PTreap, NodeCountGrowsLogarithmicallyPerSplice) {
  PArena arena;
  const auto segs = wide_segments(13, 4);
  ptreap::Ref t = ptreap::make_floor(arena);
  // Many single-piece splices at distinct offsets.
  for (int i = 0; i < 256; ++i) {
    const PieceData p{QY::of(-900 + 7 * i), QY::of(-900 + 7 * i + 5), static_cast<u32>(i % 4)};
    t = ptreap::replace_range(arena, t, p.y0, p.y1, std::span(&p, 1), segs);
  }
  const double per_splice = static_cast<double>(arena.node_count()) / 256.0;
  // ~O(log n) path copies per splice; generous ceiling to avoid flakiness.
  EXPECT_LT(per_splice, 80.0);
  EXPECT_EQ(ptreap::count(t), 256u * 2 + 1);  // alternating piece/floor + tail
}

}  // namespace
}  // namespace thsr
