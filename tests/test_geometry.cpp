/// Exact predicate tests: cmp_value_at / cmp_value_near / crossings against
/// long-double brute force on random integer segments, plus hand-picked
/// degenerate configurations.

#include <gtest/gtest.h>

#include <random>

#include "geometry/predicates.hpp"
#include "test_util.hpp"

namespace thsr {
namespace {

long double value_at(const Seg2& s, long double u) {
  return static_cast<long double>(s.v0) +
         (u - static_cast<long double>(s.u0)) * static_cast<long double>(s.A()) /
             static_cast<long double>(s.B());
}

TEST(Predicates, ValueCompareMatchesBruteForce) {
  auto segs = test::random_segments(7, 200, 500);
  auto g = test::rng(8);
  std::uniform_int_distribution<std::size_t> pick(0, segs.size() - 1);
  std::uniform_int_distribution<i64> ys(-500, 500);
  int checked = 0;
  for (int i = 0; i < 20'000; ++i) {
    const Seg2 &a = segs[pick(g)], &b = segs[pick(g)];
    const i64 y = ys(g);
    const QY yq = QY::of(y);
    const long double va = value_at(a, y), vb = value_at(b, y);
    if (va == vb) continue;  // ties handled by exact tests below
    ++checked;
    EXPECT_EQ(cmp_value_at(a, b, yq), va < vb ? -1 : 1);
  }
  EXPECT_GT(checked, 10'000);
}

TEST(Predicates, CrossingMatchesBruteForce) {
  auto segs = test::random_segments(9, 120, 300);
  for (std::size_t i = 0; i < segs.size(); ++i) {
    for (std::size_t j = i + 1; j < segs.size(); ++j) {
      const auto y = line_crossing(segs[i], segs[j]);
      const long double denom = static_cast<long double>(segs[i].A()) * segs[j].B() -
                                static_cast<long double>(segs[j].A()) * segs[i].B();
      if (denom == 0) {
        EXPECT_FALSE(y.has_value());
        continue;
      }
      ASSERT_TRUE(y.has_value());
      // The crossing ordinate satisfies both line equations exactly.
      EXPECT_EQ(cmp_value_at(segs[i], segs[j], *y), 0);
    }
  }
}

TEST(Predicates, CrossingInRespectsOpenInterval) {
  const Seg2 a{0, 0, 10, 10};   // z = y
  const Seg2 b{0, 10, 10, 0};   // z = 10 - y, crossing at y = 5
  EXPECT_TRUE(crossing_in(a, b, QY::of(0), QY::of(10)).has_value());
  EXPECT_EQ(cmp(*crossing_in(a, b, QY::of(0), QY::of(10)), QY(5, 1)), 0);
  EXPECT_FALSE(crossing_in(a, b, QY::of(5), QY::of(10)).has_value());  // open at lo
  EXPECT_FALSE(crossing_in(a, b, QY::of(0), QY::of(5)).has_value());   // open at hi
  EXPECT_FALSE(crossing_in(a, b, QY::of(6), QY::of(10)).has_value());
}

TEST(Predicates, NearSideBreaksTiesBySlope) {
  const Seg2 a{0, 0, 10, 10};  // slope 1
  const Seg2 b{0, 0, 10, 20};  // slope 2, same value at y=0
  const QY y0 = QY::of(0);
  EXPECT_EQ(cmp_value_at(a, b, y0), 0);
  EXPECT_LT(cmp_value_near(a, b, y0, Side::After), 0);   // b above just after
  EXPECT_GT(cmp_value_near(a, b, y0, Side::Before), 0);  // a above just before
}

TEST(Predicates, CollinearSegmentsCompareEqual) {
  const Seg2 a{0, 5, 10, 15};
  const Seg2 b{2, 7, 8, 13};  // same supporting line
  EXPECT_TRUE(same_line(a, b));
  EXPECT_EQ(cmp_value_near(a, b, QY::of(4), Side::After), 0);
  EXPECT_FALSE(line_crossing(a, b).has_value());
}

TEST(Predicates, ParallelDistinctNeverCross) {
  const Seg2 a{0, 0, 10, 10};
  const Seg2 b{0, 3, 10, 13};
  EXPECT_FALSE(same_line(a, b));
  EXPECT_FALSE(line_crossing(a, b).has_value());
  EXPECT_LT(cmp_value_at(a, b, QY::of(5)), 0);
}

TEST(Predicates, ValueVsIntAtRationalAbscissa) {
  const Seg2 a{0, 0, 3, 9};  // z = 3y
  const QY y(1, 3);          // z = 1 exactly
  EXPECT_EQ(cmp_value_vs_int(a, y, 1), 0);
  EXPECT_GT(cmp_value_vs_int(a, y, 0), 0);
  EXPECT_LT(cmp_value_vs_int(a, y, 2), 0);
}

TEST(Predicates, CompareAtCrossingOfOtherPair) {
  // Regression shape for the "degree never grows" contract: compare two
  // segments at the crossing of two *other* segments.
  auto segs = test::random_segments(11, 60, kMaxCoord / 4);
  int compared = 0;
  for (std::size_t i = 0; i + 3 < segs.size(); i += 4) {
    const auto y = line_crossing(segs[i], segs[i + 1]);
    if (!y) continue;
    const int c = cmp_value_at(segs[i + 2], segs[i + 3], *y);
    const long double va = value_at(segs[i + 2], static_cast<long double>(y->approx()));
    const long double vb = value_at(segs[i + 3], static_cast<long double>(y->approx()));
    if (std::abs(static_cast<double>(va - vb)) > 1e-3) {
      EXPECT_EQ(c, va < vb ? -1 : 1);
      ++compared;
    }
  }
  EXPECT_GT(compared, 5);
}

TEST(Seg2, LineCoefficients) {
  const Seg2 s{2, 3, 6, 11};  // slope 2: z = 2y - 1 => 2y - 1z = 1... A=8,B=4,C=A*u0-B*v0=4
  EXPECT_EQ(s.A(), 8);
  EXPECT_EQ(s.B(), 4);
  EXPECT_EQ(s.C(), i128{8} * 2 - i128{4} * 3);
  EXPECT_DOUBLE_EQ(s.approx_at(4.0), 7.0);
}

}  // namespace
}  // namespace thsr
