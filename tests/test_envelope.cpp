/// Envelope tests (paper Lemma 3.1): exact pointwise-max semantics of merge
/// and divide-and-conquer builds, crossing events, parallel/serial equality,
/// Davenport–Schinzel size sanity.

#include <gtest/gtest.h>

#include "envelope/build.hpp"
#include "parallel/backend.hpp"
#include "test_util.hpp"

namespace thsr {
namespace {

TEST(Envelope, OfSegmentAndEval) {
  const Seg2 s{0, 1, 10, 11};
  const Envelope e = Envelope::of_segment(3, s);
  ASSERT_EQ(e.size(), 1u);
  EXPECT_EQ(e.edge_at(QY::of(5), Side::After), std::optional<u32>(3));
  EXPECT_EQ(e.edge_at(QY::of(0), Side::After), std::optional<u32>(3));
  EXPECT_EQ(e.edge_at(QY::of(0), Side::Before), std::nullopt);
  EXPECT_EQ(e.edge_at(QY::of(10), Side::After), std::nullopt);
  EXPECT_EQ(e.edge_at(QY::of(10), Side::Before), std::optional<u32>(3));
  EXPECT_EQ(e.edge_at(QY::of(12), Side::After), std::nullopt);
}

TEST(Envelope, MergeTwoCrossingSegments) {
  std::vector<Seg2> segs{{0, 0, 10, 10}, {0, 10, 10, 0}};
  std::vector<CrossEvent> events;
  const Envelope m = merge_envelopes(Envelope::of_segment(0, segs[0]),
                                     Envelope::of_segment(1, segs[1]), segs, &events);
  ASSERT_EQ(m.size(), 2u);
  EXPECT_EQ(m.piece(0).edge, 1u);  // descending one is higher before y=5
  EXPECT_EQ(m.piece(1).edge, 0u);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].y, QY::of(5));
  const auto ids = test::iota_ids(2);
  test::expect_envelope_exact(m, segs, ids, 0, 10);
}

TEST(Envelope, MergeDisjointSpansLeavesGap) {
  std::vector<Seg2> segs{{0, 1, 4, 1}, {8, 2, 12, 2}};
  const Envelope m = merge_envelopes(Envelope::of_segment(0, segs[0]),
                                     Envelope::of_segment(1, segs[1]), segs);
  ASSERT_EQ(m.size(), 2u);
  EXPECT_EQ(m.edge_at(QY::of(6), Side::After), std::nullopt);
  test::expect_envelope_exact(m, segs, test::iota_ids(2), 0, 12);
}

TEST(Envelope, TieGoesToFront) {
  // Identical geometry, different ids: the front (first) envelope wins.
  std::vector<Seg2> segs{{0, 5, 10, 5}, {0, 5, 10, 5}};
  const Envelope m = merge_envelopes(Envelope::of_segment(0, segs[0]),
                                     Envelope::of_segment(1, segs[1]), segs);
  ASSERT_EQ(m.size(), 1u);
  EXPECT_EQ(m.piece(0).edge, 0u);
  const Envelope m2 = merge_envelopes(Envelope::of_segment(1, segs[1]),
                                      Envelope::of_segment(0, segs[0]), segs);
  ASSERT_EQ(m2.size(), 1u);
  EXPECT_EQ(m2.piece(0).edge, 1u);
}

TEST(Envelope, SharedEndpointChains) {
  // A monotone chain of segments sharing endpoints (the common terrain case).
  std::vector<Seg2> segs{{0, 0, 4, 6}, {4, 6, 8, 2}, {8, 2, 12, 9}};
  const auto ids = test::iota_ids(3);
  const Envelope e = envelope_of(ids, segs);
  test::expect_envelope_exact(e, segs, ids, 0, 12);
  EXPECT_EQ(e.size(), 3u);
}

class EnvelopeRandomP : public ::testing::TestWithParam<std::tuple<u64, std::size_t>> {};

TEST_P(EnvelopeRandomP, BuildMatchesPointwiseMax) {
  const auto [seed, n] = GetParam();
  const auto segs = test::random_segments(seed, n, 200);
  const auto ids = test::iota_ids(n);
  const Envelope e = envelope_of(ids, segs);
  test::expect_envelope_exact(e, segs, ids, -200, 200);
  // Davenport–Schinzel sanity: far below the quadratic worst case.
  EXPECT_LE(e.size(), 8 * n);
}

INSTANTIATE_TEST_SUITE_P(Sweep, EnvelopeRandomP,
                         ::testing::Combine(::testing::Values(1u, 2u, 3u, 4u, 5u),
                                            ::testing::Values(3u, 10u, 50u, 150u)),
                         [](const auto& info) {
                           return "s" + std::to_string(std::get<0>(info.param)) + "_n" +
                                  std::to_string(std::get<1>(info.param));
                         });

TEST(Envelope, ParallelBuildEqualsSerial) {
  const auto segs = test::random_segments(77, 4000, 5000);
  const auto ids = test::iota_ids(segs.size());
  const Envelope serial = envelope_of(ids, segs, /*parallel=*/false);
  const int prev = par::max_threads();
  par::set_threads(2);
  const Envelope parallel = envelope_of(ids, segs, /*parallel=*/true);
  par::set_threads(prev);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial.piece(i).edge, parallel.piece(i).edge);
    EXPECT_EQ(serial.piece(i).y0, parallel.piece(i).y0);
    EXPECT_EQ(serial.piece(i).y1, parallel.piece(i).y1);
  }
}

TEST(Envelope, ParallelMergeEqualsSerialMerge) {
  const auto segs = test::random_segments(78, 3000, 4000);
  std::vector<u32> a_ids, b_ids;
  for (u32 i = 0; i < segs.size(); ++i) (i % 2 ? a_ids : b_ids).push_back(i);
  const Envelope a = envelope_of(a_ids, segs), b = envelope_of(b_ids, segs);
  const Envelope serial = merge_envelopes(a, b, segs);
  const Envelope strips = merge_envelopes_parallel(a, b, segs, 8);
  ASSERT_EQ(serial.size(), strips.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial.piece(i).edge, strips.piece(i).edge);
    EXPECT_EQ(serial.piece(i).y0, strips.piece(i).y0);
  }
}

TEST(Envelope, CutEnvelope) {
  const auto segs = test::random_segments(80, 50, 100);
  const auto ids = test::iota_ids(segs.size());
  const Envelope e = envelope_of(ids, segs);
  const Envelope c = cut_envelope(e, QY::of(-20), QY::of(20));
  for (const EnvPiece& p : c.pieces()) {
    EXPECT_GE(cmp(p.y0, QY::of(-20)), 0);
    EXPECT_LE(cmp(p.y1, QY::of(20)), 0);
  }
  c.validate(segs);
}

TEST(Envelope, MergeEventsAreSorted) {
  const auto segs = test::random_segments(81, 400, 600);
  std::vector<u32> a_ids, b_ids;
  for (u32 i = 0; i < segs.size(); ++i) (i % 2 ? a_ids : b_ids).push_back(i);
  const Envelope a = envelope_of(a_ids, segs), b = envelope_of(b_ids, segs);
  std::vector<CrossEvent> events;
  merge_envelopes(a, b, segs, &events);
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LT(cmp(events[i - 1].y, events[i].y), 0);
  }
  EXPECT_GT(events.size(), 0u);
}

TEST(Envelope, EmptyCases) {
  std::vector<Seg2> segs{{0, 0, 1, 1}};
  const Envelope empty;
  const Envelope one = Envelope::of_segment(0, segs[0]);
  EXPECT_EQ(merge_envelopes(empty, empty, segs).size(), 0u);
  EXPECT_EQ(merge_envelopes(one, empty, segs).size(), 1u);
  EXPECT_EQ(merge_envelopes(empty, one, segs).size(), 1u);
  EXPECT_EQ(envelope_of({}, segs).size(), 0u);
}

}  // namespace
}  // namespace thsr
