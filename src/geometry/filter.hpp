#pragma once
/// \file filter.hpp
/// Semi-static floating-point filters for the exact predicates of
/// geometry/predicates.hpp.
///
/// Classic arithmetic filtering: evaluate each predicate's deciding
/// determinant in double precision alongside a forward error bound; when the
/// computed magnitude clears the bound the sign is certain and the exact
/// `__int128` evaluation is skipped. Inconclusive signs fall back to the
/// exact code, which remains the single source of truth — every map and
/// counter the library produces is bit-identical with the filter on or off
/// (enforced by bench_ci and the THSR_NO_FILTER CI leg).
///
/// The error bounds are *semi-static*: the epsilon constants below are
/// static consequences of the DESIGN.md section 5 magnitude analysis
/// (|coordinate| <= 2^21, breakpoint numerators <= 2^67, denominators
/// <= 2^45), while the magnitude factor is computed per call from the
/// operands already in hand. Section 5's filter table derives each bound.
///
/// Determinism contract: filter decisions are pure functions of operand
/// values — no schedule, thread-count, or backend dependence — and the
/// library compiles with -ffp-contract=off so gcc and clang round every
/// intermediate identically. That makes the telemetry counters
/// (Op::FilterFast / Op::FilterExact) baseline-gateable like any work
/// counter.
///
/// Escape hatch: configure with -DTHSR_NO_FILTER=ON (compile-time) or set
/// the THSR_NO_FILTER environment variable to anything but "0" (runtime) to
/// force every predicate down the exact path.

#include <cmath>

#include "geometry/exactq.hpp"
#include "parallel/work_depth.hpp"

namespace thsr {

struct Seg2;  // geometry/predicates.hpp; SegF construction lives there too.

namespace filt {

/// Sentinel: the double evaluation could not certify a sign.
inline constexpr int kUncertain = 2;

/// 2^-53, the unit roundoff of double.
inline constexpr double kUlp = 0x1p-53;

/// Error-bound constants (DESIGN.md section 5, filter table). Each is a
/// deliberately generous power-of-two cover of the worst-case relative
/// error of the corresponding evaluation scheme:
///  * kEps2 = 8u  covers 2-product differences x - y whose operands carry
///    at most ~5u of accumulated relative error (cmp(QY,QY), the same_line
///    C-row, crossing numerators);
///  * kEps4 = 16u covers the nested value schemes (cmp_value_at,
///    cmp_value_vs_int, crossing-vs-bound) whose operands carry at most
///    ~9u.
inline constexpr double kEps2 = 0x1p-50;
inline constexpr double kEps4 = 0x1p-49;

#ifdef THSR_NO_FILTER
/// Compile-time kill switch: every predicate takes the exact path and no
/// filter telemetry is counted.
constexpr bool enabled() noexcept { return false; }
#else
/// One-time read of the THSR_NO_FILTER environment variable (any value but
/// "0" disables). Out of line so <cstdlib> stays out of this hot header.
bool runtime_enabled_init() noexcept;

/// True when the fast path may be attempted.
inline bool enabled() noexcept {
  static const bool on = runtime_enabled_init();
  return on;
}
#endif

/// Telemetry: one FilterFast per predicate decided without exact
/// arithmetic, one FilterExact per fallback. Only counted while enabled()
/// — a disabled build/run reports zeros, which the bench_ci baseline
/// check treats as a (non-failing) drop. work::count is fully inline
/// (work_depth.hpp), so each note is a thread-local add.
inline void note_fast() noexcept { work::count(Op::FilterFast); }
inline void note_exact() noexcept { work::count(Op::FilterExact); }

/// sign(d) when |d| certainly exceeds the rounding error `bound`;
/// kUncertain otherwise (including d == bound == 0, the exact-tie case).
inline int certain_sign(double d, double bound) noexcept {
  if (d > bound) return 1;
  if (d < -bound) return -1;
  return kUncertain;
}

/// Double view of an abscissa — a copy of QY's cached mirrors (pd/qd, paid
/// once at QY construction). q <= 2^45 converts exactly; p may round
/// (|p| <= 2^67), which the epsilon constants account for.
struct YF {
  double p{0}, q{1};
  YF() = default;
  explicit YF(const QY& y) noexcept : p(y.pd), q(y.qd) {}
};

/// Cached double view of a segment's line coefficients A*u - B*v = C.
/// A, B (<= 2^22) and C (<= 2^44) all convert exactly. Constructed from a
/// Seg2 in predicates.hpp (the Seg2 definition lives there).
struct SegF {
  double A{0}, B{1}, C{0};
};

/// sign(a - b) for rationals a = ap/aq, b = bp/bq (aq, bq > 0), or
/// kUncertain. Scheme: d = fl(fl(ap*bq) - fl(bp*aq)); each product carries
/// <= ~3u relative error (one rounded conversion, cached in QY, + one
/// rounded multiply), the subtraction one more, so kEps2 * (|x| + |y|)
/// covers it. No __int128 touches the fast path.
inline int try_cmp(const QY& a, const QY& b) noexcept {
  const double x = a.pd * b.qd;
  const double y = b.pd * a.qd;
  return certain_sign(x - y, kEps2 * (std::fabs(x) + std::fabs(y)));
}

/// try_cmp against a cached double view of b (merge loops hold the current
/// abscissa as a YF and stream piece endpoints past it).
inline int try_cmp(const QY& a, const YF& b) noexcept {
  const double x = a.pd * b.q;
  const double y = b.p * a.qd;
  return certain_sign(x - y, kEps2 * (std::fabs(x) + std::fabs(y)));
}

/// Approximate value numerator f = A*p - C*q of a segment at abscissa y
/// (the shared sub-expression of cmp_value_at / cmp_value_vs_int; the
/// exact twin is exact::value_numerator). `mag` bounds the scheme's
/// magnitude for the error bound: |fl(A*p)| + |fl(C*q)|.
struct NumF {
  double v, mag;
};
inline NumF value_numerator(const SegF& s, const YF& y) noexcept {
  const double t1 = s.A * y.p;
  const double t2 = s.C * y.q;
  return {t1 - t2, std::fabs(t1) + std::fabs(t2)};
}

/// sign(v_a(y) - v_b(y)) over the shared denominator, or kUncertain.
/// d = fl(fa*B_b - fb*B_a); fa, fb carry <= ~4u each relative to their
/// magnitudes, so kEps4 * (mag_a*B_b + mag_b*B_a) covers the total.
inline int try_cmp_value_at(const SegF& a, const SegF& b, const YF& y) noexcept {
  const NumF fa = value_numerator(a, y);
  const NumF fb = value_numerator(b, y);
  const double d = fa.v * b.B - fb.v * a.B;
  return certain_sign(d, kEps4 * (fa.mag * b.B + fb.mag * a.B));
}

/// sign(v_a(y) - w), or kUncertain.
inline int try_cmp_value_vs_int(const SegF& a, const YF& y, i64 w) noexcept {
  const NumF fa = value_numerator(a, y);
  const double t = (a.B * y.q) * static_cast<double>(w);
  return certain_sign(fa.v - t, kEps4 * (fa.mag + std::fabs(t)));
}

/// sign(slope_a - slope_b), always certain: A*B products are integers
/// <= 2^44 and their difference is an integer <= 2^45, so every operation
/// is exact in double (no fallback exists for this predicate).
inline int try_cmp_slope(const SegF& a, const SegF& b) noexcept {
  const double d = a.A * b.B - b.A * a.B;
  return (d > 0) - (d < 0);
}

/// Crossing numerator p = C_a*B_b - C_b*B_a of two supporting lines, with
/// its magnitude bound (products <= 2^66 round once each).
inline NumF crossing_numerator(const SegF& a, const SegF& b) noexcept {
  const double t1 = a.C * b.B;
  const double t2 = b.C * a.B;
  return {t1 - t2, std::fabs(t1) + std::fabs(t2)};
}

/// sign(num/det - b) for a crossing abscissa num/det (det != 0, sign of
/// det known exactly — see try_cmp_slope) against a rational bound b given
/// as its double view bf, or kUncertain. Multiplying through by det*b.q
/// flips the sign with det.
inline int try_cmp_crossing(const NumF& num, double det, const YF& bf) noexcept {
  const double x = num.v * bf.q;
  const double y = bf.p * det;
  const int s = certain_sign(x - y, kEps4 * (num.mag * bf.q + std::fabs(y)));
  if (s == kUncertain) return kUncertain;
  return det > 0 ? s : -s;
}

/// Filtered drop-in for thsr::cmp(QY, QY) with telemetry. The
/// representation-equality pre-check settles the extremely common case of
/// comparing two copies of the same breakpoint without any arithmetic.
inline int cmp(const QY& a, const QY& b) noexcept {
  if (enabled()) {
    if (a.p == b.p && a.q == b.q) {
      note_fast();
      return 0;
    }
    const int s = try_cmp(a, b);
    if (s != kUncertain) {
      note_fast();
      return s;
    }
    note_exact();
  }
  return thsr::cmp(a, b);
}

/// cmp against a cached YF view of b (bitwise pre-check still uses b).
inline int cmp(const QY& a, const QY& b, const YF& bf) noexcept {
  if (enabled()) {
    if (a.p == b.p && a.q == b.q) {
      note_fast();
      return 0;
    }
    const int s = try_cmp(a, bf);
    if (s != kUncertain) {
      note_fast();
      return s;
    }
    note_exact();
  }
  return thsr::cmp(a, b);
}

inline const QY& qmin(const QY& a, const QY& b) noexcept { return filt::cmp(b, a) < 0 ? b : a; }
inline const QY& qmax(const QY& a, const QY& b) noexcept { return filt::cmp(a, b) < 0 ? b : a; }

}  // namespace filt
}  // namespace thsr
