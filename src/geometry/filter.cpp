#include "geometry/filter.hpp"

#include <cstdlib>
#include <cstring>

namespace thsr::filt {

#ifndef THSR_NO_FILTER
bool runtime_enabled_init() noexcept {
  const char* v = std::getenv("THSR_NO_FILTER");
  if (!v || !*v) return true;
  return std::strcmp(v, "0") == 0;  // THSR_NO_FILTER=0 keeps the filter on
}
#endif

}  // namespace thsr::filt
