#include "geometry/predicates.hpp"

// All predicates are inline in the header; this translation unit exists to
// give the header a home in the library and to host out-of-line helpers if
// predicates grow non-trivial implementations later.

namespace thsr {
static_assert(sizeof(i128) == 16);
}  // namespace thsr
