#pragma once
/// \file exactq.hpp
/// Exact rational abscissae over __int128.
///
/// All input coordinates are integers with magnitude <= kMaxCoord (2^21).
/// Every breakpoint an algorithm in this library ever constructs is the
/// crossing of two *input* lines, so its y-coordinate is a rational p/q with
/// |p| <= 2^67 and 0 < q <= 2^45 (see DESIGN.md section 5). Cross-multiplied
/// comparisons of such rationals peak below 2^113 and therefore fit in
/// __int128 — no arbitrary precision library is needed and all predicates in
/// geometry/predicates.hpp are exact.

#include <cstdint>
#include <string>

#include "support/check.hpp"

namespace thsr {

using i32 = std::int32_t;
using i64 = std::int64_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i128 = __int128;

/// Contract on input coordinates (enforced by Terrain validation).
inline constexpr i64 kMaxCoord = i64{1} << 21;

/// Sign of a 128-bit integer: -1, 0, +1.
constexpr int sgn128(i128 v) noexcept { return (v > 0) - (v < 0); }

/// Checked 128-bit multiply (debug builds trap on overflow; release builds
/// rely on the magnitude analysis in DESIGN.md section 5).
inline i128 mul128(i128 a, i128 b) noexcept {
#ifndef NDEBUG
  i128 r;
  THSR_DCHECK(!__builtin_mul_overflow(a, b, &r));
  return r;
#else
  return a * b;
#endif
}

/// Exact rational y-coordinate p/q with q > 0.
///
/// QY is a value type ordered by the exact rational order. It is *not* a
/// general bignum rational: magnitudes are bounded by construction (input
/// integers or first-order line crossings) and no arithmetic that would
/// increase the degree is exposed.
struct QY {
  i128 p{0};
  i128 q{1};
  /// Round-to-nearest double mirrors of p and q, paid once at construction
  /// so the predicate filter (geometry/filter.hpp) never converts __int128
  /// on its fast path. q <= 2^45 converts exactly; p may round once, which
  /// the filter's error bounds absorb. Equal (p, q) implies equal (pd, qd),
  /// so the mirrors never add distinctions.
  double pd{0};
  double qd{1};

  constexpr QY() = default;
  constexpr QY(i128 num, i128 den)
      : p(den < 0 ? -num : num),
        q(den < 0 ? -den : den),
        pd(static_cast<double>(p)),
        qd(static_cast<double>(q)) {
    THSR_DCHECK(q > 0);
  }

  /// Exact integer value.
  static constexpr QY of(i64 v) noexcept { return QY(v, 1); }

  /// True when the value is an integer that fits i64 (used by tests/IO).
  bool is_integer() const noexcept { return p % q == 0; }

  /// Nearest double (exact for integers up to 2^53).
  double approx() const noexcept { return static_cast<double>(p) / static_cast<double>(q); }
};

/// Three-way exact compare: sign(a - b).
inline int cmp(const QY& a, const QY& b) noexcept {
  return sgn128(mul128(a.p, b.q) - mul128(b.p, a.q));
}
inline int cmp(const QY& a, i64 b) noexcept { return sgn128(a.p - mul128(a.q, b)); }

inline bool operator==(const QY& a, const QY& b) noexcept { return cmp(a, b) == 0; }
inline bool operator!=(const QY& a, const QY& b) noexcept { return cmp(a, b) != 0; }
inline bool operator<(const QY& a, const QY& b) noexcept { return cmp(a, b) < 0; }
inline bool operator<=(const QY& a, const QY& b) noexcept { return cmp(a, b) <= 0; }
inline bool operator>(const QY& a, const QY& b) noexcept { return cmp(a, b) > 0; }
inline bool operator>=(const QY& a, const QY& b) noexcept { return cmp(a, b) >= 0; }

inline const QY& qmin(const QY& a, const QY& b) noexcept { return b < a ? b : a; }
inline const QY& qmax(const QY& a, const QY& b) noexcept { return a < b ? b : a; }

/// Human-readable "p/q" (or plain integer) for diagnostics and golden tests.
std::string to_string(const QY& v);

}  // namespace thsr
