#include "geometry/lower_hull.hpp"

#include <algorithm>

namespace thsr {
namespace {

// Cross product (b-a) x (c-a); positive = left turn.
double cross(const HullPoint& a, const HullPoint& b, const HullPoint& c) {
  return (b.u - a.u) * (c.v - a.v) - (b.v - a.v) * (c.u - a.u);
}

// Andrew scan keeping `keep_turn(cross) == true` corners.
template <typename Keep>
HullChain scan(std::span<const HullPoint> pts, Keep keep_turn) {
  HullChain h;
  h.reserve(pts.size());
  for (const auto& p : pts) {
    while (h.size() >= 2 && !keep_turn(cross(h[h.size() - 2], h.back(), p))) h.pop_back();
    h.push_back(p);
  }
  return h;
}

}  // namespace

HullChain build_upper_hull(std::span<const HullPoint> pts) {
  return scan(pts, [](double c) { return c < 0.0; });  // right turns only
}

HullChain build_lower_hull(std::span<const HullPoint> pts) {
  return scan(pts, [](double c) { return c > 0.0; });  // left turns only
}

HullChain merge_upper_hulls(const HullChain& a, const HullChain& b) {
  std::vector<HullPoint> cat;
  cat.reserve(a.size() + b.size());
  cat.insert(cat.end(), a.begin(), a.end());
  cat.insert(cat.end(), b.begin(), b.end());
  return build_upper_hull(cat);
}

HullChain merge_lower_hulls(const HullChain& a, const HullChain& b) {
  std::vector<HullPoint> cat;
  cat.reserve(a.size() + b.size());
  cat.insert(cat.end(), a.begin(), a.end());
  cat.insert(cat.end(), b.begin(), b.end());
  return build_lower_hull(cat);
}

namespace {

// Unimodal (max for concave=true, min otherwise) search over f(i) = dir*(v_i - line(u_i)).
double unimodal_extreme(const HullChain& c, double slope, double icept, double dir) {
  auto f = [&](std::size_t i) { return dir * (c[i].v - (slope * c[i].u + icept)); };
  std::size_t lo = 0, hi = c.size() - 1;
  while (hi - lo > 2) {
    const std::size_t m = lo + (hi - lo) / 2;
    if (f(m) < f(m + 1)) {
      lo = m + 1;
    } else {
      hi = m;
    }
  }
  double best = f(lo);
  for (std::size_t i = lo + 1; i <= hi; ++i) best = std::max(best, f(i));
  return dir * best;
}

}  // namespace

double max_excess_above(const HullChain& upper, double slope, double icept) {
  THSR_CHECK(!upper.empty());
  return unimodal_extreme(upper, slope, icept, +1.0);
}

double min_excess_below(const HullChain& lower, double slope, double icept) {
  THSR_CHECK(!lower.empty());
  return unimodal_extreme(lower, slope, icept, -1.0);
}

}  // namespace thsr
