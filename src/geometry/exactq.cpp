#include "geometry/exactq.hpp"

namespace thsr {
namespace {

std::string i128_to_string(i128 v) {
  if (v == 0) return "0";
  const bool neg = v < 0;
  // Careful with INT128_MIN; inputs here are far smaller, but stay defensive.
  unsigned __int128 u =
      neg ? -static_cast<unsigned __int128>(v) : static_cast<unsigned __int128>(v);
  std::string s;
  while (u > 0) {
    s.push_back(static_cast<char>('0' + static_cast<int>(u % 10)));
    u /= 10;
  }
  if (neg) s.push_back('-');
  return {s.rbegin(), s.rend()};
}

}  // namespace

std::string to_string(const QY& v) {
  if (v.p % v.q == 0) return i128_to_string(v.p / v.q);
  return i128_to_string(v.p) + "/" + i128_to_string(v.q);
}

}  // namespace thsr
