#pragma once
/// \file lower_hull.hpp
/// Convex chains over (u, v) points in double precision, used as the
/// augmentation of the Chazelle–Guibas tree (the "lower convex chains" of the
/// paper, section 3.1). Chains here serve *conservative pruning* only: a
/// chain test may answer "maybe", never a wrong "no"; exact decisions are
/// made at tree leaves with the predicates of predicates.hpp. `slack` widens
/// every test by the caller-supplied margin to absorb double rounding.

#include <span>
#include <vector>

#include "geometry/exactq.hpp"

namespace thsr {

struct HullPoint {
  double u{0};
  double v{0};
};

/// Convex chain (either hull of a u-sorted point set), points in increasing u.
using HullChain = std::vector<HullPoint>;

/// Upper convex hull (the chain seen from +v) of u-sorted points.
HullChain build_upper_hull(std::span<const HullPoint> pts);
/// Lower convex hull (the chain seen from -v) of u-sorted points.
HullChain build_lower_hull(std::span<const HullPoint> pts);

/// Hull of the concatenation of two chains with disjoint, ordered u-ranges.
HullChain merge_upper_hulls(const HullChain& a, const HullChain& b);
HullChain merge_lower_hulls(const HullChain& a, const HullChain& b);

/// max over chain points of (v_i - (slope*u_i + icept)); the sequence is
/// concave for an upper hull, so a unimodal search finds it in O(log).
double max_excess_above(const HullChain& upper, double slope, double icept);
/// min over chain points of (v_i - (slope*u_i + icept)); convex for a lower
/// hull, found in O(log).
double min_excess_below(const HullChain& lower, double slope, double icept);

/// True when some point of the upper chain could lie above the line
/// (conservative under `slack`).
inline bool maybe_point_above(const HullChain& upper, double slope, double icept, double slack) {
  return !upper.empty() && max_excess_above(upper, slope, icept) > -slack;
}
/// True when some point of the lower chain could lie below the line.
inline bool maybe_point_below(const HullChain& lower, double slope, double icept, double slack) {
  return !lower.empty() && min_excess_below(lower, slope, icept) < slack;
}

}  // namespace thsr
