#pragma once
/// \file predicates.hpp
/// Exact geometric predicates on image-plane segments.
///
/// A `Seg2` is a non-vertical segment of the plane, viewed as a linear
/// function v(u) over [u0, u1] through integer endpoints (normalized so
/// u0 < u1). The same type serves two coordinate frames:
///   * image plane:  u = y, v = z  (profiles / envelopes / visibility), and
///   * ground plane: u = y, v = x  (the depth-order plane sweep).
///
/// All predicates are exact for integer inputs with |coord| <= kMaxCoord and
/// rational abscissae produced by line_crossing (DESIGN.md section 5).

#include <optional>

#include "geometry/exactq.hpp"

namespace thsr {

/// Non-vertical segment through integer points, u0 < u1.
struct Seg2 {
  i64 u0{0}, v0{0}, u1{1}, v1{0};

  constexpr Seg2() = default;
  constexpr Seg2(i64 a, i64 b, i64 c, i64 d) : u0(a), v0(b), u1(c), v1(d) {
    THSR_DCHECK(u0 < u1);
  }

  /// Line coefficients of A*u - B*v = C with B = du > 0.
  constexpr i64 A() const noexcept { return v1 - v0; }
  constexpr i64 B() const noexcept { return u1 - u0; }
  constexpr i128 C() const noexcept { return i128{A()} * u0 - i128{B()} * v0; }

  /// Approximate value at u (pruning only; never used for decisions).
  double approx_at(double u) const noexcept {
    return static_cast<double>(v0) +
           (u - static_cast<double>(u0)) * static_cast<double>(A()) / static_cast<double>(B());
  }
  double approx_at(const QY& u) const noexcept { return approx_at(u.approx()); }

  friend constexpr bool operator==(const Seg2&, const Seg2&) = default;
};

/// Which side of an abscissa a comparison refers to when values tie:
/// `After` compares on (y, y+eps), `Before` on (y-eps, y).
enum class Side { Before, After };

/// sign(v_a(y) - v_b(y)) at an exact rational abscissa, as extended lines.
inline int cmp_value_at(const Seg2& a, const Seg2& b, const QY& y) noexcept {
  const i128 fa = mul128(a.A(), y.p) - mul128(a.C(), y.q);  // = v_a(y) * (B_a * q)
  const i128 fb = mul128(b.A(), y.p) - mul128(b.C(), y.q);
  return sgn128(mul128(fa, b.B()) - mul128(fb, a.B()));
}

/// sign(slope_a - slope_b).
inline int cmp_slope(const Seg2& a, const Seg2& b) noexcept {
  return sgn128(i128{a.A()} * b.B() - i128{b.A()} * a.B());
}

/// sign(v_a - v_b) on an open interval immediately before/after y.
/// Returns 0 only when the supporting lines coincide.
inline int cmp_value_near(const Seg2& a, const Seg2& b, const QY& y, Side side) noexcept {
  if (const int c = cmp_value_at(a, b, y); c != 0) return c;
  const int s = cmp_slope(a, b);
  return side == Side::After ? s : -s;
}

/// sign(v_a(y) - w) against an integer ordinate w.
inline int cmp_value_vs_int(const Seg2& a, const QY& y, i64 w) noexcept {
  const i128 fa = mul128(a.A(), y.p) - mul128(a.C(), y.q);  // v_a(y) * (B_a * q)
  return sgn128(fa - mul128(mul128(a.B(), y.q), w));
}

/// True when the supporting lines are identical.
inline bool same_line(const Seg2& a, const Seg2& b) noexcept {
  return i128{a.A()} * b.B() == i128{b.A()} * a.B() &&
         mul128(a.C(), b.B()) == mul128(b.C(), a.B());
}

/// Crossing abscissa of the two supporting lines, if they are not parallel.
inline std::optional<QY> line_crossing(const Seg2& a, const Seg2& b) noexcept {
  const i128 det = i128{a.A()} * b.B() - i128{b.A()} * a.B();
  if (det == 0) return std::nullopt;
  const i128 num = mul128(a.C(), b.B()) - mul128(b.C(), a.B());
  return QY(num, det);
}

/// Crossing of the supporting lines restricted to the open interval (lo, hi).
inline std::optional<QY> crossing_in(const Seg2& a, const Seg2& b, const QY& lo,
                                     const QY& hi) noexcept {
  auto y = line_crossing(a, b);
  if (!y || cmp(*y, lo) <= 0 || cmp(*y, hi) >= 0) return std::nullopt;
  return y;
}

}  // namespace thsr
