#pragma once
/// \file predicates.hpp
/// Exact geometric predicates on image-plane segments, behind a
/// floating-point filter.
///
/// A `Seg2` is a non-vertical segment of the plane, viewed as a linear
/// function v(u) over [u0, u1] through integer endpoints (normalized so
/// u0 < u1). The same type serves two coordinate frames:
///   * image plane:  u = y, v = z  (profiles / envelopes / visibility), and
///   * ground plane: u = y, v = x  (the depth-order plane sweep).
///
/// All predicates are exact for integer inputs with |coord| <= kMaxCoord and
/// rational abscissae produced by line_crossing (DESIGN.md section 5). The
/// public names below first try the semi-static double filter of
/// geometry/filter.hpp and fall back to the exact `__int128` evaluations in
/// `namespace exact` when the sign is not certified — so results are
/// bit-identical with the filter on or off, and the exact code remains the
/// single source of truth. Hot loops that evaluate many predicates per
/// (segment pair, abscissa) use the overloads taking pre-built filt::SegF /
/// filt::YF views to amortize the double conversions (envelope merge,
/// oracle walks).

#include <optional>

#include "geometry/filter.hpp"

namespace thsr {

/// Non-vertical segment through integer points, u0 < u1.
struct Seg2 {
  i64 u0{0}, v0{0}, u1{1}, v1{0};

  constexpr Seg2() = default;
  constexpr Seg2(i64 a, i64 b, i64 c, i64 d) : u0(a), v0(b), u1(c), v1(d) {
    THSR_DCHECK(u0 < u1);
  }

  /// Line coefficients of A*u - B*v = C with B = du > 0.
  constexpr i64 A() const noexcept { return v1 - v0; }
  constexpr i64 B() const noexcept { return u1 - u0; }
  constexpr i128 C() const noexcept { return i128{A()} * u0 - i128{B()} * v0; }

  /// Approximate value at u (pruning only; never used for decisions).
  double approx_at(double u) const noexcept {
    return static_cast<double>(v0) +
           (u - static_cast<double>(u0)) * static_cast<double>(A()) / static_cast<double>(B());
  }
  double approx_at(const QY& u) const noexcept { return approx_at(u.approx()); }

  /// Double view of the line coefficients (all exactly representable:
  /// |A|, B <= 2^22, |C| <= 2^44) for the filtered predicates.
  filt::SegF coeffs_f() const noexcept {
    return {static_cast<double>(A()), static_cast<double>(B()), static_cast<double>(C())};
  }

  friend constexpr bool operator==(const Seg2&, const Seg2&) = default;
};

/// Which side of an abscissa a comparison refers to when values tie:
/// `After` compares on (y, y+eps), `Before` on (y-eps, y).
enum class Side { Before, After };

/// ------------------------------------------------------------------------
/// Exact `__int128` evaluations (DESIGN.md section 5). These are the
/// semantics; the filtered public predicates below must agree with them on
/// every input, which tests/test_filter.cpp enforces on adversarial cases.
namespace exact {

/// Shared value numerator f = A*p - C*q, i.e. v_a(y) scaled by (B_a * q).
/// The single definition both cmp_value_at and cmp_value_vs_int scale
/// from, so the exact and filtered paths cannot drift apart.
inline i128 value_numerator(const Seg2& a, const QY& y) noexcept {
  return mul128(a.A(), y.p) - mul128(a.C(), y.q);
}

/// sign(v_a(y) - v_b(y)) at an exact rational abscissa, as extended lines.
inline int cmp_value_at(const Seg2& a, const Seg2& b, const QY& y) noexcept {
  const i128 fa = value_numerator(a, y);
  const i128 fb = value_numerator(b, y);
  return sgn128(mul128(fa, b.B()) - mul128(fb, a.B()));
}

/// sign(slope_a - slope_b).
inline int cmp_slope(const Seg2& a, const Seg2& b) noexcept {
  return sgn128(i128{a.A()} * b.B() - i128{b.A()} * a.B());
}

/// sign(v_a(y) - w) against an integer ordinate w.
inline int cmp_value_vs_int(const Seg2& a, const QY& y, i64 w) noexcept {
  return sgn128(value_numerator(a, y) - mul128(mul128(a.B(), y.q), w));
}

/// True when the supporting lines are identical.
inline bool same_line(const Seg2& a, const Seg2& b) noexcept {
  return i128{a.A()} * b.B() == i128{b.A()} * a.B() &&
         mul128(a.C(), b.B()) == mul128(b.C(), a.B());
}

}  // namespace exact

/// sign(v_a(y) - v_b(y)) at an exact rational abscissa, as extended lines.
/// Batched form: caller supplies the cached double views.
inline int cmp_value_at(const Seg2& a, const filt::SegF& af, const Seg2& b, const filt::SegF& bf,
                        const QY& y, const filt::YF& yf) noexcept {
  if (filt::enabled()) {
    const int s = filt::try_cmp_value_at(af, bf, yf);
    if (s != filt::kUncertain) {
      filt::note_fast();
      return s;
    }
    filt::note_exact();
  }
  return exact::cmp_value_at(a, b, y);
}

inline int cmp_value_at(const Seg2& a, const Seg2& b, const QY& y) noexcept {
  return cmp_value_at(a, a.coeffs_f(), b, b.coeffs_f(), y, filt::YF(y));
}

/// sign(slope_a - slope_b). The double evaluation is exact for in-contract
/// coordinates (see filt::try_cmp_slope), so this never falls back.
inline int cmp_slope(const Seg2& a, const Seg2& b) noexcept {
  if (filt::enabled()) {
    filt::note_fast();
    return filt::try_cmp_slope(a.coeffs_f(), b.coeffs_f());
  }
  return exact::cmp_slope(a, b);
}

/// sign(v_a - v_b) on an open interval immediately before/after y.
/// Returns 0 only when the supporting lines coincide.
inline int cmp_value_near(const Seg2& a, const filt::SegF& af, const Seg2& b,
                          const filt::SegF& bf, const QY& y, const filt::YF& yf,
                          Side side) noexcept {
  if (const int c = cmp_value_at(a, af, b, bf, y, yf); c != 0) return c;
  const int s = filt::enabled() ? filt::try_cmp_slope(af, bf) : exact::cmp_slope(a, b);
  return side == Side::After ? s : -s;
}

inline int cmp_value_near(const Seg2& a, const Seg2& b, const QY& y, Side side) noexcept {
  return cmp_value_near(a, a.coeffs_f(), b, b.coeffs_f(), y, filt::YF(y), side);
}

/// sign(v_a(y) - w) against an integer ordinate w.
inline int cmp_value_vs_int(const Seg2& a, const filt::SegF& af, const QY& y,
                            const filt::YF& yf, i64 w) noexcept {
  if (filt::enabled()) {
    const int s = filt::try_cmp_value_vs_int(af, yf, w);
    if (s != filt::kUncertain) {
      filt::note_fast();
      return s;
    }
    filt::note_exact();
  }
  return exact::cmp_value_vs_int(a, y, w);
}

inline int cmp_value_vs_int(const Seg2& a, const QY& y, i64 w) noexcept {
  return cmp_value_vs_int(a, a.coeffs_f(), y, filt::YF(y), w);
}

/// True when the supporting lines are identical.
inline bool same_line(const Seg2& a, const Seg2& b) noexcept {
  if (filt::enabled()) {
    const filt::SegF af = a.coeffs_f(), bf = b.coeffs_f();
    if (filt::try_cmp_slope(af, bf) != 0) {
      filt::note_fast();
      return false;
    }
    const filt::NumF num = filt::crossing_numerator(af, bf);
    if (filt::certain_sign(num.v, filt::kEps2 * num.mag) != filt::kUncertain) {
      filt::note_fast();  // C-rows certainly differ: distinct parallel lines
      return false;
    }
    filt::note_exact();
  }
  return exact::same_line(a, b);
}

/// Crossing abscissa of the two supporting lines, if they are not parallel.
/// Constructing the exact QY needs the i128 numerator either way, so only
/// the parallel test is filtered (it is exact in double).
inline std::optional<QY> line_crossing(const Seg2& a, const Seg2& b) noexcept {
  const i128 det = i128{a.A()} * b.B() - i128{b.A()} * a.B();
  if (det == 0) return std::nullopt;
  const i128 num = mul128(a.C(), b.B()) - mul128(b.C(), a.B());
  return QY(num, det);
}

/// Crossing of the supporting lines restricted to the open interval (lo, hi).
/// Batched form: the filter rejects crossings certainly outside (lo, hi)
/// from the double numerator/denominator alone — no exact QY comparisons —
/// and certifies strict containment the same way; only window-boundary
/// near-ties fall back to the exact interval test.
inline std::optional<QY> crossing_in(const Seg2& a, const filt::SegF& af, const Seg2& b,
                                     const filt::SegF& bf, const QY& lo, const filt::YF& lof,
                                     const QY& hi) noexcept {
  if (filt::enabled()) {
    const double det = af.A * bf.B - bf.A * af.B;  // exact (try_cmp_slope)
    if (det == 0) {
      filt::note_fast();
      return std::nullopt;
    }
    const filt::NumF num = filt::crossing_numerator(af, bf);
    const int r_lo = filt::try_cmp_crossing(num, det, lof);
    if (r_lo != filt::kUncertain && r_lo <= 0) {
      filt::note_fast();
      return std::nullopt;
    }
    const int r_hi = filt::try_cmp_crossing(num, det, filt::YF(hi));
    if (r_hi != filt::kUncertain && r_hi >= 0) {
      filt::note_fast();
      return std::nullopt;
    }
    if (r_lo != filt::kUncertain && r_hi != filt::kUncertain) {
      filt::note_fast();  // strictly inside: build the exact value directly
      const i128 detI = i128{a.A()} * b.B() - i128{b.A()} * a.B();
      const i128 numI = mul128(a.C(), b.B()) - mul128(b.C(), a.B());
      return QY(numI, detI);
    }
    filt::note_exact();
  }
  auto y = line_crossing(a, b);
  if (!y || thsr::cmp(*y, lo) <= 0 || thsr::cmp(*y, hi) >= 0) return std::nullopt;
  return y;
}

inline std::optional<QY> crossing_in(const Seg2& a, const Seg2& b, const QY& lo,
                                     const QY& hi) noexcept {
  return crossing_in(a, a.coeffs_f(), b, b.coeffs_f(), lo, filt::YF(lo), hi);
}

}  // namespace thsr
