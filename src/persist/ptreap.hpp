#pragma once
/// \file ptreap.hpp
/// Partially persistent treap of profile pieces — the realization of the
/// paper's persistent visibility structure (its reference [6], Driscoll–
/// Sarnak–Sleator–Tarjan). Phase 2 of the algorithm materializes many prefix
/// profiles P_0 … P_n that share almost all of their structure (Figure 3 of
/// the paper); here each profile is an immutable version (a root reference)
/// and every update path-copies O(log) nodes, leaving all published versions
/// readable concurrently (the CREW discipline).
///
/// Keys are piece start abscissae. Priorities are *content hashes*, so the
/// tree shape depends only on the piece set, not on operation history: runs
/// with different thread counts or merge schedules produce bit-identical
/// structures (pinned by tests/test_determinism.cpp).
///
/// Profiles maintain *full coverage*: a version always covers
/// [-kMaxCoord, kMaxCoord] with no gaps, thanks to pseudo-edge kFloorEdge
/// (a constant segment at z = -kMaxCoord, strictly below every admissible
/// terrain vertex). Full coverage lets queries derive exact subtree spans
/// from ancestor keys alone — no per-node coverage storage — and makes the
/// conservative z-box pruning in cg/profile_query.cpp sound.
///
/// **Node layout (DESIGN.md section 1.9).** Nodes are not heap objects:
/// they live in the fixed-size blocks of a PArena and children are 32-bit
/// *arena indices* (block number * block capacity + offset), not pointers.
/// A version is a ptreap::Ref — (arena, root index) — and every descent
/// resolves children through the arena's write-once block table. Compared
/// with the previous two-pointer layout this shrinks the node (the child
/// slots drop from 16 bytes to 8, and the node packs to 112 bytes instead
/// of 128 under the 16-byte QY alignment), keeps sibling allocations in
/// the same block after an arena reset, and caps a version's footprint so
/// one host can hold more warm engines (Kammer et al., space-efficient
/// HSR, PAPERS.md). The flattening is purely representational: the same
/// make/join/split sequence runs node for node, so maps, shapes, and all
/// work counters stay bit-identical to the pointer layout
/// (tests/test_treap_property.cpp pins this against a pointer-based shim).
///
/// **Resolution-bounded solves (DESIGN.md section 1.12).** The treap itself
/// has no pruning hook: under `HsrOptions::pixel_budget` the envelope layer
/// coalesces sample-free pieces *before* they reach phase 2, so bounded
/// runs insert fewer pieces per version and every path-copied spine is
/// shorter. The HsrStats::treap_nodes drop that bench_ci gates on the
/// dense staircase comes entirely from that upstream coalescing — no treap
/// code branches on the budget, which is why bounded and exact versions
/// remain structurally comparable (same hash-priority shape discipline).

#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "envelope/envelope.hpp"

namespace thsr {

/// Pseudo-edge id for the floor piece.
inline constexpr u32 kFloorEdge = 0xffffffffu;

/// The floor segment: constant z = -kMaxCoord over the whole admissible
/// y-range. Terrain vertices satisfy |z| < kMaxCoord, so real geometry is
/// always strictly above the floor.
inline const Seg2& floor_seg() noexcept {
  static const Seg2 s{-kMaxCoord, -kMaxCoord, kMaxCoord, -kMaxCoord};
  return s;
}

/// Segment of a (possibly pseudo) edge id.
inline const Seg2& resolve_seg(std::span<const Seg2> segs, u32 edge) noexcept {
  return edge == kFloorEdge ? floor_seg() : segs[edge];
}

/// One profile piece: `edge` restricted to [y0, y1).
struct PieceData {
  QY y0, y1;
  u32 edge{kFloorEdge};
};

/// Nil child / root sentinel for arena node indices.
inline constexpr u32 kNilNode = 0xffffffffu;

/// Immutable persistent node, indexed — not addressed — through its arena.
/// Fields are written once at construction and never mutated after the node
/// becomes reachable from a published version. `l`/`r` are arena indices
/// (kNilNode = empty); keeping them 32-bit is what packs the node to 112
/// bytes under QY's 16-byte alignment.
struct PNode {
  PieceData piece;
  u64 prio{0};           ///< content hash (shape determinism)
  u32 l{kNilNode};       ///< left child arena index
  u32 r{kNilNode};       ///< right child arena index
  u32 count{1};          ///< subtree piece count
  float zlo{0}, zhi{0};  ///< conservative subtree z-range (outward-rounded)
};

/// Bump allocator for persistent nodes, addressed by 32-bit index.
/// Thread-safe: each thread fills its own blocks; the arena owns all memory
/// until destruction (versions are only valid while their arena lives).
///
/// An arena is reusable across runs: reset() retains every block it ever
/// allocated and rewinds the bump pointers, so a rebuild that fits in the
/// prior footprint performs zero heap allocations (allocated() is the churn
/// metric a warm HsrEngine::solve is gated on). Block-table slots are
/// assigned once per heap block and never move, so node(i) needs no lock:
/// any index a reader holds was published to it across a fork-join edge
/// that ordered the block-table write first.
class PArena {
 public:
  /// Nodes per block and the index split: index = block_id << kLog2BlockNodes | offset.
  static constexpr u32 kLog2BlockNodes = 14;
  static constexpr u32 kBlockNodes = 1u << kLog2BlockNodes;
  /// Block-table capacity: 2^12 blocks * 2^14 nodes = 2^26 nodes per arena,
  /// far beyond any solve while keeping the write-once table at 32 KiB.
  static constexpr u32 kMaxBlocks = 1u << 12;

  PArena();
  PArena(const PArena&) = delete;
  PArena& operator=(const PArena&) = delete;
  ~PArena();

  /// Allocate one node; returns its arena index.
  u32 alloc();

  /// The node at `idx` (read-only: published nodes are immutable).
  const PNode& node(u32 idx) const noexcept {
    return table_[idx >> kLog2BlockNodes][idx & (kBlockNodes - 1)];
  }

  /// Construction-time access for the node most recently alloc()ed by this
  /// thread (before its index is published to any other thread).
  PNode& node_mut(u32 idx) noexcept {
    return table_[idx >> kLog2BlockNodes][idx & (kBlockNodes - 1)];
  }

  /// Recycle the arena: every version ever allocated from it becomes
  /// invalid, all blocks are retained on a free list, and subsequent
  /// alloc() calls refill them before touching the heap. Must not run
  /// concurrently with alloc() (callers separate runs with a join).
  void reset();

  /// Total nodes ever allocated, across resets (persistence cost metric,
  /// bench table_f3).
  u64 node_count() const noexcept;

  /// Total blocks ever heap-allocated. Stays constant across a reset()
  /// followed by a rebuild that fits in the retained blocks — the
  /// allocation-churn metric of tests/test_treap.cpp and bench_ci.
  u64 allocated() const noexcept;

  /// Bytes of node storage this arena retains (blocks * block size): the
  /// resident-footprint gauge of the timed bench lane.
  u64 footprint_bytes() const noexcept;

 private:
  struct Block;
  struct ThreadSlot;
  ThreadSlot& local_slot();

  mutable std::mutex mu_;
  std::vector<Block*> blocks_;  ///< every block ever allocated (owned)
  std::vector<Block*> free_;    ///< retained blocks awaiting reuse
  std::vector<ThreadSlot*> slots_;
  std::unique_ptr<PNode*[]> table_;  ///< block id -> node storage (write-once slots)
  const u64 id_{next_id()};          ///< unique per arena, never recycled

  static u64 next_id() noexcept;
};

/// Persistent treap operations. All functions are pure with respect to their
/// inputs: they return new roots and never mutate reachable nodes.
namespace ptreap {

/// A version handle: the owning arena plus a 32-bit root index. Refs are
/// trivially copyable values; a default-constructed Ref is the empty tree.
/// Dereference (`->`, `*`) yields the root PNode; left()/right() descend.
class Ref {
 public:
  constexpr Ref() = default;
  constexpr Ref(const PArena* a, u32 idx) noexcept : a_(a), idx_(idx) {}

  constexpr explicit operator bool() const noexcept { return idx_ != kNilNode; }
  const PNode& operator*() const noexcept { return a_->node(idx_); }
  const PNode* operator->() const noexcept { return &a_->node(idx_); }
  Ref left() const noexcept { return Ref(a_, (*this)->l); }
  Ref right() const noexcept { return Ref(a_, (*this)->r); }

  constexpr u32 index() const noexcept { return idx_; }
  constexpr const PArena* arena() const noexcept { return a_; }

  friend constexpr bool operator==(const Ref& a, const Ref& b) noexcept {
    return a.idx_ == b.idx_ && (a.idx_ == kNilNode || a.a_ == b.a_);
  }

 private:
  const PArena* a_{nullptr};
  u32 idx_{kNilNode};
};

/// The initial profile P_0: just the floor.
Ref make_floor(PArena& a);

/// Build a version from sorted, contiguous pieces (test/bootstrap helper).
Ref from_pieces(PArena& a, std::span<const PieceData> pieces, std::span<const Seg2> segs);

/// New version with [lo, hi) replaced by `run` (sorted pieces covering
/// [lo, hi) exactly). Pieces straddling lo/hi are cut; the covered interior
/// is dropped wholesale (an O(log) split), which is where the merge's
/// output-sensitivity comes from. O((|run| + log n) log n) node copies.
Ref replace_range(PArena& a, Ref t, const QY& lo, const QY& hi, std::span<const PieceData> run,
                  std::span<const Seg2> segs);

/// Piece covering the open interval adjacent to y on `side`; nullptr when y
/// is outside the version's coverage.
const PieceData* piece_at(Ref t, const QY& y, Side side) noexcept;

u32 count(Ref t) noexcept;

/// In-order dump of all pieces.
void collect(Ref t, std::vector<PieceData>& out);

/// Flat envelope with floor pieces dropped and contiguous same-edge pieces
/// merged (cross-validation against envelope/).
Envelope materialize(Ref t, bool drop_floor = true);

/// Debug invariant check: key order, heap order, contiguity, exact coverage.
void validate(Ref t, std::span<const Seg2> segs);

}  // namespace ptreap
}  // namespace thsr
