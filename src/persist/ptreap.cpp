#include "persist/ptreap.hpp"

#include <algorithm>
#include <atomic>

#include "parallel/work_depth.hpp"

namespace thsr {

// ---------------------------------------------------------------------------
// Arena
// ---------------------------------------------------------------------------

struct PArena::Block {
  explicit Block(u32 block_id) : id(block_id) {}
  const u32 id;  ///< block-table slot; fixed for the block's lifetime
  std::unique_ptr<PNode[]> mem{new PNode[kBlockNodes]};
};

struct PArena::ThreadSlot {
  u32 base{0};                      ///< current block's id << kLog2BlockNodes
  std::size_t used{kBlockNodes};    ///< force a fresh block on first alloc
  std::atomic<u64> allocated{0};
};

u64 PArena::next_id() noexcept {
  static std::atomic<u64> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

PArena::PArena() : table_(new PNode*[kMaxBlocks]) {}

PArena::~PArena() {
  for (Block* b : blocks_) delete b;
  for (ThreadSlot* s : slots_) delete s;
}

PArena::ThreadSlot& PArena::local_slot() {
  // One slot per (thread, arena) pair, looked up through a thread-local map
  // keyed by the arena's unique generation id — NOT its address, which the
  // allocator may reuse for a later arena after destruction. Stale entries
  // for dead arenas are never looked up again (ids are never recycled) and
  // cost only a map entry each.
  thread_local std::vector<std::pair<u64, ThreadSlot*>> tl_slots;
  for (auto& [id, slot] : tl_slots) {
    if (id == id_) return *slot;
  }
  auto* fresh = new ThreadSlot();
  {
    std::lock_guard<std::mutex> lk(mu_);
    slots_.push_back(fresh);
  }
  tl_slots.emplace_back(id_, fresh);
  return *fresh;
}

u32 PArena::alloc() {
  ThreadSlot& s = local_slot();
  if (s.used == kBlockNodes) {
    Block* b = nullptr;
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (!free_.empty()) {
        b = free_.back();
        free_.pop_back();
      } else {
        THSR_CHECK(blocks_.size() < kMaxBlocks);
        b = new Block(static_cast<u32>(blocks_.size()));
        table_[b->id] = b->mem.get();  // write-once: the slot never moves
        blocks_.push_back(b);
      }
    }
    s.base = b->id << kLog2BlockNodes;
    s.used = 0;
  }
  s.allocated.fetch_add(1, std::memory_order_relaxed);
  work::count(Op::TreapNode);
  return s.base | static_cast<u32>(s.used++);
}

void PArena::reset() {
  std::lock_guard<std::mutex> lk(mu_);
  // Rewind every slot: partially filled blocks go back on the free list
  // with everything else, and the owning threads re-acquire blocks on
  // their next alloc(). Callers guarantee no alloc() runs concurrently.
  for (ThreadSlot* s : slots_) {
    s->base = 0;
    s->used = kBlockNodes;
  }
  free_ = blocks_;
}

u64 PArena::node_count() const noexcept {
  std::lock_guard<std::mutex> lk(mu_);
  u64 total = 0;
  for (const ThreadSlot* s : slots_) total += s->allocated.load(std::memory_order_relaxed);
  return total;
}

u64 PArena::allocated() const noexcept {
  std::lock_guard<std::mutex> lk(mu_);
  return blocks_.size();
}

u64 PArena::footprint_bytes() const noexcept {
  std::lock_guard<std::mutex> lk(mu_);
  return blocks_.size() * (sizeof(Block) + sizeof(PNode) * kBlockNodes);
}

// ---------------------------------------------------------------------------
// Treap
// ---------------------------------------------------------------------------

namespace ptreap {
namespace {

u64 mix(u64 x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

u64 content_prio(const PieceData& p) noexcept {
  return mix(mix(static_cast<u64>(p.edge)) ^ mix(static_cast<u64>(p.y0.p)) ^
             mix(static_cast<u64>(p.y0.q) * 0x517cc1b727220a95ull));
}

// Total order on priorities; "greater" wins the root (ties broken by content
// so the shape is a pure function of the piece set).
bool prio_less(const PNode& a, const PNode& b) noexcept {
  if (a.prio != b.prio) return a.prio < b.prio;
  if (a.piece.edge != b.piece.edge) return a.piece.edge < b.piece.edge;
  return cmp(a.piece.y0, b.piece.y0) < 0;
}

float widen_lo(double v) noexcept { return static_cast<float>(v - 0.5); }
float widen_hi(double v) noexcept { return static_cast<float>(v + 0.5); }

Ref make(PArena& a, Ref l, Ref r, const PieceData& p, std::span<const Seg2> segs) {
  const u32 i = a.alloc();
  PNode& n = a.node_mut(i);
  n.l = l.index();
  n.r = r.index();
  n.piece = p;
  n.prio = content_prio(p);
  n.count = 1 + (l ? l->count : 0) + (r ? r->count : 0);
  const Seg2& s = resolve_seg(segs, p.edge);
  const double z0 = s.approx_at(p.y0), z1 = s.approx_at(p.y1);
  n.zlo = widen_lo(std::min(z0, z1));
  n.zhi = widen_hi(std::max(z0, z1));
  if (l) {
    n.zlo = std::min(n.zlo, l->zlo);
    n.zhi = std::max(n.zhi, l->zhi);
  }
  if (r) {
    n.zlo = std::min(n.zlo, r->zlo);
    n.zhi = std::max(n.zhi, r->zhi);
  }
  return Ref(&a, i);
}

// Rebuild a path-copy of `t` with new children (same piece => same prio).
Ref rebuild(PArena& a, Ref t, Ref l, Ref r, std::span<const Seg2> segs) {
  return make(a, l, r, t->piece, segs);
}

Ref join(PArena& a, Ref x, Ref y, std::span<const Seg2> segs) {
  if (!x) return y;
  if (!y) return x;
  if (prio_less(*y, *x)) return rebuild(a, x, x.left(), join(a, x.right(), y, segs), segs);
  return rebuild(a, y, join(a, x, y.left(), segs), y.right(), segs);
}

Ref leaf(PArena& a, const PieceData& p, std::span<const Seg2> segs) {
  THSR_DCHECK(p.y0 < p.y1);
  return make(a, Ref{}, Ref{}, p, segs);
}

// Split by start key: L gets pieces with y0 < y, R the rest (no cutting).
void split_key(PArena& a, Ref t, const QY& y, Ref& l, Ref& r, std::span<const Seg2> segs) {
  if (!t) {
    l = r = Ref{};
    return;
  }
  if (cmp(t->piece.y0, y) < 0) {
    Ref rl;
    split_key(a, t.right(), y, rl, r, segs);
    l = rebuild(a, t, t.left(), rl, segs);
  } else {
    Ref lr;
    split_key(a, t.left(), y, l, lr, segs);
    r = rebuild(a, t, lr, t.right(), segs);
  }
}

// Remove the maximum-key piece; returns the remaining tree via `rest`.
PieceData remove_last(PArena& a, Ref t, Ref& rest, std::span<const Seg2> segs) {
  THSR_CHECK(bool(t));
  if (!t.right()) {
    rest = t.left();
    return t->piece;
  }
  Ref rr;
  const PieceData p = remove_last(a, t.right(), rr, segs);
  rest = rebuild(a, t, t.left(), rr, segs);
  return p;
}

// Split cutting pieces: L covers (-inf, y), R covers [y, +inf).
void split_at(PArena& a, Ref t, const QY& y, Ref& l, Ref& r, std::span<const Seg2> segs) {
  split_key(a, t, y, l, r, segs);
  if (!l) return;
  // The last piece of L may straddle y.
  Ref rest;
  // Peek cheaply: descend to max.
  Ref m = l;
  while (m.right()) m = m.right();
  if (cmp(m->piece.y1, y) <= 0) return;  // no straddle
  const PieceData p = remove_last(a, l, rest, segs);
  l = rest;
  if (cmp(p.y0, y) < 0) l = join(a, l, leaf(a, PieceData{p.y0, y, p.edge}, segs), segs);
  if (cmp(y, p.y1) < 0) r = join(a, leaf(a, PieceData{y, p.y1, p.edge}, segs), r, segs);
}

}  // namespace

Ref make_floor(PArena& a) {
  return leaf(a, PieceData{QY::of(-kMaxCoord), QY::of(kMaxCoord), kFloorEdge}, {});
}

Ref from_pieces(PArena& a, std::span<const PieceData> pieces, std::span<const Seg2> segs) {
  Ref t;
  for (const PieceData& p : pieces) t = join(a, t, leaf(a, p, segs), segs);
  return t;
}

Ref replace_range(PArena& a, Ref t, const QY& lo, const QY& hi, std::span<const PieceData> run,
                  std::span<const Seg2> segs) {
  THSR_DCHECK(lo < hi);
  Ref left, mid, middle_right, right;
  split_at(a, t, lo, left, mid, segs);
  split_at(a, mid, hi, middle_right, right, segs);
  (void)middle_right;  // covered interior of the old version: dropped wholesale
  Ref run_t;
  for (const PieceData& p : run) {
    THSR_DCHECK(cmp(p.y0, lo) >= 0 && cmp(p.y1, hi) <= 0);
    run_t = join(a, run_t, leaf(a, p, segs), segs);
  }
  return join(a, join(a, left, run_t, segs), right, segs);
}

const PieceData* piece_at(Ref t, const QY& y, Side side) noexcept {
  while (t) {
    const PieceData& p = t->piece;
    const int c0 = cmp(y, p.y0);
    const int c1 = cmp(y, p.y1);
    const bool inside = side == Side::After ? (c0 >= 0 && c1 < 0) : (c0 > 0 && c1 <= 0);
    if (inside) return &p;
    if (side == Side::After ? c0 < 0 : c0 <= 0) {
      t = t.left();
    } else {
      t = t.right();
    }
  }
  return nullptr;
}

u32 count(Ref t) noexcept { return t ? t->count : 0; }

void collect(Ref t, std::vector<PieceData>& out) {
  if (!t) return;
  collect(t.left(), out);
  out.push_back(t->piece);
  collect(t.right(), out);
}

Envelope materialize(Ref t, bool drop_floor) {
  std::vector<PieceData> pieces;
  pieces.reserve(count(t));
  collect(t, pieces);
  std::vector<EnvPiece> out;
  out.reserve(pieces.size());
  for (const PieceData& p : pieces) {
    if (drop_floor && p.edge == kFloorEdge) continue;
    if (!out.empty() && out.back().edge == p.edge && out.back().y1 == p.y0) {
      out.back().y1 = p.y1;
    } else {
      out.push_back({p.y0, p.y1, p.edge});
    }
  }
  return Envelope::from_pieces(std::move(out));
}

namespace {

void validate_rec(Ref t, std::span<const Seg2> segs, const QY*& prev_end, u64 max_prio_seen) {
  if (!t) return;
  THSR_CHECK(t->prio <= max_prio_seen || max_prio_seen == ~u64{0});
  validate_rec(t.left(), segs, prev_end, t->prio);
  THSR_CHECK(t->piece.y0 < t->piece.y1);
  if (prev_end) THSR_CHECK(*prev_end == t->piece.y0);  // contiguity (full coverage)
  const Seg2& s = resolve_seg(segs, t->piece.edge);
  THSR_CHECK(cmp(t->piece.y0, s.u0) >= 0 && cmp(t->piece.y1, s.u1) <= 0);
  prev_end = &t->piece.y1;
  validate_rec(t.right(), segs, prev_end, t->prio);
}

}  // namespace

void validate(Ref t, std::span<const Seg2> segs) {
  const QY* prev = nullptr;
  validate_rec(t, segs, prev, ~u64{0});
}

}  // namespace ptreap
}  // namespace thsr
