#pragma once
/// \file engine.hpp
/// Session-oriented hidden-surface-removal engine.
///
/// `hidden_surface_removal()` answers one question about one terrain and
/// throws everything away. A production workload asks many questions about
/// the *same* terrain — different algorithms, oracles, backends, repeated
/// queries under load — and the pipeline has a natural prefix (segment
/// extraction, sliver classification, depth order, PCT skeleton) that is
/// independent of which algorithm runs. HsrEngine splits the two:
///
///   HsrEngine engine;
///   engine.prepare(terrain);              // preprocess once
///   HsrResult a = engine.solve({.algorithm = Algorithm::Parallel});
///   HsrResult b = engine.solve({.algorithm = Algorithm::Sequential});
///   auto batch  = engine.solve_batch(options);   // fan out over the backend
///
/// Beyond caching the preprocessing, the engine owns the working-set
/// memory: the persistent-node arena is rewound (not freed) between
/// solves, and phase scratch plus output-piece buffers are recycled. A
/// warm solve whose predecessor was at least as large allocates zero new
/// arena blocks once the retained footprint covers the backend's
/// schedule — deterministically so in serial runs (threads=1), where
/// allocations always land on the same thread (DESIGN.md section 1.2 for
/// the full lifecycle).
///
/// Determinism contract: a warm solve is bit-identical — visibility map
/// *and* work counters — to a one-shot `hidden_surface_removal()` with the
/// same options (tests/test_engine.cpp). Reuse changes wall clock only.
///
/// Threading: preparation and solve() are single-caller operations — drive
/// them from one thread at a time (solve_batch parallelizes internally).
/// solve_scoped() is the exception: once a prepared engine's PCT is built
/// (ensure_parallel_ready(), or any completed solve), concurrent
/// solve_scoped calls on the *same* engine are safe — the context is read
/// read-only and every call leases its own workspace, which is exactly how
/// solve_batch and the serving layer (src/service/) fan solves out. The
/// prepared terrain must outlive every solve against it.

#include <memory>
#include <span>
#include <vector>

#include "core/hsr.hpp"

namespace thsr {

class HsrEngine {
 public:
  HsrEngine();
  ~HsrEngine();
  HsrEngine(HsrEngine&&) noexcept;
  HsrEngine& operator=(HsrEngine&&) noexcept;
  HsrEngine(const HsrEngine&) = delete;
  HsrEngine& operator=(const HsrEngine&) = delete;

  /// Build and cache the solve-independent context for `t`: segments,
  /// sliver flags, and the depth order. The PCT skeleton is cached too but
  /// built lazily inside the first Parallel solve (and timed there), so
  /// sequential/reference-only sessions never pay for it. Fully evicts any
  /// previously prepared terrain; retained scratch memory is recycled, not
  /// freed.
  void prepare(const Terrain& t);

  /// prepare() for engines built while *other* threads are mid-solve (the
  /// serving layer's cache-miss path, src/service/engine_cache.hpp): the
  /// whole preparation runs inline on the calling thread under a
  /// par::SerialRegion with thread-local counter attribution — no global
  /// counter reset, so concurrent solve_scoped calls on other engines keep
  /// exact counters. The cached context, and every later solve against it,
  /// is bit-identical to prepare()'s (tests/test_service.cpp).
  void prepare_scoped(const Terrain& t);

  /// Prepare for `t` by *transferring* the solve-independent context of
  /// `base` where it is still valid: when `t` has the same triangles and
  /// the identical ground projection as base's terrain (e.g. the image of
  /// a ground-preserving viewpoint shear, service/viewpoint.hpp), the
  /// sliver classification and the depth order — the expensive part of
  /// preparation — carry over verbatim, and only the image-plane segment
  /// table is rebuilt from t's heights. Counter-exact: the transferred
  /// prepare work equals what recomputation would have counted, because
  /// depth ordering reads only ground coordinates (asserted in
  /// tests/test_service.cpp). Runs scoped (thread-local attribution) like
  /// prepare_scoped(). Throws std::invalid_argument when `t` and base's
  /// terrain differ in topology or ground projection.
  void prepare_with_order_of(const Terrain& t, const HsrEngine& base);

  /// Build the lazily constructed PCT skeleton now (idempotent; a pure
  /// uncounted function of the edge count). Call once before sharing this
  /// engine across concurrently running solve_scoped callers — the lazy
  /// in-solve build is unsynchronized by design (solve_batch pre-builds
  /// internally; external fan-outs like the query server do it here).
  void ensure_parallel_ready();

  bool prepared() const noexcept;
  const Terrain* terrain() const noexcept;

  /// Run one algorithm against the prepared context. Requires prepare().
  /// `opt.threads` / `opt.backend` apply for the duration of the solve and
  /// are restored afterwards (exception-safe).
  HsrResult solve(const HsrOptions& opt = {});

  /// Solve every option set against the prepared context, fanning the
  /// independent solves out over the current fork-join backend (each item
  /// runs serially on its worker). Results — maps and work counters — are
  /// bit-identical to a sequential loop of solve() calls. Per-item
  /// `threads` / `backend` overrides are not representable in a shared
  /// parallel region and must be left at their defaults.
  std::vector<HsrResult> solve_batch(std::span<const HsrOptions> opts);

  /// The per-item primitive behind solve_batch: run one solve entirely on
  /// the calling thread (a par::SerialRegion), inside whatever parallel
  /// region — and under whatever executor configuration — the caller has
  /// already established. No global counter reset; work is attributed via
  /// the calling thread's counters, so concurrent solve_scoped calls on
  /// *different* engines report exact per-call Counters. This is how a
  /// multi-engine driver (shard::ShardedEngine) fans one solve per engine
  /// over par::fan_items. `opt.threads` / `opt.backend` must be unset.
  /// The result is bit-identical to solve(opt).
  HsrResult solve_scoped(const HsrOptions& opt = {});

  /// Donate a retired result's piece buffers back to the engine so the
  /// next solve reuses their capacity.
  void recycle(HsrResult&& r);

  /// Persistent nodes ever allocated by this engine's arena (across
  /// solves; the persistence-cost metric).
  u64 arena_nodes() const noexcept;

  /// Arena blocks ever heap-allocated. Constant across warm solves that
  /// fit in the retained footprint — the allocation-churn gauge used by
  /// tests/test_engine.cpp and bench/micro_engine_reuse.
  u64 arena_blocks() const noexcept;

  /// Bytes of persistent-node storage this engine retains across warm
  /// solves (solve() workspace plus the batch workspace pool): the
  /// per-engine resident footprint the timed bench lane reports — what
  /// bounds how many warm engines one host can cache.
  u64 arena_footprint_bytes() const noexcept;

  /// Wall-clock seconds the last prepare() took (amortized across solves).
  double prepare_seconds() const noexcept;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace thsr
