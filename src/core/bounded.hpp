#pragma once
/// \file bounded.hpp
/// Resolution-bounded solve support: the pixel budget and the exact
/// sample-interval predicate that drives pruning.
///
/// A bounded solve (HsrOptions::pixel_budget) targets a known raster
/// resolution: only the visibility structure *at the raster's exact sample
/// ordinates* must survive. Structure confined to a closed y-interval that
/// contains no sample ordinate is invisible to the scan-converter — the
/// raster buckets visible pieces by closed-interval sample containment and
/// evaluates crossings at sample ordinates only (src/raster/raster.cpp) —
/// so the solver may coalesce envelope pieces, skip persistent splices, and
/// drop visible pieces inside such intervals without changing a single
/// output pixel. DESIGN.md section 1.12 states the invariant and proves the
/// bitwise raster identity; the threshold predicate below is its exact
/// arithmetic realization (magnitudes re-derived from section 5).
///
/// The budget describes only the y (image column) lattice: columns are
/// independent 1-D problems, and piece/crossing materialization in the
/// object-space map is governed purely by y-extent. The z resolution never
/// enters the pruning decision.

#include "geometry/exactq.hpp"
#include "support/check.hpp"

namespace thsr {

/// Mirror of raster::kMaxRasterAxis (src/raster/raster.hpp keeps the two in
/// sync with a static_assert): caps width*supersample so the predicate
/// magnitudes below stay inside __int128.
inline constexpr u32 kMaxBudgetSamples = 4096;

/// The y-sample lattice of a target raster: `y_samples` = width*supersample
/// uniform sub-columns over the closed image window [y_lo, y_hi]. Sample i
/// (0 <= i < y_samples) sits at the exact rational ordinate
///
///     s_i = y_lo + (2i+1)(y_hi - y_lo) / (2 * y_samples),
///
/// identical — as an exact rational — to raster::sample_y of the same
/// window/resolution (raster::pixel_budget builds one from RasterOptions).
struct PixelBudget {
  i64 y_lo{0};       ///< window west bound (inclusive), |y_lo| <= 2*kMaxCoord
  i64 y_hi{1};       ///< window east bound (inclusive), y_lo < y_hi
  u32 y_samples{1};  ///< width*supersample, in [1, kMaxBudgetSamples]

  friend bool operator==(const PixelBudget&, const PixelBudget&) = default;
};

/// Exact pruning predicate for one budget. Stateless beyond the budget; a
/// single instance is shared read-only by every thread of a solve.
///
/// Width analysis (DESIGN.md section 1.12). Sample i sits at s_i = y_lo +
/// (2i+1)E/D with E = y_hi - y_lo <= 2^23 and D = 2*y_samples <= 2^13. For a
/// breakpoint y = p/q (|p| <= 2^67, 0 < q <= 2^45 by section 5):
///
///     s_i >= y  <=>  (2i+1) * E * q >= (p - y_lo * q) * D.
///
/// |p - y_lo*q| <= 2^67 + 2^22 * 2^45 = 2^68, so the right side is below
/// 2^81; the left side is below 2^13 * 2^23 * 2^45 = 2^81. Both fit __int128
/// with > 45 bits to spare — the predicate is exact with no fallback tier.
class BoundedPrune {
 public:
  explicit BoundedPrune(const PixelBudget& b)
      : y_lo_(b.y_lo), extent_(b.y_hi - b.y_lo), n_(b.y_samples) {
    THSR_CHECK(b.y_lo < b.y_hi);
    THSR_CHECK(b.y_samples >= 1 && b.y_samples <= kMaxBudgetSamples);
    THSR_CHECK(b.y_lo >= -2 * kMaxCoord && b.y_hi <= 2 * kMaxCoord);
  }

  PixelBudget budget() const noexcept { return PixelBudget{y_lo_, y_lo_ + extent_, n_}; }

  /// True when the closed interval [y0, y1] contains no sample ordinate —
  /// the license to coalesce/skip/drop structure on it. Requires y0 <= y1.
  /// Exact: two to four i128 multiplies, no rounding tier.
  bool sample_free(const QY& y0, const QY& y1) const noexcept {
    // Smallest i with s_i >= y0: (2i+1)*E*q0 >= t0 := (p0 - y_lo*q0)*D.
    const i128 d = 2 * i128{n_};
    const i128 eq0 = mul128(extent_, y0.q);  // > 0
    const i128 t0 = mul128(y0.p - mul128(y_lo_, y0.q), d);
    const i128 num = t0 - eq0;  // i >= num / (2*E*q0)
    const i128 den = 2 * eq0;
    const i128 i0 = num <= 0 ? 0 : (num + den - 1) / den;  // ceil, num > 0
    if (i0 >= i128{n_}) return true;  // every sample lies left of y0
    // Sample i0 is the first at or right of y0; [y0, y1] is sample-free
    // exactly when it still lies strictly right of y1.
    const i128 lhs = mul128(2 * i0 + 1, mul128(extent_, y1.q));
    const i128 rhs = mul128(y1.p - mul128(y_lo_, y1.q), d);
    return lhs > rhs;
  }

 private:
  i64 y_lo_;    ///< window west bound
  i64 extent_;  ///< E = y_hi - y_lo > 0
  u32 n_;       ///< sample count, D = 2n
};

}  // namespace thsr
