#include "core/visibility.hpp"

namespace thsr {

VisibilityMap::VisibilityMap(std::size_t n_edges, Storage&& recycled)
    : pieces_(std::move(recycled.pieces)), slivers_(std::move(recycled.slivers)) {
  if (pieces_.size() > n_edges) pieces_.resize(n_edges);
  for (auto& v : pieces_) v.clear();  // capacity retained
  pieces_.resize(n_edges);
  slivers_.clear();
  slivers_.resize(n_edges);
}

u64 VisibilityMap::k_pieces() const noexcept {
  u64 k = 0;
  for (const auto& v : pieces_) k += v.size();
  for (const auto& s : slivers_) {
    if (s && s->visible) ++k;
  }
  return k;
}

u64 VisibilityMap::k_crossings() const noexcept {
  u64 k = 0;
  for (const auto& v : pieces_) {
    for (const VisiblePiece& p : v) {
      k += (p.k0 == EndpointKind::Crossing) + (p.k1 == EndpointKind::Crossing);
    }
  }
  return k;
}

double VisibilityMap::visible_length() const noexcept {
  double total = 0;
  for (const auto& v : pieces_) {
    for (const VisiblePiece& p : v) total += p.y1.approx() - p.y0.approx();
  }
  return total;
}

std::optional<u32> VisibilityMap::first_difference(const VisibilityMap& other) const {
  const std::size_t n = std::min(pieces_.size(), other.pieces_.size());
  if (pieces_.size() != other.pieces_.size()) return static_cast<u32>(n);
  for (u32 e = 0; e < n; ++e) {
    const auto &a = pieces_[e], &b = other.pieces_[e];
    if (a.size() != b.size()) return e;
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (a[i].y0 != b[i].y0 || a[i].y1 != b[i].y1) return e;
    }
    const auto &sa = slivers_[e], &sb = other.slivers_[e];
    if (sa.has_value() != sb.has_value()) return e;
    if (sa && (sa->visible != sb->visible ||
               (sa->visible && (sa->blocking_before != sb->blocking_before ||
                                sa->blocking_after != sb->blocking_after)))) {
      return e;
    }
  }
  return std::nullopt;
}

}  // namespace thsr
