#include "core/hsr.hpp"

#include "core/detail.hpp"
#include "core/engine.hpp"
#include "parallel/backend.hpp"
#include "support/check.hpp"

namespace thsr {

const char* algorithm_name(Algorithm a) noexcept {
  switch (a) {
    case Algorithm::Reference: return "reference";
    case Algorithm::Sequential: return "sequential";
    case Algorithm::Parallel: return "parallel";
  }
  return "?";
}

namespace detail {

HsrContext make_context(const Terrain& t) {
  HsrContext ctx;
  ctx.terrain = &t;
  const auto n = static_cast<u32>(t.edge_count());
  ctx.segs.resize(n, Seg2{0, 0, 1, 0});
  ctx.is_sliver.resize(n, 0);
  for (u32 e = 0; e < n; ++e) {
    if (t.is_sliver(e)) {
      ctx.is_sliver[e] = 1;
      ++ctx.n_slivers;
    } else {
      ctx.segs[e] = t.image_segment(e);
    }
  }
  ctx.order = compute_depth_order(t);
  // ctx.pct stays disengaged: the engine builds it lazily on the first
  // Parallel solve, so sequential/reference-only sessions never pay for it.
  return ctx;
}

void emit_visible(u32 edge, const QY& a, const QY& b, int initial,
                  std::span<const TransitionEvent> events, VisibilityMap& map,
                  const BoundedPrune* prune) {
  int state = initial;
  QY open_y = a;
  EndpointKind open_k = EndpointKind::SegmentEnd;
  u32 open_o = kNoEdge;
  // Bounded solve: a piece whose closed extent contains no sample ordinate
  // cannot influence the raster (closed-containment bucketing) — skip it.
  const auto keep = [&](const QY& y0, const QY& y1) {
    return prune == nullptr || !prune->sample_free(y0, y1);
  };
  for (const TransitionEvent& ev : events) {
    if (ev.new_state == state) continue;  // defensive: walks never emit these
    if (ev.new_state == +1) {
      open_y = ev.y;
      open_k = ev.kind == EventKind::Cross ? EndpointKind::Crossing : EndpointKind::Break;
      open_o = provenance(ev.profile_edge);
    } else if (state == +1 && keep(open_y, ev.y)) {
      map.add_piece(edge, VisiblePiece{open_y, ev.y, open_k,
                                       ev.kind == EventKind::Cross ? EndpointKind::Crossing
                                                                   : EndpointKind::Break,
                                       open_o, provenance(ev.profile_edge)});
    }
    state = ev.new_state;
  }
  if (state == +1 && keep(open_y, b)) {
    map.add_piece(edge, VisiblePiece{open_y, b, open_k, EndpointKind::SegmentEnd, open_o, kNoEdge});
  }
}

}  // namespace detail

// Back-compat shim: a one-shot call is a session of one — prepare a
// temporary engine and run a single solve. Bit-identical (map and work
// counters) to the pre-engine implementation; thread/backend overrides are
// restored exception-safely by the engine's RAII guard.
HsrResult hidden_surface_removal(const Terrain& t, const HsrOptions& opt) {
  HsrEngine engine;
  engine.prepare(t);
  return engine.solve(opt);
}

}  // namespace thsr
