#include "core/hsr.hpp"

#include "core/detail.hpp"
#include "parallel/backend.hpp"
#include "support/check.hpp"

namespace thsr {

const char* algorithm_name(Algorithm a) noexcept {
  switch (a) {
    case Algorithm::Reference: return "reference";
    case Algorithm::Sequential: return "sequential";
    case Algorithm::Parallel: return "parallel";
  }
  return "?";
}

namespace detail {

HsrContext make_context(const Terrain& t) {
  HsrContext ctx;
  ctx.terrain = &t;
  const auto n = static_cast<u32>(t.edge_count());
  ctx.segs.resize(n, Seg2{0, 0, 1, 0});
  ctx.is_sliver.resize(n, 0);
  for (u32 e = 0; e < n; ++e) {
    if (t.is_sliver(e)) {
      ctx.is_sliver[e] = 1;
      ++ctx.n_slivers;
    } else {
      ctx.segs[e] = t.image_segment(e);
    }
  }
  ctx.order = compute_depth_order(t);
  return ctx;
}

void emit_visible(u32 edge, const QY& a, const QY& b, int initial,
                  std::span<const TransitionEvent> events, VisibilityMap& map) {
  int state = initial;
  QY open_y = a;
  EndpointKind open_k = EndpointKind::SegmentEnd;
  u32 open_o = kNoEdge;
  for (const TransitionEvent& ev : events) {
    if (ev.new_state == state) continue;  // defensive: walks never emit these
    if (ev.new_state == +1) {
      open_y = ev.y;
      open_k = ev.kind == EventKind::Cross ? EndpointKind::Crossing : EndpointKind::Break;
      open_o = provenance(ev.profile_edge);
    } else if (state == +1) {
      map.add_piece(edge, VisiblePiece{open_y, ev.y, open_k,
                                       ev.kind == EventKind::Cross ? EndpointKind::Crossing
                                                                   : EndpointKind::Break,
                                       open_o, provenance(ev.profile_edge)});
    }
    state = ev.new_state;
  }
  if (state == +1) {
    map.add_piece(edge, VisiblePiece{open_y, b, open_k, EndpointKind::SegmentEnd, open_o, kNoEdge});
  }
}

}  // namespace detail

HsrResult hidden_surface_removal(const Terrain& t, const HsrOptions& opt) {
  const int prev_threads = par::max_threads();
  if (opt.threads > 0) par::set_threads(opt.threads);
  const par::Backend prev_backend = par::backend();
  // Contract: an explicitly requested backend must exist in this build —
  // silently running on a different executor would defeat the request.
  if (opt.backend) THSR_CHECK(par::set_backend(*opt.backend));

  detail::Timer total;
  HsrStats stats;
  work::reset();
  const work::Scope scope;

  detail::Timer order_timer;
  detail::HsrContext ctx = detail::make_context(t);
  stats.order_s = order_timer.seconds();
  stats.n_edges = t.edge_count();
  stats.n_slivers = ctx.n_slivers;
  stats.depth_constraints = ctx.order.constraints;

  VisibilityMap map{t.edge_count()};
  switch (opt.algorithm) {
    case Algorithm::Reference: map = detail::run_reference(ctx, stats); break;
    case Algorithm::Sequential: map = detail::run_sequential(ctx, stats); break;
    case Algorithm::Parallel:
      map = detail::run_parallel(ctx, stats, opt.collect_layer_stats, opt.phase2_oracle);
      break;
  }

  stats.k_pieces = map.k_pieces();
  stats.k_crossings = map.k_crossings();
  stats.total_s = total.seconds();
  stats.work = scope.delta();

  if (opt.backend) par::set_backend(prev_backend);
  if (opt.threads > 0) par::set_threads(prev_threads);
  return HsrResult{std::move(map), std::move(stats)};
}

}  // namespace thsr
