/// \file hsr_parallel.cpp
/// The paper's algorithm (sections 2.1 and 3).
///
/// Phase 1 — intermediate profiles: bottom-up over the PCT, the upper
/// envelope of every node's edge range is built by exact merges of its
/// children's envelopes (Lemma 3.1). Parallel across nodes of a layer; the
/// few large merges near the root run strip-parallel instead.
///
/// Phase 2 — actual profiles: top-down, layer by layer (the systolic
/// parallel-prefix schedule). Node v inherits the persistent prefix profile
/// P_{lo(v)-1}; its left child inherits the same version (pure sharing), and
/// its right child inherits merge(P, Π_left): the pieces of the left child's
/// intermediate envelope that are strictly above P, spliced in as a new
/// persistent version. Merges against a version are read-only, so stage 1 of
/// every merge (the oracle walks) parallelizes across the envelope's pieces
/// (CREW); versions for different nodes of a layer are built concurrently.
/// At a leaf, the edge is clipped against its inherited version P_{i-1} and
/// its visible runs are emitted — no splice is needed below leaves.
///
/// Work: O((n·alpha(n) + k) polylog n) oracle steps and O(log) path copies
/// per splice (measured in benches E1/E4/E8); span: O(log n) layers with
/// polylog per layer given enough workers (Theorem 3.1 modulo the oracle
/// substitution of DESIGN.md section 1).
///
/// All scratch lives in the engine-owned Workspace (serial paths) or in
/// per-thread PhaseScratch instances (parallel paths), so a warm engine
/// solve reuses the previous solve's buffers and arena blocks.

#include <atomic>

#include "core/detail.hpp"
#include "envelope/build.hpp"
#include "parallel/backend.hpp"
#include "separator/separator_tree.hpp"

namespace thsr::detail {
namespace {

// Phase-2 merge: new version = env(P, pi) with pi's strictly-above runs
// spliced in. Returns the new version; counts splices into `splices`.
// With Phase2Oracle::MaterializedScan the inherited version is flattened
// once per node and queried by linear scans (the ablation path).
ptreap::Ref merge_profile(PArena& arena, ptreap::Ref P, const Envelope& pi,
                          const HsrContext& ctx, std::atomic<u64>& splices,
                          Phase2Oracle oracle, PhaseScratch& ps_scratch,
                          const BoundedPrune* prune) {
  if (pi.empty()) return P;
  const auto ps = pi.pieces();
  const auto m = static_cast<i64>(ps.size());

  // Stage 1: oracle walks against the immutable inherited version.
  std::vector<PieceData>& flat = ps_scratch.flat;
  flat.clear();
  if (oracle == Phase2Oracle::MaterializedScan) {
    flat.reserve(ptreap::count(P));
    ptreap::collect(P, flat);
  }
  if (ps_scratch.merge_events.size() < ps.size()) ps_scratch.merge_events.resize(ps.size());
  std::span<std::vector<TransitionEvent>> events{ps_scratch.merge_events};
  ps_scratch.merge_initial.resize(ps.size());
  std::span<int> initial{ps_scratch.merge_initial};
  par::parallel_for(
      m,
      [&](i64 j) {
        const auto ju = static_cast<std::size_t>(j);
        const EnvPiece& p = ps[ju];
        events[ju].clear();
        initial[ju] =
            oracle == Phase2Oracle::MaterializedScan
                ? walk_transitions_scan(flat, ctx.segs[p.edge], p.y0, p.y1, ctx.segs, events[ju])
                : walk_transitions(P, ctx.segs[p.edge], p.y0, p.y1, ctx.segs, events[ju]);
      },
      /*grain=*/32);

  // Stages 2+3: stitch maximal above-runs across pieces and splice each as
  // one range replacement (covered pieces of P drop wholesale inside).
  ptreap::Ref cur = P;
  bool open = false;
  QY run0;
  std::vector<PieceData>& content = ps_scratch.merge_content;
  content.clear();
  u64 n_splices = 0;
  const auto close = [&](const QY& end) {
    if (!open) return;
    THSR_DCHECK(!content.empty());
    // Bounded solve: a sample-free run's splice is unobservable at every
    // sample ordinate — skip it and all its persistent node allocations.
    if (prune == nullptr || !prune->sample_free(run0, end)) {
      cur = ptreap::replace_range(arena, cur, run0, end, content, ctx.segs);
      ++n_splices;
    }
    content.clear();
    open = false;
  };
  // Bounded solve: coalesce a sample-free content piece into its contiguous
  // predecessor (keeping the predecessor's edge) — fewer leaves per splice,
  // fewer treap nodes, no sample can tell.
  const auto push_content = [&](const QY& y0, const QY& y1, u32 edge) {
    if (prune != nullptr && !content.empty() && prune->sample_free(y0, y1)) {
      content.back().y1 = y1;
    } else {
      content.push_back({y0, y1, edge});
    }
  };

  QY prev_end;
  bool have_prev = false;
  for (std::size_t j = 0; j < ps.size(); ++j) {
    const EnvPiece& p = ps[j];
    if (have_prev && filt::cmp(prev_end, p.y0) != 0) close(prev_end);  // gap in pi ends any run
    int st = initial[j];
    QY pos = p.y0;
    if (st == +1) {
      if (!open) {
        open = true;
        run0 = p.y0;
      }
    } else {
      close(p.y0);
    }
    for (const TransitionEvent& ev : events[j]) {
      if (st == +1) push_content(pos, ev.y, p.edge);
      if (ev.new_state == +1) {
        THSR_DCHECK(!open);
        open = true;
        run0 = ev.y;
      } else {
        close(ev.y);
      }
      pos = ev.y;
      st = ev.new_state;
    }
    if (st == +1) push_content(pos, p.y1, p.edge);
    prev_end = p.y1;
    have_prev = true;
  }
  if (have_prev) close(prev_end);
  splices.fetch_add(n_splices, std::memory_order_relaxed);
  return cur;
}

void process_leaf(u32 e, ptreap::Ref P, const HsrContext& ctx, VisibilityMap& map,
                  PhaseScratch& scratch, Phase2Oracle oracle, const BoundedPrune* prune) {
  const Terrain& t = *ctx.terrain;
  if (ctx.is_sliver[e]) {
    const SliverInfo sv = t.sliver(e);
    SliverVisibility out;
    out.visible = strictly_above_at(P, QY::of(sv.y), sv.z_hi, ctx.segs);
    if (out.visible) {
      const QY y = QY::of(sv.y);
      if (const PieceData* p = ptreap::piece_at(P, y, Side::Before)) {
        out.blocking_before = provenance(p->edge);
      }
      if (const PieceData* p = ptreap::piece_at(P, y, Side::After)) {
        out.blocking_after = provenance(p->edge);
      }
    }
    map.set_sliver(e, out);
    return;
  }
  const Seg2& s = ctx.segs[e];
  const QY a = QY::of(s.u0), b = QY::of(s.u1);
  std::vector<TransitionEvent>& events = scratch.events;
  events.clear();
  int initial;
  if (oracle == Phase2Oracle::MaterializedScan) {
    std::vector<PieceData>& flat = scratch.flat;
    flat.clear();
    flat.reserve(ptreap::count(P));
    ptreap::collect(P, flat);
    initial = walk_transitions_scan(flat, s, a, b, ctx.segs, events);
  } else {
    initial = walk_transitions(P, s, a, b, ctx.segs, events);
  }
  emit_visible(e, a, b, initial, events, map, prune);
}

}  // namespace

VisibilityMap run_parallel(const HsrContext& ctx, Workspace& ws, HsrStats& stats,
                           bool layer_stats, Phase2Oracle oracle, const BoundedPrune* prune) {
  const Terrain& t = *ctx.terrain;
  const auto n = static_cast<u32>(t.edge_count());
  VisibilityMap map{t.edge_count(), std::move(ws.map_storage)};
  if (n == 0) return map;

  const SeparatorTree& pct = *ctx.pct;

  // ------------------------------------------------------------------ phase 1
  Timer t1;
  std::vector<Envelope>& env = ws.env;
  env.assign(pct.size(), Envelope{});
  for (u32 lvl = pct.levels(); lvl-- > 0;) {
    const auto nodes = pct.level(lvl);
    const auto work_node = [&](u32 v, bool inner_parallel) {
      const PctNode& nd = pct.node(v);
      if (nd.leaf()) {
        const u32 e = ctx.order.order[nd.lo];
        if (!ctx.is_sliver[e]) env[v] = Envelope::of_segment(e, ctx.segs[e]);
      } else if (inner_parallel) {
        env[v] = merge_envelopes_parallel(env[nd.left], env[nd.right], ctx.segs,
                                          kEnvMergeStrips, prune);
      } else {
        env[v] = merge_envelopes(env[nd.left], env[nd.right], ctx.segs, nullptr, prune);
      }
    };
    // The strip-vs-plain merge decision must not depend on max_threads():
    // strip merges emit (healed) seam pieces that the work counters see, and
    // counted work is pinned to be identical across p (see kEnvMergeStrips).
    if (nodes.size() < static_cast<std::size_t>(kEnvMergeStrips)) {
      for (u32 v : nodes) work_node(v, true);
    } else {
      par::parallel_for(
          static_cast<i64>(nodes.size()),
          [&](i64 i) { work_node(nodes[static_cast<std::size_t>(i)], false); }, 1);
    }
  }
  for (const auto& e : env) stats.phase1_pieces += e.size();
  // Envelopes of right children and the root are never consumed by phase 2.
  {
    std::vector<unsigned char>& used = ws.used;
    used.assign(pct.size(), 0);
    for (u32 v = 0; v < pct.size(); ++v) {
      if (!pct.node(v).leaf()) used[pct.node(v).left] = 1;
    }
    for (u32 v = 0; v < pct.size(); ++v) {
      if (!used[v]) env[v] = Envelope{};
    }
  }
  stats.phase1_s = t1.seconds();

  // ------------------------------------------------------------------ phase 2
  Timer t2;
  PArena& arena = ws.arena;
  const u64 arena_base = arena.node_count();
  std::vector<ptreap::Ref>& inherited = ws.inherited;
  inherited.assign(pct.size(), ptreap::Ref{});
  inherited[pct.root()] = ptreap::make_floor(arena);

  // Layer counters: under a SerialRegion (a solve_batch item) the whole
  // solve runs on this thread, and the thread-local snapshot keeps other
  // concurrently running batch items out of our per-layer deltas.
  const bool local_counters = par::serial_forced();
  const auto counters_now = [local_counters] {
    return local_counters ? work::local_snapshot() : work::snapshot();
  };
  for (u32 lvl = 0; lvl < pct.levels(); ++lvl) {
    const auto nodes = pct.level(lvl);
    const u64 nodes_before = arena.node_count();
    const Counters work_before = layer_stats ? counters_now() : Counters{};
    std::atomic<u64> splices{0};

    const auto work_node = [&](u32 v, PhaseScratch& scratch) {
      const PctNode& nd = pct.node(v);
      const ptreap::Ref P = inherited[v];
      THSR_DCHECK(bool(P));
      if (nd.leaf()) {
        process_leaf(ctx.order.order[nd.lo], P, ctx, map, scratch, oracle, prune);
        return;
      }
      inherited[nd.left] = P;
      inherited[nd.right] =
          merge_profile(arena, P, env[nd.left], ctx, splices, oracle, scratch, prune);
    };

    if (static_cast<i64>(nodes.size()) < 2 * par::max_threads()) {
      for (u32 v : nodes) work_node(v, ws.scratch);  // inner stage-1 parallelism
    } else {
      par::parallel_for(
          static_cast<i64>(nodes.size()),
          [&](i64 i) {
            thread_local PhaseScratch scratch;
            work_node(nodes[static_cast<std::size_t>(i)], scratch);
          },
          1);
    }

    if (layer_stats) {
      const Counters now = counters_now();
      LayerStats ls;
      ls.layer = lvl;
      ls.nodes = static_cast<u32>(nodes.size());
      for (u32 v : nodes) {
        const PctNode& nd = pct.node(v);
        if (!nd.leaf()) ls.pieces_consumed += env[nd.left].size();
      }
      ls.events = (now[Op::MergeEvent] - work_before[Op::MergeEvent]) +
                  (now[Op::Crossing] - work_before[Op::Crossing]);
      ls.splices = splices.load();
      ls.treap_nodes = arena.node_count() - nodes_before;
      for (u32 v : nodes) ls.profile_pieces += ptreap::count(inherited[v]);
      stats.layers.push_back(ls);
    }
  }
  stats.phase2_s = t2.seconds();
  stats.treap_nodes = arena.node_count() - arena_base;
  return map;
}

}  // namespace thsr::detail
