/// \file hsr_sequential.cpp
/// The Reif–Sen-style sequential baseline (the paper's reference [19]/[20]):
/// edges are processed one by one in depth order; the current profile lives
/// in the persistent treap and each edge is clipped against it with
/// output-sensitive oracle walks (O((1 + k_e) polylog) per edge), then its
/// visible runs are spliced into the profile. Total O((n + k) polylog n) —
/// the work bound the parallel algorithm's Remark is measured against
/// (bench table_e4_work_ratio).

#include "core/detail.hpp"

namespace thsr::detail {

VisibilityMap run_sequential(const HsrContext& ctx, Workspace& ws, HsrStats& stats,
                             const BoundedPrune* prune) {
  const Terrain& t = *ctx.terrain;
  VisibilityMap map{t.edge_count(), std::move(ws.map_storage)};
  PArena& arena = ws.arena;
  const u64 arena_base = arena.node_count();
  ptreap::Ref profile = ptreap::make_floor(arena);

  Timer phase;
  std::vector<TransitionEvent>& events = ws.scratch.events;
  for (const u32 e : ctx.order.order) {
    if (ctx.is_sliver[e]) {
      const SliverInfo sv = t.sliver(e);
      SliverVisibility out;
      out.visible = strictly_above_at(profile, QY::of(sv.y), sv.z_hi, ctx.segs);
      if (out.visible) {
        const QY y = QY::of(sv.y);
        if (const PieceData* p = ptreap::piece_at(profile, y, Side::Before)) {
          out.blocking_before = provenance(p->edge);
        }
        if (const PieceData* p = ptreap::piece_at(profile, y, Side::After)) {
          out.blocking_after = provenance(p->edge);
        }
      }
      map.set_sliver(e, out);
      continue;
    }

    const Seg2& s = ctx.segs[e];
    const QY a = QY::of(s.u0), b = QY::of(s.u1);
    events.clear();
    const int initial = walk_transitions(profile, s, a, b, ctx.segs, events);
    emit_visible(e, a, b, initial, events, map, prune);

    // Splice the visible (strictly-above) runs: profile := env(profile, s).
    // Bounded solve: a sample-free run changes the profile only where no
    // sample ordinate can observe it — skip the splice and every persistent
    // node it would have allocated (DESIGN.md section 1.12).
    int state = initial;
    QY run0 = a;
    const auto splice = [&](const QY& from, const QY& to) {
      if (prune != nullptr && prune->sample_free(from, to)) return;
      const PieceData piece{from, to, e};
      profile = ptreap::replace_range(arena, profile, from, to, std::span(&piece, 1), ctx.segs);
    };
    for (const TransitionEvent& ev : events) {
      if (ev.new_state == +1 && state != +1) {
        run0 = ev.y;
      } else if (ev.new_state != +1 && state == +1) {
        splice(run0, ev.y);
      }
      state = ev.new_state;
    }
    if (state == +1) splice(run0, b);
  }
  stats.phase2_s = phase.seconds();
  stats.treap_nodes = arena.node_count() - arena_base;
  return map;
}

}  // namespace thsr::detail
