#pragma once
/// \file visibility.hpp
/// The object-space output of hidden-surface removal: for every terrain
/// edge, the maximal sub-segments of its image-plane projection that are
/// visible from the viewer (paper section 1.1: "a combinatorial description
/// of the visible scene which can then be rendered on any display device").
///
/// Endpoints carry provenance — segment end, crossing with a profile edge
/// (an image vertex), or profile breakpoint (a T-vertex) — so the visible
/// image can be assembled as a planar graph. The output size k of the paper
/// is reported as k_pieces (maximal visible pieces incl. visible slivers)
/// and k_crossings (crossing-type endpoints).
///
/// All coordinates are exact rationals: two algorithms are *equal* when
/// their piece lists match exactly, which is what the equivalence tests
/// assert (no tolerances).

#include <optional>
#include <span>
#include <vector>

#include "geometry/exactq.hpp"

namespace thsr {

inline constexpr u32 kNoEdge = 0xfffffffeu;

enum class EndpointKind : unsigned char {
  SegmentEnd,  ///< endpoint of the input edge's projection
  Crossing,    ///< transversal crossing with a visible profile piece
  Break,       ///< profile discontinuity (T-vertex) or floor boundary
};

/// A maximal visible sub-segment [y0, y1] of a (non-sliver) edge.
struct VisiblePiece {
  QY y0, y1;
  EndpointKind k0{EndpointKind::SegmentEnd}, k1{EndpointKind::SegmentEnd};
  u32 other0{kNoEdge}, other1{kNoEdge};  ///< profile edge at each endpoint, if any
};

/// Visibility of a sliver edge (vertical image segment at ordinate y).
struct SliverVisibility {
  bool visible{false};
  u32 blocking_before{kNoEdge};  ///< profile edge at (y-, .) when present
  u32 blocking_after{kNoEdge};   ///< profile edge at (y+, .)
};

class VisibilityMap {
 public:
  /// Piece/sliver buffers detached from a retired map (see release()). A
  /// session engine keeps Storage between solves so the per-edge vectors'
  /// capacity is recycled instead of reallocated every run.
  struct Storage {
    std::vector<std::vector<VisiblePiece>> pieces;
    std::vector<std::optional<SliverVisibility>> slivers;
  };

  explicit VisibilityMap(std::size_t n_edges) : pieces_(n_edges), slivers_(n_edges) {}

  /// Build an empty map for `n_edges`, adopting `recycled` buffers: inner
  /// vectors are cleared but keep their capacity.
  VisibilityMap(std::size_t n_edges, Storage&& recycled);

  /// Detach the buffers for reuse; the map is left empty (size 0).
  Storage release() && { return Storage{std::move(pieces_), std::move(slivers_)}; }

  /// Append a visible piece of `edge`. Pieces of one edge must be appended
  /// in increasing y (each edge is produced by exactly one walk/task).
  void add_piece(u32 edge, VisiblePiece p) {
    THSR_DCHECK(p.y0 < p.y1);
    THSR_DCHECK(pieces_[edge].empty() || pieces_[edge].back().y1 <= p.y0);
    pieces_[edge].push_back(std::move(p));
  }

  void set_sliver(u32 edge, SliverVisibility s) { slivers_[edge] = s; }

  std::span<const VisiblePiece> pieces(u32 edge) const { return pieces_[edge]; }
  const std::optional<SliverVisibility>& sliver(u32 edge) const { return slivers_[edge]; }
  std::size_t edge_slots() const noexcept { return pieces_.size(); }

  /// Output-size measures.
  u64 k_pieces() const noexcept;     ///< visible pieces + visible slivers
  u64 k_crossings() const noexcept;  ///< Crossing-kind endpoints (image vertices)

  /// Total visible length in the image plane (approximate; reporting only).
  double visible_length() const noexcept;

  /// Exact geometric equality of piece intervals and sliver visibility
  /// (endpoint provenance is not compared: algorithms may legitimately
  /// classify the same abscissa via different event kinds). On mismatch
  /// returns the offending edge id.
  std::optional<u32> first_difference(const VisibilityMap& other) const;

 private:
  std::vector<std::vector<VisiblePiece>> pieces_;           // indexed by edge id
  std::vector<std::optional<SliverVisibility>> slivers_;    // engaged for sliver edges
};

}  // namespace thsr
