#include "core/engine.hpp"

#include <mutex>
#include <optional>
#include <stdexcept>
#include <utility>

#include "core/detail.hpp"
#include "parallel/backend.hpp"
#include "support/check.hpp"

namespace thsr {

struct HsrEngine::Impl {
  detail::HsrContext ctx;
  detail::Workspace ws;       ///< solve() workspace; batch items use the pool
  Counters prepare_work;      ///< ops counted while building ctx
  double order_s{0};
  bool prepared{false};

  // Workspace pool for in-flight batch items: at most one per concurrently
  // running item, retained across batches so their arenas warm up too.
  std::mutex pool_mu;
  std::vector<std::unique_ptr<detail::Workspace>> pool;
  std::vector<detail::Workspace*> pool_free;

  detail::Workspace* acquire_ws() {
    std::lock_guard<std::mutex> lk(pool_mu);
    if (!pool_free.empty()) {
      detail::Workspace* ws = pool_free.back();
      pool_free.pop_back();
      return ws;
    }
    pool.push_back(std::make_unique<detail::Workspace>());
    return pool.back().get();
  }

  void release_ws(detail::Workspace* ws) {
    std::lock_guard<std::mutex> lk(pool_mu);
    pool_free.push_back(ws);
  }
};

namespace {

/// Build the PCT on first need. Only the Parallel algorithm reads it; it
/// is a pure function of the edge count (no counted ops), so laziness is
/// invisible to results and counters. Must run before solves fan out —
/// concurrent batch items share the context read-only.
void ensure_pct(detail::HsrContext& ctx, const HsrOptions& opt) {
  const auto n = static_cast<u32>(ctx.terrain->edge_count());
  if (opt.algorithm == Algorithm::Parallel && !ctx.pct && n > 0) ctx.pct.emplace(n);
}

/// One solve against a prepared context. `thread_scope` selects per-thread
/// counter attribution (exact when the caller runs the solve entirely on
/// one thread, i.e. inside a par::SerialRegion) over the global snapshot a
/// single-threaded driver uses.
HsrResult solve_on(detail::HsrContext& ctx, detail::Workspace& ws, const Counters& prepare_work,
                   double order_s, const HsrOptions& opt, bool thread_scope) {
  detail::Timer total;
  // Inside the timer: when this solve is the one that triggers the lazy
  // PCT build, its cost must show up in total_s (solve_batch pre-builds
  // before fan-out, making this a no-op there).
  ensure_pct(ctx, opt);
  HsrStats stats;
  stats.order_s = order_s;
  stats.n_edges = ctx.terrain->edge_count();
  stats.n_slivers = ctx.n_slivers;
  stats.depth_constraints = ctx.order.constraints;

  ws.arena.reset();  // recycle every block from the previous solve
  const Counters before = thread_scope ? work::local_snapshot() : work::snapshot();

  // Resolution-bounded solve: one predicate instance, shared read-only by
  // every thread of this solve (BoundedPrune validates the budget).
  std::optional<BoundedPrune> bounded;
  if (opt.pixel_budget) bounded.emplace(*opt.pixel_budget);
  const BoundedPrune* prune = bounded ? &*bounded : nullptr;

  VisibilityMap map{0};
  switch (opt.algorithm) {
    case Algorithm::Reference: map = detail::run_reference(ctx, ws, stats, prune); break;
    case Algorithm::Sequential: map = detail::run_sequential(ctx, ws, stats, prune); break;
    case Algorithm::Parallel:
      map = detail::run_parallel(ctx, ws, stats, opt.collect_layer_stats, opt.phase2_oracle,
                                 prune);
      break;
  }

  Counters delta = thread_scope ? work::local_snapshot() : work::snapshot();
  delta -= before;
  stats.work = prepare_work;
  stats.work += delta;
  stats.k_pieces = map.k_pieces();
  stats.k_crossings = map.k_crossings();
  stats.total_s = order_s + total.seconds();
  return HsrResult{std::move(map), std::move(stats)};
}

}  // namespace

HsrEngine::HsrEngine() : impl_(std::make_unique<Impl>()) {}
HsrEngine::~HsrEngine() = default;
HsrEngine::HsrEngine(HsrEngine&&) noexcept = default;
HsrEngine& HsrEngine::operator=(HsrEngine&&) noexcept = default;

namespace {

/// Evict the previous terrain's derived state; keep the raw memory.
void recycle_workspace(detail::Workspace& ws) {
  ws.arena.reset();
  ws.env.clear();
  ws.inherited.clear();
}

}  // namespace

void HsrEngine::prepare(const Terrain& t) {
  Impl& im = *impl_;
  work::reset();
  const work::Scope scope;
  detail::Timer order_timer;
  im.ctx = detail::make_context(t);
  im.order_s = order_timer.seconds();
  im.prepare_work = scope.delta();
  recycle_workspace(im.ws);
  im.prepared = true;
}

void HsrEngine::prepare_scoped(const Terrain& t) {
  Impl& im = *impl_;
  const par::SerialRegion serial;  // whole preparation inline on this thread
  const Counters before = work::local_snapshot();
  detail::Timer order_timer;
  im.ctx = detail::make_context(t);
  im.order_s = order_timer.seconds();
  Counters delta = work::local_snapshot();
  delta -= before;
  im.prepare_work = delta;
  recycle_workspace(im.ws);
  im.prepared = true;
}

void HsrEngine::prepare_with_order_of(const Terrain& t, const HsrEngine& base) {
  Impl& im = *impl_;
  const Impl& bi = *base.impl_;
  THSR_CHECK(bi.prepared);
  const Terrain& bt = *bi.ctx.terrain;
  const bool same_shape = t.vertex_count() == bt.vertex_count() &&
                          t.triangle_count() == bt.triangle_count() &&
                          t.edge_count() == bt.edge_count();
  bool same_ground = same_shape;
  if (same_shape) {
    for (u32 i = 0; same_ground && i < t.vertex_count(); ++i) {
      const Vertex3 &a = t.vertex(i), &b = bt.vertex(i);
      same_ground = a.x == b.x && a.y == b.y;
    }
    for (std::size_t i = 0; same_ground && i < t.triangle_count(); ++i) {
      const Triangle &a = t.triangles()[i], &b = bt.triangles()[i];
      same_ground = a.a == b.a && a.b == b.b && a.c == b.c;
    }
  }
  if (!same_ground) {
    throw std::invalid_argument(
        "prepare_with_order_of: terrains differ in topology or ground projection");
  }
  // Ground projections agree, so the sliver classification and the depth
  // order — functions of ground coordinates only — transfer verbatim; only
  // the image-plane segment table depends on the new heights. The PCT is
  // left for the usual lazy build (a pure function of the edge count).
  detail::Timer order_timer;
  detail::HsrContext ctx;
  ctx.terrain = &t;
  const auto n = static_cast<u32>(t.edge_count());
  ctx.segs.resize(n, Seg2{0, 0, 1, 0});
  ctx.is_sliver = bi.ctx.is_sliver;
  ctx.n_slivers = bi.ctx.n_slivers;
  ctx.order = bi.ctx.order;
  for (u32 e = 0; e < n; ++e) {
    if (!ctx.is_sliver[e]) ctx.segs[e] = t.image_segment(e);
  }
  im.ctx = std::move(ctx);
  im.order_s = order_timer.seconds();
  // Depth ordering counts only ground-coordinate operations, so the work a
  // fresh preparation of `t` would have counted is exactly what base
  // counted (tests/test_service.cpp pins this equality).
  im.prepare_work = bi.prepare_work;
  recycle_workspace(im.ws);
  im.prepared = true;
}

void HsrEngine::ensure_parallel_ready() {
  Impl& im = *impl_;
  THSR_CHECK(im.prepared);
  ensure_pct(im.ctx, HsrOptions{.algorithm = Algorithm::Parallel});
}

bool HsrEngine::prepared() const noexcept { return impl_->prepared; }

const Terrain* HsrEngine::terrain() const noexcept {
  return impl_->prepared ? impl_->ctx.terrain : nullptr;
}

HsrResult HsrEngine::solve(const HsrOptions& opt) {
  Impl& im = *impl_;
  THSR_CHECK(im.prepared);
  const par::ScopedConfig cfg(opt.threads, opt.backend);
  // Contract: an explicitly requested backend must exist in this build —
  // silently running on a different executor would defeat the request.
  if (opt.backend) THSR_CHECK(cfg.backend_applied());
  work::reset();
  return solve_on(im.ctx, im.ws, im.prepare_work, im.order_s, opt, /*thread_scope=*/false);
}

HsrResult HsrEngine::solve_scoped(const HsrOptions& opt) {
  Impl& im = *impl_;
  THSR_CHECK(im.prepared);
  THSR_CHECK(opt.threads == 0 && !opt.backend);  // the caller owns the executor config
  const par::SerialRegion serial;  // whole solve on this thread: exact attribution
  struct Lease {                   // exception-safe return to the pool
    Impl& im;
    detail::Workspace* ws{im.acquire_ws()};
    ~Lease() { im.release_ws(ws); }
  } lease{im};
  return solve_on(im.ctx, *lease.ws, im.prepare_work, im.order_s, opt, /*thread_scope=*/true);
}

std::vector<HsrResult> HsrEngine::solve_batch(std::span<const HsrOptions> opts) {
  Impl& im = *impl_;
  THSR_CHECK(im.prepared);
  for (const HsrOptions& o : opts) {
    THSR_CHECK(o.threads == 0 && !o.backend);  // per-item executors are not representable
    ensure_pct(im.ctx, o);                     // before items share ctx read-only
  }

  std::vector<std::optional<HsrResult>> tmp(opts.size());
  par::fan_items(opts.size(), [&](std::size_t i) { tmp[i] = solve_scoped(opts[i]); });

  std::vector<HsrResult> out;
  out.reserve(opts.size());
  for (auto& r : tmp) out.push_back(std::move(*r));
  return out;
}

void HsrEngine::recycle(HsrResult&& r) {
  impl_->ws.map_storage = std::move(r.map).release();
}

u64 HsrEngine::arena_nodes() const noexcept { return impl_->ws.arena.node_count(); }

u64 HsrEngine::arena_blocks() const noexcept { return impl_->ws.arena.allocated(); }

u64 HsrEngine::arena_footprint_bytes() const noexcept {
  Impl& im = *impl_;
  u64 bytes = im.ws.arena.footprint_bytes();
  std::lock_guard<std::mutex> lk(im.pool_mu);
  for (const auto& ws : im.pool) bytes += ws->arena.footprint_bytes();
  return bytes;
}

double HsrEngine::prepare_seconds() const noexcept { return impl_->order_s; }

}  // namespace thsr
