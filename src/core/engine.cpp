#include "core/engine.hpp"

#include <mutex>
#include <optional>
#include <utility>

#include "core/detail.hpp"
#include "parallel/backend.hpp"
#include "support/check.hpp"

namespace thsr {

struct HsrEngine::Impl {
  detail::HsrContext ctx;
  detail::Workspace ws;       ///< solve() workspace; batch items use the pool
  Counters prepare_work;      ///< ops counted while building ctx
  double order_s{0};
  bool prepared{false};

  // Workspace pool for in-flight batch items: at most one per concurrently
  // running item, retained across batches so their arenas warm up too.
  std::mutex pool_mu;
  std::vector<std::unique_ptr<detail::Workspace>> pool;
  std::vector<detail::Workspace*> pool_free;

  detail::Workspace* acquire_ws() {
    std::lock_guard<std::mutex> lk(pool_mu);
    if (!pool_free.empty()) {
      detail::Workspace* ws = pool_free.back();
      pool_free.pop_back();
      return ws;
    }
    pool.push_back(std::make_unique<detail::Workspace>());
    return pool.back().get();
  }

  void release_ws(detail::Workspace* ws) {
    std::lock_guard<std::mutex> lk(pool_mu);
    pool_free.push_back(ws);
  }
};

namespace {

/// Build the PCT on first need. Only the Parallel algorithm reads it; it
/// is a pure function of the edge count (no counted ops), so laziness is
/// invisible to results and counters. Must run before solves fan out —
/// concurrent batch items share the context read-only.
void ensure_pct(detail::HsrContext& ctx, const HsrOptions& opt) {
  const auto n = static_cast<u32>(ctx.terrain->edge_count());
  if (opt.algorithm == Algorithm::Parallel && !ctx.pct && n > 0) ctx.pct.emplace(n);
}

/// One solve against a prepared context. `thread_scope` selects per-thread
/// counter attribution (exact when the caller runs the solve entirely on
/// one thread, i.e. inside a par::SerialRegion) over the global snapshot a
/// single-threaded driver uses.
HsrResult solve_on(detail::HsrContext& ctx, detail::Workspace& ws, const Counters& prepare_work,
                   double order_s, const HsrOptions& opt, bool thread_scope) {
  detail::Timer total;
  // Inside the timer: when this solve is the one that triggers the lazy
  // PCT build, its cost must show up in total_s (solve_batch pre-builds
  // before fan-out, making this a no-op there).
  ensure_pct(ctx, opt);
  HsrStats stats;
  stats.order_s = order_s;
  stats.n_edges = ctx.terrain->edge_count();
  stats.n_slivers = ctx.n_slivers;
  stats.depth_constraints = ctx.order.constraints;

  ws.arena.reset();  // recycle every block from the previous solve
  const Counters before = thread_scope ? work::local_snapshot() : work::snapshot();

  VisibilityMap map{0};
  switch (opt.algorithm) {
    case Algorithm::Reference: map = detail::run_reference(ctx, ws, stats); break;
    case Algorithm::Sequential: map = detail::run_sequential(ctx, ws, stats); break;
    case Algorithm::Parallel:
      map = detail::run_parallel(ctx, ws, stats, opt.collect_layer_stats, opt.phase2_oracle);
      break;
  }

  Counters delta = thread_scope ? work::local_snapshot() : work::snapshot();
  delta -= before;
  stats.work = prepare_work;
  stats.work += delta;
  stats.k_pieces = map.k_pieces();
  stats.k_crossings = map.k_crossings();
  stats.total_s = order_s + total.seconds();
  return HsrResult{std::move(map), std::move(stats)};
}

}  // namespace

HsrEngine::HsrEngine() : impl_(std::make_unique<Impl>()) {}
HsrEngine::~HsrEngine() = default;
HsrEngine::HsrEngine(HsrEngine&&) noexcept = default;
HsrEngine& HsrEngine::operator=(HsrEngine&&) noexcept = default;

void HsrEngine::prepare(const Terrain& t) {
  Impl& im = *impl_;
  work::reset();
  const work::Scope scope;
  detail::Timer order_timer;
  im.ctx = detail::make_context(t);
  im.order_s = order_timer.seconds();
  im.prepare_work = scope.delta();
  // Evict the previous terrain's derived state; keep the raw memory.
  im.ws.arena.reset();
  im.ws.env.clear();
  im.ws.inherited.clear();
  im.prepared = true;
}

bool HsrEngine::prepared() const noexcept { return impl_->prepared; }

const Terrain* HsrEngine::terrain() const noexcept {
  return impl_->prepared ? impl_->ctx.terrain : nullptr;
}

HsrResult HsrEngine::solve(const HsrOptions& opt) {
  Impl& im = *impl_;
  THSR_CHECK(im.prepared);
  const par::ScopedConfig cfg(opt.threads, opt.backend);
  // Contract: an explicitly requested backend must exist in this build —
  // silently running on a different executor would defeat the request.
  if (opt.backend) THSR_CHECK(cfg.backend_applied());
  work::reset();
  return solve_on(im.ctx, im.ws, im.prepare_work, im.order_s, opt, /*thread_scope=*/false);
}

HsrResult HsrEngine::solve_scoped(const HsrOptions& opt) {
  Impl& im = *impl_;
  THSR_CHECK(im.prepared);
  THSR_CHECK(opt.threads == 0 && !opt.backend);  // the caller owns the executor config
  const par::SerialRegion serial;  // whole solve on this thread: exact attribution
  struct Lease {                   // exception-safe return to the pool
    Impl& im;
    detail::Workspace* ws{im.acquire_ws()};
    ~Lease() { im.release_ws(ws); }
  } lease{im};
  return solve_on(im.ctx, *lease.ws, im.prepare_work, im.order_s, opt, /*thread_scope=*/true);
}

std::vector<HsrResult> HsrEngine::solve_batch(std::span<const HsrOptions> opts) {
  Impl& im = *impl_;
  THSR_CHECK(im.prepared);
  for (const HsrOptions& o : opts) {
    THSR_CHECK(o.threads == 0 && !o.backend);  // per-item executors are not representable
    ensure_pct(im.ctx, o);                     // before items share ctx read-only
  }

  std::vector<std::optional<HsrResult>> tmp(opts.size());
  par::fan_items(opts.size(), [&](std::size_t i) { tmp[i] = solve_scoped(opts[i]); });

  std::vector<HsrResult> out;
  out.reserve(opts.size());
  for (auto& r : tmp) out.push_back(std::move(*r));
  return out;
}

void HsrEngine::recycle(HsrResult&& r) {
  impl_->ws.map_storage = std::move(r.map).release();
}

u64 HsrEngine::arena_nodes() const noexcept { return impl_->ws.arena.node_count(); }

u64 HsrEngine::arena_blocks() const noexcept { return impl_->ws.arena.allocated(); }

u64 HsrEngine::arena_footprint_bytes() const noexcept {
  Impl& im = *impl_;
  u64 bytes = im.ws.arena.footprint_bytes();
  std::lock_guard<std::mutex> lk(im.pool_mu);
  for (const auto& ws : im.pool) bytes += ws->arena.footprint_bytes();
  return bytes;
}

double HsrEngine::prepare_seconds() const noexcept { return impl_->order_s; }

}  // namespace thsr
