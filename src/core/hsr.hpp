#pragma once
/// \file hsr.hpp
/// Public entry point: object-space hidden-surface removal for polyhedral
/// terrains, reproducing Gupta & Sen (IPPS 1998).
///
/// Three interchangeable algorithms compute the *identical* visibility map
/// (exact arithmetic; the equivalence is asserted by the test suite):
///
///  * Reference  — incremental flat-envelope scan; simple, independent code
///                 path used as the correctness oracle. O((n+k)·|profile|)
///                 worst case: not output-sensitive.
///  * Sequential — Reif–Sen-style edge-at-a-time processing over the
///                 persistent profile with polylog queries per edge:
///                 O((n+k)·polylog n), the paper's sequential baseline [19].
///  * Parallel   — the paper's algorithm: depth order via the separator
///                 substrate, PCT phase 1 (intermediate envelopes), PCT
///                 phase 2 (systolic prefix merging over persistent profile
///                 versions). Work O((n+k)·polylog n), span polylog; realized
///                 on a runtime-selectable fork-join backend — serial,
///                 OpenMP, or the native work-stealing pool (DESIGN.md
///                 section 1.1).
///
/// Example:
/// \code
///   thsr::GenOptions gen{.family = thsr::Family::Fbm, .grid = 64};
///   thsr::Terrain t = thsr::make_terrain(gen);
///   thsr::HsrResult r = thsr::hidden_surface_removal(t);
///   std::cout << r.stats.k_pieces << " visible pieces\n";
/// \endcode
///
/// `hidden_surface_removal()` is a one-shot shim over the session engine;
/// when solving the same terrain repeatedly, prepare a `thsr::HsrEngine`
/// (core/engine.hpp) once and reuse it — warm solves skip preprocessing
/// and recycle all working memory, with bit-identical results.

#include <optional>

#include "core/bounded.hpp"
#include "core/visibility.hpp"
#include "parallel/backend.hpp"
#include "parallel/work_depth.hpp"
#include "terrain/terrain.hpp"

namespace thsr {

enum class Algorithm { Reference, Sequential, Parallel };

const char* algorithm_name(Algorithm a) noexcept;

/// Phase-2 intersection oracle (Parallel algorithm only).
///  * Persistent       — the paper's design: shared persistent profile
///                       versions queried by pruned descent (default).
///  * MaterializedScan — ablation: materialize the inherited profile at
///                       every PCT node and scan it linearly; identical
///                       output, cost Theta(sum over nodes of |P_v|) — what
///                       the persistence is there to avoid (bench E12).
enum class Phase2Oracle { Persistent, MaterializedScan };

struct HsrOptions {
  Algorithm algorithm{Algorithm::Parallel};
  int threads{0};                 ///< 0 = current par::max_threads()
  bool collect_layer_stats{false};  ///< fill HsrStats::layers (Parallel only)
  Phase2Oracle phase2_oracle{Phase2Oracle::Persistent};
  /// Fork-join executor for this run; nullopt = current par::backend()
  /// (which honors the THSR_BACKEND environment override). The backend
  /// never changes the output or the counted work, only wall clock.
  std::optional<par::Backend> backend{};
  /// Resolution-bounded solve (core/bounded.hpp): prune map structure whose
  /// closed y-extent contains no sample ordinate of this lattice. The map
  /// may differ from the exact solve inside sample-free intervals (and per
  /// algorithm), but `raster::rasterize` at the budget's window/resolution
  /// is bitwise identical to the exact pipeline and the brute-force oracle
  /// (DESIGN.md section 1.12); k_pieces/treap_nodes/envelope work drop on
  /// sub-pixel-dense scenes. For a fixed algorithm the bounded map and its
  /// counters keep the backend/thread-count determinism contract. nullopt =
  /// exact solve, bit-identical to a build without this field.
  std::optional<PixelBudget> pixel_budget{};
};

/// Per-PCT-layer instrumentation (benches table_f1 / table_f3).
struct LayerStats {
  u32 layer{0};
  u32 nodes{0};              ///< PCT nodes processed at this layer
  u64 pieces_consumed{0};    ///< sum of |Π_left(v)| walked
  u64 events{0};             ///< above/below transitions found
  u64 splices{0};            ///< persistent range replacements
  u64 treap_nodes{0};        ///< nodes allocated during this layer
  u64 profile_pieces{0};     ///< sum over nodes of |P_v| (logical version sizes);
                             ///< what naive per-node profile copies would cost
};

struct HsrStats {
  double order_s{0}, phase1_s{0}, phase2_s{0}, total_s{0};
  u64 n_edges{0}, n_slivers{0};
  u64 k_pieces{0}, k_crossings{0};
  u64 depth_constraints{0};
  u64 phase1_pieces{0};  ///< total intermediate-envelope pieces (Σ over PCT)
  u64 treap_nodes{0};    ///< persistent nodes allocated over the whole run
  Counters work;         ///< operation counters for the run (work bound proxy)
  std::vector<LayerStats> layers;
};

struct HsrResult {
  VisibilityMap map;
  HsrStats stats;
};

/// Solve hidden-surface removal for `t` viewed from x = +infinity.
/// One-shot convenience over HsrEngine (core/engine.hpp): prepares a
/// temporary engine and runs a single solve.
/// \param t   the terrain; must outlive the call only
/// \param opt algorithm / oracle / executor selection (see HsrOptions)
/// \return the exact visibility map plus per-run statistics; identical —
///         bit for bit — for every algorithm, backend, and thread count
/// \throws std::bad_alloc only; invalid options trip THSR_CHECK.
/// Work O((n+k)·polylog n) for the output-sensitive algorithms
/// (DESIGN.md section 2); wall clock additionally divides by p on the
/// parallel path (Theorem 3.1's /p term).
HsrResult hidden_surface_removal(const Terrain& t, const HsrOptions& opt = {});

}  // namespace thsr
