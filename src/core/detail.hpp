#pragma once
/// \file detail.hpp
/// Shared implementation context for the HSR algorithms (internal header).

#include <chrono>
#include <optional>

#include "cg/profile_query.hpp"
#include "core/hsr.hpp"
#include "separator/depth_order.hpp"
#include "separator/separator_tree.hpp"

namespace thsr::detail {

struct Timer {
  std::chrono::steady_clock::time_point t0{std::chrono::steady_clock::now()};
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  }
};

/// Precomputed per-terrain context shared by all algorithms and cached by
/// HsrEngine across solves: the image-plane segment table (dummy entries
/// for slivers, which are never queried as segments), the front-to-back
/// depth order, and the PCT skeleton over it (a pure function of the edge
/// count). Everything here depends only on the terrain — never on the
/// algorithm, oracle, backend, or thread count of a particular solve.
struct HsrContext {
  const Terrain* terrain{nullptr};
  std::vector<Seg2> segs;
  std::vector<unsigned char> is_sliver;
  DepthOrder order;
  std::optional<SeparatorTree> pct;  ///< built lazily on the first Parallel solve
  u64 n_slivers{0};
};

HsrContext make_context(const Terrain& t);

/// Per-thread scratch for phase-2 node processing, reused across nodes,
/// layers, and solves: leaf-walk event buffers, the materialized-scan
/// oracle's flattened profile, and the phase-2 merge's per-piece event
/// lists and splice-run accumulator.
struct PhaseScratch {
  std::vector<TransitionEvent> events;
  std::vector<PieceData> flat;
  std::vector<std::vector<TransitionEvent>> merge_events;
  std::vector<int> merge_initial;
  std::vector<PieceData> merge_content;
};

/// Engine-owned reusable memory for one solve at a time. A fresh Workspace
/// is equivalent to the function-local buffers the algorithms used to
/// allocate per call; a warm one hands back the previous solve's arena
/// blocks and vector capacities, which is where the amortized-solve win of
/// the session engine comes from (bench micro_engine_reuse). Never shared
/// between concurrent solves — solve_batch gives every in-flight item its
/// own Workspace.
struct Workspace {
  PArena arena;                        ///< persistent nodes; reset() per solve
  std::vector<Envelope> env;           ///< phase-1 intermediate envelopes
  std::vector<ptreap::Ref> inherited;  ///< phase-2 inherited versions
  std::vector<unsigned char> used;     ///< phase-1 consumer marks
  PhaseScratch scratch;                ///< serial-path phase-2 scratch
  VisibilityMap::Storage map_storage;  ///< recycled output-piece buffers
};

/// Normalize a profile-edge id for output provenance (floor => none).
inline u32 provenance(u32 profile_edge) noexcept {
  return profile_edge == kFloorEdge ? kNoEdge : profile_edge;
}

/// Convert a transition walk over [a, b] into visible pieces of `edge`.
/// With `prune` (a bounded solve), pieces whose closed extent is sample-free
/// are dropped — they cover no raster sample (DESIGN.md section 1.12).
void emit_visible(u32 edge, const QY& a, const QY& b, int initial,
                  std::span<const TransitionEvent> events, VisibilityMap& map,
                  const BoundedPrune* prune = nullptr);

VisibilityMap run_reference(const HsrContext& ctx, Workspace& ws, HsrStats& stats,
                            const BoundedPrune* prune);
VisibilityMap run_sequential(const HsrContext& ctx, Workspace& ws, HsrStats& stats,
                             const BoundedPrune* prune);
VisibilityMap run_parallel(const HsrContext& ctx, Workspace& ws, HsrStats& stats,
                           bool layer_stats, Phase2Oracle oracle, const BoundedPrune* prune);

}  // namespace thsr::detail
