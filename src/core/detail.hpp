#pragma once
/// \file detail.hpp
/// Shared implementation context for the HSR algorithms (internal header).

#include <chrono>

#include "cg/profile_query.hpp"
#include "core/hsr.hpp"
#include "separator/depth_order.hpp"

namespace thsr::detail {

struct Timer {
  std::chrono::steady_clock::time_point t0{std::chrono::steady_clock::now()};
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  }
};

/// Precomputed per-run context shared by all algorithms: the image-plane
/// segment table (dummy entries for slivers, which are never queried as
/// segments) and the front-to-back depth order.
struct HsrContext {
  const Terrain* terrain{nullptr};
  std::vector<Seg2> segs;
  std::vector<unsigned char> is_sliver;
  DepthOrder order;
  u64 n_slivers{0};
};

HsrContext make_context(const Terrain& t);

/// Normalize a profile-edge id for output provenance (floor => none).
inline u32 provenance(u32 profile_edge) noexcept {
  return profile_edge == kFloorEdge ? kNoEdge : profile_edge;
}

/// Convert a transition walk over [a, b] into visible pieces of `edge`.
void emit_visible(u32 edge, const QY& a, const QY& b, int initial,
                  std::span<const TransitionEvent> events, VisibilityMap& map);

VisibilityMap run_reference(const HsrContext& ctx, HsrStats& stats);
VisibilityMap run_sequential(const HsrContext& ctx, HsrStats& stats);
VisibilityMap run_parallel(const HsrContext& ctx, HsrStats& stats, bool layer_stats,
                           Phase2Oracle oracle);

}  // namespace thsr::detail
