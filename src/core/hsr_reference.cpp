/// \file hsr_reference.cpp
/// Correctness-oracle algorithm: process edges front-to-back, keep the
/// current profile as a *flat* envelope, and clip every edge against it by a
/// direct linear scan. This is the textbook incremental algorithm sketched
/// in the paper's section 2, with none of the output-sensitive machinery —
/// an intentionally independent code path (no persistent treap, no oracle
/// descent) that the equivalence tests compare the real algorithms against.

#include <algorithm>

#include "core/detail.hpp"
#include "envelope/envelope.hpp"

namespace thsr::detail {
namespace {

// Emit the visible runs of s (edge e) against the flat envelope `env`,
// scanning the pieces that overlap [A, B].
void reference_edge(const Envelope& env, u32 e, const Seg2& s, std::span<const Seg2> segs,
                    VisibilityMap& map, const BoundedPrune* prune) {
  const QY A = QY::of(s.u0), B = QY::of(s.u1);

  int state = -1;
  bool at_start = true;
  QY open_y = A;
  EndpointKind open_k = EndpointKind::SegmentEnd;
  u32 open_o = kNoEdge;
  const auto to_above = [&](const QY& y, EndpointKind k, u32 o) {
    if (state == +1) return;
    state = +1;
    open_y = y;
    open_k = at_start ? EndpointKind::SegmentEnd : k;
    open_o = at_start ? kNoEdge : o;
  };
  const auto to_below = [&](const QY& y, EndpointKind k, u32 o) {
    if (state != +1) {
      state = -1;
      return;
    }
    // Bounded solve: a sample-free visible piece covers no raster sample.
    if (prune == nullptr || !prune->sample_free(open_y, y)) {
      map.add_piece(e, VisiblePiece{open_y, y, open_k, k, open_o, o});
    }
    state = -1;
  };

  const auto& ps = env.pieces();
  std::size_t i = static_cast<std::size_t>(
      std::partition_point(ps.begin(), ps.end(), [&](const EnvPiece& p) { return p.y1 <= A; }) -
      ps.begin());
  QY cur = A;
  while (cur < B) {
    if (i >= ps.size() || ps[i].y0 >= B) {
      to_above(cur, EndpointKind::Break, kNoEdge);  // trailing gap: nothing occludes
      at_start = false;
      cur = B;
      break;
    }
    const EnvPiece& p = ps[i];
    if (p.y0 > cur) {  // gap before piece i
      to_above(cur, EndpointKind::Break, kNoEdge);
      at_start = false;
      cur = p.y0;
      continue;
    }
    const QY end = qmin(p.y1, B);
    const Seg2& q = segs[p.edge];
    const int entry = cmp_value_near(s, q, cur, Side::After) > 0 ? +1 : -1;
    if (entry == +1) {
      to_above(cur, EndpointKind::Break, p.edge);
    } else {
      to_below(cur, EndpointKind::Break, p.edge);
    }
    at_start = false;
    if (auto cr = crossing_in(s, q, cur, end)) {
      if (state == +1) {
        to_below(*cr, EndpointKind::Crossing, p.edge);
      } else {
        to_above(*cr, EndpointKind::Crossing, p.edge);
      }
    }
    cur = end;
    if (cur == p.y1) ++i;
  }
  if (state == +1 && (prune == nullptr || !prune->sample_free(open_y, B))) {
    map.add_piece(e, VisiblePiece{open_y, B, open_k, EndpointKind::SegmentEnd, open_o, kNoEdge});
  }
}

SliverVisibility reference_sliver(const Envelope& env, const SliverInfo& sv,
                                  std::span<const Seg2> segs) {
  SliverVisibility out;
  out.visible = true;
  const QY y = QY::of(sv.y);
  for (const Side side : {Side::Before, Side::After}) {
    if (auto idx = env.piece_index_at(y, side)) {
      const u32 pe = env.piece(*idx).edge;
      (side == Side::Before ? out.blocking_before : out.blocking_after) = pe;
      if (cmp_value_vs_int(segs[pe], y, sv.z_hi) >= 0) out.visible = false;
    }
  }
  if (!out.visible) {
    out.blocking_before = out.blocking_after = kNoEdge;
  }
  return out;
}

}  // namespace

VisibilityMap run_reference(const HsrContext& ctx, Workspace& ws, HsrStats& stats,
                            const BoundedPrune* prune) {
  const Terrain& t = *ctx.terrain;
  VisibilityMap map{t.edge_count(), std::move(ws.map_storage)};
  Envelope profile;  // envelope of all non-sliver edges processed so far

  Timer phase;
  for (const u32 e : ctx.order.order) {
    if (ctx.is_sliver[e]) {
      map.set_sliver(e, reference_sliver(profile, t.sliver(e), ctx.segs));
      continue;
    }
    const Seg2& s = ctx.segs[e];
    reference_edge(profile, e, s, ctx.segs, map, prune);
    profile = merge_envelopes(profile, Envelope::of_segment(e, s), ctx.segs, nullptr, prune);
  }
  stats.phase2_s = phase.seconds();
  return map;
}

}  // namespace thsr::detail
