#include "stream/stream.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/engine.hpp"
#include "parallel/backend.hpp"
#include "support/check.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#define THSR_STREAM_RUSAGE 1
#endif

namespace thsr::stream {
namespace {

[[noreturn]] void fail(const std::string& msg) { throw std::runtime_error("stream: " + msg); }

/// The residency meter: every live pipeline buffer is charged here, the
/// peak is reported, and a nonzero budget turns the peak into a hard
/// fault — the enforcement behind the bench resident-bytes gate.
class Residency {
 public:
  explicit Residency(u64 budget) : budget_(budget) {}

  void add(u64 bytes) {
    cur_ += bytes;
    peak_ = std::max(peak_, cur_);
    if (budget_ != 0 && cur_ > budget_) {
      fail("resident bytes " + std::to_string(cur_) + " exceed the budget of " +
           std::to_string(budget_));
    }
  }
  void sub(u64 bytes) {
    THSR_DCHECK(bytes <= cur_);
    cur_ -= bytes;
  }
  u64 peak() const noexcept { return peak_; }

 private:
  u64 cur_{0}, peak_{0};
  u64 budget_;
};

u64 terrain_bytes(const Terrain& t) {
  return u64{t.vertex_count()} * sizeof(Vertex3) + u64{t.triangle_count()} * sizeof(Triangle) +
         u64{t.edge_count()} * sizeof(Edge);
}

u64 map_bytes(const VisibilityMap& m) {
  return u64{m.edge_slots()} * sizeof(std::vector<VisiblePiece>) +
         m.k_pieces() * sizeof(VisiblePiece);
}

/// One slab window in flight: rows, build, solve result, and the bytes it
/// currently has charged to the meter.
struct Slab {
  u32 index{0};
  u32 row_lo{0}, row_hi{0};  ///< grid rows loaded [row_lo, row_hi)
  i64 cut_lo{0}, cut_hi{0};  ///< owned sample ordinates [cut_lo, cut_hi)
  u64 tri_base{0};           ///< global id of the window's first triangle
  SlabBuild build;
  std::optional<HsrResult> result;
  u64 charged{0};
};

}  // namespace

void GridRowSource::read_rows(u32 row_lo, u32 row_hi, std::span<double> out) {
  THSR_CHECK(row_lo <= row_hi && row_hi <= g_->nrows);
  const std::size_t n = std::size_t{row_hi - row_lo} * g_->ncols;
  THSR_CHECK(out.size() >= n);
  std::copy_n(g_->values.begin() + std::size_t{row_lo} * g_->ncols, n, out.begin());
}

AscFileRowSource::AscFileRowSource(const std::string& path, bool prefer_mmap)
    : reader_(std::make_unique<AscRowReader>(path, prefer_mmap)) {}
AscFileRowSource::~AscFileRowSource() = default;
u32 AscFileRowSource::rows() const { return reader_->header().nrows; }
u32 AscFileRowSource::cols() const { return reader_->header().ncols; }
std::optional<double> AscFileRowSource::nodata() const { return reader_->header().nodata; }
void AscFileRowSource::read_rows(u32 row_lo, u32 row_hi, std::span<double> out) {
  reader_->read_rows(row_lo, row_hi, out);
}
void AscFileRowSource::reset() { reader_->reset(); }

StreamStats stream_solve(RowSource& src, const StreamOptions& opt, BandSink& sink) {
  THSR_CHECK(opt.resident_slabs >= 1);
  THSR_CHECK(opt.width >= 1 && opt.height >= 1 && opt.supersample >= 1);
  THSR_CHECK(u64{opt.width} * opt.supersample <= raster::kMaxRasterAxis);
  THSR_CHECK(u64{opt.height} * opt.supersample <= raster::kMaxRasterAxis);

  const u32 R = src.rows(), C = src.cols();
  if (R < 2 || C < 2) fail("grid too small to triangulate (need >= 2x2)");
  const u32 max_rows = max_window_rows(C);
  if (max_rows < 2) fail("grid of " + std::to_string(C) + " columns is too wide for the lattice");
  // A middle slab's window spans slab_rows + 2 grid rows (one carried row
  // below the cut, one shared row above); the derived default is the
  // largest slab that always fits the coordinate budget. Explicit values
  // are validated per window by build_rows.
  u32 slab_rows = opt.slab_rows;
  if (slab_rows == 0) slab_rows = std::max<u32>(1, std::min(max_rows - 2, R - 1));
  const u32 S = static_cast<u32>((u64{R} - 1 + slab_rows - 1) / slab_rows);

  StreamStats stats;
  Residency res(opt.resident_bytes_budget);
  const std::optional<double> nodata = src.nodata();

  // Quantized height range: pinned by the caller or measured by a prescan
  // pass (nothing retained but the running min/max).
  i64 z_lo = 0, z_hi = 0;
  if (opt.z_range) {
    z_lo = opt.z_range->first;
    z_hi = opt.z_range->second;
    if (z_lo > z_hi) fail("z_range is inverted");
  } else {
    std::vector<double> row(C);
    res.add(row.size() * sizeof(double));
    bool any = false;
    for (u32 r = 0; r < R; ++r) {
      src.read_rows(r, r + 1, row);
      ++stats.rows_read;
      for (const double v : row) {
        if (nodata && v == *nodata) continue;
        const i64 q = quantize_height(v, opt.lattice);
        z_lo = any ? std::min(z_lo, q) : q;
        z_hi = any ? std::max(z_hi, q) : q;
        any = true;
      }
    }
    res.sub(row.size() * sizeof(double));
    src.reset();
  }
  stats.z_lo = z_lo;
  stats.z_hi = z_hi;

  const raster::ImageWindow window = stream_window(C, R, z_lo, z_hi);
  stats.window = window;
  const i64 ystep = lattice_ystep(C);
  const u32 W = opt.width, H = opt.height, sup = opt.supersample;
  const std::size_t hs = std::size_t{H} * sup;
  stats.samples = u64{W} * sup * H * sup;

  raster::RasterOptions ropt;
  ropt.width = W;
  ropt.height = H;
  ropt.supersample = sup;
  ropt.window = window;  // never consulted by scan_band (window passed explicitly)

  // The whole run executes under one executor configuration; per-slab
  // solves and scans run scoped inside it (the ShardedEngine convention).
  const par::ScopedConfig cfg(opt.solve.threads, opt.solve.backend);
  if (opt.solve.backend) THSR_CHECK(cfg.backend_applied());
  HsrOptions slab_opt = opt.solve;
  slab_opt.threads = 0;
  slab_opt.backend.reset();

  // Sub-column carry across band boundaries: when a boundary splits a
  // pixel column's `sup` sub-columns, the already-scanned ones wait here
  // until the next band completes the pixel (empty whenever sup == 1).
  std::vector<u32> carry_ids;
  std::vector<double> carry_depths;
  u64 carry_charged = 0;
  u32 next_sub = 0;  // tiling cursor: every band must start exactly here

  // Two-row tail of the last loaded window: consecutive windows overlap
  // in exactly these rows, so the source is only ever read forward.
  std::vector<double> tail;
  u32 tail_row_lo = 0, tail_rows = 0;
  u64 tail_charged = 0;

  const u32 B = opt.resident_slabs;
  std::vector<std::unique_ptr<HsrEngine>> engines;
  std::vector<u64> engine_charged;
  u64 tri_base = 0;

  for (u32 g0 = 0; g0 < S; g0 += B) {
    const u32 gn = std::min(B, S - g0);
    while (engines.size() < gn) {
      engines.push_back(std::make_unique<HsrEngine>());
      engine_charged.push_back(0);
    }

    // Load, build, and prepare the group's windows sequentially.
    std::vector<Slab> group(gn);
    for (u32 gi = 0; gi < gn; ++gi) {
      Slab& sl = group[gi];
      sl.index = g0 + gi;
      const u32 r_lo = static_cast<u32>(std::min<u64>(u64{sl.index} * slab_rows, R - 1));
      const u32 r_hi = static_cast<u32>(std::min<u64>(u64{sl.index + 1} * slab_rows, R - 1));
      sl.cut_lo = ystep * i64{r_lo};
      sl.cut_hi = ystep * i64{r_hi};
      sl.row_lo = r_lo == 0 ? 0 : r_lo - 1;
      sl.row_hi = r_hi + 1;
      sl.tri_base = tri_base;

      const u32 wr = sl.row_hi - sl.row_lo;
      std::vector<double> vals(std::size_t{wr} * C);
      res.add(vals.size() * sizeof(double));
      u32 have = 0;
      if (tail_rows > 0 && tail_row_lo <= sl.row_lo && sl.row_lo < tail_row_lo + tail_rows) {
        const u32 off = sl.row_lo - tail_row_lo;
        have = std::min(tail_rows - off, wr);
        std::copy_n(tail.begin() + std::size_t{off} * C, std::size_t{have} * C, vals.begin());
      }
      if (have < wr) {
        src.read_rows(sl.row_lo + have, sl.row_hi,
                      std::span(vals).subspan(std::size_t{have} * C));
        stats.rows_read += sl.row_hi - (sl.row_lo + have);
      }
      const u32 keep = std::min<u32>(2, wr);
      res.sub(tail_charged);
      tail.assign(vals.end() - std::ptrdiff_t{keep} * C, vals.end());
      tail_charged = tail.size() * sizeof(double);
      res.add(tail_charged);
      tail_row_lo = sl.row_hi - keep;
      tail_rows = keep;

      sl.build = build_rows(C, sl.row_lo, sl.row_hi, vals, nodata, tri_base, opt.lattice);
      tri_base += sl.build.tri_count - sl.build.last_row_tris;
      if (sl.index + 1 == S) stats.triangles = sl.tri_base + sl.build.tri_count;
      res.sub(vals.size() * sizeof(double));
      vals = {};

      sl.charged = terrain_bytes(sl.build.terrain) + sl.build.global_tri.size() * sizeof(u32);
      res.add(sl.charged);
      if (!sl.build.empty()) engines[gi]->prepare(sl.build.terrain);
    }

    // Fan the group's solves — one scoped solve per engine, the same
    // shape for every budget, so counters cannot depend on B.
    par::fan_items(gn, [&](std::size_t gi) {
      Slab& sl = group[gi];
      if (!sl.build.empty()) sl.result = engines[gi]->solve_scoped(slab_opt);
    });
    for (u32 gi = 0; gi < gn; ++gi) {
      const u64 fp = engines[gi]->arena_footprint_bytes();
      if (fp > engine_charged[gi]) {
        res.add(fp - engine_charged[gi]);
        engine_charged[gi] = fp;
      }
      if (group[gi].result) {
        const u64 mb = map_bytes(group[gi].result->map);
        group[gi].charged += mb;
        res.add(mb);
      }
    }

    // Scan each slab's band, aggregate completed pixel columns, emit,
    // free — in slab order.
    for (u32 gi = 0; gi < gn; ++gi) {
      Slab& sl = group[gi];
      const u32 lo = raster::first_sub(window, W, sup, sl.cut_lo, /*strictly_greater=*/false);
      const u32 hi = sl.index + 1 == S
                         ? W * sup
                         : raster::first_sub(window, W, sup, sl.cut_hi, /*strictly_greater=*/false);
      THSR_CHECK(lo == next_sub);  // bands tile the image by construction
      next_sub = hi;

      // Rebased window: the slab's coordinates carry row_base = row_lo,
      // so shift the global window down by the exact same amount. Every
      // exact kernel is shift-invariant in y (dem_lattice.hpp).
      const i64 dy = ystep * i64{sl.row_lo};
      const raster::ImageWindow swin{window.y_lo - dy, window.y_hi - dy, window.z_lo, window.z_hi};
      const Terrain* tp = sl.build.empty() ? nullptr : &sl.build.terrain;
      const VisibilityMap* mp = sl.result ? &sl.result->map : nullptr;
      const std::vector<u32>* tmap = sl.build.empty() ? nullptr : &sl.build.global_tri;
      raster::BandScan scan = raster::scan_band(tp, mp, tmap, swin, ropt, lo, hi);
      const u64 scan_bytes =
          scan.ids.size() * sizeof(u32) + scan.depths.size() * sizeof(double);
      res.add(scan_bytes);

      const u64 band_crossings = scan.crossings, band_hits = scan.hit_samples;
      stats.crossings += scan.crossings;
      stats.hit_samples += scan.hit_samples;
      if (sl.result) {
        stats.work += sl.result->stats.work;
        stats.k_pieces += sl.result->stats.k_pieces;
      }

      // Free the solve state before aggregation: only the scanned samples
      // are needed from here on. sl.charged covers the terrain, the global
      // id map, and the visibility map in one figure.
      sl.result.reset();
      res.sub(sl.charged);
      sl.charged = 0;
      sl.build = SlabBuild{};

      // Prepend the carried sub-columns; the combined range is pixel
      // aligned on the left by the carry invariant.
      std::vector<u32> comb_ids = std::move(carry_ids);
      std::vector<double> comb_depths = std::move(carry_depths);
      carry_ids = {};
      carry_depths = {};
      comb_ids.insert(comb_ids.end(), scan.ids.begin(), scan.ids.end());
      comb_depths.insert(comb_depths.end(), scan.depths.begin(), scan.depths.end());
      res.add(scan_bytes);  // the combined copy, alongside the scan itself
      scan = raster::BandScan{};
      res.sub(scan_bytes);

      const u32 carry_n = static_cast<u32>(comb_ids.size() / hs) - (hi - lo);
      const u32 start_sub = lo - carry_n;
      THSR_CHECK(start_sub % sup == 0);
      const u32 pix_start = start_sub / sup;
      const u32 pix_end = hi / sup;

      if (pix_end > pix_start) {
        const u32 pw = pix_end - pix_start;
        raster::ImageRaster band;
        band.width = pw;
        band.height = H;
        band.supersample = sup;
        band.window = window;
        const std::size_t px = std::size_t{pw} * H;
        band.ids.assign(px, raster::kNoTriangle);
        band.depth.assign(px, 0.0f);
        band.coverage.assign(px, 0.0f);
        band.crossings = band_crossings;
        band.hit_samples = band_hits;
        res.add(px * (sizeof(u32) + 2 * sizeof(float)));
        for (u32 c = 0; c < pw; ++c) {
          raster::detail::aggregate_column(
              c, pw, H, sup, std::span(comb_ids).subspan(std::size_t{c} * sup * hs, sup * hs),
              std::span(comb_depths).subspan(std::size_t{c} * sup * hs, sup * hs), band.ids,
              band.depth, band.coverage);
        }
        band.samples = u64{pw} * sup * H * sup;
        sink.emit(pix_start, pix_end, band);
        ++stats.bands_emitted;
        res.sub(px * (sizeof(u32) + 2 * sizeof(float)));
      }

      // Retain the trailing partial pixel column as the next carry.
      const u32 new_carry = hi - pix_end * sup;
      res.sub(carry_charged);
      carry_ids.assign(comb_ids.end() - std::ptrdiff_t{new_carry} * hs, comb_ids.end());
      carry_depths.assign(comb_depths.end() - std::ptrdiff_t{new_carry} * hs, comb_depths.end());
      carry_charged =
          carry_ids.size() * sizeof(u32) + carry_depths.size() * sizeof(double);
      res.add(carry_charged);
      res.sub(scan_bytes);  // the combined copy retires
      ++stats.slabs;
    }
  }

  THSR_CHECK(next_sub == W * sup && carry_ids.empty());
  res.sub(tail_charged);
  res.sub(carry_charged);
  stats.peak_resident_bytes = res.peak();

#ifdef THSR_STREAM_RUSAGE
  rusage ru{};
  if (getrusage(RUSAGE_SELF, &ru) == 0) {
#if defined(__APPLE__)
    stats.max_rss_bytes = static_cast<u64>(ru.ru_maxrss);
#else
    stats.max_rss_bytes = static_cast<u64>(ru.ru_maxrss) * 1024;
#endif
  }
#endif
  return stats;
}

StreamStats stream_solve_asc(const std::string& path, const StreamOptions& opt, BandSink& sink) {
  AscFileRowSource src(path);
  return stream_solve(src, opt, sink);
}

}  // namespace thsr::stream
