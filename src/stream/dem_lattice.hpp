#pragma once
/// \file dem_lattice.hpp
/// The **streaming lattice**: the DEM-to-terrain embedding the out-of-core
/// pipeline uses (DESIGN.md section 1.11). It is the transpose of the
/// in-core `terrain_from_asc` convention — DEM *rows* run along the image
/// y axis and DEM *columns* along the depth (x) axis, the viewer due east
/// at x = +infinity:
///
///     x(cc)     = 8 * cc
///     y(rr, cc) = ystep * (rr - row_base) + 8 * cc,   ystep = 8*(cols+2)
///     z(rr, cc) = llround((h - z_offset) * z_scale)
///
/// Two properties make this the streaming shape:
///
/// 1. **Rows occupy disjoint y-ranges** (within a row consecutive samples
///    differ by 8; across rows by at least ystep - 8*(cols-1) = 24), so a
///    y-slab decomposition is exactly a *row band* — aligned with the
///    row-major order .asc payloads stream in. Geometry touching a y
///    ordinate q spans at most two consecutive cell rows (floor(q/ystep)
///    and its predecessor), so the slab owning samples [ystep*r_s,
///    ystep*r_{s+1}) needs only grid rows [max(0, r_s - 1), r_{s+1}] —
///    a bounded window however large the full grid is.
/// 2. **Coordinates are window-relative** (`row_base` = the window's first
///    grid row), so the section-5 / filter.hpp magnitude budget
///    (|coordinate| <= kMaxCoord = 2^21) constrains the *slab window*,
///    not the whole DEM: global row indices and the global image window
///    may run to ~1.4e17 cells while every exact predicate still operates
///    on small integers. The y-shift between windows is an exact integer
///    multiple of ystep, and every exact kernel (sample ordinates, segment
///    evaluation, plane depth) is shift-invariant in y, so rebased slabs
///    rasterize bit-identically to a monolithic build (tests/test_stream).
///
/// No edge is ever parallel to the viewing axis (dy != 0 throughout —
/// the role the in-core shear constant plays), and the (cc, rr) -> (x, y)
/// map is linear and invertible, so ground triangles stay non-degenerate
/// and ground positions distinct — `Terrain::from_triangles` invariants
/// hold by construction.
///
/// Triangle ids are **global**: cells are enumerated row-major over the
/// whole grid (two triangles per NODATA-free cell, the generators'
/// alternating diagonal by global (rr + cc) parity), and a window build
/// offsets its local ids by `tri_base` — the number of triangles in cell
/// rows above it. Streamed and monolithic rasters therefore agree on ids
/// bit-for-bit. The id space is u32 (raster::kNoTriangle reserved), which
/// caps total triangles at 2^32 - 2 — ~2.1e9 data cells, far beyond the
/// resident budget this pipeline targets per box.

#include <optional>
#include <span>
#include <vector>

#include "raster/raster.hpp"
#include "terrain/terrain.hpp"

namespace thsr::stream {

/// Ground spacing of the streaming lattice (the generators' spacing).
inline constexpr i64 kLatticeSpacing = 8;

/// y distance between consecutive DEM rows: 8*(cols+2), strictly clearing
/// a row's own y-extent (8*(cols-1)) so rows never interleave in y.
i64 lattice_ystep(u32 cols);

/// Largest grid-row count a single window may span before its rebased y
/// coordinates leave the exact-arithmetic budget (|y| <= kMaxCoord).
/// Streaming callers derive their default slab_rows from this; anything
/// larger is rejected with std::runtime_error at build time.
u32 max_window_rows(u32 cols);

/// Height quantization for the streaming path: fixed offset and scale
/// (never per-slab normalization — every slab and the monolithic
/// reference must quantize identically).
struct LatticeOptions {
  double z_offset{0.0};  ///< subtracted from each height before scaling
  double z_scale{1.0};   ///< multiplier applied before rounding
};

/// llround((v - z_offset) * z_scale); throws std::runtime_error when the
/// result is non-finite or outside [-kMaxCoord, kMaxCoord].
i64 quantize_height(double v, const LatticeOptions& opt);

/// One window's worth of terrain, built from a contiguous row range.
struct SlabBuild {
  Terrain terrain;              ///< empty (0 triangles) when the window is all NODATA
  std::vector<u32> global_tri;  ///< local -> global source triangle ids
  u32 row_lo{0}, row_hi{0};     ///< grid rows [row_lo, row_hi) this build covers
  u64 tri_count{0};             ///< triangles in the window
  u64 last_row_tris{0};         ///< of those, in the last cell row (row_hi-2):
                                ///< the rows the *next* overlapping window recounts
  bool empty() const { return tri_count == 0; }
};

/// Build grid rows [row_lo, row_hi) (row-major `values`, (row_hi-row_lo)
/// * cols samples) on the streaming lattice with row_base = row_lo.
/// `tri_base` is the global id of the window's first triangle — the total
/// triangle count of all cell rows above row_lo. Throws std::runtime_error
/// when the window exceeds max_window_rows(cols), a height leaves the
/// coordinate range, or the id space overflows u32.
SlabBuild build_rows(u32 cols, u32 row_lo, u32 row_hi, std::span<const double> values,
                     std::optional<double> nodata, u64 tri_base, const LatticeOptions& opt = {});

/// The whole grid as one terrain (row_base = 0, tri_base = 0): the
/// monolithic reference the property tests compare streamed output
/// against. Only valid while `rows` fits max_window_rows(cols) — the
/// in-core ceiling the streaming pipeline exists to lift.
Terrain terrain_from_rows(u32 cols, u32 rows, std::span<const double> values,
                          std::optional<double> nodata, const LatticeOptions& opt = {});

/// The global image window of a rows x cols grid on the streaming
/// lattice, with the quantized height range [z_lo, z_hi]: y covers
/// [0, ystep*(rows-1) + 8*(cols-1)], both extents padded (hi side) to odd
/// exactly like raster::default_window so no sample ordinate is an
/// integer. Streamed and reference rasterizations must both receive this
/// window explicitly (the reference's default_window would differ).
raster::ImageWindow stream_window(u32 cols, u32 rows, i64 z_lo, i64 z_hi);

}  // namespace thsr::stream
