#pragma once
/// \file sinks.hpp
/// BandSink implementations: where the streaming pipeline's finished
/// pixel bands go.
///
/// - MemoryBandSink assembles the full image in memory — the comparison
///   harness for the property tests and benches (only usable at sizes
///   where the whole raster fits; the out-of-core paths below are the
///   point of the pipeline).
/// - PgmCoverageBandSink splices coverage into one 16-bit PGM on disk via
///   io::PgmBandWriter (resident state: one band row buffer).
/// - AscTileBandSink writes per-band georeferenced depth tiles via
///   io::AscTileSet, NODATA where no surface is visible.
/// - NullBandSink discards bands (timing lanes).

#include <string>
#include <utility>
#include <vector>

#include "io/band_writer.hpp"
#include "stream/stream.hpp"

namespace thsr::stream {

/// Assembles emitted bands into one full ImageRaster and records each
/// band's [col_lo, col_hi) so tests can assert the tiling contract.
class MemoryBandSink final : public BandSink {
 public:
  MemoryBandSink(u32 width, u32 height, u32 supersample);
  void emit(u32 col_lo, u32 col_hi, const raster::ImageRaster& band) override;

  /// The assembled image (valid once the bands tiled [0, width)); window
  /// and counters are accumulated from the emitted bands.
  const raster::ImageRaster& image() const noexcept { return image_; }
  const std::vector<std::pair<u32, u32>>& bands() const noexcept { return bands_; }

 private:
  raster::ImageRaster image_;
  std::vector<std::pair<u32, u32>> bands_;
};

/// Streams per-pixel coverage (fraction of supersamples that hit) to a
/// 16-bit PGM: sample value = llround(coverage * maxval).
class PgmCoverageBandSink final : public BandSink {
 public:
  PgmCoverageBandSink(const std::string& path, u32 width, u32 height);
  void emit(u32 col_lo, u32 col_hi, const raster::ImageRaster& band) override;
  /// Validates gap-free coverage of the image (io::PgmBandWriter::finish).
  void finish() { writer_.finish(); }

 private:
  io::PgmBandWriter writer_;
};

/// Streams per-pixel depth (x of the visible surface) to `.asc` column
/// tiles; pixels with no visible triangle become NODATA.
class AscTileBandSink final : public BandSink {
 public:
  AscTileBandSink(std::string prefix, u32 width, u32 height, double cellsize = 1.0);
  void emit(u32 col_lo, u32 col_hi, const raster::ImageRaster& band) override;
  void finish() { tiles_.finish(); }
  const std::vector<std::string>& paths() const noexcept { return tiles_.paths(); }

 private:
  io::AscTileSet tiles_;
};

/// Discards every band (the pipeline still computes and validates them).
class NullBandSink final : public BandSink {
 public:
  void emit(u32, u32, const raster::ImageRaster&) override {}
};

}  // namespace thsr::stream
