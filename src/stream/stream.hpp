#pragma once
/// \file stream.hpp
/// Out-of-core streaming solve: hidden-surface removal + rasterization of
/// DEMs far larger than resident memory, with a bounded resident-slab
/// budget (DESIGN.md section 1.11).
///
/// The pipeline walks the grid north to south in **slab windows** on the
/// streaming lattice (dem_lattice.hpp): load a window's rows, build its
/// rebased terrain, `prepare()` + solve it with a recycled HsrEngine,
/// scan-convert its disjoint band of image sub-columns (raster::scan_band
/// against the *unstitched* slab map, exactly the rasterize_sharded
/// band-ownership rule), aggregate completed pixel columns, hand them to a
/// BandSink, free the slab, advance. At most `resident_slabs` windows are
/// ever materialized at once — the streaming analogue of Haverkort &
/// Toma's bounded-memory grid traversal — and every byte the pipeline
/// holds (row buffers, slab terrains, engine arenas, maps, band buffers)
/// is charged to a residency meter whose peak is reported and, when
/// `resident_bytes_budget` is set, *enforced*: exceeding it throws, so a
/// bench run completing at all is the resident-bytes gate
/// (bench/bench_stream.cpp).
///
/// **Determinism.** The emitted image — ids, depths, coverage — and the
/// work counters are bit-identical across backends, thread counts, and
/// every resident_slabs budget, and the image is bit-identical to the
/// monolithic solve (`terrain_from_rows` + `rasterize` under the same
/// `stream_window`) whenever the grid is small enough for both to run
/// (tests/test_stream.cpp). The budget controls *when* slabs are resident,
/// never *what* is computed: all budgets run the identical per-slab solves
/// and scans, fanned with par::fan_items in groups, so counters cannot
/// drift. Crossing/hit counters are attributed to the band that scanned
/// the sub-column, so their totals — though not their per-band split at
/// supersample > 1 — equal the monolithic rasterization's.
///
/// **Two passes.** Height quantization needs the global z range before the
/// first slab solves; unless StreamOptions::z_range pins it, a prescan
/// pass reads every row once (quantizing only, nothing retained) and the
/// source is reset() for the solve pass. Sources therefore make two
/// strictly-forward passes; within a pass rows are never re-read — the
/// two-row window overlap between consecutive slabs is carried in memory.

#include <memory>
#include <optional>
#include <span>
#include <string>
#include <utility>

#include "core/hsr.hpp"
#include "parallel/work_depth.hpp"
#include "raster/raster.hpp"
#include "stream/dem_lattice.hpp"
#include "terrain/asc_io.hpp"

namespace thsr::stream {

/// Row-major height feed for the pipeline. Implementations: GridRowSource
/// (an in-memory AscGrid — tests and the monolithic comparison) and
/// AscFileRowSource (an AscRowReader over an .asc file, optionally
/// memory-mapped — the out-of-core path). The pipeline reads each pass
/// strictly forward (read_rows ranges with non-decreasing, non-overlapping
/// row_lo) and calls reset() between passes.
class RowSource {
 public:
  virtual ~RowSource() = default;
  virtual u32 rows() const = 0;
  virtual u32 cols() const = 0;
  virtual std::optional<double> nodata() const = 0;
  /// Rows [row_lo, row_hi) into `out` ((row_hi - row_lo) * cols doubles).
  virtual void read_rows(u32 row_lo, u32 row_hi, std::span<double> out) = 0;
  /// Rewind for another pass.
  virtual void reset() = 0;
};

/// RowSource over a fully materialized AscGrid (not owned).
class GridRowSource final : public RowSource {
 public:
  explicit GridRowSource(const AscGrid& g) : g_(&g) {}
  u32 rows() const override { return g_->nrows; }
  u32 cols() const override { return g_->ncols; }
  std::optional<double> nodata() const override { return g_->nodata; }
  void read_rows(u32 row_lo, u32 row_hi, std::span<double> out) override;
  void reset() override {}

 private:
  const AscGrid* g_;
};

/// RowSource over an .asc file via AscRowReader (memory-mapped when the
/// platform allows). This is the path with **no total-size cap**: only
/// the reader's single-row buffer and the pipeline's slab windows are
/// ever resident.
class AscFileRowSource final : public RowSource {
 public:
  explicit AscFileRowSource(const std::string& path, bool prefer_mmap = true);
  ~AscFileRowSource() override;
  u32 rows() const override;
  u32 cols() const override;
  std::optional<double> nodata() const override;
  void read_rows(u32 row_lo, u32 row_hi, std::span<double> out) override;
  void reset() override;

 private:
  std::unique_ptr<AscRowReader> reader_;
};

struct StreamOptions {
  /// Grid rows per slab; 0 derives the largest count whose window fits
  /// the coordinate budget (max_window_rows). Values whose window would
  /// exceed the budget are rejected at run time.
  u32 slab_rows{0};
  /// Resident-slab budget B >= 1 (checked): slabs are processed in groups
  /// of B — B windows loaded and prepared sequentially, their solves
  /// fanned over the backend, then each band scanned, emitted, and freed
  /// in slab order. B trades resident bytes for solve parallelism; the
  /// output is identical for every B.
  u32 resident_slabs{1};
  /// When nonzero: throw std::runtime_error the moment tracked resident
  /// bytes would exceed this. 0 = track peak only.
  u64 resident_bytes_budget{0};
  LatticeOptions lattice{};
  /// Quantized height range [z_lo, z_hi] of the data; nullopt = prescan
  /// the source to measure it (the extra pass).
  std::optional<std::pair<i64, i64>> z_range{};
  u32 width{256};      ///< output pixels per row
  u32 height{192};     ///< output pixel rows
  u32 supersample{1};  ///< samples per pixel axis
  /// Per-slab solve configuration. threads/backend scope the *group* fan
  /// (ShardedEngine convention); the per-slab solves themselves run
  /// scoped on their workers.
  HsrOptions solve{};
};

/// Where finished pixel bands go. Bands arrive left to right, disjoint,
/// and tile [0, width) exactly (tests/test_stream.cpp asserts the
/// no-gap/no-overlap contract on every run).
class BandSink {
 public:
  virtual ~BandSink() = default;
  /// Pixel columns [col_lo, col_hi) of the final image. `band` has
  /// width == col_hi - col_lo, the full image height, and the global
  /// window; its counters cover the sub-columns scanned for this band.
  virtual void emit(u32 col_lo, u32 col_hi, const raster::ImageRaster& band) = 0;
};

struct StreamStats {
  u32 slabs{0};            ///< slab windows processed
  u32 bands_emitted{0};    ///< nonempty pixel bands handed to the sink
  u64 rows_read{0};        ///< grid rows parsed (both passes)
  u64 triangles{0};        ///< global triangle count
  u64 k_pieces{0};         ///< summed per-slab output size
  u64 crossings{0};        ///< visible-edge crossings scanned (== monolithic)
  u64 hit_samples{0};      ///< samples hitting a triangle (== monolithic)
  u64 samples{0};          ///< total image samples
  Counters work{};         ///< summed solve work counters (budget-invariant)
  u64 peak_resident_bytes{0};  ///< peak of the residency meter
  u64 max_rss_bytes{0};        ///< getrusage max RSS probe (informational;
                               ///< whole process, machine-dependent)
  raster::ImageWindow window{};  ///< the global window rasterized
  i64 z_lo{0}, z_hi{0};          ///< quantized height range used
};

/// Run the pipeline: solve + rasterize `src` into `sink`. Throws
/// std::runtime_error on malformed input, coordinate-budget or
/// resident-budget violations; THSR_CHECK rejects resident_slabs == 0 and
/// raster dimensions outside the kMaxRasterAxis cap.
StreamStats stream_solve(RowSource& src, const StreamOptions& opt, BandSink& sink);

/// Convenience: stream straight out of an .asc file.
StreamStats stream_solve_asc(const std::string& path, const StreamOptions& opt, BandSink& sink);

}  // namespace thsr::stream
