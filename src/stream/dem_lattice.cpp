#include "stream/dem_lattice.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>

#include "support/check.hpp"

namespace thsr::stream {
namespace {

constexpr u32 kNoVert = 0xffffffffu;

[[noreturn]] void fail(const std::string& msg) { throw std::runtime_error("dem_lattice: " + msg); }

}  // namespace

i64 lattice_ystep(u32 cols) { return kLatticeSpacing * (i64{cols} + 2); }

u32 max_window_rows(u32 cols) {
  THSR_CHECK(cols >= 2);
  const i64 x_extent = kLatticeSpacing * (i64{cols} - 1);
  if (x_extent > kMaxCoord) return 0;  // too wide for the lattice at any row count
  // Largest rows with ystep*(rows-1) + x_extent <= kMaxCoord.
  const i64 rows = (kMaxCoord - x_extent) / lattice_ystep(cols) + 1;
  return static_cast<u32>(std::min<i64>(rows, std::numeric_limits<u32>::max()));
}

i64 quantize_height(double v, const LatticeOptions& opt) {
  const double s = (v - opt.z_offset) * opt.z_scale;
  if (!std::isfinite(s) || std::abs(s) > static_cast<double>(kMaxCoord)) {
    fail("height " + std::to_string(v) +
         " leaves the coordinate range after scaling; lower LatticeOptions::z_scale");
  }
  return static_cast<i64>(std::llround(s));
}

SlabBuild build_rows(u32 cols, u32 row_lo, u32 row_hi, std::span<const double> values,
                     std::optional<double> nodata, u64 tri_base, const LatticeOptions& opt) {
  THSR_CHECK(cols >= 2 && row_lo < row_hi);
  const u32 rows = row_hi - row_lo;
  THSR_CHECK(values.size() >= std::size_t{rows} * cols);
  if (kLatticeSpacing * (i64{cols} - 1) > kMaxCoord) {
    fail("grid of " + std::to_string(cols) + " columns exceeds the lattice x budget");
  }
  if (rows > max_window_rows(cols)) {
    fail("window of " + std::to_string(rows) + " rows x " + std::to_string(cols) +
         " cols exceeds the coordinate budget (max " + std::to_string(max_window_rows(cols)) +
         " rows); lower the slab row count");
  }

  const i64 ystep = lattice_ystep(cols);
  const auto at = [&](u32 rr, u32 cc) { return values[std::size_t{rr} * cols + cc]; };
  const auto is_nodata = [&](u32 rr, u32 cc) { return nodata && at(rr, cc) == *nodata; };

  SlabBuild out;
  out.row_lo = row_lo;
  out.row_hi = row_hi;

  std::vector<u32> vid(std::size_t{rows} * cols, kNoVert);
  std::vector<Vertex3> verts;
  std::vector<Triangle> tris;
  for (u32 rr = 0; rr < rows; ++rr) {
    for (u32 cc = 0; cc < cols; ++cc) {
      if (is_nodata(rr, cc)) continue;
      const i64 x = kLatticeSpacing * cc;
      vid[std::size_t{rr} * cols + cc] = static_cast<u32>(verts.size());
      verts.push_back(Vertex3{x, ystep * rr + x, quantize_height(at(rr, cc), opt)});
    }
  }
  const auto v_at = [&](u32 rr, u32 cc) { return vid[std::size_t{rr} * cols + cc]; };
  for (u32 rr = 0; rr + 1 < rows; ++rr) {
    for (u32 cc = 0; cc + 1 < cols; ++cc) {
      const u32 v00 = v_at(rr, cc), v10 = v_at(rr + 1, cc);
      const u32 v01 = v_at(rr, cc + 1), v11 = v_at(rr + 1, cc + 1);
      if (v00 == kNoVert || v10 == kNoVert || v01 == kNoVert || v11 == kNoVert) continue;
      // Alternating diagonal by *global* cell parity: windows starting at
      // different rows must triangulate shared cells identically.
      if ((u64{row_lo} + rr + cc) % 2 == 0) {
        tris.push_back({v00, v10, v11});
        tris.push_back({v00, v11, v01});
      } else {
        tris.push_back({v00, v10, v01});
        tris.push_back({v10, v11, v01});
      }
      if (rr + 2 == rows) out.last_row_tris += 2;
    }
  }
  out.tri_count = tris.size();
  if (tri_base + out.tri_count >= u64{raster::kNoTriangle}) {
    fail("grid exceeds the u32 triangle id space (" + std::to_string(tri_base + out.tri_count) +
         " triangles)");
  }
  if (tris.empty()) return out;  // all-NODATA window: a background band

  // Pack away vertices only NODATA neighbours referenced.
  std::vector<u32> used(verts.size(), 0);
  for (const Triangle& tr : tris) used[tr.a] = used[tr.b] = used[tr.c] = 1;
  std::vector<u32> remap(verts.size(), 0);
  std::vector<Vertex3> packed;
  packed.reserve(verts.size());
  for (u32 i = 0; i < verts.size(); ++i) {
    if (used[i]) {
      remap[i] = static_cast<u32>(packed.size());
      packed.push_back(verts[i]);
    }
  }
  for (Triangle& tr : tris) tr = {remap[tr.a], remap[tr.b], remap[tr.c]};

  out.global_tri.resize(tris.size());
  for (u32 i = 0; i < tris.size(); ++i) out.global_tri[i] = static_cast<u32>(tri_base + i);
  out.terrain = Terrain::from_triangles(std::move(packed), std::move(tris));
  return out;
}

Terrain terrain_from_rows(u32 cols, u32 rows, std::span<const double> values,
                          std::optional<double> nodata, const LatticeOptions& opt) {
  SlabBuild b = build_rows(cols, 0, rows, values, nodata, /*tri_base=*/0, opt);
  if (b.empty()) fail("no NODATA-free cell to triangulate");
  return std::move(b.terrain);
}

raster::ImageWindow stream_window(u32 cols, u32 rows, i64 z_lo, i64 z_hi) {
  THSR_CHECK(cols >= 2 && rows >= 2 && z_lo <= z_hi);
  raster::ImageWindow w;
  w.y_lo = 0;
  w.y_hi = lattice_ystep(cols) * (i64{rows} - 1) + kLatticeSpacing * (i64{cols} - 1);
  w.z_lo = z_lo;
  w.z_hi = z_hi;
  // Same odd-extent padding as raster::default_window: no sample ordinate
  // of any resolution lands on the integer lattice.
  if ((w.y_hi - w.y_lo) % 2 == 0) w.y_hi += 1;
  if ((w.z_hi - w.z_lo) % 2 == 0) w.z_hi += 1;
  return w;
}

}  // namespace thsr::stream
