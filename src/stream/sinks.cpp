#include "stream/sinks.hpp"

#include <cmath>
#include <utility>

#include "support/check.hpp"

namespace thsr::stream {

MemoryBandSink::MemoryBandSink(u32 width, u32 height, u32 supersample) {
  image_.width = width;
  image_.height = height;
  image_.supersample = supersample;
  const std::size_t px = std::size_t{width} * height;
  image_.ids.assign(px, raster::kNoTriangle);
  image_.depth.assign(px, 0.0f);
  image_.coverage.assign(px, 0.0f);
  image_.samples = u64{width} * supersample * height * supersample;
}

void MemoryBandSink::emit(u32 col_lo, u32 col_hi, const raster::ImageRaster& band) {
  THSR_CHECK(col_lo < col_hi && col_hi <= image_.width);
  THSR_CHECK(band.width == col_hi - col_lo && band.height == image_.height);
  image_.window = band.window;
  for (u32 r = 0; r < band.height; ++r) {
    const std::size_t src = std::size_t{r} * band.width;
    const std::size_t dst = std::size_t{r} * image_.width + col_lo;
    for (u32 c = 0; c < band.width; ++c) {
      image_.ids[dst + c] = band.ids[src + c];
      image_.depth[dst + c] = band.depth[src + c];
      image_.coverage[dst + c] = band.coverage[src + c];
    }
  }
  image_.crossings += band.crossings;
  image_.hit_samples += band.hit_samples;
  bands_.emplace_back(col_lo, col_hi);
}

PgmCoverageBandSink::PgmCoverageBandSink(const std::string& path, u32 width, u32 height)
    : writer_(path, width, height) {}

void PgmCoverageBandSink::emit(u32 col_lo, u32 col_hi, const raster::ImageRaster& band) {
  std::vector<std::uint16_t> samples(band.coverage.size());
  for (std::size_t i = 0; i < samples.size(); ++i) {
    samples[i] = static_cast<std::uint16_t>(
        std::llround(static_cast<double>(band.coverage[i]) * 65535.0));
  }
  writer_.write_band(col_lo, col_hi, samples);
}

AscTileBandSink::AscTileBandSink(std::string prefix, u32 width, u32 height, double cellsize)
    : tiles_(std::move(prefix), width, height, /*xll=*/0.0, /*yll=*/0.0, cellsize) {}

void AscTileBandSink::emit(u32 col_lo, u32 col_hi, const raster::ImageRaster& band) {
  std::vector<double> values(band.ids.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    values[i] = band.ids[i] == raster::kNoTriangle ? tiles_.nodata()
                                                   : static_cast<double>(band.depth[i]);
  }
  tiles_.write_tile(col_lo, col_hi, values);
}

}  // namespace thsr::stream
