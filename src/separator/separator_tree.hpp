#pragma once
/// \file separator_tree.hpp
/// The balanced recursion tree over the depth-ordered edges: the skeleton of
/// the paper's Profile Computation Tree (PCT). Leaves are single edges in
/// front-to-back order; an internal node covers the contiguous rank range
/// [lo, hi) with children [lo, mid) and [mid, hi). Phase 1 computes an
/// intermediate envelope per node bottom-up; phase 2 walks the layers
/// top-down (paper sections 2.1 and 3).

#include <span>
#include <vector>

#include "geometry/exactq.hpp"

namespace thsr {

inline constexpr u32 kNoNode = 0xffffffffu;

struct PctNode {
  u32 lo{0}, hi{0};          ///< rank range [lo, hi)
  u32 left{kNoNode};         ///< child covering [lo, mid)
  u32 right{kNoNode};        ///< child covering [mid, hi)
  u32 mid() const noexcept { return lo + (hi - lo) / 2; }
  bool leaf() const noexcept { return hi - lo <= 1; }
};

class SeparatorTree {
 public:
  /// Build the balanced tree over n ordered leaves (n >= 1).
  explicit SeparatorTree(u32 n);

  u32 root() const noexcept { return root_; }
  u32 size() const noexcept { return static_cast<u32>(nodes_.size()); }
  u32 levels() const noexcept { return static_cast<u32>(by_level_.size()); }
  const PctNode& node(u32 id) const { return nodes_[id]; }

  /// Node ids at layer `l` (root = layer 0).
  std::span<const u32> level(u32 l) const { return by_level_[l]; }

 private:
  u32 build(u32 lo, u32 hi, u32 depth);

  std::vector<PctNode> nodes_;
  std::vector<std::vector<u32>> by_level_;
  u32 root_{kNoNode};
};

}  // namespace thsr
