#include "separator/separator_tree.hpp"

namespace thsr {

SeparatorTree::SeparatorTree(u32 n) {
  THSR_CHECK(n >= 1);
  nodes_.reserve(2 * static_cast<std::size_t>(n));
  root_ = build(0, n, 0);
}

u32 SeparatorTree::build(u32 lo, u32 hi, u32 depth) {
  const u32 id = static_cast<u32>(nodes_.size());
  nodes_.push_back(PctNode{lo, hi, kNoNode, kNoNode});
  if (by_level_.size() <= depth) by_level_.emplace_back();
  by_level_[depth].push_back(id);
  if (hi - lo > 1) {
    const u32 mid = lo + (hi - lo) / 2;
    const u32 l = build(lo, mid, depth + 1);
    const u32 r = build(mid, hi, depth + 1);
    nodes_[id].left = l;
    nodes_[id].right = r;
  }
  return id;
}

}  // namespace thsr
