#pragma once
/// \file depth_order.hpp
/// Front-to-back ordering of terrain edges (paper section 3, step 1).
///
/// Edge e is *in front of* f (e ≺ f) when some viewing ray meets e first;
/// equivalently, at some common ordinate y the ground projections satisfy
/// x_e(y) > x_f(y). Because ground projections of a terrain never properly
/// cross, the sign is constant over the common span, ≺ is a partial order,
/// and disjoint plane segments always admit a depth order. The paper obtains
/// a linear extension from the Tamassia–Vitter separator tree (Fact 1); this
/// repo substitutes a plane sweep that records O(n) x-adjacency constraints
/// (at edge insertion and removal events) plus a deterministic Kahn
/// topological sort — any linear extension yields the identical visibility
/// map (DESIGN.md section 4.2), which tests/test_order.cpp verifies against
/// the O(n^2) pairwise validator below.
///
/// Degenerate "sliver" edges (dy == 0) are ordered by a point insertion at
/// their ordinate: the nearest strictly-front neighbour precedes them, the
/// nearest strictly-behind neighbour follows them. Sliver-on-sliver
/// occlusion at an identical ordinate is outside the general-position
/// contract; the convention (resolve slivers against the non-sliver profile
/// only) is shared by all algorithms and pinned in tests/test_degenerate.cpp.

#include <vector>

#include "terrain/terrain.hpp"

namespace thsr {

struct DepthOrder {
  std::vector<u32> order;  ///< edge ids, front (closest to viewer) first
  std::vector<u32> rank;   ///< rank[edge id] = position in `order`
  u64 constraints{0};      ///< adjacency constraints recorded by the sweep
};

/// Compute a front-to-back linear extension for all edges of `t`.
/// Deterministic: ties in the topological sort break by smallest edge id.
DepthOrder compute_depth_order(const Terrain& t);

/// Exhaustive pairwise check (test helper): true iff `order` ranks every
/// strictly-comparable pair front-first. Examines at most `pair_limit`
/// pairs; returns true vacuously beyond the budget.
bool validate_depth_order(const Terrain& t, std::span<const u32> order,
                          std::size_t pair_limit = 4'000'000);

}  // namespace thsr
