#include "separator/depth_order.hpp"

#include <algorithm>
#include <map>
#include <queue>
#include <set>

#include "geometry/predicates.hpp"

namespace thsr {
namespace {

struct SweepState {
  i64 y{0};
  Side side{Side::After};
};

struct ActiveEdge {
  u32 id;
  Seg2 g;  // ground segment, v = x as a function of u = y
};

// Probe for heterogeneous lookups at the sliver ordinate.
struct XProbe {
  i64 x;
};

struct ActiveCmp {
  using is_transparent = void;
  const SweepState* st;

  bool operator()(const ActiveEdge& a, const ActiveEdge& b) const {
    if (a.id == b.id) return false;
    const int c = cmp_value_near(a.g, b.g, QY::of(st->y), st->side);
    if (c != 0) return c < 0;
    return a.id < b.id;  // collinear supporting lines: disjoint spans, id-stable
  }
  bool operator()(const ActiveEdge& a, const XProbe& p) const {
    return cmp_value_vs_int(a.g, QY::of(st->y), p.x) < 0;
  }
  bool operator()(const XProbe& p, const ActiveEdge& a) const {
    return cmp_value_vs_int(a.g, QY::of(st->y), p.x) > 0;
  }
};

}  // namespace

DepthOrder compute_depth_order(const Terrain& t) {
  const auto n = static_cast<u32>(t.edge_count());

  struct Event {
    i64 y;
    int kind;  // 0 = remove, 1 = sliver point, 2 = insert
    u32 edge;
  };
  std::vector<Event> events;
  events.reserve(2 * n);
  for (u32 e = 0; e < n; ++e) {
    if (t.is_sliver(e)) {
      events.push_back({t.sliver(e).y, 1, e});
    } else {
      const Seg2 g = t.ground_segment(e);
      events.push_back({g.u0, 2, e});
      events.push_back({g.u1, 0, e});
    }
  }
  std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    if (a.y != b.y) return a.y < b.y;
    if (a.kind != b.kind) return a.kind < b.kind;
    return a.edge < b.edge;
  });

  SweepState st;
  std::set<ActiveEdge, ActiveCmp> active{ActiveCmp{&st}};

  // Constraint arcs u -> v meaning "u precedes v" (u in front of v).
  std::vector<std::pair<u32, u32>> arcs;
  arcs.reserve(4 * n);
  const auto arc = [&](u32 front, u32 back) { arcs.emplace_back(front, back); };

  for (std::size_t i = 0; i < events.size();) {
    const i64 y = events[i].y;
    st.y = y;

    // Phase 0: removals, compared on the Before side (consistent with the
    // set order established while the edges were interior-active).
    st.side = Side::Before;
    while (i < events.size() && events[i].y == y && events[i].kind == 0) {
      const u32 e = events[i].edge;
      auto it = active.find(ActiveEdge{e, t.ground_segment(e)});
      THSR_CHECK(it != active.end());
      auto nxt = active.erase(it);
      if (nxt != active.begin() && nxt != active.end()) {
        arc(nxt->id, std::prev(nxt)->id);  // newly adjacent: bigger-x in front
      }
      ++i;
    }

    // Phase 1: sliver point events against interior-spanning actives.
    while (i < events.size() && events[i].y == y && events[i].kind == 1) {
      const u32 e = events[i].edge;
      const SliverInfo s = t.sliver(e);
      auto front_it = active.upper_bound(XProbe{s.x_hi});  // first strictly in front
      if (front_it != active.end()) arc(front_it->id, e);
      auto back_it = active.lower_bound(XProbe{s.x_lo});  // first not strictly behind
      if (back_it != active.begin()) arc(e, std::prev(back_it)->id);
      ++i;
    }

    // Phase 2: insertions, compared on the After side.
    st.side = Side::After;
    while (i < events.size() && events[i].y == y && events[i].kind == 2) {
      const u32 e = events[i].edge;
      auto [it, inserted] = active.insert(ActiveEdge{e, t.ground_segment(e)});
      THSR_CHECK(inserted);
      if (std::next(it) != active.end()) arc(std::next(it)->id, e);
      if (it != active.begin()) arc(e, std::prev(it)->id);
      ++i;
    }
  }
  THSR_CHECK(active.empty());

  // Deterministic Kahn topological sort (min edge id first).
  std::vector<std::vector<u32>> out(n);
  std::vector<u32> indeg(n, 0);
  {
    std::sort(arcs.begin(), arcs.end());
    arcs.erase(std::unique(arcs.begin(), arcs.end()), arcs.end());
    for (auto [u, v] : arcs) {
      out[u].push_back(v);
      ++indeg[v];
    }
  }
  DepthOrder d;
  d.constraints = arcs.size();
  d.order.reserve(n);
  std::priority_queue<u32, std::vector<u32>, std::greater<>> ready;
  for (u32 e = 0; e < n; ++e) {
    if (indeg[e] == 0) ready.push(e);
  }
  while (!ready.empty()) {
    const u32 e = ready.top();
    ready.pop();
    d.order.push_back(e);
    for (u32 v : out[e]) {
      if (--indeg[v] == 0) ready.push(v);
    }
  }
  THSR_CHECK(d.order.size() == n);  // acyclic by the terrain depth-order theorem
  d.rank.assign(n, 0);
  for (u32 r = 0; r < n; ++r) d.rank[d.order[r]] = r;
  return d;
}

bool validate_depth_order(const Terrain& t, std::span<const u32> order, std::size_t pair_limit) {
  const auto n = static_cast<u32>(t.edge_count());
  THSR_CHECK(order.size() == n);
  std::vector<u32> rank(n);
  for (u32 r = 0; r < n; ++r) rank[order[r]] = r;

  std::size_t budget = pair_limit;
  for (u32 e = 0; e < n; ++e) {
    for (u32 f = e + 1; f < n; ++f) {
      if (budget-- == 0) return true;
      const bool se = t.is_sliver(e), sf = t.is_sliver(f);
      if (se && sf) continue;  // outside the general-position contract
      if (!se && !sf) {
        const Seg2 a = t.ground_segment(e), b = t.ground_segment(f);
        const i64 lo = std::max(a.u0, b.u0), hi = std::min(a.u1, b.u1);
        if (lo >= hi) continue;  // no common interior: incomparable
        const QY mid(i128{lo} + hi, 2);
        const int c = cmp_value_at(a, b, mid);  // sign(x_e - x_f) on the overlap
        if (c > 0 && !(rank[e] < rank[f])) return false;
        if (c < 0 && !(rank[f] < rank[e])) return false;
      } else {
        const u32 sl = se ? e : f, ed = se ? f : e;
        const SliverInfo s = t.sliver(sl);
        const Seg2 g = t.ground_segment(ed);
        if (!(g.u0 < s.y && s.y < g.u1)) continue;  // interior span only
        const QY yq = QY::of(s.y);
        if (cmp_value_vs_int(g, yq, s.x_hi) > 0 && !(rank[ed] < rank[sl])) return false;
        if (cmp_value_vs_int(g, yq, s.x_lo) < 0 && !(rank[sl] < rank[ed])) return false;
      }
    }
  }
  return true;
}

}  // namespace thsr
