#include "raster/raster.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace thsr::raster {
namespace {

/// Ground-plane side of the y-ascending edge p->q that point w lies on:
/// negative = the near (+x, toward-the-viewer) side. Exact in i128
/// (|coordinates| <= 2^22 after differencing).
int ground_side(const Vertex3& p, const Vertex3& q, const Vertex3& w) {
  const i128 l = i128{q.x - p.x} * (w.y - p.y) - i128{q.y - p.y} * (w.x - p.x);
  return sgn128(l);
}

/// Per-edge adjacent triangles split by ground side (relative to the
/// y-ascending edge orientation): the *near* triangle is the one a ray
/// leaves when the visible surface rises past the edge. Sliver edges
/// (dy == 0) keep both slots empty — no column ever crosses them.
struct Adjacency {
  std::vector<u32> near_tri, far_tri;  ///< kNoTriangle when absent
};

Adjacency build_adjacency(const Terrain& t) {
  Adjacency adj;
  adj.near_tri.assign(t.edge_count(), kNoTriangle);
  adj.far_tri.assign(t.edge_count(), kNoTriangle);
  const std::span<const Edge> edges = t.edges();
  const auto edge_id = [&](u32 a, u32 b) {
    const Edge e{std::min(a, b), std::max(a, b)};
    const auto it = std::lower_bound(edges.begin(), edges.end(), e);
    THSR_DCHECK(it != edges.end() && *it == e);
    return static_cast<u32>(it - edges.begin());
  };
  for (u32 ti = 0; ti < t.triangle_count(); ++ti) {
    const Triangle& tr = t.triangles()[ti];
    const u32 vs[3] = {tr.a, tr.b, tr.c};
    for (int k = 0; k < 3; ++k) {
      const u32 va = vs[k], vb = vs[(k + 1) % 3], vc = vs[(k + 2) % 3];
      const Vertex3 &pa = t.vertex(va), &pb = t.vertex(vb);
      if (pa.y == pb.y) continue;  // sliver edge
      const Vertex3 &p = pa.y < pb.y ? pa : pb, &q = pa.y < pb.y ? pb : pa;
      const int side = ground_side(p, q, t.vertex(vc));
      THSR_DCHECK(side != 0);  // non-degenerate ground triangle
      (side < 0 ? adj.near_tri : adj.far_tri)[edge_id(va, vb)] = ti;
    }
  }
  return adj;
}

/// Exact value of segment `s` (u-ascending) at abscissa u = p/q, as a QY
/// over denominator (u1-u0)*q. Peak magnitude ~2^57 / 2^35 with the
/// kMaxRasterAxis sampling cap — comfortably inside i128 comparisons.
QY seg_value_at(const Seg2& s, const QY& u) {
  const i128 num =
      mul128(i128{s.v0} * (s.u1 - s.u0), u.q) + mul128(s.v1 - s.v0, u.p - mul128(s.u0, u.q));
  const i128 den = mul128(s.u1 - s.u0, u.q);
  return QY(num, den);
}

/// A visible edge crossing the current image column at (z, x): the exact
/// breakpoints of the column's visible staircase.
struct Crossing {
  QY z, x;
  u32 edge{0};
};

bool crossing_less(const Crossing& a, const Crossing& b) {
  if (const int c = cmp(a.z, b.z); c != 0) return c < 0;
  if (const int c = cmp(a.x, b.x); c != 0) return c > 0;  // nearer first at a tie
  return a.edge < b.edge;
}

/// One rasterization source: a terrain + (unstitched) map owning a
/// contiguous band of image sub-columns. Monolithic rasterization uses a
/// single set covering everything; the sharded path one set per slab.
struct ColumnSet {
  const Terrain* terrain{nullptr};       ///< null = the band is background
  const VisibilityMap* map{nullptr};
  const std::vector<u32>* tri_map{nullptr};  ///< local->source tri ids; null = identity
  u32 sub_lo{0}, sub_hi{0};              ///< owned sub-column range [lo, hi)
  Adjacency adj;
  std::vector<std::vector<u32>> buckets; ///< candidate edges per owned sub-column
};

/// Bucket every visible piece of `cs` into the sub-columns its y-interval
/// covers (binary search on the exact sample ordinates). Serial and
/// deterministic: buckets come out sorted by edge id.
void fill_buckets(ColumnSet& cs, const ImageWindow& w, u32 width, u32 s) {
  cs.buckets.assign(cs.sub_hi - cs.sub_lo, {});
  if (cs.terrain == nullptr || cs.map == nullptr) return;
  const auto first_sub = [&](const QY& y, bool strictly_greater) {
    u32 lo = cs.sub_lo, hi = cs.sub_hi;
    while (lo < hi) {
      const u32 mid = lo + (hi - lo) / 2;
      const int c = cmp(sample_y(w, width, s, mid), y);
      if (c < 0 || (strictly_greater && c == 0)) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  };
  for (u32 e = 0; e < cs.terrain->edge_count(); ++e) {
    if (cs.terrain->is_sliver(e)) continue;
    for (const VisiblePiece& p : cs.map->pieces(e)) {
      const u32 i0 = first_sub(p.y0, /*strictly_greater=*/false);
      const u32 i1 = first_sub(p.y1, /*strictly_greater=*/true);
      for (u32 i = i0; i < i1; ++i) cs.buckets[i - cs.sub_lo].push_back(e);
    }
  }
}

/// Per-task scratch reused across the sub-columns of one output column.
struct ColumnScratch {
  std::vector<Crossing> crossings;
  std::vector<u32> sub_ids;
  std::vector<double> sub_depths;
};

/// Scan-convert sub-column `i` (owned by `cs`) into the height*s-sample
/// spans `out_ids`/`out_depths`: gather visible crossings, sort by
/// (z, nearness), then sweep the sample ordinates bottom-up attributing
/// each sample to the near-side triangle of its upper crossing.
void scan_sub_column(const ColumnSet& cs, const ImageWindow& w, u32 width, u32 height, u32 s,
                     u32 i, std::vector<Crossing>& cr, std::span<u32> out_ids,
                     std::span<double> out_depths, u64& crossings_out, u64& hits_out) {
  const u32 hs = height * s;
  const QY y0 = sample_y(w, width, s, i);
  cr.clear();
  for (const u32 e : cs.buckets[i - cs.sub_lo]) {
    cr.push_back(Crossing{seg_value_at(cs.terrain->image_segment(e), y0),
                          seg_value_at(cs.terrain->ground_segment(e), y0), e});
  }
  std::sort(cr.begin(), cr.end(), crossing_less);
  // Two abutting pieces of one edge can both cover a sample landing on
  // their junction; the duplicates are identical and adjacent after the
  // sort.
  cr.erase(std::unique(cr.begin(), cr.end(),
                       [](const Crossing& a, const Crossing& b) { return a.edge == b.edge; }),
           cr.end());
  crossings_out += cr.size();

  u32 kc = 0;  // first crossing with z >= the current sample ordinate
  for (u32 j = hs; j-- > 0;) {  // bottom row upward: z ascending
    const QY z0 = sample_z(w, height, s, j);
    while (kc < cr.size() && cmp(cr[kc].z, z0) < 0) ++kc;
    u32 tri = kNoTriangle;
    double dep = 0.0;
    if (kc < cr.size()) {
      const u32 local = cs.adj.near_tri[cr[kc].edge];
      if (local != kNoTriangle) {
        const auto d = plane_depth(*cs.terrain, local, y0, z0);
        dep = d ? *d : cr[kc].x.approx();  // edge-on plane: depth of the crossing
        tri = cs.tri_map != nullptr ? (*cs.tri_map)[local] : local;
        ++hits_out;
      }
    }
    out_ids[j] = tri;
    out_depths[j] = dep;
  }
}

void check_options(const RasterOptions& opt) {
  THSR_CHECK(opt.width >= 1 && opt.height >= 1 && opt.supersample >= 1);
  THSR_CHECK(u64{opt.width} * opt.supersample <= kMaxRasterAxis);
  THSR_CHECK(u64{opt.height} * opt.supersample <= kMaxRasterAxis);
}

/// The shared engine behind rasterize / rasterize_sharded: fans output
/// columns over the fork-join backend; every column writes a disjoint
/// slice of the output and its own stats slot, so the image and the
/// counters are bit-identical across backends and thread counts.
ImageRaster rasterize_impl(std::vector<ColumnSet> sets, const RasterOptions& opt,
                           const ImageWindow& win) {
  check_options(opt);
  THSR_CHECK(win.y_lo < win.y_hi && win.z_lo < win.z_hi);
  const par::ScopedConfig cfg(opt.threads, opt.backend);
  if (opt.backend) THSR_CHECK(cfg.backend_applied());

  const u32 W = opt.width, H = opt.height, s = opt.supersample;
  for (ColumnSet& cs : sets) {
    if (cs.terrain != nullptr) {
      THSR_CHECK(cs.map != nullptr && cs.map->edge_slots() == cs.terrain->edge_count());
      cs.adj = build_adjacency(*cs.terrain);
    }
    fill_buckets(cs, win, W, s);
  }

  ImageRaster out;
  out.width = W;
  out.height = H;
  out.supersample = s;
  out.window = win;
  const std::size_t px = std::size_t{W} * H;
  out.ids.assign(px, kNoTriangle);
  out.depth.assign(px, 0.0f);
  out.coverage.assign(px, 0.0f);
  out.samples = u64{W} * s * H * s;

  std::vector<u64> col_crossings(W, 0), col_hits(W, 0);
  par::fan_items(W, [&](std::size_t c) {
    ColumnScratch sc;
    sc.sub_ids.assign(std::size_t{s} * H * s, kNoTriangle);
    sc.sub_depths.assign(std::size_t{s} * H * s, 0.0);
    u64 crossings = 0, hits = 0;
    for (u32 k = 0; k < s; ++k) {
      const u32 i = static_cast<u32>(c) * s + k;
      const ColumnSet* owner = nullptr;
      for (const ColumnSet& cs : sets) {
        if (cs.sub_lo <= i && i < cs.sub_hi) {
          owner = &cs;
          break;
        }
      }
      if (owner != nullptr && owner->terrain != nullptr) {
        const std::size_t hs = std::size_t{H} * s;
        scan_sub_column(*owner, win, W, H, s, i, sc.crossings,
                        std::span(sc.sub_ids).subspan(k * hs, hs),
                        std::span(sc.sub_depths).subspan(k * hs, hs), crossings, hits);
      }
    }
    detail::aggregate_column(static_cast<u32>(c), W, H, s, sc.sub_ids, sc.sub_depths, out.ids,
                             out.depth, out.coverage);
    col_crossings[c] = crossings;
    col_hits[c] = hits;
  });
  for (u32 c = 0; c < W; ++c) {
    out.crossings += col_crossings[c];
    out.hit_samples += col_hits[c];
  }
  return out;
}

}  // namespace

ImageWindow default_window(const Terrain& t) {
  ImageWindow w;
  w.y_lo = t.min_y();
  w.y_hi = t.max_y();
  if (t.vertex_count() > 0) {
    w.z_lo = w.z_hi = t.vertex(0).z;
    for (const Vertex3& v : t.vertices()) {
      w.z_lo = std::min(w.z_lo, v.z);
      w.z_hi = std::max(w.z_hi, v.z);
    }
  }
  // Odd extents: sample ordinates get an odd numerator over an even
  // denominator and can never be integers, so no column or row ever runs
  // through a vertex or along a sliver.
  if ((w.y_hi - w.y_lo) % 2 == 0) w.y_hi += 1;
  if ((w.z_hi - w.z_lo) % 2 == 0) w.z_hi += 1;
  return w;
}

PixelBudget pixel_budget(const Terrain& t, const RasterOptions& opt) {
  THSR_CHECK(opt.width >= 1 && opt.supersample >= 1);
  THSR_CHECK(u64{opt.width} * opt.supersample <= kMaxRasterAxis);
  const ImageWindow win = opt.window ? *opt.window : default_window(t);
  THSR_CHECK(win.y_lo < win.y_hi);
  return PixelBudget{win.y_lo, win.y_hi, opt.width * opt.supersample};
}

QY sample_y(const ImageWindow& w, u32 width, u32 supersample, u32 i) {
  const i64 den = 2 * i64{width} * supersample;
  const i128 num = i128{w.y_lo} * den + i128{2 * i64{i} + 1} * (w.y_hi - w.y_lo);
  return QY(num, den);
}

QY sample_z(const ImageWindow& w, u32 height, u32 supersample, u32 j) {
  const i64 den = 2 * i64{height} * supersample;
  const i128 num = i128{w.z_hi} * den - i128{2 * i64{j} + 1} * (w.z_hi - w.z_lo);
  return QY(num, den);
}

std::optional<double> plane_depth(const Terrain& t, u32 tri, const QY& y, const QY& z) {
  const Triangle& tr = t.triangles()[tri];
  const Vertex3 &p0 = t.vertex(tr.a), &p1 = t.vertex(tr.b), &p2 = t.vertex(tr.c);
  const i128 ux = p1.x - p0.x, uy = p1.y - p0.y, uz = p1.z - p0.z;
  const i128 vx = p2.x - p0.x, vy = p2.y - p0.y, vz = p2.z - p0.z;
  const i128 a = uy * vz - uz * vy;  // plane normal (a, b, c)
  const i128 b = uz * vx - ux * vz;
  const i128 c = ux * vy - uy * vx;
  if (a == 0) return std::nullopt;  // plane parallel to the viewing axis
  // x = p0.x + (-b*(y - p0.y) - c*(z - p0.z)) / a, over denominator
  // a * q_y * q_z; peak ~2^95 / 2^71 under the kMaxRasterAxis cap.
  const i128 dy = y.p - mul128(y.q, p0.y);  // (y - p0.y) * q_y
  const i128 dz = z.p - mul128(z.q, p0.z);
  const i128 num = -mul128(mul128(b, dy), z.q) - mul128(mul128(c, dz), y.q);
  const i128 den = mul128(mul128(a, y.q), z.q);
  return static_cast<double>(p0.x) + static_cast<double>(num) / static_cast<double>(den);
}

ImageRaster rasterize(const Terrain& t, const VisibilityMap& m, const RasterOptions& opt) {
  check_options(opt);
  THSR_CHECK(m.edge_slots() == t.edge_count());
  const ImageWindow win = opt.window ? *opt.window : default_window(t);
  std::vector<ColumnSet> sets(1);
  sets[0].terrain = &t;
  sets[0].map = &m;
  sets[0].sub_lo = 0;
  sets[0].sub_hi = opt.width * opt.supersample;
  return rasterize_impl(std::move(sets), opt, win);
}

ImageRaster rasterize_sharded(const shard::ShardPlan& plan,
                              std::span<const VisibilityMap* const> slab_maps,
                              const RasterOptions& opt) {
  check_options(opt);
  THSR_CHECK(plan.source != nullptr && slab_maps.size() == plan.slabs.size());
  const ImageWindow win = opt.window ? *opt.window : default_window(*plan.source);
  // The slab owning sub-column i is the unique s with cuts[s] <= y_i <
  // cuts[s+1] (last window closed) — the shard owner rule over the sample
  // ordinates. Columns outside [cuts.front(), cuts.back()] have no owner
  // and stay background, exactly as no visible piece reaches them
  // monolithically.
  std::vector<ColumnSet> sets;
  const std::size_t S = plan.slabs.size();
  for (std::size_t s = 0; s < S; ++s) {
    const u32 lo = first_sub(win, opt.width, opt.supersample, plan.cuts[s],
                             /*strictly_greater=*/false);
    const u32 hi = s + 1 < S ? first_sub(win, opt.width, opt.supersample, plan.cuts[s + 1],
                                         /*strictly_greater=*/false)
                             : first_sub(win, opt.width, opt.supersample, plan.cuts[s + 1],
                                         /*strictly_greater=*/true);
    if (lo >= hi) continue;  // no sample ordinate falls in this slab
    ColumnSet cs;
    if (slab_maps[s] != nullptr) {
      cs.terrain = &plan.slabs[s].terrain;
      cs.map = slab_maps[s];
      cs.tri_map = &plan.slabs[s].global_tri;
    }
    cs.sub_lo = lo;
    cs.sub_hi = hi;
    sets.push_back(std::move(cs));
  }
  return rasterize_impl(std::move(sets), opt, win);
}

u32 first_sub(const ImageWindow& w, u32 width, u32 supersample, i64 cut, bool strictly_greater) {
  u32 lo = 0, hi = width * supersample;
  while (lo < hi) {
    const u32 mid = lo + (hi - lo) / 2;
    const int c = cmp(sample_y(w, width, supersample, mid), cut);
    if (c < 0 || (strictly_greater && c == 0)) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

BandScan scan_band(const Terrain* t, const VisibilityMap* m, const std::vector<u32>* tri_map,
                   const ImageWindow& win, const RasterOptions& opt, u32 sub_lo, u32 sub_hi) {
  check_options(opt);
  THSR_CHECK(win.y_lo < win.y_hi && win.z_lo < win.z_hi);
  THSR_CHECK(sub_lo <= sub_hi && sub_hi <= opt.width * opt.supersample);
  const u32 H = opt.height, s = opt.supersample;
  const std::size_t hs = std::size_t{H} * s;

  BandScan out;
  out.sub_lo = sub_lo;
  out.sub_hi = sub_hi;
  const u32 n = sub_hi - sub_lo;
  out.ids.assign(std::size_t{n} * hs, kNoTriangle);
  out.depths.assign(std::size_t{n} * hs, 0.0);
  if (t == nullptr || n == 0) return out;  // background band
  THSR_CHECK(m != nullptr && m->edge_slots() == t->edge_count());

  const par::ScopedConfig cfg(opt.threads, opt.backend);
  if (opt.backend) THSR_CHECK(cfg.backend_applied());

  ColumnSet cs;
  cs.terrain = t;
  cs.map = m;
  cs.tri_map = tri_map;
  cs.sub_lo = sub_lo;
  cs.sub_hi = sub_hi;
  cs.adj = build_adjacency(*t);
  fill_buckets(cs, win, opt.width, s);

  std::vector<u64> sub_crossings(n, 0), sub_hits(n, 0);
  par::fan_items(n, [&](std::size_t k) {
    std::vector<Crossing> cr;
    scan_sub_column(cs, win, opt.width, H, s, sub_lo + static_cast<u32>(k), cr,
                    std::span(out.ids).subspan(k * hs, hs),
                    std::span(out.depths).subspan(k * hs, hs), sub_crossings[k], sub_hits[k]);
  });
  for (u32 k = 0; k < n; ++k) {
    out.crossings += sub_crossings[k];
    out.hit_samples += sub_hits[k];
  }
  return out;
}

namespace detail {

void aggregate_column(u32 c, u32 width, u32 height, u32 supersample,
                      std::span<const u32> sub_ids, std::span<const double> sub_depths,
                      std::span<u32> ids, std::span<float> depth, std::span<float> coverage) {
  const u32 s = supersample;
  const u32 hs = height * s;
  const u32 per_pixel = s * s;
  for (u32 r = 0; r < height; ++r) {
    u32 hits = 0;
    u32 win_id = kNoTriangle;
    u32 win_count = 0;
    for (u32 k = 0; k < s; ++k) {
      for (u32 j = r * s; j < (r + 1) * s; ++j) {
        const u32 id = sub_ids[std::size_t{k} * hs + j];
        if (id == kNoTriangle) continue;
        ++hits;
        u32 cnt = 0;
        for (u32 k2 = 0; k2 < s; ++k2) {
          for (u32 j2 = r * s; j2 < (r + 1) * s; ++j2) {
            cnt += sub_ids[std::size_t{k2} * hs + j2] == id;
          }
        }
        if (cnt > win_count || (cnt == win_count && id < win_id)) {
          win_count = cnt;
          win_id = id;
        }
      }
    }
    double dsum = 0.0;
    u32 dn = 0;
    if (win_id != kNoTriangle) {
      for (u32 k = 0; k < s; ++k) {
        for (u32 j = r * s; j < (r + 1) * s; ++j) {
          if (sub_ids[std::size_t{k} * hs + j] == win_id) {
            dsum += sub_depths[std::size_t{k} * hs + j];
            ++dn;
          }
        }
      }
    }
    const std::size_t px = std::size_t{r} * width + c;
    ids[px] = win_id;
    depth[px] = dn > 0 ? static_cast<float>(dsum / dn) : 0.0f;
    coverage[px] = static_cast<float>(hits) / static_cast<float>(per_pixel);
  }
}

}  // namespace detail

}  // namespace thsr::raster
