#include "raster/viewshed.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace thsr::raster {

AscGrid viewshed_grid(const Terrain& t, const VisibilityMap& m, const AscMapping& reg,
                      const ViewshedOptions& opt) {
  THSR_CHECK(reg.rows >= 1 && reg.cols >= 1);
  THSR_CHECK(reg.vertex.size() == std::size_t{reg.rows} * reg.cols);
  THSR_CHECK(m.edge_slots() == t.edge_count());

  // Accumulate, per terrain vertex, the total and visible image-plane
  // length of its incident edges. Edge order is fixed, so the double
  // accumulation is deterministic for a given map.
  std::vector<double> total(t.vertex_count(), 0.0);
  std::vector<double> visible(t.vertex_count(), 0.0);
  std::vector<unsigned char> any_visible(t.vertex_count(), 0);
  for (u32 e = 0; e < t.edge_count(); ++e) {
    const Edge& ed = t.edges()[e];
    double w = 0.0, v = 0.0;
    bool any = false;
    if (t.is_sliver(e)) {
      const SliverInfo s = t.sliver(e);
      w = static_cast<double>(s.z_hi - s.z_lo);
      const auto& sv = m.sliver(e);
      any = sv && sv->visible;
      v = any ? w : 0.0;
    } else {
      const Seg2 s = t.image_segment(e);
      w = static_cast<double>(s.u1 - s.u0);
      for (const VisiblePiece& p : m.pieces(e)) {
        v += p.y1.approx() - p.y0.approx();
        any = true;
      }
    }
    for (const u32 vert : {ed.a, ed.b}) {
      total[vert] += w;
      visible[vert] += v;
      any_visible[vert] |= any;
    }
  }

  AscGrid out;
  out.ncols = reg.cols;
  out.nrows = reg.rows;
  out.xll = reg.xll;
  out.yll = reg.yll;
  out.cell_centered = reg.cell_centered;
  out.cellsize = reg.cellsize;
  out.nodata = opt.nodata;
  out.values.resize(std::size_t{reg.rows} * reg.cols);
  for (u32 r = 0; r < reg.rows; ++r) {
    for (u32 c = 0; c < reg.cols; ++c) {
      const u32 vert = reg.vertex_at(r, c);
      double val;
      if (vert == kNoAscVertex) {
        val = opt.nodata;
      } else if (opt.boolean_grid) {
        val = any_visible[vert] ? 1.0 : 0.0;
      } else {
        // Clamp accumulation roundoff so consumers can rely on [0, 1].
        val = total[vert] > 0.0 ? std::min(1.0, std::max(0.0, visible[vert] / total[vert])) : 0.0;
      }
      out.values[std::size_t{r} * reg.cols + c] = val;
    }
  }
  return out;
}

}  // namespace thsr::raster
