#pragma once
/// \file raster.hpp
/// Image-space rasterization of a solved object-space VisibilityMap: the
/// per-pixel visible-triangle **ID map**, the **depth map** (x-coordinate
/// of the visible surface point, the distance proxy for a viewer at
/// x = +infinity), and per-pixel **coverage** (fraction of supersamples
/// that hit the terrain). This is the image-space half of the hybrid
/// formulation Erickson's finite-resolution HSR argues for: the exact
/// object-space map is computed once, then scan-converted at any
/// resolution (DESIGN.md section 1.8).
///
/// **Scan conversion.** The viewer looks along -x, so a ray through image
/// point (y, z) stays in the plane y = const: each image *column* is an
/// independent 1-D problem. Along a column, the visible surface — ordered
/// by increasing z — transitions exactly at the *visible edge crossings*
/// (the points where visible pieces of the map cross the column), and the
/// open interval between two consecutive crossings shows a single
/// triangle: the one on the **near (+x) side of the interval's upper
/// crossing** (the visible surface always exits an interval's triangle
/// through the visible edge bounding it from above; below the lowest
/// crossing and above the highest lies background). Crossing ordinates
/// are exact rationals (section 5 magnitudes, re-derived for the sampling
/// lattice in DESIGN.md section 1.8), so the per-pixel decision is exact;
/// only the emitted depth value is rounded to double.
///
/// **Determinism.** Columns are fanned over the fork-join backend
/// (par::fan_items) and write disjoint output ranges with no reduction,
/// so the produced image is bit-identical across backends and thread
/// counts (tests/test_raster.cpp), matching the library-wide contract.
///
/// **Sharding.** A slab of a shard::ShardPlan contains every triangle
/// meeting its window, so a column owned by a slab sees identical
/// geometry and an identical visible set in the slab's *unstitched* map:
/// `rasterize_sharded` consumes per-slab maps directly
/// (shard::ShardedEngine::solve_slabs), each slab filling its disjoint
/// band of image columns, and the result is bit-identical to rasterizing
/// the monolithic solve — no stitch on the raster path.
///
/// **Degeneracies.** Sliver edges (zero image width) and rays grazing
/// exactly along a vertex or edge are measure-zero in the image; the
/// default window is padded to an odd extent so no sample ordinate is an
/// integer lattice value, and samples that do land on a crossing resolve
/// deterministically (the crossing's near-side triangle). Visible slivers
/// are not rasterized — a zero-width wall has no pixel of its own.

#include <optional>
#include <span>
#include <vector>

#include "core/bounded.hpp"
#include "core/visibility.hpp"
#include "parallel/backend.hpp"
#include "shard/shard.hpp"
#include "terrain/terrain.hpp"

namespace thsr::raster {

/// Background pixel value in ID maps: the ray hit no (top side of a)
/// triangle — sky, a NODATA hole, or below the bottom silhouette.
inline constexpr u32 kNoTriangle = 0xffffffffu;

/// Cap on width*supersample and height*supersample: keeps every sample
/// ordinate's denominator within the exact-arithmetic magnitude budget
/// (DESIGN.md section 1.8).
inline constexpr u32 kMaxRasterAxis = 4096;
static_assert(kMaxRasterAxis == kMaxBudgetSamples,
              "core/bounded.hpp's pruning magnitude analysis assumes the raster axis cap");

/// Closed integer image-plane window [y_lo, y_hi] x [z_lo, z_hi]
/// rasterized onto the pixel grid (y = image u axis, z = image v axis).
struct ImageWindow {
  i64 y_lo{0};  ///< west/left image bound (inclusive)
  i64 y_hi{1};  ///< east/right image bound (inclusive)
  i64 z_lo{0};  ///< bottom image bound (inclusive)
  i64 z_hi{1};  ///< top image bound (inclusive)
};

/// Rasterization parameters. Defaults produce a 256x192 single-sample
/// image of the terrain's full bounding window.
struct RasterOptions {
  u32 width{256};       ///< output pixels per row (y axis)
  u32 height{192};      ///< output pixel rows (z axis)
  u32 supersample{1};   ///< s: s*s samples per pixel (coverage smoothing
                        ///< at T-vertex and silhouette boundaries)
  /// Image window; nullopt = default_window(terrain) (padded to odd
  /// extents so sample ordinates avoid the integer lattice). Sharded and
  /// monolithic rasterizations of the same terrain use the same default.
  std::optional<ImageWindow> window{};
  int threads{0};       ///< worker override; 0 = current par::max_threads()
  /// Fork-join executor for this rasterization; nullopt = current
  /// par::backend(). Never changes the output, only wall clock.
  std::optional<par::Backend> backend{};
};

/// The image-space product: row-major pixel grids, row 0 = top (z_hi).
struct ImageRaster {
  u32 width{0};        ///< pixels per row
  u32 height{0};       ///< pixel rows
  u32 supersample{1};  ///< samples per pixel axis used to produce it
  ImageWindow window{};///< the window actually rasterized (after padding)

  std::vector<u32> ids;        ///< visible source-triangle id or kNoTriangle
  std::vector<float> depth;    ///< x of the visible point (mean over the
                               ///< winning triangle's samples); 0 if none
  std::vector<float> coverage; ///< fraction of samples that hit, in [0, 1]

  u64 crossings{0};    ///< visible-edge column crossings scanned (exact,
                       ///< machine/backend/p-independent; 0 for the oracle)
  u64 hit_samples{0};  ///< samples that hit a triangle (ditto)
  u64 samples{0};      ///< total samples = (width*s) * (height*s)

  /// Pixel accessors for (row, col), row 0 = top.
  u32 id_at(u32 row, u32 col) const { return ids[std::size_t{row} * width + col]; }
  /// \copydoc id_at
  float depth_at(u32 row, u32 col) const { return depth[std::size_t{row} * width + col]; }
  /// \copydoc id_at
  float coverage_at(u32 row, u32 col) const { return coverage[std::size_t{row} * width + col]; }
};

/// The terrain's full image-plane bounding window, padded (hi side) to
/// odd y/z extents so that no sample ordinate of any resolution is an
/// integer — keeping every column clear of vertices and slivers, which
/// all live on the integer lattice.
ImageWindow default_window(const Terrain& t);

/// Exact sample ordinate of image sub-column `i` in [0, width*s): the
/// center of the i-th of width*s uniform strips of [y_lo, y_hi]. Shared
/// by the scan-converter and the ray-cast oracle so both sample the
/// identical points.
QY sample_y(const ImageWindow& w, u32 width, u32 supersample, u32 i);

/// The PixelBudget describing exactly the y-sample lattice `rasterize`
/// will use for these options on this terrain (opt.window resolved through
/// default_window like rasterize does): plug it into
/// HsrOptions::pixel_budget and the bounded solve's raster at these options
/// is bitwise identical to the exact solve's (DESIGN.md section 1.12).
/// Validates resolution bounds like rasterize (THSR_CHECK).
PixelBudget pixel_budget(const Terrain& t, const RasterOptions& opt);

/// Exact sample ordinate of image sub-row `j` in [0, height*s), counted
/// from the top: the center of the j-th uniform strip of [z_hi, z_lo].
QY sample_z(const ImageWindow& w, u32 height, u32 supersample, u32 j);

/// Depth (x) of triangle `tri`'s supporting plane at image point (y, z),
/// rounded to double only at the very end; nullopt when the plane is
/// parallel to the viewing axis (the triangle is seen edge-on and has no
/// well-defined per-pixel depth). Shared by the scan-converter and the
/// oracle so agreeing pixels carry bit-identical depths.
std::optional<double> plane_depth(const Terrain& t, u32 tri, const QY& y, const QY& z);

/// Scan-convert `m` (a solved map of `t`) into an image raster.
/// Output is bit-identical across backends and thread counts. Cost:
/// O(k + W·s·(X log X + H·s)) where X is the mean number of visible
/// crossings per column — output-sensitive in the visible scene, never
/// in n.
ImageRaster rasterize(const Terrain& t, const VisibilityMap& m, const RasterOptions& opt = {});

/// Rasterize from *unstitched* per-slab maps (`slab_maps[i]` indexed by
/// slab-local edge ids, nullptr for empty/unsolved slabs — the shape
/// shard::ShardedEngine::solve_slabs returns). Each slab rasterizes its
/// own disjoint band of image columns; the result — ids translated to
/// source-triangle ids via SlabTerrain::global_tri — is bit-identical to
/// `rasterize` of the monolithic solve with the same options.
ImageRaster rasterize_sharded(const shard::ShardPlan& plan,
                              std::span<const VisibilityMap* const> slab_maps,
                              const RasterOptions& opt = {});

/// Smallest sub-column index in [0, width*supersample] whose exact sample
/// ordinate is >= `cut` (> `cut` when `strictly_greater`): the band-
/// ownership binary search shared by rasterize_sharded and the out-of-core
/// streaming pipeline (src/stream/). Exact (QY comparison), so two callers
/// always agree on where a band starts.
u32 first_sub(const ImageWindow& w, u32 width, u32 supersample, i64 cut, bool strictly_greater);

/// Sub-column samples of a contiguous band [sub_lo, sub_hi) of the image,
/// scan-converted from one terrain + (unstitched, possibly rebased) map:
/// the building block the streaming pipeline aggregates into pixel bands.
/// `ids`/`depths` are sub-column-major — sub-column sub_lo+i's samples at
/// [i*height*s, (i+1)*height*s), top row first — so the s sub-columns of a
/// pixel column sit contiguously in exactly the layout
/// detail::aggregate_column consumes.
struct BandScan {
  u32 sub_lo{0}, sub_hi{0};   ///< the band scanned, in image sub-columns
  std::vector<u32> ids;       ///< (sub_hi-sub_lo) * height*s visible ids
  std::vector<double> depths; ///< matching depths (0 where no hit)
  u64 crossings{0};           ///< visible-edge crossings scanned (exact)
  u64 hit_samples{0};         ///< samples that hit a triangle (exact)
};

/// Scan-convert the band [sub_lo, sub_hi) against one terrain + map. A
/// null `t` produces a background band (all kNoTriangle, zero counters).
/// `tri_map` translates local to source triangle ids (null = identity).
/// Fanned over the fork-join backend; bit-identical across backends and
/// thread counts, and — summed over any banding of the image under the
/// same window — bit-identical to the counters and samples `rasterize`
/// produces monolithically (tests/test_stream.cpp).
BandScan scan_band(const Terrain* t, const VisibilityMap* m, const std::vector<u32>* tri_map,
                   const ImageWindow& win, const RasterOptions& opt, u32 sub_lo, u32 sub_hi);

namespace detail {

/// Aggregate the s x (height*s) samples of one output column `c` into its
/// pixels (winner id by sample majority — ties to the smaller id — depth
/// as the mean over the winner's samples in fixed sample order, coverage
/// as hit fraction). `sub_ids`/`sub_depths` are sub-column-major: sample
/// (k, j) at index k*(height*s) + j, j counted from the top. Shared by
/// rasterize and the oracle so aggregation is bit-identical.
void aggregate_column(u32 c, u32 width, u32 height, u32 supersample,
                      std::span<const u32> sub_ids, std::span<const double> sub_depths,
                      std::span<u32> ids, std::span<float> depth, std::span<float> coverage);

}  // namespace detail

}  // namespace thsr::raster
