#pragma once
/// \file oracle.hpp
/// Brute-force per-pixel ray-cast reference for the raster subsystem: a
/// first-hit ray caster over the raw triangle soup, entirely independent
/// of the VisibilityMap and of the scan-converter's staircase logic. It
/// exists to be *slow and obviously right* — the correctness oracle
/// tests/test_raster.cpp and the raster_viewshed example compare
/// `rasterize` against on small inputs (the raster analogue of the
/// Reference algorithm's role for the solvers).
///
/// Semantics (shared with raster.hpp): a sample (y, z) shows the triangle
/// whose surface the viewing ray from x = +infinity crosses first *from
/// above* — the terrain sheet is one-sided, so a ray sliding under a
/// front face and striking an underside renders background, exactly as
/// the object-space map (which knows nothing below the visible surface)
/// implies. Per image column the oracle intersects every triangle with
/// the column plane, orders the resulting surface intervals near-to-far
/// by exact comparison of their boundary crossings, and reports the first
/// interval whose surface rises through the sample height. Sampling
/// (sample_y/sample_z), depth evaluation (plane_depth), and pixel
/// aggregation are the shared raster.hpp helpers, so agreeing images are
/// bit-identical, depths included.
///
/// Cost: O(width·s·(n log n + height·s·X)) with X the triangles per
/// column — strictly a test/debug tool.

#include "raster/raster.hpp"

namespace thsr::raster {

/// Ray-cast `t` at the resolution/window of `opt` (same defaults as
/// rasterize). The returned raster's `crossings` stat is 0 — the oracle
/// scans no visible pieces.
ImageRaster raycast_reference(const Terrain& t, const RasterOptions& opt = {});

}  // namespace thsr::raster
