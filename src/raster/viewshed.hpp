#pragma once
/// \file viewshed.hpp
/// Georeferenced viewshed grids from a solved VisibilityMap: for every
/// sample of the (strided) source DEM, how much of the terrain surface
/// around that sample is visible from the viewer at x = +infinity. This
/// is the raster *deliverable* of grid-terrain visibility work (Haverkort
/// & Toma's massive-grid comparison takes exactly this shape), registered
/// to the source `.asc` georeferencing via the AscMapping that
/// `terrain_from_asc` emits — the output loads into any GIS tool on top
/// of the DEM it came from.
///
/// The measure is object-space and exact in provenance: a DEM sample's
/// value is the visible fraction of the *image-plane length* of its
/// incident terrain edges (non-sliver edges weigh their y-extent, sliver
/// edges their z-extent with an all-or-nothing verdict — DESIGN.md
/// section 4.5), read directly off the map's visible pieces. No ray is
/// ever re-cast. Fractions are accumulated in double (reporting
/// precision); the *boolean* grid — visible iff any incident edge has a
/// visible piece — is exact, and is what the sharded-equality tests pin
/// bitwise (fractional grids agree to accumulation roundoff across piece
/// splits at slab cuts).
///
/// NODATA propagates: a DEM sample that produced no terrain vertex (a
/// hole) gets `ViewshedOptions::nodata`, and the output grid declares
/// that value in its header.

#include "core/visibility.hpp"
#include "terrain/asc_io.hpp"
#include "terrain/terrain.hpp"

namespace thsr::raster {

/// Viewshed grid parameters.
struct ViewshedOptions {
  bool boolean_grid{false};  ///< emit {0, 1} (any incident edge visible)
                             ///< instead of the visible-length fraction
  double nodata{-1.0};       ///< value written for NODATA (hole) samples
};

/// Build the viewshed grid of `m` (a solved map of `t`, which must have
/// been built through `terrain_from_asc` with `reg` as its mapping).
/// Returns an AscGrid with `reg`'s (strided) georeferencing: nrows x
/// ncols samples in [0, 1] (or {0, 1} in boolean mode), NODATA samples
/// set to `opt.nodata`. O(n + k) — one pass over edges and pieces, one
/// pass over the grid.
AscGrid viewshed_grid(const Terrain& t, const VisibilityMap& m, const AscMapping& reg,
                      const ViewshedOptions& opt = {});

}  // namespace thsr::raster
