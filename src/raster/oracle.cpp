#include "raster/oracle.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace thsr::raster {
namespace {

/// Exact value of segment `s` at abscissa u (duplicated from raster.cpp
/// on purpose: the oracle shares *sampling* with the scan-converter but
/// not its internals).
QY seg_at(const Seg2& s, const QY& u) {
  const i128 num =
      mul128(i128{s.v0} * (s.u1 - s.u0), u.q) + mul128(s.v1 - s.v0, u.p - mul128(s.u0, u.q));
  const i128 den = mul128(s.u1 - s.u0, u.q);
  return QY(num, den);
}

/// One triangle's intersection with the current column plane y = y0: a
/// surface interval from its near boundary crossing (x_n, z_n) to its far
/// one (x_f, z_f), x_n > x_f.
struct ColumnSegment {
  QY x_near, z_near, x_far, z_far;
  u32 tri{0};
};

/// Intersect triangle `ti` with the column y = y0. Returns false for
/// triangles the column misses or only grazes (a vertex touch — measure
/// zero, avoided by the odd-extent sampling lattice).
bool column_segment(const Terrain& t, u32 ti, const QY& y0, ColumnSegment& out) {
  const Triangle& tr = t.triangles()[ti];
  const u32 vs[3] = {tr.a, tr.b, tr.c};
  QY xs[3], zs[3];
  int found = 0;
  for (int k = 0; k < 3 && found < 3; ++k) {
    const Vertex3 &pa = t.vertex(vs[k]), &pb = t.vertex(vs[(k + 1) % 3]);
    if (pa.y == pb.y) continue;  // edge parallel to the column: no transversal crossing
    const Vertex3 &p = pa.y < pb.y ? pa : pb, &q = pa.y < pb.y ? pb : pa;
    if (cmp(y0, p.y) < 0 || cmp(y0, q.y) > 0) continue;
    const Seg2 ground{p.y, p.x, q.y, q.x};
    const Seg2 image{p.y, p.z, q.y, q.z};
    const QY x = seg_at(ground, y0), z = seg_at(image, y0);
    bool dup = false;
    for (int f = 0; f < found; ++f) dup = dup || (cmp(xs[f], x) == 0 && cmp(zs[f], z) == 0);
    if (dup) continue;  // column through a shared vertex: one geometric point
    xs[found] = x;
    zs[found] = z;
    ++found;
  }
  if (found < 2) return false;
  // At most two distinct crossing points exist for a line and a triangle
  // boundary; order them near (larger x) to far.
  int ni = 0, fi = 1;
  if (cmp(xs[0], xs[1]) < 0) std::swap(ni, fi);
  out = ColumnSegment{xs[ni], zs[ni], xs[fi], zs[fi], ti};
  return true;
}

}  // namespace

ImageRaster raycast_reference(const Terrain& t, const RasterOptions& opt) {
  THSR_CHECK(opt.width >= 1 && opt.height >= 1 && opt.supersample >= 1);
  THSR_CHECK(u64{opt.width} * opt.supersample <= kMaxRasterAxis);
  THSR_CHECK(u64{opt.height} * opt.supersample <= kMaxRasterAxis);
  const ImageWindow win = opt.window ? *opt.window : default_window(t);
  THSR_CHECK(win.y_lo < win.y_hi && win.z_lo < win.z_hi);
  const par::ScopedConfig cfg(opt.threads, opt.backend);
  if (opt.backend) THSR_CHECK(cfg.backend_applied());

  const u32 W = opt.width, H = opt.height, s = opt.supersample;
  ImageRaster out;
  out.width = W;
  out.height = H;
  out.supersample = s;
  out.window = win;
  const std::size_t px = std::size_t{W} * H;
  out.ids.assign(px, kNoTriangle);
  out.depth.assign(px, 0.0f);
  out.coverage.assign(px, 0.0f);
  out.samples = u64{W} * s * H * s;

  std::vector<u64> col_hits(W, 0);
  par::fan_items(W, [&](std::size_t c) {
    const u32 hs = H * s;
    std::vector<u32> sub_ids(std::size_t{s} * hs, kNoTriangle);
    std::vector<double> sub_depths(std::size_t{s} * hs, 0.0);
    std::vector<ColumnSegment> segs;
    u64 hits = 0;
    for (u32 k = 0; k < s; ++k) {
      const u32 i = static_cast<u32>(c) * s + k;
      const QY y0 = sample_y(win, W, s, i);
      segs.clear();
      for (u32 ti = 0; ti < t.triangle_count(); ++ti) {
        ColumnSegment cs;
        if (column_segment(t, ti, y0, cs)) segs.push_back(cs);
      }
      // Near-to-far: ground projections are interior-disjoint, so the
      // intervals order totally by their near crossings.
      std::sort(segs.begin(), segs.end(), [](const ColumnSegment& a, const ColumnSegment& b) {
        if (const int cx = cmp(a.x_near, b.x_near); cx != 0) return cx > 0;
        if (const int cx = cmp(a.x_far, b.x_far); cx != 0) return cx > 0;
        return a.tri < b.tri;
      });
      for (u32 j = 0; j < hs; ++j) {
        const QY z0 = sample_z(win, H, s, j);
        u32 tri = kNoTriangle;
        double dep = 0.0;
        // Walk intervals near to far until the ray crosses the surface.
        // A surface *rising* through z0 (z_near < z0 <= z_far) is a
        // top-side hit; a surface *descending* through z0
        // (z_far <= z0 < z_near) stops the ray on the underside —
        // background, never render-through. Intervals entirely above or
        // below the ray do not block it.
        for (const ColumnSegment& cs : segs) {
          const int cn = cmp(z0, cs.z_near), cf = cmp(z0, cs.z_far);
          if (cn > 0 && cf <= 0) {
            tri = cs.tri;
            const auto d = plane_depth(t, cs.tri, y0, z0);
            dep = d ? *d : cs.x_near.approx();
            ++hits;
            break;
          }
          if (cn < 0 && cf >= 0) break;  // underside: the ray is absorbed
        }
        sub_ids[std::size_t{k} * hs + j] = tri;
        sub_depths[std::size_t{k} * hs + j] = dep;
      }
    }
    detail::aggregate_column(static_cast<u32>(c), W, H, s, sub_ids, sub_depths, out.ids,
                             out.depth, out.coverage);
    col_hits[c] = hits;
  });
  for (u32 c = 0; c < W; ++c) out.hit_samples += col_hits[c];
  return out;
}

}  // namespace thsr::raster
