#include "terrain/asc_io.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <streambuf>

#include "support/check.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define THSR_ASC_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace thsr {
namespace {

inline constexpr u32 kNoVert = 0xffffffffu;  ///< lattice site with no data vertex

/// Hard cap on ncols*nrows before the sample buffer is allocated: keeps a
/// hostile or corrupt header (two 1e9 dims = an 8 EB reserve) inside the
/// documented runtime_error contract instead of bad_alloc/OOM. 10^8
/// doubles is ~800 MB — far beyond anything the lattice budget can use.
/// The streaming reader (AscRowReader) caps only ncols by this: it buffers
/// one row at a time, never the grid, which is its whole point.
inline constexpr std::size_t kMaxAscSamples = 100'000'000;

[[noreturn]] void fail(const std::string& what, std::size_t lineno = 0) {
  throw std::runtime_error(lineno ? "load_asc: " + what + " at line " + std::to_string(lineno)
                                  : "load_asc: " + what);
}

std::string lower(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return s;
}

/// Shared header parser behind load_asc_grid and AscRowReader. Reads
/// header lines until the first data line. In consume mode (`pending` not
/// null) that data line lands in *pending; in seek mode the stream is
/// repositioned to its start, which requires a seekable source.
AscHeader parse_asc_header(std::istream& is, std::string* pending) {
  AscHeader g;
  bool saw_ncols = false, saw_nrows = false, saw_x = false, saw_y = false, saw_cell = false;
  bool x_centered = false, y_centered = false;
  std::size_t lineno = 0;
  std::string line;

  while (true) {
    const std::istream::pos_type before = pending == nullptr ? is.tellg()
                                                             : std::istream::pos_type(-1);
    if (!std::getline(is, line)) break;
    ++lineno;
    std::istringstream ls(line);
    std::string key;
    if (!(ls >> key)) continue;  // blank line
    const std::string k = lower(key);
    const bool is_key = !k.empty() && (std::isalpha(static_cast<unsigned char>(k[0])) != 0);
    if (!is_key) {
      // Header over: this line already holds data.
      if (pending != nullptr) {
        *pending = line;
      } else {
        is.clear();
        if (before == std::istream::pos_type(-1) || !is.seekg(before)) {
          fail("streaming reads need a seekable source");
        }
      }
      break;
    }
    double v = 0;
    if (!(ls >> v)) fail("header key '" + key + "' has no numeric value", lineno);
    const auto set = [&](double& slot, bool& seen) {
      if (seen) fail("duplicate header key '" + key + "'", lineno);
      slot = v;
      seen = true;
    };
    if (k == "ncols" || k == "nrows") {
      if (v < 1 || v != std::floor(v) || v > 1e9) fail("bad " + k, lineno);
      double tmp = 0;
      bool& seen = (k == "ncols") ? saw_ncols : saw_nrows;
      set(tmp, seen);
      (k == "ncols" ? g.ncols : g.nrows) = static_cast<u32>(v);
    } else if (k == "xllcorner" || k == "xllcenter") {
      set(g.xll, saw_x);
      x_centered = (k == "xllcenter");
    } else if (k == "yllcorner" || k == "yllcenter") {
      set(g.yll, saw_y);
      y_centered = (k == "yllcenter");
    } else if (k == "cellsize") {
      if (v <= 0) fail("cellsize must be positive", lineno);
      set(g.cellsize, saw_cell);
    } else if (k == "nodata_value") {
      if (g.nodata) fail("duplicate header key '" + key + "'", lineno);
      g.nodata = v;
    } else {
      fail("unknown header key '" + key + "'", lineno);
    }
  }
  if (!saw_ncols || !saw_nrows) fail("header is missing ncols/nrows");
  if (!saw_x || !saw_y || !saw_cell) fail("header is missing the origin or cellsize");
  if (x_centered != y_centered) fail("header mixes llcorner and llcenter origin keys");
  g.cell_centered = x_centered;
  return g;
}

}  // namespace

AscGrid load_asc_grid(std::istream& is) {
  std::string pending;  // first data line (the one that ended the header)
  const AscHeader h = parse_asc_header(is, &pending);
  AscGrid g;
  g.ncols = h.ncols;
  g.nrows = h.nrows;
  g.xll = h.xll;
  g.yll = h.yll;
  g.cell_centered = h.cell_centered;
  g.cellsize = h.cellsize;
  g.nodata = h.nodata;

  const std::size_t want = static_cast<std::size_t>(g.ncols) * g.nrows;
  if (want > kMaxAscSamples) {
    fail("grid declares " + std::to_string(want) + " samples, over the " +
         std::to_string(kMaxAscSamples) + " loader cap");
  }
  g.values.reserve(want);
  const auto consume = [&](std::istream& vs) {
    double v;
    while (g.values.size() < want && vs >> v) g.values.push_back(v);
    if (g.values.size() < want && !vs.eof()) {
      fail("non-numeric height sample after " + std::to_string(g.values.size()) + " values");
    }
  };
  {
    std::istringstream first(pending);
    consume(first);
  }
  consume(is);
  if (g.values.size() < want) {
    fail("expected " + std::to_string(want) + " height samples, file ends after " +
         std::to_string(g.values.size()));
  }
  return g;
}

AscGrid load_asc_grid(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("load_asc: cannot open " + path);
  return load_asc_grid(is);
}

void save_asc_grid(const AscGrid& g, std::ostream& os) {
  os.precision(std::numeric_limits<double>::max_digits10);
  os << "ncols " << g.ncols << "\nnrows " << g.nrows << "\n"
     << (g.cell_centered ? "xllcenter " : "xllcorner ") << g.xll << "\n"
     << (g.cell_centered ? "yllcenter " : "yllcorner ") << g.yll << "\ncellsize " << g.cellsize
     << "\n";
  if (g.nodata) os << "NODATA_value " << *g.nodata << "\n";
  for (u32 r = 0; r < g.nrows; ++r) {
    for (u32 c = 0; c < g.ncols; ++c) os << g.at(r, c) << (c + 1 < g.ncols ? ' ' : '\n');
  }
}

void save_asc_grid(const AscGrid& g, const std::string& path) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("save_asc: cannot open " + path);
  save_asc_grid(g, os);
}

Terrain terrain_from_asc(const AscGrid& g, const AscTerrainOptions& opt, AscMapping* mapping) {
  if (g.ncols < 2 || g.nrows < 2) fail("grid too small to triangulate (need >= 2x2)");

  // Stride so the sampled lattice fits the coordinate budget.
  u32 stride = opt.stride;
  if (stride == 0) {
    stride = 1;
    while ((std::max(g.ncols, g.nrows) - 1) / stride + 1 > kMaxAscGrid) ++stride;
  }
  const u32 rows = (g.nrows - 1) / stride + 1, cols = (g.ncols - 1) / stride + 1;
  if (rows < 2 || cols < 2) {
    fail("stride " + std::to_string(stride) + " leaves fewer than 2 rows/cols");
  }
  if (std::max(rows, cols) > kMaxAscGrid) {
    fail("grid exceeds " + std::to_string(kMaxAscGrid) +
         " samples per side after stride; raise AscTerrainOptions::stride");
  }

  // Height quantization: offset (normalize_z), scale, round — and reject
  // anything the exact predicates could not carry.
  double z0 = 0;
  if (opt.normalize_z) {
    z0 = std::numeric_limits<double>::infinity();
    for (u32 r = 0; r < g.nrows; ++r) {
      for (u32 c = 0; c < g.ncols; ++c) {
        if (!g.is_nodata(r, c)) z0 = std::min(z0, g.at(r, c));
      }
    }
    if (!std::isfinite(z0)) fail("grid has no data cells");
  }
  const auto quantize = [&](double v) {
    const double s = (v - z0) * opt.z_scale;
    if (!std::isfinite(s) || std::abs(s) > static_cast<double>(kMaxCoord)) {
      fail("height " + std::to_string(v) + " leaves the coordinate range after scaling; "
           "lower AscTerrainOptions::z_scale");
    }
    return static_cast<i64>(std::llround(s));
  };

  // Sheared lattice, generators' convention (DESIGN.md section 1.5): the
  // shear constant clears the x-extent so distinct columns occupy disjoint
  // y-ranges and no edge gets dy == 0. Row 0 (north) lands at maximal x,
  // nearest the viewer.
  const u32 G = std::max(rows, cols);
  const i64 K = opt.shear ? i64{8} * G + 16 : 0;
  std::vector<u32> vid(static_cast<std::size_t>(rows) * cols, kNoVert);
  std::vector<Vertex3> verts;
  std::vector<Triangle> tris;
  const auto sampled = [&](u32 rr, u32 cc) {  // sampled-grid -> source-grid
    return std::pair<u32, u32>{rr * stride, cc * stride};
  };
  for (u32 rr = 0; rr < rows; ++rr) {
    for (u32 cc = 0; cc < cols; ++cc) {
      const auto [r, c] = sampled(rr, cc);
      if (g.is_nodata(r, c)) continue;
      const i64 x = i64{8} * (rows - 1 - rr), yj = i64{8} * cc;
      vid[static_cast<std::size_t>(rr) * cols + cc] = static_cast<u32>(verts.size());
      verts.push_back(Vertex3{x, opt.shear ? K * yj + x : yj, quantize(g.at(r, c))});
    }
  }
  const auto v_at = [&](u32 rr, u32 cc) { return vid[static_cast<std::size_t>(rr) * cols + cc]; };
  for (u32 rr = 0; rr + 1 < rows; ++rr) {
    for (u32 cc = 0; cc + 1 < cols; ++cc) {
      const u32 v00 = v_at(rr, cc), v10 = v_at(rr + 1, cc);
      const u32 v01 = v_at(rr, cc + 1), v11 = v_at(rr + 1, cc + 1);
      if (v00 == kNoVert || v10 == kNoVert || v01 == kNoVert || v11 == kNoVert) continue;
      if ((rr + cc) % 2 == 0) {  // generators' alternating diagonal
        tris.push_back({v00, v10, v11});
        tris.push_back({v00, v11, v01});
      } else {
        tris.push_back({v00, v10, v01});
        tris.push_back({v10, v11, v01});
      }
    }
  }
  if (tris.empty()) fail("no NODATA-free cell to triangulate");

  // Drop vertices only NODATA neighbours referenced (isolated data cells).
  std::vector<u32> used(verts.size(), 0);
  for (const Triangle& tr : tris) used[tr.a] = used[tr.b] = used[tr.c] = 1;
  std::vector<u32> remap(verts.size(), 0);
  std::vector<Vertex3> packed;
  packed.reserve(verts.size());
  for (u32 i = 0; i < verts.size(); ++i) {
    if (used[i]) {
      remap[i] = static_cast<u32>(packed.size());
      packed.push_back(verts[i]);
    }
  }
  for (Triangle& tr : tris) tr = {remap[tr.a], remap[tr.b], remap[tr.c]};

  if (mapping != nullptr) {
    mapping->rows = rows;
    mapping->cols = cols;
    mapping->stride = stride;
    mapping->xll = g.xll;
    // The sampled grid's southernmost row is source row (rows-1)*stride;
    // any rows the stride drops below it shift the south edge north.
    mapping->yll =
        g.yll + static_cast<double>(g.nrows - 1 - (rows - 1) * stride) * g.cellsize;
    mapping->cell_centered = g.cell_centered;
    mapping->cellsize = g.cellsize * stride;
    mapping->nodata = g.nodata;
    mapping->vertex.assign(static_cast<std::size_t>(rows) * cols, kNoAscVertex);
    for (std::size_t i = 0; i < vid.size(); ++i) {
      if (vid[i] != kNoVert && used[vid[i]]) mapping->vertex[i] = remap[vid[i]];
    }
  }
  return Terrain::from_triangles(std::move(packed), std::move(tris));
}

Terrain load_asc(std::istream& is, const AscTerrainOptions& opt) {
  return terrain_from_asc(load_asc_grid(is), opt);
}

Terrain load_asc(const std::string& path, const AscTerrainOptions& opt) {
  return terrain_from_asc(load_asc_grid(path), opt);
}

namespace {

/// Zero-copy seekable streambuf over a byte range (the mmap view). Only
/// the get area is wired up; seekoff/seekpos make tellg/seekg work so the
/// row-offset index applies to mapped and file-backed readers alike.
class MemBuf : public std::streambuf {
 public:
  MemBuf(const char* b, const char* e) : b_(b), e_(e) {
    setg(const_cast<char*>(b_), const_cast<char*>(b_), const_cast<char*>(e_));
  }

 protected:
  pos_type seekoff(off_type off, std::ios_base::seekdir dir, std::ios_base::openmode which) override {
    if ((which & std::ios_base::in) == 0) return pos_type(off_type(-1));
    const char* base = dir == std::ios_base::beg ? b_ : dir == std::ios_base::cur ? gptr() : e_;
    const char* target = base + off;
    if (target < b_ || target > e_) return pos_type(off_type(-1));
    setg(const_cast<char*>(b_), const_cast<char*>(target), const_cast<char*>(e_));
    return pos_type(target - b_);
  }
  pos_type seekpos(pos_type pos, std::ios_base::openmode which) override {
    return seekoff(off_type(pos), std::ios_base::beg, which);
  }

 private:
  const char* b_;
  const char* e_;
};

}  // namespace

struct AscRowReader::Impl {
  std::ifstream file;                    ///< file-backed fallback
  std::unique_ptr<MemBuf> membuf;        ///< mmap view, when mapped
  std::unique_ptr<std::istream> owned;   ///< istream over membuf
  std::istream* in{nullptr};             ///< whichever source backs reads

  void* map_addr{nullptr};
  std::size_t map_len{0};

  AscHeader header;
  u32 next_row{0};
  std::istream::pos_type payload_pos{0};
  std::vector<std::istream::pos_type> row_off;  ///< start offset of each visited row

  ~Impl() {
#ifdef THSR_ASC_MMAP
    if (map_addr != nullptr) ::munmap(map_addr, map_len);
#endif
  }

  void init() {
    header = parse_asc_header(*in, /*pending=*/nullptr);
    if (header.ncols > kMaxAscSamples) {
      fail("row of " + std::to_string(header.ncols) + " samples exceeds the per-row cap");
    }
    payload_pos = in->tellg();
  }

  void read_one(std::span<double> out) {
    THSR_CHECK(out.size() >= header.ncols);
    if (next_row >= header.nrows) {
      fail("read past the last row (" + std::to_string(header.nrows) + " declared)");
    }
    if (row_off.size() == next_row) row_off.push_back(in->tellg());
    for (u32 c = 0; c < header.ncols; ++c) {
      double v = 0;
      if (!(*in >> v)) {
        if (in->eof()) {
          fail("row " + std::to_string(next_row) + " ends after " + std::to_string(c) + " of " +
               std::to_string(header.ncols) +
               " samples (payload truncated or header dims oversized)");
        }
        fail("non-numeric height sample in row " + std::to_string(next_row));
      }
      out[c] = v;
    }
    ++next_row;
  }
};

AscRowReader::AscRowReader(std::istream& is) : impl_(std::make_unique<Impl>()) {
  impl_->in = &is;
  impl_->init();
}

AscRowReader::AscRowReader(const std::string& path, bool prefer_mmap)
    : impl_(std::make_unique<Impl>()) {
  Impl& im = *impl_;
#ifdef THSR_ASC_MMAP
  if (prefer_mmap) {
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd >= 0) {
      struct stat st{};
      if (::fstat(fd, &st) == 0 && st.st_size > 0) {
        void* addr = ::mmap(nullptr, static_cast<std::size_t>(st.st_size), PROT_READ,
                            MAP_PRIVATE, fd, 0);
        if (addr != MAP_FAILED) {
          im.map_addr = addr;
          im.map_len = static_cast<std::size_t>(st.st_size);
          const char* b = static_cast<const char*>(addr);
          im.membuf = std::make_unique<MemBuf>(b, b + im.map_len);
          im.owned = std::make_unique<std::istream>(im.membuf.get());
          im.in = im.owned.get();
        }
      }
      ::close(fd);
    }
  }
#else
  (void)prefer_mmap;
#endif
  if (im.in == nullptr) {
    im.file.open(path);
    if (!im.file) throw std::runtime_error("load_asc: cannot open " + path);
    im.in = &im.file;
  }
  im.init();
}

AscRowReader::~AscRowReader() = default;
AscRowReader::AscRowReader(AscRowReader&&) noexcept = default;
AscRowReader& AscRowReader::operator=(AscRowReader&&) noexcept = default;

const AscHeader& AscRowReader::header() const noexcept { return impl_->header; }
bool AscRowReader::mapped() const noexcept { return impl_->map_addr != nullptr; }
u32 AscRowReader::next_row() const noexcept { return impl_->next_row; }

void AscRowReader::read_row(std::span<double> out) { impl_->read_one(out); }

void AscRowReader::skip_rows(u32 n) {
  std::vector<double> scratch(impl_->header.ncols);
  for (u32 i = 0; i < n; ++i) impl_->read_one(scratch);
}

void AscRowReader::read_rows(u32 row_lo, u32 row_hi, std::span<double> out) {
  Impl& im = *impl_;
  if (row_lo > row_hi || row_hi > im.header.nrows) {
    fail("window rows [" + std::to_string(row_lo) + ", " + std::to_string(row_hi) +
         ") outside the declared " + std::to_string(im.header.nrows) + " rows");
  }
  THSR_CHECK(out.size() >= static_cast<std::size_t>(row_hi - row_lo) * im.header.ncols);
  if (row_lo < im.next_row) {
    // Already visited: its byte offset is on record — seek, do not reparse.
    im.in->clear();
    if (!im.in->seekg(im.row_off[row_lo])) fail("seek to recorded row offset failed");
    im.next_row = row_lo;
  } else if (row_lo > im.next_row) {
    skip_rows(row_lo - im.next_row);
  }
  for (u32 r = row_lo; r < row_hi; ++r) {
    im.read_one(out.subspan(static_cast<std::size_t>(r - row_lo) * im.header.ncols));
  }
}

void AscRowReader::reset() {
  Impl& im = *impl_;
  im.in->clear();
  if (!im.in->seekg(im.payload_pos)) fail("seek to payload start failed");
  im.next_row = 0;
}

AscGrid load_asc_window(const std::string& path, u32 row_lo, u32 row_hi) {
  AscRowReader r(path);
  const AscHeader& h = r.header();
  if (row_lo >= row_hi || row_hi > h.nrows) {
    fail("window rows [" + std::to_string(row_lo) + ", " + std::to_string(row_hi) +
         ") outside the declared " + std::to_string(h.nrows) + " rows");
  }
  const std::size_t want = static_cast<std::size_t>(row_hi - row_lo) * h.ncols;
  if (want > kMaxAscSamples) {
    fail("window declares " + std::to_string(want) + " samples, over the " +
         std::to_string(kMaxAscSamples) + " loader cap");
  }
  AscGrid g;
  g.ncols = h.ncols;
  g.nrows = row_hi - row_lo;
  g.xll = h.xll;
  // The window's southernmost row is source row row_hi-1: the dropped
  // southern rows shift the lower-left origin north.
  g.yll = h.yll + static_cast<double>(h.nrows - row_hi) * h.cellsize;
  g.cell_centered = h.cell_centered;
  g.cellsize = h.cellsize;
  g.nodata = h.nodata;
  g.values.resize(want);
  r.read_rows(row_lo, row_hi, g.values);
  return g;
}

}  // namespace thsr
