#include "terrain/asc_io.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace thsr {
namespace {

inline constexpr u32 kNoVert = 0xffffffffu;  ///< lattice site with no data vertex

/// Hard cap on ncols*nrows before the sample buffer is allocated: keeps a
/// hostile or corrupt header (two 1e9 dims = an 8 EB reserve) inside the
/// documented runtime_error contract instead of bad_alloc/OOM. 10^8
/// doubles is ~800 MB — far beyond anything the lattice budget can use.
inline constexpr std::size_t kMaxAscSamples = 100'000'000;

[[noreturn]] void fail(const std::string& what, std::size_t lineno = 0) {
  throw std::runtime_error(lineno ? "load_asc: " + what + " at line " + std::to_string(lineno)
                                  : "load_asc: " + what);
}

std::string lower(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return s;
}

}  // namespace

AscGrid load_asc_grid(std::istream& is) {
  AscGrid g;
  bool saw_ncols = false, saw_nrows = false, saw_x = false, saw_y = false, saw_cell = false;
  bool x_centered = false, y_centered = false;
  std::size_t lineno = 0;
  std::string line;
  std::string pending;  // first data line (the one that ended the header)

  while (std::getline(is, line)) {
    ++lineno;
    std::istringstream ls(line);
    std::string key;
    if (!(ls >> key)) continue;  // blank line
    const std::string k = lower(key);
    const bool is_key = !k.empty() && (std::isalpha(static_cast<unsigned char>(k[0])) != 0);
    if (!is_key) {
      pending = line;  // header over: this line already holds data
      break;
    }
    double v = 0;
    if (!(ls >> v)) fail("header key '" + key + "' has no numeric value", lineno);
    const auto set = [&](double& slot, bool& seen) {
      if (seen) fail("duplicate header key '" + key + "'", lineno);
      slot = v;
      seen = true;
    };
    if (k == "ncols" || k == "nrows") {
      if (v < 1 || v != std::floor(v) || v > 1e9) fail("bad " + k, lineno);
      double tmp = 0;
      bool& seen = (k == "ncols") ? saw_ncols : saw_nrows;
      set(tmp, seen);
      (k == "ncols" ? g.ncols : g.nrows) = static_cast<u32>(v);
    } else if (k == "xllcorner" || k == "xllcenter") {
      set(g.xll, saw_x);
      x_centered = (k == "xllcenter");
    } else if (k == "yllcorner" || k == "yllcenter") {
      set(g.yll, saw_y);
      y_centered = (k == "yllcenter");
    } else if (k == "cellsize") {
      if (v <= 0) fail("cellsize must be positive", lineno);
      set(g.cellsize, saw_cell);
    } else if (k == "nodata_value") {
      if (g.nodata) fail("duplicate header key '" + key + "'", lineno);
      g.nodata = v;
    } else {
      fail("unknown header key '" + key + "'", lineno);
    }
  }
  if (!saw_ncols || !saw_nrows) fail("header is missing ncols/nrows");
  if (!saw_x || !saw_y || !saw_cell) fail("header is missing the origin or cellsize");
  if (x_centered != y_centered) fail("header mixes llcorner and llcenter origin keys");
  g.cell_centered = x_centered;

  const std::size_t want = static_cast<std::size_t>(g.ncols) * g.nrows;
  if (want > kMaxAscSamples) {
    fail("grid declares " + std::to_string(want) + " samples, over the " +
         std::to_string(kMaxAscSamples) + " loader cap");
  }
  g.values.reserve(want);
  const auto consume = [&](std::istream& vs) {
    double v;
    while (g.values.size() < want && vs >> v) g.values.push_back(v);
    if (g.values.size() < want && !vs.eof()) {
      fail("non-numeric height sample after " + std::to_string(g.values.size()) + " values");
    }
  };
  {
    std::istringstream first(pending);
    consume(first);
  }
  consume(is);
  if (g.values.size() < want) {
    fail("expected " + std::to_string(want) + " height samples, file ends after " +
         std::to_string(g.values.size()));
  }
  return g;
}

AscGrid load_asc_grid(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("load_asc: cannot open " + path);
  return load_asc_grid(is);
}

void save_asc_grid(const AscGrid& g, std::ostream& os) {
  os.precision(std::numeric_limits<double>::max_digits10);
  os << "ncols " << g.ncols << "\nnrows " << g.nrows << "\n"
     << (g.cell_centered ? "xllcenter " : "xllcorner ") << g.xll << "\n"
     << (g.cell_centered ? "yllcenter " : "yllcorner ") << g.yll << "\ncellsize " << g.cellsize
     << "\n";
  if (g.nodata) os << "NODATA_value " << *g.nodata << "\n";
  for (u32 r = 0; r < g.nrows; ++r) {
    for (u32 c = 0; c < g.ncols; ++c) os << g.at(r, c) << (c + 1 < g.ncols ? ' ' : '\n');
  }
}

void save_asc_grid(const AscGrid& g, const std::string& path) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("save_asc: cannot open " + path);
  save_asc_grid(g, os);
}

Terrain terrain_from_asc(const AscGrid& g, const AscTerrainOptions& opt, AscMapping* mapping) {
  if (g.ncols < 2 || g.nrows < 2) fail("grid too small to triangulate (need >= 2x2)");

  // Stride so the sampled lattice fits the coordinate budget.
  u32 stride = opt.stride;
  if (stride == 0) {
    stride = 1;
    while ((std::max(g.ncols, g.nrows) - 1) / stride + 1 > kMaxAscGrid) ++stride;
  }
  const u32 rows = (g.nrows - 1) / stride + 1, cols = (g.ncols - 1) / stride + 1;
  if (rows < 2 || cols < 2) {
    fail("stride " + std::to_string(stride) + " leaves fewer than 2 rows/cols");
  }
  if (std::max(rows, cols) > kMaxAscGrid) {
    fail("grid exceeds " + std::to_string(kMaxAscGrid) +
         " samples per side after stride; raise AscTerrainOptions::stride");
  }

  // Height quantization: offset (normalize_z), scale, round — and reject
  // anything the exact predicates could not carry.
  double z0 = 0;
  if (opt.normalize_z) {
    z0 = std::numeric_limits<double>::infinity();
    for (u32 r = 0; r < g.nrows; ++r) {
      for (u32 c = 0; c < g.ncols; ++c) {
        if (!g.is_nodata(r, c)) z0 = std::min(z0, g.at(r, c));
      }
    }
    if (!std::isfinite(z0)) fail("grid has no data cells");
  }
  const auto quantize = [&](double v) {
    const double s = (v - z0) * opt.z_scale;
    if (!std::isfinite(s) || std::abs(s) > static_cast<double>(kMaxCoord)) {
      fail("height " + std::to_string(v) + " leaves the coordinate range after scaling; "
           "lower AscTerrainOptions::z_scale");
    }
    return static_cast<i64>(std::llround(s));
  };

  // Sheared lattice, generators' convention (DESIGN.md section 1.5): the
  // shear constant clears the x-extent so distinct columns occupy disjoint
  // y-ranges and no edge gets dy == 0. Row 0 (north) lands at maximal x,
  // nearest the viewer.
  const u32 G = std::max(rows, cols);
  const i64 K = opt.shear ? i64{8} * G + 16 : 0;
  std::vector<u32> vid(static_cast<std::size_t>(rows) * cols, kNoVert);
  std::vector<Vertex3> verts;
  std::vector<Triangle> tris;
  const auto sampled = [&](u32 rr, u32 cc) {  // sampled-grid -> source-grid
    return std::pair<u32, u32>{rr * stride, cc * stride};
  };
  for (u32 rr = 0; rr < rows; ++rr) {
    for (u32 cc = 0; cc < cols; ++cc) {
      const auto [r, c] = sampled(rr, cc);
      if (g.is_nodata(r, c)) continue;
      const i64 x = i64{8} * (rows - 1 - rr), yj = i64{8} * cc;
      vid[static_cast<std::size_t>(rr) * cols + cc] = static_cast<u32>(verts.size());
      verts.push_back(Vertex3{x, opt.shear ? K * yj + x : yj, quantize(g.at(r, c))});
    }
  }
  const auto v_at = [&](u32 rr, u32 cc) { return vid[static_cast<std::size_t>(rr) * cols + cc]; };
  for (u32 rr = 0; rr + 1 < rows; ++rr) {
    for (u32 cc = 0; cc + 1 < cols; ++cc) {
      const u32 v00 = v_at(rr, cc), v10 = v_at(rr + 1, cc);
      const u32 v01 = v_at(rr, cc + 1), v11 = v_at(rr + 1, cc + 1);
      if (v00 == kNoVert || v10 == kNoVert || v01 == kNoVert || v11 == kNoVert) continue;
      if ((rr + cc) % 2 == 0) {  // generators' alternating diagonal
        tris.push_back({v00, v10, v11});
        tris.push_back({v00, v11, v01});
      } else {
        tris.push_back({v00, v10, v01});
        tris.push_back({v10, v11, v01});
      }
    }
  }
  if (tris.empty()) fail("no NODATA-free cell to triangulate");

  // Drop vertices only NODATA neighbours referenced (isolated data cells).
  std::vector<u32> used(verts.size(), 0);
  for (const Triangle& tr : tris) used[tr.a] = used[tr.b] = used[tr.c] = 1;
  std::vector<u32> remap(verts.size(), 0);
  std::vector<Vertex3> packed;
  packed.reserve(verts.size());
  for (u32 i = 0; i < verts.size(); ++i) {
    if (used[i]) {
      remap[i] = static_cast<u32>(packed.size());
      packed.push_back(verts[i]);
    }
  }
  for (Triangle& tr : tris) tr = {remap[tr.a], remap[tr.b], remap[tr.c]};

  if (mapping != nullptr) {
    mapping->rows = rows;
    mapping->cols = cols;
    mapping->stride = stride;
    mapping->xll = g.xll;
    // The sampled grid's southernmost row is source row (rows-1)*stride;
    // any rows the stride drops below it shift the south edge north.
    mapping->yll =
        g.yll + static_cast<double>(g.nrows - 1 - (rows - 1) * stride) * g.cellsize;
    mapping->cell_centered = g.cell_centered;
    mapping->cellsize = g.cellsize * stride;
    mapping->nodata = g.nodata;
    mapping->vertex.assign(static_cast<std::size_t>(rows) * cols, kNoAscVertex);
    for (std::size_t i = 0; i < vid.size(); ++i) {
      if (vid[i] != kNoVert && used[vid[i]]) mapping->vertex[i] = remap[vid[i]];
    }
  }
  return Terrain::from_triangles(std::move(packed), std::move(tris));
}

Terrain load_asc(std::istream& is, const AscTerrainOptions& opt) {
  return terrain_from_asc(load_asc_grid(is), opt);
}

Terrain load_asc(const std::string& path, const AscTerrainOptions& opt) {
  return terrain_from_asc(load_asc_grid(path), opt);
}

}  // namespace thsr
