#pragma once
/// \file triangulate.hpp
/// Face triangulation for polygonal (non-TIN) terrain input. The paper
/// delegates this step to Atallah–Cole–Goodrich's parallel triangulation
/// (section 3); this repo substitutes a sequential convex-fan /
/// y-monotone-polygon triangulator (see DESIGN.md section 1): the HSR
/// algorithms only require that every face is a triangle so that the maximum
/// of z over any y-cross-section of a face is attained on its edges.

#include <vector>

#include "terrain/terrain.hpp"

namespace thsr {

/// True if the ground projection of `face` (vertex indices, CCW) is
/// convex. O(|face|) exact orientation tests.
bool face_convex_ground(std::span<const u32> face, std::span<const Vertex3> verts);

/// Fan triangulation of a convex face: |face| - 2 triangles from the
/// first vertex. O(|face|).
std::vector<Triangle> triangulate_convex(std::span<const u32> face);

/// Stack triangulation of a polygon that is monotone with respect to y in
/// ground projection (CCW orientation). O(|face|) after the O(|face|)
/// monotonicity scan.
/// \throws std::invalid_argument if the polygon is not y-monotone.
std::vector<Triangle> triangulate_monotone(std::span<const u32> face,
                                           std::span<const Vertex3> verts);

/// Triangulate every face (convex fan when possible, monotone otherwise)
/// and assemble a Terrain (Terrain::from_triangles contract). O(m log m)
/// in the total face size.
Terrain triangulate_polygonal(std::vector<Vertex3> verts,
                              const std::vector<std::vector<u32>>& faces);

}  // namespace thsr
