#pragma once
/// \file triangulate.hpp
/// Face triangulation for polygonal (non-TIN) terrain input. The paper
/// delegates this step to Atallah–Cole–Goodrich's parallel triangulation
/// (section 3); this repo substitutes a sequential convex-fan /
/// y-monotone-polygon triangulator (see DESIGN.md section 1): the HSR
/// algorithms only require that every face is a triangle so that the maximum
/// of z over any y-cross-section of a face is attained on its edges.

#include <vector>

#include "terrain/terrain.hpp"

namespace thsr {

/// True if the ground projection of `face` (vertex indices, CCW) is convex.
bool face_convex_ground(std::span<const u32> face, std::span<const Vertex3> verts);

/// Fan triangulation of a convex face.
std::vector<Triangle> triangulate_convex(std::span<const u32> face);

/// Stack triangulation of a polygon that is monotone with respect to y in
/// ground projection (CCW orientation). Throws std::invalid_argument if the
/// polygon is not y-monotone.
std::vector<Triangle> triangulate_monotone(std::span<const u32> face,
                                           std::span<const Vertex3> verts);

/// Triangulate every face (convex fan when possible, monotone otherwise) and
/// assemble a Terrain.
Terrain triangulate_polygonal(std::vector<Vertex3> verts,
                              const std::vector<std::vector<u32>>& faces);

}  // namespace thsr
