#pragma once
/// \file terrain.hpp
/// Polyhedral terrain model (TIN). A terrain is a piecewise-linear surface
/// z = f(x, y): a triangulated straight-line graph whose vertices carry
/// integer coordinates and whose ground projection is a planar subdivision
/// (paper section 2). The viewer sits at x = +infinity looking along -x;
/// the image plane is z-y.
///
/// Edges are the unit of processing in every HSR algorithm here. An edge
/// whose ground projection is parallel to the viewing axis (dy == 0)
/// projects to a zero-width vertical "sliver" in the image plane; such edges
/// are excluded from envelopes and handled by the sliver path (DESIGN.md
/// section 4.5).

#include <span>
#include <vector>

#include "geometry/predicates.hpp"

namespace thsr {

/// A terrain vertex: integer coordinates with |coordinate| <= kMaxCoord
/// (2^21, DESIGN.md section 5). x points toward the viewer, y spans the
/// image plane horizontally, z is height.
struct Vertex3 {
  i64 x{0};  ///< depth axis: the viewer sits at x = +infinity
  i64 y{0};  ///< image-plane abscissa
  i64 z{0};  ///< height (the terrain is z = f(x, y))
  friend constexpr bool operator==(const Vertex3&, const Vertex3&) = default;
};

/// A triangular face as three vertex indices. Orientation is free: the
/// library derives ground orientation from coordinates where needed.
struct Triangle {
  u32 a{0};  ///< first vertex index
  u32 b{0};  ///< second vertex index
  u32 c{0};  ///< third vertex index
};

/// Canonical undirected edge: a < b as vertex indices.
struct Edge {
  u32 a{0};  ///< smaller endpoint index
  u32 b{0};  ///< larger endpoint index
  friend constexpr auto operator<=>(const Edge&, const Edge&) = default;
};

/// Degenerate edge (dy == 0): a vertical segment {y} x [zlo, zhi] in the
/// image plane, with ground x-extent [xlo, xhi] (DESIGN.md section 4.5).
struct SliverInfo {
  i64 y{0};             ///< the single image-plane ordinate the edge occupies
  i64 x_lo{0}, x_hi{0}; ///< ground depth extent (x_lo <= x_hi)
  i64 z_lo{0}, z_hi{0}; ///< image-plane height extent (z_lo <= z_hi)
};

class Terrain {
 public:
  Terrain() = default;

  /// Build from a triangle soup; computes the unique edge set (sorted, so
  /// edge ids are stable in the input alone) and validates coordinate
  /// bounds and the z = f(x,y) property (no duplicate ground position).
  /// Triangle order is preserved — triangle ids are input indices.
  /// \param vertices  vertex table; every |coordinate| must be <= kMaxCoord
  /// \param triangles faces into `vertices`; must be non-degenerate in
  ///                  ground projection
  /// \return the validated terrain
  /// \throws std::invalid_argument on bound violations, degenerate faces,
  ///         or duplicate ground positions. O(m log m) in the face count.
  static Terrain from_triangles(std::vector<Vertex3> vertices, std::vector<Triangle> triangles);

  std::size_t vertex_count() const noexcept { return vertices_.size(); }  ///< number of vertices
  /// Number of faces.
  std::size_t triangle_count() const noexcept { return triangles_.size(); }
  std::size_t edge_count() const noexcept { return edges_.size(); }  ///< number of unique edges

  const Vertex3& vertex(u32 i) const { return vertices_[i]; }  ///< vertex by index
  std::span<const Vertex3> vertices() const noexcept { return vertices_; }  ///< all vertices
  /// All faces, in input order (triangle ids are input indices).
  std::span<const Triangle> triangles() const noexcept { return triangles_; }
  std::span<const Edge> edges() const noexcept { return edges_; }  ///< unique edges, sorted

  /// True when edge e's ground projection has dy == 0.
  bool is_sliver(u32 e) const {
    const Edge& ed = edges_[e];
    return vertices_[ed.a].y == vertices_[ed.b].y;
  }

  /// Image-plane segment (u = y, v = z). Requires !is_sliver(e).
  Seg2 image_segment(u32 e) const {
    const Edge& ed = edges_[e];
    const Vertex3 &p = vertices_[ed.a], &q = vertices_[ed.b];
    THSR_DCHECK(p.y != q.y);
    return p.y < q.y ? Seg2{p.y, p.z, q.y, q.z} : Seg2{q.y, q.z, p.y, p.z};
  }

  /// Ground-plane segment (u = y, v = x). Requires !is_sliver(e).
  Seg2 ground_segment(u32 e) const {
    const Edge& ed = edges_[e];
    const Vertex3 &p = vertices_[ed.a], &q = vertices_[ed.b];
    THSR_DCHECK(p.y != q.y);
    return p.y < q.y ? Seg2{p.y, p.x, q.y, q.x} : Seg2{q.y, q.x, p.y, p.x};
  }

  /// Degenerate-edge descriptor. Requires is_sliver(e).
  SliverInfo sliver(u32 e) const {
    const Edge& ed = edges_[e];
    const Vertex3 &p = vertices_[ed.a], &q = vertices_[ed.b];
    THSR_DCHECK(p.y == q.y);
    SliverInfo s;
    s.y = p.y;
    s.x_lo = std::min(p.x, q.x);
    s.x_hi = std::max(p.x, q.x);
    s.z_lo = std::min(p.z, q.z);
    s.z_hi = std::max(p.z, q.z);
    return s;
  }

  i64 min_y() const noexcept { return min_y_; }          ///< smallest vertex ordinate
  i64 max_y() const noexcept { return max_y_; }          ///< largest vertex ordinate
  i64 max_abs_coord() const noexcept { return max_abs_; } ///< largest |coordinate| present

  /// O(min(pairs, n^2)) check that ground projections of non-sliver edges do
  /// not properly cross (test helper; terrains built by the generators hold
  /// this by construction).
  bool projections_planar(std::size_t pair_limit = 2'000'000) const;

  /// Exact azimuth rotation: ground coordinates map through
  /// (x, y) -> (a*x - b*y, b*x + a*y), a rotation by atan2(b, a) scaled by
  /// sqrt(a^2+b^2) (scaling does not affect visibility). With (a, b) from a
  /// Pythagorean triple this realizes exact rational view angles — viewing
  /// the rotated terrain along -x equals viewing the original from that
  /// azimuth. Throws if the scaled coordinates leave the admissible range.
  Terrain rotate_ground(i64 a, i64 b) const;

 private:
  std::vector<Vertex3> vertices_;
  std::vector<Triangle> triangles_;
  std::vector<Edge> edges_;
  i64 min_y_{0}, max_y_{0}, max_abs_{0};
};

}  // namespace thsr
