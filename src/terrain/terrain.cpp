#include "terrain/terrain.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace thsr {
namespace {

// Exact orientation of c relative to segment a->b in the ground plane (y,x).
int orient_ground(const Vertex3& a, const Vertex3& b, const Vertex3& c) {
  const i128 d = i128{b.y - a.y} * (c.x - a.x) - i128{b.x - a.x} * (c.y - a.y);
  return sgn128(d);
}

bool proper_cross(const Vertex3& a0, const Vertex3& a1, const Vertex3& b0, const Vertex3& b1) {
  const int o1 = orient_ground(a0, a1, b0), o2 = orient_ground(a0, a1, b1);
  const int o3 = orient_ground(b0, b1, a0), o4 = orient_ground(b0, b1, a1);
  return o1 * o2 < 0 && o3 * o4 < 0;
}

}  // namespace

Terrain Terrain::from_triangles(std::vector<Vertex3> vertices, std::vector<Triangle> triangles) {
  Terrain t;
  t.vertices_ = std::move(vertices);
  t.triangles_ = std::move(triangles);

  for (const Vertex3& v : t.vertices_) {
    if (std::abs(v.x) > kMaxCoord || std::abs(v.y) > kMaxCoord || std::abs(v.z) > kMaxCoord) {
      throw std::invalid_argument("Terrain: coordinate exceeds kMaxCoord (2^21)");
    }
  }
  // z = f(x,y): no two vertices share a ground position.
  {
    std::vector<u32> idx(t.vertices_.size());
    for (u32 i = 0; i < idx.size(); ++i) idx[i] = i;
    std::sort(idx.begin(), idx.end(), [&](u32 i, u32 j) {
      const Vertex3 &a = t.vertices_[i], &b = t.vertices_[j];
      return a.x != b.x ? a.x < b.x : a.y < b.y;
    });
    for (std::size_t i = 1; i < idx.size(); ++i) {
      const Vertex3 &a = t.vertices_[idx[i - 1]], &b = t.vertices_[idx[i]];
      if (a.x == b.x && a.y == b.y) {
        throw std::invalid_argument("Terrain: duplicate ground position (not a function z=f(x,y))");
      }
    }
  }

  std::vector<Edge> es;
  es.reserve(t.triangles_.size() * 3);
  const auto n_verts = static_cast<u32>(t.vertices_.size());
  for (const Triangle& tr : t.triangles_) {
    THSR_CHECK(tr.a < n_verts && tr.b < n_verts && tr.c < n_verts);
    THSR_CHECK(tr.a != tr.b && tr.b != tr.c && tr.a != tr.c);
    THSR_CHECK(orient_ground(t.vertices_[tr.a], t.vertices_[tr.b], t.vertices_[tr.c]) != 0);
    const auto mk = [](u32 p, u32 q) { return Edge{std::min(p, q), std::max(p, q)}; };
    es.push_back(mk(tr.a, tr.b));
    es.push_back(mk(tr.b, tr.c));
    es.push_back(mk(tr.a, tr.c));
  }
  std::sort(es.begin(), es.end());
  es.erase(std::unique(es.begin(), es.end()), es.end());
  t.edges_ = std::move(es);

  if (!t.vertices_.empty()) {
    t.min_y_ = t.max_y_ = t.vertices_[0].y;
    for (const Vertex3& v : t.vertices_) {
      t.min_y_ = std::min(t.min_y_, v.y);
      t.max_y_ = std::max(t.max_y_, v.y);
      t.max_abs_ = std::max({t.max_abs_, std::abs(v.x), std::abs(v.y), std::abs(v.z)});
    }
  }
  return t;
}

Terrain Terrain::rotate_ground(i64 a, i64 b) const {
  THSR_CHECK(a != 0 || b != 0);
  std::vector<Vertex3> vs(vertices_.begin(), vertices_.end());
  for (Vertex3& v : vs) {
    const i64 x = a * v.x - b * v.y;
    const i64 y = b * v.x + a * v.y;
    v.x = x;
    v.y = y;
  }
  return from_triangles(std::move(vs), {triangles_.begin(), triangles_.end()});
}

bool Terrain::projections_planar(std::size_t pair_limit) const {
  std::size_t checked = 0;
  for (std::size_t i = 0; i < edges_.size(); ++i) {
    for (std::size_t j = i + 1; j < edges_.size(); ++j) {
      if (++checked > pair_limit) return true;  // budget exhausted: vacuous pass
      const Edge &e = edges_[i], &f = edges_[j];
      if (proper_cross(vertices_[e.a], vertices_[e.b], vertices_[f.a], vertices_[f.b])) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace thsr
