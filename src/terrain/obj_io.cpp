#include "terrain/obj_io.hpp"

#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace thsr {

void save_obj(const Terrain& t, std::ostream& os) {
  os << "# thsr terrain: " << t.vertex_count() << " vertices, " << t.triangle_count()
     << " triangles\n";
  for (const Vertex3& v : t.vertices()) {
    os << "v " << v.x << ' ' << v.y << ' ' << v.z << '\n';
  }
  for (const Triangle& tr : t.triangles()) {
    os << "f " << tr.a + 1 << ' ' << tr.b + 1 << ' ' << tr.c + 1 << '\n';
  }
}

void save_obj(const Terrain& t, const std::string& path) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("save_obj: cannot open " + path);
  save_obj(t, os);
}

Terrain load_obj(std::istream& is, double scale) {
  std::vector<Vertex3> verts;
  std::vector<Triangle> tris;
  std::string line;
  std::size_t lineno = 0;
  const auto quantize = [&](double v) {
    const double s = v * scale;
    if (std::abs(s) > static_cast<double>(kMaxCoord)) {
      throw std::runtime_error("load_obj: coordinate out of range at line " +
                               std::to_string(lineno));
    }
    return static_cast<i64>(std::llround(s));
  };
  while (std::getline(is, line)) {
    ++lineno;
    std::istringstream ls(line);
    std::string tag;
    if (!(ls >> tag) || tag.empty() || tag[0] == '#') continue;
    if (tag == "v") {
      double x, y, z;
      if (!(ls >> x >> y >> z)) {
        throw std::runtime_error("load_obj: bad vertex at line " + std::to_string(lineno));
      }
      verts.push_back({quantize(x), quantize(y), quantize(z)});
    } else if (tag == "f") {
      long a, b, c;
      if (!(ls >> a >> b >> c)) {
        throw std::runtime_error("load_obj: bad face at line " + std::to_string(lineno));
      }
      long extra;
      if (ls >> extra) {
        throw std::runtime_error("load_obj: non-triangular face at line " +
                                 std::to_string(lineno));
      }
      const auto fix = [&](long i) {
        const long n = static_cast<long>(verts.size());
        if (i < 0) i = n + 1 + i;  // OBJ negative indexing
        if (i < 1 || i > n) {
          throw std::runtime_error("load_obj: face index out of range at line " +
                                   std::to_string(lineno));
        }
        return static_cast<u32>(i - 1);
      };
      tris.push_back({fix(a), fix(b), fix(c)});
    }
  }
  return Terrain::from_triangles(std::move(verts), std::move(tris));
}

Terrain load_obj(const std::string& path, double scale) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("load_obj: cannot open " + path);
  return load_obj(is, scale);
}

}  // namespace thsr
