#pragma once
/// \file asc_io.hpp
/// ESRI ASCII-grid (.asc) DEM IO: the bridge from real GIS rasters to the
/// integer-lattice terrains the exact predicates require.
///
/// An .asc file is a header (ncols/nrows, llcorner or llcenter origin,
/// cellsize, optional NODATA_value) followed by nrows x ncols height
/// samples, row 0 = northernmost. `load_asc_grid` parses that verbatim
/// into an AscGrid; `terrain_from_asc` resamples it onto the same sheared
/// integer lattice the synthetic generators use (DESIGN.md section 1.5):
/// ground spacing 8, y' = K*(8*col) + x so no edge is parallel to the
/// viewing axis yet every coordinate stays integral. Heights are
/// quantized like OBJ input (offset, scale, round — DESIGN.md section 5);
/// NODATA cells become holes (no triangles), which the terrain model and
/// all three algorithms handle as a smaller edge set.
///
/// Lattice budget: |coordinate| <= 2^21 caps the sheared lattice at
/// kMaxAscGrid (180) samples per side — the same bound as the generators.
/// Larger rasters are downsampled by a row/column stride (automatic by
/// default), trading resolution for exactness, not the other way around.
///
/// All loaders throw std::runtime_error on malformed input (missing or
/// duplicate header keys, short or non-numeric data, out-of-range
/// heights), with the offending line in the message.

#include <iosfwd>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "terrain/terrain.hpp"

namespace thsr {

/// Largest per-side sample count `terrain_from_asc` accepts after
/// striding: keeps the sheared lattice within kMaxCoord (section 5).
inline constexpr u32 kMaxAscGrid = 180;

/// A parsed ESRI ASCII grid, exactly as the file states it.
struct AscGrid {
  u32 ncols{0}, nrows{0};
  double xll{0}, yll{0};        ///< lower-left origin (corner or center)
  bool cell_centered{false};    ///< true when the file used xllcenter/yllcenter
  double cellsize{1.0};
  std::optional<double> nodata; ///< NODATA_value when the header declares one
  std::vector<double> values;   ///< row-major, row 0 = northernmost

  double at(u32 row, u32 col) const { return values[static_cast<std::size_t>(row) * ncols + col]; }
  bool is_nodata(u32 row, u32 col) const { return nodata && at(row, col) == *nodata; }
};

AscGrid load_asc_grid(std::istream& is);
AscGrid load_asc_grid(const std::string& path);

/// Write `g` back out as an .asc file (the exact shape load_asc_grid
/// parses; round-trips bit-exactly for finite values).
void save_asc_grid(const AscGrid& g, std::ostream& os);
void save_asc_grid(const AscGrid& g, const std::string& path);

struct AscTerrainOptions {
  double z_scale{1.0};   ///< multiply (offset) heights before rounding to the lattice
  bool normalize_z{true};///< subtract the minimum data height first (keeps z small)
  bool shear{true};      ///< generators' general-position shear; false = axis-aligned
                         ///< lattice whose cross-rows are degenerate sliver edges
  u32 stride{0};         ///< sample every stride-th row/col; 0 = smallest stride
                         ///< that fits kMaxAscGrid
};

/// Sampled-grid site with no terrain vertex (a NODATA hole).
inline constexpr u32 kNoAscVertex = 0xffffffffu;

/// Registration of a terrain built by `terrain_from_asc` back onto the
/// source DEM: which (strided) grid sample became which terrain vertex,
/// plus the georeferencing of the *sampled* grid so raster products
/// (raster/viewshed.hpp) can be written as `.asc` files aligned with the
/// source. Row 0 is the northernmost sampled row, matching AscGrid.
struct AscMapping {
  u32 rows{0};           ///< sampled rows ((nrows-1)/stride + 1)
  u32 cols{0};           ///< sampled cols ((ncols-1)/stride + 1)
  u32 stride{1};         ///< source rows/cols consumed per sample
  double xll{0};         ///< west edge of the sampled grid (= source xll)
  double yll{0};         ///< south edge of the *sampled* grid: the source
                         ///< yll shifted north by the rows the stride drops
  bool cell_centered{false};  ///< source grid used xllcenter/yllcenter
  double cellsize{1.0};  ///< source cellsize * stride
  std::optional<double> nodata;  ///< source NODATA_value, if declared
  std::vector<u32> vertex;  ///< rows*cols: terrain vertex id or kNoAscVertex

  /// Terrain vertex at sampled site (row, col), or kNoAscVertex.
  u32 vertex_at(u32 row, u32 col) const {
    return vertex[static_cast<std::size_t>(row) * cols + col];
  }
};

/// Resample `g` onto the integer lattice and triangulate the data cells
/// (cells with all four corners NODATA-free; alternating diagonals like
/// the generators). The northernmost row lands nearest the viewer
/// (x = +infinity); use Terrain::rotate_ground for other azimuths.
/// When `mapping` is non-null it receives the sample-to-vertex
/// registration of the result (see AscMapping).
Terrain terrain_from_asc(const AscGrid& g, const AscTerrainOptions& opt = {},
                         AscMapping* mapping = nullptr);

/// Parse + resample in one step.
Terrain load_asc(std::istream& is, const AscTerrainOptions& opt = {});
Terrain load_asc(const std::string& path, const AscTerrainOptions& opt = {});

/// An .asc header alone — ncols/nrows and georeferencing exactly as the
/// file states them, no samples. What the streaming reader hands out
/// before any row is parsed.
struct AscHeader {
  u32 ncols{0}, nrows{0};
  double xll{0}, yll{0};
  bool cell_centered{false};
  double cellsize{1.0};
  std::optional<double> nodata;
};

/// Streaming row reader for .asc payloads: parses the header eagerly and
/// the height samples one row at a time, so a grid far larger than
/// resident memory never materializes as a whole — the feed for the
/// out-of-core pipeline (src/stream/). Unlike `load_asc_grid` there is
/// **no total-sample cap**: only one row (ncols doubles) is buffered per
/// read. Error contract matches the loaders: std::runtime_error on any
/// malformed input — short payloads, a row cut off by EOF, non-numeric
/// samples, header dims larger than the data actually present — never a
/// crash or UB (tests/test_io.cpp drives the adversarial corpus under
/// ASan).
///
/// The path constructor memory-maps the file when the platform allows
/// (zero-copy: the payload is parsed straight out of the mapping through
/// a streambuf view) and falls back to buffered ifstream reads; the
/// istream constructor serves in-memory tests. Either way the underlying
/// source must be seekable: byte offsets of visited rows are recorded as
/// the reader advances, so windowed re-reads (`read_rows`) and a second
/// pass (`reset`, e.g. a z-range prescan before the solve pass) seek
/// instead of re-parsing from the top.
class AscRowReader {
 public:
  /// Wrap a seekable stream (not owned; must outlive the reader).
  explicit AscRowReader(std::istream& is);
  /// Open `path`, memory-mapping it when possible.
  explicit AscRowReader(const std::string& path, bool prefer_mmap = true);
  ~AscRowReader();
  AscRowReader(AscRowReader&&) noexcept;
  AscRowReader& operator=(AscRowReader&&) noexcept;

  const AscHeader& header() const noexcept;
  bool mapped() const noexcept;    ///< true when reading out of an mmap
  u32 next_row() const noexcept;   ///< index of the next unread row

  /// Parse the next row's ncols samples into `out` (size() >= ncols).
  /// Throws when the payload ends mid-row or holds a non-numeric token.
  void read_row(std::span<double> out);

  /// Parse and discard the next `n` rows (they are validated like any
  /// read — skipping is not seeking past unchecked bytes unless the rows
  /// were visited before, in which case the recorded offset is used).
  void skip_rows(u32 n);

  /// Read rows [row_lo, row_hi) into `out`, row-major ((row_hi - row_lo)
  /// * ncols doubles). Rows before next_row() are reachable again via
  /// their recorded offsets; rows beyond are parsed forward.
  void read_rows(u32 row_lo, u32 row_hi, std::span<double> out);

  /// Rewind to the first payload row (a new pass; offsets are kept).
  void reset();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Windowed load: rows [row_lo, row_hi) of the file as an AscGrid whose
/// georeferencing is shifted to the window (yll moves north past the
/// dropped southern rows). Bitwise-identical values to the same rows of a
/// whole-file `load_asc_grid` (tests/test_io.cpp round-trips both).
AscGrid load_asc_window(const std::string& path, u32 row_lo, u32 row_hi);

}  // namespace thsr
