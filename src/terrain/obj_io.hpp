#pragma once
/// \file obj_io.hpp
/// Wavefront-OBJ-subset IO for terrains: `v x y z` vertices and `f i j k`
/// triangular faces (1-based). Floating-point vertices are quantized onto
/// the integer grid required by the exact predicates (DESIGN.md section 5);
/// `scale` controls the quantization resolution.

#include <iosfwd>
#include <string>

#include "terrain/terrain.hpp"

namespace thsr {

/// Write the terrain as OBJ (`v` lines in vertex order, then `f` lines in
/// triangle order; 1-based indices). O(n).
void save_obj(const Terrain& t, std::ostream& os);
/// \overload Opens `path` for writing; throws std::runtime_error when it cannot.
void save_obj(const Terrain& t, const std::string& path);

/// Load a triangle-mesh OBJ.
/// \param is    the OBJ text (only `v`/`f` records; `#` comments allowed)
/// \param scale coordinates are multiplied by `scale`, then rounded to the
///              integer lattice the exact predicates require
/// \return the validated terrain (Terrain::from_triangles contract)
/// \throws std::runtime_error on parse errors, coordinate-bound
///         violations after scaling, or non-triangular faces. O(n).
Terrain load_obj(std::istream& is, double scale = 1.0);
/// \overload Opens `path` for reading; throws std::runtime_error when it cannot.
Terrain load_obj(const std::string& path, double scale = 1.0);

}  // namespace thsr
