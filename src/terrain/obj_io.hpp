#pragma once
/// \file obj_io.hpp
/// Wavefront-OBJ-subset IO for terrains: `v x y z` vertices and `f i j k`
/// triangular faces (1-based). Floating-point vertices are quantized onto
/// the integer grid required by the exact predicates (DESIGN.md section 5);
/// `scale` controls the quantization resolution.

#include <iosfwd>
#include <string>

#include "terrain/terrain.hpp"

namespace thsr {

/// Write the terrain as OBJ.
void save_obj(const Terrain& t, std::ostream& os);
void save_obj(const Terrain& t, const std::string& path);

/// Load a triangle-mesh OBJ; coordinates are multiplied by `scale` and
/// rounded to integers. Throws std::runtime_error on parse errors, bound
/// violations, or non-triangular faces.
Terrain load_obj(std::istream& is, double scale = 1.0);
Terrain load_obj(const std::string& path, double scale = 1.0);

}  // namespace thsr
