#pragma once
/// \file generators.hpp
/// Synthetic terrain families with *tunable output size* k. The paper's
/// central claim is output-size sensitivity, so the workload generator must
/// span the whole k/n spectrum: `ridge_front` (k << n, one wall occludes a
/// rough interior), `fbm` (realistic GIS relief, k = Theta(n) mixed),
/// `terrace_back` (k ~ n, amphitheatre fully visible), `spikes` (k tuned by
/// spike density), `valley`, and `skyline` (plateaus and exact ties, the
/// degeneracy stress). All are deterministic in (family, grid, seed).
///
/// Grids are built on a sheared lattice y' = K*j + x(i) by default, which is
/// how the generator realizes "general position": no edge is parallel to the
/// viewing axis, yet coordinates stay integral (DESIGN.md section 1).
/// Setting shear=false yields axis-aligned grids whose x-rows are degenerate
/// "sliver" edges — the degeneracy test path.

#include <string>

#include "terrain/terrain.hpp"

namespace thsr {

enum class Family { Fbm, RidgeFront, TerraceBack, Spikes, Valley, Skyline };

struct GenOptions {
  Family family{Family::Fbm};
  u32 grid{32};          ///< vertices per side; n_edges ~ 3*(grid-1)^2
  u64 seed{1};
  i64 amplitude{0};      ///< max height; 0 = auto (4 * grid)
  bool shear{true};      ///< general-position lattice (no sliver edges)
  bool jitter{false};    ///< perturb interior vertices by ±1 lattice unit:
                         ///< irregular TINs instead of a regular lattice
                         ///< (triangle orientations provably survive, see
                         ///< generators.cpp); boundary vertices stay fixed
  double spike_density{0.05};  ///< Spikes family only
};

/// Build a terrain of the requested family. Deterministic in
/// (family, grid, seed, shear, jitter); O(grid^2) vertices and
/// ~3*(grid-1)^2 edges (DESIGN.md section 1.5 for the lattice).
Terrain make_terrain(const GenOptions& opt);

/// Family from its bench/CLI name ("fbm", "ridge_front", ...). Throws on
/// unknown names.
Family family_from_name(const std::string& name);
const char* family_name(Family f) noexcept;

/// All families, for parameterized tests/benches.
inline constexpr Family kAllFamilies[] = {Family::Fbm,    Family::RidgeFront, Family::TerraceBack,
                                          Family::Spikes, Family::Valley,     Family::Skyline};

}  // namespace thsr
