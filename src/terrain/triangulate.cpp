#include "terrain/triangulate.hpp"

#include <algorithm>
#include <stdexcept>

namespace thsr {
namespace {

int orient_ground(const Vertex3& a, const Vertex3& b, const Vertex3& c) {
  const i128 d = i128{b.y - a.y} * (c.x - a.x) - i128{b.x - a.x} * (c.y - a.y);
  return sgn128(d);
}

// Ground order along the sweep: by y, ties by x.
bool ground_less(const Vertex3& a, const Vertex3& b) {
  return a.y != b.y ? a.y < b.y : a.x < b.x;
}

}  // namespace

bool face_convex_ground(std::span<const u32> face, std::span<const Vertex3> verts) {
  const std::size_t n = face.size();
  if (n < 3) return false;
  for (std::size_t i = 0; i < n; ++i) {
    const Vertex3& a = verts[face[i]];
    const Vertex3& b = verts[face[(i + 1) % n]];
    const Vertex3& c = verts[face[(i + 2) % n]];
    if (orient_ground(a, b, c) < 0) return false;  // CCW faces: no right turns
  }
  return true;
}

std::vector<Triangle> triangulate_convex(std::span<const u32> face) {
  THSR_CHECK(face.size() >= 3);
  std::vector<Triangle> out;
  out.reserve(face.size() - 2);
  for (std::size_t i = 1; i + 1 < face.size(); ++i) {
    out.push_back({face[0], face[i], face[i + 1]});
  }
  return out;
}

std::vector<Triangle> triangulate_monotone(std::span<const u32> face,
                                           std::span<const Vertex3> verts) {
  const std::size_t n = face.size();
  THSR_CHECK(n >= 3);
  if (n == 3) return {Triangle{face[0], face[1], face[2]}};

  // Locate the ground-minimum and maximum corners; the two boundary chains
  // between them must each be monotone in the ground order.
  std::size_t lo = 0, hi = 0;
  for (std::size_t i = 1; i < n; ++i) {
    if (ground_less(verts[face[i]], verts[face[lo]])) lo = i;
    if (ground_less(verts[face[hi]], verts[face[i]])) hi = i;
  }
  // chain A: lo -> hi walking forward; chain B: lo -> hi walking backward.
  std::vector<u32> merged;  // all vertices in ground order, chain-tagged
  std::vector<bool> on_a;
  {
    std::vector<u32> a, b;
    for (std::size_t i = lo;; i = (i + 1) % n) {
      a.push_back(face[i]);
      if (i == hi) break;
    }
    for (std::size_t i = lo;; i = (i + n - 1) % n) {
      b.push_back(face[i]);
      if (i == hi) break;
    }
    const auto check_mono = [&](const std::vector<u32>& c) {
      for (std::size_t i = 1; i < c.size(); ++i) {
        if (!ground_less(verts[c[i - 1]], verts[c[i]])) {
          throw std::invalid_argument("triangulate_monotone: polygon is not y-monotone");
        }
      }
    };
    check_mono(a);
    check_mono(b);
    std::size_t ia = 0, ib = 1;  // skip duplicate lo on chain b
    const std::size_t ea = a.size(), eb = b.size() - 1;  // skip duplicate hi on chain b
    while (ia < ea || ib < eb) {
      const bool take_a =
          ib >= eb || (ia < ea && ground_less(verts[a[ia]], verts[b[ib]]));
      merged.push_back(take_a ? a[ia] : b[ib]);
      on_a.push_back(take_a);
      take_a ? ++ia : ++ib;
    }
  }

  // Standard monotone-polygon stack algorithm. Emitted triangles are
  // orientation-normalized to CCW in the ground plane.
  std::vector<Triangle> out;
  out.reserve(n - 2);
  const auto emit = [&](u32 a, u32 b, u32 c) {
    if (orient_ground(verts[a], verts[b], verts[c]) < 0) std::swap(b, c);
    out.push_back({a, b, c});
  };
  std::vector<std::size_t> st{0, 1};
  for (std::size_t i = 2; i < merged.size(); ++i) {
    if (on_a[i] != on_a[st.back()]) {
      while (st.size() > 1) {
        const std::size_t p = st.back();
        st.pop_back();
        emit(merged[st.back()], merged[p], merged[i]);
      }
      st.pop_back();
      st.push_back(i - 1);
      st.push_back(i);
    } else {
      std::size_t last = st.back();
      st.pop_back();
      while (!st.empty()) {
        const Vertex3& u = verts[merged[st.back()]];
        const Vertex3& v = verts[merged[last]];
        const Vertex3& w = verts[merged[i]];
        const int o = orient_ground(u, v, w);
        const bool convex = on_a[i] ? o > 0 : o < 0;
        if (!convex) break;
        emit(merged[st.back()], merged[last], merged[i]);
        last = st.back();
        st.pop_back();
      }
      st.push_back(last);
      st.push_back(i);
    }
  }
  return out;
}

Terrain triangulate_polygonal(std::vector<Vertex3> verts,
                              const std::vector<std::vector<u32>>& faces) {
  std::vector<Triangle> tris;
  for (const auto& f : faces) {
    std::vector<Triangle> part = face_convex_ground(f, verts)
                                     ? triangulate_convex(f)
                                     : triangulate_monotone(f, verts);
    tris.insert(tris.end(), part.begin(), part.end());
  }
  return Terrain::from_triangles(std::move(verts), std::move(tris));
}

}  // namespace thsr
