#include "terrain/generators.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace thsr {
namespace {

// SplitMix64: deterministic, seed-stable across platforms.
u64 splitmix(u64 x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

double unit_rand(u64 seed, u64 a, u64 b, u64 c = 0) noexcept {
  const u64 h = splitmix(seed ^ splitmix(a ^ splitmix(b ^ splitmix(c))));
  return static_cast<double>(h >> 11) * 0x1.0p-53;  // [0,1)
}

double smooth(double t) noexcept { return t * t * (3.0 - 2.0 * t); }

// Lattice value noise with smoothstep bilinear interpolation.
double value_noise(double x, double y, u64 seed) noexcept {
  const double fx = std::floor(x), fy = std::floor(y);
  const auto ix = static_cast<u64>(static_cast<i64>(fx) + (1 << 20));
  const auto iy = static_cast<u64>(static_cast<i64>(fy) + (1 << 20));
  const double tx = smooth(x - fx), ty = smooth(y - fy);
  const double v00 = unit_rand(seed, ix, iy), v10 = unit_rand(seed, ix + 1, iy);
  const double v01 = unit_rand(seed, ix, iy + 1), v11 = unit_rand(seed, ix + 1, iy + 1);
  const double a = v00 + (v10 - v00) * tx, b = v01 + (v11 - v01) * tx;
  return a + (b - a) * ty;
}

double fbm_noise(double x, double y, u64 seed, int octaves = 4) noexcept {
  double v = 0, amp = 1, freq = 1.0 / 12.0, norm = 0;
  for (int o = 0; o < octaves; ++o) {
    v += amp * value_noise(x * freq, y * freq, seed + static_cast<u64>(o) * 7919);
    norm += amp;
    amp *= 0.5;
    freq *= 2.0;
  }
  return v / norm;  // ~[0,1]
}

// Height field h(i,j) in [0, A]; i grows toward the viewer (x = +inf).
struct HeightField {
  u32 g;
  std::vector<i64> h;
  i64& at(u32 i, u32 j) { return h[static_cast<std::size_t>(i) * g + j]; }
};

HeightField heights(const GenOptions& opt, i64 A) {
  const u32 g = opt.grid;
  HeightField f{g, std::vector<i64>(static_cast<std::size_t>(g) * g, 0)};
  const auto clamped = [&](double v) {
    return std::clamp<i64>(static_cast<i64>(std::llround(v)), 0, A);
  };
  switch (opt.family) {
    case Family::Fbm:
      for (u32 i = 0; i < g; ++i)
        for (u32 j = 0; j < g; ++j)
          f.at(i, j) = clamped(static_cast<double>(A) * fbm_noise(i, j, opt.seed));
      break;
    case Family::RidgeFront:
      // Rough low interior, one tall wall two rows from the viewer: the wall
      // hides nearly everything behind it => k << n.
      for (u32 i = 0; i < g; ++i)
        for (u32 j = 0; j < g; ++j) {
          const double base = static_cast<double>(A) / 8.0 * fbm_noise(i, j, opt.seed);
          f.at(i, j) = clamped(i + 2 >= g ? static_cast<double>(A) : base);
        }
      break;
    case Family::TerraceBack:
      // Monotone ascent away from the viewer: every row clears the nearer
      // ones => the whole surface is visible, k ~ n.
      {
        const double step = std::max(1.0, static_cast<double>(A) / g);
        for (u32 i = 0; i < g; ++i)
          for (u32 j = 0; j < g; ++j) {
            const double rough = 0.4 * step * unit_rand(opt.seed, i, j, 3);
            f.at(i, j) = clamped(step * static_cast<double>(g - 1 - i) + rough);
          }
      }
      break;
    case Family::Spikes:
      for (u32 i = 0; i < g; ++i)
        for (u32 j = 0; j < g; ++j) {
          const bool spike = unit_rand(opt.seed, i, j, 1) < opt.spike_density;
          f.at(i, j) =
              spike ? clamped(static_cast<double>(A) * (0.5 + 0.5 * unit_rand(opt.seed, i, j, 2)))
                    : 0;
        }
      break;
    case Family::Valley:
      for (u32 i = 0; i < g; ++i)
        for (u32 j = 0; j < g; ++j) {
          const double d = std::abs(static_cast<double>(i) - static_cast<double>(g) / 2.0);
          const double slope = 2.0 * static_cast<double>(A) * d / g;
          f.at(i, j) = clamped(slope + static_cast<double>(A) / 6.0 * fbm_noise(i, j, opt.seed));
        }
      break;
    case Family::Skyline: {
      // Random axis-aligned blocks with plateau heights: exact ties and long
      // collinear stretches (degeneracy stress).
      const u32 blocks = std::max<u32>(4, g / 2);
      for (u32 b = 0; b < blocks; ++b) {
        const auto pick = [&](u64 c, u32 span) {
          return static_cast<u32>(unit_rand(opt.seed, b, c) * span);
        };
        u32 i0 = pick(11, g), i1 = std::min<u32>(g - 1, i0 + 1 + pick(13, g / 4 + 1));
        u32 j0 = pick(17, g), j1 = std::min<u32>(g - 1, j0 + 1 + pick(19, g / 4 + 1));
        const i64 hb =
            1 + static_cast<i64>(unit_rand(opt.seed, b, 23) * static_cast<double>(A - 1));
        for (u32 i = i0; i <= i1; ++i)
          for (u32 j = j0; j <= j1; ++j) f.at(i, j) = std::max(f.at(i, j), hb);
      }
      break;
    }
  }
  return f;
}

}  // namespace

Terrain make_terrain(const GenOptions& opt) {
  THSR_CHECK(opt.grid >= 2);
  THSR_CHECK(opt.grid <= 180);  // keeps sheared coordinates (~64*grid^2) within kMaxCoord
  const u32 g = opt.grid;
  const i64 A = opt.amplitude > 0 ? opt.amplitude : i64{4} * g;
  THSR_CHECK(A <= kMaxCoord);

  HeightField f = heights(opt, A);

  // Lattice: ground spacing 8; with shear, y = K*yj + x so no edge has
  // dy == 0 (row edges get dy = dx != 0; others get |dy| >= K - |dx| > 0).
  // Jitter moves interior vertices by at most 1 per ground coordinate. A
  // half-cell triangle's ground orientation determinant is 64; writing the
  // perturbed determinant (AB+d1)x(AC+d2) = 64 + AB x d2 + d1 x AC + d1 x d2
  // with |d| <= (2,2) componentwise bounds the change by 16+32+8 = 56 < 64,
  // so triangle orientations — and hence planarity of the ground subdivision
  // — survive the jitter; the shear is linear and preserves both.
  const i64 K = opt.shear ? i64{8} * g + 16 : 0;
  std::vector<Vertex3> verts(static_cast<std::size_t>(g) * g);
  for (u32 i = 0; i < g; ++i) {
    for (u32 j = 0; j < g; ++j) {
      i64 x = i64{8} * i, yj = i64{8} * j;
      if (opt.jitter && i > 0 && i + 1 < g && j > 0 && j + 1 < g) {
        x += static_cast<i64>(unit_rand(opt.seed, i, j, 101) * 3.0) - 1;
        yj += static_cast<i64>(unit_rand(opt.seed, i, j, 103) * 3.0) - 1;
      }
      verts[static_cast<std::size_t>(i) * g + j] =
          Vertex3{x, opt.shear ? K * yj + x : yj, f.at(i, j)};
    }
  }

  std::vector<Triangle> tris;
  tris.reserve(static_cast<std::size_t>(g - 1) * (g - 1) * 2);
  const auto vid = [g](u32 i, u32 j) { return i * g + j; };
  for (u32 i = 0; i + 1 < g; ++i) {
    for (u32 j = 0; j + 1 < g; ++j) {
      // Alternate the diagonal per cell parity for a less anisotropic TIN.
      if ((i + j) % 2 == 0) {
        tris.push_back({vid(i, j), vid(i + 1, j), vid(i + 1, j + 1)});
        tris.push_back({vid(i, j), vid(i + 1, j + 1), vid(i, j + 1)});
      } else {
        tris.push_back({vid(i, j), vid(i + 1, j), vid(i, j + 1)});
        tris.push_back({vid(i + 1, j), vid(i + 1, j + 1), vid(i, j + 1)});
      }
    }
  }
  return Terrain::from_triangles(std::move(verts), std::move(tris));
}

Family family_from_name(const std::string& name) {
  for (Family f : kAllFamilies) {
    if (name == family_name(f)) return f;
  }
  throw std::invalid_argument("unknown terrain family: " + name);
}

const char* family_name(Family f) noexcept {
  switch (f) {
    case Family::Fbm: return "fbm";
    case Family::RidgeFront: return "ridge_front";
    case Family::TerraceBack: return "terrace_back";
    case Family::Spikes: return "spikes";
    case Family::Valley: return "valley";
    case Family::Skyline: return "skyline";
  }
  return "?";
}

}  // namespace thsr
