#include "cg/all_crossings.hpp"

#include <algorithm>
#include <mutex>

#include "parallel/backend.hpp"

namespace thsr {

std::vector<CrossHit> all_crossings_walk(const HullTree& t, const Seg2& s, const QY& from,
                                         const QY& to) {
  std::vector<CrossHit> out;
  QY cur = from;
  while (auto hit = t.first_crossing(s, cur, to)) {
    cur = hit->y;
    out.push_back(std::move(*hit));
  }
  return out;
}

namespace {

void split_rec(const HullTree& t, const Envelope& env, const Seg2& s, const QY& from,
               const QY& to, bool parallel, std::vector<CrossHit>& out, std::mutex& mu) {
  if (!(from < to)) return;
  // Piece index window overlapping (from, to).
  const auto& ps = env.pieces();
  const auto lo_it = std::partition_point(ps.begin(), ps.end(),
                                          [&](const EnvPiece& p) { return p.y1 <= from; });
  const auto hi_it =
      std::partition_point(lo_it, ps.end(), [&](const EnvPiece& p) { return p.y0 < to; });
  const std::size_t lo = static_cast<std::size_t>(lo_it - ps.begin());
  const std::size_t hi = static_cast<std::size_t>(hi_it - ps.begin());
  if (hi - lo <= 4) {  // small window: plain walk
    QY cur = from;
    while (auto hit = t.first_crossing(s, cur, to)) {
      cur = hit->y;
      std::lock_guard<std::mutex> lk(mu);
      out.push_back(std::move(*hit));
    }
    return;
  }
  // The "middle diagonal": a piece boundary strictly inside (from, to).
  // Index >= lo+2 has y0 >= piece[lo].y1 > from; index < hi has y0 < to.
  const QY d = ps[lo + (hi - lo) / 2].y0;
  THSR_DCHECK(from < d && d < to);
  const auto cl = t.last_crossing(s, from, d);
  const auto cr = t.first_crossing(s, d, to);
  if (cl) {
    std::lock_guard<std::mutex> lk(mu);
    out.push_back(*cl);
  }
  if (cr) {
    std::lock_guard<std::mutex> lk(mu);
    out.push_back(*cr);
  }
  par::fork_join([&] { if (cl) split_rec(t, env, s, from, cl->y, parallel, out, mu); },
                 [&] { if (cr) split_rec(t, env, s, cr->y, to, parallel, out, mu); },
                 parallel);
}

}  // namespace

std::vector<CrossHit> all_crossings_split(const HullTree& t, const Envelope& env, const Seg2& s,
                                          const QY& from, const QY& to, bool parallel) {
  std::vector<CrossHit> out;
  std::mutex mu;
  if (parallel) {
    par::run_root_task([&] { split_rec(t, env, s, from, to, true, out, mu); });
  } else {
    split_rec(t, env, s, from, to, false, out, mu);
  }
  std::sort(out.begin(), out.end(), [](const CrossHit& a, const CrossHit& b) { return a.y < b.y; });
  return out;
}

}  // namespace thsr
