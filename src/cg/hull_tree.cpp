#include "cg/hull_tree.hpp"

#include "parallel/work_depth.hpp"

namespace thsr {
namespace {
constexpr double kSlack = 0.25;  // conservative margin for double chains
}

HullTree::HullTree(const Envelope& env, std::span<const Seg2> segs) : env_(&env), segs_(segs) {
  if (env.size() == 0) return;
  nodes_.reserve(2 * env.size());
  root_ = build(0, env.size());
}

std::size_t HullTree::build(std::size_t lo, std::size_t hi) {
  const std::size_t id = nodes_.size();
  nodes_.push_back(Node{lo, hi, {}, {}});
  std::vector<HullPoint> pts;
  pts.reserve(2 * (hi - lo));
  for (std::size_t i = lo; i < hi; ++i) {
    const EnvPiece& p = env_->piece(i);
    const Seg2& s = segs_[p.edge];
    pts.push_back({p.y0.approx(), s.approx_at(p.y0)});
    pts.push_back({p.y1.approx(), s.approx_at(p.y1)});
  }
  nodes_[id].upper = build_upper_hull(pts);
  nodes_[id].lower = build_lower_hull(pts);
  if (hi - lo > 1) {
    const std::size_t mid = lo + (hi - lo) / 2;
    build(lo, mid);   // children occupy id+1 .. : locate by recomputing mid
    build(mid, hi);
  }
  return id;
}

std::optional<CrossHit> HullTree::leaf_test(std::size_t piece, const Seg2& s, const QY& from,
                                            const QY& to) const {
  const EnvPiece& p = env_->piece(piece);
  const QY lo = qmax(from, p.y0), hi = qmin(to, p.y1);
  if (!(lo < hi)) return std::nullopt;
  if (auto cr = crossing_in(s, segs_[p.edge], lo, hi)) {
    return CrossHit{*cr, piece, p.edge};
  }
  return std::nullopt;
}

template <bool Leftmost>
std::optional<CrossHit> HullTree::search(std::size_t node, const Seg2& s, const QY& from,
                                         const QY& to) const {
  const Node& n = nodes_[node];
  ++visited_;
  work::count(Op::OracleStep);
  const EnvPiece& first = env_->piece(n.lo);
  const EnvPiece& last = env_->piece(n.hi - 1);
  if (cmp(last.y1, from) <= 0 || cmp(first.y0, to) >= 0) return std::nullopt;
  // Chain pruning: a crossing needs envelope vertices on both sides of s.
  const double slope =
      static_cast<double>(s.A()) / static_cast<double>(s.B());
  const double icept = static_cast<double>(s.v0) - slope * static_cast<double>(s.u0);
  if (!maybe_point_above(n.upper, slope, icept, kSlack) ||
      !maybe_point_below(n.lower, slope, icept, kSlack)) {
    return std::nullopt;
  }
  if (n.hi - n.lo == 1) return leaf_test(n.lo, s, from, to);
  const std::size_t mid = n.lo + (n.hi - n.lo) / 2;
  // Children layout: left = node+1, right = node+1+size_of_left_subtree.
  const std::size_t left = node + 1;
  const std::size_t left_nodes = 2 * (mid - n.lo) - 1;
  const std::size_t right = left + left_nodes;
  const std::size_t a = Leftmost ? left : right;
  const std::size_t b = Leftmost ? right : left;
  if (auto hit = search<Leftmost>(a, s, from, to)) return hit;
  return search<Leftmost>(b, s, from, to);
}

std::optional<CrossHit> HullTree::first_crossing(const Seg2& s, const QY& from,
                                                 const QY& to) const {
  if (env_->size() == 0 || !(from < to)) return std::nullopt;
  work::count(Op::OracleQuery);
  return search<true>(root_, s, from, to);
}

std::optional<CrossHit> HullTree::last_crossing(const Seg2& s, const QY& from,
                                                const QY& to) const {
  if (env_->size() == 0 || !(from < to)) return std::nullopt;
  work::count(Op::OracleQuery);
  return search<false>(root_, s, from, to);
}

}  // namespace thsr
