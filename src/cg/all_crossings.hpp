#pragma once
/// \file all_crossings.hpp
/// All k_s crossings of a segment with an envelope (paper Lemma 3.2), two
/// strategies over the static ACG:
///
///  * walk  — iterate first-crossing left to right: O(k_s * T_I), the
///            sequential schedule;
///  * split — the paper's recursion: split s at the middle diagonal, find
///            the crossing nearest the diagonal on each side, recurse on the
///            outer pieces (in parallel): O(T_I log m) depth with enough
///            workers, O((1 + k_s) T_I) work.
///
/// Both report exactly the crossings interior to envelope pieces; bench
/// table_f2_acg_query compares them (experiment E7).

#include "cg/hull_tree.hpp"

namespace thsr {

std::vector<CrossHit> all_crossings_walk(const HullTree& t, const Seg2& s, const QY& from,
                                         const QY& to);

std::vector<CrossHit> all_crossings_split(const HullTree& t, const Envelope& env, const Seg2& s,
                                          const QY& from, const QY& to, bool parallel = false);

}  // namespace thsr
