#pragma once
/// \file profile_query.hpp
/// Intersection-detection oracle against a *persistent* profile version —
/// the role the paper's shared ACG structure plays in phase 2 (section 3.1,
/// Lemmas 3.2/3.6). Given a query segment s and a profile version P, the
/// oracle reports, in increasing order, every abscissa where the above/below
/// state of s relative to P changes:
///
///   * Cross — s crosses the supporting line of a profile piece inside the
///     piece (an image vertex of the visible scene), or
///   * Break — the state flips at a piece boundary (a profile discontinuity:
///     a T-vertex of the visible scene, or the edge of the floor).
///
/// The walk descends the persistent treap with conservative z-box pruning
/// (subtrees uniformly above/below the query segment are skipped wholesale,
/// possibly emitting the single boundary event they imply) and decides
/// everything else with exact rational predicates at the pieces. This
/// replaces the paper's convex-chain augmentation on the shared persistent
/// structure; the static hull tree in cg/hull_tree.hpp provides the
/// chain-augmented variant for static envelopes, and bench
/// table_e10_ablation_oracle quantifies the substitution (DESIGN.md sec. 1).
///
/// Cost: O((1 + #events) * log |P|) node visits on terrain-like profiles;
/// all published versions are immutable, so any number of walks may run
/// concurrently (CREW).

#include <vector>

#include "persist/ptreap.hpp"

namespace thsr {

enum class EventKind : unsigned char { Cross, Break };

struct TransitionEvent {
  QY y;
  int new_state{0};      ///< +1: s strictly above P just after y; -1: below/tie
  u32 profile_edge{0};   ///< crossed piece's edge (Cross) / piece entered (Break)
  EventKind kind{EventKind::Break};
};

/// State of s relative to version t just after y: +1 strictly above,
/// -1 below or tied (ties lose to the profile: the profile is in front).
int state_after(ptreap::Ref t, const Seg2& s, const QY& y, std::span<const Seg2> segs);

/// Append all transitions of s vs version t on (from, to) to `out`, in
/// increasing y order; returns the initial state just after `from`.
/// Requires [from, to] within the floor coverage (always true for terrain
/// edges) and from < to.
int walk_transitions(ptreap::Ref t, const Seg2& s, const QY& from, const QY& to,
                     std::span<const Seg2> segs, std::vector<TransitionEvent>& out);

/// True when the integer ordinate w at abscissa y lies strictly above the
/// profile on both sides of y (the sliver visibility test, DESIGN.md 4.5).
bool strictly_above_at(ptreap::Ref t, const QY& y, i64 w, std::span<const Seg2> segs);

/// Linear-scan oracle over a *materialized* (flat, fully covering) piece
/// list: identical event semantics to walk_transitions, Theta(|overlap|)
/// per query. This is the "materialize the inherited profile at every node
/// and scan it" alternative to persistence — the ablation of bench
/// table_e12_ablation_phase2 quantifies what the persistent structure saves.
int walk_transitions_scan(std::span<const PieceData> pieces, const Seg2& s, const QY& from,
                          const QY& to, std::span<const Seg2> segs,
                          std::vector<TransitionEvent>& out);

}  // namespace thsr
