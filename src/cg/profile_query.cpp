#include "cg/profile_query.hpp"

#include <algorithm>

#include "parallel/work_depth.hpp"

namespace thsr {
namespace {

int state_of(const Seg2& s, const Seg2& piece_seg, const QY& y) {
  return cmp_value_near(s, piece_seg, y, Side::After) > 0 ? +1 : -1;
}

struct Walker {
  const Seg2& s;
  const QY& from;
  const QY& to;
  std::span<const Seg2> segs;
  std::vector<TransitionEvent>& out;
  int state;
  // The query segment's double view, built once per walk; each piece's view
  // and the overlap abscissa's view are built once per piece (the batched
  // filtered-predicate protocol, DESIGN.md section 5).
  const filt::SegF sf = s.coeffs_f();

  // Process the piece p on its overlap with (from, to).
  void do_piece(const PieceData& p) {
    const QY lo = filt::qmax(from, p.y0);
    const QY hi = filt::qmin(to, p.y1);
    if (!(filt::cmp(lo, hi) < 0)) return;
    const Seg2& q = resolve_seg(segs, p.edge);
    const filt::SegF qf = q.coeffs_f();
    const filt::YF lof(lo);
    const int entry = cmp_value_near(s, sf, q, qf, lo, lof, Side::After) > 0 ? +1 : -1;
    if (entry != state) {
      out.push_back({lo, entry, p.edge, EventKind::Break});
      work::count(Op::MergeEvent);
      state = entry;
    }
    if (auto cr = crossing_in(s, sf, q, qf, lo, lof, hi)) {
      state = -state;
      out.push_back({*cr, state, p.edge, EventKind::Cross});
      work::count(Op::Crossing);
    }
  }

  // Leftmost piece of the subtree overlapping (from, to); full coverage
  // guarantees it exists whenever the overlap is non-empty.
  const PieceData& leftmost(ptreap::Ref t, const QY& olo) {
    const PieceData* p = ptreap::piece_at(t, olo, Side::After);
    THSR_CHECK(p != nullptr);
    return *p;
  }

  void visit(ptreap::Ref t, const QY& slo, const QY& shi) {
    if (!t) return;
    const QY olo = filt::qmax(slo, from);
    const QY ohi = filt::qmin(shi, to);
    if (!(filt::cmp(olo, ohi) < 0)) return;
    work::count(Op::OracleStep);

    // Conservative f64 pruning. zlo/zhi are outward-rounded subtree bounds;
    // widen the query side too, so "prune" is only ever a true negative.
    const double sa = s.approx_at(olo), sb = s.approx_at(ohi);
    const double smin = std::min(sa, sb) - 0.25, smax = std::max(sa, sb) + 0.25;
    if (smin > static_cast<double>(t->zhi)) {
      // Every piece in the subtree is strictly below s: entry states are all
      // +1 and crossings are impossible. At most one boundary event.
      if (state != +1) {
        const PieceData& p = leftmost(t, olo);
        state = +1;
        out.push_back({olo, state, p.edge, EventKind::Break});
        work::count(Op::MergeEvent);
      }
      return;
    }
    if (smax < static_cast<double>(t->zlo)) {
      // s strictly below every piece: entry states all -1, no crossings.
      if (state != -1) {
        const PieceData& p = leftmost(t, olo);
        state = -1;
        out.push_back({olo, state, p.edge, EventKind::Break});
        work::count(Op::MergeEvent);
      }
      return;
    }
    visit(t.left(), slo, t->piece.y0);
    do_piece(t->piece);
    visit(t.right(), t->piece.y1, shi);
  }
};

}  // namespace

int state_after(ptreap::Ref t, const Seg2& s, const QY& y, std::span<const Seg2> segs) {
  const PieceData* p = ptreap::piece_at(t, y, Side::After);
  THSR_CHECK(p != nullptr);
  return state_of(s, resolve_seg(segs, p->edge), y);
}

int walk_transitions(ptreap::Ref t, const Seg2& s, const QY& from, const QY& to,
                     std::span<const Seg2> segs, std::vector<TransitionEvent>& out) {
  THSR_DCHECK(from < to);
  work::count(Op::OracleQuery);
  const int initial = state_after(t, s, from, segs);
  Walker w{s, from, to, segs, out, initial};
  w.visit(t, QY::of(-kMaxCoord), QY::of(kMaxCoord));
  return initial;
}

int walk_transitions_scan(std::span<const PieceData> pieces, const Seg2& s, const QY& from,
                          const QY& to, std::span<const Seg2> segs,
                          std::vector<TransitionEvent>& out) {
  THSR_DCHECK(from < to);
  work::count(Op::OracleQuery);
  // Skip pieces entirely before the window.
  auto it = std::partition_point(pieces.begin(), pieces.end(),
                                 [&](const PieceData& p) { return filt::cmp(p.y1, from) <= 0; });
  int state = 0;
  bool first = true;
  int initial = 0;
  const filt::SegF sf = s.coeffs_f();  // once per scan, not per piece
  for (; it != pieces.end() && filt::cmp(it->y0, to) < 0; ++it) {
    const PieceData& p = *it;
    work::count(Op::OracleStep);
    const QY lo = filt::qmax(from, p.y0), hi = filt::qmin(to, p.y1);
    if (!(filt::cmp(lo, hi) < 0)) continue;
    const Seg2& q = resolve_seg(segs, p.edge);
    const filt::SegF qf = q.coeffs_f();
    const filt::YF lof(lo);
    const int entry = cmp_value_near(s, sf, q, qf, lo, lof, Side::After) > 0 ? +1 : -1;
    if (first) {
      initial = state = entry;
      first = false;
    } else if (entry != state) {
      out.push_back({lo, entry, p.edge, EventKind::Break});
      work::count(Op::MergeEvent);
      state = entry;
    }
    if (auto cr = crossing_in(s, sf, q, qf, lo, lof, hi)) {
      state = -state;
      out.push_back({*cr, state, p.edge, EventKind::Cross});
      work::count(Op::Crossing);
    }
  }
  THSR_CHECK(!first);  // full coverage: some piece always overlaps
  return initial;
}

bool strictly_above_at(ptreap::Ref t, const QY& y, i64 w, std::span<const Seg2> segs) {
  for (const Side side : {Side::Before, Side::After}) {
    if (const PieceData* p = ptreap::piece_at(t, y, side)) {
      if (cmp_value_vs_int(resolve_seg(segs, p->edge), y, w) >= 0) return false;
    }
  }
  return true;
}

}  // namespace thsr
