#pragma once
/// \file hull_tree.hpp
/// The static augmented Chazelle–Guibas structure (the paper's "ACG",
/// section 3.1, Figure 2): a balanced tree over the pieces of an envelope
/// whose every node carries the convex chains (upper and lower hulls) of its
/// pieces' endpoints — the Preparata–Vitter-style augmentation the paper
/// describes ("augment each edge ab of the CG data structure with the lower
/// convex chain of the vertices of the profile between a and b").
///
/// A first-crossing query descends from the root, tests the query line
/// against a node's chains by O(log) unimodal search, and recurses only into
/// subtrees whose chains leave the answer open, taking the leftmost hit —
/// O(log^2 m) on chain-separable inputs, exact always (chains are
/// conservative in double precision; piece-level decisions are exact
/// rational predicates). Build: O(m log m) time and space.
///
/// The structure is static, matching the paper's key design move: "the
/// underlying data-structure is static although it has to be rebuilt a
/// (small) number of times".

#include <optional>

#include "envelope/envelope.hpp"
#include "geometry/lower_hull.hpp"

namespace thsr {

struct CrossHit {
  QY y;
  std::size_t piece_index{0};  ///< index into the envelope's piece array
  u32 piece_edge{0};
};

class HullTree {
 public:
  /// Build over an envelope (kept by reference; must outlive the tree).
  HullTree(const Envelope& env, std::span<const Seg2> segs);

  /// Earliest crossing of s with the envelope in the open interval (from,to).
  std::optional<CrossHit> first_crossing(const Seg2& s, const QY& from, const QY& to) const;

  /// Latest crossing of s with the envelope in (from, to).
  std::optional<CrossHit> last_crossing(const Seg2& s, const QY& from, const QY& to) const;

  std::size_t size() const noexcept { return env_->size(); }

  /// Tree nodes visited by queries since construction (instrumentation).
  u64 nodes_visited() const noexcept { return visited_; }
  void reset_stats() const noexcept { visited_ = 0; }

 private:
  struct Node {
    std::size_t lo{0}, hi{0};  // piece index range [lo, hi)
    HullChain upper, lower;    // hulls of piece endpoints in the range
  };

  std::size_t build(std::size_t lo, std::size_t hi);
  template <bool Leftmost>
  std::optional<CrossHit> search(std::size_t node, const Seg2& s, const QY& from,
                                 const QY& to) const;
  std::optional<CrossHit> leaf_test(std::size_t piece, const Seg2& s, const QY& from,
                                    const QY& to) const;

  const Envelope* env_;
  std::span<const Seg2> segs_;
  std::vector<Node> nodes_;
  std::size_t root_{0};
  mutable u64 visited_{0};
};

}  // namespace thsr
