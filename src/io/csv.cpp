#include "io/csv.hpp"

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>

#include "support/check.hpp"

namespace thsr {

Table& Table::row(std::vector<std::string> cells) {
  THSR_CHECK(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
  return *this;
}

std::string Table::num(double v, int precision) {
  std::ostringstream ss;
  ss.precision(precision);
  ss << std::fixed << v;
  return ss.str();
}

std::string Table::num(long long v) { return std::to_string(v); }
std::string Table::num(unsigned long long v) { return std::to_string(v); }

void Table::print_markdown(std::ostream& os) const {
  std::vector<std::size_t> w(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) w[c] = headers_[c].size();
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c) w[c] = std::max(w[c], r[c].size());
  }
  const auto line = [&](const std::vector<std::string>& cells) {
    os << "|";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << ' ' << cells[c] << std::string(w[c] - cells[c].size(), ' ') << " |";
    }
    os << '\n';
  };
  line(headers_);
  os << "|";
  for (std::size_t c = 0; c < headers_.size(); ++c) os << std::string(w[c] + 2, '-') << "|";
  os << '\n';
  for (const auto& r : rows_) line(r);
  os.flush();
}

void Table::maybe_write_csv(const std::string& name) const {
  const char* flag = std::getenv("THSR_BENCH_CSV");
  if (!flag || std::string(flag) != "1") return;
  std::ofstream os(name + ".csv");
  const auto line = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << cells[c] << (c + 1 < cells.size() ? "," : "");
    }
    os << '\n';
  };
  line(headers_);
  for (const auto& r : rows_) line(r);
  std::cerr << "wrote " << name << ".csv\n";
}

}  // namespace thsr
