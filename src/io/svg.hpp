#pragma once
/// \file svg.hpp
/// SVG rendering of the image plane (z-y): terrain wireframes, envelopes,
/// and visibility maps — the "rendering procedure" consuming the
/// object-space output (paper section 2). Used by the examples.

#include <string>

#include "core/visibility.hpp"
#include "envelope/envelope.hpp"
#include "terrain/terrain.hpp"

namespace thsr {

struct SvgOptions {
  int width{1200};
  int height{500};
  bool draw_hidden{true};        ///< faint full wireframe under the visible scene
  std::string visible_color{"#0b6623"};
  std::string hidden_color{"#cccccc"};
  std::string envelope_color{"#c1121f"};
};

/// Visible scene (and optionally the hidden wireframe) of `map` over `t`.
void render_visibility_svg(const Terrain& t, const VisibilityMap& map, const std::string& path,
                           const SvgOptions& opt = {});

/// An envelope drawn over the full wireframe (debug/illustration).
void render_envelope_svg(const Terrain& t, const Envelope& env, std::span<const Seg2> segs,
                         const std::string& path, const SvgOptions& opt = {});

}  // namespace thsr
