#pragma once
/// \file band_writer.hpp
/// Incremental image emitters for the out-of-core pipeline (src/stream/):
/// the full output raster never exists in memory — finished column bands
/// land on disk as they are produced, either spliced into one seekable
/// 16-bit PGM (PgmBandWriter) or written as a set of georeferenced `.asc`
/// column tiles (AscTileSet).
///
/// Both writers enforce the pipeline's tiling contract mechanically: a
/// band overlapping an already-written column throws immediately, and
/// `finish()` throws unless the bands covered every column exactly once —
/// so a stream run that completes has provably emitted a gap-free,
/// overlap-free image (the satellite property tests/test_stream.cpp also
/// asserts on the in-memory sink).

#include <cstdint>
#include <fstream>
#include <span>
#include <string>
#include <vector>

#include "geometry/exactq.hpp"

namespace thsr::io {

/// Writes one width x height 16-bit grayscale PGM (P5, the write_pgm
/// format: big-endian sample bytes) band by band. The header and a
/// zero-filled payload are written at construction, so the file has its
/// final size up front; each band is spliced in with per-row seeks.
class PgmBandWriter {
 public:
  /// Opens `path` and writes header + zeroed payload; throws on failure.
  PgmBandWriter(const std::string& path, u32 width, u32 height, std::uint16_t maxval = 65535);
  ~PgmBandWriter();
  PgmBandWriter(const PgmBandWriter&) = delete;
  PgmBandWriter& operator=(const PgmBandWriter&) = delete;

  /// Splice columns [col_lo, col_hi): `samples` is the row-major band,
  /// (col_hi - col_lo) * height values <= maxval. Throws on an empty or
  /// out-of-range band, a sample above maxval, overlap with a previous
  /// band, or stream failure.
  void write_band(u32 col_lo, u32 col_hi, std::span<const std::uint16_t> samples);

  /// Flush and validate: throws unless every column was written exactly
  /// once. The destructor never validates (errors must not escape it).
  void finish();

  u32 width() const noexcept { return width_; }
  u32 height() const noexcept { return height_; }

 private:
  std::ofstream os_;
  u32 width_, height_;
  std::uint16_t maxval_;
  std::streamoff payload_{0};
  std::vector<unsigned char> covered_;  ///< per-column write count (0/1)
  bool finished_{false};
};

/// Writes an image as georeferenced `.asc` column tiles, one per band:
/// `<prefix>_c<col_lo>_<col_hi>.asc`, each carrying the source grid's
/// cellsize and an xll shifted to its band — GIS viewers mosaic them back
/// seamlessly. NODATA cells encode pixels with no visible surface.
class AscTileSet {
 public:
  AscTileSet(std::string prefix, u32 width, u32 height, double xll, double yll, double cellsize,
             double nodata = -9999.0);

  /// Write columns [col_lo, col_hi) as one tile: `values` row-major,
  /// (col_hi - col_lo) * height doubles (use `nodata()` for empty
  /// pixels). Returns the tile's path. Throws on overlap or bad ranges.
  std::string write_tile(u32 col_lo, u32 col_hi, std::span<const double> values);

  /// Throws unless the tiles covered every column exactly once.
  void finish();

  double nodata() const noexcept { return nodata_; }
  const std::vector<std::string>& paths() const noexcept { return paths_; }

 private:
  std::string prefix_;
  u32 width_, height_;
  double xll_, yll_, cellsize_, nodata_;
  std::vector<unsigned char> covered_;
  std::vector<std::string> paths_;
};

}  // namespace thsr::io
