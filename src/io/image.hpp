#pragma once
/// \file image.hpp
/// Minimal binary Netpbm IO: 16-bit grayscale PGM (P5) and 8-bit RGB PPM
/// (P6) — the portable containers the raster subsystem (src/raster/)
/// writes its image-space products into. Writers and readers round-trip
/// bit-exactly; readers throw std::runtime_error on malformed input
/// (bad magic, non-positive or oversized dimensions, out-of-range maxval,
/// truncated pixel data), mirroring the `.asc` loader's contract
/// (terrain/asc_io.hpp).
///
/// Only the two fixed formats are implemented — P5 with maxval up to
/// 65535 (two big-endian bytes per sample above 255, per the Netpbm
/// spec) and P6 with maxval 255 — because that is exactly what the
/// raster products need: depth/coverage/viewshed grids as PGM, the
/// visible-triangle ID map as PPM. Comments (`#`) in headers are
/// accepted on read and never emitted on write.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace thsr::io {

/// Largest accepted width/height on read: rejects hostile headers before
/// the pixel buffer is allocated (the same defensive posture as the
/// `.asc` loader's sample cap).
inline constexpr std::uint32_t kMaxImageDim = 1u << 16;

/// A grayscale image with samples in [0, maxval], row-major, row 0 = top.
struct GrayImage {
  std::uint32_t width{0};   ///< columns
  std::uint32_t height{0};  ///< rows
  std::uint16_t maxval{255};///< largest sample value (1..65535)
  std::vector<std::uint16_t> pixels;  ///< width*height samples

  /// Sample at (row, col); no bounds check beyond the debug contract.
  std::uint16_t at(std::uint32_t row, std::uint32_t col) const {
    return pixels[static_cast<std::size_t>(row) * width + col];
  }
};

/// An 8-bit RGB image (maxval 255), row-major, row 0 = top, 3 bytes per
/// pixel in R,G,B order.
struct RgbImage {
  std::uint32_t width{0};   ///< columns
  std::uint32_t height{0};  ///< rows
  std::vector<unsigned char> rgb;  ///< 3*width*height bytes
};

/// Write `img` as binary PGM (P5). Samples above 255 use the two-byte
/// big-endian encoding the spec mandates for maxval > 255. Throws on an
/// empty image, samples exceeding maxval, or stream failure.
void write_pgm(const GrayImage& img, std::ostream& os);
/// \overload Opens `path` for binary writing; throws when it cannot.
void write_pgm(const GrayImage& img, const std::string& path);

/// Parse a binary PGM (P5). Inverse of write_pgm: bit-exact round-trip.
GrayImage read_pgm(std::istream& is);
/// \overload Opens `path` for binary reading; throws when it cannot.
GrayImage read_pgm(const std::string& path);

/// Write `img` as binary PPM (P6, maxval 255). Throws on an empty image,
/// a size mismatch between `rgb` and width*height, or stream failure.
void write_ppm(const RgbImage& img, std::ostream& os);
/// \overload Opens `path` for binary writing; throws when it cannot.
void write_ppm(const RgbImage& img, const std::string& path);

/// Parse a binary PPM (P6). Inverse of write_ppm: bit-exact round-trip.
/// Accepts only maxval 255 (the one variant write_ppm emits).
RgbImage read_ppm(std::istream& is);
/// \overload Opens `path` for binary reading; throws when it cannot.
RgbImage read_ppm(const std::string& path);

}  // namespace thsr::io
