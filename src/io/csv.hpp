#pragma once
/// \file csv.hpp
/// Minimal table builder for the benchmark harness: every table bench
/// prints a Markdown table (the rows EXPERIMENTS.md cites) and optionally
/// writes CSV next to it when THSR_BENCH_CSV=1.

#include <string>
#include <vector>

namespace thsr {

class Table {
 public:
  explicit Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

  Table& row(std::vector<std::string> cells);

  /// Formatting helpers.
  static std::string num(double v, int precision = 3);
  static std::string num(long long v);
  static std::string num(unsigned long long v);

  void print_markdown(std::ostream& os) const;

  /// Honors THSR_BENCH_CSV=1; writes `<name>.csv` into the working directory.
  void maybe_write_csv(const std::string& name) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace thsr
