#include "io/band_writer.hpp"

#include <stdexcept>

#include "support/check.hpp"
#include "terrain/asc_io.hpp"

namespace thsr::io {
namespace {

[[noreturn]] void fail(const std::string& msg) { throw std::runtime_error("band_writer: " + msg); }

}  // namespace

PgmBandWriter::PgmBandWriter(const std::string& path, u32 width, u32 height,
                             std::uint16_t maxval)
    : width_(width), height_(height), maxval_(maxval) {
  if (width == 0 || height == 0) fail("empty image");
  if (maxval == 0) fail("maxval must be positive");
  os_.open(path, std::ios::binary | std::ios::trunc);
  if (!os_) fail("cannot open '" + path + "' for writing");
  os_ << "P5\n" << width_ << ' ' << height_ << '\n' << maxval_ << '\n';
  payload_ = os_.tellp();
  // Zero payload up front: the file reaches its final size before any
  // band lands, and unwritten columns read back as 0 mid-run.
  const std::vector<char> zeros(std::size_t{width_} * 2, 0);
  for (u32 r = 0; r < height_; ++r) os_.write(zeros.data(), zeros.size());
  if (!os_) fail("write failed for '" + path + "'");
  covered_.assign(width_, 0);
}

PgmBandWriter::~PgmBandWriter() = default;

void PgmBandWriter::write_band(u32 col_lo, u32 col_hi, std::span<const std::uint16_t> samples) {
  if (finished_) fail("write_band after finish()");
  if (col_lo >= col_hi || col_hi > width_) fail("band columns out of range");
  const u32 bw = col_hi - col_lo;
  if (samples.size() < std::size_t{bw} * height_) fail("band sample buffer too small");
  for (u32 c = col_lo; c < col_hi; ++c) {
    if (covered_[c]) fail("band overlaps already-written column " + std::to_string(c));
  }
  std::vector<char> row(std::size_t{bw} * 2);
  for (u32 r = 0; r < height_; ++r) {
    for (u32 c = 0; c < bw; ++c) {
      const std::uint16_t v = samples[std::size_t{r} * bw + c];
      if (v > maxval_) fail("sample exceeds maxval");
      row[std::size_t{c} * 2] = static_cast<char>(v >> 8);  // big-endian per the P5 spec
      row[std::size_t{c} * 2 + 1] = static_cast<char>(v & 0xff);
    }
    os_.seekp(payload_ + (std::streamoff{r} * width_ + col_lo) * 2);
    os_.write(row.data(), row.size());
  }
  if (!os_) fail("write failed");
  for (u32 c = col_lo; c < col_hi; ++c) covered_[c] = 1;
}

void PgmBandWriter::finish() {
  if (finished_) return;
  for (u32 c = 0; c < width_; ++c) {
    if (!covered_[c]) fail("column " + std::to_string(c) + " was never written (gap)");
  }
  os_.flush();
  if (!os_) fail("flush failed");
  finished_ = true;
}

AscTileSet::AscTileSet(std::string prefix, u32 width, u32 height, double xll, double yll,
                       double cellsize, double nodata)
    : prefix_(std::move(prefix)),
      width_(width),
      height_(height),
      xll_(xll),
      yll_(yll),
      cellsize_(cellsize),
      nodata_(nodata) {
  if (width == 0 || height == 0) fail("empty tile set");
  covered_.assign(width_, 0);
}

std::string AscTileSet::write_tile(u32 col_lo, u32 col_hi, std::span<const double> values) {
  if (col_lo >= col_hi || col_hi > width_) fail("tile columns out of range");
  const u32 bw = col_hi - col_lo;
  if (values.size() < std::size_t{bw} * height_) fail("tile value buffer too small");
  for (u32 c = col_lo; c < col_hi; ++c) {
    if (covered_[c]) fail("tile overlaps already-written column " + std::to_string(c));
  }
  AscGrid g;
  g.ncols = bw;
  g.nrows = height_;
  g.xll = xll_ + static_cast<double>(col_lo) * cellsize_;
  g.yll = yll_;
  g.cellsize = cellsize_;
  g.nodata = nodata_;
  g.values.assign(values.begin(), values.begin() + std::ptrdiff_t{bw} * height_);
  const std::string path =
      prefix_ + "_c" + std::to_string(col_lo) + "_" + std::to_string(col_hi) + ".asc";
  save_asc_grid(g, path);
  for (u32 c = col_lo; c < col_hi; ++c) covered_[c] = 1;
  paths_.push_back(path);
  return path;
}

void AscTileSet::finish() {
  for (u32 c = 0; c < width_; ++c) {
    if (!covered_[c]) fail("column " + std::to_string(c) + " was never written (gap)");
  }
}

}  // namespace thsr::io
