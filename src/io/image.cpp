#include "io/image.hpp"

#include <cctype>
#include <fstream>
#include <istream>
#include <limits>
#include <ostream>
#include <stdexcept>

namespace thsr::io {
namespace {

[[noreturn]] void fail(const std::string& what) { throw std::runtime_error("netpbm: " + what); }

/// Read one whitespace/comment-separated unsigned header token. The
/// Netpbm grammar allows `#` comments anywhere between header tokens.
std::uint64_t read_header_uint(std::istream& is, const char* what) {
  for (;;) {
    const int c = is.peek();
    if (c == '#') {
      is.ignore(std::numeric_limits<std::streamsize>::max(), '\n');
      continue;
    }
    if (std::isspace(c)) {
      is.get();
      continue;
    }
    break;
  }
  std::uint64_t v = 0;
  bool any = false;
  while (std::isdigit(is.peek())) {
    v = v * 10 + static_cast<std::uint64_t>(is.get() - '0');
    any = true;
    if (v > std::numeric_limits<std::uint32_t>::max()) fail(std::string(what) + " overflows");
  }
  if (!any) fail(std::string("missing or non-numeric ") + what);
  return v;
}

void read_magic(std::istream& is, const char* want) {
  char m[2] = {0, 0};
  is.read(m, 2);
  if (!is || m[0] != want[0] || m[1] != want[1]) {
    fail(std::string("expected magic '") + want + "'");
  }
}

struct Header {
  std::uint32_t width, height;
  std::uint32_t maxval;
};

Header read_header(std::istream& is, const char* magic, std::uint32_t maxval_cap) {
  read_magic(is, magic);
  Header h{};
  h.width = static_cast<std::uint32_t>(read_header_uint(is, "width"));
  h.height = static_cast<std::uint32_t>(read_header_uint(is, "height"));
  h.maxval = static_cast<std::uint32_t>(read_header_uint(is, "maxval"));
  if (h.width == 0 || h.height == 0) fail("zero image dimension");
  if (h.width > kMaxImageDim || h.height > kMaxImageDim) {
    fail("dimension exceeds the " + std::to_string(kMaxImageDim) + " reader cap");
  }
  if (h.maxval == 0 || h.maxval > maxval_cap) {
    fail("maxval " + std::to_string(h.maxval) + " out of range (1.." +
         std::to_string(maxval_cap) + ")");
  }
  // Exactly one whitespace byte separates the header from the raster.
  const int sep = is.get();
  if (sep == std::char_traits<char>::eof() || !std::isspace(sep)) {
    fail("missing whitespace before pixel data");
  }
  return h;
}

template <typename Img>
void check_writable(const Img& img, std::size_t bytes_expected, std::size_t bytes_have) {
  if (img.width == 0 || img.height == 0) fail("refusing to write an empty image");
  if (bytes_have != bytes_expected) fail("pixel buffer size does not match width*height");
}

}  // namespace

void write_pgm(const GrayImage& img, std::ostream& os) {
  check_writable(img, static_cast<std::size_t>(img.width) * img.height, img.pixels.size());
  if (img.maxval == 0) fail("maxval must be positive");
  for (const std::uint16_t v : img.pixels) {
    if (v > img.maxval) fail("sample exceeds maxval");
  }
  os << "P5\n" << img.width << " " << img.height << "\n" << img.maxval << "\n";
  if (img.maxval > 255) {
    for (const std::uint16_t v : img.pixels) {
      const char b[2] = {static_cast<char>(v >> 8), static_cast<char>(v & 0xff)};
      os.write(b, 2);
    }
  } else {
    for (const std::uint16_t v : img.pixels) os.put(static_cast<char>(v));
  }
  if (!os) fail("stream failure while writing PGM");
}

GrayImage read_pgm(std::istream& is) {
  const Header h = read_header(is, "P5", 65535);
  GrayImage img;
  img.width = h.width;
  img.height = h.height;
  img.maxval = static_cast<std::uint16_t>(h.maxval);
  const std::size_t n = static_cast<std::size_t>(h.width) * h.height;
  img.pixels.resize(n);
  if (h.maxval > 255) {
    std::vector<char> raw(n * 2);
    is.read(raw.data(), static_cast<std::streamsize>(raw.size()));
    if (static_cast<std::size_t>(is.gcount()) != raw.size()) fail("truncated PGM pixel data");
    for (std::size_t i = 0; i < n; ++i) {
      img.pixels[i] =
          static_cast<std::uint16_t>((static_cast<unsigned char>(raw[2 * i]) << 8) |
                                     static_cast<unsigned char>(raw[2 * i + 1]));
    }
  } else {
    std::vector<char> raw(n);
    is.read(raw.data(), static_cast<std::streamsize>(raw.size()));
    if (static_cast<std::size_t>(is.gcount()) != raw.size()) fail("truncated PGM pixel data");
    for (std::size_t i = 0; i < n; ++i) img.pixels[i] = static_cast<unsigned char>(raw[i]);
  }
  for (const std::uint16_t v : img.pixels) {
    if (v > img.maxval) fail("sample exceeds declared maxval");
  }
  return img;
}

GrayImage read_pgm(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) fail("cannot open " + path);
  return read_pgm(is);
}

void write_pgm(const GrayImage& img, const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  if (!os) fail("cannot open " + path);
  write_pgm(img, os);
}

void write_ppm(const RgbImage& img, std::ostream& os) {
  check_writable(img, static_cast<std::size_t>(img.width) * img.height * 3, img.rgb.size());
  os << "P6\n" << img.width << " " << img.height << "\n255\n";
  os.write(reinterpret_cast<const char*>(img.rgb.data()),
           static_cast<std::streamsize>(img.rgb.size()));
  if (!os) fail("stream failure while writing PPM");
}

RgbImage read_ppm(std::istream& is) {
  const Header h = read_header(is, "P6", 255);
  if (h.maxval != 255) fail("only maxval 255 PPM is supported");
  RgbImage img;
  img.width = h.width;
  img.height = h.height;
  const std::size_t n = static_cast<std::size_t>(h.width) * h.height * 3;
  img.rgb.resize(n);
  is.read(reinterpret_cast<char*>(img.rgb.data()), static_cast<std::streamsize>(n));
  if (static_cast<std::size_t>(is.gcount()) != n) fail("truncated PPM pixel data");
  return img;
}

RgbImage read_ppm(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) fail("cannot open " + path);
  return read_ppm(is);
}

void write_ppm(const RgbImage& img, const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  if (!os) fail("cannot open " + path);
  write_ppm(img, os);
}

}  // namespace thsr::io
