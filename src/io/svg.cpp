#include "io/svg.hpp"

#include <algorithm>
#include <fstream>
#include <stdexcept>

namespace thsr {
namespace {

struct Frame {
  double y0, y1, z0, z1;  // world bounds (image plane)
  int w, h;
  double sx, sy;

  Frame(const Terrain& t, const SvgOptions& opt) : w(opt.width), h(opt.height) {
    y0 = z0 = 1e300;
    y1 = z1 = -1e300;
    for (const Vertex3& v : t.vertices()) {
      y0 = std::min(y0, static_cast<double>(v.y));
      y1 = std::max(y1, static_cast<double>(v.y));
      z0 = std::min(z0, static_cast<double>(v.z));
      z1 = std::max(z1, static_cast<double>(v.z));
    }
    if (y1 <= y0) y1 = y0 + 1;
    if (z1 <= z0) z1 = z0 + 1;
    sx = (w - 20.0) / (y1 - y0);
    sy = (h - 20.0) / (z1 - z0);
  }
  double px(double y) const { return 10.0 + (y - y0) * sx; }
  double pz(double z) const { return h - 10.0 - (z - z0) * sy; }
};

class Svg {
 public:
  Svg(const std::string& path, int w, int h) : os_(path) {
    if (!os_) throw std::runtime_error("svg: cannot open " + path);
    os_ << "<svg xmlns='http://www.w3.org/2000/svg' width='" << w << "' height='" << h
        << "' viewBox='0 0 " << w << ' ' << h << "'>\n"
        << "<rect width='100%' height='100%' fill='white'/>\n";
  }
  ~Svg() { os_ << "</svg>\n"; }
  void line(double x1, double y1, double x2, double y2, const std::string& color, double width,
            double opacity = 1.0) {
    os_ << "<line x1='" << x1 << "' y1='" << y1 << "' x2='" << x2 << "' y2='" << y2
        << "' stroke='" << color << "' stroke-width='" << width << "' stroke-opacity='" << opacity
        << "'/>\n";
  }

 private:
  std::ofstream os_;
};

void draw_wireframe(Svg& svg, const Frame& f, const Terrain& t, const std::string& color,
                    double width, double opacity) {
  for (u32 e = 0; e < t.edge_count(); ++e) {
    const Edge& ed = t.edges()[e];
    const Vertex3 &a = t.vertex(ed.a), &b = t.vertex(ed.b);
    svg.line(f.px(static_cast<double>(a.y)), f.pz(static_cast<double>(a.z)),
             f.px(static_cast<double>(b.y)), f.pz(static_cast<double>(b.z)), color, width,
             opacity);
  }
}

}  // namespace

void render_visibility_svg(const Terrain& t, const VisibilityMap& map, const std::string& path,
                           const SvgOptions& opt) {
  const Frame f(t, opt);
  Svg svg(path, opt.width, opt.height);
  if (opt.draw_hidden) draw_wireframe(svg, f, t, opt.hidden_color, 0.6, 0.8);
  for (u32 e = 0; e < t.edge_count(); ++e) {
    if (t.is_sliver(e)) {
      if (const auto& s = map.sliver(e); s && s->visible) {
        const SliverInfo sv = t.sliver(e);
        svg.line(f.px(static_cast<double>(sv.y)), f.pz(static_cast<double>(sv.z_lo)),
                 f.px(static_cast<double>(sv.y)), f.pz(static_cast<double>(sv.z_hi)),
                 opt.visible_color, 1.4);
      }
      continue;
    }
    const Seg2 s = t.image_segment(e);
    for (const VisiblePiece& p : map.pieces(e)) {
      const double ya = p.y0.approx(), yb = p.y1.approx();
      svg.line(f.px(ya), f.pz(s.approx_at(ya)), f.px(yb), f.pz(s.approx_at(yb)),
               opt.visible_color, 1.4);
    }
  }
}

void render_envelope_svg(const Terrain& t, const Envelope& env, std::span<const Seg2> segs,
                         const std::string& path, const SvgOptions& opt) {
  const Frame f(t, opt);
  Svg svg(path, opt.width, opt.height);
  if (opt.draw_hidden) draw_wireframe(svg, f, t, opt.hidden_color, 0.6, 0.8);
  for (const EnvPiece& p : env.pieces()) {
    const Seg2& s = segs[p.edge];
    const double ya = p.y0.approx(), yb = p.y1.approx();
    svg.line(f.px(ya), f.pz(s.approx_at(ya)), f.px(yb), f.pz(s.approx_at(yb)),
             opt.envelope_color, 1.8);
  }
}

}  // namespace thsr
