#pragma once
/// \file viewpoint.hpp
/// Viewpoint-parameterized solves: exact reduction of "what does observer v
/// see" to the engine's one canonical question, "what is visible from
/// x = +infinity" (DESIGN.md section 1.10).
///
/// An observer sits at infinity in ground direction (dir_x, dir_y),
/// elevated above the horizontal by the rational slope elev_num/elev_den.
/// The reduction is a linear map with *integer* image — a ground rotation
/// (scaled by the direction's length, which cannot change visibility)
/// followed by a height shear:
///
///   x' = dir_x·x + dir_y·y          (observer direction becomes +x)
///   y' = dir_x·y − dir_y·x
///   z' = elev_den·z − elev_num·x'   (elevated rays become horizontal)
///
/// Rays from the observer map to +x rays of the image terrain, preserving
/// the order in which they meet the surface, so solving the transformed
/// terrain from x = +infinity *is* solving the original from the observer —
/// and because the image coordinates are integers, the solve runs in the
/// same exact arithmetic as the canonical frame: a parameterized solve is
/// bit-identical (map and work counters) to a direct solve of the
/// pre-transformed terrain (tests/test_service.cpp, bench_ci `service/*`).
///
/// The price of exactness is a width budget: the transform multiplies
/// coordinate magnitudes, and the solver's i128 predicates admit inputs
/// only up to kMaxCoord (DESIGN.md section 5). `admissible()` is the gate;
/// DESIGN.md section 1.10 derives the bound.

#include "terrain/terrain.hpp"

namespace thsr::service {

/// An observer at infinity: ground direction (dir_x, dir_y) — the observer
/// looks *along* −(dir_x, dir_y), i.e. sits on the (dir_x, dir_y) side —
/// elevated by the slope elev_num/elev_den (positive = above the horizon,
/// looking down). The default is the engine's canonical frame (+x,
/// horizontal). Exact geometric azimuths come from Pythagorean pairs
/// ((3, 4): atan2(4, 3) ≈ 53.13°); any integer pair is admissible and the
/// elevation slope is then measured in the rotation-scaled frame.
struct Viewpoint {
  i64 dir_x{1};    ///< ground direction, x component (not both zero)
  i64 dir_y{0};    ///< ground direction, y component
  i64 elev_num{0}; ///< elevation slope numerator (sign = above/below horizon)
  i64 elev_den{1}; ///< elevation slope denominator (nonzero)
  friend constexpr bool operator==(const Viewpoint&, const Viewpoint&) = default;
};

/// The unique reduced form: gcd-reduced direction and slope, elev_den > 0,
/// zero slope pinned to 0/1. Scaling a direction or slope never changes
/// what the observer sees, but it *does* change the transformed integer
/// coordinates — so every path (cache keys, cross-checks, transforms)
/// canonicalizes first, making equal viewpoints produce identical terrains
/// bit for bit. Throws std::invalid_argument on a zero direction or a zero
/// elevation denominator.
Viewpoint canonical(const Viewpoint& vp);

/// True when `vp` (canonicalized) is the canonical frame itself — the
/// transform is the identity and a prepared engine is reusable as-is.
bool is_canonical_frame(const Viewpoint& vp);

/// True when `vp` (canonicalized) fixes every ground coordinate (pure
/// height shear: dir = (1, 0)). The depth order and sliver classification
/// of a prepared engine remain valid — HsrEngine::prepare_with_order_of
/// can skip recomputing them (DESIGN.md section 1.10).
bool ground_preserving(const Viewpoint& vp);

/// Transformed-coordinate magnitude bound for a terrain whose coordinates
/// are at most `max_abs`: with R = |dir_x| + |dir_y| after
/// canonicalization, max(R·max_abs, (elev_den + |elev_num|·R)·max_abs).
u64 transformed_magnitude_bound(const Viewpoint& vp, i64 max_abs);

/// True when transforming a terrain of magnitude `max_abs` by `vp` stays
/// within the solver's kMaxCoord width budget (DESIGN.md section 1.10).
bool admissible(const Viewpoint& vp, i64 max_abs);

/// Apply the viewpoint reduction to `t`: the returned terrain, solved from
/// x = +infinity, shows exactly what the observer `vp` sees of `t`.
/// Vertex and triangle indices are preserved, so edge ids of the image
/// terrain equal edge ids of `t` and visibility maps correspond
/// edge-for-edge. The canonical frame returns a plain copy. Throws
/// std::invalid_argument when `vp` is degenerate or the transformed
/// coordinates would exceed kMaxCoord.
Terrain transform_terrain(const Terrain& t, const Viewpoint& vp);

}  // namespace thsr::service
