#include "service/engine_cache.hpp"

#include <exception>
#include <list>
#include <stdexcept>
#include <unordered_map>

namespace thsr::service {

namespace {

struct Key {
  u64 id;
  Viewpoint vp;  // canonical
  friend bool operator==(const Key&, const Key&) = default;
};

struct KeyHash {
  std::size_t operator()(const Key& k) const noexcept {
    u64 h = k.id;
    for (const i64 v : {k.vp.dir_x, k.vp.dir_y, k.vp.elev_num, k.vp.elev_den}) {
      h ^= static_cast<u64>(v) + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    }
    return static_cast<std::size_t>(h);
  }
};

}  // namespace

/// The one place PreparedView instances are assembled: resolves the reuse
/// ladder (canonical frame: no transform copy; ground-preserving with a
/// resident base: depth-order transfer; otherwise full scoped prepare) and
/// pre-builds the PCT so the finished view is safe for concurrent
/// solve_scoped callers.
struct PreparedViewBuilder {
  static std::shared_ptr<PreparedView> build(u64 id, const Viewpoint& cvp,
                                             std::shared_ptr<const Terrain> source,
                                             const PreparedView* base) {
    std::shared_ptr<PreparedView> v(new PreparedView());
    v->terrain_id_ = id;
    v->viewpoint_ = cvp;
    v->source_ = std::move(source);
    if (is_canonical_frame(cvp)) {
      v->view_terrain_ = v->source_.get();
      v->engine_.prepare_scoped(*v->view_terrain_);
    } else {
      v->transformed_ = std::make_unique<Terrain>(transform_terrain(*v->source_, cvp));
      v->view_terrain_ = v->transformed_.get();
      if (base != nullptr && ground_preserving(cvp)) {
        v->engine_.prepare_with_order_of(*v->view_terrain_, base->engine_);
        v->reused_base_order_ = true;
      } else {
        v->engine_.prepare_scoped(*v->view_terrain_);
      }
    }
    v->engine_.ensure_parallel_ready();
    return v;
  }
};

u64 PreparedView::footprint_bytes() const noexcept {
  const Terrain& t = *view_terrain_;
  u64 bytes = engine_.arena_footprint_bytes();
  // Context tables scale with the edge count: the image-plane segment
  // table, the sliver flags, and the depth order's two u32 vectors.
  bytes += t.edge_count() * (sizeof(Seg2) + 1 + 2 * sizeof(u32));
  if (transformed_) {
    bytes += t.vertex_count() * sizeof(Vertex3) + t.triangle_count() * sizeof(Triangle) +
             t.edge_count() * sizeof(Edge);
  }
  return bytes;
}

struct EngineCache::Impl {
  struct Slot {
    Key key;
    std::mutex build_mu;                   ///< serializes same-key builds
    std::shared_ptr<PreparedView> view;    ///< guarded by build_mu
    std::exception_ptr error;              ///< guarded by build_mu
    // The fields below are guarded by the cache-wide mutex `mu`.
    std::shared_ptr<PreparedView> published;  ///< set once built (base-reuse lookups)
    bool resident{false};
    u64 accounted{0};
    std::list<std::shared_ptr<Slot>>::iterator lru_it;
  };

  Options opt;
  mutable std::mutex mu;  ///< guards terrains, map, lru, stats, Slot residency fields
  std::unordered_map<u64, std::shared_ptr<const Terrain>> terrains;
  std::unordered_map<Key, std::shared_ptr<Slot>, KeyHash> map;
  std::list<std::shared_ptr<Slot>> lru;  ///< front = most recently used
  Stats stats;

  /// Prepare the view for `key` (runs on the caller's thread, outside `mu`
  /// but under the slot's build mutex). Peeks — briefly under `mu` — for a
  /// resident canonical-frame entry to transfer the depth order from.
  std::shared_ptr<PreparedView> build_view(const Key& key, std::shared_ptr<const Terrain> source) {
    const PreparedView* base = nullptr;
    std::shared_ptr<PreparedView> base_hold;  // pins the base across the build
    if (!is_canonical_frame(key.vp) && ground_preserving(key.vp)) {
      const std::lock_guard<std::mutex> lk(mu);
      const auto it = map.find(Key{key.id, Viewpoint{}});
      if (it != map.end() && it->second->published) {
        base_hold = it->second->published;
        base = base_hold.get();
      }
    }
    return PreparedViewBuilder::build(key.id, key.vp, std::move(source), base);
  }

  /// Drop least-recently-used entries until the budget holds. `keep` (the
  /// entry being acquired) is never evicted. Caller holds `mu`.
  void evict_to_budget(const Slot* keep) {
    while (stats.resident_bytes > opt.byte_budget && lru.size() > 1) {
      const std::shared_ptr<Slot>& victim = lru.back();
      if (victim.get() == keep) break;  // everything older is already gone
      victim->resident = false;
      stats.resident_bytes -= victim->accounted;
      ++stats.evictions;
      map.erase(victim->key);
      lru.pop_back();  // a leased view stays alive through its shared_ptr
    }
  }
};

EngineCache::EngineCache() : EngineCache(Options{}) {}
EngineCache::EngineCache(const Options& opt) : impl_(std::make_unique<Impl>()) {
  impl_->opt = opt;
}
EngineCache::~EngineCache() = default;

void EngineCache::add_terrain(u64 id, std::shared_ptr<const Terrain> t) {
  THSR_CHECK(t != nullptr);
  const std::lock_guard<std::mutex> lk(impl_->mu);
  impl_->terrains[id] = std::move(t);
}

bool EngineCache::has_terrain(u64 id) const {
  const std::lock_guard<std::mutex> lk(impl_->mu);
  return impl_->terrains.count(id) != 0;
}

std::shared_ptr<PreparedView> EngineCache::acquire(u64 terrain_id, const Viewpoint& vp,
                                                   bool* was_hit) {
  Impl& im = *impl_;
  const Key key{terrain_id, canonical(vp)};  // throws on degenerate viewpoints

  std::shared_ptr<const Terrain> source;
  std::shared_ptr<Impl::Slot> slot;
  {
    const std::lock_guard<std::mutex> lk(im.mu);
    const auto tit = im.terrains.find(terrain_id);
    if (tit == im.terrains.end()) {
      throw std::invalid_argument("EngineCache: unregistered terrain id");
    }
    source = tit->second;
    const auto sit = im.map.find(key);
    if (sit != im.map.end()) {
      slot = sit->second;
      im.lru.splice(im.lru.begin(), im.lru, slot->lru_it);  // touch
      slot->lru_it = im.lru.begin();
    } else {
      slot = std::make_shared<Impl::Slot>();
      slot->key = key;
      slot->resident = true;
      im.map.emplace(key, slot);
      im.lru.push_front(slot);
      slot->lru_it = im.lru.begin();
    }
  }

  bool built_here = false;
  std::shared_ptr<PreparedView> view;
  {
    const std::lock_guard<std::mutex> build_lk(slot->build_mu);
    if (slot->error) std::rethrow_exception(slot->error);
    if (!slot->view) {
      try {
        view = im.build_view(key, source);
      } catch (...) {
        slot->error = std::current_exception();
        const std::lock_guard<std::mutex> lk(im.mu);
        if (slot->resident) {  // forget the failed key so later acquires retry
          slot->resident = false;
          im.map.erase(slot->key);
          im.lru.erase(slot->lru_it);
        }
        throw;
      }
      slot->view = view;
      built_here = true;
    } else {
      view = slot->view;
    }
  }

  if (was_hit != nullptr) *was_hit = !built_here;
  {
    const std::lock_guard<std::mutex> lk(im.mu);
    built_here ? ++im.stats.misses : ++im.stats.hits;
    if (built_here && view->reused_base_order()) ++im.stats.order_transfers;
    if (slot->resident) {
      slot->published = view;
      // Re-sample the footprint: warm solves grow the retained arena.
      const u64 now = view->footprint_bytes();
      im.stats.resident_bytes += now - slot->accounted;
      slot->accounted = now;
      im.evict_to_budget(slot.get());
    }
  }
  return view;
}

EngineCache::Stats EngineCache::stats() const {
  const std::lock_guard<std::mutex> lk(impl_->mu);
  Stats s = impl_->stats;
  s.resident_entries = impl_->lru.size();
  return s;
}

std::vector<std::pair<u64, Viewpoint>> EngineCache::resident() const {
  const std::lock_guard<std::mutex> lk(impl_->mu);
  std::vector<std::pair<u64, Viewpoint>> out;
  out.reserve(impl_->lru.size());
  for (const auto& slot : impl_->lru) out.emplace_back(slot->key.id, slot->key.vp);
  return out;
}

}  // namespace thsr::service
