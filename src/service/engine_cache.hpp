#pragma once
/// \file engine_cache.hpp
/// Byte-budgeted LRU cache of prepared per-viewpoint engines — the memory
/// authority of the serving layer (DESIGN.md section 1.10).
///
/// A sustained query stream hits few terrains from many viewpoints, and
/// preparing a viewpoint (transform + depth order + first-solve arena
/// sizing) costs orders of magnitude more than a warm solve — so the cache
/// keys prepared `HsrEngine`s by (terrain id, canonical viewpoint) and
/// bounds their resident bytes: every entry's footprint (transformed
/// terrain + context tables + `HsrEngine::arena_footprint_bytes()`) is
/// accounted, and when the total exceeds the budget the least-recently
/// acquired entries are dropped. An evicted entry that is still leased
/// stays alive until its last lease ends (shared ownership); it just stops
/// being findable — so eviction never interrupts an in-flight solve.
///
/// Reuse ladder per miss (service/viewpoint.hpp): the canonical frame
/// prepares on the source terrain directly (no transform copy);
/// ground-preserving viewpoints transfer the depth order from the resident
/// canonical-frame entry via `HsrEngine::prepare_with_order_of`; everything
/// else runs a full `prepare_scoped`. All three produce bit-identical
/// solves (maps and counters) — the ladder is a wall-clock optimization
/// only, which is what lets it stay opportunistic (tests/test_service.cpp).
///
/// Thread-safe: lookups, builds, and evictions may run concurrently from
/// any number of threads (the query-server workers). Builds of distinct
/// keys proceed in parallel; concurrent requests for the same key build
/// once and share. Returned leases are safe for concurrent solve_scoped
/// use because entries are published only after the PCT pre-build
/// (HsrEngine::ensure_parallel_ready).

#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "core/engine.hpp"
#include "service/viewpoint.hpp"

namespace thsr::service {

/// A prepared (terrain, viewpoint) pair leased out of the cache. Immutable
/// after construction except for the engine's internal solve state;
/// concurrent solve_scoped() calls are safe (see file comment).
class PreparedView {
 public:
  /// The terrain this engine was prepared on: the source terrain for the
  /// canonical frame, the transformed image otherwise.
  const Terrain& view_terrain() const noexcept { return *view_terrain_; }
  const Viewpoint& viewpoint() const noexcept { return viewpoint_; }  ///< canonical form
  u64 terrain_id() const noexcept { return terrain_id_; }             ///< owning terrain id

  /// The prepared engine. solve_scoped() is safe from any thread; solve()
  /// with explicit threads/backend is for single-caller use (tests,
  /// cross-checks).
  HsrEngine& engine() noexcept { return engine_; }

  /// Solve this view on the calling thread (a par::SerialRegion) — the
  /// query-server worker path. Bit-identical to a direct solve of the
  /// pre-transformed terrain.
  HsrResult solve_scoped(const HsrOptions& opt = {}) { return engine_.solve_scoped(opt); }

  /// True when preparation transferred the depth order from the resident
  /// canonical-frame entry instead of recomputing it (introspection; the
  /// result is bit-identical either way).
  bool reused_base_order() const noexcept { return reused_base_order_; }

  /// Resident cost of this entry right now: owned terrain bytes (zero for
  /// the canonical frame, which borrows the source) + context tables +
  /// the engine's retained arena footprint. Grows as solves warm the
  /// arena; the cache re-samples it on every acquire.
  u64 footprint_bytes() const noexcept;

 private:
  friend struct PreparedViewBuilder;  ///< cpp-local construction (engine_cache.cpp)
  PreparedView() = default;
  u64 terrain_id_{0};
  Viewpoint viewpoint_{};
  std::shared_ptr<const Terrain> source_;  ///< pins the registered terrain
  std::unique_ptr<Terrain> transformed_;   ///< owned image (null in canonical frame)
  const Terrain* view_terrain_{nullptr};
  HsrEngine engine_;
  bool reused_base_order_{false};
};

class EngineCache {
 public:
  struct Options {
    /// Resident-byte budget across all entries. Acquiring beyond it evicts
    /// least-recently used entries; the entry being acquired is never
    /// evicted, so a single view larger than the whole budget still serves
    /// (as a cache of one).
    u64 byte_budget{u64{256} << 20};
  };

  struct Stats {
    u64 hits{0};              ///< acquires answered by a resident entry
    u64 misses{0};            ///< acquires that prepared a new entry
    u64 evictions{0};         ///< entries dropped to respect the budget
    u64 order_transfers{0};   ///< misses served via prepare_with_order_of
    u64 resident_bytes{0};    ///< accounted footprint of resident entries
    u64 resident_entries{0};  ///< currently resident (findable) entries
  };

  EngineCache();  ///< default Options
  explicit EngineCache(const Options& opt);
  ~EngineCache();
  EngineCache(const EngineCache&) = delete;
  EngineCache& operator=(const EngineCache&) = delete;

  /// Register `t` under `id` (replacing any previous registration). The
  /// shared_ptr keeps the terrain alive for every entry derived from it.
  void add_terrain(u64 id, std::shared_ptr<const Terrain> t);
  bool has_terrain(u64 id) const;

  /// A lease on the prepared engine for (terrain, viewpoint): resident =>
  /// O(1) plus a footprint re-sample; miss => transform + prepare + PCT
  /// build on the calling thread (same-key callers wait and share, other
  /// keys proceed concurrently). The lease pins the entry across eviction.
  /// Throws std::invalid_argument on an unregistered id, a degenerate
  /// viewpoint, or one whose transform exceeds the kMaxCoord width budget.
  /// `was_hit` (optional) reports whether this acquire found the entry
  /// resident (race-free, unlike diffing stats() around the call).
  std::shared_ptr<PreparedView> acquire(u64 terrain_id, const Viewpoint& vp,
                                        bool* was_hit = nullptr);

  Stats stats() const;

  /// Resident (terrain id, canonical viewpoint) keys, most recently used
  /// first (tests/introspection).
  std::vector<std::pair<u64, Viewpoint>> resident() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace thsr::service
