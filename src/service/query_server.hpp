#pragma once
/// \file query_server.hpp
/// The serving loop: a long-running pool of solver workers draining an
/// MPMC query queue against the byte-budgeted engine cache (DESIGN.md
/// section 1.10).
///
///   service::QueryServer server({.workers = 4});
///   server.add_terrain(1, terrain);
///   server.submit({.terrain_id = 1, .viewpoint = {.dir_x = 3, .dir_y = 4}},
///                 [](service::QueryReply&& r) { /* consume r.result */ });
///   server.drain();
///
/// Architecture: submit() enqueues into a bounded multi-producer queue and
/// returns immediately (or blocks / drops when full, by configuration);
/// worker threads pop queries, lease the (terrain, viewpoint) engine from
/// the shared EngineCache, and run the solve entirely on their own thread
/// via HsrEngine::solve_scoped — the same per-item discipline as
/// solve_batch's fan-out, so per-query work counters are exact and
/// replies are bit-identical to a direct solve of the pre-transformed
/// terrain no matter which worker served them or how hot the cache was.
/// Queries are the unit of parallelism: each solve runs serially, and
/// throughput scales with the worker count instead of splitting one
/// solve's already-subsecond critical path.
///
/// Every reply carries the submit-to-completion latency in integer
/// nanoseconds; bench_service turns sustained open-loop streams of these
/// into the p50/p99/queries-per-second artifact (BENCH_SERVICE.json).

#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "service/engine_cache.hpp"

namespace thsr::service {

/// One viewpoint question against a registered terrain. `solve` selects
/// algorithm and oracle; its `threads`/`backend` must stay unset (each
/// query runs serially on its worker — the executor is the worker pool).
/// `solve.pixel_budget` (DESIGN.md section 1.12) is honored per query:
/// engine preparation is budget-independent, so exact and bounded
/// queries against the same (terrain, viewpoint) share one cache entry,
/// and a bounded reply rasterizes bit-identically to the exact one at
/// the budget's matching resolution.
struct Query {
  u64 terrain_id{0};
  Viewpoint viewpoint{};
  HsrOptions solve{};
  u64 tag{0};  ///< echoed back verbatim in the reply
};

enum class QueryStatus : unsigned char {
  Ok,     ///< solved; `result` is the answer
  Error,  ///< rejected or failed; `error` says why, `result` is empty
};

/// Completion record for one query, delivered to the submit callback on
/// the worker thread that served it.
struct QueryReply {
  u64 tag{0};
  QueryStatus status{QueryStatus::Ok};
  u64 latency_ns{0};    ///< submit() to completion
  u64 solve_ns{0};      ///< the solve alone (excludes queueing and cache)
  bool cache_hit{false};        ///< engine was resident (no prepare paid)
  std::optional<HsrResult> result;  ///< engaged when Ok (moved, caller-owned)
  std::string error;                ///< engaged when status == Error
};

/// Called on a worker thread when its query completes. Keep it cheap — it
/// runs inside the serving loop; move the reply out for heavy work.
using ReplyFn = std::function<void(QueryReply&&)>;

struct ServerOptions {
  int workers{2};                  ///< solver threads (>= 1)
  std::size_t queue_capacity{256}; ///< bounded queue length (>= 1)
  /// When the queue is full: true = submit() blocks until space (the
  /// closed-loop default guaranteeing zero drops), false = submit()
  /// returns false and the query counts as dropped (open-loop overload
  /// behavior; bench_service exercises both).
  bool block_when_full{true};
  EngineCache::Options cache{};    ///< budget for the shared engine cache
};

class QueryServer {
 public:
  struct Stats {
    u64 submitted{0};  ///< accepted into the queue
    u64 dropped{0};    ///< rejected at submit (queue full or stopping)
    u64 completed{0};  ///< replies delivered (Ok or Error)
    u64 errors{0};     ///< replies with status Error
  };

  /// Start `opt.workers` solver threads immediately.
  explicit QueryServer(const ServerOptions& opt = {});
  ~QueryServer();  ///< stop()s if still running
  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  /// Register a terrain with the underlying cache (may be called any time).
  void add_terrain(u64 id, std::shared_ptr<const Terrain> t);

  /// Enqueue a query. True = accepted (the callback will run exactly
  /// once); false = dropped (queue full with block_when_full off, or the
  /// server is stopping) and the callback never runs.
  bool submit(Query q, ReplyFn on_reply);

  /// Block until every accepted query has completed (the queue is empty
  /// and no solve is in flight). New submissions remain possible.
  void drain();

  /// Stop accepting, finish every already-accepted query, join workers.
  /// Idempotent.
  void stop();

  Stats stats() const;
  EngineCache::Stats cache_stats() const;  ///< shared cache counters
  EngineCache& cache();  ///< the shared cache (introspection, pre-warming)

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace thsr::service
