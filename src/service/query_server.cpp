#include "service/query_server.hpp"

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "support/check.hpp"

namespace thsr::service {

namespace {

using Clock = std::chrono::steady_clock;

u64 ns_between(Clock::time_point a, Clock::time_point b) {
  return static_cast<u64>(std::chrono::duration_cast<std::chrono::nanoseconds>(b - a).count());
}

}  // namespace

struct QueryServer::Impl {
  struct Item {
    Query query;
    ReplyFn on_reply;
    Clock::time_point submitted_at;
  };

  ServerOptions opt;
  EngineCache cache;

  std::mutex mu;  ///< guards queue, counters, and the lifecycle flags
  std::condition_variable not_empty;  ///< signals workers: work or shutdown
  std::condition_variable not_full;   ///< signals blocked producers
  std::condition_variable idle;       ///< signals drain(): nothing queued or in flight
  std::deque<Item> queue;
  u64 in_flight{0};
  bool stopping{false};
  Stats stats;

  std::vector<std::thread> workers;

  explicit Impl(const ServerOptions& o) : opt(o), cache(o.cache) {}

  /// Serve one query end to end on this worker thread. Never throws: every
  /// failure becomes an Error reply so the loop survives bad queries.
  void serve(Item&& item) {
    QueryReply reply;
    reply.tag = item.query.tag;
    try {
      if (item.query.solve.threads != 0 || item.query.solve.backend) {
        throw std::invalid_argument(
            "QueryServer: per-query threads/backend are not configurable — each query runs "
            "serially on its worker");
      }
      const std::shared_ptr<PreparedView> view =
          cache.acquire(item.query.terrain_id, item.query.viewpoint, &reply.cache_hit);
      const Clock::time_point solve_start = Clock::now();
      reply.result = view->solve_scoped(item.query.solve);
      reply.solve_ns = ns_between(solve_start, Clock::now());
    } catch (const std::exception& e) {
      reply.status = QueryStatus::Error;
      reply.error = e.what();
    }
    reply.latency_ns = ns_between(item.submitted_at, Clock::now());
    const bool errored = reply.status == QueryStatus::Error;
    if (item.on_reply) item.on_reply(std::move(reply));
    {
      const std::lock_guard<std::mutex> lk(mu);
      ++stats.completed;
      if (errored) ++stats.errors;
      --in_flight;
      if (queue.empty() && in_flight == 0) idle.notify_all();
    }
  }

  void worker_loop() {
    for (;;) {
      Item item;
      {
        std::unique_lock<std::mutex> lk(mu);
        not_empty.wait(lk, [&] { return stopping || !queue.empty(); });
        if (queue.empty()) return;  // stopping and fully drained
        item = std::move(queue.front());
        queue.pop_front();
        ++in_flight;
        not_full.notify_one();
      }
      serve(std::move(item));
    }
  }
};

QueryServer::QueryServer(const ServerOptions& opt) : impl_(std::make_unique<Impl>(opt)) {
  THSR_CHECK(opt.workers >= 1);
  THSR_CHECK(opt.queue_capacity >= 1);
  impl_->workers.reserve(static_cast<std::size_t>(opt.workers));
  for (int i = 0; i < opt.workers; ++i) {
    impl_->workers.emplace_back([im = impl_.get()] { im->worker_loop(); });
  }
}

QueryServer::~QueryServer() { stop(); }

void QueryServer::add_terrain(u64 id, std::shared_ptr<const Terrain> t) {
  impl_->cache.add_terrain(id, std::move(t));
}

bool QueryServer::submit(Query q, ReplyFn on_reply) {
  Impl& im = *impl_;
  const Clock::time_point now = Clock::now();
  {
    std::unique_lock<std::mutex> lk(im.mu);
    if (im.opt.block_when_full) {
      im.not_full.wait(lk, [&] { return im.stopping || im.queue.size() < im.opt.queue_capacity; });
    }
    if (im.stopping || im.queue.size() >= im.opt.queue_capacity) {
      ++im.stats.dropped;
      return false;
    }
    im.queue.push_back(Impl::Item{std::move(q), std::move(on_reply), now});
    ++im.stats.submitted;
  }
  im.not_empty.notify_one();
  return true;
}

void QueryServer::drain() {
  Impl& im = *impl_;
  std::unique_lock<std::mutex> lk(im.mu);
  im.idle.wait(lk, [&] { return im.queue.empty() && im.in_flight == 0; });
}

void QueryServer::stop() {
  Impl& im = *impl_;
  {
    // Safe when already stopped: joinable() below guards the second pass.
    const std::lock_guard<std::mutex> lk(im.mu);
    im.stopping = true;
  }
  im.not_empty.notify_all();
  im.not_full.notify_all();
  for (std::thread& w : im.workers) {
    if (w.joinable()) w.join();
  }
}

QueryServer::Stats QueryServer::stats() const {
  const std::lock_guard<std::mutex> lk(impl_->mu);
  return impl_->stats;
}

EngineCache::Stats QueryServer::cache_stats() const { return impl_->cache.stats(); }

EngineCache& QueryServer::cache() { return impl_->cache; }

}  // namespace thsr::service
