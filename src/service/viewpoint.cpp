#include "service/viewpoint.hpp"

#include <cstdlib>
#include <numeric>
#include <stdexcept>

namespace thsr::service {

Viewpoint canonical(const Viewpoint& vp) {
  if (vp.dir_x == 0 && vp.dir_y == 0) {
    throw std::invalid_argument("Viewpoint: direction must be nonzero");
  }
  if (vp.elev_den == 0) {
    throw std::invalid_argument("Viewpoint: elevation denominator must be nonzero");
  }
  Viewpoint c = vp;
  const i64 g = std::gcd(std::abs(c.dir_x), std::abs(c.dir_y));
  c.dir_x /= g;
  c.dir_y /= g;
  if (c.elev_den < 0) {
    c.elev_den = -c.elev_den;
    c.elev_num = -c.elev_num;
  }
  if (c.elev_num == 0) {
    c.elev_den = 1;
  } else {
    const i64 ge = std::gcd(std::abs(c.elev_num), c.elev_den);
    c.elev_num /= ge;
    c.elev_den /= ge;
  }
  return c;
}

bool is_canonical_frame(const Viewpoint& vp) {
  const Viewpoint c = canonical(vp);
  return c.dir_x == 1 && c.dir_y == 0 && c.elev_num == 0;
}

bool ground_preserving(const Viewpoint& vp) {
  const Viewpoint c = canonical(vp);
  return c.dir_x == 1 && c.dir_y == 0;
}

u64 transformed_magnitude_bound(const Viewpoint& vp, i64 max_abs) {
  const Viewpoint c = canonical(vp);
  const u64 m = static_cast<u64>(max_abs);
  const u64 r = static_cast<u64>(std::abs(c.dir_x)) + static_cast<u64>(std::abs(c.dir_y));
  const u64 ground = r * m;
  const u64 height = (static_cast<u64>(c.elev_den) + static_cast<u64>(std::abs(c.elev_num)) * r) * m;
  return std::max(ground, height);
}

bool admissible(const Viewpoint& vp, i64 max_abs) {
  // Evaluate the bound in the order of DESIGN.md section 1.10; every factor
  // is far below 2^63 for canonical viewpoints anyone can afford (r and the
  // slope are bounded by kMaxCoord/max_abs or the check already fails), so
  // the u64 products cannot wrap before exceeding kMaxCoord.
  const Viewpoint c = canonical(vp);
  const u64 m = static_cast<u64>(max_abs);
  if (m == 0) return true;
  const u64 limit = static_cast<u64>(kMaxCoord);
  const u64 r = static_cast<u64>(std::abs(c.dir_x)) + static_cast<u64>(std::abs(c.dir_y));
  if (r > limit / m) return false;
  const u64 den = static_cast<u64>(c.elev_den);
  const u64 num = static_cast<u64>(std::abs(c.elev_num));
  if (num != 0 && num > (limit / m) / r) return false;
  return den * m <= limit - num * r * m;
}

Terrain transform_terrain(const Terrain& t, const Viewpoint& vp) {
  const Viewpoint c = canonical(vp);
  if (c.dir_x == 1 && c.dir_y == 0 && c.elev_num == 0) return t;
  if (!admissible(c, t.max_abs_coord())) {
    throw std::invalid_argument(
        "Viewpoint: transformed coordinates would exceed kMaxCoord (DESIGN.md section 1.10)");
  }
  std::vector<Vertex3> vs(t.vertices().begin(), t.vertices().end());
  for (Vertex3& v : vs) {
    const i64 x = c.dir_x * v.x + c.dir_y * v.y;
    const i64 y = c.dir_x * v.y - c.dir_y * v.x;
    const i64 z = c.elev_den * v.z - c.elev_num * x;
    v.x = x;
    v.y = y;
    v.z = z;
  }
  return Terrain::from_triangles(std::move(vs), {t.triangles().begin(), t.triangles().end()});
}

}  // namespace thsr::service
