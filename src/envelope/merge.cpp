#include "envelope/envelope.hpp"
#include "parallel/work_depth.hpp"

namespace thsr {

Envelope merge_envelopes(const Envelope& front, const Envelope& back,
                         std::span<const Seg2> segs, std::vector<CrossEvent>* events) {
  const auto& A = front.pieces();
  const auto& B = back.pieces();
  if (A.empty()) return Envelope::from_pieces({B.begin(), B.end()});
  if (B.empty()) return Envelope::from_pieces({A.begin(), A.end()});

  std::vector<EnvPiece> out;
  out.reserve(A.size() + B.size());
  const auto emit = [&](const QY& y0, const QY& y1, u32 edge) {
    if (!(y0 < y1)) return;
    if (!out.empty() && out.back().edge == edge && out.back().y1 == y0) {
      out.back().y1 = y1;
    } else {
      out.push_back({y0, y1, edge});
      work::count(Op::EnvPiece);
    }
  };

  std::size_t a = 0, b = 0;
  QY y = qmin(A[0].y0, B[0].y0);
  while (true) {
    while (a < A.size() && A[a].y1 <= y) ++a;
    while (b < B.size() && B[b].y1 <= y) ++b;
    if (a >= A.size() && b >= B.size()) break;

    const EnvPiece* pa = (a < A.size() && A[a].y0 <= y) ? &A[a] : nullptr;
    const EnvPiece* pb = (b < B.size() && B[b].y0 <= y) ? &B[b] : nullptr;

    if (!pa && !pb) {  // gap on both: jump to the next piece start
      if (a >= A.size()) {
        y = B[b].y0;
      } else if (b >= B.size()) {
        y = A[a].y0;
      } else {
        y = qmin(A[a].y0, B[b].y0);
      }
      continue;
    }
    if (pa && !pb) {  // only the front envelope is live
      QY end = pa->y1;
      if (b < B.size()) end = qmin(end, B[b].y0);
      emit(y, end, pa->edge);
      y = end;
      continue;
    }
    if (pb && !pa) {
      QY end = pb->y1;
      if (a < A.size()) end = qmin(end, A[a].y0);
      emit(y, end, pb->edge);
      y = end;
      continue;
    }

    // Both live on (y, end): one comparison decides the winner just after y;
    // at most one line crossing can occur before `end`.
    const QY end = qmin(pa->y1, pb->y1);
    const Seg2 &sa = segs[pa->edge], &sb = segs[pb->edge];
    const int w = cmp_value_near(sa, sb, y, Side::After);  // ties: front occludes
    const u32 winner = w >= 0 ? pa->edge : pb->edge;
    if (auto cr = crossing_in(sa, sb, y, end)) {
      emit(y, *cr, winner);
      if (events) events->push_back({*cr, winner, w >= 0 ? pb->edge : pa->edge});
      work::count(Op::Crossing);
      y = *cr;  // winner is recomputed just after the crossing
    } else {
      emit(y, end, winner);
      y = end;
    }
  }
  return Envelope::from_pieces(std::move(out));
}

}  // namespace thsr
