#include "envelope/envelope.hpp"
#include "parallel/work_depth.hpp"

namespace thsr {

namespace {
constexpr u32 kNoEdge = ~u32{0};
}  // namespace

Envelope merge_envelopes(const Envelope& front, const Envelope& back,
                         std::span<const Seg2> segs, std::vector<CrossEvent>* events,
                         const BoundedPrune* prune) {
  const auto& A = front.pieces();
  const auto& B = back.pieces();
  if (A.empty()) return Envelope::from_pieces({B.begin(), B.end()});
  if (B.empty()) return Envelope::from_pieces({A.begin(), A.end()});

  std::vector<EnvPiece> out;
  out.reserve(A.size() + B.size());
  const auto emit = [&](const QY& y0, const QY& y1, u32 edge) {
    if (!(filt::cmp(y0, y1) < 0)) return;
    // Bounded solve: a sample-free piece also snap-merges into its
    // contiguous predecessor across an edge change — no sample ordinate can
    // tell (the scan itself stays exact; only materialization is pruned).
    // Edge equality first (exact path untouched), sample_free second
    // (counter-silent), filtered compare last — so a finest-grained budget
    // that prunes nothing leaves the compare telemetry bit-identical too.
    if (!out.empty() &&
        (out.back().edge == edge || (prune != nullptr && prune->sample_free(y0, y1))) &&
        filt::cmp(out.back().y1, y0) == 0) {
      out.back().y1 = y1;
    } else {
      out.push_back({y0, y1, edge});
      work::count(Op::EnvPiece);
    }
  };

  // Batched filtered evaluation (DESIGN.md section 5): the sweep abscissa's
  // double view is refreshed once per advance, and each live piece's segment
  // coefficients once per piece change — not per predicate call.
  std::size_t a = 0, b = 0;
  QY y = qmin(A[0].y0, B[0].y0);
  filt::YF yf(y);
  const auto advance = [&](const QY& ny) {
    y = ny;
    yf = filt::YF(y);
  };
  u32 ea = kNoEdge, eb = kNoEdge;
  filt::SegF saf, sbf;
  while (true) {
    while (a < A.size() && filt::cmp(A[a].y1, y, yf) <= 0) ++a;
    while (b < B.size() && filt::cmp(B[b].y1, y, yf) <= 0) ++b;
    if (a >= A.size() && b >= B.size()) break;

    const EnvPiece* pa = (a < A.size() && filt::cmp(A[a].y0, y, yf) <= 0) ? &A[a] : nullptr;
    const EnvPiece* pb = (b < B.size() && filt::cmp(B[b].y0, y, yf) <= 0) ? &B[b] : nullptr;

    if (!pa && !pb) {  // gap on both: jump to the next piece start
      if (a >= A.size()) {
        advance(B[b].y0);
      } else if (b >= B.size()) {
        advance(A[a].y0);
      } else {
        advance(filt::qmin(A[a].y0, B[b].y0));
      }
      continue;
    }
    if (pa && !pb) {  // only the front envelope is live
      QY end = pa->y1;
      if (b < B.size()) end = filt::qmin(end, B[b].y0);
      emit(y, end, pa->edge);
      advance(end);
      continue;
    }
    if (pb && !pa) {
      QY end = pb->y1;
      if (a < A.size()) end = filt::qmin(end, A[a].y0);
      emit(y, end, pb->edge);
      advance(end);
      continue;
    }

    // Both live on (y, end): one comparison decides the winner just after y;
    // at most one line crossing can occur before `end`.
    const QY end = filt::qmin(pa->y1, pb->y1);
    const Seg2 &sa = segs[pa->edge], &sb = segs[pb->edge];
    if (pa->edge != ea) {
      ea = pa->edge;
      saf = sa.coeffs_f();
    }
    if (pb->edge != eb) {
      eb = pb->edge;
      sbf = sb.coeffs_f();
    }
    const int w = cmp_value_near(sa, saf, sb, sbf, y, yf, Side::After);  // ties: front occludes
    const u32 winner = w >= 0 ? pa->edge : pb->edge;
    if (auto cr = crossing_in(sa, saf, sb, sbf, y, yf, end)) {
      emit(y, *cr, winner);
      if (events) events->push_back({*cr, winner, w >= 0 ? pb->edge : pa->edge});
      work::count(Op::Crossing);
      advance(*cr);  // winner is recomputed just after the crossing
    } else {
      emit(y, end, winner);
      advance(end);
    }
  }
  return Envelope::from_pieces(std::move(out));
}

}  // namespace thsr
