#include "envelope/envelope.hpp"

#include <algorithm>

namespace thsr {

std::optional<std::size_t> Envelope::piece_index_at(const QY& y, Side side) const {
  if (pieces_.empty()) return std::nullopt;
  // First piece with y0 >= y.
  const filt::YF yf(y);
  auto it = std::lower_bound(
      pieces_.begin(), pieces_.end(), y,
      [&](const EnvPiece& p, const QY& v) { return filt::cmp(p.y0, v, yf) < 0; });
  if (side == Side::After) {
    // Piece covering (y, y+eps): either starts exactly at y, or the previous
    // piece extends strictly beyond y.
    if (it != pieces_.end() && filt::cmp(it->y0, y, yf) == 0) {
      return static_cast<std::size_t>(it - pieces_.begin());
    }
    if (it == pieces_.begin()) return std::nullopt;
    --it;
    if (filt::cmp(it->y1, y, yf) > 0) return static_cast<std::size_t>(it - pieces_.begin());
    return std::nullopt;
  }
  // Side::Before: piece covering (y-eps, y).
  if (it == pieces_.begin()) return std::nullopt;
  --it;
  if (filt::cmp(it->y1, y, yf) >= 0 && filt::cmp(it->y0, y, yf) < 0) {
    return static_cast<std::size_t>(it - pieces_.begin());
  }
  return std::nullopt;
}

void Envelope::validate(std::span<const Seg2> segs) const {
  for (std::size_t i = 0; i < pieces_.size(); ++i) {
    const EnvPiece& p = pieces_[i];
    THSR_CHECK(p.y0 < p.y1);
    THSR_CHECK(p.edge < segs.size());
    const Seg2& s = segs[p.edge];
    THSR_CHECK(cmp(p.y0, s.u0) >= 0 && cmp(p.y1, s.u1) <= 0);
    if (i > 0) THSR_CHECK(pieces_[i - 1].y1 <= p.y0);
    if (i > 0 && pieces_[i - 1].edge == p.edge) {
      THSR_CHECK(pieces_[i - 1].y1 < p.y0);  // maximality: same-edge pieces are separated
    }
  }
}

bool Envelope::dominates_all_at(const QY& y, Side side, std::span<const Seg2> segs,
                                std::span<const u32> ids) const {
  const auto idx = piece_index_at(y, side);
  for (u32 id : ids) {
    const Seg2& s = segs[id];
    // Segment defined on the relevant side of y?
    const bool defined = side == Side::After ? (cmp(y, s.u0) >= 0 && cmp(y, s.u1) < 0)
                                             : (cmp(y, s.u0) > 0 && cmp(y, s.u1) <= 0);
    if (!defined) continue;
    if (!idx) return false;  // gap but a segment is live: not an upper envelope
    if (cmp_value_near(segs[pieces_[*idx].edge], s, y, side) < 0) return false;
  }
  return true;
}

Envelope cut_envelope(const Envelope& e, const QY& lo, const QY& hi) {
  std::vector<EnvPiece> out;
  const filt::YF lof(lo), hif(hi);
  for (const EnvPiece& p : e.pieces()) {
    if (filt::cmp(p.y1, lo, lof) <= 0 || filt::cmp(p.y0, hi, hif) >= 0) continue;
    EnvPiece q = p;
    if (filt::cmp(q.y0, lo, lof) < 0) q.y0 = lo;
    if (filt::cmp(q.y1, hi, hif) > 0) q.y1 = hi;
    if (filt::cmp(q.y0, q.y1) < 0) out.push_back(q);
  }
  return Envelope::from_pieces(std::move(out));
}

}  // namespace thsr
