#pragma once
/// \file build.hpp
/// Envelope construction (paper Lemma 3.1): divide-and-conquer with exact
/// scan merges; task-parallel over sibling halves and strip-parallel inside
/// large merges near the root. Work O(m·alpha(m)·log m), depth polylog with
/// enough workers.

#include "envelope/envelope.hpp"

namespace thsr {

/// Strip count for strip-parallel merges. Deliberately a constant, NOT a
/// function of max_threads(): the cut abscissae decide how many seam pieces
/// the merge emits (healed afterwards, but counted), so a p-dependent strip
/// count would make the work_depth counters vary with the thread count.
/// With it fixed, counted work is identical across backends and p — the
/// CREW schedule-independence that bench E3 and the perf-regression CI
/// baselines (bench/baselines/) rely on.
inline constexpr int kEnvMergeStrips = 16;

/// Upper envelope of segments `ids` (indices into `segs`). Front-to-back
/// input order: the earlier id wins exact ties (occluder-wins convention).
/// `prune` enables resolution-bounded snap-merging in every internal merge
/// (see merge_envelopes); the cut/strip structure stays budget-independent.
Envelope envelope_of(std::span<const u32> ids, std::span<const Seg2> segs,
                     bool parallel = false, const BoundedPrune* prune = nullptr);

/// Strip-parallel pointwise max of two envelopes: cuts the domain at
/// `strips` sample abscissae and merges strips concurrently. Identical
/// result to merge_envelopes (crossing events are not reported — pass
/// events=nullptr semantics only). `prune` snap-merges sample-free pieces
/// inside each strip and across healed seams; the cut abscissae are chosen
/// before pruning, so strip structure — and with it counter determinism
/// across p — is unchanged.
Envelope merge_envelopes_parallel(const Envelope& front, const Envelope& back,
                                  std::span<const Seg2> segs, int strips,
                                  const BoundedPrune* prune = nullptr);

}  // namespace thsr
