#pragma once
/// \file build.hpp
/// Envelope construction (paper Lemma 3.1): divide-and-conquer with exact
/// scan merges; task-parallel over sibling halves and strip-parallel inside
/// large merges near the root. Work O(m·alpha(m)·log m), depth polylog with
/// enough workers.

#include "envelope/envelope.hpp"

namespace thsr {

/// Upper envelope of segments `ids` (indices into `segs`). Front-to-back
/// input order: the earlier id wins exact ties (occluder-wins convention).
Envelope envelope_of(std::span<const u32> ids, std::span<const Seg2> segs,
                     bool parallel = false);

/// Strip-parallel pointwise max of two envelopes: cuts the domain at
/// `strips` sample abscissae and merges strips concurrently. Identical
/// result to merge_envelopes (crossing events are not reported — pass
/// events=nullptr semantics only).
Envelope merge_envelopes_parallel(const Envelope& front, const Envelope& back,
                                  std::span<const Seg2> segs, int strips);

}  // namespace thsr
