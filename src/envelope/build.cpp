#include "envelope/build.hpp"

#include "parallel/backend.hpp"

namespace thsr {
namespace {

constexpr std::size_t kParCutoff = 1024;

Envelope build_rec(std::span<const u32> ids, std::span<const Seg2> segs, bool parallel,
                   const BoundedPrune* prune) {
  if (ids.empty()) return Envelope{};
  if (ids.size() == 1) return Envelope::of_segment(ids[0], segs[ids[0]]);
  const std::size_t m = ids.size() / 2;
  Envelope l, r;
  par::fork_join([&] { l = build_rec(ids.subspan(0, m), segs, parallel, prune); },
                 [&] { r = build_rec(ids.subspan(m), segs, parallel, prune); },
                 parallel && ids.size() >= kParCutoff);
  if (parallel && l.size() + r.size() >= 4 * kParCutoff) {
    return merge_envelopes_parallel(l, r, segs, kEnvMergeStrips, prune);
  }
  return merge_envelopes(l, r, segs, nullptr, prune);
}

}  // namespace

Envelope envelope_of(std::span<const u32> ids, std::span<const Seg2> segs, bool parallel,
                     const BoundedPrune* prune) {
  if (!parallel || par::max_threads() <= 1) return build_rec(ids, segs, false, prune);
  Envelope out;
  par::run_root_task([&] { out = build_rec(ids, segs, true, prune); });
  return out;
}

Envelope merge_envelopes_parallel(const Envelope& front, const Envelope& back,
                                  std::span<const Seg2> segs, int strips,
                                  const BoundedPrune* prune) {
  if (front.empty() || back.empty() || strips <= 1 ||
      front.size() + back.size() < static_cast<std::size_t>(4 * strips)) {
    return merge_envelopes(front, back, segs, nullptr, prune);
  }
  // Cut abscissae sampled from the larger envelope's piece starts.
  const Envelope& big = front.size() >= back.size() ? front : back;
  std::vector<QY> cuts;
  cuts.reserve(static_cast<std::size_t>(strips) + 1);
  const QY lo = qmin(front.piece(0).y0, back.piece(0).y0);
  const QY hi = qmax(front.pieces().back().y1, back.pieces().back().y1);
  cuts.push_back(lo);
  for (int s = 1; s < strips; ++s) {
    const std::size_t idx =
        big.size() * static_cast<std::size_t>(s) / static_cast<std::size_t>(strips);
    const QY c = big.piece(idx).y0;
    if (c > cuts.back() && c < hi) cuts.push_back(c);
  }
  cuts.push_back(hi);

  const auto nseg = static_cast<i64>(cuts.size()) - 1;
  std::vector<Envelope> parts(static_cast<std::size_t>(nseg));
  par::parallel_for(
      nseg,
      [&](i64 s) {
        const auto su = static_cast<std::size_t>(s);
        parts[su] = merge_envelopes(cut_envelope(front, cuts[su], cuts[su + 1]),
                                    cut_envelope(back, cuts[su], cuts[su + 1]), segs, nullptr,
                                    prune);
      },
      /*grain=*/1);

  std::vector<EnvPiece> out;
  for (const Envelope& part : parts) {
    for (const EnvPiece& p : part.pieces()) {
      // Bounded solve: a strip cut can strand a sample-free piece at a
      // strip head; snap-merge it across the seam like merge_envelopes
      // would have (same predicate, so same pruning power as the plain
      // merge of the same content). Condition order mirrors the emit
      // lambda there: edge equality, then the counter-silent sample_free,
      // then the filtered compare — exact path and finest-budget compare
      // telemetry both stay bit-identical.
      if (!out.empty() &&
          (out.back().edge == p.edge || (prune != nullptr && prune->sample_free(p.y0, p.y1))) &&
          filt::cmp(out.back().y1, p.y0) == 0) {
        out.back().y1 = p.y1;  // heal seams split by a cut
      } else {
        out.push_back(p);
      }
    }
  }
  return Envelope::from_pieces(std::move(out));
}

}  // namespace thsr
