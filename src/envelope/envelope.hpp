#pragma once
/// \file envelope.hpp
/// Upper envelopes ("profiles") of image-plane segments — the objects the
/// whole paper manipulates (its profiles, intermediate profiles, and the
/// visibility structure are all upper envelopes of terrain edge projections).
///
/// An Envelope is a maximal-piece decomposition: pieces sorted by start
/// abscissa, pairwise disjoint interiors, each piece a restriction of one
/// input segment to an exact rational interval [y0, y1]. Ordinates not
/// covered by any piece are gaps, where the envelope is -infinity. Envelope
/// size obeys the Davenport–Schinzel bound O(m·alpha(m)) — measured in bench
/// table_e5_envelope.
///
/// Geometry is referenced, not stored: piece.edge indexes a caller-supplied
/// segment table (`std::span<const Seg2>`), so pieces are 40 bytes and
/// phase 1 can afford to materialize every PCT node's envelope.

#include <optional>
#include <span>
#include <vector>

#include "core/bounded.hpp"
#include "geometry/predicates.hpp"

namespace thsr {

/// One maximal piece of an envelope: segment `edge` restricted to [y0, y1].
struct EnvPiece {
  QY y0, y1;
  u32 edge{0};
};

/// Crossing discovered by an envelope merge: at `y`, the envelope hands over
/// from piece of `from_edge` to piece of `to_edge`.
struct CrossEvent {
  QY y;
  u32 from_edge{0}, to_edge{0};
};

class Envelope {
 public:
  Envelope() = default;

  /// Envelope of a single segment.
  static Envelope of_segment(u32 edge, const Seg2& s) {
    Envelope e;
    e.pieces_.push_back({QY::of(s.u0), QY::of(s.u1), edge});
    return e;
  }

  static Envelope from_pieces(std::vector<EnvPiece> pieces) {
    Envelope e;
    e.pieces_ = std::move(pieces);
    return e;
  }

  bool empty() const noexcept { return pieces_.empty(); }
  std::size_t size() const noexcept { return pieces_.size(); }
  std::span<const EnvPiece> pieces() const noexcept { return pieces_; }
  const EnvPiece& piece(std::size_t i) const { return pieces_[i]; }

  /// Piece active on the open interval adjacent to `y` on `side`, if any.
  std::optional<std::size_t> piece_index_at(const QY& y, Side side) const;

  /// Edge whose piece covers `y` on `side`; nullopt in gaps.
  std::optional<u32> edge_at(const QY& y, Side side) const {
    auto i = piece_index_at(y, side);
    return i ? std::optional<u32>(pieces_[*i].edge) : std::nullopt;
  }

  /// Structural invariants (piece ordering/containment); test helper.
  void validate(std::span<const Seg2> segs) const;

  /// Exact pointwise-max semantics check against every input segment at `y`
  /// (`side` disambiguates breakpoints); test helper, O(|segs|).
  bool dominates_all_at(const QY& y, Side side, std::span<const Seg2> segs,
                        std::span<const u32> ids) const;

 private:
  std::vector<EnvPiece> pieces_;
};

/// Pointwise maximum of two envelopes. Ties over an interval resolve to
/// `front` (the set closer to the viewer — the occluder). Reports each
/// handover crossing to `events` when non-null. O(|front| + |back| + #cross)
/// exact scan.
///
/// With `prune` (a resolution-bounded solve, core/bounded.hpp) a produced
/// piece whose closed extent is sample-free snap-merges into its contiguous
/// predecessor even across an edge change: the result is then only an upper
/// envelope *at the budget's sample ordinates* (and in an open neighborhood
/// of each — pruned closures exclude samples), which is exactly what the
/// bounded pipeline consumes (DESIGN.md section 1.12). Pruning is a pure
/// function of the two input envelopes, so the output keeps the
/// backend/thread-count determinism contract.
Envelope merge_envelopes(const Envelope& front, const Envelope& back,
                         std::span<const Seg2> segs, std::vector<CrossEvent>* events = nullptr,
                         const BoundedPrune* prune = nullptr);

/// Restriction of an envelope to [lo, hi] (pieces trimmed; test + parallel
/// merge helper).
Envelope cut_envelope(const Envelope& e, const QY& lo, const QY& hi);

}  // namespace thsr
