#include "parallel/task_allocator.hpp"

#include <atomic>
#include <chrono>

#include "parallel/backend.hpp"

namespace thsr::par {
namespace {

// Opaque spin so the optimizer cannot elide the work.
u64 spin(u32 iters) noexcept {
  volatile u64 acc = 0x9e3779b97f4a7c15ull;
  for (u32 i = 0; i < iters; ++i) acc = acc * 6364136223846793005ull + 1442695040888963407ull;
  return acc;
}

double now_s() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Runs every task and returns how many ran — the completion count the
/// report exposes (relaxed increments: the counter is read only after the
/// parallel region joins).
u64 run_all(std::span<const u32> costs, Schedule sched) {
  const i64 n = static_cast<i64>(costs.size());
  std::atomic<u64> executed{0};
#ifdef THSR_HAVE_OPENMP
  if (backend() == Backend::OpenMP) {
    switch (sched) {
      case Schedule::StaticBlock: omp_set_schedule(omp_sched_static, 0); break;
      case Schedule::StaticCyclic: omp_set_schedule(omp_sched_static, 1); break;
      case Schedule::Dynamic: omp_set_schedule(omp_sched_dynamic, 1); break;
      case Schedule::Guided: omp_set_schedule(omp_sched_guided, 1); break;
    }
#pragma omp parallel for schedule(runtime)
    for (i64 i = 0; i < n; ++i) {
      spin(costs[static_cast<std::size_t>(i)]);
      executed.fetch_add(1, std::memory_order_relaxed);
    }
    return executed.load(std::memory_order_relaxed);
  }
#endif
  // Pool / Serial backends: the pool's dynamic-chunk loop, with the chunk
  // size fixed to the nearest analogue of the requested schedule. (The
  // pool has no static placement; StaticBlock/StaticCyclic differ from the
  // dynamic schedules only through the chunk size, which is the part the
  // lemma's t_{p,N} term charges for anyway.)
  const i64 p = std::max(1, max_threads());
  i64 chunk = 1;
  switch (sched) {
    case Schedule::StaticBlock: chunk = (n + p - 1) / p; break;
    case Schedule::StaticCyclic: chunk = 1; break;
    case Schedule::Dynamic: chunk = 1; break;
    case Schedule::Guided: chunk = std::max<i64>(1, n / (4 * p)); break;
  }
  auto body = [&](i64 i) {
    spin(costs[static_cast<std::size_t>(i)]);
    executed.fetch_add(1, std::memory_order_relaxed);
  };
  if (backend() == Backend::Pool && p > 1 && !pool::on_worker()) {
    detail::pool_parallel_for(n, body, /*grain=*/1, chunk);
    return executed.load(std::memory_order_relaxed);
  }
  for (i64 i = 0; i < n; ++i) body(i);
  return executed.load(std::memory_order_relaxed);
}

}  // namespace

const char* schedule_name(Schedule s) noexcept {
  switch (s) {
    case Schedule::StaticBlock: return "static";
    case Schedule::StaticCyclic: return "static,1";
    case Schedule::Dynamic: return "dynamic";
    case Schedule::Guided: return "guided";
  }
  return "?";
}

AllocReport run_synthetic_tasks(std::span<const u32> costs, int p, Schedule sched) {
  AllocReport r;
  r.tasks = costs.size();
  for (u32 c : costs) r.total_cost += c;

  const int prev = max_threads();
  set_threads(1);
  double t0 = now_s();
  (void)run_all(costs, Schedule::StaticBlock);
  r.serial_s = now_s() - t0;

  set_threads(p);
  t0 = now_s();
  r.executed = run_all(costs, sched);
  r.wall_s = now_s() - t0;
  set_threads(prev);

  r.ideal_s = r.serial_s / p;
  r.overhead_s = r.wall_s - r.ideal_s;
  return r;
}

}  // namespace thsr::par
