#pragma once
/// \file scan.hpp
/// Parallel prefix (Ladner–Fischer, the paper's reference [9]) realized as
/// the standard two-pass blocked scan: per-block reduction, serial scan of
/// the O(p) block sums, then per-block prefix with offsets. Work O(n),
/// depth O(n/p + p). Phase 2 of the HSR algorithm is "an approach similar to
/// the systolic implementation of parallel prefix" (paper section 2.1); this
/// is the flat-array counterpart used for offsets and run stitching.

#include <numeric>
#include <span>
#include <vector>

#include "geometry/exactq.hpp"
#include "parallel/backend.hpp"

namespace thsr::par {

/// Exclusive prefix sums; returns n+1 values, last = total.
std::vector<u64> exclusive_scan(std::span<const u64> xs);

/// Generic inclusive scan with associative op (serial fallback for small n).
template <typename T, typename Op>
std::vector<T> inclusive_scan(std::span<const T> xs, T identity, Op op) {
  const i64 n = static_cast<i64>(xs.size());
  std::vector<T> out(xs.size());
  const int p = max_threads();
  if (n < 4096 || p <= 1) {
    T acc = identity;
    for (i64 i = 0; i < n; ++i) {
      out[static_cast<std::size_t>(i)] = acc = op(acc, xs[static_cast<std::size_t>(i)]);
    }
    return out;
  }
  const i64 nblocks = std::min<i64>(4 * p, n);
  const i64 bsz = (n + nblocks - 1) / nblocks;
  std::vector<T> block_sum(static_cast<std::size_t>(nblocks), identity);
  parallel_for(nblocks, [&](i64 b) {
    T acc = identity;
    const i64 lo = b * bsz, hi = std::min(n, lo + bsz);
    for (i64 i = lo; i < hi; ++i) acc = op(acc, xs[static_cast<std::size_t>(i)]);
    block_sum[static_cast<std::size_t>(b)] = acc;
  }, 1);
  T run = identity;
  std::vector<T> block_off(static_cast<std::size_t>(nblocks), identity);
  for (i64 b = 0; b < nblocks; ++b) {
    block_off[static_cast<std::size_t>(b)] = run;
    run = op(run, block_sum[static_cast<std::size_t>(b)]);
  }
  parallel_for(nblocks, [&](i64 b) {
    T acc = block_off[static_cast<std::size_t>(b)];
    const i64 lo = b * bsz, hi = std::min(n, lo + bsz);
    for (i64 i = lo; i < hi; ++i) {
      out[static_cast<std::size_t>(i)] = acc = op(acc, xs[static_cast<std::size_t>(i)]);
    }
  }, 1);
  return out;
}

}  // namespace thsr::par
