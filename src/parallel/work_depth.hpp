#pragma once
/// \file work_depth.hpp
/// Machine-independent work accounting. The paper's bounds are stated in
/// PRAM operations; wall-clock on a 2..N-core host cannot validate them
/// directly, so the library counts the operations that dominate each bound
/// (exact comparisons, crossings found, persistent nodes created, oracle
/// queries, envelope pieces touched) in thread-local buckets with negligible
/// overhead. Any thread — OpenMP team member, pool worker, external caller —
/// registers its bucket lazily on first count(); buckets outlive their
/// threads so totals survive pool resizes. Benches E1/E3/E4/E8 report these
/// counters against the claimed asymptotics, and bench_ci gates CI on them
/// (they are exactly schedule-, backend-, and machine-independent).

#include <array>
#include <cstdint>
#include <string_view>

#include "geometry/exactq.hpp"

namespace thsr {

enum class Op : unsigned {
  ExactCmp = 0,     ///< exact rational predicate evaluations
  Crossing,         ///< envelope/profile crossings discovered
  TreapNode,        ///< persistent nodes allocated (path copies + fresh)
  OracleQuery,      ///< first-crossing / next-transition queries issued
  OracleStep,       ///< tree nodes visited inside oracle descents
  EnvPiece,         ///< envelope pieces produced by phase-1 merges
  MergeEvent,       ///< above/below transition events in phase-2 merges
  // --- telemetry (not "work"): excluded from Counters::total() so that the
  // counted-work totals the shard duplication bound and benches E1/E4 reason
  // about keep their pre-filter meaning. Still baseline-gated per key.
  FilterFast,       ///< predicates decided by the f64 filter (no i128 math)
  FilterExact,      ///< predicates that fell back to the exact i128 path
  kCount,
};

/// Ops in [0, kWorkOpCount) are work; the rest are telemetry.
inline constexpr std::size_t kWorkOpCount = static_cast<std::size_t>(Op::FilterFast);

inline constexpr std::array<std::string_view, static_cast<std::size_t>(Op::kCount)> kOpNames{
    "exact_cmp",   "crossing",  "treap_node",  "oracle_query",
    "oracle_step", "env_piece", "merge_event", "filter_fast",
    "filter_exact_fallback"};

struct Counters {
  std::array<u64, static_cast<std::size_t>(Op::kCount)> v{};
  u64 operator[](Op op) const noexcept { return v[static_cast<std::size_t>(op)]; }
  /// Total counted *work* (telemetry ops excluded; see Op).
  u64 total() const noexcept {
    u64 s = 0;
    for (std::size_t i = 0; i < kWorkOpCount; ++i) s += v[i];
    return s;
  }
  Counters& operator+=(const Counters& o) noexcept {
    for (std::size_t i = 0; i < v.size(); ++i) v[i] += o.v[i];
    return *this;
  }
  Counters& operator-=(const Counters& o) noexcept {
    for (std::size_t i = 0; i < v.size(); ++i) v[i] -= o.v[i];
    return *this;
  }
  friend bool operator==(const Counters& a, const Counters& b) noexcept { return a.v == b.v; }
};

namespace work {

namespace detail {
/// Slow path, once per thread: allocate this thread's counter block and
/// register it with the global snapshot/reset registry (work_depth.cpp;
/// blocks are never destroyed so totals survive thread exits).
Counters* register_thread() noexcept;

/// The calling thread's counter block. The cached thread_local pointer
/// keeps the inline count() below at a guard check, a TLS load and one
/// add — cheap enough to sit on the predicate-filter fast path.
inline Counters& local() noexcept {
  thread_local Counters* c = register_thread();
  return *c;
}
}  // namespace detail

/// Record `n` operations of kind `op` on the calling thread. O(1), no
/// locks, fully inline.
inline void count(Op op, u64 n = 1) noexcept {
  detail::local().v[static_cast<std::size_t>(op)] += n;
}

/// Sum all threads' counters accumulated since the last reset.
Counters snapshot() noexcept;

/// The calling thread's counters only. Deltas of this are exact for work
/// that ran entirely on the calling thread (e.g. a batched solve inside a
/// par::SerialRegion), and are immune to ops counted concurrently by other
/// threads — which global snapshot() deltas are not.
Counters local_snapshot() noexcept;

/// Zero all threads' counters.
void reset() noexcept;

/// RAII scope that reports the counter delta it observed.
class Scope {
 public:
  Scope() { start_ = snapshot(); }
  Counters delta() const noexcept {
    Counters now = snapshot();
    Counters d;
    for (std::size_t i = 0; i < d.v.size(); ++i) d.v[i] = now.v[i] - start_.v[i];
    return d;
  }

 private:
  Counters start_;
};

}  // namespace work
}  // namespace thsr
