#include "parallel/backend.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <thread>

namespace thsr::par {
namespace {

std::atomic<int> g_threads{0};   // 0 = not set yet: use hardware default
std::atomic<int> g_backend{-1};  // -1 = not resolved yet; else int(Backend)

Backend default_backend() noexcept {
#ifdef THSR_HAVE_OPENMP
  return Backend::OpenMP;
#else
  return Backend::Pool;
#endif
}

Backend resolve_backend() noexcept {
  if (const char* env = std::getenv("THSR_BACKEND")) {
    if (const auto b = parse_backend(env)) {
      if (backend_available(*b)) return *b;
      std::fprintf(stderr, "thsr: THSR_BACKEND=%s is not available in this build; using %s\n",
                   env, backend_name(default_backend()));
    } else if (env[0] != '\0') {
      std::fprintf(stderr, "thsr: unknown THSR_BACKEND=%s (serial|openmp|pool); using %s\n",
                   env, backend_name(default_backend()));
    }
  }
  return default_backend();
}

}  // namespace

Backend backend() noexcept {
  int b = g_backend.load(std::memory_order_acquire);
  if (b < 0) {
    int expected = -1;
    g_backend.compare_exchange_strong(expected, static_cast<int>(resolve_backend()),
                                      std::memory_order_acq_rel, std::memory_order_acquire);
    b = g_backend.load(std::memory_order_acquire);
  }
  return static_cast<Backend>(b);
}

bool set_backend(Backend b) noexcept {
  if (!backend_available(b)) return false;
  g_backend.store(static_cast<int>(b), std::memory_order_release);
  return true;
}

bool backend_available(Backend b) noexcept {
  switch (b) {
    case Backend::Serial:
    case Backend::Pool: return true;
    case Backend::OpenMP:
#ifdef THSR_HAVE_OPENMP
      return true;
#else
      return false;
#endif
  }
  return false;
}

const char* backend_name(Backend b) noexcept {
  switch (b) {
    case Backend::Serial: return "serial";
    case Backend::OpenMP: return "openmp";
    case Backend::Pool: return "pool";
  }
  return "?";
}

std::optional<Backend> parse_backend(std::string_view name) noexcept {
  if (name == "serial") return Backend::Serial;
  if (name == "openmp") return Backend::OpenMP;
  if (name == "pool") return Backend::Pool;
  return std::nullopt;
}

std::vector<Backend> available_backends() {
  std::vector<Backend> out{Backend::Serial, Backend::Pool};
  if (backend_available(Backend::OpenMP)) out.push_back(Backend::OpenMP);
  return out;
}

namespace {
thread_local int t_serial_depth = 0;

// max_threads() without the SerialRegion mask: the globally configured
// worker count. ScopedConfig snapshots this — snapshotting the masked
// value from inside a SerialRegion would "restore" the global count to 1.
int configured_threads() noexcept {
  const int p = g_threads.load(std::memory_order_relaxed);
  if (p > 0) return p;
#ifdef THSR_HAVE_OPENMP
  if (backend() == Backend::OpenMP) return omp_get_max_threads();
#endif
  return static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
}

}  // namespace

bool serial_forced() noexcept { return t_serial_depth > 0; }

SerialRegion::SerialRegion() noexcept { ++t_serial_depth; }
SerialRegion::~SerialRegion() { --t_serial_depth; }

ScopedConfig::ScopedConfig(int threads, std::optional<Backend> b) noexcept
    : prev_threads_(configured_threads()), prev_backend_(backend()) {
  if (threads > 0) {
    set_threads(threads);
    restore_threads_ = true;
  }
  if (b) {
    backend_ok_ = set_backend(*b);
    restore_backend_ = backend_ok_;
  }
}

ScopedConfig::~ScopedConfig() {
  if (restore_backend_) set_backend(prev_backend_);
  if (restore_threads_) set_threads(prev_threads_);
}

int max_threads() noexcept { return serial_forced() ? 1 : configured_threads(); }

void set_threads(int p) noexcept {
  p = std::max(1, p);
  g_threads.store(p, std::memory_order_relaxed);
#ifdef THSR_HAVE_OPENMP
  omp_set_num_threads(p);
#endif
}

bool in_parallel() noexcept {
  switch (backend()) {
    case Backend::OpenMP:
#ifdef THSR_HAVE_OPENMP
      return omp_in_parallel();
#else
      return false;
#endif
    case Backend::Pool: return pool::on_worker();
    case Backend::Serial: return false;
  }
  return false;
}

int worker_index() noexcept {
  switch (backend()) {
    case Backend::OpenMP:
#ifdef THSR_HAVE_OPENMP
      return omp_get_thread_num();
#else
      return 0;
#endif
    case Backend::Pool: return std::max(0, pool::worker_id());
    case Backend::Serial: return 0;
  }
  return 0;
}

}  // namespace thsr::par
