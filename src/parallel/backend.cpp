#include "parallel/backend.hpp"

#include <algorithm>
#include <atomic>
#include <thread>

namespace thsr::par {
namespace {
std::atomic<int> g_threads{0};  // 0 = not set yet: use hardware default
}

int max_threads() noexcept {
  const int p = g_threads.load(std::memory_order_relaxed);
  if (p > 0) return p;
#ifdef THSR_HAVE_OPENMP
  return omp_get_max_threads();
#else
  return std::max(1u, std::thread::hardware_concurrency());
#endif
}

void set_threads(int p) noexcept {
  p = std::max(1, p);
  g_threads.store(p, std::memory_order_relaxed);
#ifdef THSR_HAVE_OPENMP
  omp_set_num_threads(p);
#endif
}

bool in_parallel() noexcept {
#ifdef THSR_HAVE_OPENMP
  return omp_in_parallel();
#else
  return false;
#endif
}

int worker_index() noexcept {
#ifdef THSR_HAVE_OPENMP
  return omp_get_thread_num();
#else
  return 0;
#endif
}

}  // namespace thsr::par
