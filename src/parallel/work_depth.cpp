#include "parallel/work_depth.hpp"

#include <mutex>
#include <vector>

namespace thsr::work {
namespace {

// Counter blocks outlive their threads (a worker's counts must stay visible
// to snapshot() after the thread exits) and must stay valid through static
// destruction (a worker may still count() while other statics are torn
// down), so the registry — and the mutex guarding it — are never destroyed.
// Keeping the container alive also keeps every block reachable, so leak
// checkers stay quiet.
std::mutex& mu() {
  static auto* m = new std::mutex();
  return *m;
}

std::vector<Counters*>& registry() {
  static auto* r = new std::vector<Counters*>();
  return *r;
}

}  // namespace

namespace detail {

Counters* register_thread() noexcept {
  auto* fresh = new Counters();
  std::lock_guard<std::mutex> lk(mu());
  registry().push_back(fresh);
  return fresh;
}

}  // namespace detail

Counters local_snapshot() noexcept { return detail::local(); }

Counters snapshot() noexcept {
  std::lock_guard<std::mutex> lk(mu());
  Counters total;
  for (const Counters* c : registry()) total += *c;
  return total;
}

void reset() noexcept {
  std::lock_guard<std::mutex> lk(mu());
  for (Counters* c : registry()) *c = Counters{};
}

}  // namespace thsr::work
