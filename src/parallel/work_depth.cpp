#include "parallel/work_depth.hpp"

#include <mutex>
#include <vector>

namespace thsr::work {
namespace {

struct Bucket {
  Counters c;
};

std::mutex g_mu;
std::vector<Bucket*>& registry() {
  static std::vector<Bucket*> r;
  return r;
}

Bucket& local_bucket() {
  thread_local Bucket* b = [] {
    auto* fresh = new Bucket();  // intentionally leaked: lives as long as the thread registry
    std::lock_guard<std::mutex> lk(g_mu);
    registry().push_back(fresh);
    return fresh;
  }();
  return *b;
}

}  // namespace

void count(Op op, u64 n) noexcept { local_bucket().c.v[static_cast<std::size_t>(op)] += n; }

Counters snapshot() noexcept {
  std::lock_guard<std::mutex> lk(g_mu);
  Counters total;
  for (const Bucket* b : registry()) total += b->c;
  return total;
}

void reset() noexcept {
  std::lock_guard<std::mutex> lk(g_mu);
  for (Bucket* b : registry()) b->c = Counters{};
}

}  // namespace thsr::work
