#include "parallel/work_depth.hpp"

#include <mutex>
#include <vector>

namespace thsr::work {
namespace {

struct Bucket {
  Counters c;
};

// Buckets outlive their threads (a worker's counts must stay visible to
// snapshot() after the thread exits) and must stay valid through static
// destruction (a worker may still count() while other statics are torn
// down), so the registry — and the mutex guarding it — are never
// destroyed. Keeping the container alive also keeps every bucket
// reachable, so leak checkers stay quiet.
std::mutex& mu() {
  static auto* m = new std::mutex();
  return *m;
}

std::vector<Bucket*>& registry() {
  static auto* r = new std::vector<Bucket*>();
  return *r;
}

Bucket& local_bucket() {
  thread_local Bucket* b = [] {
    auto* fresh = new Bucket();
    std::lock_guard<std::mutex> lk(mu());
    registry().push_back(fresh);
    return fresh;
  }();
  return *b;
}

}  // namespace

void count(Op op, u64 n) noexcept { local_bucket().c.v[static_cast<std::size_t>(op)] += n; }

Counters local_snapshot() noexcept { return local_bucket().c; }

Counters snapshot() noexcept {
  std::lock_guard<std::mutex> lk(mu());
  Counters total;
  for (const Bucket* b : registry()) total += b->c;
  return total;
}

void reset() noexcept {
  std::lock_guard<std::mutex> lk(mu());
  for (Bucket* b : registry()) b->c = Counters{};
}

}  // namespace thsr::work
