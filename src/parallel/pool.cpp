#include "parallel/pool.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "support/check.hpp"

namespace thsr::par::pool {
namespace {

constexpr std::size_t kCacheLine = 64;

/// Chase–Lev work-stealing deque of Task*. The owning worker pushes and
/// pops at the bottom; thieves take from the top. This is the classic
/// algorithm (Chase & Lev, SPAA 2005) with two deliberate strengthenings:
/// slots are atomics and the top/bottom protocol uses seq_cst operations
/// instead of standalone fences, so ThreadSanitizer models every edge
/// (and the cost is irrelevant at fork-join granularity).
class Deque {
 public:
  Deque() : array_(new Array(kInitialCap)) {}
  ~Deque() {
    delete array_.load(std::memory_order_relaxed);
    for (Array* a : retired_) delete a;
  }
  Deque(const Deque&) = delete;
  Deque& operator=(const Deque&) = delete;

  /// Owner only.
  void push(Task* t) {
    const i64 b = bottom_.load(std::memory_order_relaxed);
    const i64 tp = top_.load(std::memory_order_acquire);
    Array* a = array_.load(std::memory_order_relaxed);
    if (b - tp > static_cast<i64>(a->cap) - 1) a = grow(a, tp, b);
    a->put(b, t);
    bottom_.store(b + 1, std::memory_order_seq_cst);  // publishes the slot
  }

  /// Owner only. Returns nullptr when empty (or lost the last element race).
  Task* pop() {
    const i64 b = bottom_.load(std::memory_order_relaxed) - 1;
    Array* a = array_.load(std::memory_order_relaxed);
    bottom_.store(b, std::memory_order_seq_cst);
    i64 tp = top_.load(std::memory_order_seq_cst);
    Task* result = nullptr;
    if (tp <= b) {
      result = a->get(b);
      if (tp == b) {
        // Last element: race the thieves for it via top.
        if (!top_.compare_exchange_strong(tp, tp + 1, std::memory_order_seq_cst,
                                          std::memory_order_relaxed)) {
          result = nullptr;
        }
        bottom_.store(b + 1, std::memory_order_relaxed);
      }
    } else {
      bottom_.store(b + 1, std::memory_order_relaxed);
    }
    return result;
  }

  /// Any thread. Returns nullptr when empty or on a lost race.
  Task* steal() {
    i64 tp = top_.load(std::memory_order_seq_cst);
    const i64 b = bottom_.load(std::memory_order_seq_cst);
    if (tp >= b) return nullptr;
    // A stale array_ is benign: grow() only copies, it never mutates the
    // old array, and retired arrays stay alive until the deque dies.
    Array* a = array_.load(std::memory_order_acquire);
    Task* result = a->get(tp);
    if (!top_.compare_exchange_strong(tp, tp + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      return nullptr;
    }
    return result;
  }

 private:
  static constexpr std::size_t kInitialCap = 256;

  struct Array {
    explicit Array(std::size_t c) : cap(c), mask(c - 1), slots(new std::atomic<Task*>[c]) {}
    ~Array() { delete[] slots; }
    Task* get(i64 i) const {
      return slots[static_cast<std::size_t>(i) & mask].load(std::memory_order_relaxed);
    }
    void put(i64 i, Task* t) {
      slots[static_cast<std::size_t>(i) & mask].store(t, std::memory_order_relaxed);
    }
    const std::size_t cap, mask;
    std::atomic<Task*>* const slots;
  };

  Array* grow(Array* old, i64 tp, i64 b) {
    auto* bigger = new Array(old->cap * 2);
    for (i64 i = tp; i < b; ++i) bigger->put(i, old->get(i));
    retired_.push_back(old);  // thieves may still hold a pointer to it
    array_.store(bigger, std::memory_order_seq_cst);
    return bigger;
  }

  alignas(kCacheLine) std::atomic<i64> top_{0};
  alignas(kCacheLine) std::atomic<i64> bottom_{0};
  alignas(kCacheLine) std::atomic<Array*> array_;
  std::vector<Array*> retired_;  // owner-only, freed with the deque
};

struct Worker {
  Deque deque;
  std::thread thread;
};

thread_local int tl_worker_id = -1;

struct Pool {
  // Two locks with distinct jobs: lifecycle_mu serializes resize/shutdown
  // end to end (held across worker joins — never taken by workers), while
  // mu only guards the sleep condition (taken by workers in cv.wait, so it
  // must NOT be held while joining them).
  std::mutex lifecycle_mu;
  std::mutex mu;
  std::condition_variable cv;
  std::vector<std::unique_ptr<Worker>> workers;  // stable pointers
  std::atomic<int> n_workers{0};
  std::atomic<int> active_roots{0};
  std::atomic<bool> stopping{false};
  bool dead{false};  // set at static destruction; guarded by lifecycle_mu
  std::mutex inject_mu;
  std::vector<Task*> inject;        // FIFO of externally submitted roots
  std::atomic<int> inject_size{0};  // lock-free emptiness check for find_task

  static Pool& get() {
    static Pool p;
    return p;
  }

  ~Pool() {
    std::lock_guard<std::mutex> lk(lifecycle_mu);
    stop_workers_locked();
    dead = true;
  }

  /// Requires lifecycle_mu. Workers are only stopped when no root is
  /// active, so their deques are empty and they are idle or asleep.
  void stop_workers_locked() {
    if (workers.empty()) return;
    stopping.store(true, std::memory_order_seq_cst);
    {
      std::lock_guard<std::mutex> lk(mu);  // pair with the cv.wait predicate
    }
    cv.notify_all();
    for (auto& w : workers) w->thread.join();
    workers.clear();
    n_workers.store(0, std::memory_order_seq_cst);
    stopping.store(false, std::memory_order_seq_cst);
  }

  /// Returns true when the pool is running some workers on exit (usually
  /// `want`; an older size when a resize is deferred because roots are in
  /// flight). False only once the pool is dead or want could not be met.
  bool ensure_workers(int want) {
    if (n_workers.load(std::memory_order_acquire) == want) return true;
    std::lock_guard<std::mutex> lk(lifecycle_mu);
    if (dead) return false;
    if (static_cast<int>(workers.size()) == want) return true;
    if (active_roots.load(std::memory_order_acquire) > 0) return !workers.empty();
    stop_workers_locked();
    workers.reserve(static_cast<std::size_t>(want));
    for (int i = 0; i < want; ++i) workers.push_back(std::make_unique<Worker>());
    n_workers.store(want, std::memory_order_seq_cst);
    for (int i = 0; i < want; ++i) {
      workers[static_cast<std::size_t>(i)]->thread = std::thread([this, i] { worker_main(i); });
    }
    return true;
  }

  Task* pop_injected() {
    // Cheap pre-check: find_task runs continuously on every idle worker,
    // so taking the mutex only when a root is actually queued keeps the
    // steal path lock-free in the common case.
    if (inject_size.load(std::memory_order_acquire) == 0) return nullptr;
    std::lock_guard<std::mutex> lk(inject_mu);
    if (inject.empty()) return nullptr;
    Task* t = inject.front();
    inject.erase(inject.begin());
    inject_size.fetch_sub(1, std::memory_order_acq_rel);
    return t;
  }

  Task* find_task(int id) {
    Worker& self = *workers[static_cast<std::size_t>(id)];
    if (Task* t = self.deque.pop()) return t;
    if (Task* t = pop_injected()) return t;
    const int n = n_workers.load(std::memory_order_relaxed);
    // Deterministic round-robin starting after self: victim order does not
    // affect results (CREW), only load balance, and it is cheap.
    for (int i = 1; i < n; ++i) {
      const int victim = (id + i) % n;
      if (Task* t = workers[static_cast<std::size_t>(victim)]->deque.steal()) return t;
    }
    return nullptr;
  }

  void execute_task(Task* t) {
    t->run(t);
    // Everything about `t` must be read before the store: the waiter may
    // observe pending==0 and destroy the (stack-allocated) task at once.
    const bool is_root = t->is_root;
    t->pending.store(0, std::memory_order_release);
    if (is_root) {
      // Wake the external waiter via the pool's cv (which outlives every
      // task) — notifying t->pending itself after the store would race
      // with the task's destruction. Workers woken spuriously re-check
      // their predicate and go back to sleep.
      {
        std::lock_guard<std::mutex> lk(mu);
      }
      cv.notify_all();
    }
  }

  void worker_main(int id) {
    tl_worker_id = id;
    int misses = 0;  // consecutive find_task failures
    for (;;) {
      if (Task* t = find_task(id)) {
        execute_task(t);
        misses = 0;
        continue;
      }
      if (stopping.load(std::memory_order_acquire)) return;
      if (active_roots.load(std::memory_order_acquire) > 0) {
        // A root is in flight: stay hot at first (steals land within a
        // scheduling quantum), but back off to a timed park after a spell
        // of misses so long serial stretches inside a root — and
        // oversubscribed runs — do not burn whole cores on yield loops.
        // Task pushes deliberately never notify, so the park self-wakes.
        if (++misses < kSpinMisses) {
          std::this_thread::yield();
        } else {
          std::unique_lock<std::mutex> lk(mu);
          cv.wait_for(lk, std::chrono::microseconds(200));
        }
        continue;
      }
      misses = 0;
      std::unique_lock<std::mutex> lk(mu);
      cv.wait(lk, [this] {
        return stopping.load(std::memory_order_acquire) ||
               active_roots.load(std::memory_order_acquire) > 0;
      });
      if (stopping.load(std::memory_order_acquire)) return;
    }
  }

  static constexpr int kSpinMisses = 64;
};

}  // namespace

bool on_worker() noexcept { return tl_worker_id >= 0; }

int worker_id() noexcept { return tl_worker_id; }

int workers() noexcept { return Pool::get().n_workers.load(std::memory_order_acquire); }

void run_root(Task* t, int want_workers) {
  Pool& p = Pool::get();
  if (tl_worker_id >= 0 || want_workers <= 1 || !p.ensure_workers(want_workers)) {
    // Inline execution: the caller is the (synchronous) waiter, so no
    // completion signaling is needed — and after shutdown the pool's cv
    // must not be touched at all.
    t->run(t);
    t->pending.store(0, std::memory_order_release);
    return;
  }
  t->is_root = true;
  p.active_roots.fetch_add(1, std::memory_order_seq_cst);
  {
    std::lock_guard<std::mutex> lk(p.inject_mu);
    p.inject.push_back(t);
    p.inject_size.fetch_add(1, std::memory_order_acq_rel);
  }
  {
    std::unique_lock<std::mutex> lk(p.mu);
    // Taking mu pairs with the workers' cv.wait predicate: a worker that
    // saw active_roots == 0 is either not yet blocked (will re-check
    // under mu) or already in wait() and reachable by notify.
    p.cv.notify_all();
    p.cv.wait(lk, [t] { return t->pending.load(std::memory_order_acquire) == 0; });
  }
  p.active_roots.fetch_sub(1, std::memory_order_seq_cst);
}

void push(Task* t) {
  THSR_DCHECK(tl_worker_id >= 0);
  Pool& p = Pool::get();
  p.workers[static_cast<std::size_t>(tl_worker_id)]->deque.push(t);
}

void join(Task* t) {
  THSR_DCHECK(tl_worker_id >= 0);
  Pool& p = Pool::get();
  while (t->pending.load(std::memory_order_acquire) != 0) {
    // Help instead of blocking: drain our own deque (LIFO gives back the
    // task we just pushed in the common unstolen case), then steal. Pure
    // loads on `pending` — join never waits on the task's atomic, so the
    // executor never has to touch a task after marking it done.
    if (Task* w = p.find_task(tl_worker_id)) {
      p.execute_task(w);
    } else {
      std::this_thread::yield();
    }
  }
}

}  // namespace thsr::par::pool
