#include "parallel/scan.hpp"

namespace thsr::par {

std::vector<u64> exclusive_scan(std::span<const u64> xs) {
  auto inc = inclusive_scan<u64>(xs, u64{0}, [](u64 a, u64 b) { return a + b; });
  std::vector<u64> out(xs.size() + 1, 0);
  for (std::size_t i = 0; i < inc.size(); ++i) out[i + 1] = inc[i];
  return out;
}

}  // namespace thsr::par
