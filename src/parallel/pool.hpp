#pragma once
/// \file pool.hpp
/// Native work-stealing fork-join pool: the `Backend::Pool` realization of
/// the CREW PRAM (DESIGN.md section 1.1). Every worker owns a Chase–Lev
/// deque; fork pushes a stack-allocated task onto the forking worker's
/// deque, join pops it back (the common, contention-free case) or helps by
/// stealing until the thief finishes it. External threads enter through
/// run_root(), which parks the caller while the task tree executes on the
/// workers, so `set_threads(p)` bounds total concurrency by the pool size
/// (p, except that a resize requested while roots are in flight is
/// deferred — the old worker count applies until the next quiet root).
///
/// The implementation avoids standalone atomic fences so ThreadSanitizer
/// can reason about every synchronization edge (the tsan CI preset runs
/// the whole suite on this backend).

#include <atomic>
#include <utility>

#include "geometry/exactq.hpp"

namespace thsr::par::pool {

/// A unit of fork-join work. The object lives on the forking frame's stack
/// (the frame never unwinds past join()), so no allocation is needed per
/// fork. `pending` is the join flag: 1 while unfinished, 0 when done. The
/// executor never touches a task after storing pending=0 (the waiter may
/// destroy it the moment it observes 0); root-completion wakeups go
/// through the pool's own long-lived condition variable instead.
struct Task {
  void (*run)(Task*) = nullptr;
  bool is_root = false;  // set by run_root before submission
  std::atomic<u32> pending{1};
};

/// Task holding an arbitrary callable by value.
template <typename F>
class Closure final : public Task {
 public:
  explicit Closure(F f) : f_(std::move(f)) { run = &Closure::invoke; }

 private:
  static void invoke(Task* t) { static_cast<Closure*>(t)->f_(); }
  F f_;
};

/// True when the calling thread is a pool worker (i.e. inside run_root).
bool on_worker() noexcept;

/// Index of the calling pool worker in [0, workers()), or -1 outside.
int worker_id() noexcept;

/// Number of workers the pool currently runs (0 before first use).
int workers() noexcept;

/// Run `t` to completion on the pool with `want_workers` workers, blocking
/// the calling (external) thread. Falls back to inline execution when the
/// pool is shut down, when want_workers <= 1, or when already on a worker.
void run_root(Task* t, int want_workers);

/// Push `t` onto the calling worker's deque. Must be called on a worker.
void push(Task* t);

/// Wait for `t` to finish, executing other pool work while waiting.
/// Must be called on the worker that pushed `t`.
void join(Task* t);

}  // namespace thsr::par::pool
