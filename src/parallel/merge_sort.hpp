#pragma once
/// \file merge_sort.hpp
/// Parallel merge (split the larger input at its median, binary-search the
/// partner — Shiloach–Vishkin style, the paper's reference [23]) and the
/// merge sort built on it. Work O(n log n), depth O(log^2 n) with enough
/// workers; serial std fallbacks below the grain size.

#include <algorithm>
#include <span>
#include <vector>

#include "parallel/backend.hpp"

namespace thsr::par {

namespace detail {

template <typename T, typename Cmp>
void merge_rec(std::span<const T> a, std::span<const T> b, std::span<T> out, Cmp cmp,
               i64 grain) {
  if (a.size() < b.size()) {
    merge_rec(b, a, out, cmp, grain);
    return;
  }
  if (static_cast<i64>(a.size() + b.size()) <= grain || b.empty()) {
    std::merge(a.begin(), a.end(), b.begin(), b.end(), out.begin(), cmp);
    return;
  }
  const std::size_t ma = a.size() / 2;
  const std::size_t mb = static_cast<std::size_t>(
      std::lower_bound(b.begin(), b.end(), a[ma], cmp) - b.begin());
  out[ma + mb] = a[ma];
  fork_join(
      [&] { merge_rec(a.subspan(0, ma), b.subspan(0, mb), out.subspan(0, ma + mb), cmp, grain); },
      [&] {
        merge_rec(a.subspan(ma + 1), b.subspan(mb), out.subspan(ma + mb + 1), cmp, grain);
      });
}

template <typename T, typename Cmp>
void sort_rec(std::span<T> xs, std::span<T> buf, Cmp cmp, i64 grain, bool xs_is_dst) {
  if (static_cast<i64>(xs.size()) <= grain) {
    std::sort(xs.begin(), xs.end(), cmp);
    if (!xs_is_dst) std::copy(xs.begin(), xs.end(), buf.begin());
    return;
  }
  const std::size_t m = xs.size() / 2;
  fork_join([&] { sort_rec(xs.subspan(0, m), buf.subspan(0, m), cmp, grain, !xs_is_dst); },
            [&] { sort_rec(xs.subspan(m), buf.subspan(m), cmp, grain, !xs_is_dst); });
  auto src = xs_is_dst ? buf : xs;
  auto dst = xs_is_dst ? xs : buf;
  merge_rec(std::span<const T>(src.subspan(0, m)), std::span<const T>(src.subspan(m)), dst, cmp,
            grain);
}

}  // namespace detail

/// Merge two sorted ranges into `out` (out.size() == a.size()+b.size()).
template <typename T, typename Cmp = std::less<T>>
void parallel_merge(std::span<const T> a, std::span<const T> b, std::span<T> out, Cmp cmp = {},
                    i64 grain = 8192) {
  THSR_CHECK(out.size() == a.size() + b.size());
  run_root_task([&] { detail::merge_rec(a, b, out, cmp, grain); });
}

/// Stable-output parallel merge sort (not stable; use ids as tie-breaks).
template <typename T, typename Cmp = std::less<T>>
void parallel_sort(std::span<T> xs, Cmp cmp = {}, i64 grain = 8192) {
  if (static_cast<i64>(xs.size()) <= grain || max_threads() <= 1) {
    std::sort(xs.begin(), xs.end(), cmp);
    return;
  }
  std::vector<T> buf(xs.size());
  run_root_task([&] { detail::sort_rec(xs, std::span<T>(buf), cmp, grain, /*xs_is_dst=*/true); });
}

}  // namespace thsr::par
