#pragma once
/// \file task_allocator.hpp
/// Emulation of the paper's processor-allocation problem. Lemmas 2.1/2.2
/// charge every phase a term t_{p,r}: the time to hand r units of work,
/// split into unequal tasks, to p processors. On a real shared-memory
/// machine that cost is the scheduler's: this module runs N synthetic tasks
/// of prescribed sizes under the current backend — OpenMP's four schedules,
/// or the pool's dynamic-chunk analogue of each — and reports the measured
/// overhead over the ideal work/p, which bench table_e9_slowdown tabulates
/// against the lemma's O(r log r / p) allocation bound.

#include <span>

#include "geometry/exactq.hpp"

namespace thsr::par {

enum class Schedule { StaticBlock, StaticCyclic, Dynamic, Guided };

struct AllocReport {
  double wall_s{0};      ///< measured makespan
  double serial_s{0};    ///< measured serial execution time (p=1 reference)
  double ideal_s{0};     ///< serial_s / p
  double overhead_s{0};  ///< wall_s - ideal_s (the t_{p,N} analogue)
  u64 tasks{0};
  u64 total_cost{0};
  /// Tasks the measured (parallel) pass actually ran — always equals
  /// `tasks` when the schedule dispatched correctly. The deterministic
  /// completion condition tests assert instead of wall-clock ratios, which
  /// are meaningless under sanitizers or on oversubscribed hosts.
  u64 executed{0};
};

/// Run tasks whose cost is a spin of `costs[i]` iterations under `sched`
/// with `p` workers.
AllocReport run_synthetic_tasks(std::span<const u32> costs, int p, Schedule sched);

const char* schedule_name(Schedule s) noexcept;

}  // namespace thsr::par
