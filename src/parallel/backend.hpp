#pragma once
/// \file backend.hpp
/// Shared-memory fork-join backend: the repo's realization of the CREW PRAM.
///
/// A CREW PRAM step "for all i in parallel do f(i)" maps to parallel_for;
/// recursive divide-and-conquer maps to fork_join inside run_root_task.
/// Concurrent *reads* of immutable shared structures are allowed everywhere
/// (the CREW discipline); writes are always to thread-private or freshly
/// allocated state.
///
/// The executor behind these primitives is chosen *at runtime* (DESIGN.md
/// section 1.1): `Backend::Serial` runs everything inline, `Backend::OpenMP`
/// maps onto OpenMP parallel regions and tasks (when compiled in), and
/// `Backend::Pool` runs on the library's own work-stealing fork-join pool
/// (src/parallel/pool.hpp) — so builds without OpenMP still get real
/// parallel speedup. All backends execute the identical operation set in
/// the identical reduction structure; only placement differs, which is why
/// results are bit-identical and the work_depth counters agree exactly
/// across backends and thread counts (asserted by the determinism tests).

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <optional>
#include <string_view>
#include <utility>
#include <vector>

#include "geometry/exactq.hpp"
#include "parallel/pool.hpp"

#ifdef THSR_HAVE_OPENMP
#include <omp.h>
#endif

namespace thsr::par {

/// Which executor realizes the PRAM primitives.
enum class Backend {
  Serial,  ///< inline execution on the calling thread (always available)
  OpenMP,  ///< OpenMP parallel-for + tasks (available iff THSR_HAVE_OPENMP)
  Pool,    ///< native work-stealing fork-join pool (always available)
};

/// The backend subsequent parallel regions will use. Resolved on first use
/// from the THSR_BACKEND environment variable ("serial" | "openmp" |
/// "pool"); default: OpenMP when compiled in, else Pool.
Backend backend() noexcept;

/// Select the backend. Returns false (and changes nothing) when `b` is not
/// available in this build.
bool set_backend(Backend b) noexcept;

/// True when `b` can be selected in this build.
bool backend_available(Backend b) noexcept;

const char* backend_name(Backend b) noexcept;

/// Parse "serial" / "openmp" / "pool" (exact match) into a Backend.
std::optional<Backend> parse_backend(std::string_view name) noexcept;

/// The backends selectable in this build, in {Serial, Pool[, OpenMP]}
/// order. The one authoritative list for tests and benches.
std::vector<Backend> available_backends();

/// Number of workers the next parallel region will use.
int max_threads() noexcept;

/// Set the worker count for subsequent parallel regions (1 = serial).
void set_threads(int p) noexcept;

/// RAII scope that applies an optional worker count (`threads > 0`) and an
/// optional backend, and restores the previous configuration on destruction
/// — including when the scope unwinds via an exception, so a failing solve
/// can never leak a modified global executor configuration.
class ScopedConfig {
 public:
  ScopedConfig(int threads, std::optional<Backend> b) noexcept;
  ~ScopedConfig();
  ScopedConfig(const ScopedConfig&) = delete;
  ScopedConfig& operator=(const ScopedConfig&) = delete;

  /// False when a requested backend is unavailable in this build (nothing
  /// was changed); callers decide whether that is an error.
  bool backend_applied() const noexcept { return backend_ok_; }

 private:
  int prev_threads_{0};
  Backend prev_backend_{Backend::Serial};
  bool restore_threads_{false};
  bool restore_backend_{false};
  bool backend_ok_{true};
};

/// True while the calling thread is inside a SerialRegion: every parallel
/// primitive invoked on this thread runs inline.
bool serial_forced() noexcept;

/// RAII scope that forces all parallel primitives on the calling thread
/// (and everything it runs) to execute inline until destruction. Batch
/// drivers fan whole solves out as single tasks under this scope, so each
/// task stays on its worker — keeping per-task work-counter attribution
/// exact while tasks themselves still spread across the backend. Nests.
class SerialRegion {
 public:
  SerialRegion() noexcept;
  ~SerialRegion();
  SerialRegion(const SerialRegion&) = delete;
  SerialRegion& operator=(const SerialRegion&) = delete;
};

/// True when called from inside a parallel region.
bool in_parallel() noexcept;

/// Index of the calling worker in [0, max_threads()).
int worker_index() noexcept;

namespace detail {

/// Fork `k` leaves running `mine` as a balanced task tree on the pool, so
/// idle workers pick up branches by stealing. Off a pool worker (e.g. the
/// inline fallback run_root takes after shutdown) there is nowhere to push
/// forks, so the tree degenerates to one serial leaf — correct, since the
/// leaves drain a shared counter and one drains it all.
template <typename M>
void mine_tree(int k, M& mine) {
  if (k <= 1 || !pool::on_worker()) {
    mine();
    return;
  }
  const int half = k / 2;
  auto left = [&] { mine_tree(half, mine); };
  pool::Closure<decltype(left)> task(std::move(left));
  pool::push(&task);
  mine_tree(k - half, mine);
  pool::join(&task);
}

/// Dynamic-chunk loop on the pool: max_threads() miners drain a shared
/// iteration counter in chunks — the pool's analogue of OpenMP's
/// schedule(dynamic) processor allocation (slow-down Lemma 2.1). A
/// non-zero `chunk` fixes the chunk size exactly (the task allocator uses
/// this to emulate specific schedules); 0 derives it from `grain` and n.
template <typename F>
void pool_parallel_for(i64 n, F& f, i64 grain, i64 chunk = 0) {
  const int p = max_threads();
  if (chunk <= 0) {
    chunk = std::max<i64>(1, std::min<i64>(std::max<i64>(1, grain), n / (8 * p) + 1));
  }
  std::atomic<i64> next{0};
  auto mine = [&] {
    for (;;) {
      const i64 i0 = next.fetch_add(chunk, std::memory_order_relaxed);
      if (i0 >= n) return;
      const i64 i1 = std::min(n, i0 + chunk);
      for (i64 i = i0; i < i1; ++i) f(i);
    }
  };
  const int miners = static_cast<int>(std::min<i64>(p, (n + chunk - 1) / chunk));
  auto root = [&] { mine_tree(miners, mine); };
  pool::Closure<decltype(root)> task(std::move(root));
  pool::run_root(&task, p);
}

}  // namespace detail

/// PRAM-style "in parallel for all i in [0, n)". Dynamic schedule: the
/// practical counterpart of the paper's processor-allocation step
/// (slow-down Lemma 2.1); measured in bench table_e9_slowdown.
template <typename F>
void parallel_for(i64 n, F&& f, i64 grain = 256) {
  if (n > grain && max_threads() > 1) {
    switch (backend()) {
      case Backend::OpenMP:
#ifdef THSR_HAVE_OPENMP
        if (!omp_in_parallel()) {
#pragma omp parallel for schedule(dynamic, 16)
          for (i64 i = 0; i < n; ++i) f(i);
          return;
        }
#endif
        break;
      case Backend::Pool:
        if (!pool::on_worker()) {
          detail::pool_parallel_for(n, f, grain);
          return;
        }
        break;
      case Backend::Serial: break;
    }
  }
  (void)grain;
  for (i64 i = 0; i < n; ++i) f(i);
}

/// Run `f` as the root of a task tree (opens one parallel region).
template <typename F>
void run_root_task(F&& f) {
  if (max_threads() > 1) {
    switch (backend()) {
      case Backend::OpenMP:
#ifdef THSR_HAVE_OPENMP
        if (!omp_in_parallel()) {
#pragma omp parallel
#pragma omp single nowait
          { f(); }
          return;
        }
#endif
        break;
      case Backend::Pool:
        if (!pool::on_worker()) {
          auto root = [&] { f(); };
          pool::Closure<decltype(root)> task(std::move(root));
          pool::run_root(&task, max_threads());
          return;
        }
        break;
      case Backend::Serial: break;
    }
  }
  f();
}

namespace detail {

/// Recursive binary split of [lo, hi): distributes items on every backend
/// (OpenMP tasks, pool stealing) without tying the split to a schedule
/// chunk size.
template <typename F>
void fan_items_tree(std::size_t lo, std::size_t hi, F& item);

}  // namespace detail

/// Fan `n` *independent whole items* out over the current backend as a
/// balanced binary task tree, one task per item — the dispatch shape of
/// batch drivers (HsrEngine::solve_batch, shard::ShardedEngine) whose
/// items are entire solves, typically run under a SerialRegion so each
/// item stays on its worker for exact per-item counter attribution.
/// Unlike parallel_for there is no chunking: n is small and items are
/// coarse. Opens its own root region; degrades to a plain loop when n <= 1,
/// a single worker is configured, or the caller is already inside a
/// parallel region (nested regions would deadlock the pool's root entry).
template <typename F>
void fan_items(std::size_t n, F&& f) {
  if (n <= 1 || max_threads() <= 1 || in_parallel()) {
    for (std::size_t i = 0; i < n; ++i) f(i);
    return;
  }
  run_root_task([&] { detail::fan_items_tree(0, n, f); });
}

/// Execute a and b, possibly concurrently; returns after both complete.
/// Must be called (transitively) from run_root_task for parallelism to occur.
template <typename A, typename B>
void fork_join(A&& a, B&& b, bool parallel_ok = true) {
  if (parallel_ok && !serial_forced()) {
    switch (backend()) {
      case Backend::OpenMP:
#ifdef THSR_HAVE_OPENMP
        if (omp_in_parallel()) {
#pragma omp task default(shared) untied
          { a(); }
          b();
#pragma omp taskwait
          return;
        }
#endif
        break;
      case Backend::Pool:
        if (pool::on_worker()) {
          auto left = [&] { a(); };
          pool::Closure<decltype(left)> task(std::move(left));
          pool::push(&task);
          b();
          pool::join(&task);
          return;
        }
        break;
      case Backend::Serial: break;
    }
  }
  (void)parallel_ok;
  a();
  b();
}

namespace detail {

template <typename F>
void fan_items_tree(std::size_t lo, std::size_t hi, F& item) {
  if (hi - lo <= 1) {
    if (lo < hi) item(lo);
    return;
  }
  const std::size_t mid = lo + (hi - lo) / 2;
  fork_join([&] { fan_items_tree(lo, mid, item); }, [&] { fan_items_tree(mid, hi, item); });
}

}  // namespace detail

}  // namespace thsr::par
