#pragma once
/// \file backend.hpp
/// Shared-memory fork-join backend: the repo's realization of the CREW PRAM.
///
/// A CREW PRAM step "for all i in parallel do f(i)" maps to parallel_for;
/// recursive divide-and-conquer maps to fork_join inside run_root_task.
/// Concurrent *reads* of immutable shared structures are allowed everywhere
/// (the CREW discipline); writes are always to thread-private or freshly
/// allocated state. With OpenMP absent the backend degrades to serial
/// execution with identical results (determinism tests rely on this).

#include <cstdint>
#include <utility>

#include "geometry/exactq.hpp"

#ifdef THSR_HAVE_OPENMP
#include <omp.h>
#endif

namespace thsr::par {

/// Number of workers the next parallel region will use.
int max_threads() noexcept;

/// Set the worker count for subsequent parallel regions (1 = serial).
void set_threads(int p) noexcept;

/// True when called from inside a parallel region.
bool in_parallel() noexcept;

/// Index of the calling worker in [0, max_threads()).
int worker_index() noexcept;

/// PRAM-style "in parallel for all i in [0, n)". Dynamic schedule: the
/// practical counterpart of the paper's processor-allocation step
/// (slow-down Lemma 2.1); measured in bench table_e9_slowdown.
template <typename F>
void parallel_for(i64 n, F&& f, i64 grain = 256) {
#ifdef THSR_HAVE_OPENMP
  if (n > grain && max_threads() > 1 && !omp_in_parallel()) {
#pragma omp parallel for schedule(dynamic, 16)
    for (i64 i = 0; i < n; ++i) f(i);
    return;
  }
#endif
  (void)grain;
  for (i64 i = 0; i < n; ++i) f(i);
}

/// Run `f` as the root of a task tree (opens one parallel region).
template <typename F>
void run_root_task(F&& f) {
#ifdef THSR_HAVE_OPENMP
  if (max_threads() > 1 && !omp_in_parallel()) {
#pragma omp parallel
#pragma omp single nowait
    { f(); }
    return;
  }
#endif
  f();
}

/// Execute a and b, possibly concurrently; returns after both complete.
/// Must be called (transitively) from run_root_task for parallelism to occur.
template <typename A, typename B>
void fork_join(A&& a, B&& b, bool parallel_ok = true) {
#ifdef THSR_HAVE_OPENMP
  if (parallel_ok && omp_in_parallel()) {
#pragma omp task default(shared) untied
    { a(); }
    b();
#pragma omp taskwait
    return;
  }
#endif
  (void)parallel_ok;
  a();
  b();
}

}  // namespace thsr::par
