#pragma once
/// \file check.hpp
/// Contract-checking macros (Core Guidelines I.6/I.8 style). THSR_CHECK is
/// always on and is used for cheap invariants on public boundaries;
/// THSR_DCHECK compiles away in NDEBUG builds and is used on hot paths.

#include <cstdio>
#include <cstdlib>

namespace thsr::detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file, int line) {
  std::fprintf(stderr, "thsr: check failed: %s at %s:%d\n", expr, file, line);
  std::abort();
}
}  // namespace thsr::detail

#define THSR_CHECK(expr) \
  ((expr) ? (void)0 : ::thsr::detail::check_failed(#expr, __FILE__, __LINE__))

#ifdef NDEBUG
#define THSR_DCHECK(expr) ((void)0)
#else
#define THSR_DCHECK(expr) THSR_CHECK(expr)
#endif
