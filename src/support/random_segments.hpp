#pragma once
/// \file random_segments.hpp
/// The one shared deterministic segment-soup generator tests and benches
/// both draw from (tests/test_util.hpp and bench/test_support_random.hpp
/// are thin forwarding wrappers): a single definition means the two can
/// never drift apart and regenerate different soups for the same seed.
/// mt19937_64 sequences are specified by the standard, so the output is
/// identical on every platform.

#include <random>
#include <vector>

#include "geometry/predicates.hpp"

namespace thsr::support {

/// `n` random non-vertical segments, u-ascending, with integer
/// coordinates uniform in [-range, range]. Purely a function of
/// (seed, n, range).
inline std::vector<Seg2> random_segments(u64 seed, std::size_t n, i64 range) {
  std::mt19937_64 g{seed};
  std::uniform_int_distribution<i64> coord(-range, range);
  std::vector<Seg2> out;
  out.reserve(n);
  while (out.size() < n) {
    const i64 u0 = coord(g), u1 = coord(g);
    if (u0 == u1) continue;
    const i64 v0 = coord(g), v1 = coord(g);
    out.push_back(u0 < u1 ? Seg2{u0, v0, u1, v1} : Seg2{u1, v1, u0, v0});
  }
  return out;
}

}  // namespace thsr::support
