#pragma once
/// \file terrain_families.hpp
/// Shared deterministic terrain/DEM families for tests and benches — the
/// single definition the suite's workload tables draw from, in the spirit
/// of random_segments.hpp: one generator per family name means two
/// consumers can never drift apart and produce different inputs for the
/// same parameters. Everything here is a pure function of its arguments
/// (mt19937_64 sequences are specified by the standard).

#include <random>
#include <vector>

#include "terrain/asc_io.hpp"
#include "terrain/generators.hpp"

namespace thsr::support {

/// One-call generator-family terrain (the helper test_shard.cpp and
/// friends used to copy-paste): deterministic in every argument.
inline Terrain make_family_terrain(Family f, u32 grid, u64 seed = 1, bool shear = true,
                                   bool jitter = false) {
  GenOptions opt;
  opt.family = f;
  opt.grid = grid;
  opt.seed = seed;
  opt.shear = shear;
  opt.jitter = jitter;
  return make_terrain(opt);
}

/// Dense-staircase family: a high-frequency jittered amphitheatre whose
/// visible map is dominated by tiny staircase pieces. Rasterized at a low
/// width (image columns << staircase steps) most pieces and crossings fall
/// strictly inside one sample interval, which is exactly the structure a
/// resolution-bounded solve (HsrOptions::pixel_budget) prunes — the family
/// the bounded bench/test layer measures its counter drop on.
inline Terrain dense_staircase(u32 grid, u64 seed = 1) {
  GenOptions opt;
  opt.family = Family::TerraceBack;
  opt.grid = grid;
  opt.seed = seed;
  opt.shear = true;
  opt.jitter = true;  // irregular steps: no two pieces share an extent
  return make_terrain(opt);
}

/// Synthetic-DEM families (the table test_stream.cpp used to define
/// privately): smooth relief, spiky outliers, NODATA holes, flat ties.
enum class GridFamily { Smooth, Spiky, Holes, Flat };

inline constexpr GridFamily kAllGridFamilies[] = {GridFamily::Smooth, GridFamily::Spiky,
                                                  GridFamily::Holes, GridFamily::Flat};

/// Deterministic synthetic DEM of the given family.
inline AscGrid make_asc_grid(u32 cols, u32 rows, GridFamily fam, u64 seed) {
  AscGrid g;
  g.ncols = cols;
  g.nrows = rows;
  g.cellsize = 1.0;
  g.nodata = -9999.0;
  g.values.resize(std::size_t{rows} * cols);
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> u01(0.0, 1.0);
  for (u32 r = 0; r < rows; ++r) {
    for (u32 c = 0; c < cols; ++c) {
      double v = 0.0;
      switch (fam) {
        case GridFamily::Smooth:
          v = static_cast<double>((r * 3 + c * 2) % 17) + 4.0 * u01(rng);
          break;
        case GridFamily::Spiky:
          v = u01(rng) < 0.1 ? 200.0 + 300.0 * u01(rng) : u01(rng);
          break;
        case GridFamily::Holes:
          v = u01(rng) < 0.2 ? *g.nodata
                             : static_cast<double>((r * 5 + c * 3) % 11) + 2.0 * u01(rng);
          break;
        case GridFamily::Flat:
          v = 5.0;
          break;
      }
      g.values[std::size_t{r} * cols + c] = v;
    }
  }
  return g;
}

}  // namespace thsr::support
