#pragma once
/// \file sharded_engine.hpp
/// Data-decomposed hidden-surface removal: one prepared HsrEngine per
/// y-slab, solves fanned over the fork-join backend, results stitched back
/// into the source terrain's visibility map (DESIGN.md section 1.7).
///
///   shard::ShardedEngine engine;
///   engine.prepare(terrain, /*slabs=*/8);   // decompose + prepare each slab
///   HsrResult r = engine.solve({.algorithm = Algorithm::Parallel});
///
/// The stitched map is piece-for-piece identical to a monolithic
/// HsrEngine solve of the same terrain, after both are coalesced at the
/// slab cut lines (shard::coalesce_at_cuts; tests/test_shard.cpp asserts
/// this across algorithms, phase-2 oracles, and backends). Sharding
/// changes *where* work happens — each slab's depth order, PCT, and
/// profiles are local, so per-slab working sets shrink with S — at the
/// price of replicating edges that cross slab lines; the plan's
/// duplication_factor() bounds that overhead, and bench_ci gates the
/// sharded counted work against it.
///
/// Stats of the stitched result: `work`, `treap_nodes`, `phase1_pieces`,
/// `depth_constraints`, and the phase timings are sums over the slabs
/// (each slab's solve folds in its own prepare work, mirroring the
/// monolithic convention); `k_*` are measured on the stitched map;
/// `layers` stays empty — per-slab layer schedules do not align; inspect
/// single-slab solves for that detail. An engine instance is not
/// thread-safe; solve() parallelizes internally.

#include <memory>

#include "core/hsr.hpp"
#include "shard/shard.hpp"

namespace thsr::shard {

class ShardedEngine {
 public:
  ShardedEngine();
  ~ShardedEngine();
  ShardedEngine(ShardedEngine&&) noexcept;
  ShardedEngine& operator=(ShardedEngine&&) noexcept;
  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  /// Decompose `t` into `slabs` y-slabs and prepare one session engine per
  /// non-empty slab (sequentially: preparation's counter attribution is
  /// global, and the scaling axis is the repeated solve). Fully evicts any
  /// previously prepared terrain. The terrain must outlive every solve.
  void prepare(const Terrain& t, u32 slabs);

  bool prepared() const noexcept;
  u32 slab_count() const noexcept;

  /// The decomposition (cut ordinates, per-slab sub-terrains, duplication
  /// accounting). Requires prepare().
  const ShardPlan& plan() const;

  /// Solve every slab with `opt` — fanned over the fork-join backend, one
  /// task per slab, each under a par::SerialRegion (solve_batch-style
  /// dispatch) — and stitch the per-slab maps. `opt.threads`/`opt.backend`
  /// configure the fan-out exactly as they would a monolithic solve;
  /// `opt.collect_layer_stats` is accepted but the stitched result keeps
  /// `layers` empty (see file comment).
  HsrResult solve(const HsrOptions& opt = {});

  /// Solve every slab with `opt` (the same fan-out as solve()) and return
  /// the raw per-slab results *without* stitching: entry i holds slab i's
  /// map indexed by slab-local edge ids (translate via
  /// plan().slabs[i].global_edge / global_tri), or nullopt for an empty
  /// slab. This is the raster path's entry point: per-slab maps rasterize
  /// independently into disjoint image-column bands, so no stitch is ever
  /// materialized (raster/raster.hpp, rasterize_sharded).
  std::vector<std::optional<HsrResult>> solve_slabs(const HsrOptions& opt = {});

  /// Wall-clock seconds the last prepare() took: decomposition plus every
  /// per-slab engine preparation (amortized across solves).
  double prepare_seconds() const noexcept;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace thsr::shard
