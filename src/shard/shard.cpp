#include "shard/shard.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace thsr::shard {
namespace {

/// True when `v` is one of the integer cut ordinates.
bool is_cut(const QY& v, std::span<const i64> cuts) {
  if (!v.is_integer()) return false;
  const auto c = static_cast<i64>(v.p / v.q);
  return std::binary_search(cuts.begin(), cuts.end(), c);
}

/// Translate a slab-local profile-edge id (crossing/blocking provenance)
/// to the source terrain's edge id.
u32 remap_edge(u32 id, const std::vector<u32>& global_edge) {
  if (id == kNoEdge) return kNoEdge;
  THSR_DCHECK(id < global_edge.size());
  return global_edge[id];
}

/// Append `p` to `acc`, merging with the previous piece when the two meet
/// exactly at a cut ordinate (the junction a slab split introduced).
void append_coalescing(std::vector<VisiblePiece>& acc, VisiblePiece p,
                       std::span<const i64> cuts) {
  if (!acc.empty() && acc.back().y1 == p.y0 && is_cut(p.y0, cuts)) {
    acc.back().y1 = p.y1;
    acc.back().k1 = p.k1;
    acc.back().other1 = p.other1;
    return;
  }
  THSR_DCHECK(acc.empty() || acc.back().y1 <= p.y0);
  acc.push_back(std::move(p));
}

}  // namespace

u32 ShardPlan::owner_slab(i64 y) const {
  THSR_DCHECK(!slabs.empty());
  const auto it = std::upper_bound(cuts.begin(), cuts.end(), y);
  if (it == cuts.begin()) return 0;
  const auto i = static_cast<std::size_t>(it - cuts.begin()) - 1;
  return static_cast<u32>(std::min(i, slabs.size() - 1));
}

ShardPlan decompose(const Terrain& t, u32 slabs) {
  THSR_CHECK(slabs >= 1);
  ShardPlan plan;
  plan.source = &t;

  // Uniformly spaced integer cuts spanning [min_y, max_y]. Exact division
  // is not required — any non-decreasing integer cut sequence with these
  // endpoints is a valid plan; uniform keeps slab sizes balanced on the
  // generators' lattices.
  const i64 span = t.max_y() - t.min_y();
  plan.cuts.resize(static_cast<std::size_t>(slabs) + 1);
  for (u32 i = 0; i <= slabs; ++i) {
    plan.cuts[i] = t.min_y() + static_cast<i64>(i128{span} * i / slabs);
  }

  const std::span<const Vertex3> verts = t.vertices();
  const std::span<const Triangle> tris = t.triangles();
  const std::span<const Edge> edges = t.edges();

  plan.slabs.resize(slabs);
  for (u32 s = 0; s < slabs; ++s) {
    SlabTerrain& slab = plan.slabs[s];
    slab.y_lo = plan.cuts[s];
    slab.y_hi = plan.cuts[s + 1];

    // Triangles whose closed y-span meets the closed window: these carry
    // every edge that can participate in visibility anywhere in the
    // window, including at its boundary ordinates.
    std::vector<u32> tri_ids;
    for (u32 ti = 0; ti < tris.size(); ++ti) {
      const Triangle& tr = tris[ti];
      const i64 ya = verts[tr.a].y, yb = verts[tr.b].y, yc = verts[tr.c].y;
      const i64 lo = std::min({ya, yb, yc}), hi = std::max({ya, yb, yc});
      if (hi >= slab.y_lo && lo <= slab.y_hi) tri_ids.push_back(ti);
    }

    // Renumber the referenced vertices (sorted by source id, so the slab
    // terrain is deterministic in the source alone).
    std::vector<u32> vids;
    vids.reserve(tri_ids.size() * 3);
    for (const u32 ti : tri_ids) {
      vids.push_back(tris[ti].a);
      vids.push_back(tris[ti].b);
      vids.push_back(tris[ti].c);
    }
    std::sort(vids.begin(), vids.end());
    vids.erase(std::unique(vids.begin(), vids.end()), vids.end());
    const auto local_of = [&](u32 gv) {
      return static_cast<u32>(std::lower_bound(vids.begin(), vids.end(), gv) - vids.begin());
    };

    std::vector<Vertex3> local_verts;
    local_verts.reserve(vids.size());
    for (const u32 gv : vids) local_verts.push_back(verts[gv]);
    std::vector<Triangle> local_tris;
    local_tris.reserve(tri_ids.size());
    for (const u32 ti : tri_ids) {
      local_tris.push_back(
          {local_of(tris[ti].a), local_of(tris[ti].b), local_of(tris[ti].c)});
    }
    slab.terrain = Terrain::from_triangles(std::move(local_verts), std::move(local_tris));
    // from_triangles preserves triangle order, so tri_ids *is* the
    // slab-local -> source triangle map (consumed by raster/raster.hpp).
    slab.global_tri = std::move(tri_ids);

    // Every slab edge is a source edge under the vertex renumbering.
    slab.global_edge.reserve(slab.terrain.edge_count());
    for (const Edge& le : slab.terrain.edges()) {
      const u32 ga = vids[le.a], gb = vids[le.b];
      const Edge ge{std::min(ga, gb), std::max(ga, gb)};
      const auto it = std::lower_bound(edges.begin(), edges.end(), ge);
      THSR_CHECK(it != edges.end() && *it == ge);
      slab.global_edge.push_back(static_cast<u32>(it - edges.begin()));
    }
    plan.slab_edges_total += slab.terrain.edge_count();
  }
  return plan;
}

VisibilityMap stitch(const ShardPlan& plan, std::span<const VisibilityMap* const> slab_maps) {
  THSR_CHECK(plan.source != nullptr && slab_maps.size() == plan.slabs.size());
  const std::size_t n = plan.source->edge_count();
  const std::span<const i64> cuts = plan.cuts;

  // Accumulate per-edge piece lists first: slabs are visited in y order,
  // so each edge's clipped pieces arrive in increasing y and junctions at
  // cut ordinates can be coalesced on the fly.
  std::vector<std::vector<VisiblePiece>> acc(n);
  for (std::size_t s = 0; s < plan.slabs.size(); ++s) {
    const VisibilityMap* m = slab_maps[s];
    if (m == nullptr) continue;
    const SlabTerrain& slab = plan.slabs[s];
    const QY w_lo = QY::of(slab.y_lo), w_hi = QY::of(slab.y_hi);
    THSR_CHECK(m->edge_slots() == slab.terrain.edge_count());
    for (u32 le = 0; le < slab.terrain.edge_count(); ++le) {
      const u32 ge = slab.global_edge[le];
      for (const VisiblePiece& p : m->pieces(le)) {
        // The slab solved the full edge; only the window restriction is
        // authoritative (outside it, occluders live in other slabs).
        VisiblePiece q = p;
        q.other0 = remap_edge(p.other0, slab.global_edge);
        q.other1 = remap_edge(p.other1, slab.global_edge);
        if (q.y0 < w_lo) {
          q.y0 = w_lo;
          q.k0 = EndpointKind::Break;
          q.other0 = kNoEdge;
        }
        if (w_hi < q.y1) {
          q.y1 = w_hi;
          q.k1 = EndpointKind::Break;
          q.other1 = kNoEdge;
        }
        if (!(q.y0 < q.y1)) continue;  // outside the window (or clipped to a point)
        append_coalescing(acc[ge], std::move(q), cuts);
      }
    }
  }

  VisibilityMap out(n);
  for (u32 e = 0; e < n; ++e) {
    for (VisiblePiece& p : acc[e]) out.add_piece(e, std::move(p));
  }

  // Sliver verdicts from each sliver's owner slab (exactly one, so
  // boundary slivers are reported once).
  for (std::size_t s = 0; s < plan.slabs.size(); ++s) {
    const VisibilityMap* m = slab_maps[s];
    if (m == nullptr) continue;
    const SlabTerrain& slab = plan.slabs[s];
    for (u32 le = 0; le < slab.terrain.edge_count(); ++le) {
      if (!slab.terrain.is_sliver(le)) continue;
      if (plan.owner_slab(slab.terrain.sliver(le).y) != s) continue;
      const auto& sv = m->sliver(le);
      if (!sv) continue;
      SliverVisibility g = *sv;
      g.blocking_before = remap_edge(g.blocking_before, slab.global_edge);
      g.blocking_after = remap_edge(g.blocking_after, slab.global_edge);
      out.set_sliver(slab.global_edge[le], g);
    }
  }
  return out;
}

VisibilityMap coalesce_at_cuts(const VisibilityMap& map, std::span<const i64> cuts) {
  VisibilityMap out(map.edge_slots());
  for (u32 e = 0; e < map.edge_slots(); ++e) {
    std::vector<VisiblePiece> acc;
    for (const VisiblePiece& p : map.pieces(e)) append_coalescing(acc, p, cuts);
    for (VisiblePiece& p : acc) out.add_piece(e, std::move(p));
    if (const auto& sv = map.sliver(e)) out.set_sliver(e, *sv);
  }
  return out;
}

}  // namespace thsr::shard
