#pragma once
/// \file shard.hpp
/// Y-slab decomposition of a terrain into independently solvable
/// subproblems, and the stitch that reassembles per-slab visibility maps
/// into the global one (DESIGN.md section 1.7).
///
/// The viewer sits at x = +infinity, so edge f can occlude a point of edge
/// e only at image-plane ordinates y covered by *both* edges — occlusion
/// never crosses an ordinate neither edge spans. Cutting the y-range into S
/// slabs therefore yields S independent subproblems: slab i consists of
/// every triangle whose y-span meets the closed window [cuts[i],
/// cuts[i+1]], and the visibility map of that sub-terrain, restricted to
/// the window, equals the global map restricted to the window.
///
/// Edges crossing a slab line are *replicated* into each slab they touch
/// and clipped logically, never geometrically: the cut ordinates are
/// integers on the input lattice, but the crossing point (c, z(c)) of an
/// edge with the line y = c has a rational z that the integer-input
/// contract (|coordinate| <= 2^21, DESIGN.md section 5) cannot carry as a
/// vertex. The clip therefore happens in the only representation where the
/// cut must be materialized — the output pieces, whose endpoints are
/// first-class rationals — at the exactly representable abscissa QY(c).
/// The cost of replication is the duplication factor reported by the plan
/// (sum of per-slab edge counts over the global edge count), which
/// bench_ci gates the sharded work bound against.
///
/// Slivers (dy == 0 edges) ride along inside whichever slabs contain their
/// ordinate and are solved by the existing sliver path (DESIGN.md section
/// 4.5); the stitch takes each sliver's verdict from its *owner* slab — the
/// unique slab whose half-open window [cuts[i], cuts[i+1]) contains the
/// ordinate (the last slab's window is closed) — so boundary slivers are
/// reported exactly once.

#include <span>
#include <vector>

#include "core/visibility.hpp"
#include "terrain/terrain.hpp"

namespace thsr::shard {

/// Slack on the duplication-bound work gate shared by bench_ci's shard/*
/// cases and tests/test_shard.cpp: a sharded solve's summed counted work
/// must stay within duplication_factor() * kShardWorkSlack of the
/// monolithic solve. The slack forgives the window overhang (replicated
/// edges are solved over their full spans) and per-slab preparation.
inline constexpr double kShardWorkSlack = 1.25;

/// One y-slab's subproblem: the sub-terrain of all triangles whose y-span
/// meets the closed window [y_lo, y_hi], with vertices renumbered locally.
struct SlabTerrain {
  Terrain terrain;
  std::vector<u32> global_edge;  ///< slab-local edge id -> source edge id
  std::vector<u32> global_tri;   ///< slab-local triangle id -> source triangle id
  i64 y_lo{0}, y_hi{0};          ///< closed solve window
};

/// The decomposition of one terrain into S y-slabs.
struct ShardPlan {
  const Terrain* source{nullptr};
  std::vector<i64> cuts;          ///< S+1 integer ordinates spanning [min_y, max_y]
  std::vector<SlabTerrain> slabs; ///< size S; a slab may be empty (0 triangles)
  u64 slab_edges_total{0};        ///< sum of per-slab edge counts

  /// Replication cost of the plan: sum of per-slab edge counts over the
  /// source edge count (>= 1; exactly 1 when no edge meets two slabs).
  /// The sharded solve's counted work is gated against this bound (times
  /// kShardWorkSlack) by bench_ci and tests/test_shard.cpp.
  double duplication_factor() const {
    const auto n = static_cast<double>(source->edge_count());
    return n == 0 ? 1.0 : static_cast<double>(slab_edges_total) / n;
  }

  /// The slab owning ordinate `y` for sliver reporting: the unique i with
  /// cuts[i] <= y < cuts[i+1] (last window closed). Requires a non-empty
  /// plan and min_y <= y <= max_y.
  u32 owner_slab(i64 y) const;
};

/// Cut `t` into `slabs` y-slabs at uniformly spaced integer ordinates.
/// Every triangle lands in each slab whose closed window its y-span meets,
/// so each slab's sub-terrain contains every edge that can occlude — or be
/// visible — anywhere in the window, including its endpoints. Requires
/// slabs >= 1. Slabs that no triangle meets (a y-gap in the terrain, or
/// more slabs than lattice lines) come out empty and solve trivially.
ShardPlan decompose(const Terrain& t, u32 slabs);

/// Reassemble per-slab visibility maps into the source terrain's map.
/// `slab_maps[i]` is slab i's map (indexed by slab-local edge ids) or
/// nullptr for an empty/unsolved slab. Pieces are clipped to each slab's
/// window at the integer cut ordinates, translated to source edge ids
/// (including crossing/blocking provenance), concatenated in slab order,
/// and coalesced wherever two pieces of one edge meet exactly at a cut —
/// undoing the split the decomposition introduced. Sliver verdicts come
/// from each sliver's owner slab. The result is piece-for-piece identical
/// to the monolithic solve after the monolithic map is also coalesced at
/// the cut lines (coalesce_at_cuts); tests/test_shard.cpp asserts this
/// across algorithms, oracles, and backends.
VisibilityMap stitch(const ShardPlan& plan, std::span<const VisibilityMap* const> slab_maps);

/// Canonicalize `map` with respect to the cut lines: merge consecutive
/// pieces of an edge that touch exactly at a cut ordinate (a monolithic
/// solve may legitimately emit two abutting pieces there; the stitched map
/// cannot distinguish that from a decomposition split, so equality is
/// asserted modulo this coalescing). Sliver verdicts are copied unchanged.
VisibilityMap coalesce_at_cuts(const VisibilityMap& map, std::span<const i64> cuts);

}  // namespace thsr::shard
