#include "shard/sharded_engine.hpp"

#include <chrono>
#include <optional>
#include <utility>
#include <vector>

#include "core/engine.hpp"
#include "parallel/backend.hpp"
#include "support/check.hpp"

namespace thsr::shard {

struct ShardedEngine::Impl {
  ShardPlan plan;
  std::vector<std::unique_ptr<HsrEngine>> engines;  ///< null for empty slabs
  u64 n_slivers{0};
  double prepare_s{0};
  bool prepared{false};
};

ShardedEngine::ShardedEngine() : impl_(std::make_unique<Impl>()) {}
ShardedEngine::~ShardedEngine() = default;
ShardedEngine::ShardedEngine(ShardedEngine&&) noexcept = default;
ShardedEngine& ShardedEngine::operator=(ShardedEngine&&) noexcept = default;

void ShardedEngine::prepare(const Terrain& t, u32 slabs) {
  Impl& im = *impl_;
  // Not prepared until every slab engine is: a throw mid-way (bad_alloc in
  // a per-slab prepare) must not leave a half-built engine set behind a
  // stale prepared flag — null engines would read as legitimately empty
  // slabs and solve() would return a silently truncated map.
  im.prepared = false;
  const auto t0 = std::chrono::steady_clock::now();
  im.plan = decompose(t, slabs);
  im.engines.clear();
  im.engines.resize(slabs);
  for (u32 s = 0; s < slabs; ++s) {
    if (im.plan.slabs[s].terrain.edge_count() == 0) continue;  // empty slab: nothing to solve
    im.engines[s] = std::make_unique<HsrEngine>();
    im.engines[s]->prepare(im.plan.slabs[s].terrain);
  }
  im.n_slivers = 0;
  for (u32 e = 0; e < t.edge_count(); ++e) im.n_slivers += t.is_sliver(e);
  im.prepare_s = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  im.prepared = true;
}

bool ShardedEngine::prepared() const noexcept { return impl_->prepared; }

u32 ShardedEngine::slab_count() const noexcept {
  return static_cast<u32>(impl_->plan.slabs.size());
}

const ShardPlan& ShardedEngine::plan() const {
  THSR_CHECK(impl_->prepared);
  return impl_->plan;
}

std::vector<std::optional<HsrResult>> ShardedEngine::solve_slabs(const HsrOptions& opt) {
  Impl& im = *impl_;
  THSR_CHECK(im.prepared);
  const par::ScopedConfig cfg(opt.threads, opt.backend);
  // Contract shared with HsrEngine::solve: an explicitly requested backend
  // must exist in this build.
  if (opt.backend) THSR_CHECK(cfg.backend_applied());

  HsrOptions slab_opt = opt;  // the fan-out owns the executor configuration
  slab_opt.threads = 0;
  slab_opt.backend.reset();

  const std::size_t S = im.engines.size();
  std::vector<std::optional<HsrResult>> per(S);
  par::fan_items(S, [&](std::size_t s) {
    if (im.engines[s]) per[s] = im.engines[s]->solve_scoped(slab_opt);
  });
  return per;
}

HsrResult ShardedEngine::solve(const HsrOptions& opt) {
  Impl& im = *impl_;
  THSR_CHECK(im.prepared);

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::optional<HsrResult>> per = solve_slabs(opt);
  const std::size_t S = per.size();

  std::vector<const VisibilityMap*> maps(S, nullptr);
  for (std::size_t s = 0; s < S; ++s) {
    if (per[s]) maps[s] = &per[s]->map;
  }

  HsrResult out{stitch(im.plan, maps), HsrStats{}};
  HsrStats& st = out.stats;
  for (const auto& r : per) {
    if (!r) continue;
    st.work += r->stats.work;  // includes that slab's prepare work
    st.order_s += r->stats.order_s;
    st.phase1_s += r->stats.phase1_s;
    st.phase2_s += r->stats.phase2_s;
    st.depth_constraints += r->stats.depth_constraints;
    st.phase1_pieces += r->stats.phase1_pieces;
    st.treap_nodes += r->stats.treap_nodes;
  }
  st.n_edges = im.plan.source->edge_count();
  st.n_slivers = im.n_slivers;
  st.k_pieces = out.map.k_pieces();
  st.k_crossings = out.map.k_crossings();
  st.total_s = st.order_s +
               std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  return out;
}

double ShardedEngine::prepare_seconds() const noexcept { return impl_->prepare_s; }

}  // namespace thsr::shard
