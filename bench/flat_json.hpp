#pragma once
/// \file flat_json.hpp
/// Parser for the one JSON shape the bench lane emits and re-reads: a
/// top-level "cases" object mapping case names to flat objects of unsigned
/// integers. bench_ci writes/checks counter baselines in this shape and
/// bench_timed writes/diffs timing artifacts in it, so both sides share
/// this reader instead of growing two JSON dialects. Tolerant of
/// whitespace and of extra top-level keys (schema/note/meta are skipped by
/// seeking "cases"); not a general JSON parser.

#include <cctype>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "geometry/exactq.hpp"

namespace thsr::bench {

using CounterMap = std::map<std::string, u64>;
using CaseMap = std::map<std::string, CounterMap>;

class FlatU64Parser {
 public:
  explicit FlatU64Parser(std::string text) : s_(std::move(text)) {}

  std::optional<CaseMap> parse() {
    CaseMap out;
    if (!seek_key("cases") || !expect('{')) return std::nullopt;
    skip_ws();
    if (peek() == '}') return out;  // empty
    for (;;) {
      const auto name = parse_string();
      if (!name || !expect(':') || !expect('{')) return std::nullopt;
      CounterMap counters;
      skip_ws();
      if (peek() != '}') {
        for (;;) {
          const auto key = parse_string();
          if (!key || !expect(':')) return std::nullopt;
          const auto val = parse_u64();
          if (!val) return std::nullopt;
          counters[*key] = *val;
          skip_ws();
          if (peek() == ',') { ++i_; continue; }
          break;
        }
      }
      if (!expect('}')) return std::nullopt;
      out[*name] = std::move(counters);
      skip_ws();
      if (peek() == ',') { ++i_; continue; }
      break;
    }
    if (!expect('}')) return std::nullopt;
    return out;
  }

 private:
  void skip_ws() {
    while (i_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[i_]))) ++i_;
  }
  char peek() { return i_ < s_.size() ? s_[i_] : '\0'; }
  bool expect(char c) {
    skip_ws();
    if (peek() != c) return false;
    ++i_;
    return true;
  }
  std::optional<std::string> parse_string() {
    if (!expect('"')) return std::nullopt;
    std::string out;
    while (i_ < s_.size() && s_[i_] != '"') out.push_back(s_[i_++]);
    if (i_ >= s_.size()) return std::nullopt;
    ++i_;  // closing quote
    return out;
  }
  std::optional<u64> parse_u64() {
    skip_ws();
    if (!std::isdigit(static_cast<unsigned char>(peek()))) return std::nullopt;
    u64 v = 0;
    while (std::isdigit(static_cast<unsigned char>(peek()))) v = v * 10 + (s_[i_++] - '0');
    return v;
  }
  bool seek_key(const std::string& key) {
    const std::string quoted = "\"" + key + "\"";
    const auto pos = s_.find(quoted);
    if (pos == std::string::npos) return false;
    i_ = pos + quoted.size();
    return expect(':');
  }

  std::string s_;
  std::size_t i_ = 0;
};

/// One row of a two-artifact timing comparison (bench_timed --diff and the
/// CI trend step). Rows are produced for the *union* of case names.
struct DiffRow {
  enum class Presence : unsigned char { Both, OnlyOld, OnlyNew };
  std::string name;
  Presence presence{Presence::Both};
  u64 old_median_ns{0};      ///< 0 unless present in the old artifact
  u64 new_median_ns{0};      ///< 0 unless present in the new artifact
  double delta_pct{0.0};     ///< (new - old) / old, percent; Both rows only
  bool comparable{false};    ///< both medians present and nonzero
  bool significant{false};   ///< |delta| clears the IQR noise floor of BOTH runs
};

/// Compare two timing artifacts *by case name* — never by position — so
/// reordered, interleaved, or partially disjoint case sets pair up
/// correctly (tests/test_bench_diff.cpp). A delta is `significant` only
/// when it exceeds both runs' IQR; cases present on one side only get
/// OnlyOld/OnlyNew rows. Output is sorted by name (CaseMap order).
inline std::vector<DiffRow> diff_rows(const CaseMap& old_cases, const CaseMap& new_cases) {
  const auto get = [](const CounterMap& m, const char* k) -> u64 {
    const auto i = m.find(k);
    return i == m.end() ? 0 : i->second;
  };
  std::vector<DiffRow> rows;
  auto oi = old_cases.begin();
  auto ni = new_cases.begin();
  while (oi != old_cases.end() || ni != new_cases.end()) {
    DiffRow row;
    const bool take_old =
        ni == new_cases.end() || (oi != old_cases.end() && oi->first < ni->first);
    const bool take_new =
        oi == old_cases.end() || (ni != new_cases.end() && ni->first < oi->first);
    if (take_old) {
      row.name = oi->first;
      row.presence = DiffRow::Presence::OnlyOld;
      row.old_median_ns = get(oi->second, "median_ns");
      ++oi;
    } else if (take_new) {
      row.name = ni->first;
      row.presence = DiffRow::Presence::OnlyNew;
      row.new_median_ns = get(ni->second, "median_ns");
      ++ni;
    } else {  // same name on both sides
      row.name = oi->first;
      row.old_median_ns = get(oi->second, "median_ns");
      row.new_median_ns = get(ni->second, "median_ns");
      if (row.old_median_ns != 0 && row.new_median_ns != 0) {
        row.comparable = true;
        row.delta_pct = 100.0 *
                        (static_cast<double>(row.new_median_ns) -
                         static_cast<double>(row.old_median_ns)) /
                        static_cast<double>(row.old_median_ns);
        const u64 gap = row.new_median_ns > row.old_median_ns
                            ? row.new_median_ns - row.old_median_ns
                            : row.old_median_ns - row.new_median_ns;
        row.significant = gap > get(oi->second, "iqr_ns") && gap > get(ni->second, "iqr_ns");
      }
      ++oi;
      ++ni;
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace thsr::bench
