#pragma once
/// \file flat_json.hpp
/// Parser for the one JSON shape the bench lane emits and re-reads: a
/// top-level "cases" object mapping case names to flat objects of unsigned
/// integers. bench_ci writes/checks counter baselines in this shape and
/// bench_timed writes/diffs timing artifacts in it, so both sides share
/// this reader instead of growing two JSON dialects. Tolerant of
/// whitespace and of extra top-level keys (schema/note/meta are skipped by
/// seeking "cases"); not a general JSON parser.

#include <cctype>
#include <map>
#include <optional>
#include <string>
#include <utility>

#include "geometry/exactq.hpp"

namespace thsr::bench {

using CounterMap = std::map<std::string, u64>;
using CaseMap = std::map<std::string, CounterMap>;

class FlatU64Parser {
 public:
  explicit FlatU64Parser(std::string text) : s_(std::move(text)) {}

  std::optional<CaseMap> parse() {
    CaseMap out;
    if (!seek_key("cases") || !expect('{')) return std::nullopt;
    skip_ws();
    if (peek() == '}') return out;  // empty
    for (;;) {
      const auto name = parse_string();
      if (!name || !expect(':') || !expect('{')) return std::nullopt;
      CounterMap counters;
      skip_ws();
      if (peek() != '}') {
        for (;;) {
          const auto key = parse_string();
          if (!key || !expect(':')) return std::nullopt;
          const auto val = parse_u64();
          if (!val) return std::nullopt;
          counters[*key] = *val;
          skip_ws();
          if (peek() == ',') { ++i_; continue; }
          break;
        }
      }
      if (!expect('}')) return std::nullopt;
      out[*name] = std::move(counters);
      skip_ws();
      if (peek() == ',') { ++i_; continue; }
      break;
    }
    if (!expect('}')) return std::nullopt;
    return out;
  }

 private:
  void skip_ws() {
    while (i_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[i_]))) ++i_;
  }
  char peek() { return i_ < s_.size() ? s_[i_] : '\0'; }
  bool expect(char c) {
    skip_ws();
    if (peek() != c) return false;
    ++i_;
    return true;
  }
  std::optional<std::string> parse_string() {
    if (!expect('"')) return std::nullopt;
    std::string out;
    while (i_ < s_.size() && s_[i_] != '"') out.push_back(s_[i_++]);
    if (i_ >= s_.size()) return std::nullopt;
    ++i_;  // closing quote
    return out;
  }
  std::optional<u64> parse_u64() {
    skip_ws();
    if (!std::isdigit(static_cast<unsigned char>(peek()))) return std::nullopt;
    u64 v = 0;
    while (std::isdigit(static_cast<unsigned char>(peek()))) v = v * 10 + (s_[i_++] - '0');
    return v;
  }
  bool seek_key(const std::string& key) {
    const std::string quoted = "\"" + key + "\"";
    const auto pos = s_.find(quoted);
    if (pos == std::string::npos) return false;
    i_ = pos + quoted.size();
    return expect(':');
  }

  std::string s_;
  std::size_t i_ = 0;
};

}  // namespace thsr::bench
