/// F1 — Figure 1: profile segments are shared between layers of the PCT;
/// per-layer intermediate-envelope totals stay O(n·alpha(n)) instead of
/// blowing up, and the inherited (actual) profiles at a layer total far
/// less than "one private profile per node" would.

#include "bench_util.hpp"

int main() {
  using namespace thsr;
  using namespace thsr::bench;
  print_header("F1", "Figure 1 (PCT sharing)",
               "per-layer consumed envelope pieces ~ O(n alpha); shared prefix profiles");

  const u32 g = large() ? 96 : 48;
  const Terrain terr = make(Family::Fbm, g);
  const HsrResult r = hidden_surface_removal(
      terr, {.algorithm = Algorithm::Parallel, .collect_layer_stats = true});
  const double n = static_cast<double>(r.stats.n_edges);

  Table t({"layer", "nodes", "consumed_pieces", "consumed/n", "events", "splices",
           "treap_nodes_created", "sum|P_v|"});
  for (const LayerStats& l : r.stats.layers) {
    t.row({Table::num(static_cast<long long>(l.layer)), Table::num(static_cast<long long>(l.nodes)),
           Table::num(static_cast<long long>(l.pieces_consumed)),
           Table::num(static_cast<double>(l.pieces_consumed) / n, 3),
           Table::num(static_cast<long long>(l.events)),
           Table::num(static_cast<long long>(l.splices)),
           Table::num(static_cast<long long>(l.treap_nodes)),
           Table::num(static_cast<long long>(l.profile_pieces))});
  }
  t.print_markdown(std::cout);
  t.maybe_write_csv("table_f1_pct_sharing");
  std::cout << "\nn=" << r.stats.n_edges << " k=" << r.stats.k_pieces
            << "; total phase-1 pieces=" << r.stats.phase1_pieces << " ("
            << Table::num(static_cast<double>(r.stats.phase1_pieces) / n, 2)
            << " per edge across all " << r.stats.layers.size() << " layers)\n";
  return 0;
}
