#pragma once
/// \file timing.hpp
/// Wall-clock measurement harness for the timed bench lane (bench_timed).
///
/// The work counters gate *what* the library computes; this harness is the
/// lane that measures *how fast* (bench/README.md, "Timed lane"). Protocol
/// per case: pin the measuring thread, run `warmup` untimed repetitions,
/// then `reps` timed ones, and report the median with interquartile range
/// (IQR) and median absolute deviation (MAD) as dispersion — medians and
/// rank statistics because scheduler noise is one-sided (a run is slowed
/// by preemption, never sped up), so the median is stable where the mean
/// drifts and the IQR flags unquiet machines instead of polluting the
/// central value.
///
/// Everything reported is integer nanoseconds, so BENCH_TIMED.json stays
/// parseable by the same flat two-level u64 reader bench_ci uses for its
/// baselines (bench_timed --diff re-reads artifacts this way).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <ctime>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#ifdef __linux__
#include <sched.h>
#include <unistd.h>
#endif

#include "geometry/exactq.hpp"

namespace thsr::bench {

/// Pin the calling thread to the first CPU of its current affinity mask so
/// every timed repetition runs on one core (no migration jitter, stable
/// cache residency). Returns false when pinning is unsupported or refused;
/// measurements still run, `meta.pinned` records the outcome.
inline bool pin_this_thread() {
#ifdef __linux__
  cpu_set_t allowed;
  CPU_ZERO(&allowed);
  if (sched_getaffinity(0, sizeof(allowed), &allowed) != 0) return false;
  for (int cpu = 0; cpu < CPU_SETSIZE; ++cpu) {
    if (CPU_ISSET(cpu, &allowed)) {
      cpu_set_t one;
      CPU_ZERO(&one);
      CPU_SET(cpu, &one);
      return sched_setaffinity(0, sizeof(one), &one) == 0;
    }
  }
#endif
  return false;
}

/// One case's timed repetitions, already run: rank statistics over them.
struct TimedStats {
  u64 median_ns{0};
  u64 iqr_ns{0};  ///< q75 - q25: the primary dispersion gauge
  u64 mad_ns{0};  ///< median(|x - median|): robust backup when reps < 4
  u64 min_ns{0};
  u64 reps{0};
};

/// Rank statistic at fraction f of sorted xs (nearest-rank, f in [0, 1]).
inline u64 rank_at(const std::vector<u64>& sorted, double f) {
  if (sorted.empty()) return 0;
  const auto n = sorted.size();
  auto i = static_cast<std::size_t>(f * static_cast<double>(n - 1) + 0.5);
  if (i >= n) i = n - 1;
  return sorted[i];
}

inline TimedStats stats_of(std::vector<u64> ns) {
  TimedStats s;
  if (ns.empty()) return s;
  std::sort(ns.begin(), ns.end());
  s.reps = ns.size();
  s.min_ns = ns.front();
  s.median_ns = rank_at(ns, 0.5);
  s.iqr_ns = rank_at(ns, 0.75) - rank_at(ns, 0.25);
  std::vector<u64> dev;
  dev.reserve(ns.size());
  for (const u64 x : ns) dev.push_back(x > s.median_ns ? x - s.median_ns : s.median_ns - x);
  std::sort(dev.begin(), dev.end());
  s.mad_ns = rank_at(dev, 0.5);
  return s;
}

/// Warmup + repeat a thunk, timing each repetition with steady_clock.
template <class F>
TimedStats measure(F&& body, int warmup, int reps) {
  for (int i = 0; i < warmup; ++i) body();
  std::vector<u64> ns;
  ns.reserve(static_cast<std::size_t>(reps));
  for (int i = 0; i < reps; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    body();
    const auto t1 = std::chrono::steady_clock::now();
    ns.push_back(static_cast<u64>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count()));
  }
  return stats_of(std::move(ns));
}

/// First "model name" from /proc/cpuinfo (linux), else "unknown-cpu".
inline std::string cpu_model() {
#ifdef __linux__
  std::ifstream is("/proc/cpuinfo");
  std::string line;
  while (std::getline(is, line)) {
    const auto pos = line.find(':');
    if (pos != std::string::npos && line.compare(0, 10, "model name") == 0) {
      auto v = line.substr(pos + 1);
      const auto b = v.find_first_not_of(" \t");
      return b == std::string::npos ? v : v.substr(b);
    }
  }
#endif
  return "unknown-cpu";
}

/// hostname/cpu/threads triple identifying where a run happened: numbers
/// from two artifacts are only comparable when their fingerprints match.
inline std::string host_fingerprint() {
  std::string host = "unknown-host";
#ifdef __linux__
  char buf[256] = {};
  if (gethostname(buf, sizeof(buf) - 1) == 0 && buf[0] != '\0') host = buf;
#endif
  return host + " | " + cpu_model() + " | " +
         std::to_string(std::thread::hardware_concurrency()) + " hw threads";
}

/// Current commit: $THSR_GIT_SHA, else $GITHUB_SHA, else `git rev-parse`
/// (absent .git => "unknown"). Env first so CI stamps the exact tested sha.
inline std::string git_sha() {
  for (const char* var : {"THSR_GIT_SHA", "GITHUB_SHA"}) {
    if (const char* v = std::getenv(var); v != nullptr && *v != '\0') return v;
  }
#ifdef __linux__
  if (FILE* p = popen("git rev-parse HEAD 2>/dev/null", "r")) {
    char buf[64] = {};
    const std::size_t n = fread(buf, 1, sizeof(buf) - 1, p);
    pclose(p);
    std::string sha(buf, n);
    while (!sha.empty() && (sha.back() == '\n' || sha.back() == '\r')) sha.pop_back();
    if (sha.size() >= 7) return sha;
  }
#endif
  return "unknown";
}

inline std::string utc_timestamp() {
  const std::time_t now = std::time(nullptr);
  char buf[32] = {};
  std::tm tm{};
  gmtime_r(&now, &tm);
  std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm);
  return buf;
}

using TimedCounterMap = std::map<std::string, u64>;
using TimedCaseMap = std::map<std::string, TimedCounterMap>;

inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

/// BENCH_TIMED.json: a string-valued "meta" object (run provenance) and the
/// flat u64 "cases" object the bench_ci-style parser reads back.
inline void write_timed_json(const TimedCaseMap& cases,
                             const std::map<std::string, std::string>& meta,
                             const std::string& path) {
  std::ofstream os(path);
  os << "{\n  \"schema\": 1,\n"
     << "  \"note\": \"wall-clock medians in integer nanoseconds; comparable only across "
        "matching host fingerprints\",\n"
     << "  \"meta\": {";
  std::size_t mi = 0;
  for (const auto& [k, v] : meta) {
    os << "\"" << json_escape(k) << "\": \"" << json_escape(v) << "\"";
    if (++mi < meta.size()) os << ", ";
  }
  os << "},\n  \"cases\": {\n";
  std::size_t ci = 0;
  for (const auto& [name, counters] : cases) {
    os << "    \"" << json_escape(name) << "\": {";
    std::size_t ki = 0;
    for (const auto& [k, v] : counters) {
      os << "\"" << k << "\": " << v;
      if (++ki < counters.size()) os << ", ";
    }
    os << "}";
    if (++ci < cases.size()) os << ",";
    os << "\n";
  }
  os << "  }\n}\n";
}

}  // namespace thsr::bench
