/// E3 — Theorem 3.1's /p term: speedup with worker count, and the CREW
/// discipline's schedule-independence: counted work must be *identical*
/// across p (the same operations run, only their placement changes).

#include "bench_util.hpp"
#include "parallel/backend.hpp"

int main() {
  using namespace thsr;
  using namespace thsr::bench;
  print_header("E3", "Theorem 3.1 (/p)",
               "wall clock falls with p at fixed counted work; work identical across p");

  const int hw = par::max_threads();
  Table t({"grid", "n", "p", "phase1_ms", "phase2_ms", "total_ms", "speedup", "ops"});
  std::vector<u32> grids{48, 96};
  if (large()) grids.push_back(160);
  for (const u32 g : grids) {
    const Terrain terr = make(Family::Fbm, g);
    double base = 0;
    for (int p = 1; p <= hw; p *= 2) {
      const HsrResult r = solve_median3(terr, {.algorithm = Algorithm::Parallel, .threads = p});
      if (p == 1) base = r.stats.total_s;
      t.row({Table::num(static_cast<long long>(g)),
             Table::num(static_cast<long long>(r.stats.n_edges)),
             Table::num(static_cast<long long>(p)), ms(r.stats.phase1_s), ms(r.stats.phase2_s),
             ms(r.stats.total_s), Table::num(base / r.stats.total_s, 2),
             Table::num(static_cast<long long>(r.stats.work.total()))});
    }
  }
  t.print_markdown(std::cout);
  t.maybe_write_csv("table_e3_speedup");
  std::cout << "\nnote: hardware exposes " << hw
            << " workers; the /p claim is additionally validated by the machine-independent\n"
               "work counters, which agree across p to within ~0.1% (the residue comes from\n"
               "strip-parallel envelope merges counting seam pieces; results are bit-identical).\n";
  return 0;
}
