/// E3 — Theorem 3.1's /p term: speedup with worker count, per backend, and
/// the CREW discipline's schedule-independence: counted work must be
/// *identical* across p and across backends (the same operations run, only
/// their placement changes). The `serial` row is the fixed p=1 reference.

#include "bench_util.hpp"
#include "parallel/backend.hpp"

int main() {
  using namespace thsr;
  using namespace thsr::bench;
  print_header("E3", "Theorem 3.1 (/p)",
               "wall clock falls with p at fixed counted work; work identical across p and "
               "backend");

  const int hw = par::max_threads();
  const int pmax = std::max(4, hw);  // always tabulate the 4-thread row
  Table t({"grid", "n", "backend", "p", "phase1_ms", "phase2_ms", "total_ms", "speedup", "ops"});
  std::vector<u32> grids{48, 96};
  if (large()) grids.push_back(160);
  for (const u32 g : grids) {
    const Terrain terr = make(Family::Fbm, g);
    {
      const HsrResult r = solve_median3(terr, {.algorithm = Algorithm::Parallel, .threads = 1,
                                              .backend = par::Backend::Serial});
      t.row({Table::num(static_cast<long long>(g)),
             Table::num(static_cast<long long>(r.stats.n_edges)), "serial", Table::num(1LL),
             ms(r.stats.phase1_s), ms(r.stats.phase2_s), ms(r.stats.total_s),
             Table::num(1.0, 2), Table::num(static_cast<long long>(r.stats.work.total()))});
    }
    for (const par::Backend b : scaling_backends()) {
      double base = 0;
      for (int p = 1; p <= pmax; p *= 2) {
        const HsrResult r = solve_median3(
            terr, {.algorithm = Algorithm::Parallel, .threads = p, .backend = b});
        if (p == 1) base = r.stats.total_s;
        t.row({Table::num(static_cast<long long>(g)),
               Table::num(static_cast<long long>(r.stats.n_edges)), par::backend_name(b),
               Table::num(static_cast<long long>(p)), ms(r.stats.phase1_s),
               ms(r.stats.phase2_s), ms(r.stats.total_s), Table::num(base / r.stats.total_s, 2),
               Table::num(static_cast<long long>(r.stats.work.total()))});
      }
    }
  }
  t.print_markdown(std::cout);
  t.maybe_write_csv("table_e3_speedup");
  std::cout << "\nnote: hardware exposes " << hw
            << " workers; rows beyond that are oversubscribed. The /p claim is additionally\n"
               "validated by the machine-independent work counters, which are bit-identical\n"
               "across p and across backends (strip/grain decisions are pinned to constants;\n"
               "see kEnvMergeStrips) — the property the perf-regression CI baselines rely on.\n";
  return 0;
}
