/// bench_ci — counter-only perf-regression driver for CI.
///
/// Runs the counter-relevant workloads of benches E1 (Theorem 3.1 work
/// bound), E3 (schedule-independence), and E12 (phase-2 oracle ablation),
/// plus the engine-reuse (engine/*), sharded (shard/*), raster (raster/*),
/// viewpoint-service (service/* — cached parameterized solves hard-gated
/// bit-identical to direct solves of the pre-transformed terrain), and
/// out-of-core streaming (stream/* — streamed rasters hard-gated bitwise
/// against the monolithic solve, tall case under an enforced resident-
/// bytes budget) case families, once each — no timing repetitions — and records the
/// machine-independent work_depth counters as JSON. Because every grain/strip decision in the
/// library is pinned to constants (see kEnvMergeStrips), the counters are
/// bit-identical across machines, thread counts, and backends, so a
/// committed baseline (bench/baselines/BENCH_BASELINE.json) can gate
/// regressions exactly; the >0% tolerance only forgives deliberate small
/// algorithm tweaks between baseline refreshes.
///
/// Usage:
///   bench_ci [--out BENCH_CI.json] [--check BASELINE.json] [--tolerance 5]
///
/// Exit status with --check: 0 when no counter grew more than the
/// tolerance (percent) over the baseline and no baseline case disappeared;
/// 1 otherwise. New cases missing from the baseline are reported but do
/// not fail (refresh the baseline to adopt them).

#include <cctype>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/engine.hpp"
#include "flat_json.hpp"
#include "parallel/backend.hpp"
#include "raster/oracle.hpp"
#include "raster/raster.hpp"
#include "service/engine_cache.hpp"
#include "support/terrain_families.hpp"
#include "shard/sharded_engine.hpp"
#include "stream/sinks.hpp"
#include "stream/stream.hpp"
#include "stream_grids.hpp"

namespace {

using namespace thsr;
using bench::CaseMap;
using bench::CounterMap;

CounterMap to_counter_map(const Counters& c) {
  CounterMap m;
  for (std::size_t i = 0; i < c.v.size(); ++i) m[std::string(kOpNames[i])] = c.v[i];
  m["total"] = c.total();
  return m;
}

void write_json(const CaseMap& cases, const std::string& path) {
  std::ofstream os(path);
  os << "{\n  \"schema\": 1,\n"
     << "  \"note\": \"machine-independent thsr work_depth counters; identical across "
        "backends, thread counts, and hosts\",\n"
     << "  \"cases\": {\n";
  std::size_t ci = 0;
  for (const auto& [name, counters] : cases) {
    os << "    \"" << name << "\": {";
    std::size_t ki = 0;
    for (const auto& [k, v] : counters) {
      os << "\"" << k << "\": " << v;
      if (++ki < counters.size()) os << ", ";
    }
    os << "}";
    if (++ci < cases.size()) os << ",";
    os << "\n";
  }
  os << "  }\n}\n";
}

/// Compare current counters against the baseline. Returns the number of
/// failures (regressions beyond `tolerance_pct`, or lost cases/counters).
int check(const CaseMap& baseline, const CaseMap& current, double tolerance_pct) {
  int failures = 0;
  for (const auto& [name, base_counters] : baseline) {
    const auto it = current.find(name);
    if (it == current.end()) {
      std::cout << "FAIL  " << name << ": case present in baseline but not produced\n";
      ++failures;
      continue;
    }
    for (const auto& [k, base_v] : base_counters) {
      const auto kit = it->second.find(k);
      if (kit == it->second.end()) {
        std::cout << "FAIL  " << name << "/" << k << ": counter missing\n";
        ++failures;
        continue;
      }
      const u64 cur_v = kit->second;
      if (cur_v == base_v) continue;
      const double delta_pct =
          base_v == 0 ? 100.0
                      : 100.0 * (static_cast<double>(cur_v) - static_cast<double>(base_v)) /
                            static_cast<double>(base_v);
      std::ostringstream line;
      line << name << "/" << k << ": " << base_v << " -> " << cur_v << " ("
           << Table::num(delta_pct, 2) << "%)";
      if (delta_pct > tolerance_pct) {
        std::cout << "FAIL  " << line.str() << " exceeds +" << tolerance_pct << "%\n";
        ++failures;
      } else {
        std::cout << "note  " << line.str() << "\n";
      }
    }
  }
  for (const auto& [name, _] : current) {
    if (!baseline.count(name)) {
      std::cout << "note  " << name << ": new case not in baseline (refresh to adopt)\n";
    }
  }
  return failures;
}

void run_case(CaseMap& cases, const std::string& name, Family fam, u32 grid,
              Phase2Oracle oracle = Phase2Oracle::Persistent) {
  const Terrain terr = bench::make(fam, grid);
  // threads=2 exercises the parallel code paths; the counters are the same
  // at any p and on any backend (asserted by test_determinism).
  const HsrResult r = hidden_surface_removal(
      terr, {.algorithm = Algorithm::Parallel, .threads = 2, .phase2_oracle = oracle});
  cases[name] = to_counter_map(r.stats.work);
  cases[name]["k_pieces"] = r.stats.k_pieces;
  cases[name]["treap_nodes"] = r.stats.treap_nodes;
  cases[name]["phase1_pieces"] = r.stats.phase1_pieces;
}

/// Engine-reuse workloads: gate the warm-solve path (counters must stay
/// bit-identical to one-shot runs, and a warm solve must allocate zero new
/// arena blocks) and the batch path. threads=1 because *block* counts —
/// unlike the work counters — depend on how allocations land on threads.
void run_engine_cases(CaseMap& cases) {
  const Terrain terr = bench::make(Family::Fbm, 48);
  HsrEngine eng;
  eng.prepare(terr);
  const HsrOptions opt{.algorithm = Algorithm::Parallel, .threads = 1};
  (void)eng.solve(opt);  // cold solve sizes the arena
  const u64 blocks_cold = eng.arena_blocks();
  const HsrResult warm = eng.solve(opt);
  const std::string name = "engine/fbm/g48/warm";
  cases[name] = to_counter_map(warm.stats.work);
  cases[name]["k_pieces"] = warm.stats.k_pieces;
  cases[name]["treap_nodes"] = warm.stats.treap_nodes;
  cases[name]["phase1_pieces"] = warm.stats.phase1_pieces;
  cases[name]["arena_new_blocks"] = eng.arena_blocks() - blocks_cold;

  // Batch fan-out: one case summing the per-item counters (deterministic).
  HsrEngine batch_eng;
  batch_eng.prepare(terr);
  const std::vector<HsrOptions> opts{{.algorithm = Algorithm::Parallel},
                                     {.algorithm = Algorithm::Sequential},
                                     {.algorithm = Algorithm::Parallel,
                                      .phase2_oracle = Phase2Oracle::MaterializedScan}};
  Counters total;
  u64 k = 0;
  for (const HsrResult& r : batch_eng.solve_batch(opts)) {
    total += r.stats.work;
    k += r.stats.k_pieces;
  }
  cases["engine/fbm/g48/batch3"] = to_counter_map(total);
  cases["engine/fbm/g48/batch3"]["k_pieces"] = k;
}

/// Sharded-solve workloads (DESIGN.md section 1.7). Besides the baseline
/// comparison, these carry a built-in gate: the sum of per-slab counted
/// work (which is what the stitched result reports) must stay within the
/// plan's edge-duplication bound of the monolithic counted work — the
/// decomposition may only pay for replicated edges, never change the
/// asymptotics (slack: shard::kShardWorkSlack, shared with
/// tests/test_shard.cpp). Returns the number of gate failures.
int run_shard_cases(CaseMap& cases) {
  const Terrain terr = bench::make(Family::Fbm, 48);
  const HsrResult mono = hidden_surface_removal(
      terr, {.algorithm = Algorithm::Parallel, .threads = 2});
  int failures = 0;
  for (const u32 S : {2u, 8u}) {
    shard::ShardedEngine eng;
    eng.prepare(terr, S);
    const HsrResult r = eng.solve({.algorithm = Algorithm::Parallel, .threads = 2});
    const std::string name = "shard/fbm/g48/s" + std::to_string(S);
    cases[name] = to_counter_map(r.stats.work);
    cases[name]["k_pieces"] = r.stats.k_pieces;
    cases[name]["slab_edges_total"] = eng.plan().slab_edges_total;
    const double bound = eng.plan().duplication_factor() * shard::kShardWorkSlack;
    const auto sharded_total = static_cast<double>(r.stats.work.total());
    const auto mono_total = static_cast<double>(mono.stats.work.total());
    if (sharded_total > bound * mono_total) {
      std::cout << "FAIL  " << name << ": sharded counted work " << r.stats.work.total()
                << " exceeds duplication bound " << Table::num(bound, 3) << " x monolithic "
                << mono.stats.work.total() << "\n";
      ++failures;
    }
  }
  return failures;
}

/// Raster workloads (DESIGN.md section 1.8). The scan-converter's
/// crossing and hit-sample counts are exact functions of the solved map
/// and the sampling lattice — machine/backend/p-independent like the
/// work counters — so they gate against the baseline. A built-in hard
/// gate mirrors test_raster: the sharded (per-slab, no-stitch)
/// rasterization must reproduce the monolithic image bit-for-bit.
/// Returns the number of gate failures.
int run_raster_cases(CaseMap& cases) {
  const Terrain terr = bench::make(Family::Fbm, 48);
  HsrEngine engine;
  engine.prepare(terr);
  const HsrResult solved = engine.solve({.algorithm = Algorithm::Parallel, .threads = 2});
  shard::ShardedEngine sharded;
  sharded.prepare(terr, 4);
  const auto per_slab = sharded.solve_slabs({.algorithm = Algorithm::Parallel, .threads = 2});
  std::vector<const VisibilityMap*> slab_maps(per_slab.size(), nullptr);
  for (std::size_t i = 0; i < per_slab.size(); ++i) {
    if (per_slab[i]) slab_maps[i] = &per_slab[i]->map;
  }
  int failures = 0;
  for (const u32 s : {1u, 2u}) {
    raster::RasterOptions opt;
    opt.width = 160;
    opt.height = 120;
    opt.supersample = s;
    opt.threads = 2;
    const raster::ImageRaster img = raster::rasterize(terr, solved.map, opt);
    const std::string name = "raster/fbm/g48/r160s" + std::to_string(s);
    cases[name]["crossings"] = img.crossings;
    cases[name]["hit_samples"] = img.hit_samples;
    cases[name]["samples"] = img.samples;
    cases[name]["k_pieces"] = solved.stats.k_pieces;

    const raster::ImageRaster banded = raster::rasterize_sharded(sharded.plan(), slab_maps, opt);
    if (banded.ids != img.ids || banded.depth != img.depth || banded.coverage != img.coverage) {
      std::cout << "FAIL  " << name << ": sharded raster differs from monolithic\n";
      ++failures;
    }
  }
  return failures;
}

/// Serving-layer workloads (DESIGN.md section 1.10): viewpoint-
/// parameterized solves through the engine cache. Counter cases gate the
/// post-transform solve work against the baseline; a built-in hard gate
/// asserts the cache path — cold miss, warm hit, and the order-transfer
/// rung — is bitwise identical (visibility map AND work counters) to a
/// direct solve of the pre-transformed terrain. The direct solve runs at
/// threads=2 while the cache path runs scoped-serial, so the gate also
/// re-enforces identity across thread counts on every CI run. Returns the
/// number of gate failures.
int run_service_cases(CaseMap& cases) {
  using service::Viewpoint;
  const auto terr = std::make_shared<const Terrain>(bench::make(Family::Fbm, 48));
  // One viewpoint per reuse-ladder rung plus rotated/general azimuths
  // (Pythagorean pairs keep magnitudes small; all admissible for g48).
  const std::vector<std::pair<std::string, Viewpoint>> vps = {
      {"identity", Viewpoint{}},
      {"el1-3", Viewpoint{.elev_num = 1, .elev_den = 3}},
      {"az0-1", Viewpoint{.dir_x = 0, .dir_y = 1}},
      {"az3-4", Viewpoint{.dir_x = 3, .dir_y = 4}},
      {"az4-3el1-4", Viewpoint{.dir_x = 4, .dir_y = -3, .elev_num = 1, .elev_den = 4}},
  };
  const auto expect_same = [](const HsrResult& got, const HsrResult& want,
                              const std::string& name, const char* label) -> int {
    const auto diff = want.map.first_difference(got.map);
    if (diff.has_value()) {
      std::cout << "FAIL  " << name << ": " << label << " map differs from direct solve at edge "
                << *diff << "\n";
      return 1;
    }
    if (!(got.stats.work == want.stats.work)) {
      std::cout << "FAIL  " << name << ": " << label << " work counters differ from direct solve\n";
      return 1;
    }
    return 0;
  };
  service::EngineCache cache;
  cache.add_terrain(1, terr);
  int failures = 0;
  for (const auto& [label, vp] : vps) {
    const std::string name = "service/fbm/g48/" + label;
    if (!service::admissible(vp, terr->max_abs_coord())) {
      std::cout << "FAIL  " << name << ": viewpoint inadmissible for this terrain\n";
      ++failures;
      continue;
    }
    const Terrain direct_terrain = service::transform_terrain(*terr, vp);
    const HsrResult direct = hidden_surface_removal(
        direct_terrain, {.algorithm = Algorithm::Parallel, .threads = 2});
    const HsrOptions scoped{.algorithm = Algorithm::Parallel};
    const HsrResult cold = cache.acquire(1, vp)->solve_scoped(scoped);
    bool hit = false;
    const HsrResult warm = cache.acquire(1, vp, &hit)->solve_scoped(scoped);
    failures += expect_same(cold, direct, name, "cold cache solve");
    failures += expect_same(warm, direct, name, "warm cache solve");
    if (!hit) {
      std::cout << "FAIL  " << name << ": second acquire was not a cache hit\n";
      ++failures;
    }
    cases[name] = to_counter_map(direct.stats.work);
    cases[name]["k_pieces"] = direct.stats.k_pieces;
    cases[name]["treap_nodes"] = direct.stats.treap_nodes;
    cases[name]["phase1_pieces"] = direct.stats.phase1_pieces;
  }
  // The cache's own counters are deterministic for this schedule: one miss
  // + one hit per viewpoint, and the shear transfers the identity entry's
  // depth order. Baseline-gated like any other counters.
  const service::EngineCache::Stats cs = cache.stats();
  cases["service/fbm/g48/cache"] = CounterMap{{"hits", cs.hits},
                                              {"misses", cs.misses},
                                              {"order_transfers", cs.order_transfers},
                                              {"resident_entries", cs.resident_entries}};
  return failures;
}

/// Out-of-core streaming workloads (DESIGN.md section 1.11). Counter cases
/// gate the streamed solve + scan work against the baseline (the synthetic
/// grids are integer-hash noise, so the counters are host-independent like
/// every other family). Two built-in hard gates mirror bench_stream: the
/// streamed raster must be bit-identical to the monolithic solve at every
/// resident-slab budget (with budget-invariant counters), and the tall case
/// must complete under an enforced resident-bytes budget. Returns the
/// number of gate failures.
int run_stream_cases(CaseMap& cases) {
  int failures = 0;
  const auto base_opt = [](u32 slab_rows, u32 B) {
    stream::StreamOptions opt;
    opt.slab_rows = slab_rows;
    opt.resident_slabs = B;
    opt.width = 160;
    opt.height = 120;
    opt.supersample = 2;
    opt.solve.algorithm = Algorithm::Parallel;
    opt.solve.threads = 2;
    return opt;
  };
  const auto record = [&cases](const std::string& name, const stream::StreamStats& st) {
    cases[name] = to_counter_map(st.work);
    cases[name]["k_pieces"] = st.k_pieces;
    cases[name]["triangles"] = st.triangles;
    cases[name]["crossings"] = st.crossings;
    cases[name]["hit_samples"] = st.hit_samples;
    cases[name]["slabs"] = st.slabs;
  };

  // Identity: small enough for the monolithic path, compared bitwise.
  {
    const AscGrid g = bench::stream_grid(32, 48, /*seed=*/7);
    const Terrain terr = stream::terrain_from_rows(g.ncols, g.nrows, g.values, g.nodata);
    i64 z_lo = 0, z_hi = 0;
    bool any = false;
    for (const double v : g.values) {
      const i64 q = stream::quantize_height(v, {});
      z_lo = any ? std::min(z_lo, q) : q;
      z_hi = any ? std::max(z_hi, q) : q;
      any = true;
    }
    const HsrResult mono =
        hidden_surface_removal(terr, {.algorithm = Algorithm::Parallel, .threads = 2});
    raster::RasterOptions ropt;
    ropt.width = 160;
    ropt.height = 120;
    ropt.supersample = 2;
    ropt.window = stream::stream_window(g.ncols, g.nrows, z_lo, z_hi);
    ropt.threads = 2;
    const raster::ImageRaster img = raster::rasterize(terr, mono.map, ropt);
    std::optional<stream::StreamStats> first;
    for (const u32 B : {1u, 6u}) {
      stream::StreamOptions opt = base_opt(/*slab_rows=*/8, B);
      stream::MemoryBandSink sink(opt.width, opt.height, opt.supersample);
      stream::GridRowSource src(g);
      const stream::StreamStats st = stream::stream_solve(src, opt, sink);
      const std::string name = "stream/synth/c32r48/s8";
      if (sink.image().ids != img.ids || sink.image().depth != img.depth ||
          sink.image().coverage != img.coverage) {
        std::cout << "FAIL  " << name << "/b" << B
                  << ": streamed raster differs from monolithic\n";
        ++failures;
      }
      if (!first) {
        first = st;
        record(name, st);
      } else if (!(st.work == first->work) || st.k_pieces != first->k_pieces ||
                 st.crossings != first->crossings || st.hit_samples != first->hit_samples) {
        std::cout << "FAIL  " << name << ": counters depend on the resident-slab budget\n";
        ++failures;
      }
    }
  }

  // Tall: ~15 slab windows under an enforced resident-bytes budget (the
  // full ~100x case runs in bench_stream; this one keeps bench_ci cheap).
  {
    const AscGrid g = bench::stream_grid(32, 481, /*seed=*/11);
    stream::StreamOptions opt = base_opt(/*slab_rows=*/32, /*B=*/2);
    opt.resident_bytes_budget = 16ull << 20;
    stream::NullBandSink sink;
    stream::GridRowSource src(g);
    try {
      record("stream/synth/c32r481/s32", stream::stream_solve(src, opt, sink));
    } catch (const std::exception& e) {
      std::cout << "FAIL  stream/synth/c32r481/s32: " << e.what() << "\n";
      ++failures;
    }
  }
  return failures;
}

/// Resolution-bounded workloads (DESIGN.md section 1.12). Counter cases
/// gate the bounded solve's work against the baseline; two built-in hard
/// gates defend the mode's contract on every CI run: at the budget's
/// matching resolution the bounded raster must be bit-identical to the
/// exact solve's raster AND to the brute-force ray-cast oracle (for the
/// parallel and sequential algorithms alike), and the dense-staircase
/// family — whose visible map is dominated by sub-pixel pieces — must
/// show at least a 20% drop in both k_pieces and treap_nodes versus the
/// exact solve. Returns the number of gate failures.
int run_bounded_cases(CaseMap& cases) {
  const Terrain terr = support::dense_staircase(48, /*seed=*/5);
  raster::RasterOptions ropt;
  ropt.width = 64;
  ropt.height = 48;
  ropt.threads = 2;
  const HsrOptions exact_opt{.algorithm = Algorithm::Parallel, .threads = 2};
  HsrOptions bounded_opt = exact_opt;
  bounded_opt.pixel_budget = raster::pixel_budget(terr, ropt);
  const HsrResult exact = hidden_surface_removal(terr, exact_opt);
  const HsrResult bounded = hidden_surface_removal(terr, bounded_opt);
  const raster::ImageRaster img_e = raster::rasterize(terr, exact.map, ropt);
  const raster::ImageRaster img_b = raster::rasterize(terr, bounded.map, ropt);

  int failures = 0;
  const std::string name = "bounded/stair/g48/r64";
  if (img_b.ids != img_e.ids || img_b.depth != img_e.depth || img_b.coverage != img_e.coverage ||
      img_b.crossings != img_e.crossings || img_b.hit_samples != img_e.hit_samples) {
    std::cout << "FAIL  " << name << ": bounded raster differs from exact raster\n";
    ++failures;
  }
  const raster::ImageRaster oracle = raster::raycast_reference(terr, ropt);
  if (img_b.ids != oracle.ids || img_b.depth != oracle.depth ||
      img_b.coverage != oracle.coverage) {
    std::cout << "FAIL  " << name << ": bounded raster differs from ray-cast oracle\n";
    ++failures;
  }
  HsrOptions seq_opt = bounded_opt;
  seq_opt.algorithm = Algorithm::Sequential;
  const HsrResult seq = hidden_surface_removal(terr, seq_opt);
  const raster::ImageRaster img_s = raster::rasterize(terr, seq.map, ropt);
  if (img_s.ids != img_e.ids || img_s.depth != img_e.depth || img_s.coverage != img_e.coverage) {
    std::cout << "FAIL  " << name << ": sequential bounded raster differs from exact raster\n";
    ++failures;
  }

  const auto require_drop = [&](const char* what, u64 exact_v, u64 bounded_v) {
    const double kept = exact_v == 0 ? 1.0
                                     : static_cast<double>(bounded_v) /
                                           static_cast<double>(exact_v);
    if (kept > 0.80) {
      std::cout << "FAIL  " << name << ": " << what << " kept " << Table::num(100.0 * kept, 1)
                << "% of exact (" << exact_v << " -> " << bounded_v
                << "); the bounded mode must prune >= 20% here\n";
      ++failures;
    }
  };
  require_drop("k_pieces", exact.stats.k_pieces, bounded.stats.k_pieces);
  require_drop("treap_nodes", exact.stats.treap_nodes, bounded.stats.treap_nodes);

  cases[name] = to_counter_map(bounded.stats.work);
  cases[name]["k_pieces"] = bounded.stats.k_pieces;
  cases[name]["treap_nodes"] = bounded.stats.treap_nodes;
  cases[name]["phase1_pieces"] = bounded.stats.phase1_pieces;
  cases[name]["crossings"] = img_b.crossings;
  cases[name]["hit_samples"] = img_b.hit_samples;
  // The exact-side counters ride along so the artifact shows the pruning
  // ratio directly (and the baseline pins both sides of it).
  cases["bounded/stair/g48/exact"] = CounterMap{{"k_pieces", exact.stats.k_pieces},
                                                {"treap_nodes", exact.stats.treap_nodes},
                                                {"phase1_pieces", exact.stats.phase1_pieces}};
  return failures;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_CI.json";
  std::string check_path;
  double tolerance = 5.0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (arg == "--out") {
      if (const char* v = next()) out_path = v;
    } else if (arg == "--check") {
      if (const char* v = next()) check_path = v;
    } else if (arg == "--tolerance") {
      if (const char* v = next()) tolerance = std::atof(v);
    } else {
      std::cerr << "usage: bench_ci [--out FILE] [--check BASELINE] [--tolerance PCT]\n";
      return 2;
    }
  }

  CaseMap cases;
  // E1 (Theorem 3.1 work bound): the table's grid sweep.
  for (const u32 g : {24u, 32u, 48u, 64u, 96u}) {
    run_case(cases, "e1/fbm/g" + std::to_string(g), Family::Fbm, g);
  }
  // E3 (schedule-independence): the speedup table's inputs.
  for (const u32 g : {48u, 96u}) {
    run_case(cases, "e3/fbm/g" + std::to_string(g), Family::Fbm, g);
  }
  // E12 (phase-2 oracle ablation): both oracles, both families.
  for (const u32 g : {24u, 48u, 96u}) {
    run_case(cases, "e12/fbm/g" + std::to_string(g) + "/persistent", Family::Fbm, g,
             Phase2Oracle::Persistent);
    run_case(cases, "e12/fbm/g" + std::to_string(g) + "/materialized", Family::Fbm, g,
             Phase2Oracle::MaterializedScan);
    run_case(cases, "e12/terrace/g" + std::to_string(g) + "/persistent", Family::TerraceBack, g,
             Phase2Oracle::Persistent);
    run_case(cases, "e12/terrace/g" + std::to_string(g) + "/materialized", Family::TerraceBack,
             g, Phase2Oracle::MaterializedScan);
  }

  // Engine reuse: the warm-solve and batch paths.
  run_engine_cases(cases);

  // Sharded solves: baseline cases + the duplication-bound work gate.
  const int shard_failures = run_shard_cases(cases);

  // Raster products: baseline cases + the sharded-equality image gate.
  const int raster_failures = run_raster_cases(cases);

  // Viewpoint service: baseline cases + the cache-vs-direct identity gate.
  const int service_failures = run_service_cases(cases);

  // Out-of-core streaming: baseline cases + the streamed-vs-monolithic
  // identity and enforced resident-bytes gates.
  const int stream_failures = run_stream_cases(cases);

  // Resolution-bounded solves: baseline cases + the bitwise raster-identity
  // and >= 20% pruning gates.
  const int bounded_failures = run_bounded_cases(cases);

  write_json(cases, out_path);
  std::cout << "wrote " << cases.size() << " cases to " << out_path << "\n";
  const int gate_failures =
      shard_failures + raster_failures + service_failures + stream_failures + bounded_failures;
  if (shard_failures) {
    // Reported now, but keep going: a single run should surface both this
    // and any baseline regressions below.
    std::cout << shard_failures << " sharding duplication-bound violation(s)\n";
  }
  if (raster_failures) {
    std::cout << raster_failures << " sharded-raster equality violation(s)\n";
  }
  if (service_failures) {
    std::cout << service_failures << " service cache-vs-direct identity violation(s)\n";
  }
  if (stream_failures) {
    std::cout << stream_failures << " streaming identity/residency violation(s)\n";
  }
  if (bounded_failures) {
    std::cout << bounded_failures << " bounded-solve identity/pruning violation(s)\n";
  }

  if (check_path.empty()) return gate_failures ? 1 : 0;
  std::ifstream is(check_path);
  if (!is) {
    std::cerr << "bench_ci: cannot read baseline " << check_path << "\n";
    return 1;
  }
  std::stringstream buf;
  buf << is.rdbuf();
  bench::FlatU64Parser parser(buf.str());
  const auto baseline = parser.parse();
  if (!baseline) {
    std::cerr << "bench_ci: cannot parse baseline " << check_path << "\n";
    return 1;
  }
  const int failures = check(*baseline, cases, tolerance);
  if (failures) {
    std::cout << failures << " counter regression(s) beyond +" << tolerance << "%\n";
  } else {
    std::cout << "counters within +" << tolerance << "% of baseline (" << baseline->size()
              << " cases)\n";
  }
  return (failures || gate_failures) ? 1 : 0;
}
