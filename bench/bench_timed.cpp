/// bench_timed — wall-clock lane of the bench suite (DESIGN.md section 1.9).
///
/// bench_ci gates *what* the library computes (machine-independent work
/// counters, bit-exact against a committed baseline); this driver measures
/// *how fast*, which is inherently host-dependent and therefore never
/// gated in CI — it produces an artifact, BENCH_TIMED.json, that humans
/// (or `--diff`) compare across two runs on the *same* host. Protocol per
/// case (bench/timing.hpp): pin the measuring thread, warm up untimed,
/// then report the median of `--reps` timed repetitions with IQR and MAD
/// dispersion. Cases cover the three solve surfaces whose speed the
/// engine-reuse and flattened-treap work targets: warm HsrEngine solves,
/// sharded solves, and rasterization — each on the serial backend at p=1
/// and on the first scaling backend at p=4, so one artifact shows both the
/// single-core cost and the parallel win.
///
/// Usage:
///   bench_timed [--out BENCH_TIMED.json] [--reps 9] [--warmup 2]
///               [--filter SUBSTR] [--quick] [--no-pin]
///   bench_timed --diff OLD.json NEW.json
///
/// --quick drops to 3 reps / 1 warmup (the CI smoke configuration).
/// --diff prints per-case median deltas of two artifacts and marks a delta
/// significant only when it exceeds both runs' IQR — it never fails the
/// build (exit 0 unless an artifact is unreadable).

#include <cmath>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/engine.hpp"
#include "flat_json.hpp"
#include "geometry/filter.hpp"
#include "parallel/backend.hpp"
#include "parallel/work_depth.hpp"
#include "raster/raster.hpp"
#include "service/engine_cache.hpp"
#include "shard/sharded_engine.hpp"
#include "stream/sinks.hpp"
#include "stream/stream.hpp"
#include "stream_grids.hpp"
#include "support/terrain_families.hpp"
#include "timing.hpp"

namespace {

using namespace thsr;
using bench::CaseMap;
using bench::CounterMap;
using bench::TimedStats;

struct Config {
  std::string out = "BENCH_TIMED.json";
  int reps = 9;
  int warmup = 2;
  std::string filter;
  bool pin = true;
};

/// The (backend, p) pairs every case family runs under. Serial/p1 is the
/// single-core anchor; the first scaling backend (Pool, or OpenMP when it
/// leads the build's list) at a fixed p=4 keeps case names stable across
/// hosts — p beyond the core count just oversubscribes, which the host
/// fingerprint in `meta` lets a reader discount.
struct Lane {
  par::Backend backend;
  int threads;
};

std::vector<Lane> lanes() {
  std::vector<Lane> out{{par::Backend::Serial, 1}};
  const auto scaling = bench::scaling_backends();
  if (!scaling.empty()) out.push_back({scaling.front(), 4});
  return out;
}

std::string lane_suffix(const Lane& ln) {
  return std::string("/") + par::backend_name(ln.backend) + "/p" + std::to_string(ln.threads);
}

bool selected(const Config& cfg, const std::string& name) {
  return cfg.filter.empty() || name.find(cfg.filter) != std::string::npos;
}

void record(CaseMap& cases, const std::string& name, const TimedStats& s, const Lane& ln) {
  CounterMap& m = cases[name];
  m["median_ns"] = s.median_ns;
  m["iqr_ns"] = s.iqr_ns;
  m["mad_ns"] = s.mad_ns;
  m["min_ns"] = s.min_ns;
  m["reps"] = s.reps;
  m["p"] = static_cast<u64>(ln.threads);
  std::cout << "  " << name << ": median " << s.median_ns / 1000 << " us (iqr "
            << s.iqr_ns / 1000 << " us, " << s.reps << " reps)\n";
}

/// Warm HsrEngine solves: prepare once, let the harness warmup be the cold
/// solve that sizes the arena, then time steady-state solves — the path
/// the arena-indexed treap flattening targets. Also stamps the retained
/// arena footprint so artifacts track resident cost next to wall clock.
void run_engine_cases(CaseMap& cases, const Config& cfg) {
  const Terrain terr = bench::make(Family::Fbm, 48);
  HsrEngine eng;
  eng.prepare(terr);
  struct Alg {
    Algorithm algorithm;
    const char* name;
  };
  for (const Alg alg :
       {Alg{Algorithm::Parallel, "parallel"}, Alg{Algorithm::Sequential, "sequential"}}) {
    for (const Lane& ln : lanes()) {
      if (alg.algorithm == Algorithm::Sequential && ln.backend != par::Backend::Serial) {
        continue;  // sequential never enters a parallel region; one lane suffices
      }
      const std::string name =
          std::string("engine/fbm/g48/warm/") + alg.name + lane_suffix(ln);
      if (!selected(cfg, name)) continue;
      const HsrOptions opt{
          .algorithm = alg.algorithm, .threads = ln.threads, .backend = ln.backend};
      const TimedStats s = bench::measure(
          [&] {
            HsrResult r = eng.solve(opt);
            eng.recycle(std::move(r));
          },
          cfg.warmup, cfg.reps);
      record(cases, name, s, ln);
      cases[name]["arena_footprint_bytes"] = eng.arena_footprint_bytes();
    }
  }

  // Batch fan-out of three heterogeneous solves (the solve_batch path).
  for (const Lane& ln : lanes()) {
    const std::string name = std::string("engine/fbm/g48/batch3") + lane_suffix(ln);
    if (!selected(cfg, name)) continue;
    const std::vector<HsrOptions> opts{{.algorithm = Algorithm::Parallel},
                                       {.algorithm = Algorithm::Sequential},
                                       {.algorithm = Algorithm::Parallel,
                                        .phase2_oracle = Phase2Oracle::MaterializedScan}};
    const par::ScopedConfig scope(ln.threads, ln.backend);
    const TimedStats s = bench::measure(
        [&] {
          auto results = eng.solve_batch(opts);
          for (HsrResult& r : results) eng.recycle(std::move(r));
        },
        cfg.warmup, cfg.reps);
    record(cases, name, s, ln);
  }
}

/// Sharded solves: slab fan-out + stitch, the decomposition wall clock.
void run_shard_cases(CaseMap& cases, const Config& cfg) {
  const Terrain terr = bench::make(Family::Fbm, 48);
  shard::ShardedEngine eng;
  eng.prepare(terr, 8);
  for (const Lane& ln : lanes()) {
    const std::string name = std::string("shard/fbm/g48/s8") + lane_suffix(ln);
    if (!selected(cfg, name)) continue;
    const HsrOptions opt{
        .algorithm = Algorithm::Parallel, .threads = ln.threads, .backend = ln.backend};
    const TimedStats s = bench::measure([&] { (void)eng.solve(opt); }, cfg.warmup, cfg.reps);
    record(cases, name, s, ln);
  }
}

/// Rasterization of one solved map: the image-space product's wall clock.
void run_raster_cases(CaseMap& cases, const Config& cfg) {
  const Terrain terr = bench::make(Family::Fbm, 48);
  HsrEngine eng;
  eng.prepare(terr);
  const HsrResult solved = eng.solve({.algorithm = Algorithm::Parallel, .threads = 1});
  for (const Lane& ln : lanes()) {
    const std::string name = std::string("raster/fbm/g48/r160s2") + lane_suffix(ln);
    if (!selected(cfg, name)) continue;
    raster::RasterOptions opt;
    opt.width = 160;
    opt.height = 120;
    opt.supersample = 2;
    opt.threads = ln.threads;
    opt.backend = ln.backend;
    const TimedStats s = bench::measure(
        [&] { (void)raster::rasterize(terr, solved.map, opt); }, cfg.warmup, cfg.reps);
    record(cases, name, s, ln);
  }
}

/// Viewpoint-service solves: warm EngineCache acquire + solve_scoped under
/// rotated / elevated viewpoints — the query service's steady-state serving
/// wall clock (the acquire is a cache hit after the harness warmup; the
/// solve reuses the resident engine's arena).
void run_service_cases(CaseMap& cases, const Config& cfg) {
  const auto terr = std::make_shared<const Terrain>(bench::make(Family::Fbm, 48));
  service::EngineCache cache;
  cache.add_terrain(1, terr);
  struct Vp {
    service::Viewpoint vp;
    const char* name;
  };
  for (const Vp v : {Vp{{.dir_x = 3, .dir_y = 4}, "az3-4"},
                     Vp{{.dir_x = 4, .dir_y = -3, .elev_num = 1, .elev_den = 4}, "az4-3el1-4"}}) {
    for (const Lane& ln : lanes()) {
      const std::string name = std::string("service/fbm/g48/") + v.name + lane_suffix(ln);
      if (!selected(cfg, name)) continue;
      // solve_scoped inherits the ambient parallel configuration (it must
      // not install its own — see HsrEngine::solve_scoped).
      const par::ScopedConfig scope(ln.threads, ln.backend);
      const HsrOptions opt{.algorithm = Algorithm::Parallel};
      const TimedStats s = bench::measure(
          [&] { (void)cache.acquire(1, v.vp)->solve_scoped(opt); }, cfg.warmup, cfg.reps);
      record(cases, name, s, ln);
    }
  }
}

/// Out-of-core streaming solves: the full pipeline (prescan, per-slab
/// build/prepare/solve, band scan, aggregation) over an in-memory grid —
/// the wall clock bench_stream's gates bound in bytes. resident_slabs = 2
/// keeps two solves in flight for the scaling lane; the peak tracked
/// residency is stamped next to the timing.
void run_stream_cases(CaseMap& cases, const Config& cfg) {
  const AscGrid g = bench::stream_grid(32, 481, /*seed=*/11);
  for (const Lane& ln : lanes()) {
    const std::string name = std::string("stream/synth/c32r481/s32b2") + lane_suffix(ln);
    if (!selected(cfg, name)) continue;
    stream::StreamOptions opt;
    opt.slab_rows = 32;
    opt.resident_slabs = 2;
    opt.width = 160;
    opt.height = 120;
    opt.supersample = 2;
    opt.solve.algorithm = Algorithm::Parallel;
    opt.solve.threads = ln.threads;
    opt.solve.backend = ln.backend;
    u64 peak = 0;
    const TimedStats s = bench::measure(
        [&] {
          stream::NullBandSink sink;
          stream::GridRowSource src(g);
          peak = stream::stream_solve(src, opt, sink).peak_resident_bytes;
        },
        cfg.warmup, cfg.reps);
    record(cases, name, s, ln);
    cases[name]["peak_resident_bytes"] = peak;
  }
}

/// Resolution-bounded raster workloads (DESIGN.md section 1.12): the
/// end-to-end cost a raster consumer pays — warm solve plus scan-convert
/// at the budget's resolution — exact vs bounded on the dense-staircase
/// family whose counter drop bench_ci gates. Both cases land in one
/// artifact; the run prints a per-lane verdict marking the delta
/// significant only when it clears both cases' IQRs (the same bar as
/// --diff).
void run_bounded_cases(CaseMap& cases, const Config& cfg) {
  const Terrain terr = support::dense_staircase(48, /*seed=*/5);
  HsrEngine eng;
  eng.prepare(terr);
  for (const Lane& ln : lanes()) {
    raster::RasterOptions ropt;
    ropt.width = 64;
    ropt.height = 48;
    ropt.threads = ln.threads;
    ropt.backend = ln.backend;
    TimedStats timings[2]{};
    bool have[2]{false, false};
    for (const int bounded : {0, 1}) {
      const std::string name = std::string("bounded/stair/g48/r64/") +
                               (bounded ? "bounded" : "exact") + lane_suffix(ln);
      if (!selected(cfg, name)) continue;
      HsrOptions opt{
          .algorithm = Algorithm::Parallel, .threads = ln.threads, .backend = ln.backend};
      if (bounded) opt.pixel_budget = raster::pixel_budget(terr, ropt);
      const TimedStats s = bench::measure(
          [&] {
            HsrResult r = eng.solve(opt);
            (void)raster::rasterize(terr, r.map, ropt);
            eng.recycle(std::move(r));
          },
          cfg.warmup, cfg.reps);
      record(cases, name, s, ln);
      timings[bounded] = s;
      have[bounded] = true;
    }
    if (have[0] && have[1]) {
      const u64 e = timings[0].median_ns, b = timings[1].median_ns;
      const u64 delta = e > b ? e - b : b - e;
      const bool signif = delta > timings[0].iqr_ns && delta > timings[1].iqr_ns;
      std::cout << "  bounded/stair/g48/r64" << lane_suffix(ln) << ": bounded is "
                << Table::num(100.0 * (static_cast<double>(e) - static_cast<double>(b)) /
                                  static_cast<double>(e),
                              1)
                << "% faster than exact ("
                << (signif ? "significant: delta clears both IQRs" : "noise") << ")\n";
    }
  }
}

std::optional<CaseMap> load_artifact(const std::string& path) {
  std::ifstream is(path);
  if (!is) {
    std::cerr << "bench_timed: cannot read " << path << "\n";
    return std::nullopt;
  }
  std::stringstream buf;
  buf << is.rdbuf();
  bench::FlatU64Parser parser(buf.str());
  auto cases = parser.parse();
  if (!cases) std::cerr << "bench_timed: cannot parse " << path << "\n";
  return cases;
}

/// Informational two-artifact comparison, keyed strictly by case name
/// (bench::diff_rows — reordered or disjoint case sets pair up correctly).
/// A median delta only means something when it clears the noise floor of
/// both runs, so a case is flagged `signif` when |delta| exceeds each
/// run's IQR; everything else prints as noise. Never fails: timing is not
/// a CI gate.
int diff(const std::string& old_path, const std::string& new_path) {
  const auto a = load_artifact(old_path);
  const auto b = load_artifact(new_path);
  if (!a || !b) return 1;
  std::cout << "case, old median_ns, new median_ns, delta%, verdict\n";
  for (const bench::DiffRow& row : bench::diff_rows(*a, *b)) {
    if (row.presence == bench::DiffRow::Presence::OnlyNew) {
      std::cout << row.name << ": only in " << new_path << "\n";
    } else if (row.presence == bench::DiffRow::Presence::OnlyOld) {
      std::cout << row.name << ": only in " << old_path << "\n";
    } else if (row.comparable) {
      std::cout << row.name << ", " << row.old_median_ns << ", " << row.new_median_ns << ", "
                << Table::num(row.delta_pct, 2) << "%, "
                << (row.significant
                        ? (row.new_median_ns < row.old_median_ns ? "signif faster" : "signif slower")
                        : "noise")
                << "\n";
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Config cfg;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (arg == "--out") {
      if (const char* v = next()) cfg.out = v;
    } else if (arg == "--reps") {
      if (const char* v = next()) cfg.reps = std::atoi(v);
    } else if (arg == "--warmup") {
      if (const char* v = next()) cfg.warmup = std::atoi(v);
    } else if (arg == "--filter") {
      if (const char* v = next()) cfg.filter = v;
    } else if (arg == "--quick") {
      cfg.reps = 3;
      cfg.warmup = 1;
    } else if (arg == "--no-pin") {
      cfg.pin = false;
    } else if (arg == "--diff") {
      const char* a = next();
      const char* b = next();
      if (!a || !b) {
        std::cerr << "usage: bench_timed --diff OLD.json NEW.json\n";
        return 2;
      }
      return diff(a, b);
    } else {
      std::cerr << "usage: bench_timed [--out FILE] [--reps N] [--warmup N] [--filter SUBSTR] "
                   "[--quick] [--no-pin] | --diff OLD.json NEW.json\n";
      return 2;
    }
  }
  if (cfg.reps < 1 || cfg.warmup < 0) {
    std::cerr << "bench_timed: --reps must be >= 1 and --warmup >= 0\n";
    return 2;
  }

  const bool pinned = cfg.pin && thsr::bench::pin_this_thread();
  std::cout << "bench_timed: " << cfg.reps << " reps, " << cfg.warmup << " warmup, "
            << (pinned ? "pinned" : "unpinned") << "\n";

  thsr::work::reset();  // so the filter hit-rate meta below covers this run only
  CaseMap cases;
  run_engine_cases(cases, cfg);
  run_shard_cases(cases, cfg);
  run_raster_cases(cases, cfg);
  run_service_cases(cases, cfg);
  run_stream_cases(cases, cfg);
  run_bounded_cases(cases, cfg);

  std::map<std::string, std::string> meta;
  meta["git_sha"] = thsr::bench::git_sha();
  meta["host"] = thsr::bench::host_fingerprint();
  meta["pinned"] = pinned ? "1" : "0";
  meta["reps"] = std::to_string(cfg.reps);
  meta["warmup"] = std::to_string(cfg.warmup);
  meta["timestamp"] = thsr::bench::utc_timestamp();
  {
    std::string names;
    for (const Lane& ln : lanes()) {
      if (!names.empty()) names += ",";
      names += par::backend_name(ln.backend);
      names += "/p" + std::to_string(ln.threads);
    }
    meta["lanes"] = names;
  }
  {
    // Predicate-filter telemetry across the whole run (all cases, warmups
    // included): hit rate of the f64 fast path vs exact i128 fallbacks.
    // "filter" records whether the fast path was live for this artifact.
    using thsr::Op;
    const thsr::Counters w = thsr::work::snapshot();
    const u64 fast = w[Op::FilterFast], exact = w[Op::FilterExact];
    meta["filter"] = thsr::filt::enabled() ? "on" : "off";
    meta["filter_fast"] = std::to_string(fast);
    meta["filter_exact_fallback"] = std::to_string(exact);
    meta["filter_fallback_permille"] =
        std::to_string(fast + exact == 0 ? 0 : 1000 * exact / (fast + exact));
  }

  thsr::bench::write_timed_json(cases, meta, cfg.out);
  std::cout << "wrote " << cases.size() << " cases to " << cfg.out << "\n";
  return 0;
}
