/// E1 — Theorem 3.1: the parallel algorithm runs in
/// O(max{log^4 n, (k + n·alpha(n)) log^3 n / p}) on a CREW PRAM.
/// Machine-independent check: total counted operations, normalized by
/// (n + k)·log^3 n, should be a (slowly falling) constant as n grows; wall
/// clock should scale near (n+k)·polylog.

#include "bench_util.hpp"

int main() {
  using namespace thsr;
  using namespace thsr::bench;
  print_header("E1", "Theorem 3.1",
               "work O((k + n alpha(n)) log^3 n); ops/((n+k) log^3 n) ~ flat");

  Table t({"grid", "n", "k", "order_ms", "phase1_ms", "phase2_ms", "total_ms", "ops",
           "ops/((n+k)log3n)", "ops/(n+k)"});
  std::vector<u32> grids{24, 32, 48, 64, 96};
  if (large()) {
    grids.push_back(128);
    grids.push_back(176);
  }
  for (const u32 g : grids) {
    const Terrain terr = make(Family::Fbm, g);
    const HsrResult r = hidden_surface_removal(terr, {.algorithm = Algorithm::Parallel});
    const double n = static_cast<double>(r.stats.n_edges);
    const double k = static_cast<double>(r.stats.k_pieces);
    const double ops = static_cast<double>(r.stats.work.total());
    const double l = log2d(n);
    t.row({Table::num(static_cast<long long>(g)),
           Table::num(static_cast<long long>(r.stats.n_edges)),
           Table::num(static_cast<long long>(r.stats.k_pieces)), ms(r.stats.order_s),
           ms(r.stats.phase1_s), ms(r.stats.phase2_s), ms(r.stats.total_s),
           Table::num(static_cast<long long>(ops)), Table::num(ops / ((n + k) * l * l * l), 5),
           Table::num(ops / (n + k), 2)});
  }
  t.print_markdown(std::cout);
  t.maybe_write_csv("table_e1_theorem31");
  return 0;
}
