/// bench_service — latency/throughput lane for the serving layer
/// (src/service/, DESIGN.md section 1.10).
///
/// Drives synthetic query streams at a long-running QueryServer and turns
/// the per-reply latencies into BENCH_SERVICE.json: p50/p99/min/max
/// submit-to-completion latency, solve-only p50, and queries/sec, plus the
/// cache counters that explain them (hits, misses, order transfers,
/// evictions). Wall-clock numbers are host-dependent and never gated; what
/// CI *does* gate is the service contract — the run fails (exit 1) if any
/// query is dropped or errors, so the artifact doubles as a soak test of
/// the queue/cache machinery under real concurrency.
///
/// Traffic is open-loop per pattern: producers submit without waiting for
/// replies, throttled only by the bounded queue (block_when_full, so a
/// slow server back-pressures instead of dropping). Three patterns:
///   hot    — a handful of viewpoints on one terrain; steady-state is all
///            cache hits (serving-floor latency).
///   churn  — every query a fresh viewpoint under a small byte budget;
///            steady-state is all misses + evictions (prepare-dominated).
///   mixed  — 80% hot / 20% fresh (deterministic RNG), the realistic mix.
///
/// Usage:
///   bench_service [--out BENCH_SERVICE.json] [--queries N] [--workers N]
///                 [--producers N] [--budget-mb N] [--grid N]
///                 [--pattern hot|churn|mixed|all] [--quick] [--allow-drops]
///
/// --quick shrinks the stream and grid to the CI soak configuration.
/// --allow-drops downgrades the zero-drop/zero-error gate to a report
/// (for experiments with block_when_full disabled or tiny queues).

#include <algorithm>
#include <cstring>
#include <iostream>
#include <memory>
#include <mutex>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "service/query_server.hpp"
#include "timing.hpp"

namespace {

using namespace thsr;
using service::Query;
using service::QueryReply;
using service::QueryServer;
using service::QueryStatus;
using service::Viewpoint;

struct Config {
  std::string out = "BENCH_SERVICE.json";
  int queries = 400;
  int workers = 4;
  int producers = 2;
  u64 budget_mb = 256;
  u32 grid = 24;
  std::string pattern = "all";
  bool allow_drops = false;
};

/// The hot set: one viewpoint per reuse-ladder rung, all admissible for
/// the bench grids.
const std::vector<Viewpoint>& hot_viewpoints() {
  static const std::vector<Viewpoint> vps = {
      Viewpoint{},
      Viewpoint{.elev_num = 1, .elev_den = 3},
      Viewpoint{.dir_x = 0, .dir_y = 1},
      Viewpoint{.dir_x = 3, .dir_y = 4},
  };
  return vps;
}

/// A churn-stream viewpoint: azimuth from a small fixed set (R <= 3) and
/// elevation slope 1/den with den walked through [2, den_max], where
/// den_max is the largest denominator the terrain's width budget admits
/// (DESIGN.md section 1.10: (den + R)·M <= kMaxCoord). Slopes 1/den are
/// already canonical, so consecutive k yield distinct cache keys until
/// the (4 * (den_max - 1))-key space wraps.
Viewpoint fresh_viewpoint(int k, i64 den_max) {
  static const std::vector<std::pair<i64, i64>> azimuths = {{1, 0}, {0, 1}, {2, -1}, {1, 1}};
  const auto& az = azimuths[static_cast<std::size_t>(k) % azimuths.size()];
  const i64 span = std::max<i64>(den_max - 1, 1);
  const i64 den = 2 + (static_cast<i64>(k) / static_cast<i64>(azimuths.size())) % span;
  return Viewpoint{.dir_x = az.first, .dir_y = az.second, .elev_num = 1, .elev_den = den};
}

/// Largest churn denominator the terrain admits: den + R <= kMaxCoord / M
/// with R <= 3 in the azimuth set above.
i64 churn_den_max(const Terrain& t) {
  const i64 m = std::max<i64>(t.max_abs_coord(), 1);
  return std::max<i64>(kMaxCoord / m - 3, 2);
}

struct RunResult {
  bench::TimedCounterMap counters;
  u64 dropped{0};
  u64 errors{0};
};

/// One pattern's full run: fresh server, open-loop producers, rank stats
/// over every reply's latency.
RunResult run_pattern(const Config& cfg, const std::string& pattern,
                      const std::shared_ptr<const Terrain>& terr) {
  QueryServer server({.workers = cfg.workers,
                      .queue_capacity = 256,
                      .block_when_full = true,
                      .cache = {.byte_budget = cfg.budget_mb << 20}});
  server.add_terrain(1, terr);

  std::mutex mu;
  std::vector<u64> latency_ns;
  std::vector<u64> solve_ns;
  latency_ns.reserve(static_cast<std::size_t>(cfg.queries));
  solve_ns.reserve(static_cast<std::size_t>(cfg.queries));
  const auto record = [&](QueryReply&& r) {
    const std::lock_guard<std::mutex> lk(mu);
    if (r.status == QueryStatus::Ok) {
      latency_ns.push_back(r.latency_ns);
      solve_ns.push_back(r.solve_ns);
    }
  };

  // Warm the hot set outside the timed window so `hot` measures steady
  // state, not first-touch prepares.
  if (pattern != "churn") {
    for (const Viewpoint& vp : hot_viewpoints()) (void)server.cache().acquire(1, vp);
  }

  const i64 den_max = churn_den_max(*terr);
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> producers;
  producers.reserve(static_cast<std::size_t>(cfg.producers));
  for (int p = 0; p < cfg.producers; ++p) {
    producers.emplace_back([&, p] {
      // Deterministic per-producer stream; `fresh` ids are disjoint across
      // producers so churn never accidentally repeats a key.
      std::mt19937_64 rng(0x5eedULL + static_cast<u64>(p));
      std::uniform_int_distribution<int> pct(0, 99);
      const int n = cfg.queries / cfg.producers + (p < cfg.queries % cfg.producers ? 1 : 0);
      for (int q = 0; q < n; ++q) {
        const int fresh_id = p + cfg.producers * q;
        Viewpoint vp;
        if (pattern == "hot") {
          vp = hot_viewpoints()[static_cast<std::size_t>(pct(rng)) % hot_viewpoints().size()];
        } else if (pattern == "churn") {
          vp = fresh_viewpoint(fresh_id, den_max);
        } else {  // mixed
          vp = pct(rng) < 80
                   ? hot_viewpoints()[static_cast<std::size_t>(pct(rng)) % hot_viewpoints().size()]
                   : fresh_viewpoint(fresh_id, den_max);
        }
        (void)server.submit(Query{.terrain_id = 1, .viewpoint = vp,
                                  .tag = static_cast<u64>(fresh_id)},
                            record);
      }
    });
  }
  for (std::thread& t : producers) t.join();
  server.drain();
  const auto t1 = std::chrono::steady_clock::now();
  const u64 wall_ns = static_cast<u64>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());

  const QueryServer::Stats s = server.stats();
  const service::EngineCache::Stats cs = server.cache_stats();
  const bench::TimedStats lat = bench::stats_of(latency_ns);
  const bench::TimedStats slv = bench::stats_of(solve_ns);
  std::vector<u64> sorted = latency_ns;
  std::sort(sorted.begin(), sorted.end());

  RunResult out;
  out.dropped = s.dropped;
  out.errors = s.errors;
  out.counters = bench::TimedCounterMap{
      {"queries", s.completed},
      {"dropped", s.dropped},
      {"errors", s.errors},
      {"p50_ns", lat.median_ns},
      {"p99_ns", bench::rank_at(sorted, 0.99)},
      {"min_ns", lat.min_ns},
      {"max_ns", sorted.empty() ? 0 : sorted.back()},
      {"iqr_ns", lat.iqr_ns},
      {"solve_p50_ns", slv.median_ns},
      {"qps", wall_ns == 0 ? 0 : s.completed * 1'000'000'000ull / wall_ns},
      {"wall_ms", wall_ns / 1'000'000ull},
      {"cache_hits", cs.hits},
      {"cache_misses", cs.misses},
      {"order_transfers", cs.order_transfers},
      {"evictions", cs.evictions},
      {"resident_bytes", cs.resident_bytes},
  };
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Config cfg;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (arg == "--out") {
      if (const char* v = next()) cfg.out = v;
    } else if (arg == "--queries") {
      if (const char* v = next()) cfg.queries = std::atoi(v);
    } else if (arg == "--workers") {
      if (const char* v = next()) cfg.workers = std::atoi(v);
    } else if (arg == "--producers") {
      if (const char* v = next()) cfg.producers = std::atoi(v);
    } else if (arg == "--budget-mb") {
      if (const char* v = next()) cfg.budget_mb = static_cast<u64>(std::atoll(v));
    } else if (arg == "--grid") {
      if (const char* v = next()) cfg.grid = static_cast<u32>(std::atoi(v));
    } else if (arg == "--pattern") {
      if (const char* v = next()) cfg.pattern = v;
    } else if (arg == "--quick") {
      cfg.queries = 120;
      cfg.grid = 16;
      cfg.workers = 2;
    } else if (arg == "--allow-drops") {
      cfg.allow_drops = true;
    } else {
      std::cerr << "usage: bench_service [--out FILE] [--queries N] [--workers N] "
                   "[--producers N] [--budget-mb N] [--grid N] "
                   "[--pattern hot|churn|mixed|all] [--quick] [--allow-drops]\n";
      return 2;
    }
  }

  const auto terr = std::make_shared<const Terrain>(bench::make(Family::Fbm, cfg.grid));
  std::vector<std::string> patterns;
  if (cfg.pattern == "all") {
    patterns = {"hot", "churn", "mixed"};
  } else {
    patterns = {cfg.pattern};
  }

  bench::TimedCaseMap cases;
  u64 dropped = 0, errors = 0;
  for (const std::string& p : patterns) {
    // churn under a deliberately small budget so eviction is exercised.
    Config run_cfg = cfg;
    if (p == "churn") run_cfg.budget_mb = std::min<u64>(cfg.budget_mb, 2);
    RunResult r = run_pattern(run_cfg, p, terr);
    dropped += r.dropped;
    errors += r.errors;
    const std::string name =
        p + "/fbm/g" + std::to_string(cfg.grid) + "/w" + std::to_string(cfg.workers);
    std::cout << name << ": p50 " << r.counters["p50_ns"] / 1000 << "us  p99 "
              << r.counters["p99_ns"] / 1000 << "us  qps " << r.counters["qps"] << "  hits "
              << r.counters["cache_hits"] << "/" << r.counters["queries"] << "  evictions "
              << r.counters["evictions"] << "\n";
    cases[name] = std::move(r.counters);
  }

  bench::write_timed_json(cases,
                          {{"bench", "bench_service"},
                           {"host", bench::host_fingerprint()},
                           {"git_sha", bench::git_sha()},
                           {"timestamp_utc", bench::utc_timestamp()},
                           {"workers", std::to_string(cfg.workers)},
                           {"producers", std::to_string(cfg.producers)},
                           {"queries_per_pattern", std::to_string(cfg.queries)}},
                          cfg.out);
  std::cout << "wrote " << cases.size() << " cases to " << cfg.out << "\n";

  if (dropped != 0 || errors != 0) {
    std::cout << "service contract violation: " << dropped << " dropped, " << errors
              << " errored quer(ies)\n";
    if (!cfg.allow_drops) return 1;
  }
  return 0;
}
