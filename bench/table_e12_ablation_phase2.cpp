/// E12 — design ablation: what does the persistent structure buy phase 2?
/// Same algorithm, two oracles: Persistent (shared versions + pruned
/// descent, the paper's design) vs MaterializedScan (flatten the inherited
/// profile at every PCT node, scan linearly — the naive alternative whose
/// cost is Theta(sum over nodes |P_v|)). Outputs are bit-identical; cost is
/// not, and the gap widens with n.

#include "bench_util.hpp"

int main() {
  using namespace thsr;
  using namespace thsr::bench;
  print_header("E12", "design ablation (persistence in phase 2)",
               "persistent oracle ~ (n+k) polylog; materialize-per-node ~ sum|P_v| >> that");

  Table t({"family", "grid", "n", "k", "oracle", "phase2_ms", "total_ms", "oracle_steps",
           "same_output"});
  std::vector<std::pair<Family, u32>> cases{{Family::Fbm, 24},         {Family::Fbm, 48},
                                            {Family::Fbm, 96},         {Family::TerraceBack, 24},
                                            {Family::TerraceBack, 48}, {Family::TerraceBack, 96}};
  if (large()) cases.push_back({Family::TerraceBack, 128});
  for (const auto& [fam, g] : cases) {
    const Terrain terr = make(fam, g);
    const auto pers = solve_median3(
        terr, {.algorithm = Algorithm::Parallel, .phase2_oracle = Phase2Oracle::Persistent});
    const auto scan = solve_median3(
        terr, {.algorithm = Algorithm::Parallel, .phase2_oracle = Phase2Oracle::MaterializedScan});
    const bool same = !pers.map.first_difference(scan.map).has_value();
    const auto row = [&](const char* name, const HsrResult& r) {
      t.row({family_name(fam), Table::num(static_cast<long long>(g)),
             Table::num(static_cast<long long>(r.stats.n_edges)),
             Table::num(static_cast<long long>(r.stats.k_pieces)), name, ms(r.stats.phase2_s),
             ms(r.stats.total_s), Table::num(static_cast<long long>(r.stats.work[Op::OracleStep])),
             same ? "yes" : "NO"});
    };
    row("persistent", pers);
    row("materialized_scan", scan);
  }
  t.print_markdown(std::cout);
  t.maybe_write_csv("table_e12_ablation_phase2");
  return 0;
}
