/// micro_engine_reuse — amortized solve cost and allocation churn of the
/// session engine (src/core/engine.hpp, DESIGN.md section 1.2).
///
/// For each input: N one-shot hidden_surface_removal() calls (every call
/// pays preprocessing + fresh arenas) vs prepare() once + N warm
/// engine.solve() calls (preprocessing amortized, arena blocks and scratch
/// recycled) vs one solve_batch() of the same N solves fanned out over the
/// fork-join backend. Reported per solve: wall clock, persistent nodes
/// built, and arena blocks heap-allocated (PArena::allocated() churn —
/// zero for warm solves once the retained blocks cover the backend's
/// schedule; exactly zero in serial runs, which the bench_ci engine case
/// and tests/test_engine.cpp gate deterministically).
///
/// Results are bit-identical across the three columns (the engine
/// determinism contract, tests/test_engine.cpp); only time and allocation
/// traffic differ.

#include <chrono>
#include <iostream>

#include "bench_util.hpp"
#include "core/engine.hpp"

namespace {

struct WallTimer {
  std::chrono::steady_clock::time_point t0{std::chrono::steady_clock::now()};
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  }
};

}  // namespace

int main() {
  using namespace thsr;
  bench::print_header("ENGINE", "session reuse (DESIGN.md section 1.2)",
                      "prepare-once + warm solves amortize preprocessing and recycle arena "
                      "blocks; one-shot calls pay both every time");

  const int solves = bench::large() ? 16 : 8;
  Table table({"family", "grid", "mode", "ms/solve", "order ms", "treap nodes/solve",
               "blocks ever", "warm new blocks"});

  for (const u32 grid : {32u, 48u, 64u}) {
    const Terrain t = bench::make(Family::Fbm, grid);
    const HsrOptions opt{.algorithm = Algorithm::Parallel};

    // One-shot column: every call preprocesses and allocates from scratch.
    u64 oneshot_nodes = 0;
    double oneshot_s = 0, oneshot_order_s = 0;
    for (int i = 0; i < solves; ++i) {
      const HsrResult r = hidden_surface_removal(t, opt);
      oneshot_s += r.stats.total_s;
      oneshot_order_s += r.stats.order_s;
      oneshot_nodes += r.stats.treap_nodes;
    }

    // Warm-engine column: prepare once, recycle everything.
    HsrEngine engine;
    engine.prepare(t);
    (void)engine.solve(opt);  // cold solve sizes the arena
    const u64 blocks_cold = engine.arena_blocks();
    const u64 nodes_before = engine.arena_nodes();
    double warm_s = 0;
    for (int i = 0; i < solves; ++i) {
      HsrResult r = engine.solve(opt);
      warm_s += r.stats.total_s - r.stats.order_s;  // order time is amortized
      engine.recycle(std::move(r));
    }
    const u64 warm_new_blocks = engine.arena_blocks() - blocks_cold;
    const u64 warm_nodes = (engine.arena_nodes() - nodes_before) / solves;

    // Batch column: the same N solves as one fan-out.
    HsrEngine batch_engine;
    batch_engine.prepare(t);
    const std::vector<HsrOptions> opts(static_cast<std::size_t>(solves), opt);
    const WallTimer batch_timer;
    const auto batch = batch_engine.solve_batch(opts);
    const double batch_s = batch_timer.seconds();

    const auto count = [](u64 v) { return Table::num(static_cast<unsigned long long>(v)); };
    const std::string g = std::to_string(grid);
    table.row({"fbm", g, "one-shot", bench::ms(oneshot_s / solves),
               bench::ms(oneshot_order_s / solves),
               count(oneshot_nodes / static_cast<u64>(solves)), "n/a", "n/a"});
    table.row({"fbm", g, "engine warm", bench::ms(warm_s / solves),
               bench::ms(engine.prepare_seconds()), count(warm_nodes),
               count(engine.arena_blocks()), count(warm_new_blocks)});
    table.row({"fbm", g, "engine batch", bench::ms(batch_s / solves),
               bench::ms(batch_engine.prepare_seconds()), count(batch[0].stats.treap_nodes),
               "n/a", "n/a"});
  }

  table.print_markdown(std::cout);
  table.maybe_write_csv("micro_engine_reuse");
  return 0;
}
