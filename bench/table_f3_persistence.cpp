/// F3 — Figure 3 / reference [6]: the convex/profile structures of all
/// prefix profiles share storage persistently. Measured: nodes actually
/// allocated by path copying vs the sum of logical profile sizes a
/// copy-per-node implementation would materialize — the sharing factor the
/// persistence buys, plus bytes and per-splice copy costs.

#include "bench_util.hpp"
#include "persist/ptreap.hpp"

int main() {
  using namespace thsr;
  using namespace thsr::bench;
  print_header("F3", "Figure 3 (persistence)",
               "path-copied nodes << sum of logical profile sizes; O(log) copies per splice");

  Table t({"grid", "n", "k", "sum|P_v| (naive)", "nodes_created", "sharing_x", "nodes/splice",
           "MB_persistent"});
  std::vector<u32> grids{24, 48, 96};
  if (large()) grids.push_back(160);
  for (const u32 g : grids) {
    const Terrain terr = make(Family::Fbm, g);
    const HsrResult r = hidden_surface_removal(
        terr, {.algorithm = Algorithm::Parallel, .collect_layer_stats = true});
    u64 naive = 0, splices = 0;
    for (const LayerStats& l : r.stats.layers) {
      naive += l.profile_pieces;
      splices += l.splices;
    }
    t.row({Table::num(static_cast<long long>(g)),
           Table::num(static_cast<long long>(r.stats.n_edges)),
           Table::num(static_cast<long long>(r.stats.k_pieces)),
           Table::num(static_cast<long long>(naive)),
           Table::num(static_cast<long long>(r.stats.treap_nodes)),
           Table::num(static_cast<double>(naive) / static_cast<double>(r.stats.treap_nodes), 2),
           Table::num(static_cast<double>(r.stats.treap_nodes) /
                          static_cast<double>(std::max<u64>(1, splices)),
                      1),
           Table::num(static_cast<double>(r.stats.treap_nodes) * sizeof(PNode) / 1e6, 2)});
  }
  t.print_markdown(std::cout);
  t.maybe_write_csv("table_f3_persistence");
  return 0;
}
