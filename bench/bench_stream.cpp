/// bench_stream — out-of-core streaming lane (DESIGN.md section 1.11).
///
/// Exercises stream::stream_solve end to end and emits BENCH_STREAM.json
/// (timings + residency figures). Unlike bench_timed this lane carries two
/// hard gates, so its exit status is a real CI signal:
///
///  1. **Identity**: at a size where both paths fit in memory, the streamed
///     raster must be bit-identical to the monolithic solve
///     (terrain_from_rows + rasterize under the same window) for every
///     resident-slab budget tried, and the streamed counters must be
///     identical across budgets.
///  2. **Residency**: a tall synthetic DEM — around a hundred times the
///     rows of one slab window — streams from an actual .asc file with an
///     *enforced* resident-bytes budget (stream.hpp: exceeding it throws),
///     so the run completing at all bounds peak tracked residency.
///
/// Timings follow the bench_timed protocol (median/IQR over reps, pinned)
/// but are informational; only the two gates fail the build.
///
/// Usage:
///   bench_stream [--out BENCH_STREAM.json] [--reps 5] [--warmup 1]
///                [--quick] [--no-pin]
///
/// --quick shrinks the tall case (481 rows instead of 3489) and drops to
/// 3 reps — the ctest smoke configuration; CI runs the full protocol.

#include <cstdio>
#include <cstring>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "core/hsr.hpp"
#include "raster/raster.hpp"
#include "stream/sinks.hpp"
#include "stream/stream.hpp"
#include "stream_grids.hpp"
#include "timing.hpp"

namespace {

using namespace thsr;
using bench::TimedCaseMap;
using bench::TimedStats;

/// The enforced resident-bytes gate for the tall case, per resident slab:
/// a budget of B slabs keeps B recycled engines (arena + map) in flight,
/// so tracked residency scales linearly in B — ~5 MiB per slab on the
/// reference configuration. The bound leaves headroom for deliberate
/// tweaks but fails on anything that starts retaining freed slabs, maps,
/// or whole-image buffers — the failure modes streaming exists to avoid.
/// Independent of the grid's row count: that is the out-of-core claim.
constexpr u64 kResidentBytesGatePerSlab = 8ull << 20;

struct Config {
  std::string out = "BENCH_STREAM.json";
  int reps = 5;
  int warmup = 1;
  bool quick = false;
  bool pin = true;
};

stream::StreamOptions base_options(u32 slab_rows, u32 resident_slabs) {
  stream::StreamOptions opt;
  opt.slab_rows = slab_rows;
  opt.resident_slabs = resident_slabs;
  opt.width = 160;
  opt.height = 120;
  opt.supersample = 2;
  opt.solve.algorithm = Algorithm::Parallel;
  opt.solve.threads = 2;
  return opt;
}

/// Monolithic reference raster of `g` under the streaming lattice and the
/// exact window the pipeline derives (the comparison tests use too).
raster::ImageRaster monolithic_image(const AscGrid& g, const stream::StreamOptions& opt) {
  const Terrain terr = stream::terrain_from_rows(g.ncols, g.nrows, g.values, g.nodata);
  i64 z_lo = 0, z_hi = 0;
  bool any = false;
  for (const double v : g.values) {
    if (g.nodata && v == *g.nodata) continue;
    const i64 q = stream::quantize_height(v, opt.lattice);
    z_lo = any ? std::min(z_lo, q) : q;
    z_hi = any ? std::max(z_hi, q) : q;
    any = true;
  }
  const HsrResult solved = hidden_surface_removal(terr, opt.solve);
  raster::RasterOptions ropt;
  ropt.width = opt.width;
  ropt.height = opt.height;
  ropt.supersample = opt.supersample;
  ropt.window = stream::stream_window(g.ncols, g.nrows, z_lo, z_hi);
  ropt.threads = opt.solve.threads;
  return raster::rasterize(terr, solved.map, ropt);
}

/// Gate 1: streamed output bitwise-equal to the monolithic raster at every
/// resident-slab budget, counters identical across budgets. Returns the
/// number of violations.
int run_identity_gate(TimedCaseMap& cases) {
  const AscGrid g = bench::stream_grid(32, 48, /*seed=*/7);
  int failures = 0;
  stream::StreamOptions opt = base_options(/*slab_rows=*/8, /*resident_slabs=*/1);
  const raster::ImageRaster mono = monolithic_image(g, opt);
  std::optional<stream::StreamStats> first;
  for (const u32 B : {1u, 2u, 6u}) {
    opt.resident_slabs = B;
    stream::MemoryBandSink sink(opt.width, opt.height, opt.supersample);
    stream::GridRowSource src(g);
    const stream::StreamStats st = stream::stream_solve(src, opt, sink);
    const std::string name = "stream/synth/c32r48/s8/b" + std::to_string(B);
    const raster::ImageRaster& img = sink.image();
    if (img.ids != mono.ids || img.depth != mono.depth || img.coverage != mono.coverage) {
      std::cout << "FAIL  " << name << ": streamed raster differs from monolithic\n";
      ++failures;
    }
    if (img.crossings != mono.crossings || img.hit_samples != mono.hit_samples) {
      std::cout << "FAIL  " << name << ": raster counters differ from monolithic\n";
      ++failures;
    }
    if (!first) {
      first = st;
    } else if (!(st.work == first->work) || st.k_pieces != first->k_pieces ||
               st.crossings != first->crossings || st.hit_samples != first->hit_samples) {
      std::cout << "FAIL  " << name << ": counters depend on the resident-slab budget\n";
      ++failures;
    }
    cases[name]["peak_resident_bytes"] = st.peak_resident_bytes;
    cases[name]["slabs"] = st.slabs;
    cases[name]["bands_emitted"] = st.bands_emitted;
    cases[name]["k_pieces"] = st.k_pieces;
    cases[name]["crossings"] = st.crossings;
    cases[name]["hit_samples"] = st.hit_samples;
    cases[name]["work_total"] = st.work.total();
  }
  std::cout << "identity gate: streamed == monolithic at budgets {1,2,6}"
            << (failures ? " FAILED\n" : "\n");
  return failures;
}

/// Gate 2: the tall DEM streams out of an .asc file under the enforced
/// budget. Also the timed family: one median per resident-slab budget.
int run_tall_case(TimedCaseMap& cases, const Config& cfg) {
  const u32 rows = cfg.quick ? 481u : 3489u;
  const u32 slab_rows = 32;
  const AscGrid g = bench::stream_grid(32, rows, /*seed=*/11);
  const std::string asc_path = cfg.out + ".grid.asc";
  save_asc_grid(g, asc_path);
  int failures = 0;
  for (const u32 B : {1u, 2u, 4u}) {
    stream::StreamOptions opt = base_options(slab_rows, B);
    opt.resident_bytes_budget = u64{B} * kResidentBytesGatePerSlab;
    const std::string name =
        "stream/synth/c32r" + std::to_string(rows) + "/s" + std::to_string(slab_rows) + "/b" +
        std::to_string(B);
    stream::StreamStats st;
    std::vector<u64> ns;
    try {
      for (int i = 0; i < cfg.warmup + cfg.reps; ++i) {
        stream::NullBandSink sink;
        stream::AscFileRowSource src(asc_path);
        const auto t0 = std::chrono::steady_clock::now();
        st = stream::stream_solve(src, opt, sink);
        const auto t1 = std::chrono::steady_clock::now();
        if (i >= cfg.warmup) {
          ns.push_back(static_cast<u64>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count()));
        }
      }
    } catch (const std::exception& e) {
      std::cout << "FAIL  " << name << ": " << e.what() << "\n";
      ++failures;
      continue;
    }
    const TimedStats s = bench::stats_of(std::move(ns));
    cases[name]["median_ns"] = s.median_ns;
    cases[name]["iqr_ns"] = s.iqr_ns;
    cases[name]["mad_ns"] = s.mad_ns;
    cases[name]["min_ns"] = s.min_ns;
    cases[name]["reps"] = s.reps;
    cases[name]["slabs"] = st.slabs;
    cases[name]["rows_read"] = st.rows_read;
    cases[name]["triangles"] = st.triangles;
    cases[name]["k_pieces"] = st.k_pieces;
    cases[name]["peak_resident_bytes"] = st.peak_resident_bytes;
    cases[name]["max_rss_bytes"] = st.max_rss_bytes;
    std::cout << "  " << name << ": median " << s.median_ns / 1000000 << " ms, " << st.slabs
              << " slabs, peak resident " << st.peak_resident_bytes / 1024 << " KiB (budget "
              << (u64{B} * kResidentBytesGatePerSlab) / 1024 << " KiB), max rss "
              << st.max_rss_bytes / (1 << 20) << " MiB\n";
  }
  std::remove(asc_path.c_str());
  std::cout << "residency gate: " << rows << "-row DEM vs " << (slab_rows + 2)
            << "-row slab windows under " << (kResidentBytesGatePerSlab >> 20)
            << " MiB per resident slab" << (failures ? " FAILED\n" : "\n");
  return failures;
}

}  // namespace

int main(int argc, char** argv) {
  Config cfg;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (arg == "--out") {
      if (const char* v = next()) cfg.out = v;
    } else if (arg == "--reps") {
      if (const char* v = next()) cfg.reps = std::atoi(v);
    } else if (arg == "--warmup") {
      if (const char* v = next()) cfg.warmup = std::atoi(v);
    } else if (arg == "--quick") {
      cfg.quick = true;
      cfg.reps = 3;
    } else if (arg == "--no-pin") {
      cfg.pin = false;
    } else {
      std::cerr << "usage: bench_stream [--out FILE] [--reps N] [--warmup N] [--quick] "
                   "[--no-pin]\n";
      return 2;
    }
  }
  if (cfg.reps < 1 || cfg.warmup < 0) {
    std::cerr << "bench_stream: --reps must be >= 1 and --warmup >= 0\n";
    return 2;
  }

  const bool pinned = cfg.pin && thsr::bench::pin_this_thread();
  std::cout << "bench_stream: " << cfg.reps << " reps, " << cfg.warmup << " warmup, "
            << (pinned ? "pinned" : "unpinned") << (cfg.quick ? ", quick" : "") << "\n";

  TimedCaseMap cases;
  const int identity_failures = run_identity_gate(cases);
  const int residency_failures = run_tall_case(cases, cfg);

  std::map<std::string, std::string> meta;
  meta["git_sha"] = thsr::bench::git_sha();
  meta["host"] = thsr::bench::host_fingerprint();
  meta["pinned"] = pinned ? "1" : "0";
  meta["reps"] = std::to_string(cfg.reps);
  meta["warmup"] = std::to_string(cfg.warmup);
  meta["quick"] = cfg.quick ? "1" : "0";
  meta["resident_bytes_gate_per_slab"] = std::to_string(kResidentBytesGatePerSlab);
  meta["timestamp"] = thsr::bench::utc_timestamp();
  thsr::bench::write_timed_json(cases, meta, cfg.out);
  std::cout << "wrote " << cases.size() << " cases to " << cfg.out << "\n";

  const int failures = identity_failures + residency_failures;
  if (failures) std::cout << failures << " streaming gate violation(s)\n";
  return failures ? 1 : 0;
}
