/// Micro-kernels: first-crossing / transition-walk oracles (Lemmas 3.2-3.6).

#include <benchmark/benchmark.h>

#include <random>

#include "cg/hull_tree.hpp"
#include "cg/profile_query.hpp"
#include "envelope/build.hpp"
#include "test_support_random.hpp"

namespace {

using namespace thsr;
using thsr::bench::random_segments_for_bench;

struct Fixture {
  std::vector<Seg2> segs;
  std::vector<u32> ids;
  Envelope env;
  PArena arena;
  ptreap::Ref prof;
  std::vector<Seg2> queries;

  explicit Fixture(std::size_t m) {
    segs = random_segments_for_bench(m, 17);
    ids.resize(m);
    for (u32 i = 0; i < m; ++i) ids[i] = i;
    env = envelope_of(ids, segs);
    prof = ptreap::make_floor(arena);
    for (const EnvPiece& p : env.pieces()) {
      const PieceData run{p.y0, p.y1, p.edge};
      prof = ptreap::replace_range(arena, prof, p.y0, p.y1, std::span(&run, 1), segs);
    }
    queries = random_segments_for_bench(1024, 23);
  }
};

void BM_HullTreeFirstCrossing(benchmark::State& state) {
  Fixture f(static_cast<std::size_t>(state.range(0)));
  const HullTree tree(f.env, f.segs);
  std::size_t qi = 0;
  for (auto _ : state) {
    const Seg2& q = f.queries[qi++ % f.queries.size()];
    benchmark::DoNotOptimize(tree.first_crossing(q, QY::of(q.u0), QY::of(q.u1)));
  }
}
BENCHMARK(BM_HullTreeFirstCrossing)->Arg(1 << 10)->Arg(1 << 14);

void BM_PersistentWalk(benchmark::State& state) {
  Fixture f(static_cast<std::size_t>(state.range(0)));
  std::size_t qi = 0;
  std::vector<TransitionEvent> ev;
  for (auto _ : state) {
    const Seg2& q = f.queries[qi++ % f.queries.size()];
    ev.clear();
    benchmark::DoNotOptimize(
        walk_transitions(f.prof, q, QY::of(q.u0), QY::of(q.u1), f.segs, ev));
  }
}
BENCHMARK(BM_PersistentWalk)->Arg(1 << 10)->Arg(1 << 14);

void BM_ExactPredicate(benchmark::State& state) {
  const auto segs = random_segments_for_bench(1024, 29);
  std::size_t i = 0;
  const QY y(12345, 67);
  for (auto _ : state) {
    const Seg2& a = segs[i % segs.size()];
    const Seg2& b = segs[(i * 7 + 1) % segs.size()];
    benchmark::DoNotOptimize(cmp_value_at(a, b, y));
    ++i;
  }
}
BENCHMARK(BM_ExactPredicate);

void BM_LineCrossing(benchmark::State& state) {
  const auto segs = random_segments_for_bench(1024, 31);
  std::size_t i = 0;
  for (auto _ : state) {
    const Seg2& a = segs[i % segs.size()];
    const Seg2& b = segs[(i * 13 + 5) % segs.size()];
    benchmark::DoNotOptimize(line_crossing(a, b));
    ++i;
  }
}
BENCHMARK(BM_LineCrossing);

}  // namespace
