/// E11 — section 3 step 1 / Fact 1 (Tamassia–Vitter separator tree):
/// this repo substitutes a sequential O(n log n) sweep + toposort (output-
/// invariant, DESIGN.md section 4.2). Measured: near n·log n scaling of the
/// ordering step and its share of the end-to-end runtime.

#include "bench_util.hpp"
#include "separator/depth_order.hpp"

#include <chrono>

int main() {
  using namespace thsr;
  using namespace thsr::bench;
  print_header("E11", "Fact 1 substitution",
               "ordering ~ n log n and a modest share of end-to-end time");

  Table t({"grid", "n", "order_ms", "ms/(n log2 n)*1e6", "constraints/n", "share_of_total"});
  std::vector<u32> grids{24, 48, 96, 128};
  if (large()) grids.push_back(176);
  for (const u32 g : grids) {
    const Terrain terr = make(Family::Fbm, g);
    const auto t0 = std::chrono::steady_clock::now();
    const DepthOrder d = compute_depth_order(terr);
    const double order_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    const HsrResult r = hidden_surface_removal(terr, {.algorithm = Algorithm::Parallel});
    const double n = static_cast<double>(terr.edge_count());
    t.row({Table::num(static_cast<long long>(g)),
           Table::num(static_cast<long long>(terr.edge_count())),
           ms(order_s), Table::num(order_s * 1e9 / (n * log2d(n)), 2),
           Table::num(static_cast<double>(d.constraints) / n, 2),
           Table::num(order_s / r.stats.total_s, 3)});
  }
  t.print_markdown(std::cout);
  t.maybe_write_csv("table_e11_order");
  return 0;
}
