/// E5 — Lemma 3.1: the profile (upper envelope) of m segments is built in
/// O(log^2 m) steps with O(m alpha(m)/log m) processors. Measured: envelope
/// size stays ~linear in m (the Davenport–Schinzel alpha(m) factor is flat),
/// serial build scales ~m log m, task-parallel build beats it at scale.

#include <chrono>

#include "bench_util.hpp"
#include "envelope/build.hpp"
#include "test_support_random.hpp"

int main() {
  using namespace thsr;
  using namespace thsr::bench;
  print_header("E5", "Lemma 3.1",
               "envelope size O(m alpha(m)) ~ linear; D&C build, parallel speedup");

  Table t({"source", "m", "env_pieces", "pieces/m", "serial_ms", "parallel_ms", "speedup"});
  const auto time_s = [](auto&& fn) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  };

  std::vector<std::size_t> sizes{1'000, 4'000, 16'000, 64'000};
  if (large()) sizes.push_back(256'000);
  for (const std::size_t m : sizes) {
    const auto segs = random_segments_for_bench(m, 42);
    std::vector<u32> ids(m);
    for (u32 i = 0; i < m; ++i) ids[i] = i;
    Envelope serial, parallel;
    const double ts = time_s([&] { serial = envelope_of(ids, segs, false); });
    const double tp = time_s([&] { parallel = envelope_of(ids, segs, true); });
    t.row({"random", Table::num(static_cast<long long>(m)),
           Table::num(static_cast<long long>(serial.size())),
           Table::num(static_cast<double>(serial.size()) / static_cast<double>(m), 3), ms(ts),
           ms(tp), Table::num(ts / tp, 2)});
  }
  // Terrain edge sets (shared endpoints; the algorithm's real input).
  for (const u32 g : {32u, 64u, 96u}) {
    const Terrain terr = make(Family::Fbm, g);
    std::vector<Seg2> segs(terr.edge_count(), Seg2{0, 0, 1, 0});
    std::vector<u32> ids;
    for (u32 e = 0; e < terr.edge_count(); ++e) {
      if (!terr.is_sliver(e)) {
        segs[e] = terr.image_segment(e);
        ids.push_back(e);
      }
    }
    Envelope serial, parallel;
    const double ts = time_s([&] { serial = envelope_of(ids, segs, false); });
    const double tp = time_s([&] { parallel = envelope_of(ids, segs, true); });
    t.row({"terrain", Table::num(static_cast<long long>(ids.size())),
           Table::num(static_cast<long long>(serial.size())),
           Table::num(static_cast<double>(serial.size()) / static_cast<double>(ids.size()), 3),
           ms(ts), ms(tp), Table::num(ts / tp, 2)});
  }
  t.print_markdown(std::cout);
  t.maybe_write_csv("table_e5_envelope");
  return 0;
}
