#pragma once
/// Platform-deterministic synthetic DEM grids for the streaming lane
/// (bench_ci stream/* cases, bench_stream, bench_timed).
///
/// Heights are built from triangle waves and splitmix64 integer-hash noise
/// only — plain IEEE add/mul/divide, no libm transcendentals — so the
/// quantized lattice, and therefore every streamed counter, is bit-identical
/// across hosts and toolchains (the property the shared baseline needs).

#include "terrain/asc_io.hpp"

namespace thsr::bench {

inline u64 splitmix64(u64 x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Exact dyadic hash noise in [0, 1): 53 hashed bits scaled by 2^-53.
inline double hash01(u64 seed, u64 r, u64 c) {
  const u64 h = splitmix64(seed ^ splitmix64((r << 32) | (c & 0xffffffffull)));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

/// Triangle wave in [0, 1] with the given half-period (integer ramps, so
/// the division by `period` is exact for the small periods used here).
inline double tri_wave(u64 i, u64 period) {
  const u64 m = i % (2 * period);
  const u64 d = m < period ? m : 2 * period - m;
  return static_cast<double>(d) / static_cast<double>(period);
}

/// A terrain-like DEM for the streaming lattice (columns are viewing
/// depth): short ridges across the columns occlude each other, a long
/// swell runs down the rows, and hash noise breaks every tie.
inline AscGrid stream_grid(u32 cols, u32 rows, u64 seed) {
  AscGrid g;
  g.ncols = cols;
  g.nrows = rows;
  g.cellsize = 1.0;
  g.values.resize(std::size_t{cols} * rows);
  for (u32 r = 0; r < rows; ++r) {
    for (u32 c = 0; c < cols; ++c) {
      const double ridge = 36.0 * tri_wave(c, 9);
      const double swell = 18.0 * tri_wave(r, 57);
      const double noise = 9.0 * hash01(seed, r, c);
      g.values[std::size_t{r} * cols + c] = ridge + swell + noise;
    }
  }
  return g;
}

}  // namespace thsr::bench
