#pragma once
/// Shared helpers for the table benches.

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "core/hsr.hpp"
#include "io/csv.hpp"
#include "terrain/generators.hpp"

namespace thsr::bench {

/// Larger sweeps when THSR_BENCH_LARGE=1.
inline bool large() {
  const char* v = std::getenv("THSR_BENCH_LARGE");
  return v && std::string(v) == "1";
}

/// The backends whose p-scaling is worth tabulating (Serial scales by
/// definition not at all; benches add it as an explicit baseline row
/// where useful).
inline std::vector<par::Backend> scaling_backends() {
  std::vector<par::Backend> out = par::available_backends();
  std::erase(out, par::Backend::Serial);
  return out;
}

inline Terrain make(Family f, u32 grid, u64 seed = 1, double spike_density = 0.05) {
  GenOptions opt;
  opt.family = f;
  opt.grid = grid;
  opt.seed = seed;
  opt.amplitude = 4 * grid;
  opt.spike_density = spike_density;
  return make_terrain(opt);
}

inline double log2d(double v) { return std::log2(std::max(2.0, v)); }

/// Median-of-3 run: repeats the solve and returns the result whose total
/// time is the median (work counters are deterministic; only wall clock
/// varies run to run).
inline HsrResult solve_median3(const Terrain& t, const HsrOptions& opt) {
  std::vector<HsrResult> runs;
  runs.reserve(3);
  for (int i = 0; i < 3; ++i) runs.push_back(hidden_surface_removal(t, opt));
  std::sort(runs.begin(), runs.end(),
            [](const HsrResult& a, const HsrResult& b) {
              return a.stats.total_s < b.stats.total_s;
            });
  return std::move(runs[1]);
}

inline std::string ms(double seconds) { return Table::num(seconds * 1e3, 2); }

inline void print_header(const char* id, const char* paper_artefact, const char* claim) {
  std::cout << "## " << id << " — " << paper_artefact << "\n"
            << "claim: " << claim << "\n\n";
  // Spin up the backend's workers and warm caches so the first table row is
  // not charged the one-time thread-creation cost.
  const Terrain warmup = make(Family::Fbm, 16);
  (void)hidden_surface_removal(warmup, {.algorithm = Algorithm::Parallel});
}

}  // namespace thsr::bench
