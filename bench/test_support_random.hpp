#pragma once
/// Deterministic random segment soup for benches: a thin wrapper over the
/// shared generator (support/random_segments.hpp) keeping this header's
/// historical signature and default range. No gtest dependency.

#include <vector>

#include "support/random_segments.hpp"

namespace thsr::bench {

inline std::vector<Seg2> random_segments_for_bench(std::size_t n, u64 seed, i64 range = 100'000) {
  return support::random_segments(seed, n, range);
}

}  // namespace thsr::bench
