#pragma once
/// Deterministic random segment soup for benches (mirrors tests/test_util
/// without a gtest dependency).

#include <random>
#include <vector>

#include "geometry/predicates.hpp"

namespace thsr::bench {

inline std::vector<Seg2> random_segments_for_bench(std::size_t n, u64 seed, i64 range = 100'000) {
  std::mt19937_64 g{seed};
  std::uniform_int_distribution<i64> coord(-range, range);
  std::vector<Seg2> out;
  out.reserve(n);
  while (out.size() < n) {
    const i64 u0 = coord(g), u1 = coord(g);
    if (u0 == u1) continue;
    const i64 v0 = coord(g), v1 = coord(g);
    out.push_back(u0 < u1 ? Seg2{u0, v0, u1, v1} : Seg2{u1, v1, u0, v0});
  }
  return out;
}

}  // namespace thsr::bench
