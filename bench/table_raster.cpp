/// RASTER — image-space rasterization throughput (DESIGN.md 1.8): how the
/// scan-converter scales with resolution, supersampling, worker count,
/// and sharding. The solved map is fixed per grid, so the interesting
/// columns are raster wall clock and sample throughput; `crossings` is
/// the machine/backend/p-independent work signal bench_ci gates, and
/// `hit%` sanity-checks that resolutions see the same scene. The sharded
/// rows rasterize per-slab maps into disjoint column bands (no stitch)
/// and must reproduce the monolithic image bit-for-bit.

#include <chrono>
#include <vector>

#include "bench_util.hpp"
#include "core/engine.hpp"
#include "parallel/backend.hpp"
#include "raster/raster.hpp"
#include "shard/sharded_engine.hpp"

namespace {

using namespace thsr;

double median3_raster_seconds(const Terrain& t, const VisibilityMap& m,
                              const raster::RasterOptions& opt) {
  std::vector<double> runs;
  for (int i = 0; i < 3; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    (void)raster::rasterize(t, m, opt);
    runs.push_back(std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count());
  }
  std::sort(runs.begin(), runs.end());
  return runs[1];
}

}  // namespace

int main() {
  using namespace thsr::bench;
  print_header("RASTER", "image-space products (DESIGN.md 1.8)",
               "raster wall clock scales with output pixels and p at fixed crossings; "
               "sharded bands reproduce the monolithic image bit-for-bit");

  const int hw = par::max_threads();
  const int pmax = std::max(4, hw);
  std::vector<u32> grids{64};
  if (large()) grids.push_back(128);

  Table t({"grid", "n_tris", "WxH", "s", "p", "raster_ms", "Msamp/s", "crossings", "hit%",
           "sharded8_ms", "equal"});
  for (const u32 g : grids) {
    const Terrain terr = make(Family::Fbm, g);
    HsrEngine engine;
    engine.prepare(terr);
    const HsrResult solved = engine.solve({.algorithm = Algorithm::Parallel});

    shard::ShardedEngine sharded;
    sharded.prepare(terr, 8);
    const auto per_slab = sharded.solve_slabs();
    std::vector<const VisibilityMap*> slab_maps(per_slab.size(), nullptr);
    for (std::size_t s = 0; s < per_slab.size(); ++s) {
      if (per_slab[s]) slab_maps[s] = &per_slab[s]->map;
    }

    struct Shape {
      u32 w, h, s;
    };
    std::vector<Shape> shapes{{160, 120, 1}, {320, 240, 1}, {320, 240, 2}};
    if (large()) shapes.push_back({640, 480, 2});
    for (const Shape& sh : shapes) {
      for (int p = 1; p <= pmax; p *= 2) {
        raster::RasterOptions opt;
        opt.width = sh.w;
        opt.height = sh.h;
        opt.supersample = sh.s;
        opt.threads = p;
        const raster::ImageRaster img = raster::rasterize(terr, solved.map, opt);
        const double sec = median3_raster_seconds(terr, solved.map, opt);

        const auto t0 = std::chrono::steady_clock::now();
        const raster::ImageRaster banded =
            raster::rasterize_sharded(sharded.plan(), slab_maps, opt);
        const double shard_sec =
            std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
        const bool equal = banded.ids == img.ids && banded.depth == img.depth &&
                           banded.coverage == img.coverage;

        t.row({Table::num(static_cast<long long>(g)),
               Table::num(static_cast<long long>(terr.triangle_count())),
               std::to_string(sh.w) + "x" + std::to_string(sh.h),
               Table::num(static_cast<long long>(sh.s)),
               Table::num(static_cast<long long>(p)), ms(sec),
               Table::num(static_cast<double>(img.samples) / sec / 1e6, 2),
               Table::num(static_cast<unsigned long long>(img.crossings)),
               Table::num(100.0 * static_cast<double>(img.hit_samples) /
                              static_cast<double>(img.samples),
                          1),
               ms(shard_sec), equal ? "yes" : "NO"});
      }
    }
  }
  t.print_markdown(std::cout);
  t.maybe_write_csv("table_raster");
  std::cout << "\nnote: crossings and hit% are machine/backend/p-independent (bench_ci gates "
               "the raster/* cases); `equal` must read `yes` in every row — the sharded "
               "no-stitch raster contract. hardware exposes "
            << hw << " workers.\n";
  return 0;
}
