/// E9 — Lemmas 2.1/2.2 (Brent slow-down with explicit processor
/// allocation): executing N unequal tasks on p workers costs
/// t_{p,N} + N·t/p. Measured: the scheduler-overhead term t_{p,N} per
/// backend (OpenMP's four schedules; the pool's dynamic-chunk analogue of
/// each), against task count and skew — the justification for realizing
/// the paper's processor allocation with dynamic scheduling.

#include <random>

#include "bench_util.hpp"
#include "parallel/backend.hpp"
#include "parallel/task_allocator.hpp"

int main() {
  using namespace thsr;
  using namespace thsr::bench;
  print_header("E9", "Lemmas 2.1/2.2",
               "allocation overhead t_{p,N} small and ~linear in N; dynamic handles skew");

  const int p = par::max_threads();
  const par::Backend prev = par::backend();
  Table t({"tasks", "skew", "backend", "schedule", "serial_ms", "wall_ms", "ideal_ms",
           "overhead_ms", "efficiency"});
  std::mt19937_64 g{7};
  for (const std::size_t n : {200ul, 2'000ul, 20'000ul}) {
    for (const bool skewed : {false, true}) {
      std::vector<u32> costs(n, 2'000);
      if (skewed) {
        std::uniform_int_distribution<u32> d(100, 40'000);
        for (auto& c : costs) c = d(g);
      }
      for (const par::Backend b : scaling_backends()) {
        par::set_backend(b);
        for (const auto sched : {par::Schedule::StaticBlock, par::Schedule::StaticCyclic,
                                 par::Schedule::Dynamic, par::Schedule::Guided}) {
          const auto rep = par::run_synthetic_tasks(costs, p, sched);
          t.row({Table::num(static_cast<long long>(n)), skewed ? "yes" : "no",
                 par::backend_name(b), par::schedule_name(sched), ms(rep.serial_s),
                 ms(rep.wall_s), ms(rep.ideal_s), ms(rep.overhead_s),
                 Table::num(rep.ideal_s / rep.wall_s, 2)});
        }
      }
    }
  }
  par::set_backend(prev);
  t.print_markdown(std::cout);
  t.maybe_write_csv("table_e9_slowdown");
  return 0;
}
