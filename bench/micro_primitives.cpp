/// Micro-kernels: the PRAM-style parallel primitives (scan / merge / sort).

#include <benchmark/benchmark.h>

#include <numeric>
#include <random>

#include "parallel/merge_sort.hpp"
#include "parallel/scan.hpp"

namespace {

using namespace thsr;

void BM_ExclusiveScan(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<u64> xs(n, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(par::exclusive_scan(xs));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<i64>(n));
}
BENCHMARK(BM_ExclusiveScan)->Arg(1 << 12)->Arg(1 << 18)->Arg(1 << 22);

void BM_ParallelMerge(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::mt19937_64 g{3};
  std::vector<long> a(n), b(n), out(2 * n);
  for (auto& x : a) x = static_cast<long>(g());
  for (auto& x : b) x = static_cast<long>(g());
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  for (auto _ : state) {
    par::parallel_merge<long>(a, b, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<i64>(2 * n));
}
BENCHMARK(BM_ParallelMerge)->Arg(1 << 14)->Arg(1 << 20);

void BM_ParallelSort(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::mt19937_64 g{5};
  std::vector<long> base(n);
  for (auto& x : base) x = static_cast<long>(g());
  for (auto _ : state) {
    state.PauseTiming();
    std::vector<long> xs = base;
    state.ResumeTiming();
    par::parallel_sort<long>(xs);
    benchmark::DoNotOptimize(xs.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<i64>(n));
}
BENCHMARK(BM_ParallelSort)->Arg(1 << 14)->Arg(1 << 20);

}  // namespace
