/// F4 — y-slab sharding (DESIGN.md section 1.7): how data decomposition
/// trades edge duplication for smaller per-slab subproblems, across slab
/// count S and worker count p. The stitched map is invariant (the
/// equivalence contract), so the interesting columns are the duplication
/// factor, the *counted* work ratio against the monolithic solve (S=1) —
/// which bench_ci gates against the duplication bound — and wall clock:
/// per-slab depth orders and profiles shrink with S, so counted work can
/// even fall below monolithic while duplication grows.

#include "bench_util.hpp"
#include "parallel/backend.hpp"
#include "shard/sharded_engine.hpp"

namespace {

using namespace thsr;

/// Median-of-3 wall clock for one prepared engine + option set (counters
/// are deterministic; only wall clock varies).
HsrResult solve_median3(shard::ShardedEngine& engine, const HsrOptions& opt) {
  std::vector<HsrResult> runs;
  runs.reserve(3);
  for (int i = 0; i < 3; ++i) runs.push_back(engine.solve(opt));
  std::sort(runs.begin(), runs.end(), [](const HsrResult& a, const HsrResult& b) {
    return a.stats.total_s < b.stats.total_s;
  });
  return std::move(runs[1]);
}

}  // namespace

int main() {
  using namespace thsr::bench;
  print_header("F4", "y-slab sharding (DESIGN.md 1.7)",
               "stitched output invariant; counted work within the duplication bound of "
               "monolithic; wall clock falls with S*p until duplication wins");

  const int hw = par::max_threads();
  const int pmax = std::max(4, hw);
  std::vector<u32> grids{64};
  if (large()) grids.push_back(128);

  Table t({"grid", "n", "S", "dup", "prepare_ms", "p", "solve_ms", "speedup", "work_ops",
           "work_ratio", "k_pieces"});
  for (const u32 g : grids) {
    const Terrain terr = make(Family::Fbm, g);
    double mono_work = 0, base_s = 0;
    for (const u32 S : {1u, 2u, 4u, 8u, 16u}) {
      shard::ShardedEngine engine;
      engine.prepare(terr, S);
      for (int p = 1; p <= pmax; p *= 2) {
        const HsrResult r =
            solve_median3(engine, {.algorithm = Algorithm::Parallel, .threads = p});
        const double solve_s = r.stats.total_s - r.stats.order_s;
        const auto work = static_cast<double>(r.stats.work.total());
        if (S == 1 && p == 1) {
          mono_work = work;
          base_s = solve_s;
        }
        t.row({Table::num(static_cast<long long>(g)),
               Table::num(static_cast<long long>(r.stats.n_edges)),
               Table::num(static_cast<long long>(S)),
               Table::num(engine.plan().duplication_factor(), 3),
               Table::num(engine.prepare_seconds() * 1e3, 2),
               Table::num(static_cast<long long>(p)), ms(solve_s),
               Table::num(base_s / solve_s, 2),
               Table::num(static_cast<long long>(r.stats.work.total())),
               Table::num(work / mono_work, 3),
               Table::num(static_cast<long long>(r.stats.k_pieces))});
      }
    }
  }
  t.print_markdown(std::cout);
  t.maybe_write_csv("table_f4_sharding");
  std::cout << "\nnote: work_ops is machine/backend/p-independent (per-slab solves count on "
               "their own\nthreads and sum deterministically); work_ratio is gated in CI "
               "against the duplication\nbound (bench_ci shard/* cases). hardware exposes "
            << hw << " workers.\n";
  return 0;
}
