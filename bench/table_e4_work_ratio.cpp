/// E4 — the paper's final Remark: with p = n alpha(n)/log n processors the
/// parallel work is O((k + n alpha(n)) log^3 n), within an O(log n) factor
/// of the sequential Reif–Sen bound. Measured: ratio of counted operations
/// (parallel / sequential) should grow no faster than ~log n.

#include "bench_util.hpp"

int main() {
  using namespace thsr;
  using namespace thsr::bench;
  print_header("E4", "final Remark",
               "parallel work within O(log n) of the sequential algorithm");

  Table t({"grid", "n", "k", "ops_seq", "ops_par", "ratio", "log2(n)", "ratio/log2(n)"});
  std::vector<u32> grids{16, 24, 32, 48, 64};
  if (large()) grids.push_back(96);
  for (const u32 g : grids) {
    const Terrain terr = make(Family::Fbm, g);
    const auto seq = hidden_surface_removal(terr, {.algorithm = Algorithm::Sequential});
    const auto par = hidden_surface_removal(terr, {.algorithm = Algorithm::Parallel});
    const double os = static_cast<double>(seq.stats.work.total());
    const double op = static_cast<double>(par.stats.work.total());
    const double l = log2d(static_cast<double>(par.stats.n_edges));
    t.row({Table::num(static_cast<long long>(g)),
           Table::num(static_cast<long long>(par.stats.n_edges)),
           Table::num(static_cast<long long>(par.stats.k_pieces)),
           Table::num(static_cast<long long>(seq.stats.work.total())),
           Table::num(static_cast<long long>(par.stats.work.total())), Table::num(op / os, 2),
           Table::num(l, 2), Table::num(op / os / l, 3)});
  }
  t.print_markdown(std::cout);
  t.maybe_write_csv("table_e4_work_ratio");
  return 0;
}
