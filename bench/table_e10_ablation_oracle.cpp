/// E10 — design ablation for the DESIGN.md section 1 substitution: first-
/// crossing queries against a profile, three ways. `naive` scans pieces
/// linearly; `hull_tree` is the paper-faithful static ACG (convex-chain
/// pruning, O(log^2)); `persistent` is the z-box-pruned descent over the
/// persistent treap used inside phase 2. Reports average query time and
/// visited nodes per query at growing profile size.

#include <chrono>
#include <random>

#include "bench_util.hpp"
#include "cg/hull_tree.hpp"
#include "cg/profile_query.hpp"
#include "envelope/build.hpp"
#include "parallel/work_depth.hpp"
#include "test_support_random.hpp"

namespace {

using namespace thsr;

// Naive reference oracle: linear scan for the first crossing.
std::optional<QY> naive_first_crossing(const Envelope& env, std::span<const Seg2> segs,
                                       const Seg2& s, const QY& from, const QY& to, u64& steps) {
  for (const EnvPiece& p : env.pieces()) {
    ++steps;
    const QY lo = qmax(from, p.y0), hi = qmin(to, p.y1);
    if (!(lo < hi)) continue;
    if (auto cr = crossing_in(s, segs[p.edge], lo, hi)) return cr;
  }
  return std::nullopt;
}

}  // namespace

int main() {
  using namespace thsr;
  using namespace thsr::bench;
  print_header("E10", "DESIGN.md section 1 (oracle substitution)",
               "hull-tree ACG and persistent descent are polylog; naive is linear");

  Table t({"m_pieces", "oracle", "us/query", "steps/query", "hits"});
  std::vector<u32> grids{24, 48, 96};
  if (large()) grids.push_back(160);
  for (const u32 g : grids) {
    const Terrain terr = make(Family::Fbm, g);
    std::vector<Seg2> segs(terr.edge_count(), Seg2{0, 0, 1, 0});
    std::vector<u32> ids;
    for (u32 e = 0; e < terr.edge_count(); ++e) {
      if (!terr.is_sliver(e)) {
        segs[e] = terr.image_segment(e);
        ids.push_back(e);
      }
    }
    const Envelope env = envelope_of(ids, segs);
    const HullTree tree(env, segs);
    PArena arena;
    ptreap::Ref prof = ptreap::make_floor(arena);
    for (const EnvPiece& p : env.pieces()) {
      const PieceData run{p.y0, p.y1, p.edge};
      prof = ptreap::replace_range(arena, prof, p.y0, p.y1, std::span(&run, 1), segs);
    }

    // Query soup: random chords across the profile's bounding box.
    std::mt19937_64 rg{g};
    const i64 ylo = terr.min_y(), yhi = terr.max_y();
    std::uniform_int_distribution<i64> ys(ylo, yhi), zs(0, 8 * g);
    std::vector<Seg2> queries;
    while (queries.size() < 2000) {
      const i64 a = ys(rg), b = ys(rg);
      if (a == b) continue;
      const i64 za = zs(rg), zb = zs(rg);
      queries.push_back(a < b ? Seg2{a, za, b, zb} : Seg2{b, zb, a, za});
    }

    const auto run_oracle = [&](const char* name, auto&& fn) {
      work::reset();
      u64 steps = 0, hits = 0;
      const auto t0 = std::chrono::steady_clock::now();
      for (const Seg2& q : queries) hits += fn(q, steps);
      const double el =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
      const Counters c = work::snapshot();
      const u64 total_steps = steps ? steps : c[Op::OracleStep];
      t.row({Table::num(static_cast<long long>(env.size())), name,
             Table::num(el * 1e6 / static_cast<double>(queries.size()), 2),
             Table::num(static_cast<double>(total_steps) / static_cast<double>(queries.size()), 1),
             Table::num(static_cast<long long>(hits))});
    };

    run_oracle("naive", [&](const Seg2& q, u64& steps) {
      return naive_first_crossing(env, segs, q, QY::of(q.u0), QY::of(q.u1), steps).has_value();
    });
    run_oracle("hull_tree", [&](const Seg2& q, u64&) {
      return tree.first_crossing(q, QY::of(q.u0), QY::of(q.u1)).has_value();
    });
    run_oracle("persistent", [&](const Seg2& q, u64&) {
      std::vector<TransitionEvent> ev;
      walk_transitions(prof, q, QY::of(q.u0), QY::of(q.u1), segs, ev);
      return !ev.empty();
    });
  }
  t.print_markdown(std::cout);
  t.maybe_write_csv("table_e10_ablation_oracle");
  std::cout << "\nnote: 'persistent' walks report *all* transitions, not just the first —\n"
               "their step counts upper-bound a first-crossing query.\n";
  return 0;
}
