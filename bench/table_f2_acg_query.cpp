/// F2 — Figure 2 + Lemmas 3.2/3.6: first-crossing detection through the
/// (augmented) Chazelle–Guibas structure is polylogarithmic, and all k_s
/// crossings of a segment follow either by walking (k_s queries) or by the
/// paper's parallel split-at-the-middle-diagonal recursion. Measured: node
/// visits per query vs log^2 m, and walk vs split work for all-crossings.

#include <chrono>
#include <random>

#include "bench_util.hpp"
#include "cg/all_crossings.hpp"
#include "envelope/build.hpp"

int main() {
  using namespace thsr;
  using namespace thsr::bench;
  print_header("F2", "Figure 2, Lemmas 3.2/3.6",
               "ACG first-crossing visits ~ polylog(m); split recursion matches walk");

  Table t({"m_pieces", "visits/query", "log2^2(m)", "visits/log2^2", "walk_us", "split_us",
           "split_par_us", "avg_k_s"});
  std::vector<u32> grids{24, 48, 96};
  if (large()) grids.push_back(160);
  for (const u32 g : grids) {
    const Terrain terr = make(Family::Spikes, g, 1, 0.15);
    std::vector<Seg2> segs(terr.edge_count(), Seg2{0, 0, 1, 0});
    std::vector<u32> ids;
    for (u32 e = 0; e < terr.edge_count(); ++e) {
      if (!terr.is_sliver(e)) {
        segs[e] = terr.image_segment(e);
        ids.push_back(e);
      }
    }
    const Envelope env = envelope_of(ids, segs);
    const HullTree tree(env, segs);

    std::mt19937_64 rg{g};
    std::uniform_int_distribution<i64> ys(terr.min_y(), terr.max_y()), zs(0, 8 * g);
    std::vector<Seg2> queries;
    while (queries.size() < 500) {
      const i64 a = ys(rg), b = ys(rg);
      if (a == b) continue;
      const i64 za = zs(rg), zb = zs(rg);
      queries.push_back(a < b ? Seg2{a, za, b, zb} : Seg2{b, zb, a, za});
    }

    tree.reset_stats();
    for (const Seg2& q : queries) (void)tree.first_crossing(q, QY::of(q.u0), QY::of(q.u1));
    const double visits =
        static_cast<double>(tree.nodes_visited()) / static_cast<double>(queries.size());

    const auto time_us = [&](auto&& fn) {
      const auto t0 = std::chrono::steady_clock::now();
      u64 total = 0;
      for (const Seg2& q : queries) total += fn(q);
      const double el =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
      return std::pair(el * 1e6 / static_cast<double>(queries.size()),
                       static_cast<double>(total) / static_cast<double>(queries.size()));
    };
    const auto [walk_us, ks] = time_us([&](const Seg2& q) {
      return all_crossings_walk(tree, q, QY::of(q.u0), QY::of(q.u1)).size();
    });
    const auto [split_us, ks2] = time_us([&](const Seg2& q) {
      return all_crossings_split(tree, env, q, QY::of(q.u0), QY::of(q.u1), false).size();
    });
    THSR_CHECK(ks == ks2);
    const auto [split_par_us, ks3] = time_us([&](const Seg2& q) {
      return all_crossings_split(tree, env, q, QY::of(q.u0), QY::of(q.u1), true).size();
    });
    THSR_CHECK(ks == ks3);

    const double l2 = log2d(static_cast<double>(env.size()));
    t.row({Table::num(static_cast<long long>(env.size())), Table::num(visits, 1),
           Table::num(l2 * l2, 1), Table::num(visits / (l2 * l2), 3), Table::num(walk_us, 1),
           Table::num(split_us, 1), Table::num(split_par_us, 1), Table::num(ks, 2)});
  }
  t.print_markdown(std::cout);
  t.maybe_write_csv("table_f2_acg_query");
  return 0;
}
