/// E2 — output-size sensitivity (abstract, section 1.3): at a fixed input
/// size n, the cost of the output-sensitive algorithms tracks the output
/// size k, while the non-output-sensitive reference tracks the profile
/// complexity it scans regardless of what is visible.

#include <algorithm>

#include "bench_util.hpp"

int main() {
  using namespace thsr;
  using namespace thsr::bench;
  print_header("E2", "abstract / section 1.3",
               "fixed n: parallel & sequential runtime grows with k; who wins and where");

  struct Row {
    std::string name;
    u64 n, k;
    double t_par, t_seq, t_ref;
    u64 ops_par;
  };
  std::vector<Row> rows;
  const u32 g = large() ? 64 : 48;

  const auto run_one = [&](const std::string& name, const Terrain& terr) {
    const auto par = solve_median3(terr, {.algorithm = Algorithm::Parallel});
    const auto seq = solve_median3(terr, {.algorithm = Algorithm::Sequential});
    const auto ref = solve_median3(terr, {.algorithm = Algorithm::Reference});
    rows.push_back({name, par.stats.n_edges, par.stats.k_pieces, par.stats.total_s,
                    seq.stats.total_s, ref.stats.total_s, par.stats.work.total()});
  };

  for (const Family f : {Family::RidgeFront, Family::Valley, Family::Fbm, Family::Skyline,
                         Family::TerraceBack}) {
    run_one(family_name(f), make(f, g));
  }
  for (const double d : {0.02, 0.1, 0.3}) {
    run_one("spikes_" + Table::num(d, 2), make(Family::Spikes, g, 1, d));
  }
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) { return a.k < b.k; });

  Table t({"scene", "n", "k", "k/n", "par_ms", "seq_ms", "ref_ms", "par_ops", "ops/(n+k)"});
  for (const Row& r : rows) {
    t.row({r.name, Table::num(static_cast<long long>(r.n)), Table::num(static_cast<long long>(r.k)),
           Table::num(static_cast<double>(r.k) / static_cast<double>(r.n), 2), ms(r.t_par),
           ms(r.t_seq), ms(r.t_ref), Table::num(static_cast<long long>(r.ops_par)),
           Table::num(static_cast<double>(r.ops_par) / static_cast<double>(r.n + r.k), 1)});
  }
  t.print_markdown(std::cout);
  t.maybe_write_csv("table_e2_output_sensitivity");
  return 0;
}
