/// Micro-kernels: persistent treap splices and point queries (the
/// persistence costs of phase 2, reference [6]).

#include <benchmark/benchmark.h>

#include <random>

#include "persist/ptreap.hpp"
#include "test_support_random.hpp"

namespace {

using namespace thsr;

std::vector<Seg2> wide_segments(std::size_t n) {
  std::mt19937_64 g{11};
  std::uniform_int_distribution<i64> v(-100'000, 100'000);
  std::vector<Seg2> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(Seg2{-1'000'000, v(g), 1'000'000, v(g)});
  return out;
}

void BM_TreapSplice(benchmark::State& state) {
  const i64 prefill = state.range(0);
  const auto segs = wide_segments(64);
  // Prefill once; persistence lets every timed batch splice from the same
  // immutable base version without interference.
  PArena arena;
  ptreap::Ref base = ptreap::make_floor(arena);
  std::mt19937_64 g{5};
  std::uniform_int_distribution<i64> ys(-900'000, 900'000);
  for (i64 i = 0; i < prefill; ++i) {
    const i64 y = ys(g);
    const PieceData p{QY::of(y), QY::of(y + 7), static_cast<u32>(i % 64)};
    base = ptreap::replace_range(arena, base, p.y0, p.y1, std::span(&p, 1), segs);
  }
  for (auto _ : state) {
    ptreap::Ref t = base;
    for (int i = 0; i < 256; ++i) {
      const i64 y = ys(g);
      const PieceData p{QY::of(y), QY::of(y + 5), static_cast<u32>(i % 64)};
      t = ptreap::replace_range(arena, t, p.y0, p.y1, std::span(&p, 1), segs);
    }
    benchmark::DoNotOptimize(t);
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_TreapSplice)->Arg(1 << 8)->Arg(1 << 12)->Arg(1 << 15);

void BM_TreapPieceAt(benchmark::State& state) {
  const auto segs = wide_segments(64);
  PArena arena;
  ptreap::Ref t = ptreap::make_floor(arena);
  std::mt19937_64 g{9};
  std::uniform_int_distribution<i64> ys(-900'000, 900'000);
  for (int i = 0; i < (1 << 14); ++i) {
    const i64 y = ys(g);
    const PieceData p{QY::of(y), QY::of(y + 9), static_cast<u32>(i % 64)};
    t = ptreap::replace_range(arena, t, p.y0, p.y1, std::span(&p, 1), segs);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ptreap::piece_at(t, QY::of(ys(g)), Side::After));
  }
}
BENCHMARK(BM_TreapPieceAt);

}  // namespace
