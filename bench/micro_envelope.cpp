/// Micro-kernels: envelope construction and merging (Lemma 3.1 kernels).

#include <benchmark/benchmark.h>

#include "envelope/build.hpp"
#include "test_support_random.hpp"

namespace {

using namespace thsr;
using thsr::bench::random_segments_for_bench;

void BM_EnvelopeBuildSerial(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto segs = random_segments_for_bench(n, 1);
  std::vector<u32> ids(n);
  for (u32 i = 0; i < n; ++i) ids[i] = i;
  for (auto _ : state) {
    benchmark::DoNotOptimize(envelope_of(ids, segs, false));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<i64>(n));
}
BENCHMARK(BM_EnvelopeBuildSerial)->Arg(1 << 10)->Arg(1 << 13)->Arg(1 << 16);

void BM_EnvelopeBuildParallel(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto segs = random_segments_for_bench(n, 1);
  std::vector<u32> ids(n);
  for (u32 i = 0; i < n; ++i) ids[i] = i;
  for (auto _ : state) {
    benchmark::DoNotOptimize(envelope_of(ids, segs, true));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<i64>(n));
}
BENCHMARK(BM_EnvelopeBuildParallel)->Arg(1 << 13)->Arg(1 << 16);

void BM_EnvelopeMerge(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto segs = random_segments_for_bench(2 * n, 3);
  std::vector<u32> a, b;
  for (u32 i = 0; i < 2 * n; ++i) (i % 2 ? a : b).push_back(i);
  const Envelope ea = envelope_of(a, segs), eb = envelope_of(b, segs);
  for (auto _ : state) {
    benchmark::DoNotOptimize(merge_envelopes(ea, eb, segs));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<i64>(ea.size() + eb.size()));
}
BENCHMARK(BM_EnvelopeMerge)->Arg(1 << 10)->Arg(1 << 14);

void BM_EnvelopeEval(benchmark::State& state) {
  const auto segs = random_segments_for_bench(1 << 14, 5);
  std::vector<u32> ids(segs.size());
  for (u32 i = 0; i < ids.size(); ++i) ids[i] = i;
  const Envelope env = envelope_of(ids, segs);
  i64 y = -100000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(env.piece_index_at(QY::of(y), Side::After));
    y = (y + 997) % 100000;
  }
}
BENCHMARK(BM_EnvelopeEval);

}  // namespace
