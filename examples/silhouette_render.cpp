/// silhouette_render — the "rendering procedure" of the paper's section 2:
/// the object-space visibility map is device-independent, so the same map
/// drives any display; here it drives an SVG renderer. Renders a dramatic
/// ridge scene three ways (full wireframe, visible scene, visible-only) and
/// reports how much of the scene the hidden-surface removal discarded.
///
///   ./silhouette_render [grid=56] [family=valley] [seed=5]

#include <cstdlib>
#include <iostream>

#include "core/hsr.hpp"
#include "envelope/build.hpp"
#include "io/svg.hpp"
#include "terrain/generators.hpp"

int main(int argc, char** argv) {
  using namespace thsr;

  GenOptions gen;
  gen.grid = argc > 1 ? static_cast<u32>(std::atoi(argv[1])) : 56;
  gen.family = family_from_name(argc > 2 ? argv[2] : "valley");
  gen.seed = argc > 3 ? static_cast<u64>(std::atoll(argv[3])) : 5;
  gen.amplitude = 8 * gen.grid;
  const Terrain t = make_terrain(gen);

  const HsrResult r = hidden_surface_removal(t, {.algorithm = Algorithm::Parallel});

  // Visible scene over the faint full wireframe.
  SvgOptions with_hidden;
  render_visibility_svg(t, r.map, "silhouette_scene.svg", with_hidden);
  // Visible geometry alone — what a plotter would draw.
  SvgOptions only_visible;
  only_visible.draw_hidden = false;
  render_visibility_svg(t, r.map, "silhouette_visible_only.svg", only_visible);

  // The upper profile (the paper's "silhouette") of the whole scene.
  std::vector<Seg2> segs(t.edge_count(), Seg2{0, 0, 1, 0});
  std::vector<u32> ids;
  for (u32 e = 0; e < t.edge_count(); ++e) {
    if (!t.is_sliver(e)) {
      segs[e] = t.image_segment(e);
      ids.push_back(e);
    }
  }
  const Envelope profile = envelope_of(ids, segs, /*parallel=*/true);
  render_envelope_svg(t, profile, segs, "silhouette_profile.svg");

  double full_len = 0;
  for (const u32 e : ids) full_len += static_cast<double>(segs[e].u1 - segs[e].u0);
  const double vis = r.map.visible_length();
  std::cout << family_name(gen.family) << " " << gen.grid << "x" << gen.grid << ": "
            << t.edge_count() << " edges\n"
            << "visible pieces (k): " << r.stats.k_pieces
            << ", image vertices: " << r.stats.k_crossings << "\n"
            << "visible length: " << vis << " of " << full_len << " ("
            << (100.0 * vis / full_len) << "% survives hidden-surface removal)\n"
            << "upper profile: " << profile.size() << " pieces\n"
            << "wrote silhouette_scene.svg, silhouette_visible_only.svg, "
               "silhouette_profile.svg\n";
  return 0;
}
