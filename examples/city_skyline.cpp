/// city_skyline — output-size extremes on one plot: the same edge count n
/// produces wildly different output sizes k depending on the scene, which is
/// exactly why the paper insists on output-size sensitivity. Runs the
/// parallel algorithm across all generator families at a fixed grid and
/// prints n, k, k/n and the runtime, then renders the skyline scene.
///
///   ./city_skyline [grid=40] [seed=2]

#include <cstdlib>
#include <iostream>

#include "core/hsr.hpp"
#include "io/csv.hpp"
#include "io/svg.hpp"
#include "terrain/generators.hpp"

int main(int argc, char** argv) {
  using namespace thsr;

  const u32 grid = argc > 1 ? static_cast<u32>(std::atoi(argv[1])) : 40;
  const u64 seed = argc > 2 ? static_cast<u64>(std::atoll(argv[2])) : 2;

  Table table({"family", "n_edges", "k_pieces", "k/n", "image_vertices", "time_ms"});
  for (const Family f : kAllFamilies) {
    GenOptions gen;
    gen.family = f;
    gen.grid = grid;
    gen.seed = seed;
    const Terrain t = make_terrain(gen);
    const HsrResult r = hidden_surface_removal(t, {.algorithm = Algorithm::Parallel});
    table.row({family_name(f), Table::num(static_cast<long long>(r.stats.n_edges)),
               Table::num(static_cast<long long>(r.stats.k_pieces)),
               Table::num(static_cast<double>(r.stats.k_pieces) /
                              static_cast<double>(r.stats.n_edges),
                          2),
               Table::num(static_cast<long long>(r.stats.k_crossings)),
               Table::num(r.stats.total_s * 1e3, 2)});
    if (f == Family::Skyline) {
      render_visibility_svg(t, r.map, "city_skyline.svg");
    }
  }
  std::cout << "output size across scene families (grid " << grid << "):\n\n";
  table.print_markdown(std::cout);
  std::cout << "\nwrote city_skyline.svg\n";
  return 0;
}
