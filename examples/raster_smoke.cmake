# Smoke test for the raster_viewshed example, run by CTest via -P. The
# example exits nonzero when any of its built-in cross-checks (backend
# bit-identity, sharded == monolithic, ray-cast oracle) fails; the output
# match below additionally catches a run that silently skipped them.
execute_process(
  COMMAND ${RASTER_VIEWSHED} --demo 160 120 4
  WORKING_DIRECTORY ${WORK_DIR}
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "raster_viewshed exited with '${rc}'\nstdout:\n${out}\nstderr:\n${err}")
endif()
if(NOT out MATCHES "ray-cast oracle agrees")
  message(FATAL_ERROR "raster_viewshed ran no oracle cross-check\nstdout:\n${out}")
endif()
if(NOT out MATCHES "sharded \\(S=4, disjoint column bands, no stitch\\) == monolithic")
  message(FATAL_ERROR "raster_viewshed ran no sharded cross-check\nstdout:\n${out}")
endif()
foreach(artifact raster_ids.ppm raster_depth.pgm viewshed.asc)
  if(NOT EXISTS ${WORK_DIR}/${artifact})
    message(FATAL_ERROR "raster_viewshed wrote no ${artifact}")
  endif()
endforeach()
