/// observer_sweep — the serving layer in one sitting (src/service/,
/// DESIGN.md section 1.10): sweep an observer around a terrain through a
/// ring of exact integer azimuths, answering every viewpoint through a
/// QueryServer, then show what the engine cache saved on a second pass.
///
///   ./observer_sweep [grid=32] [workers=4]
///
/// Every solve is exact: a parameterized solve is bit-identical to solving
/// the pre-transformed terrain directly, so the sweep's piece counts are
/// reproducible anywhere, down to the counter.

#include <cstdlib>
#include <iostream>
#include <map>
#include <memory>
#include <mutex>

#include "service/query_server.hpp"
#include "terrain/generators.hpp"

int main(int argc, char** argv) {
  using namespace thsr;
  using service::Query;
  using service::QueryReply;
  using service::QueryServer;
  using service::QueryStatus;
  using service::Viewpoint;

  GenOptions gen;
  gen.family = Family::Fbm;
  gen.grid = argc > 1 ? static_cast<u32>(std::atoi(argv[1])) : 32;
  gen.seed = 7;
  const int workers = argc > 2 ? std::atoi(argv[2]) : 4;

  const auto terrain = std::make_shared<const Terrain>(make_terrain(gen));
  std::cout << "terrain: " << terrain->vertex_count() << " vertices, " << terrain->edge_count()
            << " edges, |coord| <= " << terrain->max_abs_coord() << "\n";

  // A ring of exact azimuths: the four axis directions, the diagonals, and
  // the Pythagorean 3-4-5 directions — 12 viewpoints, each elevated 1/4.
  std::vector<Viewpoint> ring;
  for (const auto& [dx, dy] : std::vector<std::pair<i64, i64>>{
           {1, 0}, {3, 4}, {1, 1}, {4, 3}, {0, 1}, {-3, 4}, {-1, 1}, {-4, 3},
           {-1, 0}, {-1, -1}, {0, -1}, {1, -1}}) {
    const Viewpoint vp{.dir_x = dx, .dir_y = dy, .elev_num = 1, .elev_den = 4};
    if (service::admissible(vp, terrain->max_abs_coord())) ring.push_back(vp);
  }
  std::cout << "sweeping " << ring.size() << " admissible viewpoints with " << workers
            << " workers\n\n";

  QueryServer server({.workers = workers});
  server.add_terrain(1, terrain);

  int errors = 0;
  const auto sweep = [&](const char* label) {
    std::map<u64, QueryReply> replies;
    std::mutex mu;
    for (std::size_t i = 0; i < ring.size(); ++i) {
      server.submit(Query{.terrain_id = 1, .viewpoint = ring[i], .tag = i},
                    [&replies, &mu](QueryReply&& r) {
                      const std::lock_guard<std::mutex> lk(mu);
                      replies.emplace(r.tag, std::move(r));
                    });
    }
    server.drain();
    std::cout << label << ":\n";
    for (const auto& [tag, r] : replies) {
      const Viewpoint& vp = ring[tag];
      if (r.status != QueryStatus::Ok) {
        std::cout << "  (" << vp.dir_x << "," << vp.dir_y << "): ERROR " << r.error << "\n";
        ++errors;
        continue;
      }
      std::cout << "  dir=(" << vp.dir_x << "," << vp.dir_y
                << ") k_pieces=" << r.result->stats.k_pieces << " visible_len=" << std::fixed
                << r.result->map.visible_length() << (r.cache_hit ? "  [cache hit, " : "  [cold, ")
                << r.latency_ns / 1000000.0 << " ms]\n";
    }
  };

  sweep("cold pass (every viewpoint prepares an engine)");
  sweep("\nwarm pass (every viewpoint is resident)");

  const auto cs = server.cache_stats();
  std::cout << "\ncache: " << cs.hits << " hits, " << cs.misses << " misses, "
            << cs.order_transfers << " depth-order transfers, " << cs.resident_bytes / 1024
            << " KiB resident across " << cs.resident_entries << " engines\n";
  return errors == 0 ? 0 : 1;
}
