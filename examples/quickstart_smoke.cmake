# Smoke test for the quickstart example, run by CTest via -P. Checks BOTH the
# exit status and the output: a bare PASS_REGULAR_EXPRESSION would ignore the
# exit code, letting a crash after the first matching line pass.
execute_process(
  COMMAND ${QUICKSTART} 16 7
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "quickstart exited with '${rc}'\nstdout:\n${out}\nstderr:\n${err}")
endif()
if(NOT out MATCHES "k_pieces=[1-9][0-9]*")
  message(FATAL_ERROR "quickstart printed no nonzero visible-piece count\nstdout:\n${out}")
endif()
