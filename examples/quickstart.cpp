/// quickstart — the 60-second tour of the thsr public API:
/// generate a terrain, run the paper's parallel hidden-surface-removal
/// algorithm, inspect the object-space visibility map, render it to SVG.
///
///   ./quickstart [grid=48] [seed=7]

#include <cstdlib>
#include <iostream>

#include "core/hsr.hpp"
#include "io/svg.hpp"
#include "terrain/generators.hpp"

int main(int argc, char** argv) {
  using namespace thsr;

  GenOptions gen;
  gen.family = Family::Fbm;
  gen.grid = argc > 1 ? static_cast<u32>(std::atoi(argv[1])) : 48;
  gen.seed = argc > 2 ? static_cast<u64>(std::atoll(argv[2])) : 7;

  std::cout << "Generating a " << gen.grid << "x" << gen.grid << " '" << family_name(gen.family)
            << "' terrain (seed " << gen.seed << ")...\n";
  const Terrain terrain = make_terrain(gen);
  std::cout << "  " << terrain.vertex_count() << " vertices, " << terrain.triangle_count()
            << " triangles, " << terrain.edge_count() << " edges\n\n";

  // Solve with all three algorithms; they agree exactly (exact arithmetic).
  for (const Algorithm algo : {Algorithm::Reference, Algorithm::Sequential, Algorithm::Parallel}) {
    const HsrResult r = hidden_surface_removal(terrain, {.algorithm = algo});
    std::cout << algorithm_name(algo) << ": k_pieces=" << r.stats.k_pieces
              << " image_vertices=" << r.stats.k_crossings << " visible_len=" << std::fixed
              << r.map.visible_length() << " total=" << r.stats.total_s * 1e3 << " ms\n";
  }

  const HsrResult r = hidden_surface_removal(terrain, {.algorithm = Algorithm::Parallel});
  std::cout << "\nparallel breakdown: order=" << r.stats.order_s * 1e3
            << " ms, phase1=" << r.stats.phase1_s * 1e3 << " ms, phase2=" << r.stats.phase2_s * 1e3
            << " ms\n";
  std::cout << "persistent nodes allocated: " << r.stats.treap_nodes
            << ", intermediate envelope pieces: " << r.stats.phase1_pieces << "\n";

  // Per-edge access: the first fully visible edge and its exact extent.
  for (u32 e = 0; e < terrain.edge_count(); ++e) {
    const auto pieces = r.map.pieces(e);
    if (!pieces.empty()) {
      std::cout << "edge " << e << " first visible piece: y in [" << to_string(pieces[0].y0)
                << ", " << to_string(pieces[0].y1) << "]\n";
      break;
    }
  }

  render_visibility_svg(terrain, r.map, "quickstart_visibility.svg");
  std::cout << "\nwrote quickstart_visibility.svg (green = visible scene, grey = hidden)\n";
  return 0;
}
