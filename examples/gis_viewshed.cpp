/// gis_viewshed — the workload the paper's introduction motivates: a
/// geographic terrain inspected from several view directions. Azimuths are
/// realized exactly by rotating the ground lattice with Pythagorean-triple
/// rotations (integer coordinates, so the exact predicates keep working),
/// then viewing along -x as usual. Prints a per-azimuth visibility table
/// and writes one SVG per direction. Runs on synthetic relief by default,
/// or on a real DEM via the ESRI ASCII-grid loader.
///
///   ./gis_viewshed [grid=40] [seed=11]
///   ./gis_viewshed --asc input.asc [z_scale=1.0]

#include <cmath>
#include <cstdlib>
#include <iostream>
#include <stdexcept>
#include <string>

#include "core/hsr.hpp"
#include "io/csv.hpp"
#include "io/svg.hpp"
#include "terrain/asc_io.hpp"
#include "terrain/generators.hpp"

int main(int argc, char** argv) {
  using namespace thsr;

  Terrain base;
  if (argc > 1 && std::string(argv[1]) == "--asc" && argc <= 2) {
    std::cerr << "usage: gis_viewshed --asc input.asc [z_scale]\n";
    return 2;
  }
  if (argc > 2 && std::string(argv[1]) == "--asc") {
    AscTerrainOptions opt;
    if (argc > 3) {
      opt.z_scale = std::atof(argv[3]);
      if (!(opt.z_scale > 0)) {
        std::cerr << "usage: gis_viewshed --asc input.asc [z_scale>0]\n";
        return 2;
      }
    }
    base = load_asc(argv[2], opt);
    std::cout << "loaded DEM " << argv[2] << "\n";
  } else {
    GenOptions gen;
    gen.family = Family::Fbm;
    gen.grid = argc > 1 ? static_cast<u32>(std::atoi(argv[1])) : 40;
    gen.seed = argc > 2 ? static_cast<u64>(std::atoll(argv[2])) : 11;
    gen.amplitude = 6 * gen.grid;
    base = make_terrain(gen);
  }

  // Exact rational azimuths: (a, b) rotations, angle = atan2(b, a).
  struct View {
    i64 a, b;
    const char* name;
  };
  // |a|+|b| <= 17 keeps rotated coordinates within the exact-predicate range.
  const View views[] = {
      {1, 0, "east"},  {12, 5, "E23N"}, {4, 3, "E37N"},  {3, 4, "E53N"},
      {0, 1, "north"}, {-3, 4, "W53N"}, {-1, 0, "west"},
  };

  Table table({"azimuth", "deg", "n_edges", "k_pieces", "image_vertices", "visible_len",
               "time_ms"});
  const double full = [&] {
    double len = 0;
    for (u32 e = 0; e < base.edge_count(); ++e) {
      if (base.is_sliver(e)) continue;
      const Seg2 s = base.image_segment(e);
      len += static_cast<double>(s.u1 - s.u0);
    }
    return len;
  }();
  std::cout << "viewshed over " << base.edge_count() << " edges; total projected length " << full
            << "\n\n";

  for (const View& v : views) {
    Terrain t;
    try {
      t = base.rotate_ground(v.a, v.b);
    } catch (const std::invalid_argument&) {
      // A large lattice (e.g. a full-size DEM) can leave no headroom for
      // the rotation's scale factor; skip that azimuth rather than abort.
      std::cout << "skipping azimuth " << v.name << ": rotated coordinates out of range\n";
      continue;
    }
    const HsrResult r = hidden_surface_removal(t, {.algorithm = Algorithm::Parallel});
    const double deg = std::atan2(static_cast<double>(v.b), static_cast<double>(v.a)) * 180.0 /
                       3.14159265358979;
    table.row({v.name, Table::num(deg, 1), Table::num(static_cast<long long>(t.edge_count())),
               Table::num(static_cast<long long>(r.stats.k_pieces)),
               Table::num(static_cast<long long>(r.stats.k_crossings)),
               Table::num(r.map.visible_length(), 1), Table::num(r.stats.total_s * 1e3, 2)});
    render_visibility_svg(t, r.map, std::string("viewshed_") + v.name + ".svg");
  }
  table.print_markdown(std::cout);
  std::cout << "\nwrote viewshed_<azimuth>.svg files\n";
  return 0;
}
