/// terrain_pipeline — the downstream-user workflow: load a terrain mesh
/// from an OBJ file (or generate one and round-trip it through OBJ),
/// prepare a session engine once, run the multi-stage solve (fast parallel
/// answer, then a batched cross-check of the other algorithms against the
/// same cached preprocessing), and export machine-readable results (CSV of
/// visible pieces with exact rational endpoints) plus an SVG rendering.
///
///   ./terrain_pipeline input.obj [scale=1.0]
///   ./terrain_pipeline --demo            (self-generates and round-trips)

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "io/svg.hpp"
#include "terrain/generators.hpp"
#include "terrain/obj_io.hpp"

int main(int argc, char** argv) {
  using namespace thsr;

  Terrain terrain;
  if (argc < 2 || std::string(argv[1]) == "--demo") {
    GenOptions gen;
    gen.family = Family::Valley;
    gen.grid = 36;
    gen.jitter = true;  // irregular TIN, closer to survey data
    const Terrain original = make_terrain(gen);
    save_obj(original, "pipeline_demo.obj");
    terrain = load_obj("pipeline_demo.obj");
    std::cout << "demo mode: generated + round-tripped pipeline_demo.obj\n";
  } else {
    const double scale = argc > 2 ? std::atof(argv[2]) : 1.0;
    terrain = load_obj(argv[1], scale);
    std::cout << "loaded " << argv[1] << "\n";
  }
  std::cout << "  " << terrain.vertex_count() << " vertices, " << terrain.edge_count()
            << " edges\n";

  // Stage 1: preprocess once (depth order, segment tables; the PCT joins
  // the cache on the first parallel solve) …
  HsrEngine engine;
  engine.prepare(terrain);
  std::cout << "prepared in " << engine.prepare_seconds() * 1e3 << " ms\n";

  // Stage 2: … answer with the paper's parallel algorithm …
  const HsrResult r = engine.solve({.algorithm = Algorithm::Parallel});
  std::cout << "visible pieces: " << r.stats.k_pieces << ", image vertices: "
            << r.stats.k_crossings << ", solved in "
            << (r.stats.total_s - r.stats.order_s) * 1e3 << " ms (excl. prepare)\n";

  // Stage 3: … and cross-check the other algorithms as one batch against
  // the same cached preprocessing (all maps are bit-identical by contract).
  const std::vector<HsrOptions> checks{{.algorithm = Algorithm::Sequential},
                                       {.algorithm = Algorithm::Reference}};
  for (const HsrResult& c : engine.solve_batch(checks)) {
    if (const auto diff = r.map.first_difference(c.map)) {
      std::cerr << "cross-check FAILED at edge " << *diff << "\n";
      return 1;
    }
  }
  std::cout << "cross-check: sequential + reference agree exactly\n";

  std::ofstream csv("pipeline_visibility.csv");
  csv << "edge,piece,y0,y1,kind0,kind1\n";
  const auto kind = [](EndpointKind k) {
    switch (k) {
      case EndpointKind::SegmentEnd: return "end";
      case EndpointKind::Crossing: return "crossing";
      case EndpointKind::Break: return "break";
    }
    return "?";
  };
  for (u32 e = 0; e < terrain.edge_count(); ++e) {
    const auto pieces = r.map.pieces(e);
    for (std::size_t i = 0; i < pieces.size(); ++i) {
      csv << e << ',' << i << ',' << to_string(pieces[i].y0) << ',' << to_string(pieces[i].y1)
          << ',' << kind(pieces[i].k0) << ',' << kind(pieces[i].k1) << '\n';
    }
  }
  render_visibility_svg(terrain, r.map, "pipeline_visibility.svg");
  std::cout << "wrote pipeline_visibility.csv and pipeline_visibility.svg\n";
  return 0;
}
