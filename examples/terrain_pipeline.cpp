/// terrain_pipeline — the downstream-user workflow: load a terrain mesh
/// from an OBJ file (or generate one and round-trip it through OBJ), run
/// hidden-surface removal, and export machine-readable results (CSV of
/// visible pieces with exact rational endpoints) plus an SVG rendering.
///
///   ./terrain_pipeline input.obj [scale=1.0]
///   ./terrain_pipeline --demo            (self-generates and round-trips)

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "core/hsr.hpp"
#include "io/svg.hpp"
#include "terrain/generators.hpp"
#include "terrain/obj_io.hpp"

int main(int argc, char** argv) {
  using namespace thsr;

  Terrain terrain;
  if (argc < 2 || std::string(argv[1]) == "--demo") {
    GenOptions gen;
    gen.family = Family::Valley;
    gen.grid = 36;
    gen.jitter = true;  // irregular TIN, closer to survey data
    const Terrain original = make_terrain(gen);
    save_obj(original, "pipeline_demo.obj");
    terrain = load_obj("pipeline_demo.obj");
    std::cout << "demo mode: generated + round-tripped pipeline_demo.obj\n";
  } else {
    const double scale = argc > 2 ? std::atof(argv[2]) : 1.0;
    terrain = load_obj(argv[1], scale);
    std::cout << "loaded " << argv[1] << "\n";
  }
  std::cout << "  " << terrain.vertex_count() << " vertices, " << terrain.edge_count()
            << " edges\n";

  const HsrResult r = hidden_surface_removal(terrain, {.algorithm = Algorithm::Parallel});
  std::cout << "visible pieces: " << r.stats.k_pieces << ", image vertices: "
            << r.stats.k_crossings << ", solved in " << r.stats.total_s * 1e3 << " ms\n";

  std::ofstream csv("pipeline_visibility.csv");
  csv << "edge,piece,y0,y1,kind0,kind1\n";
  const auto kind = [](EndpointKind k) {
    switch (k) {
      case EndpointKind::SegmentEnd: return "end";
      case EndpointKind::Crossing: return "crossing";
      case EndpointKind::Break: return "break";
    }
    return "?";
  };
  for (u32 e = 0; e < terrain.edge_count(); ++e) {
    const auto pieces = r.map.pieces(e);
    for (std::size_t i = 0; i < pieces.size(); ++i) {
      csv << e << ',' << i << ',' << to_string(pieces[i].y0) << ',' << to_string(pieces[i].y1)
          << ',' << kind(pieces[i].k0) << ',' << kind(pieces[i].k1) << '\n';
    }
  }
  render_visibility_svg(terrain, r.map, "pipeline_visibility.svg");
  std::cout << "wrote pipeline_visibility.csv and pipeline_visibility.svg\n";
  return 0;
}
