/// sharded_pipeline — the scale-with-data workflow: ingest a real DEM
/// (ESRI ASCII grid), decompose it into y-slabs, solve every slab over the
/// fork-join backend with a shard::ShardedEngine, stitch the global
/// visibility map, and cross-check it against the monolithic solve
/// (piece-for-piece, modulo coalescing at the slab lines). Prints the
/// decomposition (per-slab sizes, duplication factor) and a slab-count
/// sweep, then renders the stitched map to SVG.
///
///   ./sharded_pipeline input.asc [slabs=8] [z_scale=1.0]
///   ./sharded_pipeline --demo [slabs=8]     (self-generates demo_dem.asc)

#include <cmath>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "io/csv.hpp"
#include "io/svg.hpp"
#include "shard/sharded_engine.hpp"
#include "terrain/asc_io.hpp"

namespace {

/// A deterministic synthetic DEM written to disk, so demo mode exercises
/// the same .asc ingestion path as real data (including a NODATA lake).
thsr::AscGrid demo_dem() {
  thsr::AscGrid g;
  g.ncols = 96;
  g.nrows = 80;
  g.xll = 500000.0;  // plausible UTM-ish origin
  g.yll = 4100000.0;
  g.cellsize = 30.0;
  g.nodata = -9999.0;
  g.values.resize(static_cast<std::size_t>(g.ncols) * g.nrows);
  for (thsr::u32 r = 0; r < g.nrows; ++r) {
    for (thsr::u32 c = 0; c < g.ncols; ++c) {
      const double ridge = 90.0 * std::exp(-0.002 * (c - 30.0) * (c - 30.0));
      const double rolling = 25.0 * std::sin(0.23 * r) * std::cos(0.19 * c);
      const double tilt = 1.1 * r;
      double v = 400.0 + ridge + rolling + tilt;
      const double dr = r - 55.0, dc = c - 70.0;
      if (dr * dr + dc * dc < 90.0) v = *g.nodata;  // the lake
      g.values[static_cast<std::size_t>(r) * g.ncols + c] = v;
    }
  }
  return g;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace thsr;

  const auto usage = [] {
    std::cerr << "usage: sharded_pipeline (input.asc | --demo) [slabs>=1] [z_scale>0]\n";
    return 2;
  };
  std::string path;
  u32 slabs = 8;
  AscTerrainOptions load_opt;
  if (argc > 2) {
    const int s = std::atoi(argv[2]);
    if (s < 1) return usage();
    slabs = static_cast<u32>(s);
  }
  if (argc < 2 || std::string(argv[1]) == "--demo") {
    save_asc_grid(demo_dem(), "demo_dem.asc");
    path = "demo_dem.asc";
    std::cout << "demo mode: wrote demo_dem.asc (96x80, 30m cells, NODATA lake)\n";
  } else {
    path = argv[1];
    if (argc > 3) {
      load_opt.z_scale = std::atof(argv[3]);
      if (!(load_opt.z_scale > 0)) return usage();
    }
  }

  const AscGrid grid = load_asc_grid(path);
  const Terrain terrain = terrain_from_asc(grid, load_opt);
  std::cout << "loaded " << path << ": " << grid.ncols << "x" << grid.nrows << " cells -> "
            << terrain.vertex_count() << " vertices, " << terrain.edge_count()
            << " edges on the integer lattice\n\n";

  // Decompose + prepare one session engine per slab.
  shard::ShardedEngine engine;
  engine.prepare(terrain, slabs);
  const shard::ShardPlan& plan = engine.plan();
  Table slab_table({"slab", "y_window", "edges", "share"});
  for (u32 s = 0; s < engine.slab_count(); ++s) {
    const shard::SlabTerrain& slab = plan.slabs[s];
    slab_table.row({Table::num(static_cast<long long>(s)),
                    "[" + std::to_string(slab.y_lo) + ", " + std::to_string(slab.y_hi) + "]",
                    Table::num(static_cast<long long>(slab.terrain.edge_count())),
                    Table::num(static_cast<double>(slab.terrain.edge_count()) /
                                   static_cast<double>(terrain.edge_count()),
                               3)});
  }
  slab_table.print_markdown(std::cout);
  std::cout << "prepared " << engine.slab_count() << " slabs in " << engine.prepare_seconds() * 1e3
            << " ms; edge duplication factor " << plan.duplication_factor() << "\n\n";

  // Sharded solve + monolithic cross-check (the DESIGN.md section 1.7 contract).
  const HsrResult sharded = engine.solve({.algorithm = Algorithm::Parallel});
  std::cout << "sharded solve: " << sharded.stats.k_pieces << " visible pieces, "
            << sharded.stats.k_crossings << " image vertices, "
            << (sharded.stats.total_s - sharded.stats.order_s) * 1e3 << " ms (excl. prepare)\n";

  HsrEngine mono;
  mono.prepare(terrain);
  const HsrResult reference = mono.solve({.algorithm = Algorithm::Parallel});
  const VisibilityMap canon = shard::coalesce_at_cuts(reference.map, plan.cuts);
  if (const auto diff = canon.first_difference(sharded.map)) {
    std::cerr << "cross-check FAILED: stitched map differs from monolithic at edge " << *diff
              << "\n";
    return 1;
  }
  std::cout << "cross-check: stitched map == monolithic map (coalesced at " << slabs
            << " slab lines)\n\n";

  // Slab-count sweep: how the decomposition trades duplication for
  // smaller per-slab subproblems.
  Table sweep({"S", "dup", "prepare_ms", "solve_ms", "work_ops", "k_pieces"});
  for (const u32 S : {1u, 2u, 4u, 8u, 16u}) {
    shard::ShardedEngine e;
    e.prepare(terrain, S);
    const HsrResult r = e.solve({.algorithm = Algorithm::Parallel});
    sweep.row({Table::num(static_cast<long long>(S)),
               Table::num(e.plan().duplication_factor(), 3),
               Table::num(e.prepare_seconds() * 1e3, 2),
               Table::num((r.stats.total_s - r.stats.order_s) * 1e3, 2),
               Table::num(static_cast<long long>(r.stats.work.total())),
               Table::num(static_cast<long long>(r.stats.k_pieces))});
  }
  sweep.print_markdown(std::cout);

  render_visibility_svg(terrain, sharded.map, "sharded_visibility.svg");
  std::cout << "\nwrote sharded_visibility.svg\n";
  return 0;
}
