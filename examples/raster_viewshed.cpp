/// raster_viewshed — the image-space product pipeline: ingest a DEM (ESRI
/// ASCII grid), solve hidden-surface removal, scan-convert the exact
/// object-space map into per-pixel products (visible-triangle ID map,
/// depth map, coverage), build the georeferenced viewshed grid, and write
/// everything as PPM/PGM/ASC files any image viewer or GIS tool opens.
///
/// Built-in cross-checks (any failure exits nonzero):
///   * the raster is bit-identical across every available fork-join
///     backend and across thread counts,
///   * the sharded rasterization (per-slab maps, no stitch) is
///     bit-identical to the monolithic one,
///   * on demo-sized inputs, the scan-converter matches the brute-force
///     per-pixel ray-cast oracle sample-for-sample.
///
///   ./raster_viewshed (input.asc | --demo) [width=320] [height=240] [slabs=4]
///
/// Outputs (written into the working directory):
///   raster_ids.ppm, raster_depth.pgm, raster_coverage.pgm,
///   viewshed.asc, viewshed.pgm

#include <cmath>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "io/csv.hpp"
#include "io/image.hpp"
#include "raster/oracle.hpp"
#include "raster/raster.hpp"
#include "raster/viewshed.hpp"
#include "shard/sharded_engine.hpp"
#include "terrain/asc_io.hpp"

namespace {

using namespace thsr;

/// Deterministic synthetic DEM (ridge + rolling relief + a NODATA lake),
/// written to disk so demo mode exercises the real ingestion path.
AscGrid demo_dem() {
  AscGrid g;
  g.ncols = 72;
  g.nrows = 60;
  g.xll = 500000.0;
  g.yll = 4100000.0;
  g.cellsize = 30.0;
  g.nodata = -9999.0;
  g.values.resize(static_cast<std::size_t>(g.ncols) * g.nrows);
  for (u32 r = 0; r < g.nrows; ++r) {
    for (u32 c = 0; c < g.ncols; ++c) {
      const double ridge = 80.0 * std::exp(-0.004 * (c - 24.0) * (c - 24.0));
      const double rolling = 20.0 * std::sin(0.31 * r) * std::cos(0.27 * c);
      double v = 300.0 + ridge + rolling + 0.9 * r;
      const double dr = r - 40.0, dc = c - 52.0;
      if (dr * dr + dc * dc < 60.0) v = *g.nodata;  // the lake
      g.values[static_cast<std::size_t>(r) * g.ncols + c] = v;
    }
  }
  return g;
}

/// Deterministic id -> RGB hash (golden-ratio hue walk), background black.
void id_color(u32 id, unsigned char* rgb) {
  if (id == raster::kNoTriangle) {
    rgb[0] = rgb[1] = rgb[2] = 0;
    return;
  }
  const u32 h = id * 2654435761u;
  rgb[0] = static_cast<unsigned char>(64 + (h & 0xbf));
  rgb[1] = static_cast<unsigned char>(64 + ((h >> 8) & 0xbf));
  rgb[2] = static_cast<unsigned char>(64 + ((h >> 16) & 0xbf));
}

io::RgbImage ids_image(const raster::ImageRaster& img) {
  io::RgbImage out;
  out.width = img.width;
  out.height = img.height;
  out.rgb.resize(static_cast<std::size_t>(img.width) * img.height * 3);
  for (std::size_t i = 0; i < img.ids.size(); ++i) id_color(img.ids[i], &out.rgb[3 * i]);
  return out;
}

/// Normalize a float channel into a 16-bit grayscale PGM (background 0).
io::GrayImage gray_image(const raster::ImageRaster& img, const std::vector<float>& chan) {
  io::GrayImage out;
  out.width = img.width;
  out.height = img.height;
  out.maxval = 65535;
  out.pixels.resize(chan.size());
  float lo = 0.0f, hi = 1.0f;
  bool first = true;
  for (std::size_t i = 0; i < chan.size(); ++i) {
    if (img.ids[i] == raster::kNoTriangle) continue;
    lo = first ? chan[i] : std::min(lo, chan[i]);
    hi = first ? chan[i] : std::max(hi, chan[i]);
    first = false;
  }
  const float span = hi > lo ? hi - lo : 1.0f;
  for (std::size_t i = 0; i < chan.size(); ++i) {
    out.pixels[i] = img.ids[i] == raster::kNoTriangle
                        ? 0
                        : static_cast<std::uint16_t>(1 + 65534.0f * (chan[i] - lo) / span);
  }
  return out;
}

io::GrayImage viewshed_image(const AscGrid& vs) {
  io::GrayImage out;
  out.width = vs.ncols;
  out.height = vs.nrows;
  out.maxval = 255;
  out.pixels.resize(vs.values.size());
  for (std::size_t i = 0; i < vs.values.size(); ++i) {
    const double v = vs.values[i];
    out.pixels[i] = (vs.nodata && v == *vs.nodata)
                        ? 0
                        : static_cast<std::uint16_t>(1 + 254.0 * std::min(1.0, std::max(0.0, v)));
  }
  return out;
}

bool images_equal(const raster::ImageRaster& a, const raster::ImageRaster& b) {
  return a.ids == b.ids && a.depth == b.depth && a.coverage == b.coverage;
}

}  // namespace

int main(int argc, char** argv) {
  const auto usage = [] {
    std::cerr << "usage: raster_viewshed (input.asc | --demo) [width>=1] [height>=1] [slabs>=1]\n";
    return 2;
  };
  std::string path;
  raster::RasterOptions ropt;
  ropt.width = 320;
  ropt.height = 240;
  ropt.supersample = 2;
  u32 slabs = 4;
  bool demo = false;
  if (argc < 2 || std::string(argv[1]) == "--demo") {
    save_asc_grid(demo_dem(), "demo_raster_dem.asc");
    path = "demo_raster_dem.asc";
    demo = true;
    std::cout << "demo mode: wrote demo_raster_dem.asc (72x60, 30m cells, NODATA lake)\n";
  } else {
    path = argv[1];
  }
  if (argc > 2) {
    const int w = std::atoi(argv[2]);
    if (w < 1) return usage();
    ropt.width = static_cast<u32>(w);
  }
  if (argc > 3) {
    const int h = std::atoi(argv[3]);
    if (h < 1) return usage();
    ropt.height = static_cast<u32>(h);
  }
  if (argc > 4) {
    const int s = std::atoi(argv[4]);
    if (s < 1) return usage();
    slabs = static_cast<u32>(s);
  }

  // Ingest, keeping the DEM -> terrain registration for the viewshed.
  const AscGrid grid = load_asc_grid(path);
  AscMapping reg;
  const Terrain terrain = terrain_from_asc(grid, {}, &reg);
  std::cout << "loaded " << path << ": " << grid.ncols << "x" << grid.nrows << " cells -> "
            << terrain.triangle_count() << " triangles, " << terrain.edge_count()
            << " edges (stride " << reg.stride << ")\n";

  // Solve once, monolithically.
  HsrEngine engine;
  engine.prepare(terrain);
  const HsrResult solved = engine.solve();
  std::cout << "solved: " << solved.stats.k_pieces << " visible pieces ("
            << solved.stats.total_s * 1e3 << " ms)\n";

  // Scan-convert.
  const raster::ImageRaster img = raster::rasterize(terrain, solved.map, ropt);
  const double hit_pct =
      100.0 * static_cast<double>(img.hit_samples) / static_cast<double>(img.samples);
  std::cout << "rasterized " << img.width << "x" << img.height << " (supersample "
            << img.supersample << "): " << img.crossings << " visible crossings, " << hit_pct
            << "% samples hit\n";

  // Cross-check 1: bit-identical across backends and thread counts.
  for (const par::Backend b : par::available_backends()) {
    for (const int p : {1, 4}) {
      raster::RasterOptions alt = ropt;
      alt.backend = b;
      alt.threads = p;
      if (!images_equal(raster::rasterize(terrain, solved.map, alt), img)) {
        std::cerr << "FAILED: raster differs on backend " << par::backend_name(b) << " p=" << p
                  << "\n";
        return 1;
      }
    }
  }
  std::cout << "raster cross-check: bit-identical across backends and thread counts\n";

  // Cross-check 2: sharded rasterization (per-slab maps, no stitch).
  shard::ShardedEngine sharded;
  sharded.prepare(terrain, slabs);
  const auto per_slab = sharded.solve_slabs();
  std::vector<const VisibilityMap*> slab_maps(per_slab.size(), nullptr);
  for (std::size_t s = 0; s < per_slab.size(); ++s) {
    if (per_slab[s]) slab_maps[s] = &per_slab[s]->map;
  }
  const raster::ImageRaster banded = raster::rasterize_sharded(sharded.plan(), slab_maps, ropt);
  if (!images_equal(banded, img)) {
    std::cerr << "FAILED: sharded raster (S=" << slabs << ") differs from monolithic\n";
    return 1;
  }
  std::cout << "raster cross-check: sharded (S=" << slabs
            << ", disjoint column bands, no stitch) == monolithic\n";

  // Cross-check 3 (demo-sized inputs): brute-force per-pixel ray oracle.
  const u64 oracle_budget = u64{terrain.triangle_count()} * ropt.width * ropt.supersample;
  if (demo || oracle_budget <= 4'000'000) {
    raster::RasterOptions oopt = ropt;
    oopt.width = std::min(ropt.width, 96u);
    oopt.height = std::min(ropt.height, 72u);
    oopt.supersample = 1;
    const raster::ImageRaster small = raster::rasterize(terrain, solved.map, oopt);
    const raster::ImageRaster oracle = raster::raycast_reference(terrain, oopt);
    if (!images_equal(small, oracle)) {
      std::cerr << "FAILED: scan-converter disagrees with the ray-cast oracle\n";
      return 1;
    }
    std::cout << "raster cross-check: ray-cast oracle agrees at " << oopt.width << "x"
              << oopt.height << "\n";
  }

  // The georeferenced viewshed, both flavours.
  const AscGrid viewshed = raster::viewshed_grid(terrain, solved.map, reg);
  u64 vis = 0, data = 0;
  for (const double v : viewshed.values) {
    if (viewshed.nodata && v == *viewshed.nodata) continue;
    ++data;
    vis += v > 0.0;
  }
  std::cout << "viewshed: " << vis << "/" << data << " data samples at least partly visible\n";

  // Write the products.
  io::write_ppm(ids_image(img), "raster_ids.ppm");
  io::write_pgm(gray_image(img, img.depth), "raster_depth.pgm");
  io::write_pgm(gray_image(img, img.coverage), "raster_coverage.pgm");
  save_asc_grid(viewshed, "viewshed.asc");
  io::write_pgm(viewshed_image(viewshed), "viewshed.pgm");
  std::cout << "wrote raster_ids.ppm raster_depth.pgm raster_coverage.pgm viewshed.asc "
               "viewshed.pgm\n";
  return 0;
}
