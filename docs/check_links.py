#!/usr/bin/env python3
"""Documentation link checker — the drift gate behind the CI `docs` job.

Two passes, run from the repository root:

1. **Markdown links.** For every markdown file passed on the command
   line: each inline link ``[text](target)`` outside fenced code blocks
   must resolve — relative targets must exist on disk, and ``#fragment``
   anchors (same-file or into another markdown file) must match a
   heading's GitHub-style slug. ``http(s)``/``mailto`` links are noted
   but never fetched (the check runs offline).

2. **DESIGN.md section citations.** Source files cite the design document
   as ``DESIGN.md section N[.M]`` and markdown files as
   ``DESIGN.md §N[.M]``; every cited section number must exist as a
   numbered heading in DESIGN.md. Renumbering a section without updating
   its citations fails the build.

Exit status 0 when everything resolves, 1 otherwise (each failure on its
own line). No third-party dependencies.
"""

from __future__ import annotations

import pathlib
import re
import sys

FENCE_RE = re.compile(r"```.*?```", re.DOTALL)
LINK_RE = re.compile(r"\[[^\]\n]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
SECTION_HEADING_RE = re.compile(r"^#{1,6}\s+(\d+(?:\.\d+)?)[.\s]", re.MULTILINE)
SECTION_CITE_SRC_RE = re.compile(r"DESIGN\.md section (\d+(?:\.\d+)?)")
SECTION_CITE_MD_RE = re.compile(r"DESIGN\.md`?\s*§(\d+(?:\.\d+)?)")


def github_slug(heading: str) -> str:
    """GitHub's anchor slug: strip formatting, lowercase, spaces to dashes."""
    text = re.sub(r"[`*_]", "", heading).strip()
    text = re.sub(r"\{#[^}]*\}\s*$", "", text).strip()  # explicit {#anchor}
    text = text.lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def anchors_of(md_path: pathlib.Path) -> set[str]:
    out: set[str] = set()
    for m in HEADING_RE.finditer(md_path.read_text(encoding="utf-8")):
        heading = m.group(1)
        out.add(github_slug(heading))
        explicit = re.search(r"\{#([^}]*)\}", heading)
        if explicit:
            out.add(explicit.group(1))
    return out


def check_markdown(md_file: str, failures: list[str]) -> int:
    path = pathlib.Path(md_file)
    if not path.is_file():
        failures.append(f"{md_file}: file not found")
        return 0
    text = FENCE_RE.sub("", path.read_text(encoding="utf-8"))
    checked = 0
    for m in LINK_RE.finditer(text):
        target = m.group(1)
        checked += 1
        if re.match(r"^[a-z][a-z0-9+.-]*:", target):  # http:, https:, mailto:, ...
            continue
        base, _, fragment = target.partition("#")
        dest = path if base == "" else (path.parent / base)
        if base and not dest.exists():
            failures.append(f"{md_file}: broken link -> {target}")
            continue
        if fragment and dest.suffix == ".md" and dest.is_file():
            if fragment not in anchors_of(dest):
                failures.append(f"{md_file}: broken anchor -> {target}")
    return checked


def check_design_citations(failures: list[str]) -> int:
    design = pathlib.Path("DESIGN.md")
    if not design.is_file():
        failures.append("DESIGN.md: file not found (section-citation check)")
        return 0
    sections = set(SECTION_HEADING_RE.findall(design.read_text(encoding="utf-8")))
    checked = 0
    roots = ["src", "tests", "bench", "examples", "docs"]
    files: list[pathlib.Path] = [pathlib.Path("README.md"), pathlib.Path("EXPERIMENTS.md")]
    for root in roots:
        files += sorted(pathlib.Path(root).rglob("*.hpp"))
        files += sorted(pathlib.Path(root).rglob("*.cpp"))
        files += sorted(pathlib.Path(root).rglob("*.md"))
    for f in files:
        if not f.is_file():
            continue
        text = f.read_text(encoding="utf-8", errors="replace")
        for pattern in (SECTION_CITE_SRC_RE, SECTION_CITE_MD_RE):
            for cite in pattern.findall(text):
                checked += 1
                if cite not in sections:
                    failures.append(f"{f}: cites DESIGN.md section {cite}, which does not exist")
    return checked


def main(argv: list[str]) -> int:
    if len(argv) < 2:
        print("usage: check_links.py FILE.md [FILE.md ...]", file=sys.stderr)
        return 2
    failures: list[str] = []
    links = sum(check_markdown(f, failures) for f in argv[1:])
    cites = check_design_citations(failures)
    for line in failures:
        print(f"FAIL  {line}")
    print(f"checked {links} links in {len(argv) - 1} files, {cites} DESIGN.md citations: "
          f"{len(failures)} failure(s)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
