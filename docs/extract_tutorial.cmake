# Extract every ```cpp fenced block from TUTORIAL (in order) and
# concatenate them into OUT — the translation unit behind the
# tutorial_smoke test. Run as: cmake -DTUTORIAL=... -DOUT=... -P this.
#
# The page is the single source of truth: nothing is compiled that is not
# shown, and nothing shown escapes compilation.
cmake_minimum_required(VERSION 3.20)  # script mode: pin modern if()/while() policies
if(NOT DEFINED TUTORIAL OR NOT DEFINED OUT)
  message(FATAL_ERROR "extract_tutorial.cmake needs -DTUTORIAL=<md> -DOUT=<cpp>")
endif()
file(READ ${TUTORIAL} text)
set(code "// Generated from docs/TUTORIAL.md by extract_tutorial.cmake; do not edit.\n")
set(blocks 0)
while(TRUE)
  string(FIND "${text}" "```cpp\n" start)
  if(start EQUAL -1)
    break()
  endif()
  math(EXPR code_start "${start} + 7")
  string(SUBSTRING "${text}" ${code_start} -1 rest)
  string(FIND "${rest}" "```" fence)
  if(fence EQUAL -1)
    message(FATAL_ERROR "unterminated ```cpp block in ${TUTORIAL}")
  endif()
  string(SUBSTRING "${rest}" 0 ${fence} block)
  string(APPEND code "${block}\n")
  math(EXPR blocks "${blocks} + 1")
  math(EXPR next "${fence} + 3")
  string(SUBSTRING "${rest}" ${next} -1 text)
endwhile()
if(blocks EQUAL 0)
  message(FATAL_ERROR "no ```cpp blocks found in ${TUTORIAL}")
endif()
file(WRITE ${OUT} "${code}")
message(STATUS "extracted ${blocks} tutorial blocks into ${OUT}")
